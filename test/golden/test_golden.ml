(* Golden simulated-cycle regression tests.

   The executor's slot-allocated register files and O(1) symbol/label
   resolution are host-time optimisations: every simulated cycle count
   in the paper's tables must be bit-identical to what the tree produced
   before that refactor.  These goldens pin the counts; if one of them
   moves, the cost model changed — that is a bug (or a deliberate model
   change that must be called out and these numbers re-baselined).

   Two fixtures cover the compiler cost model (a memory-bound loop and
   call-heavy recursion, in all four instrumentation modes), and the
   LMBench null-syscall pins the whole-kernel path in both build
   modes. *)

(* --- fixtures (same shapes as bench/main.ml) ---------------------- *)

let collatz_program () =
  let b = Builder.create () in
  Builder.func b "collatz" ~params:[ "n" ];
  Builder.store b ~src:(Ir.Imm 0L) ~addr:(Ir.Imm 0x2000L) ();
  Builder.store b ~src:(Ir.Reg "n") ~addr:(Ir.Imm 0x2008L) ();
  Builder.br b "loop";
  Builder.block b "loop";
  let n = Builder.load b (Ir.Imm 0x2008L) in
  let at_one = Builder.cmp b Ule n (Ir.Imm 1L) in
  Builder.cbr b at_one "done" "step";
  Builder.block b "step";
  let odd = Builder.bin b And n (Ir.Imm 1L) in
  let half = Builder.bin b Lshr n (Ir.Imm 1L) in
  let tripled = Builder.bin b Mul n (Ir.Imm 3L) in
  let plus1 = Builder.bin b Add tripled (Ir.Imm 1L) in
  let next = Builder.select b odd plus1 half in
  Builder.store b ~src:next ~addr:(Ir.Imm 0x2008L) ();
  let count = Builder.load b (Ir.Imm 0x2000L) in
  let count' = Builder.bin b Add count (Ir.Imm 1L) in
  Builder.store b ~src:count' ~addr:(Ir.Imm 0x2000L) ();
  Builder.br b "loop";
  Builder.block b "done";
  let count = Builder.load b (Ir.Imm 0x2000L) in
  Builder.ret b (Some count);
  Builder.program b

let rec_sum_program () =
  let b = Builder.create () in
  Builder.func b "sum" ~params:[ "n" ];
  let is_zero = Builder.cmp b Eq (Ir.Reg "n") (Ir.Imm 0L) in
  Builder.cbr b is_zero "base" "rec";
  Builder.block b "base";
  Builder.ret b (Some (Ir.Imm 0L));
  Builder.block b "rec";
  let n1 = Builder.bin b Sub (Ir.Reg "n") (Ir.Imm 1L) in
  let sub = Builder.call b "sum" [ n1 ] in
  let total = Builder.bin b Add (Ir.Reg "n") sub in
  Builder.ret b (Some total);
  Builder.program b

(* Runs the fixture and returns per-tag cycle totals: the grand total is
   the golden, and summing a tagged breakdown proves charge tagging is a
   pure relabelling (nothing double- or under-counted). *)
let run_tagged_cycles ?(compiled = false) ~cfi ~sandbox program entry arg =
  let program =
    if sandbox then Vg_compiler.Sandbox_pass.instrument_program program
    else program
  in
  let image = Vg_compiler.Linker.link (Vg_compiler.Codegen.compile ~cfi program) in
  let mem = Bytes.make 65536 '\000' in
  let by_tag = Array.make Obs.Tag.count 0 in
  let env =
    {
      Vg_compiler.Executor.null_env with
      load =
        (fun addr _ ->
          Bytes.get_int64_le mem (Int64.to_int (Int64.logand addr 0xfff8L)));
      store =
        (fun addr _ v ->
          Bytes.set_int64_le mem (Int64.to_int (Int64.logand addr 0xfff8L)) v);
      charge =
        (fun tag n ->
          let i = Obs.Tag.index tag in
          by_tag.(i) <- by_tag.(i) + n);
    }
  in
  (if compiled then
     ignore
       (Vg_compiler.Exec_compile.run env
          (Vg_compiler.Exec_compile.compile image)
          entry [| arg |])
   else ignore (Vg_compiler.Executor.run env image entry [| arg |]));
  by_tag

let run_cycles ?compiled ~cfi ~sandbox program entry arg =
  Array.fold_left ( + ) 0 (run_tagged_cycles ?compiled ~cfi ~sandbox program entry arg)

let check_modes ?compiled name program entry arg ~plain ~cfi ~sandbox ~full =
  Alcotest.(check int)
    (name ^ ": plain") plain
    (run_cycles ?compiled ~cfi:false ~sandbox:false program entry arg);
  Alcotest.(check int)
    (name ^ ": cfi") cfi
    (run_cycles ?compiled ~cfi:true ~sandbox:false program entry arg);
  Alcotest.(check int)
    (name ^ ": sandbox") sandbox
    (run_cycles ?compiled ~cfi:false ~sandbox:true program entry arg);
  Alcotest.(check int)
    (name ^ ": full") full
    (run_cycles ?compiled ~cfi:true ~sandbox:true program entry arg)

let test_collatz_cycles () =
  check_modes "collatz(97)" (collatz_program ()) "collatz" 97L ~plain:1543
    ~cfi:1544 ~sandbox:4875 ~full:4876

let test_recsum_cycles () =
  check_modes "recsum(40)" (rec_sum_program ()) "sum" 40L ~plain:244 ~cfi:445
    ~sandbox:244 ~full:445

(* The closure-compiled engine must reproduce the exact same pinned
   numbers — its whole contract is byte-identical simulated cycles. *)
let test_compiled_engine_cycles () =
  check_modes ~compiled:true "collatz(97)/compiled" (collatz_program ())
    "collatz" 97L ~plain:1543 ~cfi:1544 ~sandbox:4875 ~full:4876;
  check_modes ~compiled:true "recsum(40)/compiled" (rec_sum_program ()) "sum"
    40L ~plain:244 ~cfi:445 ~sandbox:244 ~full:445

(* --- whole-kernel golden: LMBench null syscall -------------------- *)

(* The bench-profile node, built through the fleet config — the golden
   numbers below pin that this path stays cycle-identical to the raw
   Machine.create + Kernel.boot it replaced. *)
let golden_config ?engine ?(spec_depth = 0) mode =
  let config =
    Node_config.(
      default |> with_phys_frames 65536 |> with_disk_sectors 131072
      |> with_seed "bench" |> with_mode mode |> with_spec_depth spec_depth)
  in
  match engine with None -> config | Some e -> Node_config.with_engine e config

let null_syscall_cycles ?engine mode =
  let node = Node.boot (golden_config ?engine mode) in
  let machine = Node.machine node and k = Node.kernel node in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let proc = ctx.Runtime.proc in
      let start = Machine.cycles machine in
      for _ = 1 to 200 do
        ignore (Syscalls.getpid k proc)
      done;
      Machine.cycles machine - start)

let test_null_syscall_cycles () =
  Alcotest.(check int) "native build" 71600
    (null_syscall_cycles Sva.Native_build);
  Alcotest.(check int) "virtual ghost" 261000
    (null_syscall_cycles Sva.Virtual_ghost);
  (* Same whole-kernel goldens under the compiled execution engine. *)
  let compiled = Vg_compiler.Exec_engine.Compiled in
  Alcotest.(check int) "native build (compiled engine)" 71600
    (null_syscall_cycles ~engine:compiled Sva.Native_build);
  Alcotest.(check int) "virtual ghost (compiled engine)" 261000
    (null_syscall_cycles ~engine:compiled Sva.Virtual_ghost)

(* --- speculation model off: cycle identity ------------------------ *)
(* The speculation era must be pay-for-what-you-use: a machine built
   with [~spec_depth:0] and an unmitigated kernel must reproduce the
   pre-speculation goldens to the cycle — no cache model consulted, no
   windows, no surcharge.  The mitigated builds are pinned too, so the
   architectural price of each hardening (lfence cycles, the two extra
   branchless-mask instructions) cannot drift silently. *)

let null_syscall_cycles_spec ?engine ~spec_depth ~mitigation mode =
  let node =
    Node.boot
      (golden_config ?engine ~spec_depth mode
      |> Node_config.with_spec_mitigation mitigation)
  in
  let machine = Node.machine node and k = Node.kernel node in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let proc = ctx.Runtime.proc in
      let start = Machine.cycles machine in
      for _ = 1 to 200 do
        ignore (Syscalls.getpid k proc)
      done;
      Machine.cycles machine - start)

let test_spec_depth0_cycle_identity () =
  let off = Vg_compiler.Mitigation.Off in
  Alcotest.(check int) "native, spec plumbing off" 71600
    (null_syscall_cycles_spec ~spec_depth:0 ~mitigation:off Sva.Native_build);
  Alcotest.(check int) "virtual ghost, spec plumbing off" 261000
    (null_syscall_cycles_spec ~spec_depth:0 ~mitigation:off Sva.Virtual_ghost);
  Alcotest.(check int) "virtual ghost, spec plumbing off (compiled engine)"
    261000
    (null_syscall_cycles_spec ~engine:Vg_compiler.Exec_engine.Compiled
       ~spec_depth:0 ~mitigation:off Sva.Virtual_ghost)

let test_spec_mitigation_goldens () =
  (* Architectural mitigation cost at depth 0: what fence / safe-mask
     add to the same 200 null syscalls.  Native builds carry no
     sandbox, hence nothing to harden — the golden must not move. *)
  let fence = Vg_compiler.Mitigation.Fence in
  let safe = Vg_compiler.Mitigation.Safe_mask in
  Alcotest.(check int) "native is mitigation-blind" 71600
    (null_syscall_cycles_spec ~spec_depth:0 ~mitigation:fence Sva.Native_build);
  Alcotest.(check int) "virtual ghost + fence" 357000
    (null_syscall_cycles_spec ~spec_depth:0 ~mitigation:fence Sva.Virtual_ghost);
  Alcotest.(check int) "virtual ghost + safe-mask" 277000
    (null_syscall_cycles_spec ~spec_depth:0 ~mitigation:safe Sva.Virtual_ghost)

(* --- boot-time image verification --------------------------------- *)
(* Under Virtual Ghost, boot re-proves the kernel's own translation and
   charges the verifier's pass to the Verify tag; the baseline verifies
   nothing.  Pinned so the verification cost model cannot drift
   silently (the null-syscall goldens above measure *after* boot and
   are unaffected by design). *)

let boot_verify_cycles ?engine mode =
  let stats = Obs_stats.create () in
  Obs.with_sink Obs.default (Obs_stats.sink stats) (fun () ->
      ignore (Node.boot (golden_config ?engine mode)));
  Obs_stats.cycles stats Obs.Tag.Verify

let test_boot_verify_cycles () =
  Alcotest.(check int) "native build verifies nothing" 0
    (boot_verify_cycles Sva.Native_build);
  Alcotest.(check int) "virtual ghost kernel image" 288
    (boot_verify_cycles Sva.Virtual_ghost);
  (* The compiled engine's extra work is host-time only: the simulated
     Verify bill is unchanged. *)
  Alcotest.(check int) "virtual ghost (compiled engine)" 288
    (boot_verify_cycles ~engine:Vg_compiler.Exec_engine.Compiled
       Sva.Virtual_ghost)

(* --- observability parity ----------------------------------------- *)
(* The zero-overhead-off guarantee, pinned: simulated cycle counts must
   be byte-identical whether sinks are attached or not.  The machines
   these paths boot observe the process-wide [Obs.default]. *)

let with_sinks f =
  let stats = Obs_stats.create () in
  let recorder = Obs_recorder.create () in
  let result =
    Obs.with_sink Obs.default (Obs_stats.sink stats) (fun () ->
        Obs.with_sink Obs.default (Obs_recorder.sink recorder) f)
  in
  (result, stats, recorder)

let test_null_syscall_obs_parity () =
  let bare_native = null_syscall_cycles Sva.Native_build in
  let bare_vg = null_syscall_cycles Sva.Virtual_ghost in
  let observed_native, stats_native, _ =
    with_sinks (fun () -> null_syscall_cycles Sva.Native_build)
  in
  let observed_vg, stats_vg, recorder =
    with_sinks (fun () -> null_syscall_cycles Sva.Virtual_ghost)
  in
  Alcotest.(check int) "native: sinks do not change cycles" bare_native
    observed_native;
  Alcotest.(check int) "vg: sinks do not change cycles" bare_vg observed_vg;
  Alcotest.(check int) "native still the golden" 71600 observed_native;
  Alcotest.(check int) "vg still the golden" 261000 observed_vg;
  (* The sinks genuinely observed the run. *)
  Alcotest.(check bool) "native charges seen" true
    (Obs_stats.total_cycles stats_native > 0);
  Alcotest.(check bool) "vg syscall events seen" true
    (Obs_stats.event_count stats_vg "syscall" >= 200);
  Alcotest.(check bool) "recorder saw trap enters" true
    (Obs_recorder.count_matching recorder (function
       | Obs.Event.Trap_enter _ -> true
       | _ -> false)
    >= 200)

let test_executor_obs_parity () =
  (* Tagged totals must reproduce the goldens exactly — tagging is a
     relabelling of the same charges, not a new cost model. *)
  let total ~cfi ~sandbox program entry arg =
    Array.fold_left ( + ) 0 (run_tagged_cycles ~cfi ~sandbox program entry arg)
  in
  Alcotest.(check int) "collatz full (tagged)" 4876
    (total ~cfi:true ~sandbox:true (collatz_program ()) "collatz" 97L);
  Alcotest.(check int) "recsum full (tagged)" 445
    (total ~cfi:true ~sandbox:true (rec_sum_program ()) "sum" 40L);
  (* And the CFI component is separable: the 40 checked returns of
     recsum(40) each pay check_extra_cycles.  (The rest of the cfi-mode
     delta is the extra *instructions* the instrumentation executes,
     which stay under the Exec tag.) *)
  let by_tag = run_tagged_cycles ~cfi:true ~sandbox:true (rec_sum_program ()) "sum" 40L in
  let cfi_cycles = by_tag.(Obs.Tag.index Obs.Tag.Cfi) in
  Alcotest.(check int) "recsum cfi component"
    (40 * Vg_compiler.Cfi_pass.check_extra_cycles)
    cfi_cycles

let () =
  Alcotest.run "vg_golden"
    [
      ( "simulated-cycles",
        [
          Alcotest.test_case "collatz, four modes" `Quick test_collatz_cycles;
          Alcotest.test_case "recursive sum, four modes" `Quick
            test_recsum_cycles;
          Alcotest.test_case "compiled engine, same goldens" `Quick
            test_compiled_engine_cycles;
          Alcotest.test_case "LMBench null syscall" `Quick
            test_null_syscall_cycles;
          Alcotest.test_case "spec depth 0 is cycle-identical" `Quick
            test_spec_depth0_cycle_identity;
          Alcotest.test_case "mitigation cost goldens" `Quick
            test_spec_mitigation_goldens;
          Alcotest.test_case "boot-time image verification" `Quick
            test_boot_verify_cycles;
        ] );
      ( "observability-parity",
        [
          Alcotest.test_case "null syscall, sinks attached" `Quick
            test_null_syscall_obs_parity;
          Alcotest.test_case "executor tag totals" `Quick
            test_executor_obs_parity;
        ] );
    ]
