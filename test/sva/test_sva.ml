(* Tests for the SVA-OS / Virtual Ghost VM layer: boot and the key
   chain, checked MMU operations, ghost memory, interrupt contexts and
   signal dispatch, program launch, swapping, and I/O checks. *)

let boot ?(mode = Sva.Virtual_ghost) ?(seed = "sva-test") () =
  let machine = Machine.create ~phys_frames:2048 ~disk_sectors:128 ~seed () in
  let sva = Sva.boot ~vg_key_bits:256 ~mode machine in
  (machine, sva)

let ghost_va = Int64.add Layout.ghost_start 0x42000L
let user_rw : Pagetable.perm = { writable = true; user = true; executable = false }

let check_ok msg = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: unexpected error: %s" msg e

let check_mmu_ok msg = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" msg (Format.asprintf "%a" Sva.pp_mmu_error e)

(* ------------------------------------------------------------------ *)
(* Boot                                                                *)

let test_boot_maps_sva_memory () =
  let machine, sva = boot () in
  ignore sva;
  (* The SVA range is mapped in the kernel page table... *)
  let vpage = Int64.shift_right_logical Layout.sva_start 12 in
  (match Pagetable.lookup (Machine.kernel_pt machine) ~vpage with
  | Some pte ->
      Alcotest.(check bool) "registered" true
        (Sva.frame_use sva pte.Pagetable.frame = Sva.Sva_internal)
  | None -> Alcotest.fail "SVA memory not mapped");
  (* ...and is kernel-writable on the raw hardware path. *)
  Machine.write_virt machine Layout.sva_start ~len:8 42L;
  Alcotest.(check int64) "raw write works" 42L
    (Machine.read_virt machine Layout.sva_start ~len:8)

let test_key_survives_reboot () =
  let machine, sva1 = boot () in
  let pub1 = Sva.vg_public_key sva1 in
  (* Second boot on the same machine (same TPM): unseal, not regenerate. *)
  let sva2 = Sva.boot ~mode:Sva.Virtual_ghost machine in
  let pub2 = Sva.vg_public_key sva2 in
  Alcotest.(check bool) "same key" true
    (Vg_crypto.Bignum.equal pub1.Vg_crypto.Rsa.n pub2.Vg_crypto.Rsa.n)

let test_distinct_machines_distinct_keys () =
  let _, sva1 = boot ~seed:"machine-a" () in
  let _, sva2 = boot ~seed:"machine-b" () in
  Alcotest.(check bool) "different" false
    (Vg_crypto.Bignum.equal (Sva.vg_public_key sva1).Vg_crypto.Rsa.n
       (Sva.vg_public_key sva2).Vg_crypto.Rsa.n)

let test_random_not_os_controlled () =
  let _, sva = boot () in
  let a = Sva.random_bytes sva 32 and b = Sva.random_bytes sva 32 in
  Alcotest.(check bool) "fresh draws differ" false (Bytes.equal a b)

(* ------------------------------------------------------------------ *)
(* MMU checks                                                          *)

let test_mmu_allows_ordinary_mappings () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  check_mmu_ok "user map" (Sva.map_page sva pt ~va:0x400000L ~frame:10 ~perm:user_rw);
  check_mmu_ok "unmap" (Sva.unmap_page sva pt ~va:0x400000L)

let test_mmu_refuses_ghost_frame () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:1 ~pt ~va:ghost_va ~frames:[ 30 ]);
  (* The kernel now tries to map the ghost frame into user space. *)
  (match Sva.map_page sva pt ~va:0x400000L ~frame:30 ~perm:user_rw with
  | Error (Sva.Protected_frame (Sva.Ghost_frame 1)) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Sva.pp_mmu_error e)
  | Ok () -> Alcotest.fail "ghost frame was mapped!");
  (* And into the kernel's own space. *)
  Alcotest.(check bool) "kernel map refused" true
    (Sva.map_kernel_page sva ~va:Layout.kernel_data_start ~frame:30
       ~perm:{ writable = true; user = false; executable = false }
    <> Ok ())

let test_mmu_refuses_ghost_range () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  (* The kernel tries to install its own frame inside the ghost range
     (the paper's "map physical pages it has already modified" attack). *)
  (match Sva.map_page sva pt ~va:ghost_va ~frame:11 ~perm:user_rw with
  | Error (Sva.Protected_range _) -> ()
  | Error _ | Ok () -> Alcotest.fail "mapping into ghost range must be refused");
  (* Unmapping ghost memory from under the application is also refused. *)
  check_ok "allocgm" (Sva.allocgm sva ~pid:1 ~pt ~va:ghost_va ~frames:[ 31 ]);
  Alcotest.(check bool) "unmap refused" true (Sva.unmap_page sva pt ~va:ghost_va <> Ok ())

let test_mmu_refuses_sva_targets () =
  let machine, sva = boot () in
  ignore machine;
  let pt = Sva.declare_address_space sva ~pid:1 in
  Alcotest.(check bool) "sva va refused" true
    (Sva.map_page sva pt ~va:Layout.sva_start ~frame:12 ~perm:user_rw <> Ok ());
  (* An SVA-internal frame (from the top of memory) cannot be mapped. *)
  Alcotest.(check bool) "sva frame refused" true
    (Sva.map_page sva pt ~va:0x400000L ~frame:2047 ~perm:user_rw <> Ok ())

let test_mmu_refuses_code_writable () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  Sva.set_code_frame sva 13;
  Alcotest.(check bool) "writable code refused" true
    (Sva.map_page sva pt ~va:0x400000L ~frame:13 ~perm:user_rw <> Ok ());
  check_mmu_ok "read-only code ok"
    (Sva.map_page sva pt ~va:0x400000L ~frame:13
       ~perm:{ writable = false; user = true; executable = true })

let test_mmu_native_mode_unchecked () =
  (* The baseline kernel can do all of these — that is the vulnerable
     world Virtual Ghost removes. *)
  let _, sva = boot ~mode:Sva.Native_build () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:1 ~pt ~va:ghost_va ~frames:[ 30 ]);
  check_mmu_ok "ghost frame mapped" (Sva.map_page sva pt ~va:0x400000L ~frame:30 ~perm:user_rw);
  check_mmu_ok "ghost range mapped" (Sva.map_page sva pt ~va:(Int64.add ghost_va 0x1000L) ~frame:11 ~perm:user_rw)

(* ------------------------------------------------------------------ *)
(* Ghost memory                                                        *)

let test_allocgm_zeroes_and_maps () =
  let machine, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:7 in
  (* Dirty the frame first: previous owner's data must not leak. *)
  Phys_mem.write (Machine.mem machine) ~addr:0x28000L ~len:8 0xdeadL;
  check_ok "allocgm" (Sva.allocgm sva ~pid:7 ~pt ~va:ghost_va ~frames:[ 0x28 ]);
  Machine.set_current_pt machine pt;
  Machine.set_privilege machine Machine.User;
  Alcotest.(check int64) "zeroed" 0L (Machine.read_virt machine ghost_va ~len:8);
  (* The application can use it. *)
  Machine.write_virt machine ghost_va ~len:8 0x5ec4e7L;
  Alcotest.(check int64) "usable" 0x5ec4e7L (Machine.read_virt machine ghost_va ~len:8)

let test_allocgm_rejects_mapped_frame () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  check_mmu_ok "map" (Sva.map_page sva pt ~va:0x400000L ~frame:40 ~perm:user_rw);
  Alcotest.(check bool) "refused" true
    (Sva.allocgm sva ~pid:1 ~pt ~va:ghost_va ~frames:[ 40 ] <> Ok ())

let test_allocgm_rejects_bad_range () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:1 in
  Alcotest.(check bool) "outside ghost" true
    (Sva.allocgm sva ~pid:1 ~pt ~va:0x400000L ~frames:[ 41 ] <> Ok ());
  Alcotest.(check bool) "unaligned" true
    (Sva.allocgm sva ~pid:1 ~pt ~va:(Int64.add ghost_va 8L) ~frames:[ 41 ] <> Ok ())

let test_freegm_roundtrip () =
  let machine, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:7 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:7 ~pt ~va:ghost_va ~frames:[ 50; 51 ]);
  Machine.set_current_pt machine pt;
  Machine.set_privilege machine Machine.User;
  Machine.write_virt machine ghost_va ~len:8 0x5ec4e7L;
  Machine.set_privilege machine Machine.Kernel;
  (match Sva.freegm sva ~pid:7 ~pt ~va:ghost_va ~count:2 with
  | Ok frames -> Alcotest.(check (list int)) "frames back" [ 50; 51 ] frames
  | Error e -> Alcotest.failf "freegm: %s" e);
  (* Frame contents were zeroed before the OS got them back. *)
  Alcotest.(check int64) "no data leak" 0L
    (Phys_mem.read (Machine.mem machine) ~addr:0x32000L ~len:8);
  Alcotest.(check bool) "registry cleared" true (Sva.frame_use sva 50 = Sva.Kernel_managed)

let test_freegm_rejects_foreign_page () =
  let _, sva = boot () in
  let pt7 = Sva.declare_address_space sva ~pid:7 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:7 ~pt:pt7 ~va:ghost_va ~frames:[ 52 ]);
  (* Another process (or the kernel lying about the pid) cannot free it. *)
  Alcotest.(check bool) "foreign refused" true
    (match Sva.freegm sva ~pid:8 ~pt:pt7 ~va:ghost_va ~count:1 with Error _ -> true | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Interrupt contexts and traps                                        *)

let test_trap_costs_differ_by_mode () =
  let run mode =
    let machine, sva = boot ~mode () in
    let tid = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
    Machine.reset_clock machine;
    Sva.enter_trap sva ~tid;
    Sva.return_from_trap sva ~tid;
    Machine.cycles machine
  in
  let native = run Sva.Native_build and vg = run Sva.Virtual_ghost in
  Alcotest.(check bool) "vg trap dearer" true (vg > native);
  Alcotest.(check bool) "by roughly the IC-save cost" true
    (vg - native >= Cost.vg_trap_extra / 2)

let test_native_ic_is_kernel_visible_and_tamperable () =
  let machine, sva = boot ~mode:Sva.Native_build () in
  let tid = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
  Sva.enter_trap sva ~tid;
  match Sva.native_ic_address sva ~tid with
  | None -> Alcotest.fail "native build must expose the IC"
  | Some va ->
      (* The kernel can read the saved program counter... *)
      Alcotest.(check int64) "read pc" 0x1000L (Machine.read_virt machine va ~len:8);
      (* ...and overwrite it, hijacking the thread on resume. *)
      Machine.write_virt machine va ~len:8 0xbad00L;
      Sva.return_from_trap sva ~tid;
      Alcotest.(check int64) "hijacked" 0xbad00L
        (Sva.thread_icontext sva ~tid).Icontext.pc

let test_vg_ic_not_exposed () =
  let _, sva = boot ~mode:Sva.Virtual_ghost () in
  let tid = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
  Sva.enter_trap sva ~tid;
  Alcotest.(check bool) "no kernel-visible IC" true (Sva.native_ic_address sva ~tid = None);
  (* Even if the kernel guesses the mirror location inside SVA memory
     and writes through an *instrumented* access, the sandbox mask
     redirects it; here we verify the authoritative copy is immune to
     the masked write actually performed by instrumented code. *)
  let mirror_guess = Int64.add Layout.sva_start 0x4000L in
  let masked = Vg_compiler.Sandbox_pass.masked_address mirror_guess in
  Alcotest.(check bool) "masked away from SVA" false (Layout.in_sva masked);
  Sva.return_from_trap sva ~tid;
  Alcotest.(check int64) "pc intact" 0x1000L (Sva.thread_icontext sva ~tid).Icontext.pc

let test_syscall_result_propagates () =
  let _, sva = boot () in
  let tid = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
  Sva.enter_trap sva ~tid;
  Sva.set_syscall_result sva ~tid 42L;
  Sva.return_from_trap sva ~tid;
  Alcotest.(check int64) "result in gpr0" 42L (Sva.thread_icontext sva ~tid).Icontext.gprs.(0)

let test_clone_thread_copies_context () =
  let _, sva = boot () in
  let tid = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
  Sva.set_syscall_result sva ~tid 7L;
  let child = Sva.clone_thread sva ~tid ~new_pid:2 in
  let cic = Sva.thread_icontext sva ~tid:child in
  Alcotest.(check int64) "pc" 0x1000L cic.Icontext.pc;
  Alcotest.(check int64) "gpr0" 7L cic.Icontext.gprs.(0);
  (* Distinct contexts: mutating the child does not touch the parent. *)
  Sva.set_syscall_result sva ~tid:child 9L;
  Alcotest.(check int64) "parent intact" 7L (Sva.thread_icontext sva ~tid).Icontext.gprs.(0)

(* ------------------------------------------------------------------ *)
(* Signal dispatch                                                     *)

let test_ipush_requires_registration_under_vg () =
  let _, sva = boot () in
  let tid = Sva.new_thread sva ~pid:3 ~entry:0x1000L ~stack:0x7fff0000L in
  (match Sva.ipush_function sva ~tid ~target:0x666000L ~arg:11L with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unregistered handler must be refused");
  Sva.permit_function sva ~pid:3 0x2000L;
  check_ok "registered handler" (Sva.ipush_function sva ~tid ~target:0x2000L ~arg:11L);
  let ic = Sva.thread_icontext sva ~tid in
  Alcotest.(check int64) "pc -> handler" 0x2000L ic.Icontext.pc;
  Alcotest.(check int64) "signal number" 11L ic.Icontext.gprs.(0);
  (* sigreturn restores the interrupted state *)
  check_ok "sigreturn" (Sva.icontext_load sva ~tid);
  Alcotest.(check int64) "pc restored" 0x1000L (Sva.thread_icontext sva ~tid).Icontext.pc

let test_ipush_unchecked_in_native () =
  let _, sva = boot ~mode:Sva.Native_build () in
  let tid = Sva.new_thread sva ~pid:3 ~entry:0x1000L ~stack:0x7fff0000L in
  check_ok "native allows anything"
    (Sva.ipush_function sva ~tid ~target:0x666000L ~arg:11L);
  Alcotest.(check int64) "hijacked pc" 0x666000L (Sva.thread_icontext sva ~tid).Icontext.pc

let test_sigreturn_without_push () =
  let _, sva = boot () in
  let tid = Sva.new_thread sva ~pid:3 ~entry:0x1000L ~stack:0x7fff0000L in
  Alcotest.(check bool) "refused" true (Sva.icontext_load sva ~tid <> Ok ())

let test_nested_signals () =
  let _, sva = boot () in
  let tid = Sva.new_thread sva ~pid:3 ~entry:0x1000L ~stack:0x7fff0000L in
  Sva.permit_function sva ~pid:3 0x2000L;
  Sva.permit_function sva ~pid:3 0x3000L;
  check_ok "first" (Sva.ipush_function sva ~tid ~target:0x2000L ~arg:1L);
  check_ok "nested" (Sva.ipush_function sva ~tid ~target:0x3000L ~arg:2L);
  check_ok "pop inner" (Sva.icontext_load sva ~tid);
  Alcotest.(check int64) "back in first handler" 0x2000L
    (Sva.thread_icontext sva ~tid).Icontext.pc;
  check_ok "pop outer" (Sva.icontext_load sva ~tid);
  Alcotest.(check int64) "back at entry" 0x1000L (Sva.thread_icontext sva ~tid).Icontext.pc

(* ------------------------------------------------------------------ *)
(* Program launch                                                      *)

let make_image sva ~name ~app_key =
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string "installer-rng") in
  Appimage.install
    ~vg_key:(Sva.vg_private_key_for_installer sva)
    ~rng ~name
    ~payload:(Bytes.of_string ("code of " ^ name))
    ~entry:0x400100L ~app_key ()

let test_exec_valid_image () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:9 in
  let tid = Sva.new_thread sva ~pid:9 ~entry:0L ~stack:0x7fff0000L in
  let app_key = Bytes.of_string "0123456789abcdef" in
  let image = make_image sva ~name:"ssh" ~app_key in
  (match Sva.reinit_icontext sva ~tid ~pt ~image ~stack:0x7ffe0000L with
  | Ok (key, freed) ->
      Alcotest.(check bytes) "key recovered" app_key key;
      Alcotest.(check (list int)) "no prior ghost" [] freed
  | Error e -> Alcotest.failf "exec failed: %s" e);
  Alcotest.(check int64) "pc at entry" 0x400100L (Sva.thread_icontext sva ~tid:tid).Icontext.pc;
  (match Sva.get_app_key sva ~pid:9 with
  | Some k -> Alcotest.(check bytes) "getKey" app_key k
  | None -> Alcotest.fail "key missing")

let test_exec_rejects_tampered_payload () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:9 in
  let tid = Sva.new_thread sva ~pid:9 ~entry:0L ~stack:0x7fff0000L in
  let image = make_image sva ~name:"ssh" ~app_key:(Bytes.make 16 'k') in
  Alcotest.(check bool) "payload tamper refused" true
    (Sva.reinit_icontext sva ~tid ~pt ~image:(Appimage.tamper_payload image)
       ~stack:0x7ffe0000L
    <> Ok (Bytes.make 16 'k', []));
  (match Sva.reinit_icontext sva ~tid ~pt ~image:(Appimage.tamper_payload image) ~stack:0x7ffe0000L with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must refuse");
  (match Sva.reinit_icontext sva ~tid ~pt ~image:(Appimage.tamper_key_section image) ~stack:0x7ffe0000L with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key-section tamper must refuse")

let test_exec_releases_previous_ghost () =
  let _, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:9 in
  let tid = Sva.new_thread sva ~pid:9 ~entry:0L ~stack:0x7fff0000L in
  Sva.allocgm sva ~pid:9 ~pt ~va:ghost_va ~frames:[ 60 ] |> check_ok "allocgm";
  let image = make_image sva ~name:"ssh" ~app_key:(Bytes.make 16 'k') in
  (match Sva.reinit_icontext sva ~tid ~pt ~image ~stack:0x7ffe0000L with
  | Ok (_, freed) -> Alcotest.(check (list int)) "ghost released" [ 60 ] freed
  | Error e -> Alcotest.failf "exec: %s" e);
  Alcotest.(check bool) "registry cleared" true (Sva.frame_use sva 60 = Sva.Kernel_managed)

(* ------------------------------------------------------------------ *)
(* Swapping                                                            *)

let test_swap_roundtrip () =
  let machine, sva = boot () in
  let pt = Sva.declare_address_space sva ~pid:5 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:5 ~pt ~va:ghost_va ~frames:[ 70 ]);
  Machine.set_current_pt machine pt;
  Machine.set_privilege machine Machine.User;
  Machine.write_bytes_virt machine ghost_va (Bytes.of_string "ghost page payload");
  Machine.set_privilege machine Machine.Kernel;
  match Sva.swap_out_ghost sva ~pid:5 ~pt ~va:ghost_va with
  | Error e -> Alcotest.failf "swap out: %s" e
  | Ok (frame, blob) ->
      Alcotest.(check int) "frame returned" 70 frame;
      (* Page is gone and zeroed. *)
      Alcotest.(check int64) "frame zeroed" 0L
        (Phys_mem.read (Machine.mem machine) ~addr:0x46000L ~len:8);
      (* The blob is ciphertext: the secret is not visible in it. *)
      let contains_plain =
        let s = Bytes.to_string blob in
        let rec go i =
          i + 5 <= String.length s && (String.sub s i 5 = "ghost" || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "encrypted" false contains_plain;
      check_ok "swap in" (Sva.swap_in_ghost sva ~pid:5 ~pt ~va:ghost_va ~frame:70 ~blob);
      Machine.set_privilege machine Machine.User;
      Alcotest.(check string) "restored" "ghost page payload"
        (Bytes.to_string (Machine.read_bytes_virt machine ghost_va ~len:18))

let test_swap_tamper_detected () =
  let machine, sva = boot () in
  ignore machine;
  let pt = Sva.declare_address_space sva ~pid:5 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:5 ~pt ~va:ghost_va ~frames:[ 71 ]);
  match Sva.swap_out_ghost sva ~pid:5 ~pt ~va:ghost_va with
  | Error e -> Alcotest.failf "swap out: %s" e
  | Ok (frame, blob) ->
      Bytes.set blob 100 (Char.chr (Char.code (Bytes.get blob 100) lxor 1));
      (match Sva.swap_in_ghost sva ~pid:5 ~pt ~va:ghost_va ~frame ~blob with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "tampered swap page accepted")

let test_swap_replay_detected () =
  let machine, sva = boot () in
  ignore machine;
  let pt = Sva.declare_address_space sva ~pid:5 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:5 ~pt ~va:ghost_va ~frames:[ 72 ]);
  match Sva.swap_out_ghost sva ~pid:5 ~pt ~va:ghost_va with
  | Error e -> Alcotest.failf "swap out 1: %s" e
  | Ok (frame, old_blob) -> (
      check_ok "swap in 1" (Sva.swap_in_ghost sva ~pid:5 ~pt ~va:ghost_va ~frame ~blob:old_blob);
      match Sva.swap_out_ghost sva ~pid:5 ~pt ~va:ghost_va with
      | Error e -> Alcotest.failf "swap out 2: %s" e
      | Ok (frame2, _fresh_blob) -> (
          (* The OS replays the stale blob instead of the fresh one. *)
          match Sva.swap_in_ghost sva ~pid:5 ~pt ~va:ghost_va ~frame:frame2 ~blob:old_blob with
          | Error _ -> ()
          | Ok () -> Alcotest.fail "replayed swap page accepted"))

(* ------------------------------------------------------------------ *)
(* Monotonic counters                                                  *)

let exec_app sva ~pid ~name =
  let pt = Sva.declare_address_space sva ~pid in
  let tid = Sva.new_thread sva ~pid ~entry:0L ~stack:0x7fff0000L in
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string ("rng-" ^ name)) in
  let image =
    Appimage.install
      ~vg_key:(Sva.vg_private_key_for_installer sva)
      ~rng ~name ~payload:(Bytes.of_string name) ~entry:0x400000L
      ~app_key:(Bytes.of_string (name ^ String.make (16 - min 16 (String.length name)) '#'))
      ()
  in
  match Sva.reinit_icontext sva ~tid ~pt ~image ~stack:0x7ffe0000L with
  | Ok _ -> (pt, tid)
  | Error e -> Alcotest.failf "exec: %s" e

let test_counters_monotonic () =
  let _, sva = boot () in
  let _ = exec_app sva ~pid:40 ~name:"counter-app" in
  Alcotest.(check bool) "unset" true
    (match Sva.counter_current sva ~pid:40 "files" with Ok None -> true | Ok (Some _) | Error _ -> false);
  (match Sva.counter_next sva ~pid:40 "files" with
  | Ok v -> Alcotest.(check int) "first" 1 v
  | Error e -> Alcotest.failf "next: %s" e);
  (match Sva.counter_next sva ~pid:40 "files" with
  | Ok v -> Alcotest.(check int) "second" 2 v
  | Error e -> Alcotest.failf "next: %s" e);
  (* Independent names. *)
  (match Sva.counter_next sva ~pid:40 "other" with
  | Ok v -> Alcotest.(check int) "other starts fresh" 1 v
  | Error e -> Alcotest.failf "next: %s" e)

let test_counters_need_identity () =
  let _, sva = boot () in
  let _tid = Sva.new_thread sva ~pid:50 ~entry:0L ~stack:0x7fff0000L in
  Alcotest.(check bool) "no app key, no counter" true
    (match Sva.counter_next sva ~pid:50 "x" with Error _ -> true | Ok _ -> false)

let test_counters_namespaced_by_app () =
  let _, sva = boot () in
  let _ = exec_app sva ~pid:60 ~name:"app-alpha" in
  let _ = exec_app sva ~pid:61 ~name:"app-beta" in
  ignore (Sva.counter_next sva ~pid:60 "shared-name");
  ignore (Sva.counter_next sva ~pid:60 "shared-name");
  (match Sva.counter_next sva ~pid:61 "shared-name" with
  | Ok v -> Alcotest.(check int) "isolated" 1 v
  | Error e -> Alcotest.failf "next: %s" e)

(* ------------------------------------------------------------------ *)
(* Thread bookkeeping                                                  *)

let test_thread_slot_reuse () =
  let _, sva = boot () in
  let t1 = Sva.new_thread sva ~pid:1 ~entry:0x1000L ~stack:0x7fff0000L in
  let addr1 = Sva.native_ic_address sva ~tid:t1 in
  ignore addr1;
  Sva.free_thread sva ~tid:t1;
  let t2 = Sva.new_thread sva ~pid:1 ~entry:0x2000L ~stack:0x7fff0000L in
  Alcotest.(check bool) "new tid" true (t2 <> t1);
  Alcotest.(check int64) "fresh context" 0x2000L
    (Sva.thread_icontext sva ~tid:t2).Icontext.pc;
  Alcotest.(check bool) "old thread gone" true
    (try
       ignore (Sva.thread_icontext sva ~tid:t1);
       false
     with Not_found -> true)

(* ------------------------------------------------------------------ *)
(* I/O port checks                                                     *)

let test_iommu_port_protected_under_vg () =
  let machine, sva = boot () in
  Alcotest.(check bool) "refused" true (Sva.io_write sva ~port:Sva.iommu_config_port 0L <> Ok ());
  (* Protection still active: ghost frames remain DMA-blocked. *)
  let pt = Sva.declare_address_space sva ~pid:1 in
  check_ok "allocgm" (Sva.allocgm sva ~pid:1 ~pt ~va:ghost_va ~frames:[ 80 ]);
  Alcotest.(check bool) "dma blocked" true
    (try
       Iommu.dma_write (Machine.iommu machine) (Machine.mem machine) ~addr:0x50000L
         (Bytes.make 8 'x');
       false
     with Iommu.Dma_blocked _ -> true)

let test_iommu_port_open_in_native () =
  let _, sva = boot ~mode:Sva.Native_build () in
  check_ok "allowed" (Sva.io_write sva ~port:Sva.iommu_config_port 0L)

let test_ordinary_ports_allowed () =
  let _, sva = boot () in
  check_ok "serial port" (Sva.io_write sva ~port:0x3f8L 65L);
  ignore (Sva.io_read sva ~port:0x60L)

let () =
  Alcotest.run "vg_sva"
    [
      ( "boot",
        [
          Alcotest.test_case "maps SVA memory" `Quick test_boot_maps_sva_memory;
          Alcotest.test_case "key survives reboot" `Slow test_key_survives_reboot;
          Alcotest.test_case "distinct machines, distinct keys" `Slow
            test_distinct_machines_distinct_keys;
          Alcotest.test_case "trusted randomness" `Quick test_random_not_os_controlled;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "ordinary mappings" `Quick test_mmu_allows_ordinary_mappings;
          Alcotest.test_case "refuses ghost frame" `Quick test_mmu_refuses_ghost_frame;
          Alcotest.test_case "refuses ghost range" `Quick test_mmu_refuses_ghost_range;
          Alcotest.test_case "refuses SVA targets" `Quick test_mmu_refuses_sva_targets;
          Alcotest.test_case "refuses writable code" `Quick test_mmu_refuses_code_writable;
          Alcotest.test_case "native mode unchecked" `Quick test_mmu_native_mode_unchecked;
        ] );
      ( "ghost-memory",
        [
          Alcotest.test_case "allocgm zeroes and maps" `Quick test_allocgm_zeroes_and_maps;
          Alcotest.test_case "rejects mapped frame" `Quick test_allocgm_rejects_mapped_frame;
          Alcotest.test_case "rejects bad range" `Quick test_allocgm_rejects_bad_range;
          Alcotest.test_case "freegm round-trip" `Quick test_freegm_roundtrip;
          Alcotest.test_case "freegm rejects foreign page" `Quick
            test_freegm_rejects_foreign_page;
        ] );
      ( "interrupt-context",
        [
          Alcotest.test_case "trap costs by mode" `Quick test_trap_costs_differ_by_mode;
          Alcotest.test_case "native IC tamperable" `Quick
            test_native_ic_is_kernel_visible_and_tamperable;
          Alcotest.test_case "vg IC not exposed" `Quick test_vg_ic_not_exposed;
          Alcotest.test_case "syscall result" `Quick test_syscall_result_propagates;
          Alcotest.test_case "clone thread" `Quick test_clone_thread_copies_context;
        ] );
      ( "signal-dispatch",
        [
          Alcotest.test_case "vg requires registration" `Quick
            test_ipush_requires_registration_under_vg;
          Alcotest.test_case "native unchecked" `Quick test_ipush_unchecked_in_native;
          Alcotest.test_case "sigreturn without push" `Quick test_sigreturn_without_push;
          Alcotest.test_case "nested signals" `Quick test_nested_signals;
        ] );
      ( "exec",
        [
          Alcotest.test_case "valid image" `Slow test_exec_valid_image;
          Alcotest.test_case "tampered image refused" `Slow test_exec_rejects_tampered_payload;
          Alcotest.test_case "releases previous ghost" `Slow test_exec_releases_previous_ghost;
        ] );
      ( "swap",
        [
          Alcotest.test_case "round-trip" `Quick test_swap_roundtrip;
          Alcotest.test_case "tamper detected" `Quick test_swap_tamper_detected;
          Alcotest.test_case "replay detected" `Quick test_swap_replay_detected;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotonic" `Slow test_counters_monotonic;
          Alcotest.test_case "require identity" `Quick test_counters_need_identity;
          Alcotest.test_case "namespaced by app" `Slow test_counters_namespaced_by_app;
        ] );
      ( "threads",
        [ Alcotest.test_case "slot reuse" `Quick test_thread_slot_reuse ] );
      ( "io",
        [
          Alcotest.test_case "IOMMU port protected (VG)" `Quick
            test_iommu_port_protected_under_vg;
          Alcotest.test_case "IOMMU port open (native)" `Quick test_iommu_port_open_in_native;
          Alcotest.test_case "ordinary ports" `Quick test_ordinary_ports_allowed;
        ] );
    ]
