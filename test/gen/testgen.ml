(* Random well-formed IR programs; see the interface for the
   termination and address-range guarantees. *)

type gen_state = {
  rand : Random.State.t;
  mutable next_reg : int;
  mutable funcs : string list; (* callable earlier functions *)
}

let scratch_base = 0x1000L

(* Values usable at this point: parameters, registers defined earlier
   in the same block, or immediates. *)
let pick_value st (avail : Ir.reg list) : Ir.value =
  match Random.State.int st.rand 3 with
  | 0 | 1 when avail <> [] ->
      Ir.Reg (List.nth avail (Random.State.int st.rand (List.length avail)))
  | _ -> Ir.Imm (Int64.of_int (Random.State.int st.rand 1000 - 500))

let fresh st =
  st.next_reg <- st.next_reg + 1;
  Printf.sprintf "%%g%d" st.next_reg

let pick_binop st : Ir.binop =
  match Random.State.int st.rand 8 with
  | 0 -> Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> And
  | 4 -> Or
  | 5 -> Xor
  | 6 -> Shl
  | _ -> Lshr

let pick_cmp st : Ir.cmp =
  match Random.State.int st.rand 6 with
  | 0 -> Eq
  | 1 -> Ne
  | 2 -> Ult
  | 3 -> Uge
  | 4 -> Slt
  | _ -> Sle

let pick_width st : Ir.width =
  match Random.State.int st.rand 4 with 0 -> W8 | 1 -> W16 | 2 -> W32 | _ -> W64

(* A memory address inside the scratch region, derived from a value so
   data flow feeds the address: base + (v & 0xff8). *)
let gen_address st avail (instrs : Ir.instr list ref) : Ir.value =
  let v = pick_value st avail in
  let masked = fresh st in
  instrs := Ir.Bin { dst = masked; op = And; a = v; b = Imm 0xff8L } :: !instrs;
  let addr = fresh st in
  instrs := Ir.Bin { dst = addr; op = Add; a = Reg masked; b = Imm scratch_base } :: !instrs;
  Ir.Reg addr

let gen_instr st avail instrs =
  match Random.State.int st.rand 10 with
  | 0 | 1 | 2 | 3 ->
      let dst = fresh st in
      instrs :=
        Ir.Bin { dst; op = pick_binop st; a = pick_value st avail; b = pick_value st avail }
        :: !instrs;
      Some dst
  | 4 ->
      let dst = fresh st in
      instrs :=
        Ir.Cmp { dst; op = pick_cmp st; a = pick_value st avail; b = pick_value st avail }
        :: !instrs;
      Some dst
  | 5 ->
      let dst = fresh st in
      instrs :=
        Ir.Select
          {
            dst;
            cond = pick_value st avail;
            if_true = pick_value st avail;
            if_false = pick_value st avail;
          }
        :: !instrs;
      Some dst
  | 6 ->
      let addr = gen_address st avail instrs in
      let dst = fresh st in
      instrs := Ir.Load { dst; addr; width = pick_width st } :: !instrs;
      Some dst
  | 7 ->
      let addr = gen_address st avail instrs in
      instrs := Ir.Store { src = pick_value st avail; addr; width = pick_width st } :: !instrs;
      None
  | 8 when st.funcs <> [] ->
      let callee = List.nth st.funcs (Random.State.int st.rand (List.length st.funcs)) in
      let dst = fresh st in
      instrs :=
        Ir.Call
          { dst = Some dst; callee; args = [ pick_value st avail; pick_value st avail ] }
        :: !instrs;
      Some dst
  | _ ->
      let addr = gen_address st avail instrs in
      let dst = fresh st in
      instrs :=
        Ir.Atomic_rmw
          { dst; op = Add; addr; operand = pick_value st avail; width = W64 }
        :: !instrs;
      Some dst

let gen_block st ~params ~label ~later_labels : Ir.block =
  let instrs = ref [] in
  let avail = ref params in
  let n = 1 + Random.State.int st.rand 6 in
  for _ = 1 to n do
    match gen_instr st !avail instrs with
    | Some r -> avail := r :: !avail
    | None -> ()
  done;
  let term : Ir.terminator =
    match later_labels with
    | [] -> Ret (Some (pick_value st !avail))
    | l :: rest ->
        if Random.State.int st.rand 3 = 0 then Ret (Some (pick_value st !avail))
        else if rest = [] then Br l
        else begin
          let t = List.nth later_labels (Random.State.int st.rand (List.length later_labels)) in
          let f = List.nth later_labels (Random.State.int st.rand (List.length later_labels)) in
          Cbr { cond = pick_value st !avail; if_true = t; if_false = f }
        end
  in
  { label; instrs = List.rev !instrs; term }

let gen_func st name : Ir.func =
  let params = [ "a"; "b" ] in
  let nblocks = 1 + Random.State.int st.rand 3 in
  let labels = List.init nblocks (fun i -> if i = 0 then "entry" else Printf.sprintf "b%d" i) in
  let rec build = function
    | [] -> []
    | label :: rest -> gen_block st ~params ~label ~later_labels:rest :: build rest
  in
  { name; params; blocks = build labels }

let gen_program seed : Ir.program =
  let st = { rand = Random.State.make [| seed |]; next_reg = 0; funcs = [] } in
  let nfuncs = 1 + Random.State.int st.rand 3 in
  let funcs =
    List.init nfuncs (fun i ->
        let name = Printf.sprintf "f%d" i in
        let f = gen_func st name in
        st.funcs <- name :: st.funcs;
        f)
  in
  { funcs }
