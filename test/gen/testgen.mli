(** Random well-formed IR programs for property tests.

    Programs terminate by construction: control flow within a function
    only branches forward, and calls only target previously generated
    functions (no recursion).  Every memory address is derived from a
    data value masked into a small scratch region starting at
    {!scratch_base}, so runs are deterministic over a flat test
    memory.  Shared by the differential fuzzer and the image-verifier
    property tests. *)

val scratch_base : int64
(** Base of the scratch memory region all generated addresses fall in. *)

val gen_program : int -> Ir.program
(** [gen_program seed] builds a deterministic random program (1–3
    functions of 1–3 blocks each) that passes [Ir.Verify.check]. *)
