(* SMP tests: the multi-core machine (per-core clocks, timers, TLB
   shootdown IPIs), spinlocks, SVA-mediated context switching, the
   preemptive scheduler (including the preemption-transparency
   property against a cooperative baseline), the multi-worker httpd
   pool, and per-kernel module-loader state. *)

let boot ?(mode = Sva.Virtual_ghost) ?(cpus = 1) ?(seed = "smp") () =
  Node.kernel
    (Node.boot
       Node_config.(
         default |> with_cpus cpus |> with_phys_frames 16384
         |> with_disk_sectors 32768 |> with_seed seed |> with_mode mode))

let expect_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

(* ------------------------------------------------------------------ *)
(* Machine: cores, timers, shootdowns                                  *)

let test_core_clocks () =
  let m = Machine.create ~cpus:4 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  Alcotest.(check int) "cpus" 4 (Machine.cpus m);
  Machine.charge m 100;
  Machine.switch_core m 2;
  Machine.charge m 250;
  Alcotest.(check int) "core0" 100 (Machine.core_cycles m 0);
  Alcotest.(check int) "core2" 250 (Machine.core_cycles m 2);
  Alcotest.(check int) "core1 untouched" 0 (Machine.core_cycles m 1);
  Alcotest.(check int) "wall clock = max" 250 (Machine.max_cycles m);
  Alcotest.check_raises "bad core" (Invalid_argument "Machine.switch_core")
    (fun () -> Machine.switch_core m 9)

let test_timer () =
  let m = Machine.create ~cpus:2 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  Machine.arm_timer m ~period:1000;
  Alcotest.(check bool) "not pending yet" false (Machine.timer_pending m);
  Machine.charge m 1500;
  Alcotest.(check bool) "pending after period" true (Machine.timer_pending m);
  (* Other core's timer is independent. *)
  Machine.switch_core m 1;
  Alcotest.(check bool) "core1 idle, not pending" false (Machine.timer_pending m);
  Machine.switch_core m 0;
  Machine.ack_timer m;
  Alcotest.(check bool) "acked" false (Machine.timer_pending m);
  Machine.disarm_timer m;
  Machine.charge m 10_000;
  Alcotest.(check bool) "disarmed" false (Machine.timer_pending m)

let test_tlb_shootdown_ipis () =
  let m = Machine.create ~cpus:4 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  let before = Machine.core_cycles m 3 in
  Machine.tlb_shootdown m;
  Alcotest.(check int) "remote got one IPI" 1 (Machine.ipis_received m 3);
  Alcotest.(check int) "sender got none" 0 (Machine.ipis_received m 0);
  Alcotest.(check bool) "remote paid delivery" true
    (Machine.core_cycles m 3 > before);
  (* 1-CPU machines have nobody to shoot down. *)
  let m1 = Machine.create ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  Machine.tlb_shootdown m1;
  Alcotest.(check int) "no self IPI" 0 (Machine.ipis_received m1 0)

(* ------------------------------------------------------------------ *)
(* Spinlocks                                                           *)

let test_spinlock_transfer_charges () =
  let m = Machine.create ~cpus:2 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  let l = Spinlock.create m ~name:"t" in
  Spinlock.with_lock l (fun () -> ());
  Spinlock.with_lock l (fun () -> ());
  Alcotest.(check int) "same-core reacquire free" 0 (Spinlock.transfers l);
  Alcotest.(check int) "no cycles charged" 0 (Machine.core_cycles m 0);
  Machine.switch_core m 1;
  Spinlock.with_lock l (fun () -> ());
  Alcotest.(check int) "cross-core acquisition pays" 1 (Spinlock.transfers l);
  Alcotest.(check int) "cache-line transfer cost" Cost.lock_transfer
    (Machine.core_cycles m 1)

let test_spinlock_ownership () =
  let m = Machine.create ~cpus:2 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"m" () in
  let l = Spinlock.create m ~name:"own" in
  Spinlock.acquire l;
  Machine.switch_core m 1;
  (* Releasing from the wrong core is a kernel bug and must raise. *)
  (try
     Spinlock.release l;
     Alcotest.fail "non-owner release must raise"
   with Spinlock.Error _ -> ());
  (try
     Spinlock.acquire l;
     Alcotest.fail "acquiring a held lock must raise"
   with Spinlock.Error _ -> ());
  Machine.switch_core m 0;
  Spinlock.release l;
  (try
     Spinlock.release l;
     Alcotest.fail "double release must raise"
   with Spinlock.Error _ -> ())

(* Property: under arbitrary interleavings of acquire/release attempts
   from random cores, a release only ever succeeds on the owning core,
   and the lock is free iff the bookkeeping says so. *)
let prop_spinlock_owner =
  QCheck2.Test.make ~name:"spinlock never released by a non-owner" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 3) bool))
    (fun ops ->
      let m =
        Machine.create ~cpus:4 ~phys_frames:4096 ~disk_sectors:4096 ~seed:"q" ()
      in
      let l = Spinlock.create m ~name:"prop" in
      List.for_all
        (fun (core, is_acquire) ->
          Machine.switch_core m core;
          if is_acquire then
            match Spinlock.holder l with
            | None ->
                Spinlock.acquire l;
                Spinlock.holder l = Some core
            | Some _ -> (
                (* must refuse: lock already held *)
                match Spinlock.acquire l with
                | () -> false
                | exception Spinlock.Error _ -> true)
          else
            match Spinlock.holder l with
            | Some o when o = core ->
                Spinlock.release l;
                Spinlock.holder l = None
            | _ -> (
                match Spinlock.release l with
                | () -> false
                | exception Spinlock.Error _ -> true))
        ops)

(* ------------------------------------------------------------------ *)
(* SVA-mediated context switching                                      *)

let test_swap_integer_refuses_live_thread () =
  let k = boot ~cpus:2 () in
  let init = Kernel.init_process k in
  (* init's thread is live on cpu0 (installed at boot); a hostile
     scheduler resuming it on cpu1 as well must be refused. *)
  Machine.switch_core k.Kernel.machine 1;
  (match Sva.swap_integer k.Kernel.sva ~tid:init.Proc.tid with
  | Ok () -> Alcotest.fail "double-resume must be refused"
  | Error msg ->
      Alcotest.(check bool) "names the thread" true
        (String.length msg > 0));
  Alcotest.(check (option int)) "cpu1 runs nothing"
    None (Sva.running_on k.Kernel.sva ~cpu:1);
  (match Sva.swap_integer k.Kernel.sva ~tid:999 with
  | Ok () -> Alcotest.fail "unknown tid must be refused"
  | Error _ -> ())

let test_switch_to_tracks_percpu () =
  let k = boot ~cpus:2 () in
  let init = Kernel.init_process k in
  let child = expect_ok "fork" (Kernel.create_process k ~parent:init) in
  Machine.switch_core k.Kernel.machine 1;
  Kernel.switch_to k child;
  Alcotest.(check (option int)) "child live on cpu1" (Some child.Proc.tid)
    (Sva.running_on k.Kernel.sva ~cpu:1);
  Alcotest.(check (option int)) "init still live on cpu0" (Some init.Proc.tid)
    (Sva.running_on k.Kernel.sva ~cpu:0);
  Alcotest.(check int) "cpu pids diverge" child.Proc.pid (Kernel.current_pid k);
  Machine.switch_core k.Kernel.machine 0;
  Alcotest.(check int) "cpu0 unchanged" init.Proc.pid (Kernel.current_pid k)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let syscall_churn ctx ~tag ~iters =
  (* A little process that exercises fs syscalls and returns evidence
     of what it computed; every syscall is a preemption point. *)
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let path = "/churn-" ^ tag in
  let fd = expect_ok "open" (Runtime.sys_open ctx path Syscalls.creat_trunc) in
  let acc = ref 0 in
  for i = 1 to iters do
    let line = Printf.sprintf "%s:%d\n" tag i in
    acc := !acc + expect_ok "write" (Runtime.write_string ctx ~fd line)
  done;
  ignore (Runtime.sys_close ctx fd);
  let st = expect_ok "stat" (Syscalls.stat k proc path) in
  (!acc, st.Diskfs.size)

let run_workload ?(cpus = 1) ~preemptive ~timer_period () =
  let k = boot ~cpus () in
  let tags = [ "a"; "b"; "c" ] in
  let results = Hashtbl.create 4 in
  if preemptive then begin
    let sched = Sched.create k in
    List.iter
      (fun tag ->
        ignore
          (Runtime.spawn_fiber k sched ~ghosting:false ~name:tag (fun ctx ->
               Hashtbl.replace results tag (syscall_churn ctx ~tag ~iters:25))))
      tags;
    Sched.run ~timer_period sched
  end
  else
    List.iter
      (fun tag ->
        Runtime.launch k ~ghosting:false (fun ctx ->
            Hashtbl.replace results tag (syscall_churn ctx ~tag ~iters:25)))
      tags;
  List.map (fun tag -> (tag, Hashtbl.find results tag)) tags

(* Preemption transparency: chopping processes up at arbitrary timer
   ticks (and migrating them across cores) must not change any
   process's own syscall results. *)
let prop_preemption_transparent =
  QCheck2.Test.make ~name:"preemption preserves per-process syscall results"
    ~count:12
    QCheck2.Gen.(pair (int_range 1 4) (int_range 2_000 200_000))
    (fun (cpus, timer_period) ->
      let baseline = run_workload ~preemptive:false ~timer_period:0 () in
      let preempted = run_workload ~cpus ~preemptive:true ~timer_period () in
      baseline = preempted)

let test_sched_preempts_and_steals () =
  let k = boot ~cpus:2 () in
  let sched = Sched.create k in
  for i = 0 to 3 do
    (* Pin everything to cpu0 so cpu1 can only get work by stealing. *)
    ignore
      (Runtime.spawn_fiber k sched ~cpu:0 ~ghosting:false
         ~name:(Printf.sprintf "w%d" i)
         (fun ctx -> ignore (syscall_churn ctx ~tag:(string_of_int i) ~iters:30)))
  done;
  Sched.run ~timer_period:5_000 sched;
  Alcotest.(check bool) "timer ticks preempted fibers" true
    (Sched.preemptions sched > 0);
  Alcotest.(check bool) "idle core stole work" true (Sched.steals sched > 0);
  Alcotest.(check bool) "both cores ran" true
    (Machine.core_cycles k.Kernel.machine 1 > 0)

let test_sched_events_observed () =
  let recorder = Obs_recorder.create () in
  Obs.with_sink Obs.default (Obs_recorder.sink recorder) (fun () ->
      let k = boot ~cpus:2 () in
      let sched = Sched.create k in
      for i = 0 to 1 do
        ignore
          (Runtime.spawn_fiber k sched ~cpu:0 ~ghosting:false
             ~name:(Printf.sprintf "w%d" i)
             (fun ctx ->
               ignore (syscall_churn ctx ~tag:(string_of_int i) ~iters:20)))
      done;
      Sched.run ~timer_period:5_000 sched);
  let kinds =
    List.map
      (fun e -> Obs.Event.kind e.Obs_recorder.event)
      (Obs_recorder.events recorder)
  in
  let has k = List.mem k kinds in
  Alcotest.(check bool) "sched-switch seen" true (has "sched-switch");
  Alcotest.(check bool) "timer-tick seen" true (has "timer-tick")

(* ------------------------------------------------------------------ *)
(* httpd pool                                                          *)

let make_fs_file k path size =
  let ino = expect_ok "create" (Diskfs.create k.Kernel.fs path) in
  let data = Bytes.init size (fun i -> Char.chr ((i * 131) land 0xff)) in
  ignore (expect_ok "write" (Diskfs.write k.Kernel.fs ~ino ~off:0 data))

let pool_stats ?(mode = Sva.Virtual_ghost) ~cpus ~requests () =
  let k = boot ~mode ~cpus () in
  make_fs_file k "/index.html" 8192;
  Httpd.Pool.run k ~workers:cpus ~requests ~port:80 ~path:"/index.html"

let test_pool_serves_all () =
  let s = pool_stats ~cpus:2 ~requests:8 () in
  Alcotest.(check int) "served" 8 s.Httpd.Pool.served;
  Alcotest.(check int) "all 200" 8 s.Httpd.Pool.ok;
  Alcotest.(check bool) "took time" true (s.Httpd.Pool.elapsed_cycles > 0)

let test_pool_deterministic () =
  let a = pool_stats ~cpus:4 ~requests:12 () in
  let b = pool_stats ~cpus:4 ~requests:12 () in
  Alcotest.(check int) "same cycles" a.Httpd.Pool.elapsed_cycles
    b.Httpd.Pool.elapsed_cycles;
  Alcotest.(check int) "same preemptions" a.Httpd.Pool.preemptions
    b.Httpd.Pool.preemptions;
  Alcotest.(check int) "same steals" a.Httpd.Pool.steals b.Httpd.Pool.steals

let test_pool_scales () =
  List.iter
    (fun mode ->
      let one = pool_stats ~mode ~cpus:1 ~requests:16 () in
      let four = pool_stats ~mode ~cpus:4 ~requests:16 () in
      Alcotest.(check int) "1-core all ok" 16 one.Httpd.Pool.ok;
      Alcotest.(check int) "4-core all ok" 16 four.Httpd.Pool.ok;
      let speedup =
        float_of_int one.Httpd.Pool.elapsed_cycles
        /. float_of_int four.Httpd.Pool.elapsed_cycles
      in
      if speedup < 2.5 then
        Alcotest.failf "4-core speedup %.2fx < 2.5x (1: %d cycles, 4: %d)"
          speedup one.Httpd.Pool.elapsed_cycles four.Httpd.Pool.elapsed_cycles)
    [ Sva.Native_build; Sva.Virtual_ghost ]

(* ------------------------------------------------------------------ *)
(* Event-loop httpd over the syscall ring                              *)

let event_loop_stats ?(mode = Sva.Virtual_ghost) ~cpus ~batch ~requests () =
  let k = boot ~mode ~cpus () in
  make_fs_file k "/index.html" 8192;
  Httpd.Event_loop.run k ~batch ~requests ~port:80 ~path:"/index.html"

let test_event_loop_serves_all () =
  let s = event_loop_stats ~cpus:2 ~batch:4 ~requests:8 () in
  Alcotest.(check int) "served" 8 s.Httpd.Event_loop.served;
  Alcotest.(check int) "all 200" 8 s.Httpd.Event_loop.ok;
  Alcotest.(check bool) "rode the ring" true (s.Httpd.Event_loop.ring_enters > 0);
  Alcotest.(check bool) "batched" true
    (s.Httpd.Event_loop.sqes > s.Httpd.Event_loop.ring_enters);
  Alcotest.(check bool) "polled" true (s.Httpd.Event_loop.polls > 0)

let test_event_loop_deterministic () =
  let a = event_loop_stats ~cpus:2 ~batch:8 ~requests:12 () in
  let b = event_loop_stats ~cpus:2 ~batch:8 ~requests:12 () in
  Alcotest.(check int) "same cycles" a.Httpd.Event_loop.elapsed_cycles
    b.Httpd.Event_loop.elapsed_cycles;
  Alcotest.(check int) "same enters" a.Httpd.Event_loop.ring_enters
    b.Httpd.Event_loop.ring_enters;
  Alcotest.(check int) "same sqes" a.Httpd.Event_loop.sqes b.Httpd.Event_loop.sqes

let test_event_loop_batching_cuts_traps () =
  (* Bigger batches, fewer ring_enter traps — with identical service. *)
  let one = event_loop_stats ~cpus:1 ~batch:1 ~requests:16 () in
  let big = event_loop_stats ~cpus:1 ~batch:32 ~requests:16 () in
  Alcotest.(check int) "batch-1 all ok" 16 one.Httpd.Event_loop.ok;
  Alcotest.(check int) "batch-32 all ok" 16 big.Httpd.Event_loop.ok;
  Alcotest.(check bool)
    (Printf.sprintf "enters shrank (%d -> %d)" one.Httpd.Event_loop.ring_enters
       big.Httpd.Event_loop.ring_enters)
    true
    (big.Httpd.Event_loop.ring_enters * 4 < one.Httpd.Event_loop.ring_enters)

(* ------------------------------------------------------------------ *)
(* Blocking syscalls across cores                                      *)

(* A poller sleeping in [poll] on one core must be woken by a write
   submitted through the syscall ring on another core. *)
let test_poll_wakes_across_cores () =
  let k = boot ~cpus:2 () in
  let sched = Sched.create k in
  let pipe = Pipe_dev.create ~capacity:64 () in
  Pipe_dev.add_reader pipe;
  Pipe_dev.add_writer pipe;
  let got = ref None in
  ignore
    (Runtime.spawn_fiber k sched ~cpu:0 ~ghosting:false ~name:"poller"
       (fun ctx ->
         let proc = ctx.Runtime.proc in
         let fd = Proc.add_fd proc (Proc.Pipe_read pipe) in
         let ready =
           expect_ok "poll" (Syscalls.poll ctx.Runtime.kernel proc [ fd ])
         in
         if ready = [ fd ] then begin
           let dst = Runtime.ualloc ctx 16 in
           let n =
             expect_ok "read"
               (Syscalls.read ctx.Runtime.kernel proc ~fd ~buf:dst ~len:16)
           in
           got := Some (Bytes.to_string (Runtime.peek ctx dst n))
         end));
  ignore
    (Runtime.spawn_fiber k sched ~cpu:1 ~ghosting:false ~name:"writer"
       (fun ctx ->
         let proc = ctx.Runtime.proc in
         let fd = Proc.add_fd proc (Proc.Pipe_write pipe) in
         let src = Runtime.ualloc ctx 16 in
         Runtime.poke ctx src (Bytes.of_string "ring!");
         let ring = Uring.create ctx ~depth:4 in
         ignore
           (Uring.submit ring ~sysno:Syscall_abi.sys_write
              ~args:[| Int64.of_int fd; src; 5L |]
              ~user_data:1L);
         ignore (expect_ok "ring_enter" (Uring.enter ring ~to_submit:1));
         match Uring.reap ring with
         | [ c ] ->
             Alcotest.(check int) "ring write result" 5
               (expect_ok "cqe" (Syscall_abi.decode_int c.Syscall_ring.result))
         | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l)));
  Sched.run sched;
  Alcotest.(check (option string)) "poller woke with the ring's bytes"
    (Some "ring!") !got

(* wait ~block:true sleeps on the child waitqueue until another core
   reaps the exit. *)
let test_wait_blocks_until_child_exit () =
  let k = boot ~cpus:2 () in
  let sched = Sched.create k in
  let child = ref None in
  let reaped = ref None in
  ignore
    (Runtime.spawn_fiber k sched ~cpu:0 ~ghosting:false ~name:"parent"
       (fun ctx ->
         let proc = ctx.Runtime.proc in
         let c = expect_ok "fork" (Syscalls.fork ctx.Runtime.kernel proc) in
         child := Some c;
         reaped :=
           Some (expect_ok "wait" (Syscalls.wait ~block:true ctx.Runtime.kernel proc))));
  ignore
    (Runtime.spawn_fiber k sched ~cpu:1 ~ghosting:false ~name:"killer"
       (fun ctx ->
         let rec wait_for_child () =
           match !child with
           | Some c -> Syscalls.exit_ ctx.Runtime.kernel c 7
           | None ->
               Sched.yield sched;
               wait_for_child ()
         in
         wait_for_child ()));
  Sched.run sched;
  match (!reaped, !child) with
  | Some (pid, status), Some c ->
      Alcotest.(check int) "reaped the child" c.Proc.pid pid;
      Alcotest.(check int) "exit status" 7 status
  | None, _ -> Alcotest.fail "wait never returned"
  | _, None -> Alcotest.fail "fork never ran"

(* ------------------------------------------------------------------ *)
(* Ghost swap under SMP: two cores race the same swapped-out page      *)

(* The owner faults its evicted ghost page back in while a second core
   drives the kernel's prefetch path ([Ghost_swap.swap_in_page]) at
   the same page.  The in-flight table must serialise them: exactly
   one restore happens, the loser just finds the page resident.  (The
   same *process* cannot fault on two cores at once —
   [sva.swap.integer] refuses a live thread — so the second actor is a
   kernel-side fiber, as a real kernel's swap prefetcher would be.) *)
let test_concurrent_swap_in_restores_once () =
  let k = boot ~cpus:2 () in
  let sched = Sched.create k in
  let va = Int64.add Layout.ghost_start 0x300000L in
  let victim = ref None in
  let swapped = ref false in
  let raced = ref false in
  let prefetcher_done = ref false in
  ignore
    (Runtime.spawn_fiber k sched ~cpu:0 ~ghosting:true ~name:"owner"
       (fun ctx ->
         let proc = ctx.Runtime.proc in
         victim := Some proc;
         (match Syscalls.allocgm ctx.Runtime.kernel proc ~va ~pages:1 with
         | Ok () -> ()
         | Error e -> Alcotest.failf "allocgm: %s" (Errno.to_string e));
         Runtime.poke ctx va (Bytes.of_string "smp-swap-page");
         (match Ghost_swap.swap_out_page k proc ~va with
         | Ok () -> ()
         | Error m -> Alcotest.failf "swap out: %s" m);
         swapped := true;
         (* Touch the page: the fault sleeps on the swap device and
            yields, which is the prefetcher's window. *)
         Alcotest.(check string) "owner sees its data intact" "smp-swap-page"
           (Bytes.to_string (Runtime.peek ctx va 13));
         (* Stay alive until the prefetcher has observed the outcome —
            returning here would exit the process and tear the ghost
            region down under the racing core. *)
         let rec linger () =
           if not !prefetcher_done then begin
             Sched.yield sched;
             linger ()
           end
         in
         linger ()));
  ignore
    (Runtime.spawn_fiber k sched ~cpu:1 ~ghosting:false ~name:"prefetcher"
       (fun _ctx ->
         let rec wait_for_eviction () =
           if not !swapped then begin
             Sched.yield sched;
             wait_for_eviction ()
           end
         in
         wait_for_eviction ();
         (match !victim with
         | None -> Alcotest.fail "owner never registered"
         | Some proc ->
             if Ghost_swap.is_swapped_out k proc va then begin
               raced := true;
               match Ghost_swap.swap_in_page k proc va with
               | Ok () -> ()
               | Error e -> Alcotest.failf "prefetch: %s" (Errno.to_string e)
             end);
         prefetcher_done := true));
  Sched.run sched;
  Alcotest.(check bool) "the two cores actually raced" true !raced;
  let st = Ghost_swap.stats k in
  Alcotest.(check int) "exactly one restore" 1 st.Ghost_swap.swap_ins;
  Alcotest.(check int) "no refusals" 0 st.Ghost_swap.refusals;
  (match !victim with
  | Some proc ->
      Alcotest.(check bool) "blob consumed" false
        (Ghost_swap.is_swapped_out k proc va)
  | None -> Alcotest.fail "owner never ran")

(* ------------------------------------------------------------------ *)
(* Ring and module overrides share the numbered dispatch               *)

let const_read_program () =
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  Builder.ret b (Some (Imm 42L));
  Builder.program b

let test_ring_sees_module_override () =
  let k = boot () in
  Syscalls.register_builtin_externs k;
  (match Module_loader.load k ~name:"const_read" (const_read_program ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" (Module_loader.describe_load_error e));
  Runtime.launch k ~ghosting:false (fun ctx ->
      let proc = ctx.Runtime.proc in
      let fd = expect_ok "open" (Runtime.sys_open ctx "/f" Syscalls.creat_trunc) in
      let dst = Runtime.ualloc ctx 64 in
      let ring = Uring.create ctx ~depth:4 in
      ignore
        (Uring.submit ring ~sysno:Syscall_abi.sys_read
           ~args:[| Int64.of_int fd; dst; 10L |]
           ~user_data:1L);
      ignore (expect_ok "ring_enter" (Uring.enter ring ~to_submit:1));
      (match Uring.reap ring with
      | [ c ] ->
          Alcotest.(check int) "ring read hit the override" 42
            (expect_ok "cqe" (Syscall_abi.decode_int c.Syscall_ring.result))
      | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l));
      Module_loader.unload k ~name:"const_read";
      ignore
        (Uring.submit ring ~sysno:Syscall_abi.sys_read
           ~args:[| Int64.of_int fd; dst; 10L |]
           ~user_data:2L);
      ignore (expect_ok "ring_enter" (Uring.enter ring ~to_submit:1));
      match Uring.reap ring with
      | [ c ] ->
          Alcotest.(check int) "genuine read restored" 0
            (expect_ok "cqe" (Syscall_abi.decode_int c.Syscall_ring.result));
          ignore proc
      | l -> Alcotest.failf "expected 1 completion, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Module loader: per-kernel registry                                  *)

let module_program () =
  (* A sys_read override returning a constant — enough to observe
     registration. *)
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  Builder.ret b (Some (Imm 42L));
  Builder.program b

let test_module_registry_per_kernel () =
  let k1 = boot ~mode:Sva.Native_build () in
  let k2 = boot ~mode:Sva.Native_build () in
  (match Module_loader.load k1 ~name:"m1" (module_program ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" (Module_loader.describe_load_error e));
  Alcotest.(check (list string)) "k1 sees its module" [ "m1" ]
    (Module_loader.loaded_modules k1);
  Alcotest.(check (list string)) "k2 unaffected" []
    (Module_loader.loaded_modules k2);
  (* Unloading in one kernel must not disturb the other. *)
  Module_loader.unload k2 ~name:"m1";
  Alcotest.(check (list string)) "still loaded in k1" [ "m1" ]
    (Module_loader.loaded_modules k1);
  Module_loader.unload k1 ~name:"m1";
  Alcotest.(check (list string)) "gone from k1" []
    (Module_loader.loaded_modules k1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vg_smp"
    [
      ( "machine",
        [
          Alcotest.test_case "per-core clocks" `Quick test_core_clocks;
          Alcotest.test_case "per-core timers" `Quick test_timer;
          Alcotest.test_case "tlb shootdown ipis" `Quick test_tlb_shootdown_ipis;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "transfer charges" `Quick test_spinlock_transfer_charges;
          Alcotest.test_case "ownership enforced" `Quick test_spinlock_ownership;
          QCheck_alcotest.to_alcotest prop_spinlock_owner;
        ] );
      ( "swap-integer",
        [
          Alcotest.test_case "refuses live thread" `Quick
            test_swap_integer_refuses_live_thread;
          Alcotest.test_case "switch_to tracks per-cpu" `Quick
            test_switch_to_tracks_percpu;
        ] );
      ( "sched",
        [
          QCheck_alcotest.to_alcotest prop_preemption_transparent;
          Alcotest.test_case "preempts and steals" `Quick
            test_sched_preempts_and_steals;
          Alcotest.test_case "events observed" `Quick test_sched_events_observed;
        ] );
      ( "httpd-pool",
        [
          Alcotest.test_case "serves all requests" `Quick test_pool_serves_all;
          Alcotest.test_case "deterministic" `Quick test_pool_deterministic;
          Alcotest.test_case "scales to 4 cores" `Slow test_pool_scales;
        ] );
      ( "httpd-event-loop",
        [
          Alcotest.test_case "serves all requests" `Quick test_event_loop_serves_all;
          Alcotest.test_case "deterministic" `Quick test_event_loop_deterministic;
          Alcotest.test_case "batching cuts traps" `Quick
            test_event_loop_batching_cuts_traps;
        ] );
      ( "ghost-swap",
        [
          Alcotest.test_case "concurrent swap-in restores once" `Quick
            test_concurrent_swap_in_restores_once;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "poll wakes across cores" `Quick
            test_poll_wakes_across_cores;
          Alcotest.test_case "wait blocks until child exit" `Quick
            test_wait_blocks_until_child_exit;
        ] );
      ( "ring-dispatch",
        [
          Alcotest.test_case "module override via ring" `Quick
            test_ring_sees_module_override;
        ] );
      ( "module-loader",
        [
          Alcotest.test_case "registry is per-kernel" `Quick
            test_module_registry_per_kernel;
        ] );
    ]
