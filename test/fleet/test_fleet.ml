(* The fleet subsystem: Node_config/Node.boot redesign (cycle-identical
   to the raw two-call boot), the unified connect address type, the
   NIC-to-NIC fabric, the load balancer, serving waves, rolling
   restarts, the hostile-backend quarantine and cross-node key
   distribution. *)

let expect_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

let small_config ~seed =
  Node_config.(
    default |> with_phys_frames 8192 |> with_disk_sectors 8192
    |> with_seed seed)

(* ------------------------------------------------------------------ *)
(* Node_config builders                                                *)

let test_config_builders () =
  let c = Node_config.default in
  Alcotest.(check int) "default cpus" 1 c.Node_config.cpus;
  Alcotest.(check int) "default frames" 32768 c.Node_config.phys_frames;
  Alcotest.(check int) "default sectors" 65536 c.Node_config.disk_sectors;
  Alcotest.(check int) "default depth" 0 c.Node_config.spec_depth;
  Alcotest.(check bool) "default obs" true (c.Node_config.obs = None);
  Alcotest.(check bool) "default limit" true (c.Node_config.frame_limit = None);
  let c =
    Node_config.(
      default |> with_cpus 4 |> with_mode Sva.Native_build
      |> with_frame_limit 512 |> with_seed "x"
      |> with_engine Vg_compiler.Exec_engine.Interp
      |> with_spec_depth 8)
  in
  Alcotest.(check int) "cpus" 4 c.Node_config.cpus;
  Alcotest.(check bool) "mode" true (c.Node_config.mode = Sva.Native_build);
  Alcotest.(check bool) "limit" true (c.Node_config.frame_limit = Some 512);
  Alcotest.(check string) "seed" "x" c.Node_config.seed;
  Alcotest.(check int) "depth" 8 c.Node_config.spec_depth;
  Alcotest.(check bool) "describe mentions engine" true
    (String.length (Node_config.describe c) > 0)

(* ------------------------------------------------------------------ *)
(* Cycle identity: Node.boot vs the raw two-call boot                  *)

(* A deterministic workload touching files, sockets and ghost memory,
   so any divergence in boot parameters shows up in the clock. *)
let workload k =
  let m = k.Kernel.machine in
  (match Netstack.listen k.Kernel.net ~port:80 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "listen: %s" (Errno.to_string e));
  Runtime.launch k ~ghosting:true (fun ctx ->
      let fd = expect_ok "open" (Runtime.sys_open ctx "/w" Syscalls.creat_trunc) in
      let src = Runtime.galloc ctx 256 in
      Runtime.poke ctx src (Bytes.make 256 'w');
      ignore (expect_ok "write" (Runtime.sys_write ctx ~fd ~src ~len:256));
      ignore (Runtime.sys_close ctx fd);
      let conn =
        expect_ok "connect"
          (Syscalls.connect_to k ctx.Runtime.proc (Netstack.Local 9999))
      in
      let buf = Runtime.galloc ctx 64 in
      Runtime.poke ctx buf (Bytes.of_string "ping");
      ignore (expect_ok "send" (Runtime.sys_send ctx ~fd:conn ~buf ~len:4)));
  Machine.cycles m

let test_cycle_identity () =
  List.iter
    (fun mode ->
      let raw =
        let machine =
          Machine.create ~phys_frames:8192 ~disk_sectors:8192
            ~seed:"fleet-golden" ()
        in
        workload (Kernel.boot ~mode machine)
      in
      let via_node =
        workload
          (Node.kernel
             (Node.boot
                (small_config ~seed:"fleet-golden" |> Node_config.with_mode mode)))
      in
      Alcotest.(check int)
        (Printf.sprintf "cycles identical (%s)"
           (match mode with Sva.Native_build -> "native" | _ -> "vg"))
        raw via_node)
    [ Sva.Native_build; Sva.Virtual_ghost ]

(* The historical port-only connect and the unified Local address take
   the same path, bit for bit. *)
let test_connect_local_parity () =
  let cycles use_addr =
    let k =
      Node.kernel (Node.boot (small_config ~seed:"parity"))
    in
    Runtime.launch k ~ghosting:false (fun ctx ->
        let proc = ctx.Runtime.proc in
        let fd =
          if use_addr then
            expect_ok "connect_to" (Syscalls.connect_to k proc (Netstack.Local 7070))
          else expect_ok "connect" (Syscalls.connect k proc ~port:7070)
        in
        ignore fd);
    Machine.cycles k.Kernel.machine
  in
  Alcotest.(check int) "same cycles" (cycles false) (cycles true)

(* ------------------------------------------------------------------ *)
(* Address codec                                                       *)

let test_addr_codec () =
  let roundtrip a = Netstack.addr_of_wire (Netstack.addr_to_wire a) in
  Alcotest.(check bool) "local" true (roundtrip (Netstack.Local 80) = Netstack.Local 80);
  let p = Netstack.Peer { node = 3; port = 8080 } in
  Alcotest.(check bool) "peer" true (roundtrip p = p);
  let p0 = Netstack.Peer { node = 0; port = 22 } in
  Alcotest.(check bool) "node 0 distinct from local" true
    (roundtrip p0 = p0);
  Alcotest.(check bool) "local wire is bare port" true
    (Netstack.addr_to_wire (Netstack.Local 443) = 443L)

(* ------------------------------------------------------------------ *)
(* Fabric: cross-node connect / send / recv / FIN                      *)

let test_fabric_echo () =
  let fleet = Fleet.create ~nodes:2 (small_config ~seed:"fabric") in
  let k0 = Node.kernel (Fleet.node fleet 0)
  and k1 = Node.kernel (Fleet.node fleet 1) in
  let got = ref "" and echoed = ref "" in
  Coop.interleave
    [
      (fun () ->
        Runtime.launch k1 ~ghosting:false (fun ctx ->
            let proc = ctx.Runtime.proc in
            let lfd = expect_ok "listen" (Syscalls.listen k1 proc ~port:7000) in
            let fd =
              Coop.retry (fun () ->
                  match Syscalls.accept k1 proc ~fd:lfd with
                  | Ok fd -> Some fd
                  | Error Errno.EAGAIN -> None
                  | Error e -> Alcotest.failf "accept: %s" (Errno.to_string e))
            in
            let buf = Runtime.ualloc ctx 256 in
            let n =
              Coop.retry (fun () ->
                  match Runtime.sys_recv ctx ~fd ~buf ~len:256 with
                  | Ok n when n > 0 -> Some n
                  | Ok _ -> None
                  | Error Errno.EAGAIN -> None
                  | Error e -> Alcotest.failf "recv: %s" (Errno.to_string e))
            in
            got := Bytes.to_string (Runtime.peek ctx buf n);
            ignore (Runtime.write_string ctx ~fd ("echo:" ^ !got));
            ignore (Runtime.sys_close ctx fd)));
      (fun () ->
        Runtime.launch k0 ~ghosting:false (fun ctx ->
            let proc = ctx.Runtime.proc in
            let fd =
              expect_ok "connect"
                (Syscalls.connect_to k0 proc
                   (Netstack.Peer { node = 1; port = 7000 }))
            in
            ignore (Runtime.write_string ctx ~fd "hello-fabric");
            let buf = Runtime.ualloc ctx 256 in
            let n =
              Coop.retry (fun () ->
                  match Runtime.sys_recv ctx ~fd ~buf ~len:256 with
                  | Ok n when n > 0 -> Some n
                  | Ok _ -> None
                  | Error Errno.EAGAIN -> None
                  | Error e -> Alcotest.failf "recv: %s" (Errno.to_string e))
            in
            echoed := Bytes.to_string (Runtime.peek ctx buf n);
            ignore (Runtime.sys_close ctx fd)));
    ];
  Alcotest.(check string) "server got" "hello-fabric" !got;
  Alcotest.(check string) "client echoed" "echo:hello-fabric" !echoed

let test_fabric_fifo () =
  let fleet = Fleet.create ~nodes:2 (small_config ~seed:"fifo") in
  let k0 = Node.kernel (Fleet.node fleet 0)
  and k1 = Node.kernel (Fleet.node fleet 1) in
  let received = Buffer.create 256 in
  let messages = List.init 20 (Printf.sprintf "[msg-%02d]") in
  let total = List.fold_left (fun a s -> a + String.length s) 0 messages in
  Coop.interleave
    [
      (fun () ->
        Runtime.launch k1 ~ghosting:false (fun ctx ->
            let proc = ctx.Runtime.proc in
            let lfd = expect_ok "listen" (Syscalls.listen k1 proc ~port:7001) in
            let fd =
              Coop.retry (fun () ->
                  match Syscalls.accept k1 proc ~fd:lfd with
                  | Ok fd -> Some fd
                  | Error Errno.EAGAIN -> None
                  | Error e -> Alcotest.failf "accept: %s" (Errno.to_string e))
            in
            let buf = Runtime.ualloc ctx 4096 in
            while Buffer.length received < total do
              match Runtime.sys_recv ctx ~fd ~buf ~len:4096 with
              | Ok n when n > 0 ->
                  Buffer.add_bytes received (Runtime.peek ctx buf n)
              | Ok _ -> Coop.yield ()
              | Error Errno.EAGAIN -> Coop.yield ()
              | Error e -> Alcotest.failf "recv: %s" (Errno.to_string e)
            done));
      (fun () ->
        Runtime.launch k0 ~ghosting:false (fun ctx ->
            let fd =
              expect_ok "connect"
                (Syscalls.connect_to k0 ctx.Runtime.proc
                   (Netstack.Peer { node = 1; port = 7001 }))
            in
            List.iter
              (fun m ->
                ignore (Runtime.write_string ctx ~fd m);
                Coop.yield ())
              messages;
            ignore (Runtime.sys_close ctx fd)));
    ];
  Alcotest.(check string) "in order" (String.concat "" messages)
    (Buffer.contents received)

let test_peer_without_fabric_refused () =
  let k = Node.kernel (Node.boot (small_config ~seed:"nofab")) in
  Runtime.launch k ~ghosting:false (fun ctx ->
      match
        Syscalls.connect_to k ctx.Runtime.proc
          (Netstack.Peer { node = 1; port = 80 })
      with
      | Error Errno.ECONNREFUSED -> ()
      | Error e -> Alcotest.failf "expected ECONNREFUSED, got %s" (Errno.to_string e)
      | Ok _ -> Alcotest.fail "peer connect succeeded without a fabric")

(* ------------------------------------------------------------------ *)
(* Load balancer                                                       *)

let test_lb_round_robin () =
  let lb = Lb.create ~nodes:3 Lb.Round_robin in
  let picks = List.init 7 (fun _ -> Option.get (Lb.assign lb)) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 0; 1; 2; 0 ] picks;
  Lb.set_up lb 1 false;
  let picks = List.init 4 (fun _ -> Option.get (Lb.assign lb)) in
  Alcotest.(check (list int)) "skips down node" [ 2; 0; 2; 0 ] picks;
  Lb.set_up lb 0 false;
  Lb.set_up lb 2 false;
  Alcotest.(check bool) "all down" true (Lb.assign lb = None)

let test_lb_least_connections () =
  let lb = Lb.create ~nodes:2 Lb.Least_connections in
  (* Sequential load: assign, complete, assign...  Without the
     assigned-count tie-break this pins node 0 forever. *)
  for _ = 1 to 10 do
    let i = Option.get (Lb.assign lb) in
    Lb.complete lb i
  done;
  Alcotest.(check int) "node 0 share" 5 (Lb.assigned lb 0);
  Alcotest.(check int) "node 1 share" 5 (Lb.assigned lb 1)

(* ------------------------------------------------------------------ *)
(* Serving waves                                                       *)

let www_body = Bytes.init 2048 (fun i -> Char.chr ((i * 37) land 0xff))

let serving_fleet ?policy ~nodes ~seed () =
  let fleet = Fleet.create ?policy ~nodes (small_config ~seed) in
  Fleet.listen_all fleet ~port:80;
  Fleet.setup_www fleet ~path:"/index.html" www_body;
  fleet

let test_serve_wave () =
  let fleet = serving_fleet ~nodes:3 ~seed:"serve" () in
  let wave = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:12 in
  Alcotest.(check int) "no drops" 0 wave.Fleet.dropped;
  Alcotest.(check int) "all ok" 12 wave.Fleet.ok;
  Array.iter
    (fun (r : Fleet.node_report) ->
      Alcotest.(check int)
        (Printf.sprintf "node %d share" r.Fleet.node_id)
        4 r.Fleet.assigned;
      Alcotest.(check int)
        (Printf.sprintf "node %d ok" r.Fleet.node_id)
        4 r.Fleet.ok;
      Alcotest.(check bool)
        (Printf.sprintf "node %d window" r.Fleet.node_id)
        true
        (r.Fleet.elapsed_cycles > 0))
    wave.Fleet.per_node;
  Alcotest.(check bool) "aggregate rps positive" true (Fleet.wave_rps wave > 0.0)

let test_serve_wave_least_connections () =
  let fleet =
    serving_fleet ~policy:Lb.Least_connections ~nodes:3 ~seed:"serve-lc" ()
  in
  let wave = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:14 in
  Alcotest.(check int) "all ok" 14 wave.Fleet.ok;
  let shares =
    Array.to_list
      (Array.map (fun (r : Fleet.node_report) -> r.Fleet.assigned) wave.Fleet.per_node)
  in
  let mx = List.fold_left max 0 shares and mn = List.fold_left min 99 shares in
  Alcotest.(check bool) "spread within 1" true (mx - mn <= 1)

let test_mixed_wave () =
  let fleet = serving_fleet ~nodes:2 ~seed:"mixed" () in
  let wave =
    Fleet.serve_wave ~mixed:true fleet ~port:80 ~path:"/index.html" ~requests:6
  in
  Alcotest.(check int) "all ok under mixed load" 6 wave.Fleet.ok;
  for i = 0 to 1 do
    match Fleet.last_mixed fleet i with
    | None -> Alcotest.failf "node %d: no mixed stats" i
    | Some m ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d postmark ran" i)
          true
          (m.Fleet.postmark_tx > 0);
        Alcotest.(check bool) (Printf.sprintf "node %d ssh chain ok" i) true
          m.Fleet.ssh_ok
  done

(* ------------------------------------------------------------------ *)
(* Rolling restart                                                     *)

let test_rolling_restart () =
  let fleet = serving_fleet ~nodes:3 ~seed:"rolling" () in
  let report =
    Fleet.rolling_restart fleet ~port:80 ~path:"/index.html"
      ~requests_per_wave:9
  in
  Alcotest.(check int) "zero dropped" 0 report.Fleet.total_dropped;
  Alcotest.(check int) "4 waves" 4 (List.length report.Fleet.waves);
  Alcotest.(check int) "all served" report.Fleet.total_requests
    report.Fleet.total_ok;
  Array.iteri
    (fun i d ->
      Alcotest.(check bool) (Printf.sprintf "node %d drain latency" i) true (d > 0))
    report.Fleet.drain_latency_cycles;
  for i = 0 to 2 do
    Alcotest.(check int) (Printf.sprintf "node %d restarted" i) 1
      (Fleet.restarts fleet i)
  done;
  (* Everyone is back: a full wave spreads evenly again. *)
  let wave = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:6 in
  Alcotest.(check int) "post-restart ok" 6 wave.Fleet.ok

(* ------------------------------------------------------------------ *)
(* Hostile backend fails closed                                        *)

let test_rootkit_node_fails_closed () =
  let fleet = serving_fleet ~nodes:3 ~seed:"hostile" () in
  let healthy = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:9 in
  Alcotest.(check int) "healthy ok" 9 healthy.Fleet.ok;
  (* Node 2's kernel loads the rootkit module and the attack runs. *)
  let outcome =
    Vg_attacks.Rootkit.infect
      (Node.kernel (Fleet.node fleet 2))
      ~attack:Vg_attacks.Rootkit.Signal_inject
  in
  Alcotest.(check bool) "secret stayed ghost" false
    outcome.Vg_attacks.Rootkit.secret_in_exfil_file;
  Alcotest.(check bool) "VM refused the dispatch" true
    outcome.Vg_attacks.Rootkit.vm_refusal_logged;
  Alcotest.(check bool) "security events recorded" true
    (Fleet.security_events fleet 2 <> []);
  (* Fleet health quarantines exactly the hostile node. *)
  let quarantined = Fleet.check_health fleet in
  Alcotest.(check (list int)) "node 2 quarantined" [ 2 ]
    (List.map fst quarantined);
  (* The remaining nodes keep serving the full load. *)
  let degraded = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:9 in
  Alcotest.(check int) "degraded ok" 9 degraded.Fleet.ok;
  Alcotest.(check int) "hostile node got nothing" 0
    degraded.Fleet.per_node.(2).Fleet.assigned;
  (* Re-imaging the node clears its security log and re-admits it. *)
  Fleet.restart_node fleet 2;
  Alcotest.(check (list string)) "clean after re-image" []
    (Fleet.security_events fleet 2);
  let healed = Fleet.serve_wave fleet ~port:80 ~path:"/index.html" ~requests:9 in
  Alcotest.(check int) "healed share" 3 healed.Fleet.per_node.(2).Fleet.assigned

(* ------------------------------------------------------------------ *)
(* Cross-node key distribution                                         *)

let test_key_distribution () =
  let fleet = Fleet.create ~nodes:2 (small_config ~seed:"keys") in
  let kt = Fleet.distribute_key fleet ~src:0 ~dst:1 in
  Alcotest.(check bool) "delivered" true kt.Fleet.delivered;
  Alcotest.(check bool) "key has size" true (kt.Fleet.key_len > 0);
  Alcotest.(check bool) "no plaintext on the wire" false
    kt.Fleet.plaintext_on_wire;
  Alcotest.(check bool) "sealed at rest" true kt.Fleet.sealed_at_rest;
  Alcotest.(check bool) "reloadable through sealed_store" true
    kt.Fleet.reload_ok

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                   *)

let spread counts =
  let mx = Array.fold_left max 0 counts in
  let mn = Array.fold_left min max_int counts in
  mx - mn

(* Round-robin stays within 1 of fair for any interleaving of waves. *)
let prop_rr_fairness =
  QCheck.Test.make ~count:200 ~name:"lb round-robin fairness"
    QCheck.(pair (int_range 1 5) (small_list (int_range 0 20)))
    (fun (nodes, waves) ->
      let lb = Lb.create ~nodes Lb.Round_robin in
      List.iter
        (fun w ->
          let picked = List.init w (fun _ -> Option.get (Lb.assign lb)) in
          List.iter (fun i -> Lb.complete lb i) picked)
        waves;
      let counts = Array.init nodes (Lb.assigned lb) in
      spread counts <= 1)

(* Least-connections with wave arrivals (assign a burst, then all
   complete — the serve_wave pattern) keeps cumulative shares within
   1 of fair. *)
let prop_lc_fairness =
  QCheck.Test.make ~count:200 ~name:"lb least-connections fairness"
    QCheck.(pair (int_range 1 5) (small_list (int_range 0 20)))
    (fun (nodes, waves) ->
      let lb = Lb.create ~nodes Lb.Least_connections in
      List.iter
        (fun w ->
          let picked = List.init w (fun _ -> Option.get (Lb.assign lb)) in
          List.iter (fun i -> Lb.complete lb i) picked)
        waves;
      let counts = Array.init nodes (Lb.assigned lb) in
      spread counts <= 1)

(* Nic.pair delivers every frame exactly once, FIFO per direction,
   under arbitrary interleavings of transmits and receives. *)
let prop_nic_pair_delivery =
  QCheck.Test.make ~count:100 ~name:"nic pair no-loss fifo"
    QCheck.(
      triple
        (small_list (string_gen_of_size (Gen.int_range 1 64) Gen.printable))
        (small_list (string_gen_of_size (Gen.int_range 1 64) Gen.printable))
        (small_list bool))
    (fun (to_b, to_a, schedule) ->
      let a, b = Nic.pair () in
      let pending_ab = Queue.create () and pending_ba = Queue.create () in
      List.iter (fun s -> Queue.push s pending_ab) to_b;
      List.iter (fun s -> Queue.push s pending_ba) to_a;
      let got_b = ref [] and got_a = ref [] in
      let step dir =
        (* true: transmit one frame in each direction (if any left);
           false: drain one frame from each side. *)
        if dir then begin
          if not (Queue.is_empty pending_ab) then
            Nic.transmit a (Bytes.of_string (Queue.pop pending_ab));
          if not (Queue.is_empty pending_ba) then
            Nic.transmit b (Bytes.of_string (Queue.pop pending_ba))
        end
        else begin
          (match Nic.receive b with
          | Some f -> got_b := Bytes.to_string f :: !got_b
          | None -> ());
          match Nic.receive a with
          | Some f -> got_a := Bytes.to_string f :: !got_a
          | None -> ()
        end
      in
      List.iter step schedule;
      (* Flush whatever the random schedule left behind. *)
      while not (Queue.is_empty pending_ab && Queue.is_empty pending_ba) do
        step true
      done;
      let drained = ref false in
      while not !drained do
        let before = List.length !got_b + List.length !got_a in
        step false;
        drained := List.length !got_b + List.length !got_a = before
      done;
      (* MTU splitting applies beyond 1500 bytes; our frames are <=64
         so delivery must be exact and ordered. *)
      List.rev !got_b = to_b && List.rev !got_a = to_a)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rr_fairness; prop_lc_fairness; prop_nic_pair_delivery ]

let () =
  Alcotest.run "vg_fleet"
    [
      ( "node",
        [
          Alcotest.test_case "config-builders" `Quick test_config_builders;
          Alcotest.test_case "cycle-identity" `Quick test_cycle_identity;
          Alcotest.test_case "connect-local-parity" `Quick
            test_connect_local_parity;
          Alcotest.test_case "addr-codec" `Quick test_addr_codec;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "echo" `Quick test_fabric_echo;
          Alcotest.test_case "fifo" `Quick test_fabric_fifo;
          Alcotest.test_case "no-fabric-refused" `Quick
            test_peer_without_fabric_refused;
        ] );
      ( "lb",
        [
          Alcotest.test_case "round-robin" `Quick test_lb_round_robin;
          Alcotest.test_case "least-connections" `Quick
            test_lb_least_connections;
        ] );
      ( "serving",
        [
          Alcotest.test_case "wave" `Quick test_serve_wave;
          Alcotest.test_case "wave-least-connections" `Quick
            test_serve_wave_least_connections;
          Alcotest.test_case "mixed-load" `Quick test_mixed_wave;
          Alcotest.test_case "rolling-restart" `Quick test_rolling_restart;
          Alcotest.test_case "rootkit-fails-closed" `Quick
            test_rootkit_node_fails_closed;
          Alcotest.test_case "key-distribution" `Quick test_key_distribution;
        ] );
      ("properties", qcheck_cases);
    ]
