(* Kernel tests: boot, the file system (direct and through syscalls),
   descriptors, pipes, fork/exec/wait, mmap, ghost memory syscalls and
   the central enforcement property, signals, sockets, select, and
   loadable-module overrides. *)

let kconfig ?engine ?(mode = Sva.Virtual_ghost) () =
  let config =
    Node_config.(
      default |> with_phys_frames 8192 |> with_disk_sectors 16384
      |> with_seed "ktest" |> with_mode mode)
  in
  match engine with None -> config | Some e -> Node_config.with_engine e config

let boot ?engine ?mode () = Node.kernel (Node.boot (kconfig ?engine ?mode ()))

let init k = Kernel.init_process k

let expect_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

let expect_err expected msg = function
  | Ok _ -> Alcotest.failf "%s: expected %s" msg (Errno.to_string expected)
  | Error e ->
      Alcotest.(check string) msg (Errno.to_string expected) (Errno.to_string e)

(* Write data into a process's user memory the way the application
   would: at user privilege through its own page table. *)
let user_buf = 0x0000_0000_0060_0000L

let rec user_write k (proc : Proc.t) va data =
  ignore (expect_ok "map user range" (Kernel.ensure_user_range k proc va ~len:(Bytes.length data)));
  Kernel.switch_to k proc;
  Machine.set_privilege k.Kernel.machine Machine.User;
  (try Machine.write_bytes_virt k.Kernel.machine va data
   with Machine.Page_fault { va = fault_va; _ } ->
     (* e.g. a copy-on-write page after fork: fault in, retry. *)
     Machine.set_privilege k.Kernel.machine Machine.Kernel;
     ignore (expect_ok "cow fault" (Kernel.handle_page_fault k proc fault_va));
     user_write k proc va data);
  Machine.set_privilege k.Kernel.machine Machine.Kernel

let user_read k (proc : Proc.t) va len =
  ignore (expect_ok "map user range" (Kernel.ensure_user_range k proc va ~len));
  Kernel.switch_to k proc;
  Machine.set_privilege k.Kernel.machine Machine.User;
  let b = Machine.read_bytes_virt k.Kernel.machine va ~len in
  Machine.set_privilege k.Kernel.machine Machine.Kernel;
  b

(* ------------------------------------------------------------------ *)
(* Boot                                                                *)

let test_boot () =
  let k = boot () in
  Alcotest.(check bool) "init exists" true (Kernel.find_proc k 1 <> None);
  Alcotest.(check int) "current" 1 (Kernel.current_proc k).Proc.pid

let test_fs_persists_across_reboot () =
  let machine = Machine.create ~phys_frames:8192 ~disk_sectors:16384 ~seed:"persist" () in
  let k1 = Kernel.boot ~mode:Sva.Virtual_ghost machine in
  let p = init k1 in
  let fd = expect_ok "open" (Syscalls.open_ k1 p "/boot.txt" Syscalls.creat_trunc) in
  user_write k1 p user_buf (Bytes.of_string "survives");
  ignore (expect_ok "write" (Syscalls.write k1 p ~fd ~buf:user_buf ~len:8));
  ignore (expect_ok "close" (Syscalls.close k1 p fd));
  ignore (expect_ok "fsync" (Syscalls.fsync k1 p));
  (* Second boot on the same machine must mount, not reformat. *)
  let k2 = Kernel.boot ~mode:Sva.Virtual_ghost machine in
  let p2 = init k2 in
  let fd2 = expect_ok "reopen" (Syscalls.open_ k2 p2 "/boot.txt" Syscalls.rdonly) in
  ignore (expect_ok "read" (Syscalls.read k2 p2 ~fd:fd2 ~buf:user_buf ~len:8));
  Alcotest.(check string) "content" "survives"
    (Bytes.to_string (user_read k2 p2 user_buf 8))

(* ------------------------------------------------------------------ *)
(* Diskfs (direct)                                                     *)

let test_fs_create_read_write () =
  let k = boot () in
  let ino = expect_ok "create" (Diskfs.create k.Kernel.fs "/a.txt") in
  let data = Bytes.of_string "hello filesystem" in
  Alcotest.(check int) "write" (Bytes.length data)
    (expect_ok "write" (Diskfs.write k.Kernel.fs ~ino ~off:0 data));
  Alcotest.(check string) "read back" "hello filesystem"
    (Bytes.to_string (expect_ok "read" (Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:100)));
  Alcotest.(check string) "offset read" "filesystem"
    (Bytes.to_string (expect_ok "read" (Diskfs.read k.Kernel.fs ~ino ~off:6 ~len:10)))

let test_fs_large_file_indirect () =
  let k = boot () in
  let ino = expect_ok "create" (Diskfs.create k.Kernel.fs "/big") in
  (* 200 KiB crosses from direct (48 KiB) well into the indirect block. *)
  let chunk = Bytes.init 4096 (fun i -> Char.chr (i mod 251)) in
  for b = 0 to 49 do
    Alcotest.(check int) "chunk write" 4096
      (expect_ok "write" (Diskfs.write k.Kernel.fs ~ino ~off:(b * 4096) chunk))
  done;
  let st = expect_ok "stat" (Diskfs.stat k.Kernel.fs ~ino) in
  Alcotest.(check int) "size" (50 * 4096) st.Diskfs.size;
  let back = expect_ok "read" (Diskfs.read k.Kernel.fs ~ino ~off:(37 * 4096) ~len:4096) in
  Alcotest.(check bytes) "indirect content" chunk back

let test_fs_unlink_frees_space () =
  let k = boot () in
  (* Force the root directory's data block to exist first, so the
     baseline excludes it (directories keep their blocks). *)
  ignore (expect_ok "warm" (Diskfs.create k.Kernel.fs "/warmup"));
  let before = Diskfs.free_blocks k.Kernel.fs in
  let ino = expect_ok "create" (Diskfs.create k.Kernel.fs "/tmp1") in
  ignore (expect_ok "write" (Diskfs.write k.Kernel.fs ~ino ~off:0 (Bytes.make 40960 'x')));
  Alcotest.(check bool) "blocks consumed" true (Diskfs.free_blocks k.Kernel.fs < before);
  ignore (expect_ok "unlink" (Diskfs.unlink k.Kernel.fs "/tmp1"));
  Alcotest.(check int) "blocks restored" before (Diskfs.free_blocks k.Kernel.fs);
  expect_err Errno.ENOENT "gone" (Diskfs.lookup k.Kernel.fs "/tmp1")

let test_fs_directories () =
  let k = boot () in
  ignore (expect_ok "mkdir" (Diskfs.mkdir k.Kernel.fs "/sub"));
  ignore (expect_ok "nested" (Diskfs.mkdir k.Kernel.fs "/sub/deep"));
  ignore (expect_ok "create" (Diskfs.create k.Kernel.fs "/sub/deep/f"));
  let ino = expect_ok "lookup" (Diskfs.lookup k.Kernel.fs "/sub/deep/f") in
  let st = expect_ok "stat" (Diskfs.stat k.Kernel.fs ~ino) in
  Alcotest.(check bool) "regular" true (st.Diskfs.itype = Diskfs.Reg);
  let dir = expect_ok "lookup dir" (Diskfs.lookup k.Kernel.fs "/sub/deep") in
  let entries = expect_ok "readdir" (Diskfs.readdir k.Kernel.fs ~ino:dir) in
  Alcotest.(check (list string)) "entries" [ "f" ] (List.map fst entries);
  expect_err Errno.ENOTEMPTY "rmdir non-empty" (Diskfs.rmdir k.Kernel.fs "/sub");
  ignore (expect_ok "unlink" (Diskfs.unlink k.Kernel.fs "/sub/deep/f"));
  ignore (expect_ok "rmdir deep" (Diskfs.rmdir k.Kernel.fs "/sub/deep"));
  ignore (expect_ok "rmdir sub" (Diskfs.rmdir k.Kernel.fs "/sub"))

let test_fs_errors () =
  let k = boot () in
  expect_err Errno.ENOENT "missing" (Diskfs.lookup k.Kernel.fs "/nope");
  ignore (expect_ok "create" (Diskfs.create k.Kernel.fs "/dup"));
  expect_err Errno.EEXIST "duplicate" (Diskfs.create k.Kernel.fs "/dup");
  expect_err Errno.EINVAL "relative path" (Diskfs.lookup k.Kernel.fs "dup");
  ignore (expect_ok "mkdir" (Diskfs.mkdir k.Kernel.fs "/adir"));
  expect_err Errno.EISDIR "unlink dir" (Diskfs.unlink k.Kernel.fs "/adir");
  expect_err Errno.EINVAL "unlink root" (Diskfs.unlink k.Kernel.fs "/")

let test_fs_truncate () =
  let k = boot () in
  let ino = expect_ok "create" (Diskfs.create k.Kernel.fs "/t") in
  ignore (expect_ok "write" (Diskfs.write k.Kernel.fs ~ino ~off:0 (Bytes.make 10000 'y')));
  ignore (expect_ok "truncate" (Diskfs.truncate k.Kernel.fs ~ino ~len:100));
  let st = expect_ok "stat" (Diskfs.stat k.Kernel.fs ~ino) in
  Alcotest.(check int) "shrunk" 100 st.Diskfs.size;
  Alcotest.(check int) "read capped" 100
    (Bytes.length (expect_ok "read" (Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:10000)))

(* Random create/write/read/delete sequences against a pure model: the
   file system must agree with a Map of path -> contents at every
   read, and end state must match exactly. *)
let prop_diskfs_model =
  QCheck2.Test.make ~name:"diskfs agrees with a model under random ops" ~count:30
    QCheck2.Gen.(list_size (int_range 5 60)
                   (triple (int_bound 7) (int_bound 3) (string_size ~gen:printable (int_range 0 9000))))
    (fun ops ->
      let k = boot () in
      let fs = k.Kernel.fs in
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let path i = Printf.sprintf "/model-%d" i in
      let ok = ref true in
      List.iter
        (fun (file, op, data) ->
          let p = path file in
          match op with
          | 0 (* create/overwrite *) -> (
              (match Diskfs.lookup fs p with
              | Ok ino -> ignore (Diskfs.truncate fs ~ino ~len:0)
              | Error _ -> ignore (Diskfs.create fs p));
              match Diskfs.lookup fs p with
              | Ok ino -> (
                  match Diskfs.write fs ~ino ~off:0 (Bytes.of_string data) with
                  | Ok n when n = String.length data -> Hashtbl.replace model p data
                  | Ok _ | Error _ -> ok := false)
              | Error _ -> ok := false)
          | 1 (* append *) -> (
              match (Diskfs.lookup fs p, Hashtbl.find_opt model p) with
              | Ok ino, Some existing -> (
                  match
                    Diskfs.write fs ~ino ~off:(String.length existing)
                      (Bytes.of_string data)
                  with
                  | Ok n when n = String.length data ->
                      Hashtbl.replace model p (existing ^ data)
                  | Ok _ | Error _ -> ok := false)
              | Error _, None -> ()
              | _ -> ok := false)
          | 2 (* delete *) -> (
              match (Diskfs.unlink fs p, Hashtbl.mem model p) with
              | Ok (), true -> Hashtbl.remove model p
              | Error Errno.ENOENT, false -> ()
              | _ -> ok := false)
          | _ (* read and compare *) -> (
              match (Diskfs.lookup fs p, Hashtbl.find_opt model p) with
              | Ok ino, Some expected -> (
                  match Diskfs.read fs ~ino ~off:0 ~len:(String.length expected + 32) with
                  | Ok b -> if Bytes.to_string b <> expected then ok := false
                  | Error _ -> ok := false)
              | Error Errno.ENOENT, None -> ()
              | _ -> ok := false))
        ops;
      (* Final state equality, both directions. *)
      Hashtbl.iter
        (fun p expected ->
          match Diskfs.lookup fs p with
          | Ok ino -> (
              match Diskfs.read fs ~ino ~off:0 ~len:(String.length expected + 32) with
              | Ok b -> if Bytes.to_string b <> expected then ok := false
              | Error _ -> ok := false)
          | Error _ -> ok := false)
        model;
      (match Diskfs.readdir fs ~ino:Diskfs.root_ino with
      | Ok entries ->
          let model_files =
            List.sort compare
              (Hashtbl.fold (fun p _ acc -> String.sub p 1 (String.length p - 1) :: acc) model [])
          in
          let fs_files =
            List.sort compare
              (List.filter (fun n -> String.length n > 5 && String.sub n 0 6 = "model-")
                 (List.map fst entries))
          in
          if model_files <> fs_files then ok := false
      | Error _ -> ok := false);
      !ok)

(* ------------------------------------------------------------------ *)
(* Syscall layer: files, pipes                                         *)

let test_syscall_file_io () =
  let k = boot () in
  let p = init k in
  let fd = expect_ok "open" (Syscalls.open_ k p "/f" Syscalls.creat_trunc) in
  user_write k p user_buf (Bytes.of_string "via syscalls");
  Alcotest.(check int) "write" 12
    (expect_ok "write" (Syscalls.write k p ~fd ~buf:user_buf ~len:12));
  ignore (expect_ok "seek" (Syscalls.lseek k p ~fd ~pos:4));
  let dst = Int64.add user_buf 0x1000L in
  Alcotest.(check int) "read" 8 (expect_ok "read" (Syscalls.read k p ~fd ~buf:dst ~len:100));
  Alcotest.(check string) "data" "syscalls" (Bytes.to_string (user_read k p dst 8));
  ignore (expect_ok "close" (Syscalls.close k p fd));
  expect_err Errno.EBADF "closed fd" (Syscalls.read k p ~fd ~buf:dst ~len:1)

let test_syscall_pipe () =
  let k = boot () in
  let p = init k in
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  user_write k p user_buf (Bytes.of_string "through the pipe");
  Alcotest.(check int) "write" 16
    (expect_ok "write" (Syscalls.write k p ~fd:w ~buf:user_buf ~len:16));
  let dst = Int64.add user_buf 0x1000L in
  Alcotest.(check int) "read" 7 (expect_ok "read" (Syscalls.read k p ~fd:r ~buf:dst ~len:7));
  Alcotest.(check string) "first part" "through" (Bytes.to_string (user_read k p dst 7));
  (* Empty + writer open = EAGAIN; after close = EOF. *)
  Alcotest.(check int) "drain" 9 (expect_ok "read" (Syscalls.read k p ~fd:r ~buf:dst ~len:100));
  expect_err Errno.EAGAIN "would block" (Syscalls.read k p ~fd:r ~buf:dst ~len:1);
  ignore (expect_ok "close w" (Syscalls.close k p w));
  Alcotest.(check int) "EOF" 0 (expect_ok "read" (Syscalls.read k p ~fd:r ~buf:dst ~len:1));
  ignore (expect_ok "close r" (Syscalls.close k p r))

let test_pipe_epipe () =
  let k = boot () in
  let p = init k in
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  ignore (expect_ok "close r" (Syscalls.close k p r));
  user_write k p user_buf (Bytes.of_string "x");
  expect_err Errno.EPIPE "no reader" (Syscalls.write k p ~fd:w ~buf:user_buf ~len:1)

let test_rename () =
  let k = boot () in
  let p = init k in
  let fd = expect_ok "open" (Syscalls.open_ k p "/old" Syscalls.creat_trunc) in
  user_write k p user_buf (Bytes.of_string "moved");
  ignore (expect_ok "write" (Syscalls.write k p ~fd ~buf:user_buf ~len:5));
  ignore (expect_ok "close" (Syscalls.close k p fd));
  ignore (expect_ok "mkdir" (Syscalls.mkdir k p "/dir"));
  ignore (expect_ok "rename" (Syscalls.rename k p ~src:"/old" ~dst:"/dir/new"));
  expect_err Errno.ENOENT "source gone" (Syscalls.open_ k p "/old" Syscalls.rdonly);
  let fd = expect_ok "reopen" (Syscalls.open_ k p "/dir/new" Syscalls.rdonly) in
  ignore (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:5));
  Alcotest.(check string) "content" "moved" (Bytes.to_string (user_read k p user_buf 5));
  (* Rename over an existing file replaces it and frees its storage. *)
  let fd2 = expect_ok "open2" (Syscalls.open_ k p "/other" Syscalls.creat_trunc) in
  ignore (expect_ok "close2" (Syscalls.close k p fd2));
  ignore (expect_ok "replace" (Syscalls.rename k p ~src:"/dir/new" ~dst:"/other"));
  let entries = expect_ok "readdir" (Syscalls.readdir k p "/dir") in
  Alcotest.(check (list string)) "dir emptied" [] (List.map fst entries)

let test_fstat_dup2 () =
  let k = boot () in
  let p = init k in
  let fd = expect_ok "open" (Syscalls.open_ k p "/s" Syscalls.creat_trunc) in
  user_write k p user_buf (Bytes.of_string "123456");
  ignore (expect_ok "write" (Syscalls.write k p ~fd ~buf:user_buf ~len:6));
  let st = expect_ok "fstat" (Syscalls.fstat k p ~fd) in
  Alcotest.(check int) "size" 6 st.Diskfs.size;
  expect_err Errno.EBADF "bad fd" (Syscalls.fstat k p ~fd:99);
  (* dup2 shares the file offset object. *)
  ignore (expect_ok "dup2" (Syscalls.dup2 k p ~src:fd ~dst:17));
  ignore (expect_ok "seek via dup" (Syscalls.lseek k p ~fd:17 ~pos:3));
  Alcotest.(check int) "shared offset read" 3
    (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:10));
  (* dup2 onto a pipe end drops its reference. *)
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  ignore (expect_ok "dup2 over writer" (Syscalls.dup2 k p ~src:fd ~dst:w));
  expect_err Errno.EAGAIN "reader sees no writer yet... still EAGAIN? no:"
    (match Syscalls.read k p ~fd:r ~buf:user_buf ~len:1 with
    | Ok 0 -> Error Errno.EAGAIN (* EOF is also acceptable *)
    | r -> r)

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)

let test_fork_and_wait () =
  let k = boot () in
  let p = init k in
  user_write k p user_buf (Bytes.of_string "parent data");
  let child = expect_ok "fork" (Syscalls.fork k p) in
  Alcotest.(check bool) "new pid" true (child.Proc.pid <> p.Proc.pid);
  (* The child sees a copy... *)
  Alcotest.(check string) "child copy" "parent data"
    (Bytes.to_string (user_read k child user_buf 11));
  (* ...and writes to it do not affect the parent. *)
  user_write k child user_buf (Bytes.of_string "child  data");
  Alcotest.(check string) "parent intact" "parent data"
    (Bytes.to_string (user_read k p user_buf 11));
  expect_err Errno.EAGAIN "still running" (Syscalls.wait k p);
  Syscalls.exit_ k child 7;
  let pid, status = expect_ok "wait" (Syscalls.wait k p) in
  Alcotest.(check int) "pid" child.Proc.pid pid;
  Alcotest.(check int) "status" 7 status;
  expect_err Errno.ECHILD "no children" (Syscalls.wait k p)

let make_image k ~name =
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string "installer") in
  Appimage.install
    ~vg_key:(Sva.vg_private_key_for_installer k.Kernel.sva)
    ~rng ~name
    ~payload:(Bytes.of_string ("program text of " ^ name))
    ~entry:0x400000L
    ~app_key:(Bytes.of_string "0123456789abcdef")
    ()

let test_exec () =
  let k = boot () in
  let p = init k in
  let image = make_image k ~name:"demo" in
  ignore (expect_ok "exec" (Syscalls.execve k p image));
  let ic = Sva.thread_icontext k.Kernel.sva ~tid:p.Proc.tid in
  Alcotest.(check int64) "pc at entry" 0x400000L ic.Icontext.pc;
  (match Sva.get_app_key k.Kernel.sva ~pid:p.Proc.pid with
  | Some key -> Alcotest.(check string) "app key" "0123456789abcdef" (Bytes.to_string key)
  | None -> Alcotest.fail "no app key")

let test_exec_refuses_tampered_image () =
  let k = boot () in
  let p = init k in
  let image = Appimage.tamper_payload (make_image k ~name:"evil") in
  expect_err Errno.EACCES "refused" (Syscalls.execve k p image);
  Alcotest.(check bool) "logged" true
    (Console.contains (Machine.console k.Kernel.machine) "execve refused")

let test_exec_native_skips_validation () =
  let k = boot ~mode:Sva.Native_build () in
  let p = init k in
  let image = Appimage.tamper_payload (make_image k ~name:"evil") in
  (* The baseline kernel has no signature checking: tampered images
     load — that is the vulnerable world. *)
  ignore (expect_ok "native loads anything" (Syscalls.execve k p image))

(* ------------------------------------------------------------------ *)
(* Memory                                                              *)

let test_mmap_munmap () =
  let k = boot () in
  let p = init k in
  let va = expect_ok "mmap" (Syscalls.mmap k p ~len:8192) in
  user_write k p va (Bytes.of_string "mapped!");
  Alcotest.(check string) "usable" "mapped!" (Bytes.to_string (user_read k p va 7));
  ignore (expect_ok "munmap" (Syscalls.munmap k p ~addr:va ~len:8192));
  Alcotest.(check bool) "unmapped" true
    (try
       Kernel.switch_to k p;
       Machine.set_privilege k.Kernel.machine Machine.User;
       ignore (Machine.read_virt k.Kernel.machine va ~len:8);
       Machine.set_privilege k.Kernel.machine Machine.Kernel;
       false
     with Machine.Page_fault _ ->
       Machine.set_privilege k.Kernel.machine Machine.Kernel;
       true)

let test_page_fault_handler () =
  let k = boot () in
  let p = init k in
  let va = 0x0000_0000_0070_0000L in
  ignore (expect_ok "fault" (Kernel.handle_page_fault k p va));
  user_write k p va (Bytes.of_string "demand");
  Alcotest.(check string) "mapped by fault" "demand" (Bytes.to_string (user_read k p va 6))

(* The central enforcement property, end to end through the kernel. *)
let ghost_heap = Int64.add Layout.ghost_start 0x100000L

let test_ghost_isolation_end_to_end () =
  let run mode =
    let k = boot ~mode () in
    let p = init k in
    ignore (expect_ok "allocgm" (Syscalls.allocgm k p ~va:ghost_heap ~pages:1));
    (* The application stores a secret in ghost memory. *)
    Kernel.switch_to k p;
    Machine.set_privilege k.Kernel.machine Machine.User;
    Machine.write_bytes_virt k.Kernel.machine ghost_heap (Bytes.of_string "S3CRET!!");
    Machine.set_privilege k.Kernel.machine Machine.Kernel;
    (* Hostile kernel code tries to read it with an ordinary
       (instrumented, under VG) kernel load. *)
    Bytes.to_string (Kmem.read_bytes k.Kernel.kmem ghost_heap ~len:8)
  in
  Alcotest.(check string) "native kernel reads the secret" "S3CRET!!"
    (run Sva.Native_build);
  Alcotest.(check bool) "vg kernel cannot" true (run Sva.Virtual_ghost <> "S3CRET!!")

let test_freegm_syscall () =
  let k = boot () in
  let p = init k in
  ignore (expect_ok "allocgm" (Syscalls.allocgm k p ~va:ghost_heap ~pages:2));
  Alcotest.(check int) "region recorded" 1 (List.length p.Proc.ghost_regions);
  ignore (expect_ok "freegm" (Syscalls.freegm k p ~va:ghost_heap ~pages:2));
  Alcotest.(check int) "region gone" 0 (List.length p.Proc.ghost_regions)

let test_exit_releases_ghost () =
  let k = boot () in
  let p = init k in
  let child = expect_ok "fork" (Syscalls.fork k p) in
  let free_before = Frame_alloc.free_count k.Kernel.frames in
  ignore (expect_ok "allocgm" (Syscalls.allocgm k child ~va:ghost_heap ~pages:4));
  Syscalls.exit_ k child 0;
  Alcotest.(check int) "frames recovered" free_before
    (Frame_alloc.free_count k.Kernel.frames)

let test_cow_sharing_and_breaking () =
  let k = boot () in
  let p = init k in
  user_write k p user_buf (Bytes.of_string "shared!");
  let child = expect_ok "fork" (Syscalls.fork k p) in
  let vpage = Int64.shift_right_logical user_buf 12 in
  let parent_frame = Hashtbl.find p.Proc.user_frames vpage in
  let child_frame = Hashtbl.find child.Proc.user_frames vpage in
  Alcotest.(check int) "frame shared after fork" parent_frame child_frame;
  Alcotest.(check bool) "marked cow both sides" true
    (Hashtbl.mem p.Proc.cow vpage && Hashtbl.mem child.Proc.cow vpage);
  (* Child write breaks the share. *)
  user_write k child user_buf (Bytes.of_string "private");
  let child_frame' = Hashtbl.find child.Proc.user_frames vpage in
  Alcotest.(check bool) "child got its own frame" true (child_frame' <> parent_frame);
  Alcotest.(check string) "parent data intact" "shared!"
    (Bytes.to_string (user_read k p user_buf 7));
  Syscalls.exit_ k child 0;
  ignore (Syscalls.wait k p)

let test_cow_kernel_copyout_breaks_share () =
  (* A read() into a COW page must not scribble on the sibling. *)
  let k = boot () in
  let p = init k in
  let fd = expect_ok "open" (Syscalls.open_ k p "/cowfile" Syscalls.creat_trunc) in
  user_write k p user_buf (Bytes.of_string "ABCDEFGH");
  ignore (expect_ok "write" (Syscalls.write k p ~fd ~buf:user_buf ~len:8));
  let child = expect_ok "fork" (Syscalls.fork k p) in
  ignore (expect_ok "seek" (Syscalls.lseek k child ~fd ~pos:0));
  (* Kernel copyout lands in the child's page... *)
  ignore (expect_ok "read" (Syscalls.read k child ~fd ~buf:(Int64.add user_buf 16L) ~len:8));
  (* ...and the parent's copy of that page is untouched. *)
  Alcotest.(check string) "parent page clean" "\000\000\000\000"
    (Bytes.to_string (user_read k p (Int64.add user_buf 16L) 4));
  Syscalls.exit_ k child 0;
  ignore (Syscalls.wait k p)

let test_cow_frames_released_once () =
  (* Fork then exit both sides: every frame must come back exactly
     once (refcounting, no double free). *)
  let k = boot () in
  let p = init k in
  let before = Frame_alloc.free_count k.Kernel.frames in
  let child = expect_ok "fork" (Syscalls.fork k p) in
  user_write k child user_buf (Bytes.of_string "dirty");
  Syscalls.exit_ k child 0;
  ignore (expect_ok "wait" (Syscalls.wait k p));
  Alcotest.(check bool) "frames recovered (within cow slack)" true
    (Frame_alloc.free_count k.Kernel.frames >= before - 1)

(* ------------------------------------------------------------------ *)
(* Signals                                                             *)

let test_signal_delivery_via_vm () =
  let k = boot () in
  let p = init k in
  let handler = 0x0000_0000_0041_0000L in
  (* The application wrapper registers the handler with the VM and the
     kernel. *)
  Sva.permit_function k.Kernel.sva ~pid:p.Proc.pid handler;
  ignore (expect_ok "signal" (Syscalls.signal k p ~signum:10 ~handler));
  ignore (expect_ok "kill" (Syscalls.kill k p ~pid:p.Proc.pid ~signum:10));
  let ic = Sva.thread_icontext k.Kernel.sva ~tid:p.Proc.tid in
  Alcotest.(check int64) "pc -> handler" handler ic.Icontext.pc;
  Alcotest.(check int64) "arg = signum" 10L ic.Icontext.gprs.(0);
  ignore (expect_ok "sigreturn" (Syscalls.sigreturn k p));
  Alcotest.(check bool) "restored" true
    ((Sva.thread_icontext k.Kernel.sva ~tid:p.Proc.tid).Icontext.pc <> handler)

let test_signal_unregistered_handler_blocked () =
  let k = boot () in
  let p = init k in
  let evil = 0x0000_6660_0000_0000L in
  (* Installed directly (as a malicious module would), never permitted. *)
  ignore (expect_ok "signal" (Syscalls.signal k p ~signum:10 ~handler:evil));
  ignore (expect_ok "kill" (Syscalls.kill k p ~pid:p.Proc.pid ~signum:10));
  let ic = Sva.thread_icontext k.Kernel.sva ~tid:p.Proc.tid in
  Alcotest.(check bool) "pc unchanged" true (ic.Icontext.pc <> evil);
  Alcotest.(check bool) "refusal logged" true
    (Console.contains (Machine.console k.Kernel.machine) "not a registered handler")

let test_kill_errors () =
  let k = boot () in
  let p = init k in
  expect_err Errno.ESRCH "no such pid" (Syscalls.kill k p ~pid:4242 ~signum:9);
  expect_err Errno.EINVAL "sigreturn w/o signal" (Syscalls.sigreturn k p)

(* ------------------------------------------------------------------ *)
(* Sockets and select                                                  *)

let test_socket_end_to_end () =
  let k = boot () in
  let p = init k in
  let lfd = expect_ok "listen" (Syscalls.listen k p ~port:80) in
  (* Remote client connects over the simulated wire. *)
  let ep = Netstack.Remote.connect (Machine.remote_nic k.Kernel.machine) ~port:80 in
  let cfd = expect_ok "accept" (Syscalls.accept k p ~fd:lfd) in
  Netstack.Remote.send ep (Bytes.of_string "GET /x");
  let dst = user_buf in
  Alcotest.(check int) "recv" 6 (expect_ok "recv" (Syscalls.recv k p ~fd:cfd ~buf:dst ~len:100));
  Alcotest.(check string) "request" "GET /x" (Bytes.to_string (user_read k p dst 6));
  user_write k p dst (Bytes.of_string "200 OK");
  ignore (expect_ok "send" (Syscalls.send k p ~fd:cfd ~buf:dst ~len:6));
  (match Netstack.Remote.recv ep with
  | Some b -> Alcotest.(check string) "response" "200 OK" (Bytes.to_string b)
  | None -> Alcotest.fail "no response on the wire");
  expect_err Errno.EAGAIN "no more pending" (Syscalls.accept k p ~fd:lfd)

let test_select () =
  let k = boot () in
  let p = init k in
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  Alcotest.(check (list int)) "empty pipe not ready" []
    (expect_ok "select" (Syscalls.select k p [ r ]));
  user_write k p user_buf (Bytes.of_string "!");
  ignore (expect_ok "write" (Syscalls.write k p ~fd:w ~buf:user_buf ~len:1));
  Alcotest.(check (list int)) "ready after write" [ r ]
    (expect_ok "select" (Syscalls.select k p [ r ]))

let test_netstack_details () =
  let k = boot () in
  let p = init k in
  (* Connection to an unbound port: frames silently dropped, accept on
     a bound port skips them. *)
  let lfd = expect_ok "listen" (Syscalls.listen k p ~port:8080) in
  expect_err Errno.EEXIST "port taken"
    (match Syscalls.listen k p ~port:8080 with Ok _ -> Ok () | Error e -> Error e);
  let _refused = Netstack.Remote.connect (Machine.remote_nic k.Kernel.machine) ~port:9999 in
  expect_err Errno.EAGAIN "refused conn not accepted" (Syscalls.accept k p ~fd:lfd);
  (* A real connection still goes through afterwards. *)
  let _ok = Netstack.Remote.connect (Machine.remote_nic k.Kernel.machine) ~port:8080 in
  ignore (expect_ok "accept" (Syscalls.accept k p ~fd:lfd))

let prop_pipe_model =
  QCheck2.Test.make ~name:"pipe behaves like a byte queue" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (pair bool (string_size ~gen:printable (int_range 0 50))))
    (fun ops ->
      let pipe = Pipe_dev.create ~capacity:256 () in
      Pipe_dev.add_reader pipe;
      Pipe_dev.add_writer pipe;
      let model = Buffer.create 64 in
      let consumed = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_write, payload) ->
          if is_write then begin
            match Pipe_dev.write pipe (Bytes.of_string payload) with
            | Ok n -> Buffer.add_string model (String.sub payload 0 n)
            | Error Errno.EAGAIN -> ()
            | Error _ -> ok := false
          end
          else begin
            let want = 1 + (String.length payload mod 17) in
            match Pipe_dev.read pipe want with
            | Ok b ->
                let expect_len =
                  min want (Buffer.length model - !consumed)
                in
                if Bytes.length b <> expect_len then ok := false
                else if
                  Bytes.to_string b
                  <> Buffer.sub model !consumed expect_len
                then ok := false
                else consumed := !consumed + expect_len
            | Error Errno.EAGAIN ->
                if Buffer.length model - !consumed > 0 then ok := false
            | Error _ -> ok := false
          end)
        ops;
      !ok)

(* ------------------------------------------------------------------ *)
(* Modules                                                             *)

let constant_read_module () =
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  Builder.ret b (Some (Imm 42L));
  Builder.program b

let test_module_override () =
  let k = boot () in
  let p = init k in
  Syscalls.register_builtin_externs k;
  (match Module_loader.load k ~name:"const_read" (constant_read_module ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" (Module_loader.describe_load_error e));
  Alcotest.(check (list string)) "override registered" [ "read" ]
    (Module_loader.loaded_overrides k);
  let fd = expect_ok "open" (Syscalls.open_ k p "/f" Syscalls.creat_trunc) in
  Alcotest.(check int) "hijacked result" 42
    (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:10));
  Module_loader.unload k ~name:"const_read";
  Alcotest.(check int) "genuine read restored" 0
    (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:10))

let test_module_chains_to_genuine () =
  let k = boot () in
  let p = init k in
  Syscalls.register_builtin_externs k;
  (* A passthrough module: calls the genuine handler and adds 1000. *)
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  let real = Builder.call b "extern.genuine_read" [ Reg "fd"; Reg "buf"; Reg "len" ] in
  let bumped = Builder.bin b Add real (Imm 1000L) in
  Builder.ret b (Some bumped);
  (match Module_loader.load k ~name:"bump" (Builder.program b) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" (Module_loader.describe_load_error e));
  let fd = expect_ok "open" (Syscalls.open_ k p "/g" Syscalls.creat_trunc) in
  user_write k p user_buf (Bytes.of_string "12345");
  ignore (expect_ok "write" (Syscalls.write k p ~fd ~buf:user_buf ~len:5));
  ignore (expect_ok "seek" (Syscalls.lseek k p ~fd ~pos:0));
  Alcotest.(check int) "5 + 1000" 1005
    (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:5));
  Module_loader.unload k ~name:"bump"

let test_malformed_module_rejected () =
  let k = boot () in
  let f : Ir.func =
    { name = "sys_read"; params = []; blocks = [ { label = "entry"; instrs = []; term = Br "nowhere" } ] }
  in
  match Module_loader.load k ~name:"broken" { funcs = [ f ] } with
  | Ok () -> Alcotest.fail "must reject malformed module"
  | Error (Module_loader.Compile_rejected _) -> ()
  | Error e -> Alcotest.failf "wrong error class: %s" (Module_loader.describe_load_error e)

(* A module doing raw port I/O is well-formed IR and compiles, but the
   load-time image verifier must refuse it under Virtual Ghost — with a
   structured reason, ENOEXEC at the syscall boundary, and a Security
   event on the observability stream. *)
let test_privileged_module_rejected () =
  let evil () =
    let b = Builder.create () in
    Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
    Builder.io_write b ~port:(Imm 0x3f8L) (Imm 0x41L);
    Builder.ret b (Some (Imm 0L));
    Builder.program b
  in
  let recorder = Vg_obs.Obs_recorder.create () in
  let result =
    Vg_obs.Obs.with_sink Vg_obs.Obs.default
      (Vg_obs.Obs_recorder.sink recorder)
      (fun () ->
        let k = boot () in
        Module_loader.load k ~name:"evil_io" (evil ()))
  in
  (match result with
  | Ok () -> Alcotest.fail "privileged module must be rejected"
  | Error
      (Module_loader.Cache_refused (Vg_compiler.Trans_cache.Rejected_by_verifier vs)
       as err) ->
      Alcotest.(check bool) "verifier names the privileged invariant" true
        (List.exists
           (fun (v : Vg_compiler.Image_verify.violation) ->
             v.invariant = Vg_compiler.Image_verify.Privileged && v.func = "sys_read")
           vs);
      Alcotest.(check string) "maps to ENOEXEC" "ENOEXEC"
        (Errno.to_string (Module_loader.errno_of_load_error err))
  | Error e -> Alcotest.failf "wrong error class: %s" (Module_loader.describe_load_error e));
  Alcotest.(check bool) "security event emitted" true
    (Vg_obs.Obs_recorder.count_matching recorder (function
       | Vg_obs.Obs.Event.Security { subsystem = "image-verify"; _ } -> true
       | _ -> false)
    > 0);
  (* The baseline build is not instrumented, so nothing is verified and
     the same module loads — the protection is a Virtual Ghost gain. *)
  let k = boot ~mode:Sva.Native_build () in
  match Module_loader.load k ~name:"evil_io" (evil ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "baseline load: %s" (Module_loader.describe_load_error e)

(* The same override must work — and return the same hijacked result —
   under every execution engine.  Closure compilation happens at load
   time, behind the verifier, and changes nothing observable. *)
let test_module_override_engines () =
  List.iter
    (fun engine ->
      let k = boot ~engine () in
      let p = init k in
      Syscalls.register_builtin_externs k;
      (match Module_loader.load k ~name:"const_read" (constant_read_module ()) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "load: %s" (Module_loader.describe_load_error e));
      let fd = expect_ok "open" (Syscalls.open_ k p "/f" Syscalls.creat_trunc) in
      Alcotest.(check int)
        ("hijacked result under "
        ^ Vg_compiler.Exec_engine.to_string engine)
        42
        (expect_ok "read" (Syscalls.read k p ~fd ~buf:user_buf ~len:10));
      Module_loader.unload k ~name:"const_read")
    Vg_compiler.Exec_engine.all

(* The compiled engine obtains artifacts only through the verifying
   cache: an image the verifier refuses is never closure-compiled and
   the load fails exactly as under the slot executor. *)
let test_compiled_engine_refuses_unverified () =
  let evil =
    let b = Builder.create () in
    Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
    Builder.io_write b ~port:(Imm 0x3f8L) (Imm 0x41L);
    Builder.ret b (Some (Imm 0L));
    Builder.program b
  in
  let recorder = Vg_obs.Obs_recorder.create () in
  let result =
    Vg_obs.Obs.with_sink Vg_obs.Obs.default
      (Vg_obs.Obs_recorder.sink recorder)
      (fun () ->
        let k = boot ~engine:Vg_compiler.Exec_engine.Compiled () in
        Module_loader.load k ~name:"evil_io" evil)
  in
  (match result with
  | Ok () -> Alcotest.fail "compiled engine executed an unverifiable image"
  | Error
      (Module_loader.Cache_refused (Vg_compiler.Trans_cache.Rejected_by_verifier _)
       as err) ->
      Alcotest.(check string) "maps to ENOEXEC" "ENOEXEC"
        (Errno.to_string (Module_loader.errno_of_load_error err))
  | Error e -> Alcotest.failf "wrong error class: %s" (Module_loader.describe_load_error e));
  Alcotest.(check bool) "security event emitted" true
    (Vg_obs.Obs_recorder.count_matching recorder (function
       | Vg_obs.Obs.Event.Security { subsystem = "image-verify"; _ } -> true
       | _ -> false)
    > 0)

(* ------------------------------------------------------------------ *)
(* Poll readiness                                                      *)

let test_poll_empty_set () =
  let k = boot () in
  let p = init k in
  Alcotest.(check (list int)) "empty set returns at once" []
    (expect_ok "poll" (Syscalls.poll k p []))

let test_poll_closed_fd_ready () =
  let k = boot () in
  let p = init k in
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  ignore (expect_ok "close" (Syscalls.close k p r));
  (* A dead descriptor must report ready (the caller's next operation
     gets its EBADF) instead of wedging the poller forever. *)
  Alcotest.(check (list int)) "closed fd ready" [ r ]
    (expect_ok "poll" (Syscalls.poll k p [ r ]));
  (* EOF counts as readable on a live descriptor too. *)
  let r2, _w2 = expect_ok "pipe" (Syscalls.pipe k p) in
  ignore (expect_ok "close w" (Syscalls.close k p w));
  ignore r2

let test_poll_level_triggered_rearm () =
  let k = boot () in
  let p = init k in
  let r, w = expect_ok "pipe" (Syscalls.pipe k p) in
  user_write k p user_buf (Bytes.of_string "!");
  ignore (expect_ok "write" (Syscalls.write k p ~fd:w ~buf:user_buf ~len:1));
  (* Level-triggered and non-consuming: ready stays ready until the
     data is actually read... *)
  Alcotest.(check (list int)) "ready" [ r ]
    (expect_ok "poll" (Syscalls.poll k p [ r ]));
  Alcotest.(check (list int)) "still ready (non-consuming)" [ r ]
    (expect_ok "poll" (Syscalls.poll k p [ r ]));
  ignore (expect_ok "read" (Syscalls.read k p ~fd:r ~buf:user_buf ~len:1));
  (* ... and re-arms: drained means not ready (no block hook installed,
     so poll degrades to one scan). *)
  Alcotest.(check (list int)) "drained re-arms" []
    (expect_ok "poll" (Syscalls.poll k p [ r ]));
  user_write k p user_buf (Bytes.of_string "!");
  ignore (expect_ok "write" (Syscalls.write k p ~fd:w ~buf:user_buf ~len:1));
  Alcotest.(check (list int)) "ready again" [ r ]
    (expect_ok "poll" (Syscalls.poll k p [ r ]))

(* ------------------------------------------------------------------ *)
(* The numbered ABI and the submission ring                            *)

let prop_errno_abi_roundtrip =
  QCheck2.Test.make ~name:"errno round-trips the numbered ABI" ~count:300
    QCheck2.Gen.(pair (oneofl Errno.all) (int_bound 1_000_000))
    (fun (e, n) ->
      Errno.of_int (Errno.to_int e) = Some e
      && Errno.of_string (Errno.to_string e) = Some e
      && Format.asprintf "%a" Errno.pp e = Errno.to_string e
      && Syscall_abi.decode_int (Syscall_abi.encode_int (Error e)) = Error e
      && Syscall_abi.decode_int (Syscall_abi.encode_int (Ok n)) = Ok n
      && Syscall_abi.decode_addr (Syscall_abi.encode_addr (Error e)) = Error e)

let test_abi_table_consistent () =
  List.iter
    (fun s ->
      let name = Syscall_abi.Sysno.to_name s in
      Alcotest.(check bool)
        (Printf.sprintf "of_name %s" name)
        true
        (Syscall_abi.Sysno.of_name name = Some s))
    Syscall_abi.Sysno.all;
  Alcotest.(check int) "table size" Syscall_abi.Sysno.count
    (List.length Syscall_abi.Sysno.all);
  Alcotest.(check bool) "unknown name" true
    (Syscall_abi.Sysno.of_name "no_such_call" = None);
  Alcotest.(check bool) "invalid sysno" true (Syscall_abi.Sysno.of_int (-1) = None);
  Alcotest.(check bool) "past-end sysno" true
    (Syscall_abi.Sysno.of_int Syscall_abi.Sysno.count = None)

(* The registered [Dispatch] entries are generated from the same table
   ([Entry.make] copies the descriptor), so name<->number bijection and
   the wire metadata can never drift apart. *)
let prop_abi_entry_agreement =
  QCheck2.Test.make ~name:"sysno bijection and Entry/arity agreement" ~count:200
    QCheck2.Gen.(int_range 0 (Syscall_abi.Sysno.count - 1))
    (fun n ->
      match Syscall_abi.Sysno.of_int n with
      | None -> false
      | Some s -> (
          let d = Syscall_abi.describe s in
          Syscall_abi.Sysno.of_name (Syscall_abi.Sysno.to_name s) = Some s
          && Syscall_abi.Sysno.to_int s = n
          && d.Syscall_abi.name = Syscall_abi.Sysno.to_name s
          && d.Syscall_abi.arity >= 0
          && d.Syscall_abi.arity <= 4
          && d.Syscall_abi.codec = Syscall_abi.codec s
          &&
          match Dispatch.entry s with
          | None -> false
          | Some e ->
              e.Syscall_abi.Entry.name = d.Syscall_abi.name
              && e.Syscall_abi.Entry.arity = d.Syscall_abi.arity
              && e.Syscall_abi.Entry.codec = d.Syscall_abi.codec
              && Syscall_abi.Sysno.equal e.Syscall_abi.Entry.sysno s))

let ring_base = 0x0000_0000_0070_0000L

(* Stage a ring in user memory the way the wrapper library would:
   zeroed header with sq_tail announcing the entries. *)
let stage_ring k p ~depth entries =
  let region = Bytes.make (Syscall_ring.region_bytes ~depth) '\000' in
  Bytes.set_int64_le region Syscall_ring.sq_tail_off
    (Int64.of_int (List.length entries));
  List.iteri
    (fun slot e ->
      Syscall_ring.write_sqe region ~off:(Syscall_ring.sqe_off ~depth ~slot) e)
    entries;
  user_write k p ring_base region

let read_cqe_slot k p ~depth slot =
  let off = Syscall_ring.cqe_off ~depth ~slot in
  Syscall_ring.read_cqe
    (user_read k p (Int64.add ring_base (Int64.of_int off)) Syscall_ring.cqe_bytes)
    ~off:0

let ring_counter k p off =
  Int64.to_int
    (Bytes.get_int64_le (user_read k p (Int64.add ring_base (Int64.of_int off)) 8) 0)

let test_ring_enter_batch () =
  let k = boot () in
  let p = init k in
  let depth = 4 in
  stage_ring k p ~depth
    [
      { Syscall_ring.sysno = Syscall_abi.Sysno.to_int Syscall_abi.sys_getpid; args = [||]; user_data = 7L };
      { Syscall_ring.sysno = Syscall_abi.Sysno.to_int Syscall_abi.sys_getpid; args = [||]; user_data = 8L };
      { Syscall_ring.sysno = 999; args = [||]; user_data = 9L };
    ];
  Alcotest.(check int) "consumed" 3
    (expect_ok "ring_enter"
       (Syscalls.ring_enter k p ~ring:ring_base ~depth ~to_submit:3));
  Alcotest.(check int) "sq_head published" 3 (ring_counter k p Syscall_ring.sq_head_off);
  Alcotest.(check int) "cq_tail published" 3 (ring_counter k p Syscall_ring.cq_tail_off);
  let c0 = read_cqe_slot k p ~depth 0 and c1 = read_cqe_slot k p ~depth 1 in
  let c2 = read_cqe_slot k p ~depth 2 in
  Alcotest.(check bool) "cookies in order" true
    (c0.Syscall_ring.user_data = 7L && c1.Syscall_ring.user_data = 8L
    && c2.Syscall_ring.user_data = 9L);
  Alcotest.(check int) "getpid result" p.Proc.pid
    (expect_ok "cqe0" (Syscall_abi.decode_int c0.Syscall_ring.result));
  expect_err Errno.ENOSYS "unknown sysno refused"
    (Syscall_abi.decode_int c2.Syscall_ring.result)

let test_ring_enter_validation () =
  let k = boot () in
  let p = init k in
  expect_err Errno.EINVAL "depth 0"
    (Syscalls.ring_enter k p ~ring:ring_base ~depth:0 ~to_submit:1);
  expect_err Errno.EINVAL "negative to_submit"
    (Syscalls.ring_enter k p ~ring:ring_base ~depth:4 ~to_submit:(-1));
  (* The ring region itself must be traditional user memory: the
     kernel reads submissions and writes completions there, which is
     exactly what ghost memory forbids. *)
  expect_err Errno.EFAULT "ghost ring refused"
    (Syscalls.ring_enter k p ~ring:Layout.ghost_start ~depth:4 ~to_submit:1);
  expect_err Errno.EFAULT "kernel ring refused"
    (Syscalls.ring_enter k p ~ring:0L ~depth:4 ~to_submit:1)

let test_ring_amortises_trap_protocol () =
  (* One ring_enter with a batch of getpids must cost less than the
     same getpids as individual traps — the whole point of the ring. *)
  let batched, direct =
    let k = boot () in
    let p = init k in
    let n = 8 in
    let entries =
      List.init n (fun i ->
          { Syscall_ring.sysno = Syscall_abi.Sysno.to_int Syscall_abi.sys_getpid; args = [||];
            user_data = Int64.of_int i })
    in
    stage_ring k p ~depth:n entries;
    let m = k.Kernel.machine in
    let t0 = Machine.cycles m in
    ignore (expect_ok "ring" (Syscalls.ring_enter k p ~ring:ring_base ~depth:n ~to_submit:n));
    let t1 = Machine.cycles m in
    for _ = 1 to n do
      ignore (Syscalls.getpid k p)
    done;
    let t2 = Machine.cycles m in
    (t1 - t0, t2 - t1)
  in
  if batched >= direct then
    Alcotest.failf "batch of 8 cost %d cycles, direct calls %d" batched direct

(* ------------------------------------------------------------------ *)
(* Syscall-flow integrity                                              *)

let sysno_int = Syscall_abi.Sysno.to_int

let sfip_graph ~entries ~allows =
  let g = Vg_compiler.Sfip.create ~n:Syscall_abi.Sysno.count in
  List.iter (fun s -> Vg_compiler.Sfip.allow_entry g (sysno_int s)) entries;
  List.iter
    (fun (a, b) -> Vg_compiler.Sfip.allow g ~from:(sysno_int a) ~to_:(sysno_int b))
    allows;
  g

let count_sfip_kills recorder =
  Vg_obs.Obs_recorder.count_matching recorder (function
    | Vg_obs.Obs.Event.Security { subsystem = "sfip"; _ } -> true
    | _ -> false)

let with_sfip_events f =
  let recorder = Vg_obs.Obs_recorder.create () in
  let result =
    Vg_obs.Obs.with_sink Vg_obs.Obs.default
      (Vg_obs.Obs_recorder.sink recorder)
      f
  in
  (result, count_sfip_kills recorder)

let child k = expect_ok "create child" (Kernel.create_process k ~parent:(init k))

let test_esfip_distinct () =
  Alcotest.(check int) "ESFIP is 97" 97 (Errno.to_int Errno.ESFIP);
  Alcotest.(check bool) "distinct from EPERM" true
    (Errno.to_int Errno.ESFIP <> Errno.to_int Errno.EPERM);
  Alcotest.(check bool) "of_int inverts" true (Errno.of_int 97 = Some Errno.ESFIP);
  Alcotest.(check string) "spelled ESFIP" "ESFIP" (Errno.to_string Errno.ESFIP)

(* A direct out-of-policy trap kills the process: one Security{sfip}
   event, ESFIP to the caller, exit status 137, and every later
   syscall refused without a second report. *)
let test_sfip_direct_violation () =
  let k = boot () in
  let p = child k in
  p.Proc.policy <-
    Some
      (Syscall_policy.enforce
         (sfip_graph ~entries:[ Syscall_abi.sys_getpid ]
            ~allows:
              [
                (Syscall_abi.sys_getpid, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_open);
                (Syscall_abi.sys_open, Syscall_abi.sys_getpid);
              ]));
  let (), kills =
    with_sfip_events (fun () ->
        ignore (Syscalls.getpid k p);
        let fd = expect_ok "in-policy open" (Syscalls.open_ k p "/s" Syscalls.creat_trunc) in
        ignore fd;
        ignore (Syscalls.getpid k p);
        expect_err Errno.ESFIP "out-of-policy unlink" (Syscalls.unlink k p "/s"))
  in
  Alcotest.(check int) "exactly one sfip event" 1 kills;
  Alcotest.(check bool) "process killed" true (Proc.is_zombie p);
  (* Killed means killed: later calls are refused cheaply and silently. *)
  let (), more =
    with_sfip_events (fun () ->
        expect_err Errno.ESFIP "post-kill close" (Syscalls.close k p 3);
        expect_err Errno.ESFIP "post-kill open" (Syscalls.open_ k p "/t" Syscalls.rdonly))
  in
  Alcotest.(check int) "no further events" 0 more;
  let pid, status = expect_ok "reap" (Syscalls.wait k (init k)) in
  Alcotest.(check int) "reaped the killed pid" p.Proc.pid pid;
  Alcotest.(check int) "status 137" 137 status

(* An out-of-policy entry anywhere in a ring batch refuses the whole
   batch before anything runs: ESFIP from ring_enter, no completions,
   no header movement, one event. *)
let test_sfip_ring_precheck () =
  let k = boot () in
  let p = child k in
  p.Proc.policy <-
    Some
      (Syscall_policy.enforce
         (sfip_graph ~entries:[ Syscall_abi.sys_ring_enter ]
            ~allows:
              [
                (Syscall_abi.sys_ring_enter, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_ring_enter);
              ]));
  let depth = 4 in
  let getpid u =
    { Syscall_ring.sysno = sysno_int Syscall_abi.sys_getpid; args = [||]; user_data = u }
  in
  stage_ring k p ~depth
    [
      getpid 1L;
      getpid 2L;
      { Syscall_ring.sysno = sysno_int Syscall_abi.sys_unlink; args = [||]; user_data = 3L };
      getpid 4L;
    ];
  let (), kills =
    with_sfip_events (fun () ->
        expect_err Errno.ESFIP "batch refused"
          (Syscalls.ring_enter k p ~ring:ring_base ~depth ~to_submit:4))
  in
  Alcotest.(check int) "one sfip event for the batch" 1 kills;
  Alcotest.(check int) "nothing consumed" 0 (ring_counter k p Syscall_ring.sq_head_off);
  Alcotest.(check int) "nothing completed" 0 (ring_counter k p Syscall_ring.cq_tail_off);
  Alcotest.(check bool) "process killed" true (Proc.is_zombie p)

(* The same batch with the violation removed runs to completion under
   the same graph — the precheck is exact, not conservative. *)
let test_sfip_ring_clean_batch () =
  let k = boot () in
  let p = child k in
  p.Proc.policy <-
    Some
      (Syscall_policy.enforce
         (sfip_graph ~entries:[ Syscall_abi.sys_ring_enter ]
            ~allows:
              [
                (Syscall_abi.sys_ring_enter, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_getpid);
              ]));
  let depth = 4 in
  let entries =
    List.init 3 (fun i ->
        { Syscall_ring.sysno = sysno_int Syscall_abi.sys_getpid; args = [||];
          user_data = Int64.of_int i })
  in
  stage_ring k p ~depth entries;
  let consumed, kills =
    with_sfip_events (fun () ->
        expect_ok "clean batch"
          (Syscalls.ring_enter k p ~ring:ring_base ~depth ~to_submit:3))
  in
  Alcotest.(check int) "all consumed" 3 consumed;
  Alcotest.(check int) "no events" 0 kills;
  Alcotest.(check int) "completions published" 3
    (ring_counter k p Syscall_ring.cq_tail_off);
  Alcotest.(check int) "getpid answered" p.Proc.pid
    (expect_ok "cqe" (Syscall_abi.decode_int (read_cqe_slot k p ~depth 0).Syscall_ring.result));
  Alcotest.(check bool) "process alive" true (not (Proc.is_zombie p))

(* Batch-split invariance: scanning a whole batch gives the same
   verdict as scanning a prefix, committing it, and scanning the rest
   — and both agree with one-at-a-time permits/note submission.  This
   is why a workload's verdict cannot depend on how its syscalls are
   grouped into ring batches. *)
let prop_sfip_scan_split_agreement =
  let sysno_gen = QCheck2.Gen.int_range 0 (Syscall_abi.Sysno.count - 1) in
  QCheck2.Test.make ~name:"sfip batch verdict is split-invariant" ~count:500
    QCheck2.Gen.(
      quad
        (list_size (int_bound 20) (pair sysno_gen sysno_gen))
        (list_size (int_bound 5) sysno_gen)
        (list_size (int_bound 12) sysno_gen)
        (int_bound 12))
    (fun (transitions, entries, seq, split) ->
      let g = Vg_compiler.Sfip.create ~n:Syscall_abi.Sysno.count in
      List.iter (Vg_compiler.Sfip.allow_entry g) entries;
      List.iter (fun (a, b) -> Vg_compiler.Sfip.allow g ~from:a ~to_:b) transitions;
      let arr = Array.of_list (List.filter_map Syscall_abi.Sysno.of_int seq) in
      let whole = Syscall_policy.scan (Syscall_policy.enforce g) arr in
      let sequential =
        let pol = Syscall_policy.enforce g in
        let rec go i =
          if i >= Array.length arr then Ok ()
          else if Syscall_policy.permits pol arr.(i) then begin
            Syscall_policy.note pol arr.(i);
            go (i + 1)
          end
          else Error i
        in
        go 0
      in
      let split = min split (Array.length arr) in
      let a = Array.sub arr 0 split in
      let b = Array.sub arr split (Array.length arr - split) in
      let split_verdict =
        let pol = Syscall_policy.enforce g in
        match Syscall_policy.scan pol a with
        | Error _ as e -> e
        | Ok () -> (
            Array.iter (Syscall_policy.note pol) a;
            match Syscall_policy.scan pol b with
            | Ok () -> Ok ()
            | Error i -> Error (split + i))
      in
      whole = sequential && whole = split_verdict)

(* Record mode never refuses; its profile serializes into an image
   section, decodes back, and the recorded workload replays cleanly
   under enforcement while one step outside it is refused. *)
let test_sfip_record_roundtrip () =
  let k = boot () in
  let p = child k in
  let recorder = Syscall_policy.record () in
  p.Proc.policy <- Some recorder;
  ignore (Syscalls.getpid k p);
  let fd = expect_ok "open" (Syscalls.open_ k p "/rec" Syscalls.creat_trunc) in
  ignore (expect_ok "close" (Syscalls.close k p fd));
  ignore (Syscalls.getpid k p);
  Alcotest.(check bool) "record never kills" true (not (Proc.is_zombie p));
  let wire = Syscall_policy.to_profile recorder in
  let enforced =
    match Syscall_policy.of_profile wire with
    | Some pol -> pol
    | None -> Alcotest.fail "profile did not decode"
  in
  Alcotest.(check bool) "graph survives the wire" true
    (Vg_compiler.Sfip.equal (Syscall_policy.graph recorder)
       (Syscall_policy.graph enforced));
  Alcotest.(check bool) "enforce mode after decode" true
    (Syscall_policy.mode enforced = Syscall_policy.Enforce);
  Alcotest.(check bool) "empty profile means unprofiled" true
    (Syscall_policy.of_profile Bytes.empty = None);
  let p2 = child k in
  p2.Proc.policy <- Some enforced;
  ignore (Syscalls.getpid k p2);
  let fd2 = expect_ok "replay open" (Syscalls.open_ k p2 "/rec2" Syscalls.creat_trunc) in
  ignore (expect_ok "replay close" (Syscalls.close k p2 fd2));
  ignore (Syscalls.getpid k p2);
  Alcotest.(check bool) "replay survives" true (not (Proc.is_zombie p2));
  expect_err Errno.ESFIP "one step outside" (Syscalls.unlink k p2 "/rec2")

(* Profiles travel inside the signed image: execve installs them, fork
   hands the child a fresh cursor over the shared graph, and a
   tampered profile breaks the signature. *)
let test_sfip_execve_and_fork () =
  let k = boot () in
  let p = child k in
  let profile =
    Syscall_policy.to_profile
      (Syscall_policy.enforce
         (sfip_graph ~entries:[ Syscall_abi.sys_getpid ]
            ~allows:
              [
                (Syscall_abi.sys_getpid, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_fork);
                (Syscall_abi.sys_fork, Syscall_abi.sys_getpid);
                (Syscall_abi.sys_getpid, Syscall_abi.sys_execve);
              ]))
  in
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string "sfip-img") in
  let image =
    Appimage.install
      ~vg_key:(Sva.vg_private_key_for_installer k.Kernel.sva)
      ~rng ~name:"profiled"
      ~payload:(Bytes.of_string "program text of profiled")
      ~entry:0x400000L ~profile
      ~app_key:(Bytes.of_string "0123456789abcdef")
      ()
  in
  ignore (expect_ok "execve" (Syscalls.execve k p image));
  (match p.Proc.policy with
  | None -> Alcotest.fail "execve did not install the image profile"
  | Some pol ->
      Alcotest.(check bool) "enforce mode" true
        (Syscall_policy.mode pol = Syscall_policy.Enforce);
      Alcotest.(check bool) "fresh cursor" true (Syscall_policy.last pol = None));
  ignore (Syscalls.getpid k p);
  let c = expect_ok "fork" (Syscalls.fork k p) in
  (match (p.Proc.policy, c.Proc.policy) with
  | Some pp, Some cp ->
      Alcotest.(check bool) "parent cursor advanced" true
        (Syscall_policy.last pp <> None);
      Alcotest.(check bool) "child cursor fresh" true (Syscall_policy.last cp = None);
      Alcotest.(check bool) "graph shared with the child" true
        (Syscall_policy.graph cp == Syscall_policy.graph pp)
  | _ -> Alcotest.fail "fork must inherit the policy");
  (* Swapping the profile breaks the image signature. *)
  let p3 = child k in
  expect_err Errno.EACCES "tampered profile refused"
    (Syscalls.execve k p3 (Appimage.tamper_profile image));
  (* An unprofiled image clears any stale policy.  The execve itself
     is still judged under the old contract, so walk there in-policy:
     fork -> getpid -> execve. *)
  ignore (Syscalls.getpid k p);
  let plain = make_image k ~name:"plain" in
  ignore (expect_ok "re-exec plain" (Syscalls.execve k p plain));
  Alcotest.(check bool) "no profile, no policy" true (p.Proc.policy = None)

(* ------------------------------------------------------------------ *)
(* Cost shape                                                          *)

let test_vg_syscall_overhead_shape () =
  let cost mode =
    let k = boot ~mode () in
    let p = init k in
    ignore (Syscalls.getpid k p);
    Machine.reset_clock k.Kernel.machine;
    for _ = 1 to 100 do
      ignore (Syscalls.getpid k p)
    done;
    Machine.cycles k.Kernel.machine
  in
  let native = cost Sva.Native_build and vg = cost Sva.Virtual_ghost in
  let ratio = float_of_int vg /. float_of_int native in
  Alcotest.(check bool)
    (Printf.sprintf "null-syscall overhead plausible (got %.2fx)" ratio)
    true
    (ratio > 2.0 && ratio < 8.0)

(* ------------------------------------------------------------------ *)
(* The frame allocator's batch dual, and the ghost-swap pressure
   engine's watermark hysteresis.                                      *)

let prop_frame_alloc_roundtrip =
  QCheck2.Test.make
    ~name:"frame allocator: alloc_many/free_many round-trips free_count"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) (int_range 1 16))
    (fun batches ->
      let t = Frame_alloc.create ~first:100 ~last:400 in
      let initial = Frame_alloc.free_count t in
      let held = List.filter_map (Frame_alloc.alloc_many t) batches in
      List.iter (Frame_alloc.free_many t) held;
      Frame_alloc.free_count t = initial)

let test_free_many_rejects_bad_batches () =
  let t = Frame_alloc.create ~first:0 ~last:31 in
  let fs = Option.get (Frame_alloc.alloc_many t 4) in
  Frame_alloc.free_many t fs;
  let count_after = Frame_alloc.free_count t in
  Alcotest.check_raises "whole batch already free"
    (Invalid_argument "Frame_alloc.free_many: double free") (fun () ->
      Frame_alloc.free_many t fs);
  Alcotest.(check int) "failed batch freed nothing" count_after
    (Frame_alloc.free_count t);
  let g = Option.get (Frame_alloc.alloc_many t 2) in
  Alcotest.check_raises "duplicated frame in one batch"
    (Invalid_argument "Frame_alloc.free_many: duplicate frame") (fun () ->
      Frame_alloc.free_many t (g @ g));
  Alcotest.(check int) "failed batch freed nothing" (count_after - 2)
    (Frame_alloc.free_count t);
  (* A single stale frame poisons the whole batch — the valid ones in
     front of it must stay allocated. *)
  let h = Option.get (Frame_alloc.alloc_many t 3) in
  Frame_alloc.free t (List.nth h 2);
  let before = Frame_alloc.free_count t in
  Alcotest.check_raises "stale frame mid-batch"
    (Invalid_argument "Frame_alloc.free_many: double free") (fun () ->
      Frame_alloc.free_many t h);
  Alcotest.(check int) "all-or-nothing" before (Frame_alloc.free_count t)

let test_swap_watermark_hysteresis () =
  let k =
    Node.kernel
      (Node.boot
         Node_config.(
           default |> with_phys_frames 8192 |> with_disk_sectors 16384
           |> with_seed "hyst" |> with_frame_limit 96))
  in
  let proc = expect_ok "create" (Kernel.create_process k ~parent:(init k)) in
  let va = Int64.add Layout.ghost_start 0x100000L in
  (match Syscalls.allocgm k proc ~va ~pages:24 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "allocgm: %s" (Errno.to_string e));
  let avail0 = Ghost_swap.available k in
  (* Pin the watermarks just above current availability: the engine is
     under pressure and must reclaim up to [high] in one episode. *)
  Ghost_swap.set_watermarks k ~low:(avail0 + 4) ~high:(avail0 + 8);
  Alcotest.(check int) "reclaims to the high watermark" 8 (Ghost_swap.balance k);
  Alcotest.(check int) "availability at high" (avail0 + 8)
    (Ghost_swap.available k);
  (* At the high watermark: nothing further to do. *)
  Alcotest.(check int) "no ping-pong at high" 0 (Ghost_swap.balance k);
  (* Dip below high but not below low: hysteresis keeps the engine
     quiet instead of chasing the high watermark on every wobble. *)
  (match Ghost_swap.take_frames k 3 with
  | Some _ -> ()
  | None -> Alcotest.fail "take_frames");
  Alcotest.(check int) "between the marks: still quiet" 0 (Ghost_swap.balance k);
  (* Now cross below low: one reclaim episode refills to high. *)
  (match Ghost_swap.take_frames k 2 with
  | Some _ -> ()
  | None -> Alcotest.fail "take_frames");
  Alcotest.(check bool) "below low engages" true (Ghost_swap.balance k > 0);
  Alcotest.(check int) "refilled to high" (avail0 + 8) (Ghost_swap.available k);
  let st = Ghost_swap.stats k in
  Alcotest.(check int) "two reclaim episodes" 2 st.Ghost_swap.reclaims;
  Alcotest.(check bool) "pages went out" true (st.Ghost_swap.swap_outs >= 13)

let () =
  Alcotest.run "vg_kernel"
    [
      ( "boot",
        [
          Alcotest.test_case "boots with init" `Quick test_boot;
          Alcotest.test_case "fs persists across reboot" `Quick test_fs_persists_across_reboot;
        ] );
      ( "diskfs",
        [
          Alcotest.test_case "create/read/write" `Quick test_fs_create_read_write;
          Alcotest.test_case "large file (indirect)" `Quick test_fs_large_file_indirect;
          Alcotest.test_case "unlink frees space" `Quick test_fs_unlink_frees_space;
          Alcotest.test_case "directories" `Quick test_fs_directories;
          Alcotest.test_case "errors" `Quick test_fs_errors;
          Alcotest.test_case "truncate" `Quick test_fs_truncate;
          QCheck_alcotest.to_alcotest prop_diskfs_model;
        ] );
      ( "syscalls-files",
        [
          Alcotest.test_case "file io" `Quick test_syscall_file_io;
          Alcotest.test_case "pipes" `Quick test_syscall_pipe;
          Alcotest.test_case "EPIPE" `Quick test_pipe_epipe;
          Alcotest.test_case "rename + readdir" `Quick test_rename;
          Alcotest.test_case "fstat + dup2" `Quick test_fstat_dup2;
        ] );
      ( "processes",
        [
          Alcotest.test_case "fork + wait" `Quick test_fork_and_wait;
          Alcotest.test_case "exec" `Slow test_exec;
          Alcotest.test_case "tampered image refused" `Slow test_exec_refuses_tampered_image;
          Alcotest.test_case "native skips validation" `Quick test_exec_native_skips_validation;
        ] );
      ( "memory",
        [
          Alcotest.test_case "mmap/munmap" `Quick test_mmap_munmap;
          Alcotest.test_case "page fault handler" `Quick test_page_fault_handler;
          Alcotest.test_case "ghost isolation end-to-end" `Quick
            test_ghost_isolation_end_to_end;
          Alcotest.test_case "freegm syscall" `Quick test_freegm_syscall;
          Alcotest.test_case "exit releases ghost" `Quick test_exit_releases_ghost;
        ] );
      ( "ghost-swap",
        [
          QCheck_alcotest.to_alcotest prop_frame_alloc_roundtrip;
          Alcotest.test_case "free_many rejects bad batches" `Quick
            test_free_many_rejects_bad_batches;
          Alcotest.test_case "watermark hysteresis" `Quick
            test_swap_watermark_hysteresis;
        ] );
      ( "cow",
        [
          Alcotest.test_case "sharing and breaking" `Quick test_cow_sharing_and_breaking;
          Alcotest.test_case "kernel copyout breaks share" `Quick
            test_cow_kernel_copyout_breaks_share;
          Alcotest.test_case "frames released once" `Quick test_cow_frames_released_once;
        ] );
      ( "signals",
        [
          Alcotest.test_case "delivery via VM" `Quick test_signal_delivery_via_vm;
          Alcotest.test_case "unregistered handler blocked" `Quick
            test_signal_unregistered_handler_blocked;
          Alcotest.test_case "errors" `Quick test_kill_errors;
        ] );
      ( "net",
        [
          Alcotest.test_case "socket end-to-end" `Quick test_socket_end_to_end;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "netstack details" `Quick test_netstack_details;
          QCheck_alcotest.to_alcotest prop_pipe_model;
        ] );
      ( "modules",
        [
          Alcotest.test_case "override" `Quick test_module_override;
          Alcotest.test_case "override under all engines" `Quick
            test_module_override_engines;
          Alcotest.test_case "compiled engine refuses unverified" `Quick
            test_compiled_engine_refuses_unverified;
          Alcotest.test_case "chains to genuine" `Quick test_module_chains_to_genuine;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_module_rejected;
          Alcotest.test_case "privileged module rejected" `Quick
            test_privileged_module_rejected;
        ] );
      ( "poll",
        [
          Alcotest.test_case "empty set" `Quick test_poll_empty_set;
          Alcotest.test_case "closed fd ready" `Quick test_poll_closed_fd_ready;
          Alcotest.test_case "level-triggered re-arm" `Quick
            test_poll_level_triggered_rearm;
        ] );
      ( "ring-abi",
        [
          QCheck_alcotest.to_alcotest prop_errno_abi_roundtrip;
          Alcotest.test_case "abi table consistent" `Quick test_abi_table_consistent;
          QCheck_alcotest.to_alcotest prop_abi_entry_agreement;
          Alcotest.test_case "ring_enter batch" `Quick test_ring_enter_batch;
          Alcotest.test_case "ring_enter validation" `Quick test_ring_enter_validation;
          Alcotest.test_case "ring amortises trap protocol" `Quick
            test_ring_amortises_trap_protocol;
        ] );
      ( "sfip",
        [
          Alcotest.test_case "ESFIP distinct from EPERM" `Quick test_esfip_distinct;
          Alcotest.test_case "direct violation kills" `Quick test_sfip_direct_violation;
          Alcotest.test_case "ring batch prechecked" `Quick test_sfip_ring_precheck;
          Alcotest.test_case "clean ring batch runs" `Quick test_sfip_ring_clean_batch;
          QCheck_alcotest.to_alcotest prop_sfip_scan_split_agreement;
          Alcotest.test_case "record/profile roundtrip" `Quick
            test_sfip_record_roundtrip;
          Alcotest.test_case "execve installs, fork clones" `Slow
            test_sfip_execve_and_fork;
        ] );
      ( "cost",
        [ Alcotest.test_case "vg syscall overhead" `Quick test_vg_syscall_overhead_shape ] );
    ]
