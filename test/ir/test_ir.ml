(* Tests for the SVA virtual instruction set: builder, verifier,
   pretty-printer and reference interpreter. *)

(* ------------------------------------------------------------------ *)
(* Test environment: a tiny flat memory at address 0x1000.             *)

let make_mem_env () =
  let mem = Bytes.make 65536 '\000' in
  let off addr = Int64.to_int (Int64.sub addr 0x1000L) in
  let load addr (width : Ir.width) =
    let i = off addr in
    match width with
    | W8 -> Int64.of_int (Char.code (Bytes.get mem i))
    | W16 -> Int64.of_int (Bytes.get_uint16_le mem i)
    | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le mem i)) 0xffffffffL
    | W64 -> Bytes.get_int64_le mem i
  in
  let store addr (width : Ir.width) v =
    let i = off addr in
    match width with
    | W8 -> Bytes.set mem i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
    | W16 -> Bytes.set_uint16_le mem i (Int64.to_int (Int64.logand v 0xffffL))
    | W32 -> Bytes.set_int32_le mem i (Int64.to_int32 v)
    | W64 -> Bytes.set_int64_le mem i v
  in
  let memcpy ~dst ~src ~len =
    Bytes.blit mem (off src) mem (off dst) (Int64.to_int len)
  in
  let env =
    {
      Interp.load;
      store;
      memcpy;
      io_read = (fun port -> Int64.add port 100L);
      io_write = (fun _ _ -> ());
      extern = (fun name _ -> failwith ("unexpected extern " ^ name));
      resolve_sym = (fun s -> failwith ("unresolved " ^ s));
      func_of_addr = (fun _ -> None);
      charge = (fun _ -> ());
      fence = (fun () -> ());
    }
  in
  (env, mem)

(* ------------------------------------------------------------------ *)
(* Program fixtures                                                    *)

(* Simpler loop via recursion: sum(n) = n = 0 ? 0 : n + sum(n-1) *)
let rec_sum_program () =
  let b = Builder.create () in
  Builder.func b "sum" ~params:[ "n" ];
  let is_zero = Builder.cmp b Eq (Reg "n") (Imm 0L) in
  Builder.cbr b is_zero "base" "rec";
  Builder.block b "base";
  Builder.ret b (Some (Imm 0L));
  Builder.block b "rec";
  let n1 = Builder.bin b Sub (Reg "n") (Imm 1L) in
  let sub = Builder.call b "sum" [ n1 ] in
  let total = Builder.bin b Add (Reg "n") sub in
  Builder.ret b (Some total);
  Builder.program b

(* avoid astring dep: simple substring helper *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pp () =
  let p = rec_sum_program () in
  let text = Pp.program_to_string p in
  List.iter
    (fun frag -> Alcotest.(check bool) ("contains " ^ frag) true (contains text frag))
    [ "define @sum(n)"; "icmp eq"; "call @sum"; "ret" ]

let test_builder_unterminated () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  Alcotest.(check bool) "raises" true
    (try
       ignore (Builder.program b);
       false
     with Failure _ -> true)

let test_builder_double_terminate () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  Builder.ret b None;
  Alcotest.(check bool) "raises" true
    (try
       Builder.ret b None;
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Verifier                                                            *)

let test_verify_ok () =
  match Verify.check (rec_sum_program ()) with
  | Ok () -> ()
  | Error es ->
      Alcotest.failf "unexpected errors: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" Verify.pp_error) es))

let block label instrs term : Ir.block = { label; instrs; term }

let test_verify_unknown_branch () =
  let f : Ir.func = { name = "f"; params = []; blocks = [ block "entry" [] (Br "nope") ] } in
  match Verify.check { funcs = [ f ] } with
  | Ok () -> Alcotest.fail "should have failed"
  | Error es -> Alcotest.(check bool) "mentions block" true
      (List.exists (fun (e : Verify.error) -> contains e.message "nope") es)

let test_verify_undefined_register () =
  let f : Ir.func =
    { name = "f"; params = []; blocks = [ block "entry" [] (Ret (Some (Reg "x"))) ] }
  in
  (* Registers in terminators are not currently checked; check uses in
     instructions instead. *)
  let g : Ir.func =
    {
      name = "g";
      params = [];
      blocks =
        [ block "entry" [ Bin { dst = "y"; op = Add; a = Reg "ghost"; b = Imm 1L } ] (Ret None) ];
    }
  in
  ignore f;
  match Verify.check { funcs = [ g ] } with
  | Ok () -> Alcotest.fail "should have failed"
  | Error es ->
      Alcotest.(check bool) "mentions register" true
        (List.exists (fun (e : Verify.error) -> contains e.message "ghost") es)

let test_verify_unknown_callee () =
  let f : Ir.func =
    {
      name = "f";
      params = [];
      blocks = [ block "entry" [ Call { dst = None; callee = "mystery"; args = [] } ] (Ret None) ];
    }
  in
  match Verify.check { funcs = [ f ] } with
  | Ok () -> Alcotest.fail "should have failed"
  | Error es ->
      Alcotest.(check bool) "mentions callee" true
        (List.exists (fun (e : Verify.error) -> contains e.message "mystery") es)

let test_verify_extern_callee_ok () =
  let f : Ir.func =
    {
      name = "f";
      params = [];
      blocks =
        [
          block "entry"
            [
              Call { dst = None; callee = "extern.printf"; args = [] };
              Call { dst = None; callee = "sva.random"; args = [] };
            ]
            (Ret None);
        ];
    }
  in
  Alcotest.(check bool) "externals allowed" true (Verify.check { funcs = [ f ] } = Ok ())

let test_verify_duplicate_function () =
  let f : Ir.func = { name = "f"; params = []; blocks = [ block "entry" [] (Ret None) ] } in
  match Verify.check { funcs = [ f; f ] } with
  | Ok () -> Alcotest.fail "should have failed"
  | Error es ->
      Alcotest.(check bool) "duplicate" true
        (List.exists (fun (e : Verify.error) -> contains e.message "duplicate") es)

let test_verify_duplicate_label () =
  let f : Ir.func =
    {
      name = "f";
      params = [];
      blocks = [ block "entry" [] (Br "entry"); block "entry" [] (Ret None) ];
    }
  in
  match Verify.check { funcs = [ f ] } with
  | Ok () -> Alcotest.fail "should have failed"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let test_interp_recursion () =
  let env, _ = make_mem_env () in
  let result = Interp.run env (rec_sum_program ()) "sum" [| 100L |] in
  Alcotest.(check int64) "sum 1..100" 5050L result

let test_interp_memory () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  Builder.store b ~width:W32 ~src:(Imm 0xdeadbeefL) ~addr:(Imm 0x1010L) ();
  let v = Builder.load b ~width:W32 (Imm 0x1010L) in
  Builder.ret b (Some v);
  let env, mem = make_mem_env () in
  let result = Interp.run env (Builder.program b) "f" [||] in
  Alcotest.(check int64) "load back" 0xdeadbeefL result;
  Alcotest.(check int) "byte in memory" 0xef (Char.code (Bytes.get mem 0x10))

let test_interp_widths () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[ "x" ];
  Builder.store b ~width:W8 ~src:(Reg "x") ~addr:(Imm 0x1000L) ();
  let v = Builder.load b ~width:W8 (Imm 0x1000L) in
  Builder.ret b (Some v);
  let env, _ = make_mem_env () in
  Alcotest.(check int64) "w8 truncates" 0x34L
    (Interp.run env (Builder.program b) "f" [| 0x1234L |])

let test_interp_memcpy () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  Builder.store b ~src:(Imm 0x1122334455667788L) ~addr:(Imm 0x1000L) ();
  Builder.memcpy b ~dst:(Imm 0x1100L) ~src:(Imm 0x1000L) ~len:(Imm 8L);
  let v = Builder.load b (Imm 0x1100L) in
  Builder.ret b (Some v);
  let env, _ = make_mem_env () in
  Alcotest.(check int64) "copied" 0x1122334455667788L
    (Interp.run env (Builder.program b) "f" [||])

let test_interp_atomic () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  Builder.store b ~src:(Imm 41L) ~addr:(Imm 0x1000L) ();
  let old = Builder.atomic_rmw b Add ~addr:(Imm 0x1000L) (Imm 1L) in
  let now = Builder.load b (Imm 0x1000L) in
  let sum = Builder.bin b Add old now in
  Builder.ret b (Some sum);
  let env, _ = make_mem_env () in
  (* old = 41, new = 42 -> 83 *)
  Alcotest.(check int64) "rmw" 83L (Interp.run env (Builder.program b) "f" [||])

let test_interp_indirect_call () =
  let b = Builder.create () in
  Builder.func b "double" ~params:[ "x" ];
  let d = Builder.bin b Add (Reg "x") (Reg "x") in
  Builder.ret b (Some d);
  Builder.func b "main" ~params:[];
  let r = Builder.call_indirect b (Sym "double") [ Imm 21L ] in
  Builder.ret b (Some r);
  let program = Builder.program b in
  let env, _ = make_mem_env () in
  let env =
    {
      env with
      Interp.resolve_sym = (fun s -> if s = "double" then 0x4242L else failwith s);
      func_of_addr = (fun a -> if a = 0x4242L then Some "double" else None);
    }
  in
  Alcotest.(check int64) "indirect" 42L (Interp.run env program "main" [||])

let test_interp_extern () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  let r = Builder.call b "extern.magic" [ Imm 2L; Imm 3L ] in
  Builder.ret b (Some r);
  let env, _ = make_mem_env () in
  let env =
    { env with Interp.extern = (fun name args ->
          Alcotest.(check string) "name" "extern.magic" name;
          Int64.mul args.(0) args.(1)) }
  in
  Alcotest.(check int64) "extern result" 6L (Interp.run env (Builder.program b) "main" [||])

let test_interp_io () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  Builder.io_write b ~port:(Imm 0x60L) (Imm 1L);
  let v = Builder.io_read b (Imm 0x60L) in
  Builder.ret b (Some v);
  let env, _ = make_mem_env () in
  Alcotest.(check int64) "io read" 196L (Interp.run env (Builder.program b) "main" [||])

let expect_trap f =
  try
    ignore (f ());
    Alcotest.fail "expected Trap"
  with Interp.Trap _ -> ()

let test_interp_div_by_zero () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  let v = Builder.bin b Udiv (Imm 1L) (Imm 0L) in
  Builder.ret b (Some v);
  let env, _ = make_mem_env () in
  expect_trap (fun () -> Interp.run env (Builder.program b) "main" [||])

let test_interp_unreachable () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  Builder.unreachable b;
  let env, _ = make_mem_env () in
  expect_trap (fun () -> Interp.run env (Builder.program b) "main" [||])

let test_interp_fuel () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  Builder.br b "spin";
  Builder.block b "spin";
  Builder.br b "spin";
  let env, _ = make_mem_env () in
  expect_trap (fun () -> Interp.run env ~fuel:1000 (Builder.program b) "main" [||])

let test_interp_arity_mismatch () =
  let env, _ = make_mem_env () in
  expect_trap (fun () -> Interp.run env (rec_sum_program ()) "sum" [| 1L; 2L |])

(* ------------------------------------------------------------------ *)
(* Semantics properties                                                *)

let gen_i64 = QCheck2.Gen.(map Int64.of_int int)

let prop_binop_semantics =
  QCheck2.Test.make ~name:"eval_binop matches Int64" ~count:1000
    QCheck2.Gen.(pair gen_i64 gen_i64)
    (fun (a, b) ->
      Interp.eval_binop Add a b = Int64.add a b
      && Interp.eval_binop Sub a b = Int64.sub a b
      && Interp.eval_binop Mul a b = Int64.mul a b
      && Interp.eval_binop And a b = Int64.logand a b
      && Interp.eval_binop Or a b = Int64.logor a b
      && Interp.eval_binop Xor a b = Int64.logxor a b
      && (b = 0L || Interp.eval_binop Udiv a b = Int64.unsigned_div a b))

let prop_shift_masks_count =
  QCheck2.Test.make ~name:"shifts take count mod 64" ~count:200
    QCheck2.Gen.(pair gen_i64 (int_bound 200))
    (fun (a, n) ->
      let n64 = Int64.of_int n in
      Interp.eval_binop Shl a n64 = Int64.shift_left a (n mod 64)
      && Interp.eval_binop Lshr a n64 = Int64.shift_right_logical a (n mod 64))

let prop_cmp_semantics =
  QCheck2.Test.make ~name:"eval_cmp unsigned/signed split" ~count:1000
    QCheck2.Gen.(pair gen_i64 gen_i64)
    (fun (a, b) ->
      Interp.eval_cmp Ult a b = (if Int64.unsigned_compare a b < 0 then 1L else 0L)
      && Interp.eval_cmp Slt a b = (if Int64.compare a b < 0 then 1L else 0L)
      && Interp.eval_cmp Eq a b = (if a = b then 1L else 0L))

let prop_truncate =
  QCheck2.Test.make ~name:"truncate keeps low bits" ~count:500 gen_i64 (fun v ->
      Interp.truncate W8 v = Int64.logand v 0xffL
      && Interp.truncate W16 v = Int64.logand v 0xffffL
      && Interp.truncate W32 v = Int64.logand v 0xffffffffL
      && Interp.truncate W64 v = v)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vg_ir"
    [
      ( "builder",
        [
          Alcotest.test_case "pretty printing" `Quick test_pp;
          Alcotest.test_case "unterminated block" `Quick test_builder_unterminated;
          Alcotest.test_case "double terminate" `Quick test_builder_double_terminate;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts good program" `Quick test_verify_ok;
          Alcotest.test_case "unknown branch" `Quick test_verify_unknown_branch;
          Alcotest.test_case "undefined register" `Quick test_verify_undefined_register;
          Alcotest.test_case "unknown callee" `Quick test_verify_unknown_callee;
          Alcotest.test_case "extern callee ok" `Quick test_verify_extern_callee_ok;
          Alcotest.test_case "duplicate function" `Quick test_verify_duplicate_function;
          Alcotest.test_case "duplicate label" `Quick test_verify_duplicate_label;
        ] );
      ( "interp",
        [
          Alcotest.test_case "recursion" `Quick test_interp_recursion;
          Alcotest.test_case "memory" `Quick test_interp_memory;
          Alcotest.test_case "widths" `Quick test_interp_widths;
          Alcotest.test_case "memcpy" `Quick test_interp_memcpy;
          Alcotest.test_case "atomic rmw" `Quick test_interp_atomic;
          Alcotest.test_case "indirect call" `Quick test_interp_indirect_call;
          Alcotest.test_case "extern call" `Quick test_interp_extern;
          Alcotest.test_case "io" `Quick test_interp_io;
          Alcotest.test_case "div by zero traps" `Quick test_interp_div_by_zero;
          Alcotest.test_case "unreachable traps" `Quick test_interp_unreachable;
          Alcotest.test_case "fuel exhaustion" `Quick test_interp_fuel;
          Alcotest.test_case "arity mismatch" `Quick test_interp_arity_mismatch;
        ] );
      ( "semantics-properties",
        qcheck
          [ prop_binop_semantics; prop_shift_masks_count; prop_cmp_semantics; prop_truncate ]
      );
    ]
