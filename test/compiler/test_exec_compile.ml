(* Tests for the closure-compiled execution engine: exact parity with
   the slot executor on the CFI attack scenarios (ROP via tampered
   returns, corrupted function pointers, kernel-space masking), the v4
   translation cache (verify-before-compile, HMAC-keyed memoization of
   both the verifier and the closure compiler), and the fusion
   statistics of the translator itself. *)

(* ------------------------------------------------------------------ *)
(* Memory environment with per-tag cycle accounting.                   *)

type world = {
  mem : Bytes.t;
  base : int64;
  by_tag : int array;
  mutable stores : (int64 * int64) list;
}

let make_world ?(base = 0x1000L) () =
  {
    mem = Bytes.make 65536 '\000';
    base;
    by_tag = Array.make Obs.Tag.count 0;
    stores = [];
  }

let world_off w addr =
  let off = Int64.to_int (Int64.sub addr w.base) in
  if off < 0 || off >= Bytes.length w.mem - 8 then
    failwith (Printf.sprintf "world access out of range: %Lx" addr);
  off

let world_load w addr (width : Ir.width) =
  let i = world_off w addr in
  match width with
  | W8 -> Int64.of_int (Char.code (Bytes.get w.mem i))
  | W16 -> Int64.of_int (Bytes.get_uint16_le w.mem i)
  | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le w.mem i)) 0xffffffffL
  | W64 -> Bytes.get_int64_le w.mem i

let world_store w addr (width : Ir.width) v =
  w.stores <- (addr, v) :: w.stores;
  let i = world_off w addr in
  match width with
  | W8 -> Bytes.set w.mem i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | W16 -> Bytes.set_uint16_le w.mem i (Int64.to_int (Int64.logand v 0xffffL))
  | W32 -> Bytes.set_int32_le w.mem i (Int64.to_int32 v)
  | W64 -> Bytes.set_int64_le w.mem i v

let exec_env w : Executor.env =
  {
    Executor.null_env with
    load = world_load w;
    store = world_store w;
    memcpy =
      (fun ~dst ~src ~len ->
        Bytes.blit w.mem (world_off w src) w.mem (world_off w dst) (Int64.to_int len));
    io_read = (fun port -> Int64.add port 7L);
    io_write = (fun _ _ -> ());
    charge =
      (fun tag n ->
        let i = Obs.Tag.index tag in
        w.by_tag.(i) <- w.by_tag.(i) + n);
  }

(* ------------------------------------------------------------------ *)
(* Fixtures (same programs the slot-executor suite pins).              *)

let rec_sum_program () =
  let b = Builder.create () in
  Builder.func b "sum" ~params:[ "n" ];
  let is_zero = Builder.cmp b Eq (Reg "n") (Imm 0L) in
  Builder.cbr b is_zero "base" "rec";
  Builder.block b "base";
  Builder.ret b (Some (Imm 0L));
  Builder.block b "rec";
  let n1 = Builder.bin b Sub (Reg "n") (Imm 1L) in
  let sub = Builder.call b "sum" [ n1 ] in
  let total = Builder.bin b Add (Reg "n") sub in
  Builder.ret b (Some total);
  Builder.program b

let collatz_program () =
  let b = Builder.create () in
  Builder.func b "collatz" ~params:[ "n" ];
  Builder.store b ~src:(Imm 0L) ~addr:(Imm 0x2000L) ();
  Builder.store b ~src:(Reg "n") ~addr:(Imm 0x2008L) ();
  Builder.br b "loop";
  Builder.block b "loop";
  let n = Builder.load b (Imm 0x2008L) in
  let at_one = Builder.cmp b Ule n (Imm 1L) in
  Builder.cbr b at_one "done" "step";
  Builder.block b "step";
  let odd = Builder.bin b And n (Imm 1L) in
  let half = Builder.bin b Lshr n (Imm 1L) in
  let tripled = Builder.bin b Mul n (Imm 3L) in
  let plus1 = Builder.bin b Add tripled (Imm 1L) in
  let next = Builder.select b odd plus1 half in
  Builder.store b ~src:next ~addr:(Imm 0x2008L) ();
  let count = Builder.load b (Imm 0x2000L) in
  let count' = Builder.bin b Add count (Imm 1L) in
  Builder.store b ~src:count' ~addr:(Imm 0x2000L) ();
  Builder.br b "loop";
  Builder.block b "done";
  let count = Builder.load b (Imm 0x2000L) in
  Builder.ret b (Some count);
  Builder.program b

let compile_link ~cfi program = Linker.link (Codegen.compile ~cfi program)

(* ------------------------------------------------------------------ *)
(* Outcome capture: value / trap / CFI violation, message included.    *)

type outcome = Value of int64 | Trap of string | Cfi of string

let show_outcome = function
  | Value v -> Printf.sprintf "value %Ld" v
  | Trap m -> "trap: " ^ m
  | Cfi m -> "cfi: " ^ m

let capture f =
  match f () with
  | v -> Value v
  | exception Executor.Exec_trap m -> Trap m
  | exception Executor.Cfi_violation m -> Cfi m

(* Run the same image through both engines (fresh worlds, optionally
   tweaked envs) and demand byte-identical observable behaviour:
   outcome, per-tag cycle counts, store trace and final memory. *)
let check_parity ?fuel ?(tweak = fun _image env -> env) name image entry args =
  let w1 = make_world () in
  let env1 = tweak image (exec_env w1) in
  let o1 = capture (fun () -> Executor.run ?fuel env1 image entry args) in
  let w2 = make_world () in
  let env2 = tweak image (exec_env w2) in
  let t = Exec_compile.compile image in
  let o2 = capture (fun () -> Exec_compile.run ?fuel env2 t entry args) in
  Alcotest.(check string) (name ^ ": outcome") (show_outcome o1) (show_outcome o2);
  Alcotest.(check (array int)) (name ^ ": cycles by tag") w1.by_tag w2.by_tag;
  Alcotest.(check bool) (name ^ ": store trace") true (w1.stores = w2.stores);
  Alcotest.(check bool) (name ^ ": memory") true (Bytes.equal w1.mem w2.mem);
  o1

(* ------------------------------------------------------------------ *)
(* Fixture parity, all build modes                                     *)

let test_fixture_parity () =
  List.iter
    (fun (label, program, entry, args) ->
      let native = compile_link ~cfi:false program in
      (match check_parity (label ^ "/native") native entry args with
      | Value _ -> ()
      | o -> Alcotest.failf "%s/native did not terminate: %s" label (show_outcome o));
      let vg =
        compile_link ~cfi:true (Sandbox_pass.instrument_program program)
      in
      (match check_parity (label ^ "/vg") vg entry args with
      | Value _ -> ()
      | o -> Alcotest.failf "%s/vg did not terminate: %s" label (show_outcome o)))
    [
      ("collatz", collatz_program (), "collatz", [| 97L |]);
      ("recsum", rec_sum_program (), "sum", [| 40L |]);
    ]

let test_fuel_exhaustion_parity () =
  (* Starve both engines identically: same trap, same partial cycle
     bill, same partial memory effects. *)
  let image = compile_link ~cfi:false (collatz_program ()) in
  match check_parity ~fuel:100 "fuel" image "collatz" [| 97L |] with
  | Trap _ -> ()
  | o -> Alcotest.failf "expected fuel trap, got %s" (show_outcome o)

(* ------------------------------------------------------------------ *)
(* Attack parity: tampered returns (ROP)                               *)

let test_rop_tamper_parity () =
  let program = rec_sum_program () in
  let tweak (image : Linker.image) env =
    (* Redirect every return into the middle of `sum` (slot 3 — an
       arbitrary non-label slot), as in the slot-executor ROP test. *)
    let gadget = Native.addr_of_index image.Linker.native 3 in
    { env with Executor.tamper_return = Some (fun _ -> gadget) }
  in
  let vg = compile_link ~cfi:true (Sandbox_pass.instrument_program program) in
  (match check_parity ~fuel:10_000 ~tweak "rop/vg" vg "sum" [| 5L |] with
  | Cfi _ -> ()
  | o -> Alcotest.failf "expected CFI violation under vg, got %s" (show_outcome o));
  let native = compile_link ~cfi:false program in
  (* Without CFI the corrupted return is followed: the run ends somewhere
     random (trap or stray value) but never with a CFI violation. *)
  match check_parity ~fuel:10_000 ~tweak "rop/native" native "sum" [| 5L |] with
  | Trap _ | Value _ -> ()
  | Cfi _ as o -> Alcotest.failf "unexpected CFI violation under native: %s" (show_outcome o)

(* ------------------------------------------------------------------ *)
(* Attack parity: corrupted function pointer                           *)

let victim_fptr_program () =
  let b = Builder.create () in
  Builder.func b "victim" ~params:[];
  let fp = Builder.load b (Imm 0x3000L) in
  let r = Builder.call_indirect b fp [] in
  Builder.ret b (Some r);
  Builder.program b

let test_corrupted_fptr_parity () =
  let program = victim_fptr_program () in
  (* CFI build: both engines refuse the call with the same violation. *)
  let poison image name =
    let w1 = make_world () in
    world_store w1 0x3000L W64 0x400000L;
    let o1 = capture (fun () -> Executor.run (exec_env w1) image "victim" [||]) in
    let w2 = make_world () in
    world_store w2 0x3000L W64 0x400000L;
    let t = Exec_compile.compile image in
    let o2 = capture (fun () -> Exec_compile.run (exec_env w2) t "victim" [||]) in
    Alcotest.(check string) (name ^ ": outcome") (show_outcome o1) (show_outcome o2);
    Alcotest.(check (array int)) (name ^ ": cycles by tag") w1.by_tag w2.by_tag;
    o1
  in
  (match poison (compile_link ~cfi:true program) "fptr/cfi" with
  | Cfi _ -> ()
  | o -> Alcotest.failf "expected CFI violation, got %s" (show_outcome o));
  (* Native build: the hijack goes through — on both engines, to the
     same attacker-chosen target. *)
  let image_native = compile_link ~cfi:false program in
  let hijack run =
    let w = make_world () in
    world_store w 0x3000L W64 0x400000L;
    let hijacked = ref 0L in
    let env =
      {
        (exec_env w) with
        Executor.call_foreign =
          (fun addr _ ->
            hijacked := addr;
            0L);
      }
    in
    ignore (run env);
    !hijacked
  in
  Alcotest.(check int64) "slot executor hijacked" 0x400000L
    (hijack (fun env -> Executor.run env image_native "victim" [||]));
  let t = Exec_compile.compile image_native in
  Alcotest.(check int64) "compiled engine hijacked" 0x400000L
    (hijack (fun env -> Exec_compile.run env t "victim" [||]))

let test_kernel_masking_parity () =
  (* The indirect-call check masks the target into kernel space before
     lookup on both engines: a user-space target can never reach
     call_foreign. *)
  let b = Builder.create () in
  Builder.func b "victim" ~params:[];
  let r = Builder.call_indirect b (Imm 0x40L) [] in
  Builder.ret b (Some r);
  let image = compile_link ~cfi:true (Builder.program b) in
  let run_engine run =
    let w = make_world () in
    let foreign_called = ref false in
    let env =
      {
        (exec_env w) with
        Executor.call_foreign =
          (fun _ _ ->
            foreign_called := true;
            0L);
      }
    in
    let o = capture (fun () -> run env) in
    (o, !foreign_called, w.by_tag)
  in
  let o1, f1, c1 = run_engine (fun env -> Executor.run env image "victim" [||]) in
  let t = Exec_compile.compile image in
  let o2, f2, c2 = run_engine (fun env -> Exec_compile.run env t "victim" [||]) in
  Alcotest.(check bool) "slot executor stays in kernel" false f1;
  Alcotest.(check bool) "compiled engine stays in kernel" false f2;
  Alcotest.(check string) "same outcome" (show_outcome o1) (show_outcome o2);
  Alcotest.(check (array int)) "same cycles" c1 c2

(* ------------------------------------------------------------------ *)
(* Translation cache v4                                                *)

let instrumented_image () =
  compile_link ~cfi:true (Sandbox_pass.instrument_program (collatz_program ()))

let test_cache_find_compiled () =
  let tc = Trans_cache.create ~key:(Bytes.of_string "vm-secret-mac-key") in
  Trans_cache.add tc ~name:"m" ~instrumented:true (instrumented_image ());
  match Trans_cache.find_compiled tc ~name:"m" with
  | Error e -> Alcotest.failf "find_compiled: %s" (Trans_cache.describe_find_error e)
  | Ok artifact ->
      (* The artifact really is the verified image, and it runs. *)
      let w = make_world () in
      let compiled_result = Exec_compile.run (exec_env w) artifact "collatz" [| 97L |] in
      let w2 = make_world () in
      let slot_result =
        match Trans_cache.find tc ~name:"m" with
        | Ok image -> Executor.run (exec_env w2) image "collatz" [| 97L |]
        | Error e -> Alcotest.failf "find: %s" (Trans_cache.describe_find_error e)
      in
      Alcotest.(check int64) "same result" slot_result compiled_result;
      Alcotest.(check (array int)) "same cycles" w2.by_tag w.by_tag

let test_cache_refuses_tampered () =
  let tc = Trans_cache.create ~key:(Bytes.of_string "vm-secret-mac-key") in
  Trans_cache.add tc ~name:"m" ~instrumented:true (instrumented_image ());
  Trans_cache.tamper tc ~name:"m";
  (match Trans_cache.find_compiled tc ~name:"m" with
  | Error Trans_cache.Bad_signature -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Trans_cache.describe_find_error e)
  | Ok _ -> Alcotest.fail "tampered image was compiled");
  match Trans_cache.find_compiled tc ~name:"ghost" with
  | Error Trans_cache.Absent -> ()
  | _ -> Alcotest.fail "absent name must report Absent"

let test_cache_memoization () =
  let tc = Trans_cache.create ~key:(Bytes.of_string "vm-secret-mac-key") in
  Trans_cache.add tc ~name:"m" ~instrumented:true (instrumented_image ());
  Alcotest.(check int) "no verifier run before first load" 0 (Trans_cache.verifier_runs tc);
  let a1 =
    match Trans_cache.find_compiled tc ~name:"m" with
    | Ok a -> a
    | Error e -> Alcotest.failf "find_compiled: %s" (Trans_cache.describe_find_error e)
  in
  Alcotest.(check int) "one verifier run after first load" 1 (Trans_cache.verifier_runs tc);
  ignore (Trans_cache.find tc ~name:"m");
  let a2 =
    match Trans_cache.find_compiled tc ~name:"m" with
    | Ok a -> a
    | Error e -> Alcotest.failf "find_compiled: %s" (Trans_cache.describe_find_error e)
  in
  (* Repeated loads of the same signed blob re-check the HMAC but pay
     neither the verifier nor the closure compiler again. *)
  Alcotest.(check int) "still one verifier run" 1 (Trans_cache.verifier_runs tc);
  Alcotest.(check bool) "compiled artifact memoized" true (a1 == a2);
  (* Re-adding the same image produces the same blob and tag, so the
     memo still applies; a different image under the same name is a
     different tag and re-verifies. *)
  Trans_cache.add tc ~name:"other" ~instrumented:true
    (compile_link ~cfi:true (Sandbox_pass.instrument_program (rec_sum_program ())));
  ignore (Trans_cache.find_compiled tc ~name:"other");
  Alcotest.(check int) "distinct image re-verifies" 2 (Trans_cache.verifier_runs tc)

(* ------------------------------------------------------------------ *)
(* Translator statistics                                               *)

let test_fusion_stats () =
  let collatz = Exec_compile.compile (compile_link ~cfi:false (collatz_program ())) in
  let s = Exec_compile.stats collatz in
  Alcotest.(check bool) "has slots" true (s.Exec_compile.slots > 0);
  (* collatz has cmp+branch and load+mask adjacencies to fuse. *)
  Alcotest.(check bool) "fuses pairs" true (s.Exec_compile.fused_pairs > 0);
  let recsum = Exec_compile.compile (compile_link ~cfi:false (rec_sum_program ())) in
  let s2 = Exec_compile.stats recsum in
  (* the recursive call is statically pre-resolved *)
  Alcotest.(check bool) "static calls" true (s2.Exec_compile.static_calls > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "exec_compile"
    [
      ( "parity",
        [
          Alcotest.test_case "fixtures, per-tag cycles" `Quick test_fixture_parity;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion_parity;
          Alcotest.test_case "ROP via tampered returns" `Quick test_rop_tamper_parity;
          Alcotest.test_case "corrupted function pointer" `Quick
            test_corrupted_fptr_parity;
          Alcotest.test_case "kernel-space masking" `Quick test_kernel_masking_parity;
        ] );
      ( "trans-cache-v4",
        [
          Alcotest.test_case "find_compiled verifies then compiles" `Quick
            test_cache_find_compiled;
          Alcotest.test_case "tampered blobs are refused" `Quick
            test_cache_refuses_tampered;
          Alcotest.test_case "verifier and compiler memoized by tag" `Quick
            test_cache_memoization;
        ] );
      ( "translator",
        [ Alcotest.test_case "fusion statistics" `Quick test_fusion_stats ] );
    ]
