(* Differential fuzzing of the compilation pipeline.

   Random well-formed IR programs are run through (a) the reference
   interpreter, (b) the code generator + native executor, (c) the
   full Virtual Ghost pipeline (sandboxing + CFI), and (d) the
   closure-compiled engine over both pipeline outputs — all must
   agree on the result and on final memory whenever addresses stay
   outside the protected ranges (where masking is the identity), and
   the compiled engine must be byte-identical to the slot executor on
   cycles, per-tag charge totals, and exception trajectories
   (including CFI violations, traps and out-of-fuel).

   Program generation lives in {!Vg_testgen.Testgen} (shared with the
   image-verifier property tests): programs terminate by construction —
   control flow within a function only branches forward, and calls only
   target previously generated functions (no recursion). *)

let gen_program = Vg_testgen.Testgen.gen_program
let scratch_base = Vg_testgen.Testgen.scratch_base

(* ------------------------------------------------------------------ *)
(* Execution environments over a shared flat scratch memory            *)

type mem_world = { mem : Bytes.t }

let make_world () = { mem = Bytes.make 8192 '\000' }

let off addr = Int64.to_int (Int64.sub addr scratch_base)

let w_load w addr (width : Ir.width) =
  let i = off addr in
  match width with
  | W8 -> Int64.of_int (Char.code (Bytes.get w.mem i))
  | W16 -> Int64.of_int (Bytes.get_uint16_le w.mem i)
  | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le w.mem i)) 0xffffffffL
  | W64 -> Bytes.get_int64_le w.mem i

let w_store w addr (width : Ir.width) v =
  let i = off addr in
  match width with
  | W8 -> Bytes.set w.mem i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | W16 -> Bytes.set_uint16_le w.mem i (Int64.to_int (Int64.logand v 0xffffL))
  | W32 -> Bytes.set_int32_le w.mem i (Int64.to_int32 v)
  | W64 -> Bytes.set_int64_le w.mem i v

(* [Value (result, memory, cycles)]: the simulated cycle count rides
   along so the slot-file executor can be checked against the
   interpreter's cost model, not just its answers. *)
type run_result = Value of int64 * Bytes.t * int | Trapped

let run_interp program args =
  let w = make_world () in
  let cycles = ref 0 in
  let env =
    {
      Interp.load = w_load w;
      store = w_store w;
      memcpy = (fun ~dst:_ ~src:_ ~len:_ -> ());
      io_read = (fun _ -> 0L);
      io_write = (fun _ _ -> ());
      extern = (fun _ _ -> 0L);
      resolve_sym = (fun _ -> 0L);
      func_of_addr = (fun _ -> None);
      charge = (fun n -> cycles := !cycles + n);
      fence = (fun () -> ());
    }
  in
  match Interp.run ~fuel:200_000 env program "f0" args with
  | v -> Value (v, w.mem, !cycles)
  | exception Interp.Trap _ -> Trapped

let run_native ~vg program args =
  let w = make_world () in
  let cycles = ref 0 in
  let env =
    {
      Executor.null_env with
      load = w_load w;
      store = w_store w;
      charge = (fun _ n -> cycles := !cycles + n);
    }
  in
  let image =
    if vg then
      Codegen.compile ~cfi:true (Sandbox_pass.instrument_program program)
    else Codegen.compile ~cfi:false program
  in
  match Executor.run ~fuel:400_000 env (Linker.link image) "f0" args with
  | v -> Value (v, w.mem, !cycles)
  | exception Executor.Exec_trap _ -> Trapped

let run_compiled ~vg program args =
  let w = make_world () in
  let cycles = ref 0 in
  let env =
    {
      Executor.null_env with
      load = w_load w;
      store = w_store w;
      charge = (fun _ n -> cycles := !cycles + n);
    }
  in
  let image =
    if vg then
      Codegen.compile ~cfi:true (Sandbox_pass.instrument_program program)
    else Codegen.compile ~cfi:false program
  in
  let artifact = Exec_compile.compile (Linker.link image) in
  match Exec_compile.run ~fuel:400_000 env artifact "f0" args with
  | v -> Value (v, w.mem, !cycles)
  | exception Executor.Exec_trap _ -> Trapped

(* Results agree: same trap behaviour, same value, same final memory.
   Cycle counts are compared separately ({!agree_cycles}) because the
   instrumented pipeline legitimately charges more. *)
let agree a b =
  match (a, b) with
  | Trapped, Trapped -> true
  | Value (va, ma, _), Value (vb, mb, _) -> va = vb && Bytes.equal ma mb
  | Value _, Trapped | Trapped, Value _ -> false

(* The uninstrumented executor must charge exactly what the reference
   interpreter charges: slot allocation and O(1) resolution are host-time
   optimisations and must not perturb the simulated cost model. *)
let agree_cycles a b =
  match (a, b) with
  | Value (_, _, ca), Value (_, _, cb) -> ca = cb
  | Trapped, Trapped -> true
  | _ -> false

let prop_three_way_agreement =
  QCheck2.Test.make
    ~name:"interp = slot executor = compiled on random programs" ~count:400
    QCheck2.Gen.(pair (int_bound 1_000_000) (pair (int_bound 4000) (int_bound 4000)))
    (fun (seed, (a, b)) ->
      let program = gen_program seed in
      match Verify.check program with
      | Error _ -> false (* the generator must produce well-formed IR *)
      | Ok () ->
          let args = [| Int64.of_int a; Int64.of_int b |] in
          let reference = run_interp program args in
          let native = run_native ~vg:false program args in
          let compiled = run_compiled ~vg:false program args in
          let native_vg = run_native ~vg:true program args in
          let compiled_vg = run_compiled ~vg:true program args in
          agree reference native
          && agree_cycles reference native
          (* the compiled engine is byte-identical to the slot executor,
             instrumented or not — including the cycle totals the
             instrumented pipeline legitimately inflates *)
          && agree reference compiled
          && agree_cycles native compiled
          && agree reference native_vg
          && agree native_vg compiled_vg
          && agree_cycles native_vg compiled_vg)

(* Slot executor vs compiled engine on full trajectories: same
   exception constructor and message, same per-tag charge totals at the
   moment of the exception, same memory — under return-address
   tampering, tight fuel limits, and full instrumentation.  This is
   what lets the closure compiler live outside the TCB. *)
type trajectory = TVal of int64 | TTrap of string | TCfi of string

let prop_compiled_trajectory_parity =
  QCheck2.Test.make
    ~name:"compiled = slot executor on trap/CFI/fuel trajectories" ~count:300
    QCheck2.Gen.(
      pair (int_bound 1_000_000)
        (pair
           (pair (int_bound 4000) (int_bound 4000))
           (pair (pair (int_bound 4) bool) (int_bound 4000))))
    (fun (seed, ((a, b), ((tamper_sel, vg), fuel_raw))) ->
      let program = gen_program seed in
      let image =
        if vg then
          Linker.link
            (Codegen.compile ~cfi:true (Sandbox_pass.instrument_program program))
        else Linker.link (Codegen.compile ~cfi:false program)
      in
      let artifact = Exec_compile.compile image in
      let args = [| Int64.of_int a; Int64.of_int b |] in
      (* small fuel: many runs die mid-flight, pinning the out-of-fuel
         point and the charges accumulated up to it *)
      let fuel = 20 + fuel_raw in
      let tamper =
        match tamper_sel with
        | 0 | 1 -> None
        | 2 -> Some (fun addr -> Int64.add addr 16L) (* next slot *)
        | 3 -> Some (fun addr -> Int64.add addr 8L) (* misaligned *)
        | _ -> Some (fun _ -> 0xdead_beef_0000L) (* far outside *)
      in
      let run_one use_compiled =
        let w = make_world () in
        let by_tag = Array.make Obs.Tag.count 0 in
        let env =
          {
            Executor.null_env with
            load = w_load w;
            store = w_store w;
            charge =
              (fun tag n ->
                let i = Obs.Tag.index tag in
                by_tag.(i) <- by_tag.(i) + n);
            tamper_return = tamper;
          }
        in
        let outcome =
          if use_compiled then
            match Exec_compile.run ~fuel env artifact "f0" args with
            | v -> TVal v
            | exception Executor.Exec_trap m -> TTrap m
            | exception Executor.Cfi_violation m -> TCfi m
          else
            match Executor.run ~fuel env image "f0" args with
            | v -> TVal v
            | exception Executor.Exec_trap m -> TTrap m
            | exception Executor.Cfi_violation m -> TCfi m
        in
        (outcome, by_tag, w.mem)
      in
      let o_slots, c_slots, m_slots = run_one false in
      let o_comp, c_comp, m_comp = run_one true in
      o_slots = o_comp && c_slots = c_comp && Bytes.equal m_slots m_comp)

let prop_optimizer_preserves_semantics =
  QCheck2.Test.make ~name:"optimizer preserves semantics (both pass orders)"
    ~count:400
    QCheck2.Gen.(pair (int_bound 1_000_000) (pair (int_bound 4000) (int_bound 4000)))
    (fun (seed, (a, b)) ->
      let program = gen_program seed in
      let args = [| Int64.of_int a; Int64.of_int b |] in
      let reference = run_interp program args in
      let optimized = Opt_pass.optimize_program program in
      (* Optimised code must still verify and agree, interpreted and
         compiled, with and without instrumentation. *)
      Verify.check optimized = Ok ()
      && agree reference (run_interp optimized args)
      && agree reference (run_native ~vg:false optimized args)
      && agree reference (run_native ~vg:true optimized args)
      (* Optimising *after* instrumentation must also preserve
         semantics (and thus the masking, checked next). *)
      &&
      let inst_then_opt = Opt_pass.optimize_program (Sandbox_pass.instrument_program program) in
      let image = Linker.link (Codegen.compile ~cfi:true inst_then_opt) in
      let w = make_world () in
      let env = { Executor.null_env with load = w_load w; store = w_store w } in
      agree reference
        (match Executor.run ~fuel:400_000 env image "f0" args with
        | v -> Value (v, w.mem, 0)
        | exception Executor.Exec_trap _ -> Trapped))

let prop_optimizer_never_unmasks =
  (* Optimising instrumented code must never let a ghost address reach
     memory: run with a ghost-range argument feeding addresses. *)
  QCheck2.Test.make ~name:"optimizer never removes the sandbox mask" ~count:300
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let program = gen_program seed in
      let inst_then_opt =
        Opt_pass.optimize_program (Sandbox_pass.instrument_program program)
      in
      let image = Linker.link (Codegen.compile ~cfi:true inst_then_opt) in
      let safe = ref true in
      let check addr =
        if Layout.in_ghost addr || Layout.in_sva addr then safe := false
      in
      let env =
        {
          Executor.null_env with
          load =
            (fun addr _ ->
              check addr;
              0L);
          store = (fun addr _ _ -> check addr);
          memcpy =
            (fun ~dst ~src ~len:_ ->
              check dst;
              check src);
        }
      in
      (* Ghost-range arguments so address computations land in the
         ghost partition wherever masking is missing. *)
      let args = [| Int64.add Layout.ghost_start 0x1234L; Layout.ghost_start |] in
      (try ignore (Executor.run ~fuel:400_000 env image "f0" args) with
      | Executor.Exec_trap _ -> ()
      | Executor.Cfi_violation _ -> ());
      !safe)

let prop_instrumentation_preserves_size_relation =
  QCheck2.Test.make ~name:"instrumented image is strictly larger" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let program = gen_program seed in
      let plain = Codegen.compile ~cfi:false program in
      let vg = Codegen.compile ~cfi:true (Sandbox_pass.instrument_program program) in
      Array.length vg.Native.code >= Array.length plain.Native.code)

(* Speculation can only leak what an attacker observes through the
   cache — i.e. the addresses reaching [spec_load] on the wrong path.
   Any program the load-time verifier proves under the
   speculation-safe branchless mask must keep even those transient
   addresses out of the protected ranges, and speculation must stay
   architecturally invisible: value, final memory and cycle count
   identical to a depth-0 run at every window depth.

   The generator clamps its own addresses into scratch, so the wrapper
   below adds the one shape it cannot produce — a load whose address
   arrives raw in a parameter.  That is exactly the Spectre-v1 gadget:
   under the predicated mask the wrong select arm transiently
   dereferences the unmasked parameter, so with a ghost-range argument
   this wrapper distinguishes the mitigations (the probe fires under
   [Off]); under [Safe_mask] it must never fire. *)
let spec_entry =
  {
    Ir.name = "spec_entry";
    params = [ "p"; "q" ];
    blocks =
      [
        {
          Ir.label = "entry";
          instrs =
            [
              Ir.Load { dst = "v"; addr = Ir.Reg "p"; width = Ir.W64 };
              Ir.Call
                { dst = Some "r"; callee = "f0"; args = [ Ir.Reg "v"; Ir.Reg "q" ] };
            ];
          term = Ir.Ret (Some (Ir.Reg "r"));
        };
      ];
  }

let prop_safe_mask_no_transient_leak =
  QCheck2.Test.make
    ~name:"safe-mask verified code never leaks transiently at any depth"
    ~count:150
    QCheck2.Gen.(
      pair (int_bound 1_000_000)
        (pair (pair (int_bound 4000) (int_bound 4000)) (int_range 1 16)))
    (fun (seed, ((a, b), depth)) ->
      let program =
        { Ir.funcs = spec_entry :: (gen_program seed).Ir.funcs }
      in
      let compiled =
        Pipeline.compile_kernel_code ~mode:Pipeline.Virtual_ghost
          ~mitigation:Mitigation.Safe_mask program
      in
      let image = compiled.Pipeline.linked in
      (* The pipeline's safe-mask output must prove the Spec invariant
         (no predicated window survives, so nothing can mispredict into
         an unmasked access). *)
      Image_verify.check ~mitigation:Mitigation.Safe_mask image = Ok ()
      && (* (a) differential vs depth 0: speculation leaves no
            architectural residue *)
      let run_at spec_depth =
        let w = make_world () in
        let cycles = ref 0 in
        let env =
          {
            Executor.null_env with
            load = w_load w;
            store = w_store w;
            charge = (fun _ n -> cycles := !cycles + n);
            spec_depth;
            spec_load = (fun _ _ -> Some 0L);
          }
        in
        (* keep the wrapper's raw-parameter load inside scratch so the
           flat test memory stays in range *)
        let p = Int64.add scratch_base (Int64.of_int (a land 0xff8)) in
        let args = [| p; Int64.of_int b |] in
        match Executor.run ~fuel:400_000 env image "spec_entry" args with
        | v -> Value (v, w.mem, !cycles)
        | exception Executor.Exec_trap _ -> Trapped
      in
      let r0 = run_at 0 in
      let rd = run_at depth in
      agree r0 rd && agree_cycles r0 rd
      && (* (b) with ghost-range arguments feeding every address
            computation, no transient (or architectural) access ever
            touches the ghost partition or the SVA ranges *)
      let safe = ref true in
      let check addr =
        if Layout.in_ghost addr || Layout.in_sva addr then safe := false
      in
      let env =
        {
          Executor.null_env with
          load =
            (fun addr _ ->
              check addr;
              0L);
          store = (fun addr _ _ -> check addr);
          memcpy =
            (fun ~dst ~src ~len:_ ->
              check dst;
              check src);
          spec_depth = depth;
          spec_load =
            (fun addr _ ->
              check addr;
              Some 0L);
        }
      in
      let args = [| Int64.add Layout.ghost_start 0x1234L; Layout.ghost_start |] in
      (try ignore (Executor.run ~fuel:400_000 env image "spec_entry" args) with
      | Executor.Exec_trap _ -> ()
      | Executor.Cfi_violation _ -> ());
      !safe)

let prop_cfi_audit_on_random_programs =
  QCheck2.Test.make ~name:"CFI audit passes on every pipeline output" ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let program = gen_program seed in
      let compiled = Pipeline.compile_kernel_code ~mode:Pipeline.Virtual_ghost program in
      Cfi_pass.validate compiled.Pipeline.image = Ok ())

let () =
  Alcotest.run "vg_compiler_fuzz"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_three_way_agreement;
            prop_compiled_trajectory_parity;
            prop_optimizer_preserves_semantics;
            prop_optimizer_never_unmasks;
            prop_instrumentation_preserves_size_relation;
            prop_safe_mask_no_transient_leak;
            prop_cfi_audit_on_random_programs;
          ] );
    ]
