(* Tests for the Virtual Ghost compiler: layout, sandboxing pass, CFI
   instrumentation, code generation, the native executor (including
   differential testing against the reference interpreter), the Iago
   mmap-masking pass, the signed translation cache and the pipeline. *)

(* ------------------------------------------------------------------ *)
(* Shared memory environment usable by both Interp and Executor.       *)

type world = {
  mem : Bytes.t;
  base : int64;
  mutable cycles : int;
  mutable stores : (int64 * int64) list; (* address, value — newest first *)
}

let make_world ?(base = 0x1000L) () =
  { mem = Bytes.make 65536 '\000'; base; cycles = 0; stores = [] }

let world_off w addr =
  let off = Int64.to_int (Int64.sub addr w.base) in
  if off < 0 || off >= Bytes.length w.mem - 8 then
    failwith (Printf.sprintf "world access out of range: %Lx" addr);
  off

let world_load w addr (width : Ir.width) =
  let i = world_off w addr in
  match width with
  | W8 -> Int64.of_int (Char.code (Bytes.get w.mem i))
  | W16 -> Int64.of_int (Bytes.get_uint16_le w.mem i)
  | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le w.mem i)) 0xffffffffL
  | W64 -> Bytes.get_int64_le w.mem i

let world_store w addr (width : Ir.width) v =
  w.stores <- (addr, v) :: w.stores;
  let i = world_off w addr in
  match width with
  | W8 -> Bytes.set w.mem i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
  | W16 -> Bytes.set_uint16_le w.mem i (Int64.to_int (Int64.logand v 0xffffL))
  | W32 -> Bytes.set_int32_le w.mem i (Int64.to_int32 v)
  | W64 -> Bytes.set_int64_le w.mem i v

let interp_env w : Interp.env =
  {
    load = world_load w;
    store = world_store w;
    memcpy =
      (fun ~dst ~src ~len ->
        Bytes.blit w.mem (world_off w src) w.mem (world_off w dst) (Int64.to_int len));
    io_read = (fun port -> Int64.add port 7L);
    io_write = (fun _ _ -> ());
    extern = (fun name _ -> failwith ("interp extern: " ^ name));
    resolve_sym = (fun s -> failwith ("interp sym: " ^ s));
    func_of_addr = (fun _ -> None);
    charge = (fun n -> w.cycles <- w.cycles + n);
    fence = (fun () -> ());
  }

let exec_env w : Executor.env =
  {
    Executor.null_env with
    load = world_load w;
    store = world_store w;
    memcpy =
      (fun ~dst ~src ~len ->
        Bytes.blit w.mem (world_off w src) w.mem (world_off w dst) (Int64.to_int len));
    io_read = (fun port -> Int64.add port 7L);
    io_write = (fun _ _ -> ());
    charge = (fun _ n -> w.cycles <- w.cycles + n);
  }

(* ------------------------------------------------------------------ *)
(* Program fixtures                                                    *)

let rec_sum_program () =
  let b = Builder.create () in
  Builder.func b "sum" ~params:[ "n" ];
  let is_zero = Builder.cmp b Eq (Reg "n") (Imm 0L) in
  Builder.cbr b is_zero "base" "rec";
  Builder.block b "base";
  Builder.ret b (Some (Imm 0L));
  Builder.block b "rec";
  let n1 = Builder.bin b Sub (Reg "n") (Imm 1L) in
  let sub = Builder.call b "sum" [ n1 ] in
  let total = Builder.bin b Add (Reg "n") sub in
  Builder.ret b (Some total);
  Builder.program b

(* Collatz step count: exercises loops, branches, arithmetic. *)
let collatz_program () =
  let b = Builder.create () in
  Builder.func b "collatz" ~params:[ "n" ];
  Builder.store b ~src:(Imm 0L) ~addr:(Imm 0x2000L) ();
  Builder.store b ~src:(Reg "n") ~addr:(Imm 0x2008L) ();
  Builder.br b "loop";
  Builder.block b "loop";
  let n = Builder.load b (Imm 0x2008L) in
  let at_one = Builder.cmp b Ule n (Imm 1L) in
  Builder.cbr b at_one "done" "step";
  Builder.block b "step";
  let odd = Builder.bin b And n (Imm 1L) in
  let half = Builder.bin b Lshr n (Imm 1L) in
  let tripled = Builder.bin b Mul n (Imm 3L) in
  let plus1 = Builder.bin b Add tripled (Imm 1L) in
  let next = Builder.select b odd plus1 half in
  Builder.store b ~src:next ~addr:(Imm 0x2008L) ();
  let count = Builder.load b (Imm 0x2000L) in
  let count' = Builder.bin b Add count (Imm 1L) in
  Builder.store b ~src:count' ~addr:(Imm 0x2000L) ();
  Builder.br b "loop";
  Builder.block b "done";
  let count = Builder.load b (Imm 0x2000L) in
  Builder.ret b (Some count);
  Builder.program b

(* Function-pointer dispatch through memory: the shape kernel code has
   when calling through an ops table. *)
let fptr_program () =
  let b = Builder.create () in
  Builder.func b "inc" ~params:[ "x" ];
  let r = Builder.bin b Add (Reg "x") (Imm 1L) in
  Builder.ret b (Some r);
  Builder.func b "dec" ~params:[ "x" ];
  let r = Builder.bin b Sub (Reg "x") (Imm 1L) in
  Builder.ret b (Some r);
  Builder.func b "dispatch" ~params:[ "which"; "x" ];
  (* store both pointers in an ops table at 0x3000, load one, call it *)
  Builder.store b ~src:(Sym "inc") ~addr:(Imm 0x3000L) ();
  Builder.store b ~src:(Sym "dec") ~addr:(Imm 0x3008L) ();
  let offset = Builder.bin b Mul (Reg "which") (Imm 8L) in
  let slot = Builder.bin b Add (Imm 0x3000L) offset in
  let fp = Builder.load b slot in
  let r = Builder.call_indirect b fp [ Reg "x" ] in
  Builder.ret b (Some r);
  Builder.program b

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let test_layout_partitions () =
  Alcotest.(check bool) "ghost start" true (Layout.in_ghost 0xffffff0000000000L);
  Alcotest.(check bool) "ghost end excl" false (Layout.in_ghost 0xffffff8000000000L);
  Alcotest.(check bool) "kernel" true (Layout.in_kernel 0xffffff8000000000L);
  Alcotest.(check bool) "user" true (Layout.in_user 0x400000L);
  Alcotest.(check bool) "user not kernel" false (Layout.in_kernel 0x400000L);
  Alcotest.(check bool) "sva inside kernel" true (Layout.in_kernel Layout.sva_start)

let test_layout_escape_bit () =
  (* ORing bit 39 into any ghost address yields a kernel address. *)
  let ghost = 0xffffff0012345678L in
  let escaped = Int64.logor ghost Layout.ghost_escape_bit in
  Alcotest.(check bool) "escapes to kernel" true (Layout.in_kernel escaped);
  Alcotest.(check bool) "no longer ghost" false (Layout.in_ghost escaped)

(* ------------------------------------------------------------------ *)
(* Sandboxing pass                                                     *)

let test_masked_address_semantics () =
  (* kernel addresses unchanged *)
  Alcotest.(check int64) "kernel id" 0xffffff8011223344L
    (Sandbox_pass.masked_address 0xffffff8011223344L);
  (* user addresses unchanged *)
  Alcotest.(check int64) "user id" 0x7fff12345678L
    (Sandbox_pass.masked_address 0x7fff12345678L);
  (* ghost addresses escape into kernel space *)
  Alcotest.(check int64) "ghost escapes" 0xffffff8012345678L
    (Sandbox_pass.masked_address 0xffffff0012345678L);
  (* SVA-internal addresses are redirected to zero *)
  Alcotest.(check int64) "sva zeroed" 0L (Sandbox_pass.masked_address Layout.sva_start)

let prop_masked_never_ghost_or_sva =
  QCheck2.Test.make ~name:"masked address never ghost or SVA" ~count:2000
    QCheck2.Gen.(map Int64.of_int int)
    (fun addr ->
      let m = Sandbox_pass.masked_address addr in
      (not (Layout.in_ghost m)) && not (Layout.in_sva m))

let prop_masked_preserves_safe =
  QCheck2.Test.make ~name:"masking is identity outside ghost and SVA" ~count:2000
    QCheck2.Gen.(map Int64.of_int int)
    (fun addr ->
      if Layout.in_ghost addr || Layout.in_sva addr then true
      else Sandbox_pass.masked_address addr = addr)

(* The IR mask sequence must agree with the reference function.  We run
   an instrumented store through the interpreter and observe where the
   store actually lands. *)
let observe_store_target addr_value =
  let b = Builder.create () in
  Builder.func b "f" ~params:[ "a" ];
  Builder.store b ~src:(Imm 1L) ~addr:(Reg "a") ();
  Builder.ret b None;
  let program = Sandbox_pass.instrument_program (Builder.program b) in
  let target = ref None in
  let env =
    {
      Interp.load = (fun _ _ -> 0L);
      store = (fun addr _ _ -> target := Some addr);
      memcpy = (fun ~dst:_ ~src:_ ~len:_ -> ());
      io_read = (fun _ -> 0L);
      io_write = (fun _ _ -> ());
      extern = (fun _ _ -> 0L);
      resolve_sym = (fun _ -> 0L);
      func_of_addr = (fun _ -> None);
      charge = (fun _ -> ());
      fence = (fun () -> ());
    }
  in
  ignore (Interp.run env program "f" [| addr_value |]);
  Option.get !target

let prop_ir_sequence_matches_reference =
  QCheck2.Test.make ~name:"instrumented IR matches masked_address" ~count:300
    (QCheck2.Gen.oneof
       [
         QCheck2.Gen.map Int64.of_int QCheck2.Gen.int;
         (* bias towards interesting ranges *)
         QCheck2.Gen.map
           (fun off -> Int64.add Layout.ghost_start (Int64.of_int off))
           (QCheck2.Gen.int_bound 1_000_000);
         QCheck2.Gen.map
           (fun off -> Int64.add Layout.sva_start (Int64.of_int off))
           (QCheck2.Gen.int_bound 1_000_000);
       ])
    (fun addr -> observe_store_target addr = Sandbox_pass.masked_address addr)

let test_sandbox_instruments_all_memory_ops () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[ "a" ];
  let v = Builder.load b (Reg "a") in
  Builder.store b ~src:v ~addr:(Reg "a") ();
  ignore (Builder.atomic_rmw b Add ~addr:(Reg "a") (Imm 1L));
  Builder.memcpy b ~dst:(Reg "a") ~src:(Reg "a") ~len:(Imm 8L);
  Builder.ret b None;
  let before = Builder.program b in
  let after = Sandbox_pass.instrument_program before in
  (* load, store, atomic: 1 operand each; memcpy: 2 operands. *)
  let expected_added = 5 * Sandbox_pass.added_instructions_per_operand in
  Alcotest.(check int) "added instructions"
    (Ir.instr_count before + expected_added)
    (Ir.instr_count after)

let test_sandbox_leaves_non_memory_alone () =
  let p = rec_sum_program () in
  let p' = Sandbox_pass.instrument_program p in
  Alcotest.(check int) "unchanged" (Ir.instr_count p) (Ir.instr_count p')

(* ------------------------------------------------------------------ *)
(* Codegen + executor, differential against the interpreter            *)

let compile_link ~cfi program = Linker.link (Codegen.compile ~cfi program)

let run_both program func args =
  let wi = make_world () in
  let interp_result = Interp.run (interp_env wi) program func args in
  let we = make_world () in
  let image = compile_link ~cfi:false program in
  let exec_result = Executor.run (exec_env we) image func args in
  (interp_result, exec_result, wi, we)

let test_differential_sum () =
  let i, e, wi, we = run_both (rec_sum_program ()) "sum" [| 250L |] in
  Alcotest.(check int64) "interp" 31375L i;
  Alcotest.(check int64) "exec agrees" i e;
  Alcotest.(check int) "cycles agree" wi.cycles we.cycles

let test_differential_collatz () =
  List.iter
    (fun n ->
      let i, e, wi, we = run_both (collatz_program ()) "collatz" [| n |] in
      Alcotest.(check int64) (Printf.sprintf "collatz %Ld" n) i e;
      Alcotest.(check bytes) "memory agrees" wi.mem we.mem;
      Alcotest.(check int) "cycles agree" wi.cycles we.cycles)
    [ 1L; 6L; 27L; 97L ]

let test_differential_fptr () =
  let program = fptr_program () in
  (* Interpreter needs symbol resolution for the function pointers. *)
  let image = Codegen.compile ~cfi:false program in
  let resolve s = Option.get (Native.addr_of_symbol image s) in
  let wi = make_world () in
  let ienv =
    {
      (interp_env wi) with
      Interp.resolve_sym = resolve;
      func_of_addr =
        (fun a ->
          Native.index_of_addr image a
          |> Option.map (fun i -> (Option.get (Native.symbol_of_index image i)).Native.name));
    }
  in
  let i0 = Interp.run ienv program "dispatch" [| 0L; 10L |] in
  let i1 = Interp.run ienv program "dispatch" [| 1L; 10L |] in
  let we = make_world () in
  let linked = Linker.link image in
  let e0 = Executor.run (exec_env we) linked "dispatch" [| 0L; 10L |] in
  let e1 = Executor.run (exec_env we) linked "dispatch" [| 1L; 10L |] in
  Alcotest.(check int64) "inc" 11L i0;
  Alcotest.(check int64) "dec" 9L i1;
  Alcotest.(check int64) "exec inc" i0 e0;
  Alcotest.(check int64) "exec dec" i1 e1

let test_differential_instrumented () =
  (* The instrumented program must behave identically on safe
     addresses under both engines. *)
  let program = Sandbox_pass.instrument_program (collatz_program ()) in
  let wi = make_world () in
  let i = Interp.run (interp_env wi) program "collatz" [| 27L |] in
  let we = make_world () in
  let image = compile_link ~cfi:true program in
  let e = Executor.run (exec_env we) image "collatz" [| 27L |] in
  Alcotest.(check int64) "instrumented agree" i e;
  Alcotest.(check int64) "steps" 111L e

let test_executor_io () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  Builder.io_write b ~port:(Imm 0x3f8L) (Imm 65L);
  let v = Builder.io_read b (Imm 0x60L) in
  Builder.ret b (Some v);
  let image = compile_link ~cfi:false (Builder.program b) in
  let w = make_world () in
  Alcotest.(check int64) "io" 0x67L (Executor.run (exec_env w) image "main" [||])

let test_executor_extern () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  let r = Builder.call b "extern.helper" [ Imm 5L ] in
  Builder.ret b (Some r);
  let image = compile_link ~cfi:false (Builder.program b) in
  let w = make_world () in
  let env =
    { (exec_env w) with Executor.extern = (fun name args ->
          Alcotest.(check string) "extern name" "extern.helper" name;
          Int64.mul args.(0) 3L) }
  in
  Alcotest.(check int64) "extern" 15L (Executor.run env image "main" [||])

let test_executor_fuel () =
  let b = Builder.create () in
  Builder.func b "main" ~params:[];
  Builder.br b "spin";
  Builder.block b "spin";
  Builder.br b "spin";
  let image = compile_link ~cfi:false (Builder.program b) in
  let w = make_world () in
  Alcotest.(check bool) "fuel" true
    (try
       ignore (Executor.run ~fuel:500 (exec_env w) image "main" [||]);
       false
     with Executor.Exec_trap _ -> true)

let test_cycle_accounting () =
  (* The instrumented build must charge strictly more cycles. *)
  let native = compile_link ~cfi:false (collatz_program ()) in
  let vg =
    compile_link ~cfi:true (Sandbox_pass.instrument_program (collatz_program ()))
  in
  let wn = make_world () in
  ignore (Executor.run (exec_env wn) native "collatz" [| 97L |]);
  let wv = make_world () in
  ignore (Executor.run (exec_env wv) vg "collatz" [| 97L |]);
  Alcotest.(check bool) "vg costs more" true (wv.cycles > wn.cycles);
  (* Collatz is memory-heavy: instrumentation should cost at least 2x. *)
  Alcotest.(check bool) "overhead is substantial" true
    (float_of_int wv.cycles /. float_of_int wn.cycles > 2.0)

(* ------------------------------------------------------------------ *)
(* CFI                                                                 *)

let test_cfi_image_validates () =
  let image =
    Codegen.compile ~cfi:true (Sandbox_pass.instrument_program (fptr_program ()))
  in
  (match Cfi_pass.validate image with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "violations: %s"
        (String.concat "; " (List.map (fun (v : Cfi_pass.violation) -> v.message) vs)));
  Alcotest.(check bool) "has labels" true
    (Native.count image (function Native.NCfiLabel _ -> true | _ -> false) > 0)

let test_native_image_clean () =
  let image = Codegen.compile ~cfi:false (fptr_program ()) in
  Alcotest.(check bool) "no artifacts" true
    (Cfi_pass.validate_uninstrumented image = Ok ())

let test_cfi_catches_unchecked_ret () =
  let image = Codegen.compile ~cfi:false (rec_sum_program ()) in
  Alcotest.(check bool) "flagged" true (Cfi_pass.validate image <> Ok ())

let test_cfi_indirect_call_works () =
  (* A legitimate indirect call through the ops table still works under
     CFI: the target carries the shared label. *)
  let image = compile_link ~cfi:true (fptr_program ()) in
  let w = make_world () in
  Alcotest.(check int64) "legit call" 11L
    (Executor.run (exec_env w) image "dispatch" [| 0L; 10L |])

let test_cfi_blocks_corrupted_fptr () =
  (* Corrupt the ops table so the function pointer aims at attacker-
     chosen user memory. Under CFI the call must be refused; without
     CFI the executor would call foreign code. *)
  let b = Builder.create () in
  Builder.func b "victim" ~params:[];
  let fp = Builder.load b (Imm 0x3000L) in
  let r = Builder.call_indirect b fp [] in
  Builder.ret b (Some r);
  let program = Builder.program b in
  (* CFI build: violation *)
  let image = compile_link ~cfi:true program in
  let w = make_world () in
  world_store w 0x3000L W64 0x400000L (* user-space address *);
  Alcotest.(check bool) "cfi violation" true
    (try
       ignore (Executor.run (exec_env w) image "victim" [||]);
       false
     with Executor.Cfi_violation _ -> true);
  (* Native build: the foreign call goes through — hijack succeeds. *)
  let image_native = compile_link ~cfi:false program in
  let hijacked = ref false in
  let w2 = make_world () in
  world_store w2 0x3000L W64 0x400000L;
  let env =
    { (exec_env w2) with Executor.call_foreign = (fun addr _ ->
          Alcotest.(check int64) "target" 0x400000L addr;
          hijacked := true;
          0L) }
  in
  ignore (Executor.run env image_native "victim" [||]);
  Alcotest.(check bool) "hijack succeeds without CFI" true !hijacked

let test_cfi_blocks_rop_return () =
  (* Simulate a control-data attack that corrupts a return address to
     point into the middle of a function (a "gadget").  With CFI the
     return is refused because the gadget slot carries no label; the
     uninstrumented kernel happily returns there. *)
  let program = rec_sum_program () in
  let run_with_tamper (image : Linker.image) =
    let w = make_world () in
    (* Redirect every return into the middle of `sum` (slot 3 — an
       arbitrary non-label slot). *)
    let gadget = Native.addr_of_index image.Linker.native 3 in
    let env = { (exec_env w) with Executor.tamper_return = Some (fun _ -> gadget) } in
    Executor.run ~fuel:10_000 env image "sum" [| 5L |]
  in
  let vg = compile_link ~cfi:true (Sandbox_pass.instrument_program program) in
  Alcotest.(check bool) "cfi blocks" true
    (try
       ignore (run_with_tamper vg);
       false
     with Executor.Cfi_violation _ -> true);
  let native = compile_link ~cfi:false program in
  Alcotest.(check bool) "native follows corrupted return" true
    (try
       ignore (run_with_tamper native);
       true (* terminated somewhere random but without CFI violation *)
     with
    | Executor.Cfi_violation _ -> false
    | Executor.Exec_trap _ -> true)

let test_cfi_kernel_masking () =
  (* An indirect call whose target is a *user-space* copy of kernel code
     cannot escape: the check masks the address into kernel space
     first.  Target 0x40 masked = kernel_code_start + 0x40, which in our
     image is a non-entry slot -> violation (not a user-code call). *)
  let b = Builder.create () in
  Builder.func b "victim" ~params:[];
  let r = Builder.call_indirect b (Imm 0x40L) [] in
  Builder.ret b (Some r);
  let image = compile_link ~cfi:true (Builder.program b) in
  let w = make_world () in
  let foreign_called = ref false in
  let env =
    { (exec_env w) with Executor.call_foreign = (fun _ _ ->
          foreign_called := true;
          0L) }
  in
  (try ignore (Executor.run env image "victim" [||]) with
  | Executor.Cfi_violation _ -> ()
  | Executor.Exec_trap _ -> ());
  Alcotest.(check bool) "never leaves kernel code" false !foreign_called

(* ------------------------------------------------------------------ *)
(* Iago mmap masking                                                   *)

let test_mmap_mask_pass () =
  let b = Builder.create () in
  Builder.func b "app" ~params:[];
  let p = Builder.call b "extern.mmap" [ Imm 4096L ] in
  Builder.ret b (Some p);
  let program =
    Mmap_mask_pass.instrument_program ~mmap_callees:[ "extern.mmap" ] (Builder.program b)
  in
  let returns = ref 0L in
  let env =
    {
      Interp.load = (fun _ _ -> 0L);
      store = (fun _ _ _ -> ());
      memcpy = (fun ~dst:_ ~src:_ ~len:_ -> ());
      io_read = (fun _ -> 0L);
      io_write = (fun _ _ -> ());
      extern = (fun _ _ -> !returns);
      resolve_sym = (fun _ -> 0L);
      func_of_addr = (fun _ -> None);
      charge = (fun _ -> ());
      fence = (fun () -> ());
    }
  in
  (* Hostile kernel returns a pointer into ghost memory. *)
  returns := 0xffffff0000042000L;
  let got = Interp.run env program "app" [||] in
  Alcotest.(check bool) "moved out of ghost" false (Layout.in_ghost got);
  Alcotest.(check int64) "reference semantics"
    (Mmap_mask_pass.masked_return 0xffffff0000042000L) got;
  (* Benign pointers unchanged. *)
  returns := 0x7f0000001000L;
  Alcotest.(check int64) "benign unchanged" 0x7f0000001000L
    (Interp.run env program "app" [||])

let prop_mmap_mask_reference =
  QCheck2.Test.make ~name:"mmap mask never returns ghost pointer" ~count:2000
    QCheck2.Gen.(map Int64.of_int int)
    (fun v -> not (Layout.in_ghost (Mmap_mask_pass.masked_return v)))

(* ------------------------------------------------------------------ *)
(* Optimizer                                                           *)

let test_opt_constant_folding () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  let x = Builder.bin b Add (Imm 2L) (Imm 3L) in
  let y = Builder.bin b Mul x (Imm 4L) in
  let z = Builder.cmp b Eq y (Imm 20L) in
  let r = Builder.select b z (Imm 111L) (Imm 222L) in
  Builder.ret b (Some r);
  let opt = Opt_pass.optimize_program (Builder.program b) in
  (* Everything folds to constants; semantics check via the interpreter. *)
  let env =
    {
      Interp.load = (fun _ _ -> 0L);
      store = (fun _ _ _ -> ());
      memcpy = (fun ~dst:_ ~src:_ ~len:_ -> ());
      io_read = (fun _ -> 0L);
      io_write = (fun _ _ -> ());
      extern = (fun _ _ -> 0L);
      resolve_sym = (fun _ -> 0L);
      func_of_addr = (fun _ -> None);
      charge = (fun _ -> ());
      fence = (fun () -> ());
    }
  in
  Alcotest.(check int64) "folded result" 111L (Interp.run env opt "f" [||])

let test_opt_branch_folding_prunes () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  let c = Builder.cmp b Eq (Imm 1L) (Imm 1L) in
  Builder.cbr b c "yes" "no";
  Builder.block b "yes";
  Builder.ret b (Some (Imm 1L));
  Builder.block b "no";
  Builder.ret b (Some (Imm 0L));
  let opt = Opt_pass.optimize_program (Builder.program b) in
  let f = Option.get (Ir.find_func opt "f") in
  Alcotest.(check int) "dead branch pruned" 2 (List.length f.Ir.blocks);
  Alcotest.(check bool) "no block is 'no'" false
    (List.exists (fun (blk : Ir.block) -> blk.Ir.label = "no") f.Ir.blocks)

let test_opt_dce () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[ "x" ];
  let _dead = Builder.bin b Add (Reg "x") (Imm 1L) in
  let _dead2 = Builder.cmp b Eq (Reg "x") (Imm 0L) in
  let live = Builder.bin b Mul (Reg "x") (Imm 2L) in
  Builder.ret b (Some live);
  let opt = Opt_pass.optimize_program (Builder.program b) in
  Alcotest.(check int) "dead arithmetic removed" 1 (Ir.instr_count opt)

let test_opt_keeps_effects () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[ "p" ];
  (* Results unused, but loads can fault and stores/calls/IO are
     effects: none may be removed. *)
  let _l = Builder.load b (Reg "p") in
  Builder.store b ~src:(Imm 1L) ~addr:(Reg "p") ();
  let _c = Builder.call b "extern.effect" [] in
  Builder.io_write b ~port:(Imm 0x80L) (Imm 1L);
  Builder.ret b None;
  let before = Ir.instr_count (Builder.program b) in
  ignore before;
  let b2 = Builder.create () in
  Builder.func b2 "f" ~params:[ "p" ];
  let _l = Builder.load b2 (Reg "p") in
  Builder.store b2 ~src:(Imm 1L) ~addr:(Reg "p") ();
  let _c = Builder.call b2 "extern.effect" [] in
  Builder.io_write b2 ~port:(Imm 0x80L) (Imm 1L);
  Builder.ret b2 None;
  let opt = Opt_pass.optimize_program (Builder.program b2) in
  Alcotest.(check int) "effects kept" 4 (Ir.instr_count opt)

let test_opt_no_div_by_zero_folding () =
  let b = Builder.create () in
  Builder.func b "f" ~params:[];
  let d = Builder.bin b Udiv (Imm 1L) (Imm 0L) in
  Builder.ret b (Some d);
  let opt = Opt_pass.optimize_program (Builder.program b) in
  let env =
    {
      Interp.load = (fun _ _ -> 0L);
      store = (fun _ _ _ -> ());
      memcpy = (fun ~dst:_ ~src:_ ~len:_ -> ());
      io_read = (fun _ -> 0L);
      io_write = (fun _ _ -> ());
      extern = (fun _ _ -> 0L);
      resolve_sym = (fun _ -> 0L);
      func_of_addr = (fun _ -> None);
      charge = (fun _ -> ());
      fence = (fun () -> ());
    }
  in
  Alcotest.(check bool) "still traps" true
    (try
       ignore (Interp.run env opt "f" [||]);
       false
     with Interp.Trap _ -> true)

(* ------------------------------------------------------------------ *)
(* Linker                                                              *)

let test_linker_structure () =
  let program = fptr_program () in
  let native = Codegen.compile ~cfi:true (Sandbox_pass.instrument_program program) in
  let linked = Linker.link native in
  Alcotest.(check int) "one func per symbol" (List.length native.Native.symbols)
    (Array.length linked.Linker.funcs);
  Alcotest.(check int) "lcode covers code" (Array.length native.Native.code)
    (Array.length linked.Linker.lcode);
  List.iter
    (fun (s : Native.symbol) ->
      match Linker.find_func linked s.Native.name with
      | None -> Alcotest.failf "symbol %s lost by linker" s.Native.name
      | Some id ->
          let f = linked.Linker.funcs.(id) in
          Alcotest.(check string) "name" s.Native.name f.Linker.f_name;
          Alcotest.(check int) "entry" s.Native.entry f.Linker.f_entry;
          Alcotest.(check int) "arity" (List.length s.Native.params)
            (Array.length f.Linker.f_params);
          Alcotest.(check int) "entry_of inverse" id
            linked.Linker.entry_of.(s.Native.entry);
          Alcotest.(check int) "owner of entry" id
            linked.Linker.owner_of.(s.Native.entry))
    native.Native.symbols;
  (* every CFI label is pre-resolved *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Native.NCfiLabel l ->
          Alcotest.(check int) "label_of" (Int32.to_int l) linked.Linker.label_of.(i)
      | _ ->
          Alcotest.(check int) "no stray label" Linker.no_label
            linked.Linker.label_of.(i))
    native.Native.code

let test_linker_register_slots_dense () =
  (* Parameters take the first frame slots, in order; every register
     named in a function maps below f_nregs. *)
  let linked = compile_link ~cfi:false (fptr_program ()) in
  Array.iter
    (fun (f : Linker.func) ->
      Array.iteri
        (fun j slot ->
          Alcotest.(check bool) (Printf.sprintf "%s param %d" f.Linker.f_name j) true
            (slot = j))
        f.Linker.f_params;
      Alcotest.(check int) "names cover frame" f.Linker.f_nregs
        (Array.length f.Linker.f_names))
    linked.Linker.funcs

(* An indirect checked call that lands on a *return-site* label (a
   labelled slot that is not a function entry) must name the owning
   function in the trap, not just a raw slot number. *)
let test_indirect_call_to_nonentry_names_owner () =
  let b = Builder.create () in
  Builder.func b "leaf" ~params:[];
  Builder.ret b (Some (Imm 1L));
  Builder.func b "caller" ~params:[];
  let r = Builder.call b "leaf" [] in
  Builder.ret b (Some r);
  Builder.func b "victim" ~params:[];
  let fp = Builder.load b (Imm 0x3000L) in
  let r = Builder.call_indirect b fp [] in
  Builder.ret b (Some r);
  let image = Codegen.compile ~cfi:true (Builder.program b) in
  let linked = Linker.link image in
  (* find a labelled slot that is not any function's entry: the return
     site of the call inside `caller` *)
  let gadget = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with
      | Native.NCfiLabel _ when linked.Linker.entry_of.(i) < 0 && !gadget < 0 ->
          gadget := i
      | _ -> ())
    image.Native.code;
  Alcotest.(check bool) "found a return-site label" true (!gadget >= 0);
  let w = make_world () in
  world_store w 0x3000L W64 (Native.addr_of_index image !gadget);
  let contains ~needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Executor.run (exec_env w) linked "victim" [||] with
  | _ -> Alcotest.fail "expected a trap"
  | exception Executor.Exec_trap msg ->
      Alcotest.(check bool)
        (Printf.sprintf "trap names owner: %s" msg)
        true
        (contains ~needle:"caller" msg
        && contains ~needle:"not a function entry" msg)
  | exception Executor.Cfi_violation msg ->
      Alcotest.failf "unexpected CFI violation: %s" msg

let test_checked_return_cycles_unchanged () =
  (* The pre-resolved fast path for checked returns must charge exactly
     what the slow probe does: Cfi_pass.check_extra_cycles per return,
     on top of one cycle per slot. *)
  let program = Sandbox_pass.instrument_program (rec_sum_program ()) in
  let vg = compile_link ~cfi:true program in
  let w = make_world () in
  ignore (Executor.run (exec_env w) vg "sum" [| 10L |]);
  let with_fast_path = w.cycles in
  (* Force the slow path with an identity tamper hook: same masking and
     label probe, just not pre-resolved. *)
  let w2 = make_world () in
  let env = { (exec_env w2) with Executor.tamper_return = Some (fun a -> a) } in
  ignore (Executor.run env vg "sum" [| 10L |]);
  Alcotest.(check int) "fast path charges the same" w2.cycles with_fast_path

let test_trans_cache_roundtrip () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  let image = compile_link ~cfi:true (rec_sum_program ()) in
  Trans_cache.add cache ~name:"kernel" ~instrumented:false image;
  match Trans_cache.find cache ~name:"kernel" with
  | Error e -> Alcotest.failf "image should verify: %s" (Trans_cache.describe_find_error e)
  | Ok image' ->
      Alcotest.(check int) "same size"
        (Array.length image.Linker.native.Native.code)
        (Array.length image'.Linker.native.Native.code);
      let w = make_world () in
      Alcotest.(check int64) "still runs" 15L
        (Executor.run (exec_env w) image' "sum" [| 5L |])

let test_trans_cache_tamper_detected () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  let image = compile_link ~cfi:true (rec_sum_program ()) in
  Trans_cache.add cache ~name:"kernel" ~instrumented:false image;
  Trans_cache.tamper cache ~name:"kernel";
  Alcotest.(check bool) "rejected" true
    (Trans_cache.find cache ~name:"kernel" = Error Trans_cache.Bad_signature)

let test_trans_cache_wrong_key () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  let image = compile_link ~cfi:true (rec_sum_program ()) in
  let signed = Trans_cache.sign cache ~instrumented:false image in
  let other = Trans_cache.create ~key:(Bytes.of_string "evil-key") in
  Alcotest.(check bool) "foreign signature rejected" true
    (Trans_cache.verify_and_load other signed = Error Trans_cache.Bad_signature)

(* ------------------------------------------------------------------ *)
(* Syscall-flow graphs                                                 *)

let sfip_resolve = function
  | "extern.open" -> Some 1
  | "extern.read" -> Some 2
  | "extern.close" -> Some 3
  | "extern.write" -> Some 4
  | _ -> None

(* main: open, call helper (which writes), close.  The direct call
   splices helper's (first, last) summary into main's chain. *)
let sfip_demo_program () =
  let b = Builder.create () in
  Builder.func b "helper" ~params:[];
  let _ = Builder.call b "extern.write" [ Imm 1L ] in
  Builder.ret b (Some (Imm 0L));
  Builder.func b "main" ~params:[];
  let _ = Builder.call b "extern.open" [ Imm 7L ] in
  let _ = Builder.call b "helper" [] in
  let _ = Builder.call b "extern.close" [ Imm 7L ] in
  Builder.ret b (Some (Imm 0L));
  Builder.program b

let test_sfip_extract_direct_calls () =
  let image = compile_link ~cfi:false (sfip_demo_program ()) in
  let g = Sfip.extract ~resolve:sfip_resolve ~n:8 ~entries:[ "main" ] image in
  Alcotest.(check int) "one entry" 1 (Sfip.entry_count g);
  Alcotest.(check bool) "entry is open" true (Sfip.entry_allowed g 1);
  Alcotest.(check bool) "open -> write (into helper)" true
    (Sfip.allowed g ~from:1 ~to_:4);
  Alcotest.(check bool) "write -> close (out of helper)" true
    (Sfip.allowed g ~from:4 ~to_:3);
  Alcotest.(check bool) "helper cannot be skipped" false
    (Sfip.allowed g ~from:1 ~to_:3);
  Alcotest.(check int) "exactly two transitions" 2 (Sfip.transition_count g)

let test_sfip_wire_roundtrip () =
  let image = compile_link ~cfi:false (sfip_demo_program ()) in
  let g = Sfip.extract ~resolve:sfip_resolve ~n:8 image in
  let wire = Sfip.to_bytes g in
  (match Sfip.of_bytes wire with
  | None -> Alcotest.fail "wire form should decode"
  | Some g' -> Alcotest.(check bool) "roundtrip equal" true (Sfip.equal g g'));
  (* Strict decode: every single-byte corruption is refused or decodes
     to a graph that is not the original (never a silent mutation into
     an accepted different policy at the header level). *)
  Alcotest.(check bool) "truncation refused" true
    (Sfip.of_bytes (Bytes.sub wire 0 (Bytes.length wire - 1)) = None);
  let header_corrupt = Bytes.copy wire in
  Bytes.set header_corrupt 0 '\xff';
  Alcotest.(check bool) "bad magic refused" true (Sfip.of_bytes header_corrupt = None)

let test_trans_cache_policy_carried () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  Trans_cache.set_syscall_resolver cache ~n:8 sfip_resolve;
  let image = compile_link ~cfi:false (sfip_demo_program ()) in
  let g = Sfip.extract ~resolve:sfip_resolve ~n:8 image in
  Trans_cache.add cache ~name:"app" ~instrumented:false ~sfip:g image;
  (match Trans_cache.find_with_policy cache ~name:"app" with
  | Error e -> Alcotest.failf "should load: %s" (Trans_cache.describe_find_error e)
  | Ok (_, None) -> Alcotest.fail "graph lost by the cache"
  | Ok (_, Some g') -> Alcotest.(check bool) "carried graph equal" true (Sfip.equal g g'));
  match Trans_cache.policy cache ~name:"app" with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "policy accessor should yield the graph"

(* A signed blob whose graph does not match its code is refused by the
   verifier's Policy invariant — the OS cannot pair honest code with a
   permissive profile even if it controls the cache file. *)
let test_trans_cache_policy_mismatch () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  Trans_cache.set_syscall_resolver cache ~n:8 sfip_resolve;
  let image = compile_link ~cfi:false (sfip_demo_program ()) in
  let permissive = Sfip.create ~n:8 in
  for i = 0 to 7 do
    Sfip.allow_entry permissive i;
    for j = 0 to 7 do
      Sfip.allow permissive ~from:i ~to_:j
    done
  done;
  let signed = Trans_cache.sign cache ~instrumented:false ~sfip:permissive image in
  match Trans_cache.verify_and_load cache signed with
  | Error (Trans_cache.Rejected_by_verifier vs) ->
      Alcotest.(check bool) "a Policy violation" true
        (List.exists (fun v -> v.Image_verify.invariant = Image_verify.Policy) vs)
  | Error e -> Alcotest.failf "wrong refusal: %s" (Trans_cache.describe_find_error e)
  | Ok _ -> Alcotest.fail "mismatched policy must not load"

let test_trans_cache_policy_needs_resolver () =
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  let image = compile_link ~cfi:false (sfip_demo_program ()) in
  let g = Sfip.extract ~resolve:sfip_resolve ~n:8 image in
  Trans_cache.add cache ~name:"app" ~instrumented:false ~sfip:g image;
  match Trans_cache.find cache ~name:"app" with
  | Error (Trans_cache.Rejected_by_verifier vs) ->
      Alcotest.(check bool) "fails closed on Policy" true
        (List.exists (fun v -> v.Image_verify.invariant = Image_verify.Policy) vs)
  | _ -> Alcotest.fail "policy blob without a resolver must be refused"

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)

let test_pipeline_vg_mode () =
  let compiled = Pipeline.compile_kernel_code ~mode:Pipeline.Virtual_ghost (fptr_program ()) in
  Alcotest.(check bool) "validates" true (Cfi_pass.validate compiled.Pipeline.image = Ok ());
  Alcotest.(check bool) "bigger than native" true
    (Array.length compiled.Pipeline.image.Native.code
    > Array.length
        (Pipeline.compile_kernel_code ~mode:Pipeline.Native_build (fptr_program ()))
          .Pipeline.image.Native.code)

let test_pipeline_rejects_malformed () =
  let f : Ir.func =
    { name = "f"; params = []; blocks = [ { label = "entry"; instrs = []; term = Br "nope" } ] }
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Pipeline.compile_kernel_code { funcs = [ f ] });
       false
     with Pipeline.Rejected _ -> true)

let test_pipeline_application_mode () =
  let b = Builder.create () in
  Builder.func b "app" ~params:[];
  let p = Builder.call b "extern.mmap" [ Imm 4096L ] in
  Builder.ret b (Some p);
  let compiled = Pipeline.compile_application_code (Builder.program b) in
  (* Application code is not CFI-instrumented... *)
  Alcotest.(check bool) "no cfi" true
    (Cfi_pass.validate_uninstrumented compiled.Pipeline.image = Ok ());
  (* ...but does carry the Iago masking (more instructions than a bare
     call + ret would lower to). *)
  Alcotest.(check bool) "mask added" true
    (Array.length compiled.Pipeline.image.Native.code > 2)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vg_compiler"
    [
      ( "layout",
        [
          Alcotest.test_case "partitions" `Quick test_layout_partitions;
          Alcotest.test_case "escape bit" `Quick test_layout_escape_bit;
        ] );
      ( "sandbox",
        [
          Alcotest.test_case "masked_address semantics" `Quick test_masked_address_semantics;
          Alcotest.test_case "instruments all memory ops" `Quick
            test_sandbox_instruments_all_memory_ops;
          Alcotest.test_case "leaves non-memory alone" `Quick
            test_sandbox_leaves_non_memory_alone;
        ] );
      ( "sandbox-properties",
        qcheck
          [
            prop_masked_never_ghost_or_sva; prop_masked_preserves_safe;
            prop_ir_sequence_matches_reference;
          ] );
      ( "codegen-executor",
        [
          Alcotest.test_case "differential: sum" `Quick test_differential_sum;
          Alcotest.test_case "differential: collatz" `Quick test_differential_collatz;
          Alcotest.test_case "differential: function pointers" `Quick test_differential_fptr;
          Alcotest.test_case "differential: instrumented" `Quick
            test_differential_instrumented;
          Alcotest.test_case "io" `Quick test_executor_io;
          Alcotest.test_case "extern" `Quick test_executor_extern;
          Alcotest.test_case "fuel" `Quick test_executor_fuel;
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
        ] );
      ( "linker",
        [
          Alcotest.test_case "structure" `Quick test_linker_structure;
          Alcotest.test_case "dense register slots" `Quick
            test_linker_register_slots_dense;
          Alcotest.test_case "indirect call to non-entry names owner" `Quick
            test_indirect_call_to_nonentry_names_owner;
          Alcotest.test_case "checked-return cycles unchanged" `Quick
            test_checked_return_cycles_unchanged;
        ] );
      ( "cfi",
        [
          Alcotest.test_case "image validates" `Quick test_cfi_image_validates;
          Alcotest.test_case "native image clean" `Quick test_native_image_clean;
          Alcotest.test_case "catches unchecked ret" `Quick test_cfi_catches_unchecked_ret;
          Alcotest.test_case "legit indirect call works" `Quick test_cfi_indirect_call_works;
          Alcotest.test_case "blocks corrupted fptr" `Quick test_cfi_blocks_corrupted_fptr;
          Alcotest.test_case "blocks ROP-style return" `Quick test_cfi_blocks_rop_return;
          Alcotest.test_case "kernel target masking" `Quick test_cfi_kernel_masking;
        ] );
      ( "iago",
        Alcotest.test_case "mmap mask pass" `Quick test_mmap_mask_pass
        :: qcheck [ prop_mmap_mask_reference ] );
      ( "optimizer",
        [
          Alcotest.test_case "constant folding" `Quick test_opt_constant_folding;
          Alcotest.test_case "branch folding prunes" `Quick test_opt_branch_folding_prunes;
          Alcotest.test_case "dead code elimination" `Quick test_opt_dce;
          Alcotest.test_case "keeps effects" `Quick test_opt_keeps_effects;
          Alcotest.test_case "div-by-zero not folded" `Quick test_opt_no_div_by_zero_folding;
        ] );
      ( "trans-cache",
        [
          Alcotest.test_case "round-trip" `Quick test_trans_cache_roundtrip;
          Alcotest.test_case "tamper detected" `Quick test_trans_cache_tamper_detected;
          Alcotest.test_case "wrong key" `Quick test_trans_cache_wrong_key;
        ] );
      ( "sfip",
        [
          Alcotest.test_case "extraction with direct-call summaries" `Quick
            test_sfip_extract_direct_calls;
          Alcotest.test_case "wire roundtrip, strict decode" `Quick
            test_sfip_wire_roundtrip;
          Alcotest.test_case "trans-cache carries the graph" `Quick
            test_trans_cache_policy_carried;
          Alcotest.test_case "code/policy mismatch refused" `Quick
            test_trans_cache_policy_mismatch;
          Alcotest.test_case "no resolver fails closed" `Quick
            test_trans_cache_policy_needs_resolver;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "vg mode" `Quick test_pipeline_vg_mode;
          Alcotest.test_case "rejects malformed" `Quick test_pipeline_rejects_malformed;
          Alcotest.test_case "application mode" `Quick test_pipeline_application_mode;
        ] );
    ]
