(* The paper's security evaluation (section 7) as a test suite: every
   attack must succeed against the baseline system and fail under
   Virtual Ghost — with the victim surviving. *)

let check msg expected actual = Alcotest.(check bool) msg expected actual

(* ------------------------------------------------------------------ *)
(* Rootkit attack 1: direct read of victim memory                      *)

let test_direct_read_native () =
  let o = Rootkit.run_experiment ~mode:Sva.Native_build ~attack:Rootkit.Direct_read () in
  check "secret printed to system log" true o.Rootkit.secret_leaked_to_console;
  check "victim survived" true o.Rootkit.victim_survived

let test_direct_read_vg () =
  let o = Rootkit.run_experiment ~mode:Sva.Virtual_ghost ~attack:Rootkit.Direct_read () in
  check "secret NOT in system log" false o.Rootkit.secret_leaked_to_console;
  (* The paper: "the kernel simply reads unknown data out of its own
     address space" — the module runs on, the victim is unaffected. *)
  check "victim survived" true o.Rootkit.victim_survived

(* ------------------------------------------------------------------ *)
(* Rootkit attack 2: signal-handler code injection                     *)

let test_signal_inject_native () =
  let o = Rootkit.run_experiment ~mode:Sva.Native_build ~attack:Rootkit.Signal_inject () in
  check "secret written to exfil file" true o.Rootkit.secret_in_exfil_file

let test_signal_inject_vg () =
  let o = Rootkit.run_experiment ~mode:Sva.Virtual_ghost ~attack:Rootkit.Signal_inject () in
  check "exfil file empty" false o.Rootkit.secret_in_exfil_file;
  check "VM refused the dispatch" true o.Rootkit.vm_refusal_logged;
  check "victim continues unaffected" true o.Rootkit.victim_survived

(* ------------------------------------------------------------------ *)
(* Other vectors                                                       *)

let test_mmu_remap () =
  check "native succeeds" true (Other_attacks.mmu_remap_attack ~mode:Sva.Native_build);
  check "vg blocked" false (Other_attacks.mmu_remap_attack ~mode:Sva.Virtual_ghost)

let test_dma () =
  check "native succeeds" true (Other_attacks.dma_attack ~mode:Sva.Native_build);
  check "vg blocked" false (Other_attacks.dma_attack ~mode:Sva.Virtual_ghost)

let test_icontext_tamper () =
  check "native succeeds" true
    (Other_attacks.icontext_tamper_attack ~mode:Sva.Native_build);
  check "vg blocked" false (Other_attacks.icontext_tamper_attack ~mode:Sva.Virtual_ghost)

let test_iago_mmap () =
  (* Unmasked application on either kernel: corruptible. *)
  check "unmasked app corrupted" true
    (Other_attacks.iago_mmap_attack ~mode:Sva.Virtual_ghost ~ghosting:false ());
  (* Ghosting application (compiled with the masking pass): immune. *)
  check "masked app immune" false
    (Other_attacks.iago_mmap_attack ~mode:Sva.Virtual_ghost ~ghosting:true ())

let test_file_replay () =
  check "baseline accepts stale config" true
    (Other_attacks.file_replay_attack ~mode:Sva.Native_build);
  check "sealed store detects replay" false
    (Other_attacks.file_replay_attack ~mode:Sva.Virtual_ghost)

let test_swap_tamper () =
  check "native page plainly readable" true
    (Other_attacks.swap_tamper_attack ~mode:Sva.Native_build);
  check "vg detects tampering" false
    (Other_attacks.swap_tamper_attack ~mode:Sva.Virtual_ghost)

(* ------------------------------------------------------------------ *)
(* Security-event observability: every blocked attack must announce
   itself on the event stream under Virtual Ghost, and the same attack
   against the baseline must stay silent (nothing was blocked). *)

let record f =
  let recorder = Obs_recorder.create () in
  let result = Obs.with_sink Obs.default (Obs_recorder.sink recorder) f in
  (result, recorder)

let has_security recorder subsystem =
  Obs_recorder.count_matching recorder (function
    | Obs.Event.Security { subsystem = s; _ } -> s = subsystem
    | _ -> false)
  > 0

let no_security_events msg recorder =
  check msg true (Obs_recorder.security_events recorder = [])

let test_events_direct_read () =
  let _, native =
    record (fun () ->
        Rootkit.run_experiment ~mode:Sva.Native_build ~attack:Rootkit.Direct_read ())
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () ->
        Rootkit.run_experiment ~mode:Sva.Virtual_ghost ~attack:Rootkit.Direct_read ())
  in
  check "vg: sandbox fault reported" true (has_security vg "sandbox")

let test_events_signal_inject () =
  let _, native =
    record (fun () ->
        Rootkit.run_experiment ~mode:Sva.Native_build ~attack:Rootkit.Signal_inject ())
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () ->
        Rootkit.run_experiment ~mode:Sva.Virtual_ghost ~attack:Rootkit.Signal_inject ())
  in
  check "vg: dispatch refusal reported" true (has_security vg "sva.ipush")

let test_events_mmu_remap () =
  let _, native =
    record (fun () -> Other_attacks.mmu_remap_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () -> Other_attacks.mmu_remap_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: denied mapping reported" true
    (Obs_recorder.count_matching vg (function
       | Obs.Event.Mmu { verdict = Obs.Event.Denied _; _ } -> true
       | _ -> false)
    > 0)

let test_events_dma () =
  let _, native = record (fun () -> Other_attacks.dma_attack ~mode:Sva.Native_build) in
  no_security_events "native: silent" native;
  let _, vg = record (fun () -> Other_attacks.dma_attack ~mode:Sva.Virtual_ghost) in
  check "vg: blocked DMA reported" true (has_security vg "iommu")

let test_events_iago_mmap () =
  let _, unmasked =
    record (fun () ->
        Other_attacks.iago_mmap_attack ~mode:Sva.Virtual_ghost ~ghosting:false ())
  in
  check "unmasked app: no mask event" false (has_security unmasked "iago-mask");
  let _, masked =
    record (fun () ->
        Other_attacks.iago_mmap_attack ~mode:Sva.Virtual_ghost ~ghosting:true ())
  in
  check "masked app: defused pointer reported" true (has_security masked "iago-mask")

let test_smp_remap_race () =
  check "native succeeds" true
    (Other_attacks.smp_remap_race_attack ~mode:Sva.Native_build);
  check "vg blocked" false
    (Other_attacks.smp_remap_race_attack ~mode:Sva.Virtual_ghost)

let test_events_smp_remap_race () =
  let _, native =
    record (fun () -> Other_attacks.smp_remap_race_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () -> Other_attacks.smp_remap_race_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: cross-core remap denial reported" true (has_security vg "sva.mmu")

(* A ghost buffer pointer smuggled through a syscall-ring submission:
   the batched path must defuse it exactly like a direct call would. *)
let test_ring_ghost_buffer () =
  check "native leaks through the ring" true
    (Other_attacks.ring_ghost_buffer_attack ~mode:Sva.Native_build);
  check "vg defuses the ring entry" false
    (Other_attacks.ring_ghost_buffer_attack ~mode:Sva.Virtual_ghost)

let test_events_ring_ghost_buffer () =
  let leaked_native, native =
    record (fun () -> Other_attacks.ring_ghost_buffer_attack ~mode:Sva.Native_build)
  in
  check "native: secret leaked" true leaked_native;
  no_security_events "native: silent" native;
  let leaked_vg, vg =
    record (fun () -> Other_attacks.ring_ghost_buffer_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: no leak" false leaked_vg;
  check "vg: sandbox fault reported" true (has_security vg "sandbox")

(* ------------------------------------------------------------------ *)
(* Hostile eviction: the kernel's own swap machinery turned against
   the application.  Every forged blob must fail closed with exactly
   one Security{swap} event under Virtual Ghost, while the baseline
   swaps plaintext and notices nothing. *)

let count_swap recorder =
  Obs_recorder.count_matching recorder (function
    | Obs.Event.Security { subsystem = "swap"; _ } -> true
    | _ -> false)

let test_swap_replay () =
  check "native accepts the stale page" true
    (Other_attacks.swap_replay_attack ~mode:Sva.Native_build);
  check "vg refuses the stale version" false
    (Other_attacks.swap_replay_attack ~mode:Sva.Virtual_ghost)

let test_swap_substitution () =
  check "native hands over the victim's page" true
    (Other_attacks.swap_substitution_attack ~mode:Sva.Native_build);
  check "vg refuses the foreign blob" false
    (Other_attacks.swap_substitution_attack ~mode:Sva.Virtual_ghost)

let test_swap_thrash () =
  check "native blobs leak the plaintext" true
    (Other_attacks.swap_thrash_attack ~mode:Sva.Native_build);
  check "vg blobs leak nothing" false
    (Other_attacks.swap_thrash_attack ~mode:Sva.Virtual_ghost)

let test_events_swap_tamper () =
  let _, native =
    record (fun () -> Other_attacks.swap_tamper_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () -> Other_attacks.swap_tamper_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: exactly one swap refusal reported" true (count_swap vg = 1)

let test_events_swap_replay () =
  let _, native =
    record (fun () -> Other_attacks.swap_replay_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () -> Other_attacks.swap_replay_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: exactly one swap refusal reported" true (count_swap vg = 1)

let test_events_swap_substitution () =
  let _, native =
    record (fun () ->
        Other_attacks.swap_substitution_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let _, vg =
    record (fun () ->
        Other_attacks.swap_substitution_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: exactly one swap refusal reported" true (count_swap vg = 1)

let test_events_swap_thrash () =
  (* Thrashing is in-policy denial of service: every blob is genuine,
     so neither build reports anything — the defense here is that the
     blobs carry no signal, not that the VM refuses. *)
  let _, native =
    record (fun () -> Other_attacks.swap_thrash_attack ~mode:Sva.Native_build)
  in
  no_security_events "native: silent" native;
  let leaked, vg =
    record (fun () -> Other_attacks.swap_thrash_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: no leak" false leaked;
  check "vg: silent (nothing was refused)" true (count_swap vg = 0)

(* ------------------------------------------------------------------ *)
(* Syscall-flow integrity: out-of-policy sequences fail closed under
   Virtual Ghost (process killed, one Security{sfip} event), while the
   baseline — with no signed profiles — executes them. *)

let count_sfip recorder =
  Obs_recorder.count_matching recorder (function
    | Obs.Event.Security { subsystem = "sfip"; _ } -> true
    | _ -> false)

let test_sfip_sequence () =
  check "native exfiltrates" true
    (Other_attacks.sfip_sequence_attack ~mode:Sva.Native_build);
  check "vg kills the sequence" false
    (Other_attacks.sfip_sequence_attack ~mode:Sva.Virtual_ghost)

let test_sfip_ring_sequence () =
  check "native connects through the ring" true
    (Other_attacks.sfip_ring_sequence_attack ~mode:Sva.Native_build);
  check "vg refuses the whole batch" false
    (Other_attacks.sfip_ring_sequence_attack ~mode:Sva.Virtual_ghost)

let test_sfip_profile_swap () =
  check "baseline loads the forged profile" true
    (Other_attacks.sfip_profile_swap_attack ~mode:Sva.Native_build);
  check "vg refuses the tampered image" false
    (Other_attacks.sfip_profile_swap_attack ~mode:Sva.Virtual_ghost)

let test_events_sfip () =
  let _, native =
    record (fun () -> Other_attacks.sfip_sequence_attack ~mode:Sva.Native_build)
  in
  check "native: silent" true (count_sfip native = 0);
  let _, vg =
    record (fun () -> Other_attacks.sfip_sequence_attack ~mode:Sva.Virtual_ghost)
  in
  check "vg: exactly one sfip kill reported" true (count_sfip vg = 1)

let test_events_sfip_ring () =
  let _, vg =
    record (fun () ->
        Other_attacks.sfip_ring_sequence_attack ~mode:Sva.Virtual_ghost)
  in
  (* One violation, one event — the benign entries sharing the batch
     must not multiply the report. *)
  check "vg: exactly one sfip kill for the batch" true (count_sfip vg = 1)

(* ------------------------------------------------------------------ *)
(* Spectre-v1: the transient window leaks ghost memory past a sandbox
   that is architecturally sound; both mitigations close the channel. *)

let test_spectre_leaks_unmitigated () =
  let o = Spectre.run_experiment ~spec_depth:12 () in
  check "full secret recovered through the cache channel" true
    o.Spectre.success;
  check "transient loads happened" true (o.Spectre.transient_loads > 0)

let test_spectre_depth_threshold () =
  (* The transient stream from the mispredicted select to the probe
     access is exactly 8 macro-ops: one short of that, nothing. *)
  let at d = Spectre.run_experiment ~spec_depth:d () in
  check "depth 8 leaks" true (at 8).Spectre.success;
  check "depth 7 recovers nothing" true ((at 7).Spectre.bytes_recovered = 0)

let test_spectre_depth0_noop () =
  let o = Spectre.run_experiment ~spec_depth:0 () in
  check "no bytes recovered" true (o.Spectre.bytes_recovered = 0);
  check "no windows opened" true (o.Spectre.windows = 0);
  check "no transient loads" true (o.Spectre.transient_loads = 0)

let test_spectre_fence_mitigation () =
  let o =
    Spectre.run_experiment ~spec_depth:12
      ~mitigation:Vg_compiler.Mitigation.Fence ()
  in
  check "fence: nothing recovered" true (o.Spectre.bytes_recovered = 0);
  (* Windows still open at the selects; the lfence squashes each one
     before the secret load issues. *)
  check "fence: no transient load reaches memory" true
    (o.Spectre.transient_loads = 0)

let test_spectre_safe_mask_mitigation () =
  let o =
    Spectre.run_experiment ~spec_depth:12
      ~mitigation:Vg_compiler.Mitigation.Safe_mask ()
  in
  check "safe-mask: nothing recovered" true (o.Spectre.bytes_recovered = 0);
  (* The branchless mask has no select to mispredict: the gadget opens
     no window at all. *)
  check "safe-mask: no windows" true (o.Spectre.windows = 0)

let test_spectre_engine_parity () =
  let run engine = Spectre.run_experiment ~engine ~spec_depth:12 () in
  let o_slots = run Vg_compiler.Exec_engine.Slots in
  let o_comp = run Vg_compiler.Exec_engine.Compiled in
  check "same outcome under both engines" true (o_slots = o_comp)

(* ------------------------------------------------------------------ *)
(* Execution-engine parity: the closure-compiled engine must be
   indistinguishable from the slot executor on the full kernel attack
   experiments — same outcomes, and the same event stream down to the
   cycle timestamps (byte-identical simulated time). *)

let test_engine_parity_rootkit () =
  List.iter
    (fun (attack, mode) ->
      let run engine =
        record (fun () -> Rootkit.run_experiment ~engine ~mode ~attack ())
      in
      let o_slots, r_slots = run Vg_compiler.Exec_engine.Slots in
      let o_comp, r_comp = run Vg_compiler.Exec_engine.Compiled in
      check "same outcome" true (o_slots = o_comp);
      check "same event stream (cycles included)" true
        (Obs_recorder.events r_slots = Obs_recorder.events r_comp))
    [
      (Rootkit.Direct_read, Sva.Native_build);
      (Rootkit.Direct_read, Sva.Virtual_ghost);
      (Rootkit.Signal_inject, Sva.Native_build);
      (Rootkit.Signal_inject, Sva.Virtual_ghost);
    ]

let test_engine_parity_iago () =
  List.iter
    (fun ghosting ->
      let run engine =
        record (fun () ->
            Other_attacks.iago_mmap_attack ~engine ~mode:Sva.Virtual_ghost
              ~ghosting ())
      in
      let c_slots, r_slots = run Vg_compiler.Exec_engine.Slots in
      let c_comp, r_comp = run Vg_compiler.Exec_engine.Compiled in
      check "same corruption verdict" true (c_slots = c_comp);
      check "same event stream (cycles included)" true
        (Obs_recorder.events r_slots = Obs_recorder.events r_comp))
    [ false; true ]

let () =
  Alcotest.run "vg_attacks"
    [
      ( "rootkit-direct-read",
        [
          Alcotest.test_case "succeeds on native" `Slow test_direct_read_native;
          Alcotest.test_case "fails under virtual ghost" `Slow test_direct_read_vg;
        ] );
      ( "rootkit-signal-inject",
        [
          Alcotest.test_case "succeeds on native" `Slow test_signal_inject_native;
          Alcotest.test_case "fails under virtual ghost" `Slow test_signal_inject_vg;
        ] );
      ( "other-vectors",
        [
          Alcotest.test_case "mmu remap" `Quick test_mmu_remap;
          Alcotest.test_case "dma" `Quick test_dma;
          Alcotest.test_case "interrupt-context tamper" `Quick test_icontext_tamper;
          Alcotest.test_case "iago mmap" `Quick test_iago_mmap;
          Alcotest.test_case "swap tamper" `Quick test_swap_tamper;
          Alcotest.test_case "smp remap race" `Quick test_smp_remap_race;
          Alcotest.test_case "ring ghost buffer" `Quick test_ring_ghost_buffer;
          Alcotest.test_case "file replay" `Slow test_file_replay;
        ] );
      ( "security-events",
        [
          Alcotest.test_case "direct read" `Slow test_events_direct_read;
          Alcotest.test_case "signal inject" `Slow test_events_signal_inject;
          Alcotest.test_case "mmu remap" `Quick test_events_mmu_remap;
          Alcotest.test_case "dma" `Quick test_events_dma;
          Alcotest.test_case "smp remap race" `Quick test_events_smp_remap_race;
          Alcotest.test_case "iago mmap" `Quick test_events_iago_mmap;
          Alcotest.test_case "ring ghost buffer" `Quick
            test_events_ring_ghost_buffer;
        ] );
      ( "spectre",
        [
          Alcotest.test_case "leaks unmitigated" `Slow
            test_spectre_leaks_unmitigated;
          Alcotest.test_case "depth threshold at 8" `Slow
            test_spectre_depth_threshold;
          Alcotest.test_case "no-op at depth 0" `Slow test_spectre_depth0_noop;
          Alcotest.test_case "fence closes the channel" `Slow
            test_spectre_fence_mitigation;
          Alcotest.test_case "safe-mask closes the channel" `Slow
            test_spectre_safe_mask_mitigation;
          Alcotest.test_case "engine parity" `Slow test_spectre_engine_parity;
        ] );
      ( "hostile-eviction",
        [
          Alcotest.test_case "sealed-blob replay" `Quick test_swap_replay;
          Alcotest.test_case "cross-process substitution" `Quick
            test_swap_substitution;
          Alcotest.test_case "thrash-bomb oracle" `Quick test_swap_thrash;
          Alcotest.test_case "tamper events" `Quick test_events_swap_tamper;
          Alcotest.test_case "replay events" `Quick test_events_swap_replay;
          Alcotest.test_case "substitution events" `Quick
            test_events_swap_substitution;
          Alcotest.test_case "thrash events" `Quick test_events_swap_thrash;
        ] );
      ( "sfip",
        [
          Alcotest.test_case "out-of-policy sequence" `Quick test_sfip_sequence;
          Alcotest.test_case "intra-batch sequence" `Quick
            test_sfip_ring_sequence;
          Alcotest.test_case "profile swap" `Quick test_sfip_profile_swap;
          Alcotest.test_case "sequence events" `Quick test_events_sfip;
          Alcotest.test_case "ring events" `Quick test_events_sfip_ring;
        ] );
      ( "engine-parity",
        [
          Alcotest.test_case "rootkit, slots vs compiled" `Slow
            test_engine_parity_rootkit;
          Alcotest.test_case "iago mmap, slots vs compiled" `Quick
            test_engine_parity_iago;
        ] );
    ]
