(* The load-time image verifier, attacked and trusted.

   Each invariant class gets a dedicated "evil pass": a deliberately
   miscompiled or post-link-mutated image that the verifier must reject
   with the right invariant, function and instruction location.  The
   flip side is the no-false-positive property: everything the real
   pipeline emits — at every optimisation level, over random programs —
   must prove clean. *)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

(* One function exercising all four memory-operand shapes: load, store,
   atomic, and both pointers of memcpy. *)
let mem_mix_program () =
  let b = Builder.create () in
  Builder.func b "mem_mix" ~params:[ "p"; "q" ];
  let v = Builder.load b (Reg "p") in
  Builder.store b ~src:v ~addr:(Reg "q") ();
  let _ = Builder.atomic_rmw b Add ~addr:(Reg "p") (Imm 1L) in
  Builder.memcpy b ~dst:(Reg "q") ~src:(Reg "p") ~len:(Imm 16L);
  Builder.ret b (Some v);
  Builder.program b

let rec_sum_program () =
  let b = Builder.create () in
  Builder.func b "sum" ~params:[ "n" ];
  let z = Builder.cmp b Eq (Reg "n") (Imm 0L) in
  Builder.cbr b z "base" "rec";
  Builder.block b "base";
  Builder.ret b (Some (Imm 0L));
  Builder.block b "rec";
  let m = Builder.bin b Sub (Reg "n") (Imm 1L) in
  let s = Builder.call b "sum" [ m ] in
  let r = Builder.bin b Add (Reg "n") s in
  Builder.ret b (Some r);
  Builder.program b

(* Two functions laid out back to back: forged direct jumps and
   boundary fall-throughs need a neighbour to cross into. *)
let two_func_program () =
  let b = Builder.create () in
  Builder.func b "leaf" ~params:[ "p" ];
  let v = Builder.load b (Reg "p") in
  Builder.ret b (Some v);
  Builder.func b "main" ~params:[ "p" ];
  let r = Builder.call b "leaf" [ Reg "p" ] in
  Builder.ret b (Some r);
  Builder.program b

(* A store stashed in a block no path reaches. *)
let dead_store_program () =
  let b = Builder.create () in
  Builder.func b "dead" ~params:[ "p" ];
  Builder.ret b (Some (Imm 0L));
  Builder.block b "limbo";
  Builder.store b ~src:(Imm 1L) ~addr:(Reg "p") ();
  Builder.ret b (Some (Imm 0L));
  Builder.program b

let compile_vg ?(optimize = false) program =
  (Pipeline.compile_kernel_code ~mode:Pipeline.Virtual_ghost ~optimize program)
    .Pipeline.linked

(* ------------------------------------------------------------------ *)
(* The evil sandbox pass: instrument every memory operation except the
   [skip]-th one (in program order), then lower with CFI like the real
   pipeline.  A compiler bug that drops exactly one mask.              *)

let evil_instrument ~skip (program : Ir.program) : Ir.program =
  let count = ref (-1) in
  let rewrite (i : Ir.instr) =
    match i with
    | Load _ | Store _ | Atomic_rmw _ | Memcpy _ ->
        incr count;
        if !count = skip then [ i ] else Sandbox_pass.instrument_instr i
    | _ -> [ i ]
  in
  let block (blk : Ir.block) =
    { blk with instrs = List.concat_map rewrite blk.instrs }
  in
  let func (f : Ir.func) = { f with blocks = List.map block f.blocks } in
  { Ir.funcs = List.map func program.Ir.funcs }

let link_evil ~skip program =
  Linker.link (Codegen.compile ~cfi:true (evil_instrument ~skip program))

let is_mem_instr : Linker.instr -> bool = function
  | LLoad _ | LStore _ | LAtomic _ | LMemcpy _ -> true
  | _ -> false

(* Dropping the mask on memory op [skip] must produce only Mask
   violations, all located at one slot that really holds a memory
   instruction of [mem_mix]. *)
let test_evil_mask_dropped () =
  (* ops 0..3: load, store, atomic, memcpy (the memcpy has two operands
     behind one instruction, hence two violations at one slot). *)
  List.iter
    (fun skip ->
      let image = link_evil ~skip (mem_mix_program ()) in
      match Image_verify.check image with
      | Ok () -> Alcotest.failf "op %d: dropped mask not caught" skip
      | Error vs ->
          let expected = if skip = 3 then 2 else 1 in
          Alcotest.(check int)
            (Printf.sprintf "op %d: violation count" skip)
            expected (List.length vs);
          List.iter
            (fun (v : Image_verify.violation) ->
              Alcotest.(check bool)
                (Printf.sprintf "op %d: mask invariant" skip)
                true
                (v.invariant = Image_verify.Mask);
              Alcotest.(check string)
                (Printf.sprintf "op %d: right function" skip)
                "mem_mix" v.func;
              Alcotest.(check bool)
                (Printf.sprintf "op %d: slot %d holds the memory op" skip v.slot)
                true
                (is_mem_instr image.Linker.lcode.(v.slot)))
            vs)
    [ 0; 1; 2; 3 ];
  (* And the honest pass over the same program proves clean. *)
  Alcotest.(check bool) "honest image proves" true
    (Image_verify.check (compile_vg (mem_mix_program ())) = Ok ())

(* ------------------------------------------------------------------ *)
(* Post-link mutations: a hostile cache rewriting one slot             *)

let with_mutable_arrays (image : Linker.image) =
  {
    image with
    Linker.lcode = Array.copy image.Linker.lcode;
    Linker.label_of = Array.copy image.Linker.label_of;
    Linker.ret_label_of = Array.copy image.Linker.ret_label_of;
  }

let find_slot image p =
  let found = ref (-1) in
  Array.iteri
    (fun i instr -> if !found < 0 && p instr then found := i)
    image.Linker.lcode;
  if !found < 0 then Alcotest.fail "fixture: expected instruction not found";
  !found

let fid_of image name =
  match Linker.find_func image name with
  | Some i -> i
  | None -> Alcotest.failf "fixture: no function %s" name

let find_slot_in image fid p =
  let found = ref (-1) in
  Array.iteri
    (fun i instr ->
      if !found < 0 && image.Linker.owner_of.(i) = fid && p instr then found := i)
    image.Linker.lcode;
  if !found < 0 then Alcotest.fail "fixture: expected instruction not found";
  !found

let test_evil_unchecked_return () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot =
    find_slot image (function Linker.LRetChecked _ -> true | _ -> false)
  in
  (match image.Linker.lcode.(slot) with
  | Linker.LRetChecked { value; _ } -> image.Linker.lcode.(slot) <- Linker.LRet value
  | _ -> assert false);
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "unchecked return not caught"
  | Error [ v ] ->
      Alcotest.(check bool) "cfi-exit invariant" true
        (v.invariant = Image_verify.Cfi_exit);
      Alcotest.(check string) "right function" "sum" v.func;
      Alcotest.(check int) "right slot" slot v.slot
  | Error vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_evil_entry_label_removed () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let fid =
    match Linker.find_func image "sum" with Some i -> i | None -> Alcotest.fail "sum?"
  in
  let entry = image.Linker.funcs.(fid).Linker.f_entry in
  image.Linker.lcode.(entry) <- Linker.LBin { dst = 0; op = Ir.Or; a = Imm 0L; b = Imm 0L };
  image.Linker.label_of.(entry) <- Linker.no_label;
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "missing entry label not caught"
  | Error vs ->
      Alcotest.(check bool) "cfi-label violation at the entry slot" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Cfi_label && v.func = "sum" && v.slot = entry)
           vs)

let test_evil_stray_label () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot =
    find_slot image (function
      | Linker.LBin { op = Ir.Sub; _ } -> true
      | _ -> false)
  in
  image.Linker.lcode.(slot) <- Linker.LCfiLabel Cfi_pass.shared_label;
  image.Linker.label_of.(slot) <- Int32.to_int Cfi_pass.shared_label;
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "stray label not caught"
  | Error vs ->
      Alcotest.(check bool) "stray cfi-label flagged at its slot" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Cfi_label && v.func = "sum" && v.slot = slot)
           vs)

let test_evil_label_metadata_mismatch () =
  (* The executor trusts [label_of] without reading the code: forging
     the metadata alone must already be fatal. *)
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot =
    find_slot image (function
      | Linker.LBin { op = Ir.Sub; _ } -> true
      | _ -> false)
  in
  image.Linker.label_of.(slot) <- Int32.to_int Cfi_pass.shared_label;
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "forged label_of not caught"
  | Error vs ->
      Alcotest.(check bool) "metadata mismatch flagged at its slot" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Cfi_label && v.slot = slot)
           vs)

let test_evil_privileged_op () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot =
    find_slot image (function
      | Linker.LBin { op = Ir.Sub; _ } -> true
      | _ -> false)
  in
  image.Linker.lcode.(slot) <- Linker.LIoWrite { port = Imm 0x3f8L; src = Imm 0L };
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "raw port write not caught"
  | Error [ v ] ->
      Alcotest.(check bool) "privileged invariant" true
        (v.invariant = Image_verify.Privileged);
      Alcotest.(check string) "right function" "sum" v.func;
      Alcotest.(check int) "right slot" slot v.slot
  | Error vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_evil_unvetted_extern () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot =
    find_slot image (function
      | Linker.LBin { op = Ir.Sub; _ } -> true
      | _ -> false)
  in
  image.Linker.lcode.(slot) <-
    Linker.LCallExtern { dst = -1; name = "host.escape"; args = [||] };
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "unvetted extern call not caught"
  | Error vs ->
      Alcotest.(check bool) "privileged violation at its slot" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Privileged && v.slot = slot)
           vs)

(* The executor runs [pc := target] on direct branches without a frame
   switch: a jump from one function into another would execute the
   target's code against the jumper's registers.  The linker refuses to
   emit that, but a forged cached image never relinks. *)
let test_evil_cross_function_jump () =
  let image = with_mutable_arrays (compile_vg (two_func_program ())) in
  let leaf = fid_of image "leaf" and main = fid_of image "main" in
  let slot =
    find_slot_in image main (function Linker.LRetChecked _ -> true | _ -> false)
  in
  image.Linker.lcode.(slot) <-
    Linker.LJmp (image.Linker.funcs.(leaf).Linker.f_entry + 1);
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "cross-function jump not caught"
  | Error [ v ] ->
      Alcotest.(check bool) "control invariant" true
        (v.invariant = Image_verify.Control);
      Alcotest.(check string) "right function" "main" v.func;
      Alcotest.(check int) "right slot" slot v.slot
  | Error vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_evil_jump_outside_image () =
  let image = with_mutable_arrays (compile_vg (rec_sum_program ())) in
  let slot = find_slot image (function Linker.LJmp _ -> true | _ -> false) in
  image.Linker.lcode.(slot) <- Linker.LJmp (Array.length image.Linker.lcode + 7);
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "out-of-bounds jump not caught"
  | Error [ v ] ->
      Alcotest.(check bool) "control invariant" true
        (v.invariant = Image_verify.Control);
      Alcotest.(check int) "right slot" slot v.slot
  | Error vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_evil_boundary_fallthrough () =
  (* An LJz at a function's last slot: taken it stays inside, not taken
     it falls straight through into the next function's entry. *)
  let image = with_mutable_arrays (compile_vg (two_func_program ())) in
  let leaf = fid_of image "leaf" in
  let slot =
    find_slot_in image leaf (function Linker.LRetChecked _ -> true | _ -> false)
  in
  image.Linker.lcode.(slot) <-
    Linker.LJz { cond = Imm 0L; target = image.Linker.funcs.(leaf).Linker.f_entry };
  match Image_verify.check image with
  | Ok () -> Alcotest.fail "boundary fall-through not caught"
  | Error [ v ] ->
      Alcotest.(check bool) "control invariant" true
        (v.invariant = Image_verify.Control);
      Alcotest.(check string) "right function" "leaf" v.func;
      Alcotest.(check int) "right slot" slot v.slot
  | Error vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_evil_dead_block_unmasked_store () =
  (* The must-dataflow gives unreachable blocks the empty fact set, not
     top: an unmasked store hidden in dead code must still be flagged. *)
  let image = link_evil ~skip:0 (dead_store_program ()) in
  (match Image_verify.check image with
  | Ok () -> Alcotest.fail "unmasked store in dead block not caught"
  | Error vs ->
      Alcotest.(check bool) "mask violation at a store slot in 'dead'" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Mask
             && v.func = "dead"
             && is_mem_instr image.Linker.lcode.(v.slot))
           vs));
  (* The honestly instrumented dead block proves clean: its mask window
     travels with it, no reachable facts needed. *)
  Alcotest.(check bool) "honest dead block proves" true
    (Image_verify.check (compile_vg (dead_store_program ())) = Ok ())

(* ------------------------------------------------------------------ *)
(* The Spec invariant: speculation-hardened images                     *)

let compile_mitigated mitigation program =
  (Pipeline.compile_kernel_code ~mode:Pipeline.Virtual_ghost ~mitigation program)
    .Pipeline.linked

let spec_violations = function
  | Ok () -> []
  | Error vs ->
      List.filter
        (fun (v : Image_verify.violation) -> v.invariant = Image_verify.Spec)
        vs

let test_spec_fence_missing () =
  (* An image compiled without the fence pass carries classic mask
     windows and no lfences: checked as a [Fence] image, every memory
     operand must be flagged Spec (and nothing else fails — the
     architectural mask is still proven). *)
  let unfenced = compile_mitigated Mitigation.Off (mem_mix_program ()) in
  (match Image_verify.check ~mitigation:Mitigation.Fence unfenced with
  | Ok () -> Alcotest.fail "unfenced image accepted as fence-hardened"
  | Error vs ->
      (* load + store + atomic + memcpy (one fence guards both
         pointers) = 4 unfenced accesses *)
      Alcotest.(check int) "one Spec violation per unfenced access" 4
        (List.length (spec_violations (Error vs)));
      Alcotest.(check int) "nothing but Spec violations" (List.length vs)
        (List.length (spec_violations (Error vs))));
  (* The honestly fenced pipeline output proves clean under the same
     demand, and still proves the plain invariants under [Off]. *)
  let fenced = compile_mitigated Mitigation.Fence (mem_mix_program ()) in
  Alcotest.(check bool) "fenced image proves under fence" true
    (Image_verify.check ~mitigation:Mitigation.Fence fenced = Ok ());
  Alcotest.(check bool) "fenced image proves under off" true
    (Image_verify.check fenced = Ok ())

let test_spec_predicated_window_rejected () =
  (* Safe-mask demands the branchless nine-instruction window: the
     classic predicated window proves the architectural mask but is
     exactly the Spectre-v1 gadget, so it must be a Spec violation. *)
  let predicated = compile_mitigated Mitigation.Off (mem_mix_program ()) in
  (match Image_verify.check ~mitigation:Mitigation.Safe_mask predicated with
  | Ok () -> Alcotest.fail "predicated windows accepted as safe-mask"
  | Error vs ->
      Alcotest.(check bool) "Spec violations reported" true
        (spec_violations (Error vs) <> []));
  let branchless = compile_mitigated Mitigation.Safe_mask (mem_mix_program ()) in
  Alcotest.(check bool) "branchless image proves under safe-mask" true
    (Image_verify.check ~mitigation:Mitigation.Safe_mask branchless = Ok ());
  (* Either window form grants the Mask fact under any mitigation. *)
  Alcotest.(check bool) "branchless image proves under off" true
    (Image_verify.check branchless = Ok ())

(* ------------------------------------------------------------------ *)
(* The verifying cache path                                            *)

let test_cache_rejects_malformed_signed_image () =
  (* Correctly signed, yet de-instrumented: the HMAC passes, the
     verifier must still refuse — with the structured reason, not just
     a signature failure. *)
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  let evil = link_evil ~skip:1 (mem_mix_program ()) in
  Trans_cache.add cache ~name:"evil" ~instrumented:true evil;
  (match Trans_cache.find cache ~name:"evil" with
  | Error (Trans_cache.Rejected_by_verifier vs) ->
      Alcotest.(check bool) "mask violation reported" true
        (List.exists
           (fun (v : Image_verify.violation) -> v.invariant = Image_verify.Mask)
           vs)
  | Error e -> Alcotest.failf "wrong error: %s" (Trans_cache.describe_find_error e)
  | Ok _ -> Alcotest.fail "signed-but-malformed image accepted");
  (* The honest instrumented image round-trips through the same path. *)
  let honest = compile_vg (mem_mix_program ()) in
  Trans_cache.add cache ~name:"honest" ~instrumented:true honest;
  (match Trans_cache.find cache ~name:"honest" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "honest image refused: %s" (Trans_cache.describe_find_error e));
  (* And byte tampering is still a signature failure, checked first. *)
  Trans_cache.tamper cache ~name:"honest";
  Alcotest.(check bool) "tamper is a signature error" true
    (Trans_cache.find cache ~name:"honest" = Error Trans_cache.Bad_signature)

let test_cache_rejects_mitigation_mismatch () =
  (* A kernel booted with safe-mask must refuse an honestly signed
     translation compiled for another speculation configuration: the
     blob's recorded mitigation is part of what the verifier re-proves,
     not advisory metadata. *)
  let cache = Trans_cache.create ~key:(Bytes.of_string "vm-secret") in
  Trans_cache.set_mitigation cache Mitigation.Safe_mask;
  let stale = compile_mitigated Mitigation.Off (mem_mix_program ()) in
  Trans_cache.add cache ~name:"stale" ~instrumented:true
    ~mitigation:Mitigation.Off stale;
  (match Trans_cache.find cache ~name:"stale" with
  | Error (Trans_cache.Rejected_by_verifier vs) ->
      Alcotest.(check bool) "refused with a Spec violation" true
        (List.exists
           (fun (v : Image_verify.violation) ->
             v.invariant = Image_verify.Spec)
           vs)
  | Error e -> Alcotest.failf "wrong error: %s" (Trans_cache.describe_find_error e)
  | Ok _ -> Alcotest.fail "off-compiled blob accepted by safe-mask kernel");
  (* The matching translation round-trips. *)
  let hardened = compile_mitigated Mitigation.Safe_mask (mem_mix_program ()) in
  Trans_cache.add cache ~name:"hardened" ~instrumented:true
    ~mitigation:Mitigation.Safe_mask hardened;
  match Trans_cache.find cache ~name:"hardened" with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "matching blob refused: %s" (Trans_cache.describe_find_error e)

(* ------------------------------------------------------------------ *)
(* No false positives                                                  *)

let test_fixtures_prove_clean () =
  List.iter
    (fun (name, program) ->
      List.iter
        (fun optimize ->
          match Image_verify.check (compile_vg ~optimize program) with
          | Ok () -> ()
          | Error (v :: _) ->
              Alcotest.failf "%s (optimize=%b): %s" name optimize
                (Format.asprintf "%a" Image_verify.pp_violation v)
          | Error [] -> assert false)
        [ false; true ])
    [
      ("mem_mix", mem_mix_program ());
      ("rec_sum", rec_sum_program ());
      ("two_func", two_func_program ());
      ("dead_store", dead_store_program ());
      ("kernel_image", Vg_kernel.Kernel_image.program ());
    ]

let test_report_shape () =
  let r = Image_verify.report (compile_vg (mem_mix_program ())) in
  Alcotest.(check bool) "image ok" true r.Image_verify.image_ok;
  match r.Image_verify.per_func with
  | [ fr ] ->
      Alcotest.(check string) "function name" "mem_mix" fr.Image_verify.fr_name;
      (* load + store + atomic + memcpy dst + memcpy src *)
      Alcotest.(check int) "proven memory operands" 5 fr.Image_verify.fr_mem_ops;
      Alcotest.(check bool) "has checked exits" true (fr.Image_verify.fr_cfi_exits >= 1);
      Alcotest.(check (list string)) "no violations" []
        (List.map (fun (v : Image_verify.violation) -> v.message) fr.Image_verify.fr_violations)
  | frs -> Alcotest.failf "expected one function report, got %d" (List.length frs)

let prop_pipeline_always_verifies =
  QCheck2.Test.make
    ~name:"real pipeline output verifies cleanly (all opt levels)" ~count:300
    QCheck2.Gen.(pair (int_bound 1_000_000) bool)
    (fun (seed, optimize) ->
      let program = Vg_testgen.Testgen.gen_program seed in
      match Verify.check program with
      | Error _ -> false (* the generator must produce well-formed IR *)
      | Ok () ->
          let linked = compile_vg ~optimize program in
          Image_verify.check linked = Ok ())

let () =
  Alcotest.run "vg_image_verify"
    [
      ( "evil-pass",
        [
          Alcotest.test_case "dropped mask caught per memory op" `Quick
            test_evil_mask_dropped;
          Alcotest.test_case "unchecked return caught" `Quick test_evil_unchecked_return;
          Alcotest.test_case "missing entry label caught" `Quick
            test_evil_entry_label_removed;
          Alcotest.test_case "stray label caught" `Quick test_evil_stray_label;
          Alcotest.test_case "forged label metadata caught" `Quick
            test_evil_label_metadata_mismatch;
          Alcotest.test_case "raw port write caught" `Quick test_evil_privileged_op;
          Alcotest.test_case "unvetted extern call caught" `Quick
            test_evil_unvetted_extern;
          Alcotest.test_case "cross-function jump caught" `Quick
            test_evil_cross_function_jump;
          Alcotest.test_case "out-of-bounds jump caught" `Quick
            test_evil_jump_outside_image;
          Alcotest.test_case "boundary fall-through caught" `Quick
            test_evil_boundary_fallthrough;
          Alcotest.test_case "unmasked store in dead block caught" `Quick
            test_evil_dead_block_unmasked_store;
        ] );
      ( "spec-invariant",
        [
          Alcotest.test_case "missing lfence caught per access" `Quick
            test_spec_fence_missing;
          Alcotest.test_case "predicated window refused under safe-mask" `Quick
            test_spec_predicated_window_rejected;
        ] );
      ( "cache",
        [
          Alcotest.test_case "signed-but-malformed image refused" `Quick
            test_cache_rejects_malformed_signed_image;
          Alcotest.test_case "mitigation mismatch refused" `Quick
            test_cache_rejects_mitigation_mismatch;
        ] );
      ( "no-false-positives",
        [
          Alcotest.test_case "fixtures prove clean" `Quick test_fixtures_prove_clean;
          Alcotest.test_case "report shape" `Quick test_report_shape;
          QCheck_alcotest.to_alcotest prop_pipeline_always_verifies;
        ] );
    ]
