(* Tests for the userland runtime (ghost malloc, wrapper library,
   signal wrappers) and the application suite (OpenSSH programs,
   thttpd, Postmark, LMBench drivers). *)

let boot ?(mode = Sva.Virtual_ghost) ?(seed = "apps") () =
  Node.kernel
    (Node.boot
       Node_config.(
         default |> with_phys_frames 16384 |> with_disk_sectors 32768
         |> with_seed seed |> with_mode mode))

let expect_ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)

let test_launch_and_memory () =
  let k = boot () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let va = Runtime.ualloc ctx 64 in
      Runtime.poke ctx va (Bytes.of_string "hello user memory");
      Alcotest.(check string) "round trip" "hello user memory"
        (Bytes.to_string (Runtime.peek ctx va 17)))

let test_ghost_heap_placement () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let va = Runtime.galloc ctx 64 in
      Alcotest.(check bool) "in ghost partition" true (Layout.in_ghost va);
      Runtime.poke ctx va (Bytes.of_string "ghostly");
      Alcotest.(check string) "usable" "ghostly" (Bytes.to_string (Runtime.peek ctx va 7)));
  Runtime.launch k ~ghosting:false (fun ctx ->
      let va = Runtime.galloc ctx 64 in
      Alcotest.(check bool) "traditional heap" false (Layout.in_ghost va))

let test_ghost_heap_grows () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      (* Allocate far beyond the initial growth chunk. *)
      let blocks = List.init 40 (fun _ -> Runtime.galloc ctx 8192) in
      List.iteri
        (fun i va -> Runtime.poke ctx va (Bytes.make 16 (Char.chr (65 + (i mod 26)))))
        blocks;
      List.iteri
        (fun i va ->
          Alcotest.(check char) "chunk intact" (Char.chr (65 + (i mod 26)))
            (Bytes.get (Runtime.peek ctx va 1) 0))
        blocks)

let test_wrapper_ghost_file_io () =
  (* A ghosting app on a VG kernel: reads and writes with ghost
     buffers must work through the bounce buffer. *)
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let fd = expect_ok "open" (Runtime.sys_open ctx "/gf" Syscalls.creat_trunc) in
      let src = Runtime.galloc ctx 64 in
      Alcotest.(check bool) "really ghost" true (Layout.in_ghost src);
      Runtime.poke ctx src (Bytes.of_string "secret-but-shareable-data");
      Alcotest.(check int) "write" 25 (expect_ok "write" (Runtime.sys_write ctx ~fd ~src ~len:25));
      ignore (expect_ok "seek" (Syscalls.lseek ctx.Runtime.kernel ctx.Runtime.proc ~fd ~pos:0));
      let dst = Runtime.galloc ctx 64 in
      Alcotest.(check int) "read" 25 (expect_ok "read" (Runtime.sys_read ctx ~fd ~dst ~len:25));
      Alcotest.(check string) "content" "secret-but-shareable-data"
        (Bytes.to_string (Runtime.peek ctx dst 25)))

let test_raw_ghost_pointer_loses_data_under_vg () =
  (* The same operation *without* the wrapper: the kernel writes
     through the masked pointer and the data never arrives.  This is
     why the wrapper library exists. *)
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let fd = expect_ok "open" (Runtime.sys_open ctx "/rawg" Syscalls.creat_trunc) in
      let src = Runtime.galloc ctx 64 in
      Runtime.poke ctx src (Bytes.of_string "will-not-arrive!");
      (* Raw syscall, ghost buffer: the kernel reads zeros instead. *)
      ignore (expect_ok "write" (Syscalls.write ctx.Runtime.kernel ctx.Runtime.proc ~fd ~buf:src ~len:16));
      ignore (expect_ok "seek" (Syscalls.lseek ctx.Runtime.kernel ctx.Runtime.proc ~fd ~pos:0));
      let dst = Runtime.ualloc ctx 64 in
      ignore (expect_ok "read" (Syscalls.read ctx.Runtime.kernel ctx.Runtime.proc ~fd ~buf:dst ~len:16));
      Alcotest.(check bool) "data did not cross" true
        (Bytes.to_string (Runtime.peek ctx dst 16) <> "will-not-arrive!"))

let test_signal_wrapper_end_to_end () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let hits = ref [] in
      ignore (expect_ok "signal" (Runtime.sys_signal ctx ~signum:14 (fun _ arg -> hits := arg :: !hits)));
      ignore (expect_ok "kill" (Runtime.sys_kill ctx ~pid:ctx.Runtime.proc.Proc.pid ~signum:14));
      Runtime.check_signals ctx;
      Alcotest.(check (list int64)) "handler ran with signum" [ 14L ] !hits)

let test_fork_in_child () =
  let k = boot () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let va = Runtime.ualloc ctx 32 in
      Runtime.poke ctx va (Bytes.of_string "from parent");
      match Syscalls.fork ctx.Runtime.kernel ctx.Runtime.proc with
      | Error e -> Alcotest.failf "fork: %s" (Errno.to_string e)
      | Ok child_proc ->
          let child_view =
            Runtime.in_child ctx child_proc (fun child ->
                (* The child sees the copied memory and can make its own
                   syscalls. *)
                let seen = Bytes.to_string (Runtime.peek child va 11) in
                ignore (Syscalls.getpid child.Runtime.kernel child.Runtime.proc);
                Syscalls.exit_ child.Runtime.kernel child.Runtime.proc 3;
                seen)
          in
          Alcotest.(check string) "child saw parent data" "from parent" child_view;
          let _, status = 
            match Syscalls.wait ctx.Runtime.kernel ctx.Runtime.proc with
            | Ok r -> r
            | Error e -> Alcotest.failf "wait: %s" (Errno.to_string e)
          in
          Alcotest.(check int) "exit status" 3 status)

let test_mmap_wrapper_masks () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let va = expect_ok "mmap" (Runtime.sys_mmap ctx ~len:8192) in
      Alcotest.(check bool) "not ghost" false (Layout.in_ghost va))

(* ------------------------------------------------------------------ *)
(* OpenSSH suite                                                       *)

let app_key = Bytes.of_string "0123456789abcdef"

let test_keygen_sealed_roundtrip () =
  let k = boot () in
  let ssh, keygen_img, _agent = Ssh_suite.install_images k ~app_key in
  (* ssh-keygen writes a sealed private key... *)
  Runtime.launch k ~image:keygen_img ~ghosting:true (fun ctx ->
      ignore (expect_ok "keygen" (Ssh_suite.keygen ctx ~path:"/id_dsa")));
  (* ...the raw file on disk does not contain the key material... *)
  let ino = (match Diskfs.lookup k.Kernel.fs "/id_dsa" with Ok i -> i | Error _ -> Alcotest.fail "missing") in
  let raw = (match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:4096 with Ok b -> b | Error _ -> Alcotest.fail "read") in
  Alcotest.(check string) "sealed format" "VGE1" (Bytes.to_string (Bytes.sub raw 0 4));
  (* ...and ssh (same application key) can load it back. *)
  Runtime.launch k ~image:ssh ~ghosting:true (fun ctx ->
      match Ssh_suite.load_private_key ctx ~path:"/id_dsa" with
      | Ok (va, len) ->
          Alcotest.(check int) "64-byte key" 64 len;
          Alcotest.(check bool) "in ghost memory" true (Layout.in_ghost va)
      | Error msg -> Alcotest.failf "load: %s" msg)

let test_keygen_tamper_detected () =
  let k = boot () in
  let ssh, keygen_img, _ = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image:keygen_img ~ghosting:true (fun ctx ->
      ignore (expect_ok "keygen" (Ssh_suite.keygen ctx ~path:"/id_t")));
  (* The hostile OS flips a byte of the stored key file. *)
  let ino = (match Diskfs.lookup k.Kernel.fs "/id_t" with Ok i -> i | Error _ -> Alcotest.fail "missing") in
  let raw = (match Diskfs.read k.Kernel.fs ~ino ~off:20 ~len:1 with Ok b -> b | Error _ -> Alcotest.fail "read") in
  Bytes.set raw 0 (Char.chr (Char.code (Bytes.get raw 0) lxor 1));
  ignore (Diskfs.write k.Kernel.fs ~ino ~off:20 raw);
  Runtime.launch k ~image:ssh ~ghosting:true (fun ctx ->
      match Ssh_suite.load_private_key ctx ~path:"/id_t" with
      | Ok _ -> Alcotest.fail "tampering must be detected"
      | Error msg ->
          Alcotest.(check bool) "says tampering" true
            (String.length msg > 0))

let test_keygen_plaintext_on_baseline () =
  (* On the native kernel there is no key chain: the private key hits
     the disk in the clear, where the OS can read it. *)
  let k = boot ~mode:Sva.Native_build () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      ignore (expect_ok "keygen" (Ssh_suite.keygen ctx ~path:"/id_plain")));
  let ino = (match Diskfs.lookup k.Kernel.fs "/id_plain" with Ok i -> i | Error _ -> Alcotest.fail "missing") in
  let raw = (match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:4 with Ok b -> b | Error _ -> Alcotest.fail "read") in
  Alcotest.(check string) "plaintext format" "PLN1" (Bytes.to_string raw)

let test_agent_serves_requests () =
  let k = boot () in
  let _, _, agent_img = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image:agent_img ~ghosting:true (fun ctx ->
      let kk = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
      let req_r, req_w = expect_ok "pipe" (Syscalls.pipe kk proc) in
      let rep_r, rep_w = expect_ok "pipe" (Syscalls.pipe kk proc) in
      let secret = Ssh_suite.agent_store_secret ctx "agent-held-signing-secret" in
      Alcotest.(check bool) "secret in ghost" true (Layout.in_ghost secret);
      (* Client side sends a challenge. *)
      ignore (expect_ok "req" (Runtime.write_string ctx ~fd:req_w "challenge-1"));
      ignore
        (expect_ok "serve"
           (Ssh_suite.agent_serve_once ctx ~request_fd:req_r ~reply_fd:rep_w ~secret
              ~secret_len:25));
      let reply_buf = Runtime.ualloc ctx 64 in
      let n = expect_ok "reply" (Syscalls.read kk proc ~fd:rep_r ~buf:reply_buf ~len:64) in
      Alcotest.(check int) "hmac size" 32 n;
      (* The reply verifies against the known secret. *)
      let expected =
        Vg_crypto.Hmac.mac
          ~key:(Bytes.of_string "agent-held-signing-secret")
          (Bytes.of_string "challenge-1")
      in
      Alcotest.(check bytes) "correct MAC" expected (Runtime.peek ctx reply_buf 32))

let test_agent_protocol () =
  let k = boot () in
  let _, _, agent_img = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image:agent_img ~ghosting:true (fun ctx ->
      let kk = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
      let req_r, req_w = expect_ok "pipe" (Syscalls.pipe kk proc) in
      let rep_r, rep_w = expect_ok "pipe" (Syscalls.pipe kk proc) in
      let state = Ssh_suite.Agent.create ctx in
      let roundtrip request =
        (match request with Ok () -> () | Error e -> Alcotest.failf "request: %s" (Errno.to_string e));
        (match Ssh_suite.Agent.serve_one state ~request_fd:req_r ~reply_fd:rep_w with
        | Ok () -> ()
        | Error e -> Alcotest.failf "serve: %s" (Errno.to_string e));
        Ssh_suite.Agent.read_reply ctx ~fd:rep_r
      in
      let key_a = Bytes.of_string "alpha-key-material-0001" in
      let key_b = Bytes.of_string "beta-key-material-00002" in
      (* add two keys *)
      (match roundtrip (Ssh_suite.Agent.request_add ctx ~fd:req_w ~name:"alpha" ~key:key_a) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "add: %s" msg);
      (match roundtrip (Ssh_suite.Agent.request_add ctx ~fd:req_w ~name:"beta" ~key:key_b) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "add: %s" msg);
      (* keys live in ghost memory *)
      (match Ssh_suite.Agent.key_address state "alpha" with
      | Some va -> Alcotest.(check bool) "ghost-resident" true (Layout.in_ghost va)
      | None -> Alcotest.fail "key missing");
      (* list *)
      (match roundtrip (Ssh_suite.Agent.request_list ctx ~fd:req_w) with
      | Ok names -> Alcotest.(check string) "list" "alpha,beta" (Bytes.to_string names)
      | Error msg -> Alcotest.failf "list: %s" msg);
      (* sign verifies against the known key *)
      let challenge = Bytes.of_string "auth-challenge-42" in
      (match roundtrip (Ssh_suite.Agent.request_sign ctx ~fd:req_w ~name:"beta" ~challenge) with
      | Ok signature ->
          Alcotest.(check bytes) "signature" (Vg_crypto.Hmac.mac ~key:key_b challenge) signature
      | Error msg -> Alcotest.failf "sign: %s" msg);
      (* remove, then sign fails *)
      (match roundtrip (Ssh_suite.Agent.request_remove ctx ~fd:req_w ~name:"beta") with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "remove: %s" msg);
      (match roundtrip (Ssh_suite.Agent.request_sign ctx ~fd:req_w ~name:"beta" ~challenge) with
      | Ok _ -> Alcotest.fail "signing with a removed key must fail"
      | Error msg -> Alcotest.(check string) "error" "unknown key" msg))

(* ------------------------------------------------------------------ *)
(* Sealed store (replay-protected files)                               *)

let test_sealed_roundtrip () =
  let k = boot () in
  let _, _, image = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image ~ghosting:true (fun ctx ->
      (match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "generation-1") with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" (Format.asprintf "%a" Sealed_store.pp_error e));
      match Sealed_store.load ctx ~path:"/state" with
      | Ok data -> Alcotest.(check string) "round trip" "generation-1" (Bytes.to_string data)
      | Error e -> Alcotest.failf "load: %s" (Format.asprintf "%a" Sealed_store.pp_error e))

let raw_file k path =
  match Diskfs.lookup k.Kernel.fs path with
  | Error _ -> Alcotest.fail "missing file"
  | Ok ino -> (
      match Diskfs.stat k.Kernel.fs ~ino with
      | Error _ -> Alcotest.fail "stat"
      | Ok st -> (
          match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size with
          | Ok b -> (ino, b)
          | Error _ -> Alcotest.fail "read"))

let test_sealed_replay_detected () =
  let k = boot () in
  let _, _, image = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image ~ghosting:true (fun ctx ->
      (match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "old") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "save old");
      let ino, old_bytes = raw_file k "/state" in
      (match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "new") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "save new");
      (* Hostile OS restores the old version. *)
      ignore (Diskfs.truncate k.Kernel.fs ~ino ~len:0);
      ignore (Diskfs.write k.Kernel.fs ~ino ~off:0 old_bytes);
      match Sealed_store.load ctx ~path:"/state" with
      | Error `Stale -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Sealed_store.pp_error e)
      | Ok _ -> Alcotest.fail "replay accepted!")

let test_sealed_tamper_detected () =
  let k = boot () in
  let _, _, image = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image ~ghosting:true (fun ctx ->
      (match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "payload") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "save");
      let ino, bytes = raw_file k "/state" in
      Bytes.set bytes 20 (Char.chr (Char.code (Bytes.get bytes 20) lxor 1));
      ignore (Diskfs.write k.Kernel.fs ~ino ~off:0 bytes);
      match Sealed_store.load ctx ~path:"/state" with
      | Error `Tampered -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Sealed_store.pp_error e)
      | Ok _ -> Alcotest.fail "tampering accepted!")

let test_sealed_requires_identity () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "x") with
      | Error `No_identity -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Sealed_store.pp_error e)
      | Ok () -> Alcotest.fail "unsigned process must have no sealed identity")

let test_sealed_survives_reboot () =
  let machine = Machine.create ~phys_frames:16384 ~disk_sectors:32768 ~seed:"sealed-reboot" () in
  let k1 = Kernel.boot ~mode:Sva.Virtual_ghost machine in
  let _, _, image1 = Ssh_suite.install_images k1 ~app_key in
  Runtime.launch k1 ~image:image1 ~ghosting:true (fun ctx ->
      match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "before reboot") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "save");
  ignore (Syscalls.fsync k1 (Kernel.init_process k1));
  (* Reboot: same machine (TPM, disk), fresh kernel. *)
  let k2 = Kernel.boot ~mode:Sva.Virtual_ghost machine in
  let _, _, image2 = Ssh_suite.install_images k2 ~app_key in
  Runtime.launch k2 ~image:image2 ~ghosting:true (fun ctx ->
      match Sealed_store.load ctx ~path:"/state" with
      | Ok data -> Alcotest.(check string) "survives" "before reboot" (Bytes.to_string data)
      | Error e -> Alcotest.failf "load after reboot: %s" (Format.asprintf "%a" Sealed_store.pp_error e))

let test_sealed_cross_app_isolation () =
  let k = boot () in
  let _, _, image_a = Ssh_suite.install_images k ~app_key in
  Runtime.launch k ~image:image_a ~ghosting:true (fun ctx ->
      match Sealed_store.save ctx ~path:"/state" (Bytes.of_string "app A data") with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "save");
  (* A different application (different key) cannot read it. *)
  let other_key = Bytes.of_string "another-16b-key!" in
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string "other-installer") in
  let image_b =
    Appimage.install
      ~vg_key:(Sva.vg_private_key_for_installer k.Kernel.sva)
      ~rng ~name:"other" ~payload:(Bytes.of_string "other text") ~entry:0x400000L
      ~app_key:other_key ()
  in
  Runtime.launch k ~image:image_b ~ghosting:true (fun ctx ->
      match Sealed_store.load ctx ~path:"/state" with
      | Ok _ -> Alcotest.fail "foreign app read the sealed file!"
      | Error (`Stale | `Tampered) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Sealed_store.pp_error e))

(* ------------------------------------------------------------------ *)
(* thttpd                                                              *)

let make_file k path data =
  let ino =
    match Diskfs.create k.Kernel.fs path with
    | Ok i -> i
    | Error _ -> Alcotest.failf "create %s" path
  in
  match Diskfs.write k.Kernel.fs ~ino ~off:0 data with
  | Ok _ -> ()
  | Error _ -> Alcotest.failf "write %s" path

let test_httpd_serves_file () =
  let k = boot () in
  let body = Bytes.init 10000 (fun i -> Char.chr (i mod 251)) in
  make_file k "/page.html" body;
  Runtime.launch k ~ghosting:false (fun ctx ->
      let listen_fd = expect_ok "listen" (Httpd.start ctx ~port:80) in
      match
        Httpd.Client.get k.Kernel.machine ~port:80 ~path:"/page.html" (fun () ->
            ignore (Httpd.serve_requests ctx ~listen_fd ~max:1))
      with
      | Some got -> Alcotest.(check bytes) "body" body got
      | None -> Alcotest.fail "request failed")

let test_httpd_404 () =
  let k = boot () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let listen_fd = expect_ok "listen" (Httpd.start ctx ~port:80) in
      match
        Httpd.Client.get k.Kernel.machine ~port:80 ~path:"/missing" (fun () ->
            ignore (Httpd.serve_requests ctx ~listen_fd ~max:1))
      with
      | Some _ -> Alcotest.fail "expected failure"
      | None -> ())

(* ------------------------------------------------------------------ *)
(* sshd / ssh transfers                                                *)

let session_key = Bytes.of_string "fedcba9876543210"

let test_sshd_download () =
  let k = boot () in
  let body = Bytes.init 50000 (fun i -> Char.chr ((i * 7) mod 256)) in
  make_file k "/payload" body;
  Runtime.launch k ~ghosting:false (fun ctx ->
      let listen_fd = expect_ok "listen" (Syscalls.listen k (Kernel.current_proc k) ~port:22) in
      (* Remote scp client connects, then the server streams. *)
      let ep = Netstack.Remote.connect (Machine.remote_nic k.Kernel.machine) ~port:22 in
      (match Ssh_suite.sshd_serve_file ctx ~listen_fd ~path:"/payload" ~session_key with
      | Ok sent -> Alcotest.(check int) "bytes sent" 50000 sent
      | Error msg -> Alcotest.failf "serve: %s" msg);
      (* Skip the session-setup control frames. *)
      for _ = 1 to 45 do
        ignore (Netstack.Remote.recv ep)
      done;
      let cipher = Netstack.Remote.recv_all_available ep in
      Alcotest.(check int) "cipher size" 50000 (Bytes.length cipher);
      let plain =
        Vg_crypto.Chacha20.transform
          ~key:(Vg_crypto.Sha256.digest session_key)
          ~nonce:(Bytes.make 12 '\x03') ~counter:0l cipher
      in
      Alcotest.(check bytes) "client decrypts correctly" body plain)

let test_ghosting_ssh_fetch () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let fd = expect_ok "connect" (Ssh_suite.fetch_begin ctx ~port:2022) in
      Alcotest.(check bool) "remote saw SYN" true
        (Ssh_suite.remote_file_server k.Kernel.machine ~session_key ~len:20000 ~chunk:1400);
      match Ssh_suite.fetch_complete ctx ~fd ~len:20000 ~session_key with
      | Error msg -> Alcotest.failf "fetch: %s" msg
      | Ok (va, len) ->
          Alcotest.(check bool) "landed in ghost memory" true (Layout.in_ghost va);
          let got = Runtime.peek ctx va len in
          let expected = Bytes.init len (fun i -> Char.chr (i mod 256)) in
          Alcotest.(check bytes) "decrypted payload" expected got)

(* ------------------------------------------------------------------ *)
(* Ghost malloc (the modified C-library allocator)                     *)

let test_malloc_basic () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      let a = Ghost_malloc.malloc heap 100 in
      let b = Ghost_malloc.malloc heap 200 in
      Alcotest.(check bool) "ghost pointers" true (Layout.in_ghost a && Layout.in_ghost b);
      Alcotest.(check bool) "distinct" true (a <> b);
      Runtime.poke ctx a (Bytes.make 100 'A');
      Runtime.poke ctx b (Bytes.make 200 'B');
      Alcotest.(check bytes) "a intact" (Bytes.make 100 'A') (Runtime.peek ctx a 100);
      Alcotest.(check bytes) "b intact" (Bytes.make 200 'B') (Runtime.peek ctx b 200);
      Alcotest.(check int) "live" 2 (Ghost_malloc.live_blocks heap);
      Ghost_malloc.free heap a;
      Alcotest.(check int) "one live" 1 (Ghost_malloc.live_blocks heap);
      (match Ghost_malloc.check_integrity heap with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "integrity: %s" msg))

let test_malloc_reuses_freed_space () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      let a = Ghost_malloc.malloc heap 256 in
      let _b = Ghost_malloc.malloc heap 64 in
      Ghost_malloc.free heap a;
      let c = Ghost_malloc.malloc heap 200 in
      Alcotest.(check int64) "first-fit reuse" a c)

let test_malloc_coalescing () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      (* Three adjacent blocks; freeing all three must coalesce enough
         for one block bigger than any single piece. *)
      let a = Ghost_malloc.malloc heap 128 in
      let b = Ghost_malloc.malloc heap 128 in
      let c = Ghost_malloc.malloc heap 128 in
      let barrier = Ghost_malloc.malloc heap 16 in
      Ghost_malloc.free heap a;
      Ghost_malloc.free heap b;
      Ghost_malloc.free heap c;
      let big = Ghost_malloc.malloc heap 380 in
      Alcotest.(check int64) "coalesced into the hole" a big;
      ignore barrier)

let test_malloc_errors () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      let a = Ghost_malloc.malloc heap 64 in
      Ghost_malloc.free heap a;
      Alcotest.check_raises "double free"
        (Invalid_argument "Ghost_malloc.free: double free") (fun () ->
          Ghost_malloc.free heap a);
      Alcotest.check_raises "wild pointer"
        (Invalid_argument "Ghost_malloc.free: not a heap pointer") (fun () ->
          Ghost_malloc.free heap 0x1234L))

let test_malloc_realloc () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      let a = Ghost_malloc.malloc heap 32 in
      Runtime.poke ctx a (Bytes.of_string "keep this prefix");
      let b = Ghost_malloc.realloc heap a 4096 in
      Alcotest.(check string) "contents preserved" "keep this prefix"
        (Bytes.to_string (Runtime.peek ctx b 16)))

let test_malloc_overflow_detected () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let heap = Ghost_malloc.create ctx in
      let a = Ghost_malloc.malloc heap 32 in
      let _b = Ghost_malloc.malloc heap 32 in
      (* Heap overflow: write past the end of [a] over b's header. *)
      Runtime.poke ctx a (Bytes.make 48 '\xff');
      match Ghost_malloc.check_integrity heap with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "overflow not detected")

(* Random alloc/free sequences against a model: contents never
   corrupted, integrity always holds. *)
let prop_malloc_model =
  QCheck2.Test.make ~name:"malloc model: random alloc/free keeps contents intact"
    ~count:20
    QCheck2.Gen.(list_size (int_range 10 60) (pair (int_range 1 600) bool))
    (fun ops ->
      let k = boot () in
      Runtime.launch k ~ghosting:true (fun ctx ->
          let heap = Ghost_malloc.create ctx in
          let live = ref [] in
          let counter = ref 0 in
          let ok = ref true in
          List.iter
            (fun (size, do_free) ->
              if do_free && !live <> [] then begin
                match !live with
                | (p, fill, n) :: rest ->
                    if Runtime.peek ctx p n <> Bytes.make n fill then ok := false;
                    Ghost_malloc.free heap p;
                    live := rest
                | [] -> ()
              end
              else begin
                incr counter;
                let fill = Char.chr (33 + (!counter mod 90)) in
                let p = Ghost_malloc.malloc heap size in
                Runtime.poke ctx p (Bytes.make size fill);
                live := (p, fill, size) :: !live
              end)
            ops;
          (* Everything still live must be intact, and the heap sane. *)
          List.iter
            (fun (p, fill, n) ->
              if Runtime.peek ctx p n <> Bytes.make n fill then ok := false)
            !live;
          (match Ghost_malloc.check_integrity heap with
          | Ok () -> ()
          | Error _ -> ok := false);
          !ok))

(* ------------------------------------------------------------------ *)
(* Ghost swapping                                                      *)

let test_swap_explicit_roundtrip () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      (* Fill 8 ghost pages with distinct patterns. *)
      let base = Runtime.galloc ctx (8 * 4096) in
      for i = 0 to 7 do
        Runtime.poke ctx
          (Int64.add base (Int64.of_int (i * 4096)))
          (Bytes.make 64 (Char.chr (65 + i)))
      done;
      let resident_before = Ghost_swap.resident_ghost_pages ctx.Runtime.proc in
      (* Evict four pages through the VM. *)
      for _ = 1 to 4 do
        match Ghost_swap.swap_out_one k with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "swap out: %s" msg
      done;
      Alcotest.(check int) "four fewer resident" (resident_before - 4)
        (Ghost_swap.resident_ghost_pages ctx.Runtime.proc);
      (* Blobs live in the file system, encrypted. *)
      (match Diskfs.lookup k.Kernel.fs "/swap" with
      | Ok ino ->
          let entries =
            match Diskfs.readdir k.Kernel.fs ~ino with Ok e -> e | Error _ -> []
          in
          Alcotest.(check int) "four blobs" 4 (List.length entries)
      | Error _ -> Alcotest.fail "/swap missing");
      (* Touching the pages faults them back in transparently, data
         intact. *)
      for i = 0 to 7 do
        let got = Runtime.peek ctx (Int64.add base (Int64.of_int (i * 4096))) 64 in
        Alcotest.(check bytes)
          (Printf.sprintf "page %d intact" i)
          (Bytes.make 64 (Char.chr (65 + i)))
          got
      done;
      Alcotest.(check int) "all resident again" resident_before
        (Ghost_swap.resident_ghost_pages ctx.Runtime.proc))

let test_swap_under_memory_pressure () =
  (* A machine whose kernel allocator is tiny: allocating more ghost
     memory than free frames forces evictions through the VM. *)
  let k =
    Node.kernel
      (Node.boot
         Node_config.(
           default |> with_phys_frames 8192 |> with_disk_sectors 32768
           |> with_seed "pressure" |> with_frame_limit 120))
  in
  Runtime.launch k ~ghosting:true (fun ctx ->
      (* ~60 pages of ghost heap on a ~120-frame machine (the runtime
         itself uses a few dozen frames for bounce buffers etc.). *)
      let chunks =
        List.init 15 (fun i ->
            let va = Runtime.galloc ctx (4 * 4096) in
            Runtime.poke ctx va (Bytes.make 32 (Char.chr (97 + (i mod 26))));
            va)
      in
      (* Every chunk is still readable — swapped pages come back. *)
      List.iteri
        (fun i va ->
          Alcotest.(check bytes)
            (Printf.sprintf "chunk %d" i)
            (Bytes.make 32 (Char.chr (97 + (i mod 26))))
            (Runtime.peek ctx va 32))
        chunks)

let test_swap_tampered_blob_kills_access () =
  let k = boot () in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let va = Runtime.galloc ctx 4096 in
      Runtime.poke ctx va (Bytes.of_string "precious ghost bytes");
      (match Ghost_swap.swap_out_one k with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "swap out: %s" msg);
      (* The hostile OS flips a byte in a stored blob. *)
      (match Diskfs.lookup k.Kernel.fs "/swap" with
      | Ok dir -> (
          match Diskfs.readdir k.Kernel.fs ~ino:dir with
          | Ok ((_, ino) :: _) -> (
              match Diskfs.read k.Kernel.fs ~ino ~off:100 ~len:1 with
              | Ok b ->
                  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
                  ignore (Diskfs.write k.Kernel.fs ~ino ~off:100 b)
              | Error _ -> Alcotest.fail "blob read")
          | Ok [] | Error _ -> Alcotest.fail "no blob")
      | Error _ -> Alcotest.fail "/swap missing");
      (* The application's next touch is refused rather than fed
         corrupt data. *)
      Alcotest.(check bool) "access refused" true
        (try
           ignore (Runtime.peek ctx va 16);
           (* If the evicted page wasn't ours, reading may still work;
              ensure at least one page rejects. *)
           Console.contains (Machine.console k.Kernel.machine) "integrity"
         with Runtime.App_crash _ -> true))

(* ------------------------------------------------------------------ *)
(* Postmark                                                            *)

let test_postmark_small_run () =
  let k = boot () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let config =
        { Postmark.paper_config with base_files = 20; transactions = 200; seed = 7 }
      in
      let stats = expect_ok "postmark" (Postmark.run ctx config) in
      Alcotest.(check bool) "created >= base" true (stats.Postmark.created >= 20);
      Alcotest.(check bool) "did transactions" true
        (stats.Postmark.reads + stats.Postmark.appends + stats.Postmark.created
         + stats.Postmark.deleted
        >= 200);
      (* Everything is deleted at the end. *)
      match Diskfs.lookup k.Kernel.fs "/pm" with
      | Ok ino ->
          let entries =
            match Diskfs.readdir k.Kernel.fs ~ino with Ok e -> e | Error _ -> []
          in
          Alcotest.(check (list string)) "pm dir empty" [] (List.map fst entries)
      | Error _ -> Alcotest.fail "/pm missing")

let test_postmark_deterministic () =
  let run () =
    let k = boot () in
    Runtime.launch k ~ghosting:false (fun ctx ->
        let config =
          { Postmark.paper_config with base_files = 10; transactions = 100; seed = 3 }
        in
        expect_ok "postmark" (Postmark.run ctx config))
  in
  Alcotest.(check bool) "same stats" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* LMBench drivers                                                     *)

let test_lmbench_sanity () =
  let k = boot () in
  Runtime.launch k ~ghosting:false (fun ctx ->
      let checks =
        [
          ("null", Lmbench.null_syscall ctx ~iterations:50);
          ("open/close", Lmbench.open_close ctx ~iterations:50);
          ("mmap", Lmbench.mmap_bench ctx ~iterations:20);
          ("page fault", Lmbench.page_fault ctx ~iterations:20);
          ("sig install", Lmbench.signal_install ctx ~iterations:20);
          ("sig deliver", Lmbench.signal_delivery ctx ~iterations:20);
          ("fork+exit", Lmbench.fork_exit ctx ~iterations:10);
          ("select", Lmbench.select_10 ctx ~iterations:20);
          ("create 1k", Lmbench.file_create ctx ~size:1024 ~iterations:10);
          ("delete 1k", Lmbench.file_delete ctx ~size:1024 ~iterations:10);
        ]
      in
      List.iter
        (fun (name, us) ->
          Alcotest.(check bool) (name ^ " positive") true (us > 0.0 && us < 10000.0))
        checks)

let test_lmbench_vg_slower () =
  let latency mode =
    let k = boot ~mode () in
    Runtime.launch k ~ghosting:false (fun ctx -> Lmbench.null_syscall ctx ~iterations:200)
  in
  let native = latency Sva.Native_build and vg = latency Sva.Virtual_ghost in
  Alcotest.(check bool)
    (Printf.sprintf "vg (%.3f us) slower than native (%.3f us)" vg native)
    true (vg > native)

(* ------------------------------------------------------------------ *)
(* Syscall-flow profiles                                                *)

(* Each application, run once in Record mode to extract its own
   profile, must replay in full under Enforce on a fresh kernel: all
   work done, zero [Security{sfip}] kills.  This is the "unmodified
   applications keep working" half of the SFIP acceptance — the attack
   suite holds the other half. *)

let with_sfip_events f =
  let recorder = Vg_obs.Obs_recorder.create () in
  let result =
    Vg_obs.Obs.with_sink Vg_obs.Obs.default
      (Vg_obs.Obs_recorder.sink recorder)
      f
  in
  ( result,
    Vg_obs.Obs_recorder.count_matching recorder (function
      | Vg_obs.Obs.Event.Security { subsystem = "sfip"; _ } -> true
      | _ -> false) )

let enforced_from recorder =
  Syscall_policy.enforce (Syscall_policy.graph recorder)

let test_sfip_httpd_pool_profiled () =
  let body = Bytes.init 2048 (fun i -> Char.chr (i mod 251)) in
  let serve k sfip =
    Httpd.Pool.run k ?sfip ~workers:2 ~requests:8 ~port:80 ~path:"/index.html"
  in
  let k1 = boot () in
  make_file k1 "/index.html" body;
  let recorder = Syscall_policy.record () in
  ignore (serve k1 (Some recorder));
  let k2 = boot () in
  make_file k2 "/index.html" body;
  let stats, kills = with_sfip_events (fun () -> serve k2 (Some (enforced_from recorder))) in
  Alcotest.(check int) "all requests 200" 8 stats.Httpd.Pool.ok;
  Alcotest.(check int) "no sfip kills" 0 kills

let test_sfip_httpd_event_loop_profiled () =
  let body = Bytes.init 2048 (fun i -> Char.chr (i mod 251)) in
  let serve k sfip =
    Httpd.Event_loop.run k ?sfip ~batch:4 ~requests:8 ~port:80 ~path:"/index.html"
  in
  let k1 = boot () in
  make_file k1 "/index.html" body;
  let recorder = Syscall_policy.record () in
  ignore (serve k1 (Some recorder));
  let k2 = boot () in
  make_file k2 "/index.html" body;
  let stats, kills = with_sfip_events (fun () -> serve k2 (Some (enforced_from recorder))) in
  Alcotest.(check int) "all requests 200" 8 stats.Httpd.Event_loop.ok;
  Alcotest.(check int) "no sfip kills" 0 kills

let test_sfip_postmark_profiled () =
  let config =
    { Postmark.paper_config with base_files = 10; transactions = 100; seed = 7 }
  in
  let run k sfip =
    let out = ref None in
    Runtime.launch k ?sfip ~ghosting:false (fun ctx ->
        out := Some (expect_ok "postmark" (Postmark.run ctx config)));
    Option.get !out
  in
  let k1 = boot () in
  let recorder = Syscall_policy.record () in
  ignore (run k1 (Some recorder));
  let k2 = boot () in
  let stats, kills = with_sfip_events (fun () -> run k2 (Some (enforced_from recorder))) in
  Alcotest.(check bool) "full run" true (stats.Postmark.created >= 10);
  Alcotest.(check int) "no sfip kills" 0 kills

let test_sfip_ssh_profiled () =
  let phases k sfip_keygen sfip_ssh =
    let ssh, keygen_img, _ = Ssh_suite.install_images k ~app_key in
    Runtime.launch k ~image:keygen_img ?sfip:sfip_keygen ~ghosting:true (fun ctx ->
        ignore (expect_ok "keygen" (Ssh_suite.keygen ctx ~path:"/id")));
    Runtime.launch k ~image:ssh ?sfip:sfip_ssh ~ghosting:true (fun ctx ->
        match Ssh_suite.load_private_key ctx ~path:"/id" with
        | Ok (_, len) -> Alcotest.(check int) "64-byte key" 64 len
        | Error msg -> Alcotest.failf "load: %s" msg)
  in
  let k1 = boot () in
  let rec_keygen = Syscall_policy.record () in
  let rec_ssh = Syscall_policy.record () in
  phases k1 (Some rec_keygen) (Some rec_ssh);
  let k2 = boot () in
  let (), kills =
    with_sfip_events (fun () ->
        phases k2 (Some (enforced_from rec_keygen)) (Some (enforced_from rec_ssh)))
  in
  Alcotest.(check int) "no sfip kills" 0 kills

let () =
  Alcotest.run "vg_apps"
    [
      ( "runtime",
        [
          Alcotest.test_case "launch + memory" `Quick test_launch_and_memory;
          Alcotest.test_case "ghost heap placement" `Quick test_ghost_heap_placement;
          Alcotest.test_case "ghost heap grows" `Quick test_ghost_heap_grows;
          Alcotest.test_case "wrapper ghost file io" `Quick test_wrapper_ghost_file_io;
          Alcotest.test_case "raw ghost pointer loses data" `Quick
            test_raw_ghost_pointer_loses_data_under_vg;
          Alcotest.test_case "signal wrapper" `Quick test_signal_wrapper_end_to_end;
          Alcotest.test_case "mmap wrapper masks" `Quick test_mmap_wrapper_masks;
          Alcotest.test_case "fork + in_child" `Quick test_fork_in_child;
        ] );
      ( "openssh",
        [
          Alcotest.test_case "keygen sealed round-trip" `Slow test_keygen_sealed_roundtrip;
          Alcotest.test_case "keygen tamper detected" `Slow test_keygen_tamper_detected;
          Alcotest.test_case "plaintext on baseline" `Quick test_keygen_plaintext_on_baseline;
          Alcotest.test_case "agent serves requests" `Slow test_agent_serves_requests;
          Alcotest.test_case "agent protocol" `Slow test_agent_protocol;
        ] );
      ( "sealed-store",
        [
          Alcotest.test_case "round trip" `Slow test_sealed_roundtrip;
          Alcotest.test_case "replay detected" `Slow test_sealed_replay_detected;
          Alcotest.test_case "tamper detected" `Slow test_sealed_tamper_detected;
          Alcotest.test_case "requires identity" `Quick test_sealed_requires_identity;
          Alcotest.test_case "survives reboot" `Slow test_sealed_survives_reboot;
          Alcotest.test_case "cross-app isolation" `Slow test_sealed_cross_app_isolation;
        ] );
      ( "httpd",
        [
          Alcotest.test_case "serves file" `Quick test_httpd_serves_file;
          Alcotest.test_case "404" `Quick test_httpd_404;
        ] );
      ( "ssh-transfer",
        [
          Alcotest.test_case "sshd download" `Quick test_sshd_download;
          Alcotest.test_case "ghosting ssh fetch" `Quick test_ghosting_ssh_fetch;
        ] );
      ( "ghost-malloc",
        Alcotest.test_case "basic" `Quick test_malloc_basic
        :: Alcotest.test_case "reuses freed space" `Quick test_malloc_reuses_freed_space
        :: Alcotest.test_case "coalescing" `Quick test_malloc_coalescing
        :: Alcotest.test_case "errors" `Quick test_malloc_errors
        :: Alcotest.test_case "realloc" `Quick test_malloc_realloc
        :: Alcotest.test_case "overflow detected" `Quick test_malloc_overflow_detected
        :: List.map QCheck_alcotest.to_alcotest [ prop_malloc_model ] );
      ( "swapping",
        [
          Alcotest.test_case "explicit round-trip" `Quick test_swap_explicit_roundtrip;
          Alcotest.test_case "under memory pressure" `Quick test_swap_under_memory_pressure;
          Alcotest.test_case "tampered blob refused" `Quick
            test_swap_tampered_blob_kills_access;
        ] );
      ( "postmark",
        [
          Alcotest.test_case "small run" `Quick test_postmark_small_run;
          Alcotest.test_case "deterministic" `Quick test_postmark_deterministic;
        ] );
      ( "lmbench",
        [
          Alcotest.test_case "sanity" `Quick test_lmbench_sanity;
          Alcotest.test_case "vg slower" `Quick test_lmbench_vg_slower;
        ] );
      ( "sfip-profiles",
        [
          Alcotest.test_case "httpd pool replays clean" `Slow
            test_sfip_httpd_pool_profiled;
          Alcotest.test_case "httpd event loop replays clean" `Slow
            test_sfip_httpd_event_loop_profiled;
          Alcotest.test_case "postmark replays clean" `Slow test_sfip_postmark_profiled;
          Alcotest.test_case "ssh suite replays clean" `Slow test_sfip_ssh_profiled;
        ] );
    ]
