(** A simulated cluster: N {!Node}s wired NIC-to-NIC through a
    software switch, fronted by a {!Lb} balancer fanning requests out
    to event-loop {!Httpd} backends.

    Each node keeps the classic harness wire (its
    [Machine.remote_nic]) for clients; cross-node traffic rides a
    dedicated fabric {!Nic.pair} per node, so the historical wire
    format — and every cycle golden over it — is untouched.  The
    switch is stateless (connection ids are globally unique) and
    zero-cost; wire time is charged by the fabric NICs on transmit.

    Observability is per node: each node boots with a private
    {!Obs.t} carrying an {!Obs_stats} sink (accumulating across
    restarts) and a security-event log (cleared when the node is
    re-imaged), so a hostile backend's [Security] events are
    attributable in fleet reporting. *)

type t

val create : ?policy:Lb.policy -> nodes:int -> Node_config.t -> t
(** Boot [nodes] nodes from the config ([policy] defaults to
    round-robin).  Node [i] gets seed ["<seed>-n<i>"] and a fresh
    private [Obs.t]; the config's own [obs] field is ignored. *)

val size : t -> int
val node : t -> int -> Node.t
val lb : t -> Lb.t

val pump : t -> unit
(** Forward every frame queued on any switch port.  Called
    automatically from each node's [Netstack.poll]; exposed for
    tests. *)

val listen_all : t -> port:int -> unit
(** Open a listener on every node (remembered and re-applied when a
    node restarts). *)

val setup_www : t -> path:string -> bytes -> unit
(** Create the document on every node's file system (remembered and
    re-applied on restart). *)

val restart_node : t -> int -> unit
(** Reboot node [i] from the fleet config — fresh machine, kernel and
    file system, listeners and documents re-applied, security log
    cleared — and re-admit it to the balancer. *)

val mark_down : t -> int -> unit
val readmit : t -> int -> unit

val check_health : t -> (int * int) list
(** Quarantine (drain) every admitted node whose kernel has raised
    [Security] events since its last clean boot; returns
    [(node, event_count)] for each node quarantined by this call. *)

(** {1 Per-node observability} *)

val node_stats : t -> int -> Obs_stats.t
val security_events : t -> int -> string list
val restarts : t -> int -> int

type mixed_stats = { postmark_tx : int; ssh_ok : bool }

val last_mixed : t -> int -> mixed_stats option
(** Results of the background mixed load from the node's most recent
    [~mixed:true] wave. *)

(** {1 Serving} *)

type node_report = {
  node_id : int;
  assigned : int;  (** requests the balancer sent here *)
  served : int;  (** connections the event loop handled *)
  ok : int;  (** clients that got a [200] *)
  elapsed_cycles : int;  (** this node's serving window *)
  security_events : int;  (** cumulative since last clean boot *)
}

type wave = {
  requests : int;
  dropped : int;  (** requests no admitted node could take *)
  ok : int;
  elapsed_cycles : int;  (** max over nodes: the wall-clock window *)
  per_node : node_report array;
}

val wave_rps : wave -> float
val report_rps : node_report -> float

val serve_wave :
  ?batch:int -> ?mixed:bool -> t -> port:int -> path:string -> requests:int ->
  wave
(** Assign [requests] through the balancer, pre-connect each client on
    its target node's harness wire, then run every assigned node's
    event-loop server ({!Httpd.Event_loop.serve}).  [~mixed:true] adds
    the background mixed load (ghosting Postmark + ssh keygen/load
    through the app-key chain) to every serving node's scheduler. *)

(** {1 Rolling restart} *)

type restart_report = {
  waves : wave list;  (** one per drained node, then one full-strength *)
  total_requests : int;
  total_ok : int;
  total_dropped : int;
  drain_latency_cycles : int array;
      (** per node: cycles it took to clear its in-flight share before
          rebooting *)
}

val rolling_restart :
  ?batch:int -> t -> port:int -> path:string -> requests_per_wave:int ->
  restart_report
(** For each node in turn: serve a wave (the node's share is its
    in-flight work), let it finish — nothing in flight is dropped —
    then reboot and re-admit it; finally serve one more wave at full
    strength. *)

(** {1 Cross-node key distribution} *)

type key_transfer = {
  delivered : bool;  (** the key arrived bit-exact *)
  key_len : int;
  plaintext_on_wire : bool;
      (** the key's raw bytes appeared in a forwarded fabric frame —
          must be [false] *)
  sealed_at_rest : bool;
      (** the stored copy on the destination disk does not contain the
          plaintext *)
  reload_ok : bool;  (** a fresh process reloads it through {!Sealed_store} *)
}

val distribute_key : ?port:int -> ?path:string -> t -> src:int -> dst:int ->
  key_transfer
(** The TPM→VG→app-key chain, fleet edition: node [src] generates an
    authentication key with the ghosting ssh-keygen (sealed on its
    disk), serves it over the fabric inside a [Ctr.seal] envelope
    under the shared application key, and node [dst] re-seals it at
    rest via {!Sealed_store}.  Both ends recover the application key
    through the VM from their signed images, never from the OS. *)

val wire_log_contains : t -> bytes -> bool
(** Did these exact bytes cross the fabric in any forwarded frame?
    (The switch logs every frame verbatim.) *)
