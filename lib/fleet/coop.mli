(** Harness-side cooperative interleaving for cross-node protocols.

    Every node's kernel drives its own {!Vg_kernel.Sched}; running a
    server process on one node against a client process on another
    needs the two bodies interleaved {e above} both kernels.  Bodies
    are plain thunks that call {!yield} at their wait points (typically
    around [EAGAIN] retries); {!interleave} round-robins them until all
    return. *)

val yield : unit -> unit
(** Suspend the current body and let its siblings run.  Outside
    {!interleave} this is a no-op, so protocol code also runs
    standalone. *)

val interleave : (unit -> unit) list -> unit
(** Run the bodies round-robin to completion.  Exceptions propagate to
    the caller (remaining bodies are abandoned). *)

val retry : ?max_tries:int -> (unit -> 'a option) -> 'a
(** Poll [step] with a {!yield} between attempts until it produces a
    value; raises after [max_tries] (default 100k) fruitless tries. *)
