(** One configuration record for one node, subsuming the
    optional-argument sprawl of {!Vg_machine.Machine.create} plus
    {!Vg_kernel.Kernel.boot}.

    Build a config from {!default} with the [with_*] combinators
    (designed for [|>] chains):

    {[
      Node_config.(
        default |> with_cpus 4 |> with_mode Sva.Virtual_ghost
        |> with_seed "web")
      |> Node.boot
    ]}

    Every default equals the corresponding historical default of the
    two-call form, and booting through {!Node.boot} is cycle-identical
    to calling the two functions directly (golden-pinned in
    test/fleet). *)

type t = {
  cpus : int;  (** default 1 *)
  phys_frames : int;  (** default 32768 (128 MiB) *)
  disk_sectors : int;  (** default 65536 (32 MiB) *)
  spec_depth : int;  (** speculative window in macro-ops; default 0 *)
  seed : string;  (** determinises TPM + entropy; default ["node"] *)
  obs : Obs.t option;  (** default: the process-wide {!Obs.default} *)
  mode : Sva.mode;  (** default [Virtual_ghost] *)
  engine : Vg_compiler.Exec_engine.t;  (** default [Slots] *)
  spec_mitigation : Vg_compiler.Mitigation.t;  (** default [Off] *)
  frame_limit : int option;  (** kernel frame-allocator cap; default none *)
  sfip : Syscall_policy.t option;
      (** syscall-flow policy the node's serving processes run under;
          default none *)
}

val default : t

val with_cpus : int -> t -> t
val with_phys_frames : int -> t -> t
val with_disk_sectors : int -> t -> t
val with_spec_depth : int -> t -> t
val with_seed : string -> t -> t
val with_obs : Obs.t -> t -> t
val with_mode : Sva.mode -> t -> t
val with_engine : Vg_compiler.Exec_engine.t -> t -> t
val with_spec_mitigation : Vg_compiler.Mitigation.t -> t -> t
val with_frame_limit : int -> t -> t
val with_sfip : Syscall_policy.t -> t -> t

val create_machine : t -> Machine.t
(** The machine half of a boot — for callers that need a bare machine
    (no kernel), e.g. attack harnesses that boot the kernel
    themselves. *)

val describe : t -> string
(** One-line human summary for logs and CLI output. *)
