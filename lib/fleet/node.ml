type t = {
  id : int;
  config : Node_config.t;
  machine : Machine.t;
  kernel : Kernel.t;
}

let boot ?(id = 0) (config : Node_config.t) =
  let machine = Node_config.create_machine config in
  let kernel =
    Kernel.boot ?frame_limit:config.Node_config.frame_limit
      ~engine:config.Node_config.engine
      ~spec_mitigation:config.Node_config.spec_mitigation
      ~mode:config.Node_config.mode machine
  in
  { id; config; machine; kernel }

let id t = t.id
let config t = t.config
let machine t = t.machine
let kernel t = t.kernel
let net t = t.kernel.Kernel.net
let mode t = t.config.Node_config.mode

let launch t ?image ?sfip ~ghosting body =
  let sfip =
    match sfip with Some _ -> sfip | None -> t.config.Node_config.sfip
  in
  Runtime.launch t.kernel ?image ?sfip ~ghosting body

let listen t ~port = Netstack.listen t.kernel.Kernel.net ~port

let www t ~path data =
  let fs = t.kernel.Kernel.fs in
  match Diskfs.create fs path with
  | Error e -> Error e
  | Ok ino -> (
      match Diskfs.write fs ~ino ~off:0 data with
      | Ok _ -> Ok ()
      | Error e -> Error e)
