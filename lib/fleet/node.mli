(** A booted machine + kernel pair: the single entry point replacing
    direct [Machine.create] / [Kernel.boot] call chains.  {!boot} is
    cycle-identical to the two-call form for equal configuration —
    the compat contract the golden tests pin. *)

type t

val boot : ?id:int -> Node_config.t -> t
(** Create the machine and boot the kernel described by the config.
    [id] (default 0) is the node's fleet-wide identity; standalone
    callers never need it. *)

val id : t -> int
val config : t -> Node_config.t
val machine : t -> Machine.t
val kernel : t -> Kernel.t
val net : t -> Netstack.t
val mode : t -> Sva.mode

val launch :
  t -> ?image:Appimage.t -> ?sfip:Syscall_policy.t -> ghosting:bool ->
  (Runtime.ctx -> 'a) -> 'a
(** {!Runtime.launch} on this node's kernel; when [?sfip] is omitted
    the node config's policy (if any) applies. *)

val listen : t -> port:int -> unit Errno.result
val www : t -> path:string -> bytes -> unit Errno.result
(** Create [path] on the node's file system holding [data]. *)
