type policy = Round_robin | Least_connections

let policy_to_string = function
  | Round_robin -> "round-robin"
  | Least_connections -> "least-connections"

let policy_of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "lc" | "least-connections" -> Some Least_connections
  | _ -> None

type t = {
  policy : policy;
  n : int;
  up : bool array;
  inflight : int array;
  assigned : int array;
  completed : int array;
  mutable cursor : int;
}

let create ~nodes policy =
  if nodes < 1 then invalid_arg "Lb.create: nodes < 1";
  {
    policy;
    n = nodes;
    up = Array.make nodes true;
    inflight = Array.make nodes 0;
    assigned = Array.make nodes 0;
    completed = Array.make nodes 0;
    cursor = 0;
  }

let nodes t = t.n
let policy t = t.policy
let set_up t i b = t.up.(i) <- b
let is_up t i = t.up.(i)
let up_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.up
let assigned t i = t.assigned.(i)
let inflight t i = t.inflight.(i)
let completed t i = t.completed.(i)

let assign t =
  let pick =
    match t.policy with
    | Round_robin ->
        let rec scan k =
          if k = t.n then None
          else
            let i = (t.cursor + k) mod t.n in
            if t.up.(i) then Some i else scan (k + 1)
        in
        let r = scan 0 in
        (match r with Some i -> t.cursor <- (i + 1) mod t.n | None -> ());
        r
    | Least_connections ->
        (* Deterministic tie-break: fewest in flight, then fewest ever
           assigned, then lowest id — without the second key, a
           strictly sequential assign/complete load would pin every
           request to node 0. *)
        let best = ref None in
        for i = 0 to t.n - 1 do
          if t.up.(i) then
            match !best with
            | None -> best := Some i
            | Some j ->
                if
                  (t.inflight.(i), t.assigned.(i), i)
                  < (t.inflight.(j), t.assigned.(j), j)
                then best := Some i
        done;
        !best
  in
  (match pick with
  | Some i ->
      t.inflight.(i) <- t.inflight.(i) + 1;
      t.assigned.(i) <- t.assigned.(i) + 1
  | None -> ());
  pick

let complete t i =
  if t.inflight.(i) <= 0 then invalid_arg "Lb.complete: nothing in flight";
  t.inflight.(i) <- t.inflight.(i) - 1;
  t.completed.(i) <- t.completed.(i) + 1
