(* N nodes wired NIC-to-NIC through a software switch.

   Each node keeps its classic harness wire (the per-machine
   [Machine.remote_nic] pair the load generator speaks on) untouched —
   that wire's frame format and charges are golden-pinned.  Fabric
   traffic rides a second, dedicated [Nic.pair] per node: the near end
   is handed to the node's netstack ([Netstack.attach_fabric]), the far
   end is the switch port.  The switch itself is zero-cost plain code;
   wire time is charged by each fabric NIC on transmit, exactly like
   the harness wire.

   The switch is stateless: connection ids are globally unique in the
   process (kernel-outbound ids and harness ids draw from disjoint
   counters), so forwarding needs only the 4-byte destination-node
   header, which it rewrites to the source node in flight. *)

type mixed_stats = { postmark_tx : int; ssh_ok : bool }

type node_state = {
  mutable node : Node.t;
  mutable switch_port : Nic.t;
  stats : Obs_stats.t;  (* accumulates across restarts *)
  security : string list ref;  (* cleared on restart: a re-imaged node is clean *)
  mutable restarts : int;
  mutable last_mixed : mixed_stats option;
  mutable pending_mixed : (unit -> mixed_stats) option;
}

type t = {
  config : Node_config.t;
  lb : Lb.t;
  nodes : node_state array;
  wire_log : Buffer.t;  (* every frame the switch forwarded, verbatim *)
  mutable listening : int list;
  mutable www_files : (string * bytes) list;
}

let size t = Array.length t.nodes
let node t i = t.nodes.(i).node
let lb t = t.lb
let node_stats t i = t.nodes.(i).stats
let security_events t i = List.rev !(t.nodes.(i).security)
let restarts t i = t.nodes.(i).restarts
let last_mixed t i = t.nodes.(i).last_mixed

let security_sink cell =
  {
    Obs.name = "fleet-security";
    on_charge = (fun ~cycles:_ _ _ -> ());
    on_event =
      (fun ~cycles:_ ev ->
        if Obs.Event.is_security ev then cell := Obs.Event.describe ev :: !cell);
  }

(* Forward everything queued on any switch port.  Runs from every
   node's [Netstack.poll], so frames route whenever any kernel looks
   at its network. *)
let pump t =
  Array.iteri
    (fun src st ->
      let continue = ref true in
      while !continue do
        match Nic.receive st.switch_port with
        | None -> continue := false
        | Some raw ->
            if Bytes.length raw > 4 then begin
              let dst = Int32.to_int (Bytes.get_int32_le raw 0) in
              if dst >= 0 && dst < Array.length t.nodes then begin
                Buffer.add_bytes t.wire_log raw;
                Bytes.set_int32_le raw 0 (Int32.of_int src);
                Nic.transmit t.nodes.(dst).switch_port raw
              end
            end
      done)
    t.nodes

let per_node_config t i obs =
  t.config
  |> Node_config.with_seed
       (Printf.sprintf "%s-n%d" t.config.Node_config.seed i)
  |> Node_config.with_obs obs

(* (Re)wire node [i]'s fabric: fresh NIC pair, near end into the
   node's netstack, far end as our switch port.  Wire time charges the
   node's own clock, like its harness NIC. *)
let wire t i =
  let st = t.nodes.(i) in
  let m = Node.machine st.node in
  let near, far = Nic.pair ~charge:(Machine.charge ~tag:Obs.Tag.Net m) () in
  Netstack.attach_fabric (Node.net st.node) ~node:i near ~pump:(fun () -> pump t);
  st.switch_port <- far

let apply_node_setup t i =
  let st = t.nodes.(i) in
  List.iter
    (fun port ->
      match Node.listen st.node ~port with Ok () | Error _ -> ())
    (List.rev t.listening);
  List.iter
    (fun (path, data) ->
      match Node.www st.node ~path data with Ok () | Error _ -> ())
    (List.rev t.www_files)

let create ?(policy = Lb.Round_robin) ~nodes:n config =
  if n < 1 then invalid_arg "Fleet.create: nodes < 1";
  let mk_state i =
    let stats = Obs_stats.create () in
    let security = ref [] in
    let obs = Obs.create () in
    Obs.attach obs (Obs_stats.sink stats);
    Obs.attach obs (security_sink security);
    let cfg =
      config
      |> Node_config.with_seed
           (Printf.sprintf "%s-n%d" config.Node_config.seed i)
      |> Node_config.with_obs obs
    in
    let node = Node.boot ~id:i cfg in
    let dummy, _ = Nic.pair () in
    {
      node;
      switch_port = dummy;
      stats;
      security;
      restarts = 0;
      last_mixed = None;
      pending_mixed = None;
    }
  in
  let t =
    {
      config;
      lb = Lb.create ~nodes:n policy;
      nodes = Array.init n mk_state;
      wire_log = Buffer.create 4096;
      listening = [];
      www_files = [];
    }
  in
  Array.iteri (fun i _ -> wire t i) t.nodes;
  t

let restart_node t i =
  let st = t.nodes.(i) in
  Lb.set_up t.lb i false;
  let obs = Obs.create () in
  Obs.attach obs (Obs_stats.sink st.stats);
  st.security := [];
  Obs.attach obs (security_sink st.security);
  st.node <- Node.boot ~id:i (per_node_config t i obs);
  st.restarts <- st.restarts + 1;
  wire t i;
  apply_node_setup t i;
  Lb.set_up t.lb i true

let listen_all t ~port =
  if not (List.mem port t.listening) then t.listening <- port :: t.listening;
  Array.iteri (fun i _ -> ignore (Node.listen t.nodes.(i).node ~port)) t.nodes

let setup_www t ~path data =
  t.www_files <- (path, data) :: t.www_files;
  Array.iter
    (fun st ->
      match Node.www st.node ~path data with Ok () | Error _ -> ())
    t.nodes

let mark_down t i = Lb.set_up t.lb i false
let readmit t i = Lb.set_up t.lb i true

(* Quarantine any node whose kernel raised Security events since its
   last clean boot; returns the quarantined ids with their event
   counts. *)
let check_health t =
  let bad = ref [] in
  Array.iteri
    (fun i st ->
      let events = List.length !(st.security) in
      if events > 0 && Lb.is_up t.lb i then begin
        Lb.set_up t.lb i false;
        bad := (i, events) :: !bad
      end)
    t.nodes;
  List.rev !bad

(* -------------------------------------------------------------- *)
(* Serving: one wave = assign every request through the balancer,
   pre-connect each client on its target node's harness wire, then run
   every node's event-loop server.  The nodes are separate machines
   running concurrently in wall time, so the wave's elapsed time is
   the slowest node's serving window. *)

type node_report = {
  node_id : int;
  assigned : int;
  served : int;
  ok : int;
  elapsed_cycles : int;
  security_events : int;
}

type wave = {
  requests : int;
  dropped : int;  (* no admitted node was available *)
  ok : int;
  elapsed_cycles : int;  (* max over serving nodes *)
  per_node : node_report array;
}

let wave_rps w =
  let s = Cost.to_seconds w.elapsed_cycles in
  if s > 0.0 then float_of_int w.ok /. s else 0.0

let report_rps (r : node_report) =
  let s = Cost.to_seconds r.elapsed_cycles in
  if s > 0.0 then float_of_int r.ok /. s else 0.0

(* Mixed load sharing the serving scheduler: a ghosting Postmark fiber
   plus an ssh-keygen/load round through the signed-image app-key
   chain, per node. *)
let mixed_background t i sched =
  let st = t.nodes.(i) in
  let k = Node.kernel st.node in
  let pm_tx = ref 0 and ssh_ok = ref false in
  let app_key = Bytes.init 16 (fun j -> Char.chr (0x5a lxor j)) in
  let _ssh, keygen_img, _agent = Ssh_suite.install_images k ~app_key in
  let pm_config =
    { Postmark.paper_config with base_files = 8; transactions = 40; seed = 11 }
  in
  ignore
    (Runtime.spawn_fiber k sched ~ghosting:true ~name:"fleet-postmark"
       (fun ctx ->
         match Postmark.run ctx pm_config with
         | Ok _ -> pm_tx := pm_config.Postmark.transactions
         | Error _ -> ()));
  ignore
    (Runtime.spawn_fiber k sched ~image:keygen_img ~ghosting:true
       ~name:"fleet-keygen" (fun ctx ->
         match Ssh_suite.keygen ctx ~path:"/fleet-key" with
         | Error _ -> ()
         | Ok () -> (
             match Ssh_suite.load_private_key ctx ~path:"/fleet-key" with
             | Ok _ -> ssh_ok := true
             | Error _ -> ())));
  st.pending_mixed <-
    Some (fun () -> { postmark_tx = !pm_tx; ssh_ok = !ssh_ok })

let http_ok raw =
  let s = Bytes.to_string raw in
  String.length s >= 12 && String.sub s 9 3 = "200"

let serve_wave ?(batch = 8) ?(mixed = false) t ~port ~path ~requests =
  let n = Array.length t.nodes in
  let eps = Array.make n [] in
  let assigned = Array.make n 0 in
  let dropped = ref 0 in
  for _ = 1 to requests do
    match Lb.assign t.lb with
    | None -> incr dropped
    | Some i ->
        assigned.(i) <- assigned.(i) + 1;
        let m = Node.machine t.nodes.(i).node in
        Machine.charge m Cost.tcp_handshake;
        let ep = Netstack.Remote.connect (Machine.remote_nic m) ~port in
        Netstack.Remote.send ep
          (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
        eps.(i) <- ep :: eps.(i)
  done;
  let per_node =
    Array.mapi
      (fun i st ->
        let base_security = List.length !(st.security) in
        if assigned.(i) = 0 then
          {
            node_id = i;
            assigned = 0;
            served = 0;
            ok = 0;
            elapsed_cycles = 0;
            security_events = base_security;
          }
        else begin
          let stats =
            Httpd.Event_loop.serve ~batch
              ?sfip:t.config.Node_config.sfip
              ?background:
                (if mixed then Some (fun sched -> mixed_background t i sched)
                 else None)
              (Node.kernel st.node) ~port
          in
          (match st.pending_mixed with
          | None -> ()
          | Some collect ->
              st.last_mixed <- Some (collect ());
              st.pending_mixed <- None);
          let ok =
            List.fold_left
              (fun acc ep ->
                let raw = Netstack.Remote.recv_all_available ep in
                Netstack.Remote.close ep;
                if http_ok raw then acc + 1 else acc)
              0 eps.(i)
          in
          for _ = 1 to assigned.(i) do
            Lb.complete t.lb i
          done;
          {
            node_id = i;
            assigned = assigned.(i);
            served = stats.Httpd.Event_loop.served;
            ok;
            elapsed_cycles = stats.Httpd.Event_loop.elapsed_cycles;
            security_events = List.length !(st.security);
          }
        end)
      t.nodes
  in
  let ok =
    Array.fold_left (fun acc (r : node_report) -> acc + r.ok) 0 per_node
  in
  let elapsed =
    Array.fold_left
      (fun acc (r : node_report) -> max acc r.elapsed_cycles)
      0 per_node
  in
  { requests; dropped = !dropped; ok; elapsed_cycles = elapsed; per_node }

(* -------------------------------------------------------------- *)
(* Rolling restart: for each node in turn, let the balancer assign a
   full wave (the node's share becomes its in-flight work), stop
   admitting new work to it, let it finish — nothing in flight is
   dropped — then reboot and re-admit it.  The drain latency is the
   time the node took to clear its in-flight backlog. *)

type restart_report = {
  waves : wave list;  (* one per drained node, then one full-strength *)
  total_requests : int;
  total_ok : int;
  total_dropped : int;
  drain_latency_cycles : int array;
}

let rolling_restart ?(batch = 8) t ~port ~path ~requests_per_wave =
  let n = Array.length t.nodes in
  let drain = Array.make n 0 in
  let waves = ref [] in
  for r = 0 to n - 1 do
    (* Assignment happens inside serve_wave; mark the node as draining
       only for *future* waves — its current assignments are the
       in-flight work it must finish.  serve_wave assigns before any
       node serves, so drain the node right after by serving with it
       marked down for admission but still completing its batch. *)
    let wave = serve_wave ~batch t ~port ~path ~requests:requests_per_wave in
    drain.(r) <- wave.per_node.(r).elapsed_cycles;
    restart_node t r;
    waves := wave :: !waves
  done;
  let final = serve_wave ~batch t ~port ~path ~requests:requests_per_wave in
  waves := final :: !waves;
  let waves = List.rev !waves in
  {
    waves;
    total_requests = List.fold_left (fun a w -> a + w.requests) 0 waves;
    total_ok = List.fold_left (fun a w -> a + w.ok) 0 waves;
    total_dropped = List.fold_left (fun a w -> a + w.dropped) 0 waves;
    drain_latency_cycles = drain;
  }

(* -------------------------------------------------------------- *)
(* Cross-node key distribution over the fabric.

   Both nodes' ssh images carry the same application key — the
   trusted-administrator provisioning step of the paper's TPM→VG→app
   chain; each process recovers it through the VM at execve
   ([Runtime.get_app_key]), never through the OS.  The holder node
   generates an authentication key (sealed on its disk), serves it
   over the fabric inside a [Ctr.seal] envelope under the app key, and
   the receiving node re-seals it at rest through [Sealed_store].  The
   switch's wire log lets callers verify the key's plaintext never
   crossed the fabric. *)

type key_transfer = {
  delivered : bool;
  key_len : int;
  plaintext_on_wire : bool;
  sealed_at_rest : bool;
  reload_ok : bool;
}

let bytes_contains hay needle =
  let nh = Bytes.length hay and nn = Bytes.length needle in
  if nn = 0 || nn > nh then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= nh - nn do
      if Bytes.sub hay !i nn = needle then found := true else incr i
    done;
    !found
  end

let wire_log_contains t needle = bytes_contains (Buffer.to_bytes t.wire_log) needle

let distribute_key ?(port = 2022) ?(path = "/fleet-id") t ~src ~dst =
  let src_node = t.nodes.(src).node and dst_node = t.nodes.(dst).node in
  let ks = Node.kernel src_node and kd = Node.kernel dst_node in
  let app_key = Bytes.init 16 (fun i -> Char.chr (0xa0 lxor (i * 7 land 0xff))) in
  let ssh_src, keygen_src, _ = Ssh_suite.install_images ks ~app_key in
  let ssh_dst, _, _ = Ssh_suite.install_images kd ~app_key in
  (* 1. The holder generates its authentication key (sealed at rest). *)
  Node.launch src_node ~image:keygen_src ~ghosting:true (fun ctx ->
      match Ssh_suite.keygen ctx ~path with
      | Ok () -> ()
      | Error e -> failwith ("fleet keygen: " ^ Errno.to_string e));
  let sent_key = ref Bytes.empty in
  let recv_key = ref Bytes.empty in
  let server () =
    Node.launch src_node ~image:ssh_src ~ghosting:true (fun ctx ->
        let proc = ctx.Runtime.proc in
        let listen_fd =
          match Syscalls.listen ks proc ~port with
          | Ok fd -> fd
          | Error e -> failwith ("fleet listen: " ^ Errno.to_string e)
        in
        let key =
          match Ssh_suite.load_private_key ctx ~path with
          | Ok (va, len) -> Runtime.peek ctx va len
          | Error e -> failwith ("fleet load key: " ^ e)
        in
        sent_key := key;
        let conn_fd =
          Coop.retry (fun () ->
              match Syscalls.accept ks proc ~fd:listen_fd with
              | Ok fd -> Some fd
              | Error Errno.EAGAIN -> None
              | Error e -> failwith ("fleet accept: " ^ Errno.to_string e))
        in
        let nonce = Runtime.vg_random ctx 8 in
        let sealed =
          Vg_crypto.Ctr.seal ~key:(Option.get (Runtime.get_app_key ctx)) ~nonce
            key
        in
        let msg =
          Bytes.concat Bytes.empty
            [
              (let b = Bytes.create 4 in
               Bytes.set_int32_le b 0 (Int32.of_int (Bytes.length key));
               b);
              nonce;
              sealed;
            ]
        in
        let buf = Runtime.galloc ctx (Bytes.length msg) in
        Runtime.poke ctx buf msg;
        (match Runtime.sys_send ctx ~fd:conn_fd ~buf ~len:(Bytes.length msg) with
        | Ok _ -> ()
        | Error e -> failwith ("fleet send: " ^ Errno.to_string e));
        ignore (Runtime.sys_close ctx conn_fd))
  in
  let client () =
    Node.launch dst_node ~image:ssh_dst ~ghosting:true (fun ctx ->
        let proc = ctx.Runtime.proc in
        let fd =
          match
            Syscalls.connect_to kd proc (Netstack.Peer { node = src; port })
          with
          | Ok fd -> fd
          | Error e -> failwith ("fleet connect: " ^ Errno.to_string e)
        in
        let buf = Runtime.galloc ctx 4096 in
        let received = Buffer.create 256 in
        let want_header = 12 in
        let rec recv_until want =
          if Buffer.length received < want then begin
            (match Runtime.sys_recv ctx ~fd ~buf ~len:4096 with
            | Ok 0 -> failwith "fleet recv: peer closed early"
            | Ok got -> Buffer.add_bytes received (Runtime.peek ctx buf got)
            | Error Errno.EAGAIN -> Coop.yield ()
            | Error e -> failwith ("fleet recv: " ^ Errno.to_string e));
            recv_until want
          end
        in
        recv_until want_header;
        let hdr = Buffer.to_bytes received in
        let key_len = Int32.to_int (Bytes.get_int32_le hdr 0) in
        let total = 4 + 8 + key_len + Vg_crypto.Ctr.tag_size in
        recv_until total;
        let all = Buffer.to_bytes received in
        let nonce = Bytes.sub all 4 8 in
        let sealed = Bytes.sub all 12 (key_len + Vg_crypto.Ctr.tag_size) in
        let key =
          match
            Vg_crypto.Ctr.open_
              ~key:(Option.get (Runtime.get_app_key ctx))
              ~nonce sealed
          with
          | Some k -> k
          | None -> failwith "fleet: transfer envelope tampered"
        in
        recv_key := key;
        (match Sealed_store.save ctx ~path:(path ^ ".imported") key with
        | Ok () -> ()
        | Error e ->
            failwith
              (Format.asprintf "fleet sealed save: %a" Sealed_store.pp_error e));
        ignore (Runtime.sys_close ctx fd))
  in
  Coop.interleave [ server; client ];
  let delivered =
    Bytes.length !sent_key > 0 && Bytes.equal !sent_key !recv_key
  in
  let plaintext_on_wire = wire_log_contains t !sent_key in
  let sealed_at_rest =
    match Diskfs.lookup kd.Kernel.fs (path ^ ".imported") with
    | Error _ -> false
    | Ok ino -> (
        match Diskfs.stat kd.Kernel.fs ~ino with
        | Error _ -> false
        | Ok st -> (
            match Diskfs.read kd.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size with
            | Error _ -> false
            | Ok raw -> not (bytes_contains raw !sent_key)))
  in
  let reload_ok =
    Node.launch dst_node ~image:ssh_dst ~ghosting:true (fun ctx ->
        match Sealed_store.load ctx ~path:(path ^ ".imported") with
        | Ok k -> Bytes.equal k !sent_key
        | Error _ -> false)
  in
  {
    delivered;
    key_len = Bytes.length !sent_key;
    plaintext_on_wire;
    sealed_at_rest;
    reload_ok;
  }
