(* One record replaces the optional-argument sprawl of
   [Machine.create] + [Kernel.boot].  Every default here is the
   corresponding historical default, so [Node.boot default] is
   cycle-identical to the bare two-call boot — golden-pinned by
   test/fleet. *)

type t = {
  cpus : int;
  phys_frames : int;
  disk_sectors : int;
  spec_depth : int;
  seed : string;
  obs : Obs.t option;
  mode : Sva.mode;
  engine : Vg_compiler.Exec_engine.t;
  spec_mitigation : Vg_compiler.Mitigation.t;
  frame_limit : int option;
  sfip : Syscall_policy.t option;
}

let default =
  {
    cpus = 1;
    phys_frames = 32768;
    disk_sectors = 65536;
    spec_depth = 0;
    seed = "node";
    obs = None;
    mode = Sva.Virtual_ghost;
    engine = Vg_compiler.Exec_engine.Slots;
    spec_mitigation = Vg_compiler.Mitigation.Off;
    frame_limit = None;
    sfip = None;
  }

let with_cpus cpus t = { t with cpus }
let with_phys_frames phys_frames t = { t with phys_frames }
let with_disk_sectors disk_sectors t = { t with disk_sectors }
let with_spec_depth spec_depth t = { t with spec_depth }
let with_seed seed t = { t with seed }
let with_obs obs t = { t with obs = Some obs }
let with_mode mode t = { t with mode }
let with_engine engine t = { t with engine }
let with_spec_mitigation spec_mitigation t = { t with spec_mitigation }
let with_frame_limit limit t = { t with frame_limit = Some limit }
let with_sfip sfip t = { t with sfip = Some sfip }

let create_machine t =
  Machine.create ~cpus:t.cpus ~phys_frames:t.phys_frames
    ~disk_sectors:t.disk_sectors ?obs:t.obs ~spec_depth:t.spec_depth
    ~seed:t.seed ()

let describe t =
  Printf.sprintf "%s cpus=%d frames=%d depth=%d engine=%s mitigation=%s%s"
    (match t.mode with
    | Sva.Native_build -> "native"
    | Sva.Virtual_ghost -> "vg")
    t.cpus t.phys_frames t.spec_depth
    (Vg_compiler.Exec_engine.to_string t.engine)
    (Vg_compiler.Mitigation.to_string t.spec_mitigation)
    (match t.frame_limit with
    | None -> ""
    | Some l -> Printf.sprintf " frame_limit=%d" l)
