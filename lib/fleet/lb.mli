(** The fleet front-end's balancing policy: pure bookkeeping, no
    machine state.  Both policies are deterministic — ties break
    toward the lowest node id — so fleet runs replay exactly. *)

type policy = Round_robin | Least_connections

val policy_to_string : policy -> string
val policy_of_string : string -> policy option

type t

val create : nodes:int -> policy -> t
val nodes : t -> int
val policy : t -> policy

val set_up : t -> int -> bool -> unit
(** Admit ([true]) or drain ([false]) a node: a drained node gets no
    new assignments but keeps its in-flight count until
    {!complete}d. *)

val is_up : t -> int -> bool
val up_count : t -> int

val assign : t -> int option
(** Pick a node for one request ([None] when every node is drained)
    and account it as in flight. *)

val complete : t -> int -> unit
(** A request assigned to this node finished. *)

val assigned : t -> int -> int
(** Requests ever assigned to the node. *)

val inflight : t -> int -> int
val completed : t -> int -> int
