(* Harness-side cooperative interleaving.

   Each fleet node has its own kernel and its own [Sched]; nothing in
   the tree can run two kernels' application code "at the same time".
   For cross-node protocols (the key-distribution scenario: a server
   process on node A talking to a client process on node B) the
   harness needs exactly that, so this module round-robins plain
   thunks with explicit yield points, using the same one-shot effect
   machinery as [Sched] but entirely outside any kernel. *)

type _ Effect.t += Yield : unit Effect.t

let yield () =
  (* Tolerate calls outside [interleave]: a body written for the fleet
     still runs standalone, where yielding is a no-op. *)
  try Effect.perform Yield with Effect.Unhandled Yield -> ()

let interleave bodies =
  let open Effect.Deep in
  let runnable : (unit -> unit) Queue.t = Queue.create () in
  List.iter
    (fun body ->
      Queue.push
        (fun () ->
          match_with body ()
            {
              retc = (fun () -> ());
              exnc = raise;
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Yield ->
                      Some
                        (fun (k : (a, _) continuation) ->
                          Queue.push (fun () -> continue k ()) runnable)
                  | _ -> None);
            })
        runnable)
    bodies;
  while not (Queue.is_empty runnable) do
    (Queue.pop runnable) ()
  done

let retry ?(max_tries = 100_000) step =
  let rec go tries =
    match step () with
    | Some v -> v
    | None ->
        if tries >= max_tries then failwith "Coop.retry: no progress";
        yield ();
        go (tries + 1)
  in
  go 0
