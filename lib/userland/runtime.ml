type ctx = {
  kernel : Kernel.t;
  proc : Proc.t;
  ghosting : bool;
  mutable normal_pc : int64;
  mutable heap_cursor : int64;
  mutable heap_end : int64;
  mutable traditional_cursor : int64;
  mutable next_code_addr : int64;
  bounce : int64;
  mutable crashed : string option;
}

exception App_crash of string

let ghost_heap_base = Int64.add Layout.ghost_start 0x1000_0000L
let traditional_heap_base = 0x0000_0000_0100_0000L
let code_base = 0x0000_0000_0041_0000L
let bounce_bytes = 65536

(* ------------------------------------------------------------------ *)
(* User memory access with demand paging                               *)

let as_user ctx f =
  Kernel.switch_to ctx.kernel ctx.proc;
  let machine = ctx.kernel.Kernel.machine in
  Machine.set_privilege machine Machine.User;
  Fun.protect ~finally:(fun () -> Machine.set_privilege machine Machine.Kernel) f

(* Fault resolution: ghost addresses may be swapped out (brought back
   through the VM's sealed path); ordinary user addresses demand-page
   or resolve copy-on-write. *)
let service_fault ctx fault_va =
  if Layout.in_ghost fault_va then Ghost_swap.fault_in ctx.kernel ctx.proc fault_va
  else begin
    (* Traditional demand paging draws from the global allocator; under
       ghost memory pressure refill it by evicting sealed ghost pages. *)
    if Frame_alloc.free_count ctx.kernel.Kernel.frames = 0 then
      Ghost_swap.ensure_free ctx.kernel ~wanted:1;
    Kernel.handle_page_fault ctx.kernel ctx.proc fault_va
  end

let rec poke ctx va data =
  try as_user ctx (fun () -> Machine.write_bytes_virt ctx.kernel.Kernel.machine va data)
  with Machine.Page_fault { va = fault_va; _ } -> (
    match service_fault ctx fault_va with
    | Ok () -> poke ctx va data
    | Error e -> raise (App_crash ("segmentation fault: " ^ Errno.to_string e)))

let rec peek ctx va len =
  try as_user ctx (fun () -> Machine.read_bytes_virt ctx.kernel.Kernel.machine va ~len)
  with Machine.Page_fault { va = fault_va; _ } -> (
    match service_fault ctx fault_va with
    | Ok () -> peek ctx va len
    | Error e -> raise (App_crash ("segmentation fault: " ^ Errno.to_string e)))

let rec user_memcpy ctx ~dst ~src ~len =
  try as_user ctx (fun () -> Machine.memcpy_virt ctx.kernel.Kernel.machine ~dst ~src ~len)
  with Machine.Page_fault { va = fault_va; _ } -> (
    match service_fault ctx fault_va with
    | Ok () -> user_memcpy ctx ~dst ~src ~len
    | Error e -> raise (App_crash ("segmentation fault: " ^ Errno.to_string e)))

(* ------------------------------------------------------------------ *)
(* Allocators                                                          *)

let align8 n = (n + 7) / 8 * 8

let ualloc ctx n =
  let va = ctx.traditional_cursor in
  ctx.traditional_cursor <- Int64.add va (Int64.of_int (align8 n));
  va

let ghost_grow_pages = 16

let galloc ctx n =
  if not ctx.ghosting then ualloc ctx n
  else begin
    let needed = align8 n in
    let remaining = Int64.to_int (Int64.sub ctx.heap_end ctx.heap_cursor) in
    if remaining < needed then begin
      let pages = max ghost_grow_pages ((needed + 4095) / 4096) in
      (match Syscalls.allocgm ctx.kernel ctx.proc ~va:ctx.heap_end ~pages with
      | Ok () -> ctx.heap_end <- Int64.add ctx.heap_end (Int64.of_int (pages * 4096))
      | Error e -> raise (App_crash ("ghost malloc failed: " ^ Errno.to_string e)))
    end;
    let va = ctx.heap_cursor in
    ctx.heap_cursor <- Int64.add va (Int64.of_int needed);
    va
  end

let register_code ctx f =
  let addr = ctx.next_code_addr in
  ctx.next_code_addr <- Int64.add addr 0x100L;
  Hashtbl.replace ctx.proc.Proc.code_map addr (fun arg -> f ctx arg);
  addr

(* ------------------------------------------------------------------ *)
(* Launch                                                              *)

let make kernel proc ~ghosting ~normal_pc =
  let ctx =
    {
      kernel;
      proc;
      ghosting;
      normal_pc;
      heap_cursor = ghost_heap_base;
      heap_end = ghost_heap_base;
      traditional_cursor = traditional_heap_base;
      next_code_addr = code_base;
      bounce = 0L;
      crashed = None;
    }
  in
  (* The bounce buffer is ordinary anonymous memory from mmap. *)
  match Syscalls.mmap kernel proc ~len:bounce_bytes with
  | Ok va -> { ctx with bounce = va }
  | Error e -> raise (App_crash ("runtime init: " ^ Errno.to_string e))

(* The [?sfip] policy argument is a template: each process gets its
   own cursor over the (possibly shared) graph, so a worker pool
   recording into one accumulator composes, and Record/Enforce runs
   observe identical sequences (both start counting right here, after
   execve and before the runtime's own init mmap). *)
let attach_sfip proc = function
  | None -> ()
  | Some pol ->
      proc.Proc.policy <-
        Some (Syscall_policy.create (Syscall_policy.mode pol) (Syscall_policy.graph pol))

let launch kernel ?image ?sfip ~ghosting body =
  let init = Kernel.init_process kernel in
  match Kernel.create_process kernel ~parent:init with
  | Error e -> raise (App_crash ("launch: " ^ Errno.to_string e))
  | Ok proc -> (
      (match image with
      | Some image -> (
          match Syscalls.execve kernel proc image with
          | Ok () -> ()
          | Error e -> raise (App_crash ("execve: " ^ Errno.to_string e)))
      | None -> ());
      attach_sfip proc sfip;
      let normal_pc =
        (Sva.thread_icontext kernel.Kernel.sva ~tid:proc.Proc.tid).Icontext.pc
      in
      let ctx = make kernel proc ~ghosting ~normal_pc in
      Fun.protect
        ~finally:(fun () ->
          if not (Proc.is_zombie proc) then Syscalls.exit_ kernel proc 0;
          match Syscalls.wait kernel init with Ok _ | Error _ -> ())
        (fun () -> body ctx))

(* Like [launch], but as a scheduler fiber: the process is created now
   (so callers can set it up — e.g. inherit a listening socket) and the
   body runs when the scheduler dispatches the fiber, preemptible at
   every syscall.  Exit and reaping happen when the body finishes. *)
let spawn_fiber kernel sched ?cpu ?image ?sfip ~ghosting ~name body =
  let init = Kernel.init_process kernel in
  match Kernel.create_process kernel ~parent:init with
  | Error e -> raise (App_crash ("spawn_fiber: " ^ Errno.to_string e))
  | Ok proc ->
      Sched.spawn sched ?cpu ~name proc (fun () ->
          (match image with
          | Some image -> (
              match Syscalls.execve kernel proc image with
              | Ok () -> ()
              | Error e -> raise (App_crash ("execve: " ^ Errno.to_string e)))
          | None -> ());
          attach_sfip proc sfip;
          let normal_pc =
            (Sva.thread_icontext kernel.Kernel.sva ~tid:proc.Proc.tid).Icontext.pc
          in
          let ctx = make kernel proc ~ghosting ~normal_pc in
          Fun.protect
            ~finally:(fun () ->
              (* Preemption is disabled across teardown: once [exit_]
                 frees the SVA thread, the fiber must not be requeued
                 (there is nothing left to switch to). *)
              let saved = kernel.Kernel.preempt in
              kernel.Kernel.preempt <- (fun () -> ());
              Fun.protect
                ~finally:(fun () -> kernel.Kernel.preempt <- saved)
                (fun () ->
                  if not (Proc.is_zombie proc) then Syscalls.exit_ kernel proc 0;
                  ignore (Kernel.reap_zombie kernel ~parent:init.Proc.pid)))
            (fun () -> body ctx));
      proc

let in_child parent child_proc body =
  let ctx =
    {
      parent with
      proc = child_proc;
      crashed = None;
    }
  in
  body ctx

(* ------------------------------------------------------------------ *)
(* Syscall wrappers                                                    *)

let sys_open ctx path flags = Syscalls.open_ ctx.kernel ctx.proc path flags
let sys_close ctx fd = Syscalls.close ctx.kernel ctx.proc fd

let is_ghost_ptr va = Layout.in_ghost va

let sys_write ctx ~fd ~src ~len =
  if ctx.ghosting && is_ghost_ptr src then begin
    (* The kernel cannot see ghost memory: bounce through traditional
       memory in chunks. *)
    let written = ref 0 and result = ref (Ok 0) in
    (try
       while !written < len do
         let chunk = min bounce_bytes (len - !written) in
         user_memcpy ctx ~dst:ctx.bounce
           ~src:(Int64.add src (Int64.of_int !written))
           ~len:chunk;
         match Syscalls.write ctx.kernel ctx.proc ~fd ~buf:ctx.bounce ~len:chunk with
         | Ok n ->
             written := !written + n;
             if n < chunk then raise Exit
         | Error _ as e ->
             result := e;
             raise Exit
       done
     with Exit -> ());
    match !result with Error _ as e when !written = 0 -> e | _ -> Ok !written
  end
  else Syscalls.write ctx.kernel ctx.proc ~fd ~buf:src ~len

let sys_read ctx ~fd ~dst ~len =
  if ctx.ghosting && is_ghost_ptr dst then begin
    let red = ref 0 and result = ref (Ok 0) in
    (try
       while !red < len do
         let chunk = min bounce_bytes (len - !red) in
         match Syscalls.read ctx.kernel ctx.proc ~fd ~buf:ctx.bounce ~len:chunk with
         | Ok 0 -> raise Exit
         | Ok n ->
             user_memcpy ctx ~dst:(Int64.add dst (Int64.of_int !red)) ~src:ctx.bounce
               ~len:n;
             red := !red + n;
             if n < chunk then raise Exit
         | Error _ as e ->
             result := e;
             raise Exit
       done
     with Exit -> ());
    match !result with Error _ as e when !red = 0 -> e | _ -> Ok !red
  end
  else Syscalls.read ctx.kernel ctx.proc ~fd ~buf:dst ~len

(* Sockets move bytes with the same masked-copyout rules as files: a
   ghost destination needs the bounce buffer, or the kernel's write is
   silently dropped. *)
let sys_recv ctx ~fd ~buf ~len =
  if ctx.ghosting && is_ghost_ptr buf then begin
    let chunk = min bounce_bytes len in
    match Syscalls.recv ctx.kernel ctx.proc ~fd ~buf:ctx.bounce ~len:chunk with
    | Ok n when n > 0 ->
        user_memcpy ctx ~dst:buf ~src:ctx.bounce ~len:n;
        Ok n
    | r -> r
  end
  else Syscalls.recv ctx.kernel ctx.proc ~fd ~buf ~len

let sys_send ctx ~fd ~buf ~len =
  if ctx.ghosting && is_ghost_ptr buf then begin
    let chunk = min bounce_bytes len in
    user_memcpy ctx ~dst:ctx.bounce ~src:buf ~len:chunk;
    Syscalls.send ctx.kernel ctx.proc ~fd ~buf:ctx.bounce ~len:chunk
  end
  else Syscalls.send ctx.kernel ctx.proc ~fd ~buf ~len

let write_string ctx ~fd s =
  let va = galloc ctx (String.length s) in
  poke ctx va (Bytes.of_string s);
  sys_write ctx ~fd ~src:va ~len:(String.length s)

let read_string ctx ~fd ~max =
  let va = galloc ctx max in
  match sys_read ctx ~fd ~dst:va ~len:max with
  | Ok n -> Ok (Bytes.to_string (peek ctx va n))
  | Error err -> Error err

let sys_mmap ctx ~len =
  match Syscalls.mmap ctx.kernel ctx.proc ~len with
  | Ok va ->
      (* Ghosting applications are compiled with the Iago-defence pass:
         a hostile kernel cannot trick them into writing through a
         pointer into their own ghost memory. *)
      if ctx.ghosting then begin
        let masked = Vg_compiler.Mmap_mask_pass.masked_return va in
        (* The mask only changes pointers that aimed into the ghost
           partition — i.e. an Iago attack the pass just defused. *)
        if masked <> va then
          Machine.emit ctx.kernel.Kernel.machine
            (Obs.Event.Security
               {
                 subsystem = "iago-mask";
                 detail =
                   Printf.sprintf "mmap returned ghost pointer %s, masked to %s"
                     (U64.to_hex va) (U64.to_hex masked);
               });
        Ok masked
      end
      else Ok va
  | Error _ as e -> e

let sys_signal ctx ~signum handler =
  let addr = register_code ctx handler in
  (* Wrapper behaviour from the paper: register the handler address as
     a permitted dispatch target before telling the kernel. *)
  Sva.permit_function ctx.kernel.Kernel.sva ~pid:ctx.proc.Proc.pid addr;
  Syscalls.signal ctx.kernel ctx.proc ~signum ~handler:addr

let sys_kill ctx ~pid ~signum = Syscalls.kill ctx.kernel ctx.proc ~pid ~signum

let check_signals ctx =
  let budget = ref 16 in
  let continue = ref true in
  while !continue do
    decr budget;
    if !budget < 0 then raise (App_crash "signal dispatch loop");
    let ic = Sva.thread_icontext ctx.kernel.Kernel.sva ~tid:ctx.proc.Proc.tid in
    if ic.Icontext.pc = ctx.normal_pc then continue := false
    else begin
      match Hashtbl.find_opt ctx.proc.Proc.code_map ic.Icontext.pc with
      | None ->
          ctx.crashed <- Some (U64.to_hex ic.Icontext.pc);
          raise
            (App_crash
               (Printf.sprintf "resumed at %s which holds no code"
                  (U64.to_hex ic.Icontext.pc)))
      | Some code ->
          code ic.Icontext.gprs.(0);
          (match Syscalls.sigreturn ctx.kernel ctx.proc with
          | Ok () -> ()
          | Error _ ->
              (* No pushed context: this was a hijack, not a signal. *)
              ctx.crashed <- Some "hijacked context";
              raise (App_crash "no saved context to return to (hijack)"))
    end
  done

let get_app_key ctx = Sva.get_app_key ctx.kernel.Kernel.sva ~pid:ctx.proc.Proc.pid
let vg_random ctx n = Sva.random_bytes ctx.kernel.Kernel.sva n
