(** The userland runtime: what the modified C library plus the system-
    call wrapper library give a process in the paper.

    A {!ctx} represents one running program.  Its memory truly lives in
    the simulated machine (in the process's page table, at user
    privilege); OCaml closures are the program text, registered at
    code addresses in the process's [code_map] so that control transfers
    chosen by the kernel (signal dispatch, context hijacks) execute
    whatever sits at the chosen address — including injected exploit
    code under a hostile native kernel.

    When [ghosting] is set the runtime behaves like a program compiled
    for Virtual Ghost and linked against the wrapper library:
    - the heap allocator places objects in ghost memory ([allocgm]);
    - system-call wrappers bounce data through traditional memory;
    - [mmap] results pass the Iago bit-mask
      ({!Vg_compiler.Mmap_mask_pass.masked_return});
    - [signal] registers handlers with the VM before telling the
      kernel. *)

type ctx = {
  kernel : Kernel.t;
  proc : Proc.t;
  ghosting : bool;
  mutable normal_pc : int64;  (** pc when no handler is pending *)
  mutable heap_cursor : int64;
  mutable heap_end : int64;
  mutable traditional_cursor : int64;
  mutable next_code_addr : int64;
  bounce : int64;  (** traditional scratch for wrapper copies *)
  mutable crashed : string option;
}

exception App_crash of string
(** The process "took a SIGSEGV": resumed at an address holding no
    code. *)

val launch :
  Kernel.t ->
  ?image:Appimage.t ->
  ?sfip:Syscall_policy.t ->
  ghosting:bool ->
  (ctx -> 'a) ->
  'a
(** Create a process (child of init), optionally [execve] a signed
    image into it, run the program body, then exit and reap the
    process.  [?sfip] attaches a syscall-flow policy: the process gets
    a fresh cursor over the given policy's graph (which may be shared
    — e.g. one [Record] accumulator across a pool), installed after
    [execve] so Record and Enforce runs observe identical sequences.
    An [?image] carrying its own embedded profile needs no [?sfip];
    passing one overrides the image's.
    @raise App_crash / Failure on launch errors. *)

val spawn_fiber :
  Kernel.t ->
  Sched.t ->
  ?cpu:int ->
  ?image:Appimage.t ->
  ?sfip:Syscall_policy.t ->
  ghosting:bool ->
  name:string ->
  (ctx -> unit) ->
  Proc.t
(** Like {!launch}, but as a {!Sched} fiber: the process is created
    immediately (so the caller can prepare it — e.g. inherit a
    listening socket via [Proc.add_fd]) and the body runs when the
    scheduler dispatches the fiber, preemptible at every syscall.
    Exit and reaping happen when the body returns. *)

val in_child : ctx -> Proc.t -> (ctx -> 'a) -> 'a
(** Build a context for a forked child and run its body (cooperative
    model: the child runs to completion at the point of use). *)

(** {1 User memory} *)

val poke : ctx -> int64 -> bytes -> unit
(** Write at user privilege; page faults are serviced by the kernel's
    demand-paging handler, as on hardware. *)

val peek : ctx -> int64 -> int -> bytes

val user_memcpy : ctx -> dst:int64 -> src:int64 -> len:int -> unit
(** User-level copy between two mapped regions (used by the wrapper
    library's bounce copies). *)

val bounce_bytes : int
(** Size of the wrapper library's traditional bounce buffer. *)

val ghost_heap_base : int64
(** Where the ghosting heap starts inside the ghost partition. *)

val ualloc : ctx -> int -> int64
(** Bump-allocate traditional user memory. *)

val galloc : ctx -> int -> int64
(** Heap allocation: ghost memory when [ghosting], else traditional
    (the paper's modified-malloc versus stock-malloc configurations).
    Grows the ghost region via [allocgm] as needed. *)

val register_code : ctx -> (ctx -> int64 -> unit) -> int64
(** Install a closure as program text; returns its code address. *)

(** {1 Syscall wrappers} *)

val sys_open : ctx -> string -> Syscalls.open_flags -> int Errno.result
val sys_close : ctx -> int -> unit Errno.result

val sys_write : ctx -> fd:int -> src:int64 -> len:int -> int Errno.result
(** If [src] is in ghost memory, copy through the bounce buffer first
    (the kernel cannot read ghost memory), then invoke the kernel. *)

val sys_read : ctx -> fd:int -> dst:int64 -> len:int -> int Errno.result
(** If [dst] is ghost, receive into the bounce buffer and copy in. *)

val sys_recv : ctx -> fd:int -> buf:int64 -> len:int -> int Errno.result
(** Socket receive with the same ghost-destination bounce as
    {!sys_read} — without it the kernel's masked copyout silently
    drops the bytes for a ghosting process. *)

val sys_send : ctx -> fd:int -> buf:int64 -> len:int -> int Errno.result
(** Socket send with the same ghost-source bounce as {!sys_write}. *)

val write_string : ctx -> fd:int -> string -> int Errno.result
(** Convenience: stage a string in the heap and write it. *)

val read_string : ctx -> fd:int -> max:int -> string Errno.result

val sys_mmap : ctx -> len:int -> int64 Errno.result
(** Applies the Iago mask to the kernel's return value when
    [ghosting]. *)

val sys_signal : ctx -> signum:int -> (ctx -> int64 -> unit) -> unit Errno.result
(** The paper's [signal()] wrapper: registers the handler code address
    with the VM ([sva.permitFunction]) and then with the kernel. *)

val sys_kill : ctx -> pid:int -> signum:int -> unit Errno.result

val check_signals : ctx -> unit
(** Resume point: if the saved context's pc was redirected (signal
    dispatch or hijack), execute the code at that address and
    [sigreturn]; repeats until the context is back to normal.
    @raise App_crash if the pc aims at an address with no code. *)

(** {1 VM instructions available to applications} *)

val get_app_key : ctx -> bytes option
(** [sva.getKey]. *)

val vg_random : ctx -> int -> bytes
(** [sva.random]. *)
