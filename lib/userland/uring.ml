(* Userland side of the batched syscall ring.

   The wrapper library allocates the ring in traditional memory — the
   kernel must read submissions and write completions, so the ring can
   never be ghost — and mirrors the user-owned header counters
   (sq_tail, cq_head) between OCaml state and ring memory.  The
   kernel-owned counters (sq_head, cq_tail) are only ever read. *)

type t = {
  ctx : Runtime.ctx;
  base : int64;
  depth : int;
  mutable sq_tail : int;
  mutable cq_head : int;
  mutable enters : int;
  mutable submitted : int;
  mutable completed : int;
}

let off t o = Int64.add t.base (Int64.of_int o)

let read_counter t o =
  Int64.to_int (Bytes.get_int64_le (Runtime.peek t.ctx (off t o) 8) 0)

let write_counter t o v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Runtime.poke t.ctx (off t o) b

let create ctx ~depth =
  if depth <= 0 || depth > 4096 then invalid_arg "Uring.create: bad depth";
  let base = Runtime.ualloc ctx (Syscall_ring.region_bytes ~depth) in
  let t =
    { ctx; base; depth; sq_tail = 0; cq_head = 0; enters = 0; submitted = 0; completed = 0 }
  in
  Runtime.poke ctx base (Bytes.make Syscall_ring.header_bytes '\000');
  t

let depth t = t.depth
let base t = t.base
let enters t = t.enters
let submitted t = t.submitted
let completed t = t.completed
let sq_head t = read_counter t Syscall_ring.sq_head_off
let in_flight t = t.sq_tail - sq_head t

let submit t ~sysno ~args ~user_data =
  if t.sq_tail - sq_head t >= t.depth then false
  else begin
    let slot = Syscall_ring.slot_of ~depth:t.depth t.sq_tail in
    let buf = Bytes.create Syscall_ring.sqe_bytes in
    Syscall_ring.write_sqe buf ~off:0
      { Syscall_ring.sysno = Syscall_abi.Sysno.to_int sysno; args; user_data };
    Runtime.poke t.ctx (off t (Syscall_ring.sqe_off ~depth:t.depth ~slot)) buf;
    t.sq_tail <- t.sq_tail + 1;
    write_counter t Syscall_ring.sq_tail_off t.sq_tail;
    t.submitted <- t.submitted + 1;
    true
  end

let enter t ~to_submit =
  t.enters <- t.enters + 1;
  Syscalls.ring_enter t.ctx.Runtime.kernel t.ctx.Runtime.proc ~ring:t.base ~depth:t.depth
    ~to_submit

let reap t =
  let cq_tail = read_counter t Syscall_ring.cq_tail_off in
  let out = ref [] in
  while t.cq_head < cq_tail do
    let slot = Syscall_ring.slot_of ~depth:t.depth t.cq_head in
    let raw = Runtime.peek t.ctx (off t (Syscall_ring.cqe_off ~depth:t.depth ~slot)) Syscall_ring.cqe_bytes in
    out := Syscall_ring.read_cqe raw ~off:0 :: !out;
    t.cq_head <- t.cq_head + 1;
    t.completed <- t.completed + 1
  done;
  write_counter t Syscall_ring.cq_head_off t.cq_head;
  List.rev !out
