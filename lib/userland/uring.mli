(** Userland submission-ring library over {!Syscalls.ring_enter}.

    Queue syscalls by {!Syscall_abi} number with {!submit}, hand a
    batch to the kernel with {!enter} (one trap for the whole batch),
    and collect ABI-encoded completions with {!reap}.  The ring lives
    in traditional user memory ({!Runtime.ualloc}); a ghosting program
    must also point submission buffers at traditional memory, exactly
    as it would for a direct call. *)

type t

val create : Runtime.ctx -> depth:int -> t
(** Allocate and zero a ring of [depth] slots.
    @raise Invalid_argument for depth outside 1..4096. *)

val depth : t -> int
val base : t -> int64

val submit :
  t -> sysno:Syscall_abi.Sysno.t -> args:int64 array -> user_data:int64 -> bool
(** Queue one submission (up to four register arguments); [false] when
    the submission ring is full (entries submitted but not yet
    consumed by {!enter} fill slots).  Taking a validated
    {!Syscall_abi.Sysno.t} means well-typed userland cannot queue a
    number the kernel would refuse — attack code that wants to probe
    raw numbers writes SQE bytes directly instead. *)

val enter : t -> to_submit:int -> int Errno.result
(** One [ring_enter] trap: the kernel consumes up to [to_submit]
    queued entries and writes their completions. *)

val reap : t -> Syscall_ring.cqe list
(** Drain new completions, oldest first ([result] fields are
    ABI-encoded — decode with {!Syscall_abi.decode}). *)

(** {1 Stats} *)

val in_flight : t -> int
(** Entries submitted but not yet consumed by the kernel. *)

val enters : t -> int
val submitted : t -> int
val completed : t -> int
