type invariant = Mask | Cfi_exit | Cfi_label | Privileged | Control | Policy | Spec

let invariant_to_string = function
  | Mask -> "mask"
  | Cfi_exit -> "cfi-exit"
  | Cfi_label -> "cfi-label"
  | Privileged -> "privileged"
  | Control -> "control"
  | Policy -> "policy"
  | Spec -> "spec"

type violation = {
  func : string;
  slot : int;
  invariant : invariant;
  message : string;
}

type func_report = {
  fr_name : string;
  fr_mem_ops : int;
  fr_cfi_exits : int;
  fr_violations : violation list;
}

type report = { image_ok : bool; per_func : func_report list }

let shared_label_int = Int32.to_int Cfi_pass.shared_label

let owner_name (image : Linker.image) slot =
  let fid = image.Linker.owner_of.(slot) in
  if fid >= 0 then image.Linker.funcs.(fid).Linker.f_name else "<image>"

let vetted_extern name =
  let has_prefix p =
    String.length name > String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "extern." || has_prefix "sva."

(* ------------------------------------------------------------------ *)
(* Structural invariants: CFI exits, label placement, privileged ops,
   and the linker metadata the executor trusts.                        *)

let is_call : Linker.instr -> bool = function
  | LCall _ | LCallExtern _ | LCallIndirectChecked _ -> true
  | _ -> false

let structural_violations (image : Linker.image) =
  let vs = ref [] in
  let bad slot invariant message =
    vs := { func = owner_name image slot; slot; invariant; message } :: !vs
  in
  let lcode = image.Linker.lcode in
  let n = Array.length lcode in
  (* The executor takes direct branches with a blind [pc := target] —
     no frame switch, no re-check — so a branch leaving its function
     would run the target function's code against the branching
     function's registers.  The linker refuses to produce such code,
     but a cached image never passes through the linker again. *)
  let branch i t =
    if t < 0 || t >= n then
      bad i Control (Printf.sprintf "branch target %d outside the image" t)
    else if image.Linker.owner_of.(t) <> image.Linker.owner_of.(i) then
      bad i Control
        (Printf.sprintf "branch target %d crosses into %s" t (owner_name image t))
  in
  Array.iteri
    (fun i (instr : Linker.instr) ->
      (match instr with
      | LRet _ -> bad i Cfi_exit "unchecked return (no CFI label probe)"
      | LCallIndirect _ -> bad i Cfi_exit "unchecked indirect call (no CFI label probe)"
      | LRetChecked { label; _ } ->
          if label <> shared_label_int then
            bad i Cfi_exit (Printf.sprintf "return probes a foreign CFI label %#x" label)
      | LCallIndirectChecked { label; _ } ->
          if label <> shared_label_int then
            bad i Cfi_exit
              (Printf.sprintf "indirect call probes a foreign CFI label %#x" label)
      | LIoRead _ -> bad i Privileged "raw port read outside the sva.* surface"
      | LIoWrite _ -> bad i Privileged "raw port write outside the sva.* surface"
      | LCallExtern { name; _ } ->
          if not (vetted_extern name) then
            bad i Privileged
              (Printf.sprintf "call to %s outside the extern.*/sva.* surface" name)
      | LCfiLabel l ->
          if l <> Cfi_pass.shared_label then
            bad i Cfi_label (Printf.sprintf "malformed CFI label %#lx" l)
          else begin
            let at_entry = image.Linker.entry_of.(i) >= 0 in
            let after_call = i > 0 && is_call lcode.(i - 1) in
            if not (at_entry || after_call) then
              bad i Cfi_label "stray CFI label (unintended control-transfer target)"
          end
      | LJmp t -> branch i t
      | LJz { target; _ } -> branch i target
      | _ -> ());
      (* Everything except an unconditional transfer advances [pc] to
         the next slot on some path: that slot must exist and belong to
         the same function, or execution falls into a neighbour's code
         while still on this function's register frame. *)
      (match instr with
      | LJmp _ | LRet _ | LRetChecked _ | LHalt -> ()
      | _ ->
          if i + 1 >= n then bad i Control "control can fall off the end of the image"
          else if image.Linker.owner_of.(i + 1) <> image.Linker.owner_of.(i) then
            bad i Control "fall-through crosses a function boundary");
      (* Every call's return site must carry the label the checked
         return will probe. *)
      if is_call instr then begin
        match if i + 1 < n then Some lcode.(i + 1) else None with
        | Some (LCfiLabel l) when l = Cfi_pass.shared_label -> ()
        | Some _ | None -> bad i Cfi_label "call not followed by a CFI return-site label"
      end;
      (* The executor resolves probes through [label_of] and the
         [ret_label_of] fast path without looking at the code: that
         metadata is part of the attack surface of a cached image. *)
      let expect =
        match instr with
        | LCfiLabel l -> Int32.to_int l
        | _ -> Linker.no_label
      in
      if image.Linker.label_of.(i) <> expect then
        bad i Cfi_label "label metadata (label_of) disagrees with the code";
      let rl = image.Linker.ret_label_of.(i) in
      if rl <> Linker.no_label then begin
        let addr = Native.addr_of_index image.Linker.native i in
        if expect <> rl || Layout.mask_kernel_target addr <> addr then
          bad i Cfi_label "pre-resolved return probe (ret_label_of) is unsound"
      end)
    lcode;
  Array.iter
    (fun (f : Linker.func) ->
      match lcode.(f.Linker.f_entry) with
      | LCfiLabel l when l = Cfi_pass.shared_label -> ()
      | _ ->
          vs :=
            {
              func = f.Linker.f_name;
              slot = f.Linker.f_entry;
              invariant = Cfi_label;
              message = "function entry does not carry a CFI label";
            }
            :: !vs)
    image.Linker.funcs;
  !vs

(* ------------------------------------------------------------------ *)
(* Mask dataflow                                                       *)

(* The seven-instruction lowered form of {!Sandbox_pass.mask_sequence}.
   A match grants the "holds a masked address" fact to [safe].  The
   [when] guard also rejects register aliasing that would corrupt the
   computation (the source operand or an intermediate clobbered before
   its last read) — regalloc on honest pipeline output never produces
   those, but a forged image could. *)
type window = { writes : int list; safe : int }

let match_window (lcode : Linker.instr array) i bend : window option =
  if i + 6 > bend then None
  else
    match
      ( lcode.(i), lcode.(i + 1), lcode.(i + 2), lcode.(i + 3), lcode.(i + 4),
        lcode.(i + 5), lcode.(i + 6) )
    with
    | ( LCmp { dst = hi; op = Ir.Uge; a = a1; b = Imm gs },
        LBin { dst = orr; op = Ir.Or; a = a2; b = Imm eb },
        LSelect { dst = esc; cond = Slot hic; if_true = Slot orrt; if_false = a3 },
        LCmp { dst = asva; op = Ir.Uge; a = Slot esc1; b = Imm ss },
        LCmp { dst = bsva; op = Ir.Ult; a = Slot esc2; b = Imm se },
        LBin { dst = insva; op = Ir.And; a = Slot asva1; b = Slot bsva1 },
        LSelect { dst = safe; cond = Slot insva1; if_true = Imm 0L; if_false = Slot esc3 }
      )
      when gs = Layout.ghost_start && eb = Layout.ghost_escape_bit
           && ss = Layout.sva_start && se = Layout.sva_end && a2 = a1 && a3 = a1
           && hic = hi && orrt = orr && esc1 = esc && esc2 = esc && esc3 = esc
           && asva1 = asva && bsva1 = bsva && insva1 = insva
           && (match a1 with Linker.Slot s -> hi <> s && orr <> s | Imm _ -> true)
           && orr <> hi && asva <> esc && bsva <> esc && bsva <> asva && insva <> esc
      ->
        Some { writes = [ hi; orr; esc; asva; bsva; insva; safe ]; safe }
    | _ -> None

(* The nine-instruction lowered form of
   {!Sandbox_pass.safe_mask_sequence}: same architectural semantics,
   but every step is an arithmetic data dependency of the final
   address — no predicated select a mispredictor could resolve the
   wrong way.  The pass emits nine fresh registers per sequence, so
   full destination distinctness holds on honest output and is required
   here (it rules out every clobber-before-last-read aliasing at
   once). *)
let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem (x : int) rest)) && distinct rest

let match_safe_window (lcode : Linker.instr array) i bend : window option =
  if i + 8 > bend then None
  else
    match
      ( lcode.(i), lcode.(i + 1), lcode.(i + 2), lcode.(i + 3), lcode.(i + 4),
        lcode.(i + 5), lcode.(i + 6), lcode.(i + 7), lcode.(i + 8) )
    with
    | ( LCmp { dst = hi; op = Ir.Uge; a = a1; b = Imm gs },
        LBin { dst = hm; op = Ir.Sub; a = Imm 0L; b = Slot hi1 },
        LBin { dst = eb; op = Ir.And; a = Slot hm1; b = Imm ebit },
        LBin { dst = esc; op = Ir.Or; a = a2; b = Slot eb1 },
        LCmp { dst = asva; op = Ir.Uge; a = Slot esc1; b = Imm ss },
        LCmp { dst = bsva; op = Ir.Ult; a = Slot esc2; b = Imm se },
        LBin { dst = insva; op = Ir.And; a = Slot asva1; b = Slot bsva1 },
        LBin { dst = km; op = Ir.Sub; a = Slot insva1; b = Imm 1L },
        LBin { dst = safe; op = Ir.And; a = Slot esc3; b = Slot km1 } )
      when gs = Layout.ghost_start && ebit = Layout.ghost_escape_bit
           && ss = Layout.sva_start && se = Layout.sva_end && a2 = a1
           && hi1 = hi && hm1 = hm && eb1 = eb && esc1 = esc && esc2 = esc
           && esc3 = esc && asva1 = asva && bsva1 = bsva && insva1 = insva
           && km1 = km
           && distinct [ hi; hm; eb; esc; asva; bsva; insva; km; safe ]
           && (match a1 with
              | Linker.Slot s -> not (List.mem s [ hi; hm; eb ])
              | Imm _ -> true) ->
        Some { writes = [ hi; hm; eb; esc; asva; bsva; insva; km; safe ]; safe }
    | _ -> None

let written : Linker.instr -> int option = function
  | LMov { dst; _ }
  | LBin { dst; _ }
  | LCmp { dst; _ }
  | LSelect { dst; _ }
  | LLoad { dst; _ }
  | LAtomic { dst; _ }
  | LIoRead { dst; _ } ->
      Some dst
  | LCall { dst; _ }
  | LCallExtern { dst; _ }
  | LCallIndirect { dst; _ }
  | LCallIndirectChecked { dst; _ } ->
      if dst >= 0 then Some dst else None
  | LStore _ | LMemcpy _ | LJmp _ | LJz _ | LRet _ | LRetChecked _ | LCfiLabel _
  | LIoWrite _ | LFence | LHalt ->
      (* LFence in particular kills nothing: it is transparent to the
         mask dataflow, so [window; lfence; access] still proves *)
      None

(* An immediate address is acceptable unmasked only when masking is the
   identity on it — exactly what a constant-folded mask would yield. *)
let safe_imm v = Sandbox_pass.masked_address v = v

(* Analyse one function occupying slots [lo, hi].  [facts] are "slot
   holds a masked address" bits; the cross-block join is intersection
   (an address is proven only if masked on {e every} path).  Reports
   violations and proven-operand counts through the callbacks on the
   final pass. *)
let verify_masks (image : Linker.image) ~mitigation ~fid ~lo ~hi ~on_violation
    ~on_proven =
  let lcode = image.Linker.lcode in
  let f = image.Linker.funcs.(fid) in
  let nregs = f.Linker.f_nregs in
  let len = hi - lo + 1 in
  (* Leaders: the function entry, every branch target, and the slot
     after every control transfer. *)
  let leader = Array.make len false in
  leader.(0) <- true;
  let mark t = if t >= lo && t <= hi then leader.(t - lo) <- true in
  for i = lo to hi do
    match lcode.(i) with
    | LJmp t ->
        mark t;
        mark (i + 1)
    | LJz { target; _ } ->
        mark target;
        mark (i + 1)
    | LRet _ | LRetChecked _ | LHalt -> mark (i + 1)
    | _ -> ()
  done;
  (* Blocks: maximal leader-to-leader runs. *)
  let starts = ref [] in
  for i = len - 1 downto 0 do
    if leader.(i) then starts := (lo + i) :: !starts
  done;
  let starts = Array.of_list !starts in
  let nblocks = Array.length starts in
  let block_end b = if b + 1 < nblocks then starts.(b + 1) - 1 else hi in
  let block_of = Hashtbl.create 16 in
  Array.iteri (fun b s -> Hashtbl.replace block_of s b) starts;
  let successors b =
    let e = block_end b in
    match lcode.(e) with
    | LJmp t -> [ t ]
    | LJz { target; _ } -> if e = hi then [ target ] else [ target; e + 1 ]
    | LRet _ | LRetChecked _ | LHalt -> []
    | _ -> if e = hi then [] else [ e + 1 ]
  in
  (* Walk a block from fact set [s] (mutated in place).  With [record],
     check memory operands and report. *)
  let walk b s ~record =
    let kill = function
      | Some d when d < nregs -> s.(d) <- false
      | _ -> ()
    in
    let proven (o : Linker.operand) =
      match o with Imm v -> safe_imm v | Slot r -> r < nregs && s.(r)
    in
    let check i what (o : Linker.operand) =
      if record then
        if proven o then on_proven i
        else
          on_violation
            {
              func = f.Linker.f_name;
              slot = i;
              invariant = Mask;
              message =
                Printf.sprintf "%s address is not proven masked (%s)" what
                  (match o with
                  | Imm v -> Printf.sprintf "immediate %s escapes the mask" (U64.to_hex v)
                  | Slot r -> Printf.sprintf "register %s" f.Linker.f_names.(r));
            }
    in
    (* The speculation invariant, checked alongside the mask dataflow:
       under [Safe_mask] every mask window must be the branchless form;
       under [Fence] every memory operation must be immediately preceded
       by an lfence (the window's facts pass through it). *)
    let spec_bad i message =
      if record then
        on_violation
          { func = f.Linker.f_name; slot = i; invariant = Spec; message }
    in
    let fenced i =
      if
        mitigation = Mitigation.Fence
        && not (i - 1 >= lo && lcode.(i - 1) = Linker.LFence)
      then spec_bad i "memory operation not immediately preceded by an lfence"
    in
    let e = block_end b in
    let i = ref starts.(b) in
    while !i <= e do
      match match_window lcode !i e with
      | Some w ->
          if mitigation = Mitigation.Safe_mask then
            spec_bad !i
              "predicated mask window (speculation-unsafe under safe-mask)";
          List.iter (fun d -> kill (Some d)) w.writes;
          if w.safe < nregs then s.(w.safe) <- true;
          i := !i + 7
      | None -> (
          match match_safe_window lcode !i e with
          | Some w ->
              List.iter (fun d -> kill (Some d)) w.writes;
              if w.safe < nregs then s.(w.safe) <- true;
              i := !i + 9
          | None ->
              (match lcode.(!i) with
              | LLoad { addr; _ } ->
                  check !i "load" addr;
                  fenced !i
              | LStore { addr; _ } ->
                  check !i "store" addr;
                  fenced !i
              | LAtomic { addr; _ } ->
                  check !i "atomic" addr;
                  fenced !i
              | LMemcpy { dst; src; _ } ->
                  check !i "memcpy destination" dst;
                  check !i "memcpy source" src;
                  fenced !i
              | _ -> ());
              kill (written lcode.(!i));
              incr i)
    done
  in
  (* Facts may only flow along edges reachable from the function entry.
     A block no path reaches gets the empty fact set instead of top:
     dead code is held to the same standard as live code, so an
     unmasked operation stashed in an unreachable block (or one only
     "reachable" through a forged cross-function jump, which the
     structural pass rejects separately) cannot borrow optimistic
     facts and silently prove. *)
  let reachable = Array.make nblocks false in
  let rec reach b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter
        (fun t ->
          match Hashtbl.find_opt block_of t with Some sb -> reach sb | None -> ())
        (successors b)
    end
  in
  reach 0;
  (* Must-analysis fixpoint: the entry and unreachable blocks start
     with nothing proven, every reachable block starts at top and only
     loses facts.  Only reachable blocks propagate (their successors
     are reachable by construction), so dead edges into live blocks
     cannot destroy facts either. *)
  let in_facts =
    Array.init nblocks (fun b -> Array.make nregs (b <> 0 && reachable.(b)))
  in
  let dirty = Array.copy reachable in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nblocks - 1 do
      if dirty.(b) then begin
        dirty.(b) <- false;
        let out = Array.copy in_facts.(b) in
        walk b out ~record:false;
        List.iter
          (fun t ->
            match Hashtbl.find_opt block_of t with
            | None -> ()
            | Some sb ->
                let tgt = in_facts.(sb) in
                for r = 0 to nregs - 1 do
                  if tgt.(r) && not out.(r) then begin
                    tgt.(r) <- false;
                    if not dirty.(sb) then begin
                      dirty.(sb) <- true;
                      changed := true
                    end
                  end
                done)
          (successors b)
      end
    done
  done;
  for b = 0 to nblocks - 1 do
    walk b (Array.copy in_facts.(b)) ~record:true
  done

(* ------------------------------------------------------------------ *)

let function_extents (image : Linker.image) =
  let nf = Array.length image.Linker.funcs in
  let lo = Array.make nf max_int and hi = Array.make nf (-1) in
  Array.iteri
    (fun i fid ->
      if fid >= 0 then begin
        if i < lo.(fid) then lo.(fid) <- i;
        if i > hi.(fid) then hi.(fid) <- i
      end)
    image.Linker.owner_of;
  (lo, hi)

let analyse ?(mitigation = Mitigation.Off) (image : Linker.image) =
  let violations = ref (structural_violations image) in
  let proven = Array.make (Array.length image.Linker.funcs) 0 in
  let lo, hi = function_extents image in
  Array.iteri
    (fun fid _ ->
      if hi.(fid) >= lo.(fid) then
        verify_masks image ~mitigation ~fid ~lo:lo.(fid) ~hi:hi.(fid)
          ~on_violation:(fun v -> violations := v :: !violations)
          ~on_proven:(fun _ -> proven.(fid) <- proven.(fid) + 1))
    image.Linker.funcs;
  let violations =
    List.sort (fun a b -> compare (a.slot, a.invariant) (b.slot, b.invariant)) !violations
  in
  (violations, proven)

let check ?mitigation image =
  match analyse ?mitigation image with [], _ -> Ok () | vs, _ -> Error vs

let report ?mitigation (image : Linker.image) =
  let violations, proven = analyse ?mitigation image in
  let per_func =
    Array.to_list
      (Array.mapi
         (fun fid (f : Linker.func) ->
           let mine = List.filter (fun v -> v.func = f.Linker.f_name) violations in
           let exits = ref 0 in
           Array.iteri
             (fun i (instr : Linker.instr) ->
               if image.Linker.owner_of.(i) = fid then
                 match instr with
                 | LRetChecked _ | LCallIndirectChecked _ -> incr exits
                 | _ -> ())
             image.Linker.lcode;
           {
             fr_name = f.Linker.f_name;
             fr_mem_ops = proven.(fid);
             fr_cfi_exits = !exits;
             fr_violations = mine;
           })
         image.Linker.funcs)
  in
  { image_ok = violations = []; per_func }

let pp_violation fmt v =
  Format.fprintf fmt "%s: slot %d: [%s] %s" v.func v.slot
    (invariant_to_string v.invariant) v.message

let pp_report fmt r =
  List.iter
    (fun fr ->
      Format.fprintf fmt "  %-24s %s  (%d masked operand%s, %d checked exit%s)@."
        fr.fr_name
        (if fr.fr_violations = [] then "PROVEN" else "UNPROVEN")
        fr.fr_mem_ops
        (if fr.fr_mem_ops = 1 then "" else "s")
        fr.fr_cfi_exits
        (if fr.fr_cfi_exits = 1 then "" else "s");
      List.iter (fun v -> Format.fprintf fmt "    !! %a@." pp_violation v) fr.fr_violations)
    r.per_func;
  Format.fprintf fmt "  image: %s@." (if r.image_ok then "PROVEN" else "REJECTED")

let cost_cycles (image : Linker.image) = 2 * Array.length image.Linker.lcode

(* The sixth invariant class (SFIP, PR 7): a signed blob that carries a
   syscall-flow graph must carry *the* graph this verifier re-extracts
   from the code it accompanies.  A hostile kernel that swaps in a
   permissive graph (or strips the profile from a profiled image —
   that's a length/HMAC mismatch upstream) is caught here, not at
   enforcement time. *)
let check_policy ~resolve ~n ~expected image =
  let actual = Sfip.extract ~resolve ~n image in
  if Sfip.equal actual expected then Ok ()
  else
    Error
      [
        {
          func = "<image>";
          slot = 0;
          invariant = Policy;
          message =
            Printf.sprintf
              "embedded syscall-flow graph disagrees with the code: carried \
               %d entries/%d transitions, extraction proves %d/%d"
              (Sfip.entry_count expected)
              (Sfip.transition_count expected)
              (Sfip.entry_count actual)
              (Sfip.transition_count actual);
        };
      ]
