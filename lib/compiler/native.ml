type operand = Reg of string | Imm of int64

type ninstr =
  | NMov of { dst : string; src : operand }
  | NBin of { dst : string; op : Ir.binop; a : operand; b : operand }
  | NCmp of { dst : string; op : Ir.cmp; a : operand; b : operand }
  | NSelect of { dst : string; cond : operand; if_true : operand; if_false : operand }
  | NLoad of { dst : string; addr : operand; width : Ir.width }
  | NStore of { src : operand; addr : operand; width : Ir.width }
  | NMemcpy of { dst : operand; src : operand; len : operand }
  | NAtomic of { dst : string; op : Ir.binop; addr : operand; operand_ : operand; width : Ir.width }
  | NJmp of int
  | NJz of { cond : operand; target : int }
  | NCall of { dst : string option; target : int; args : operand list }
  | NCallExtern of { dst : string option; name : string; args : operand list }
  | NCallIndirect of { dst : string option; target : operand; args : operand list }
  | NCallIndirectChecked of { dst : string option; target : operand; args : operand list; label : int32 }
  | NRet of operand option
  | NRetChecked of { value : operand option; label : int32 }
  | NCfiLabel of int32
  | NIoRead of { dst : string; port : operand }
  | NIoWrite of { port : operand; src : operand }
  | NFence
  | NHalt

type symbol = { name : string; entry : int; params : string list }
type image = { base : int64; code : ninstr array; symbols : symbol list }

let slot_bytes = 16

let addr_of_index image i = Int64.add image.base (Int64.of_int (i * slot_bytes))

let index_of_addr image addr =
  let off = Int64.sub addr image.base in
  if Int64.compare off 0L < 0 then None
  else begin
    let off = Int64.to_int off in
    if off mod slot_bytes <> 0 then None
    else begin
      let i = off / slot_bytes in
      if i < Array.length image.code then Some i else None
    end
  end

let find_symbol image name = List.find_opt (fun s -> s.name = name) image.symbols
let symbol_of_index image i = List.find_opt (fun s -> s.entry = i) image.symbols

let addr_of_symbol image name =
  find_symbol image name |> Option.map (fun s -> addr_of_index image s.entry)

let size_bytes image = Array.length image.code * slot_bytes
let count image p = Array.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 image.code
