exception Codegen_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Codegen_error s)) fmt

(* Lowering is two passes.  The slot cost of every IR instruction is
   deterministic given the CFI flag, so pass 1 lays out function and
   block entry slots; pass 2 emits final instructions with all symbols,
   branch targets and call targets resolved immediately. *)

let instr_slots ~cfi (instr : Ir.instr) =
  match instr with
  | Call _ | Call_indirect _ -> if cfi then 2 else 1 (* + return-site label *)
  | Bin _ | Cmp _ | Select _ | Load _ | Store _ | Memcpy _ | Atomic_rmw _
  | Io_read _ | Io_write _ | Fence ->
      1

let term_slots (term : Ir.terminator) =
  match term with Cbr _ -> 2 | Ret _ | Br _ | Unreachable -> 1

let compile ?(cfi = false) ?(base = Layout.kernel_code_start) ?(globals = []) program =
  if not (Layout.in_kernel_code base) then
    fail "code base %s outside kernel code range" (Vg_util.U64.to_hex base);
  let func_entries : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let block_entries : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  (* Pass 1: layout. *)
  let slot = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace func_entries f.Ir.name !slot;
      if cfi then incr slot;
      List.iter
        (fun (b : Ir.block) ->
          Hashtbl.replace block_entries (f.Ir.name, b.Ir.label) !slot;
          List.iter (fun i -> slot := !slot + instr_slots ~cfi i) b.Ir.instrs;
          slot := !slot + term_slots b.Ir.term)
        f.Ir.blocks)
    program.Ir.funcs;
  let total_slots = !slot in
  let addr_of_slot i = Int64.add base (Int64.of_int (i * Native.slot_bytes)) in
  let func_target name =
    match Hashtbl.find_opt func_entries name with
    | Some i -> i
    | None -> fail "unknown function %s" name
  in
  let block_target fname label =
    match Hashtbl.find_opt block_entries (fname, label) with
    | Some i -> i
    | None -> fail "unknown block %s in function %s" label fname
  in
  let operand (v : Ir.value) : Native.operand =
    match v with
    | Reg r -> Native.Reg r
    | Imm i -> Native.Imm i
    | Sym s -> (
        match List.assoc_opt s globals with
        | Some addr -> Native.Imm addr
        | None ->
            if Hashtbl.mem func_entries s then Native.Imm (addr_of_slot (func_target s))
            else fail "unresolved symbol %s" s)
  in
  (* Pass 2: emission. *)
  let code = Array.make total_slots Native.NHalt in
  let slot = ref 0 in
  let emit instr =
    code.(!slot) <- instr;
    incr slot
  in
  let lower_instr (instr : Ir.instr) =
    match instr with
    | Bin { dst; op; a; b } -> emit (NBin { dst; op; a = operand a; b = operand b })
    | Cmp { dst; op; a; b } -> emit (NCmp { dst; op; a = operand a; b = operand b })
    | Select { dst; cond; if_true; if_false } ->
        emit
          (NSelect
             {
               dst;
               cond = operand cond;
               if_true = operand if_true;
               if_false = operand if_false;
             })
    | Load { dst; addr; width } -> emit (NLoad { dst; addr = operand addr; width })
    | Store { src; addr; width } ->
        emit (NStore { src = operand src; addr = operand addr; width })
    | Memcpy { dst; src; len } ->
        emit (NMemcpy { dst = operand dst; src = operand src; len = operand len })
    | Atomic_rmw { dst; op; addr; operand = opnd; width } ->
        emit (NAtomic { dst; op; addr = operand addr; operand_ = operand opnd; width })
    | Call { dst; callee; args } ->
        let args = List.map operand args in
        if Hashtbl.mem func_entries callee then
          emit (NCall { dst; target = func_target callee; args })
        else emit (NCallExtern { dst; name = callee; args });
        if cfi then emit (NCfiLabel Cfi_pass.shared_label)
    | Call_indirect { dst; target; args } ->
        let target = operand target and args = List.map operand args in
        if cfi then begin
          emit (NCallIndirectChecked { dst; target; args; label = Cfi_pass.shared_label });
          emit (NCfiLabel Cfi_pass.shared_label)
        end
        else emit (NCallIndirect { dst; target; args })
    | Io_read { dst; port } -> emit (NIoRead { dst; port = operand port })
    | Io_write { port; src } -> emit (NIoWrite { port = operand port; src = operand src })
    | Fence -> emit NFence
  in
  let lower_term fname (term : Ir.terminator) =
    match term with
    | Ret v ->
        let value = Option.map operand v in
        if cfi then emit (NRetChecked { value; label = Cfi_pass.shared_label })
        else emit (NRet value)
    | Br l -> emit (NJmp (block_target fname l))
    | Cbr { cond; if_true; if_false } ->
        emit (NJz { cond = operand cond; target = block_target fname if_false });
        emit (NJmp (block_target fname if_true))
    | Unreachable -> emit NHalt
  in
  List.iter
    (fun (f : Ir.func) ->
      if cfi then emit (NCfiLabel Cfi_pass.shared_label);
      List.iter
        (fun (b : Ir.block) ->
          List.iter lower_instr b.Ir.instrs;
          lower_term f.Ir.name b.Ir.term)
        f.Ir.blocks)
    program.Ir.funcs;
  assert (!slot = total_slots);
  {
    Native.base;
    code;
    symbols =
      List.map
        (fun (f : Ir.func) ->
          { Native.name = f.Ir.name; entry = func_target f.Ir.name; params = f.Ir.params })
        program.Ir.funcs;
  }
