(* Constant environment: register -> known constant, valid within one
   block, invalidated on redefinition. *)

let subst env (v : Ir.value) : Ir.value =
  match v with
  | Reg r -> (
      match Hashtbl.find_opt env r with Some c -> Ir.Imm c | None -> v)
  | Imm _ | Sym _ -> v

let const = function Ir.Imm i -> Some i | Ir.Reg _ | Ir.Sym _ -> None

(* A constant definition is represented as [dst = or c, 0] (the IR has
   no move instruction); the folder recognises the idiom on re-entry. *)
let const_def dst c : Ir.instr = Bin { dst; op = Or; a = Imm c; b = Imm 0L }

let fold_bin (op : Ir.binop) a b =
  match (const a, const b) with
  | Some x, Some y -> (
      (* Division by zero must keep trapping: do not fold it away. *)
      match op with
      | (Udiv | Urem) when y = 0L -> None
      | _ -> Some (Interp.eval_binop op x y))
  | _ -> (
      (* Algebraic identities with one constant side. *)
      match (op, const a, const b) with
      | (Add | Or | Xor | Shl | Lshr | Ashr | Sub), _, Some 0L -> const a
      | (Add | Or | Xor), Some 0L, _ -> const b
      | Mul, _, Some 1L -> const a
      | Mul, Some 1L, _ -> const b
      | (Mul | And), _, Some 0L -> Some 0L
      | (Mul | And), Some 0L, _ -> Some 0L
      | And, _, Some -1L -> const a
      | And, Some -1L, _ -> const b
      | _ -> None)

(* Identity results that are non-constant values (x+0 -> x). *)
let identity_value (op : Ir.binop) (a : Ir.value) (b : Ir.value) : Ir.value option =
  match (op, a, b) with
  | (Add | Or | Xor | Shl | Lshr | Ashr | Sub), x, Imm 0L -> Some x
  | (Add | Or | Xor), Imm 0L, x -> Some x
  | Mul, x, Imm 1L -> Some x
  | Mul, Imm 1L, x -> Some x
  | And, x, Imm (-1L) -> Some x
  | And, Imm (-1L), x -> Some x
  | _ -> None

let fold_block (b : Ir.block) : Ir.block =
  let env : (Ir.reg, int64) Hashtbl.t = Hashtbl.create 16 in
  let copies : (Ir.reg, Ir.value) Hashtbl.t = Hashtbl.create 16 in
  let kill dst =
    Hashtbl.remove env dst;
    Hashtbl.remove copies dst;
    (* Any copy pointing at [dst] is stale now. *)
    let stale =
      Hashtbl.fold
        (fun r v acc -> if v = Ir.Reg dst then r :: acc else acc)
        copies []
    in
    List.iter (Hashtbl.remove copies) stale
  in
  let subst_all v =
    let v = match v with
      | Ir.Reg r -> (
          match Hashtbl.find_opt copies r with Some src -> src | None -> v)
      | _ -> v
    in
    subst env v
  in
  let fold_instr (instr : Ir.instr) : Ir.instr =
    match instr with
    | Bin { dst; op; a; b } -> (
        let a = subst_all a and b = subst_all b in
        kill dst;
        match fold_bin op a b with
        | Some c ->
            Hashtbl.replace env dst c;
            const_def dst c
        | None -> (
            match identity_value op a b with
            | Some (Ir.Reg _ as v) ->
                Hashtbl.replace copies dst v;
                Bin { dst; op; a; b }
            | _ -> Bin { dst; op; a; b }))
    | Cmp { dst; op; a; b } -> (
        let a = subst_all a and b = subst_all b in
        kill dst;
        match (const a, const b) with
        | Some x, Some y ->
            let c = Interp.eval_cmp op x y in
            Hashtbl.replace env dst c;
            const_def dst c
        | _ -> Cmp { dst; op; a; b })
    | Select { dst; cond; if_true; if_false } -> (
        let cond = subst_all cond
        and if_true = subst_all if_true
        and if_false = subst_all if_false in
        kill dst;
        match const cond with
        | Some c -> (
            let chosen = if c <> 0L then if_true else if_false in
            match const chosen with
            | Some v ->
                Hashtbl.replace env dst v;
                const_def dst v
            | None ->
                (match chosen with
                | Ir.Reg _ -> Hashtbl.replace copies dst chosen
                | _ -> ());
                Select { dst; cond = Imm 1L; if_true = chosen; if_false = chosen })
        | None -> Select { dst; cond; if_true; if_false })
    | Load { dst; addr; width } ->
        let addr = subst_all addr in
        kill dst;
        Load { dst; addr; width }
    | Store { src; addr; width } ->
        Store { src = subst_all src; addr = subst_all addr; width }
    | Memcpy { dst; src; len } ->
        Memcpy { dst = subst_all dst; src = subst_all src; len = subst_all len }
    | Atomic_rmw { dst; op; addr; operand; width } ->
        let addr = subst_all addr and operand = subst_all operand in
        kill dst;
        Atomic_rmw { dst; op; addr; operand; width }
    | Call { dst; callee; args } ->
        let args = List.map subst_all args in
        Option.iter kill dst;
        Call { dst; callee; args }
    | Call_indirect { dst; target; args } ->
        let target = subst_all target and args = List.map subst_all args in
        Option.iter kill dst;
        Call_indirect { dst; target; args }
    | Io_read { dst; port } ->
        let port = subst_all port in
        kill dst;
        Io_read { dst; port }
    | Io_write { port; src } -> Io_write { port = subst_all port; src = subst_all src }
    | Fence -> Fence
  in
  let instrs = List.map fold_instr b.Ir.instrs in
  let term : Ir.terminator =
    match b.Ir.term with
    | Ret v -> Ret (Option.map subst_all v)
    | Cbr { cond; if_true; if_false } -> (
        let cond = subst_all cond in
        match const cond with
        | Some c -> Br (if c <> 0L then if_true else if_false)
        | None ->
            if if_true = if_false then Br if_true
            else Cbr { cond; if_true; if_false })
    | (Br _ | Unreachable) as t -> t
  in
  { b with instrs; term }

(* Remove blocks unreachable from the entry block. *)
let prune_unreachable (f : Ir.func) : Ir.func =
  match f.Ir.blocks with
  | [] -> f
  | entry :: _ ->
      let reachable = Hashtbl.create 16 in
      let rec visit label =
        if not (Hashtbl.mem reachable label) then begin
          Hashtbl.replace reachable label ();
          match Ir.find_block f label with
          | None -> ()
          | Some b -> (
              match b.Ir.term with
              | Br l -> visit l
              | Cbr { if_true; if_false; _ } ->
                  visit if_true;
                  visit if_false
              | Ret _ | Unreachable -> ())
        end
      in
      visit entry.Ir.label;
      { f with blocks = List.filter (fun (b : Ir.block) -> Hashtbl.mem reachable b.Ir.label) f.Ir.blocks }

(* Dead-code elimination: drop pure instructions whose destination is
   never read anywhere in the (post-pruning) function. *)
let eliminate_dead (f : Ir.func) : Ir.func =
  let used = Hashtbl.create 64 in
  let use (v : Ir.value) =
    match v with Reg r -> Hashtbl.replace used r () | Imm _ | Sym _ -> ()
  in
  let scan_instr (i : Ir.instr) =
    match i with
    | Bin { a; b; _ } | Cmp { a; b; _ } ->
        use a;
        use b
    | Select { cond; if_true; if_false; _ } ->
        use cond;
        use if_true;
        use if_false
    | Load { addr; _ } -> use addr
    | Store { src; addr; _ } ->
        use src;
        use addr
    | Memcpy { dst; src; len } ->
        use dst;
        use src;
        use len
    | Atomic_rmw { addr; operand; _ } ->
        use addr;
        use operand
    | Call { args; _ } -> List.iter use args
    | Call_indirect { target; args; _ } ->
        use target;
        List.iter use args
    | Io_read { port; _ } -> use port
    | Io_write { port; src } ->
        use port;
        use src
    | Fence -> ()
  in
  List.iter
    (fun (b : Ir.block) ->
      List.iter scan_instr b.Ir.instrs;
      match b.Ir.term with
      | Ret (Some v) -> use v
      | Cbr { cond; _ } -> use cond
      | Ret None | Br _ | Unreachable -> ())
    f.Ir.blocks;
  let keep (i : Ir.instr) =
    match i with
    | Bin { dst; _ } | Cmp { dst; _ } | Select { dst; _ } -> Hashtbl.mem used dst
    | Load _ | Store _ | Memcpy _ | Atomic_rmw _ | Call _ | Call_indirect _
    | Io_read _ | Io_write _ | Fence ->
        true
  in
  {
    f with
    blocks =
      List.map
        (fun (b : Ir.block) -> { b with Ir.instrs = List.filter keep b.Ir.instrs })
        f.Ir.blocks;
  }

let optimize_func f =
  let f = { f with Ir.blocks = List.map fold_block f.Ir.blocks } in
  let f = prune_unreachable f in
  eliminate_dead f

let optimize_program = Ir.map_funcs optimize_func
