(** Transient execution down a mispredicted path (shared by both
    execution engines).

    When the machine runs with a non-zero speculation depth, every
    conditional the engines resolve — an [LSelect] arm or an [LJz]
    direction — also transiently executes the {e other} outcome for up
    to [depth] macro-ops before squashing.  Nothing architectural
    survives: registers are shadowed in a private overlay, stores are
    dropped, no cycles are charged.  Cache state does survive — each
    transient load warms its line through [spec_load] — which is the
    Spectre side channel the attack suite measures.

    The budget counts macro-ops as {!Exec_compile} fuses them: a whole
    seven-instruction sandbox-guard sequence plus the memory access it
    feeds is one unit and retires atomically (a window with one slot of
    budget left still completes the fused access).  A guard entered
    mid-sequence has lost its fusion and counts slot by slot. *)

val transient_window :
  image:Linker.image ->
  depth:int ->
  read:(int -> int64 option) ->
  spec_load:(int64 -> Ir.width -> int64 option) ->
  shadow:(int * int64) option ->
  pc:int ->
  unit
(** [transient_window ~image ~depth ~read ~spec_load ~shadow ~pc] runs
    the wrong path starting at slot [pc] for at most [depth] macro-ops.

    [read] is a non-trapping view of the architectural register file of
    the {e current} frame ([None] = undefined register, squashes the
    window).  [spec_load] resolves a transient load — typically
    {!Machine.spec_load}, which warms the cache line and returns [None]
    for unmapped addresses (squash).  [shadow] seeds the overlay with
    the mispredicted value itself: [Some (slot, v)] for a select whose
    wrong arm was [v]; [None] for a branch (the misprediction is the
    direction, already encoded in [pc]).

    The window also squashes on any instruction speculation cannot
    execute (calls, returns, I/O, fences, memcpy, halt), trapping
    arithmetic, or a pc outside the image.  No-op when [depth] is 0. *)
