(** Spectre mitigation selection.

    Names the three speculation configurations a kernel or module image
    can be compiled under.  The choice is part of an image's identity:
    it selects the sandbox-pass variant ({!Sandbox_pass}), the extra
    fence pass ({!Fence_pass}), the invariant class the load-time
    verifier proves ({!Image_verify}), and is carried under the MAC in
    trans-cache blobs so a cached image can never be replayed into a
    differently-mitigated kernel.  Dependency-free: usable from the
    machine layer up to the CLI. *)

type t =
  | Off  (** classic predicated masking; speculation-unsafe *)
  | Fence  (** lfence between each mask window and its access *)
  | Safe_mask  (** branchless masking: the mask is a data dependency *)

val all : t list
val to_string : t -> string
val of_string : string -> t option

val to_tag : t -> int
(** Stable small-int encoding for serialized blobs. *)

val of_tag : int -> t option
