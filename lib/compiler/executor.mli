(** Executor for linked native code images.

    Runs compiled (possibly instrumented) code — in the slot-allocated
    form produced by {!Linker.link} — against the world exposed by an
    {!env}: the simulated machine's memory, I/O ports, the SVA-OS
    intrinsics, and kernel helper functions.  The executor keeps an
    explicit call stack, so control-data attacks are expressible:
    [tamper_return] lets a test (or a simulated kernel buffer overflow)
    corrupt a return address the instant it is popped, and indirect
    calls read their targets from data the program computed.  CFI
    instrumentation, when present in the image, catches both.

    Every executed instruction calls [charge], so the cycle cost of
    instrumentation emerges from actually executing the extra
    instructions rather than from a bolted-on estimate.  Frames are
    spans of one reusable register-file stack and symbol/label
    resolution is O(1) (precomputed at link time); none of that changes
    what [charge] sees — the lowered code has slot-for-slot the same
    shape, so simulated cycle counts are identical to the pre-linking
    executor's. *)

type env = {
  load : int64 -> Ir.width -> int64;
  store : int64 -> Ir.width -> int64 -> unit;
  memcpy : dst:int64 -> src:int64 -> len:int64 -> unit;
  io_read : int64 -> int64;
  io_write : int64 -> int64 -> unit;
  extern : string -> int64 array -> int64;
      (** Direct calls to functions not present in the image. *)
  call_foreign : int64 -> int64 array -> int64;
      (** Indirect calls whose (possibly masked) target lies outside the
          image. Only consulted by {e unchecked} indirect calls; checked
          ones refuse such targets. *)
  charge : Vg_obs.Obs.Tag.t -> int -> unit;
      (** Cycle accounting.  The tag says what the cycles pay for
          ({!Vg_obs.Obs.Tag.Exec} for ordinary instructions,
          {!Vg_obs.Obs.Tag.Cfi} for label checks,
          {!Vg_obs.Obs.Tag.Copy} for memcpy length cost) so sinks can
          attribute instrumentation overhead; implementations that don't
          care simply ignore it. *)
  tamper_return : (int64 -> int64) option;
      (** Attack hook: rewrite each popped return address. *)
  spec_depth : int;
      (** Transient window budget in macro-ops.  0 (the default)
          disables speculation entirely: no windows open, no cache
          model is consulted, execution is byte-identical to a
          speculation-free build. *)
  spec_load : int64 -> Ir.width -> int64 option;
      (** Resolve a load on the wrong path: returns the value and warms
          the address's cache line without charging cycles, or [None]
          if the address does not translate (the window squashes).
          Typically {!Vg_machine.Machine.spec_load}. *)
  spec_window : unit -> unit;
      (** Bookkeeping hook called once per opened window. *)
}

val null_env : env
(** An environment whose memory is a tiny private scratch array and
    whose other callbacks reject; convenient base for tests:
    [{ null_env with load = ...; store = ... }]. *)

exception Cfi_violation of string
(** A CFI check failed: the kernel thread would be terminated. *)

exception Exec_trap of string
(** Non-CFI execution error (bad jump, arity mismatch, fuel, ...). *)

val run : ?fuel:int -> env -> Linker.image -> string -> int64 array -> int64
(** [run env image func args] executes [func].  Returns the function's
    result (0 for void).  @raise Not_found if [func] is not a symbol. *)
