(** Closure-compiled execution engine.

    {!compile} translates a linked image once, at load time, into a
    tree of pre-resolved OCaml closures — one per code slot, with
    superinstruction fusion for three hot adjacent pairs (cmp+branch,
    mask+load/load+mask, push+call) — so that steady-state execution
    avoids the per-instruction constructor match and operand decode of
    {!Executor.run}.

    {!run} is observably byte-identical to {!Executor.run} on the same
    image: the same [charge] calls with the same {!Obs.Tag} attribution
    ([Exec]/[Cfi]/[Copy]) in the same order, the same
    {!Executor.Exec_trap} / {!Executor.Cfi_violation} exceptions with
    the same messages, the same fuel accounting, the same
    [tamper_return] behaviour, and the same generation-stamped
    register-file stack semantics.  Only host time differs.

    The closure compiler is outside the TCB: kernels obtain compiled
    artifacts exclusively through {!Trans_cache.find_compiled}, which
    runs {!Image_verify} first, and this module's behaviour is pinned
    against the slot executor by cycle goldens and the three-way
    differential fuzz suite. *)

type t
(** A compiled image: the closure array plus the image it came from. *)

val compile : Linker.image -> t
(** Translate every function of [image] into closures.  Pure host-time
    work: charges no simulated cycles.  Call sites, arities, operand
    slots and trap messages are resolved now; ill-formed call sites
    compile to closures that raise the identical runtime trap only if
    actually executed. *)

val image : t -> Linker.image
(** The linked image this artifact was compiled from. *)

type stats = { slots : int; fused_pairs : int; static_calls : int }

val stats : t -> stats
(** Translation statistics: total code slots, adjacent pairs fused into
    superinstruction closures, and statically pre-resolved call
    sites. *)

val run : ?fuel:int -> Executor.env -> t -> string -> int64 array -> int64
(** [run env t entry args] — exactly {!Executor.run}'s contract
    (default [fuel] [5e7], raises [Not_found] on an unknown entry
    symbol) over the compiled form. *)
