(** The Virtual Ghost compiler driver.

    Mirrors the paper's build modes: the baseline compiles kernel code
    straight to native code; the Virtual Ghost build first applies
    load/store sandboxing, then lowers with CFI instrumentation, and
    audits the result.  Application code gets the Iago [mmap]-masking
    pass instead (applications are {e not} sandboxed — the paper
    instruments only the OS). *)

(** Build mode for kernel code. *)
type mode =
  | Native_build  (** baseline: no instrumentation *)
  | Virtual_ghost  (** sandboxing + CFI *)

type compiled = {
  image : Native.image;
  linked : Linker.image;
      (** the executor-ready linked form of [image]; what the signed
          translation cache stores and the executor runs *)
  instrumented_ir : Ir.program;  (** the IR actually lowered *)
  mode : mode;
}

exception Rejected of string
(** The VM refuses to translate: malformed IR or failed post-lowering
    CFI audit. *)

val compile_kernel_code :
  ?mode:mode ->
  ?optimize:bool ->
  ?mitigation:Mitigation.t ->
  ?base:int64 ->
  ?globals:(string * int64) list ->
  Ir.program ->
  compiled
(** Translate kernel or kernel-module code.  Default mode is
    [Virtual_ghost].  With [~optimize:true] the {!Opt_pass} runs before
    instrumentation (the orderings compose safely either way; see the
    fuzz suite).  [mitigation] (default [Off], [Virtual_ghost] mode
    only) selects the Spectre-hardening of the sandbox: [Safe_mask]
    switches {!Sandbox_pass} to the branchless masking sequence;
    [Fence] keeps the classic sequence and runs {!Fence_pass} after
    it. *)

val compile_application_code :
  ?mmap_callees:string list -> ?base:int64 -> Ir.program -> compiled
(** Translate ghosting-application code: no sandboxing or CFI, but
    [mmap] return values are masked out of the ghost partition.
    [mmap_callees] defaults to [["extern.mmap"]]. *)
