(* Closure-compiled execution engine.

   [compile] translates a linked image once, at load time, into an
   array of OCaml closures — one per code slot — with every operand,
   call target, arity check and error message pre-resolved at
   translation time.  Steady-state execution is then a chain of tail
   calls through the closure array: the per-instruction constructor
   match and operand decode of {!Executor.run} disappear entirely.

   The contract is byte-identical observable behaviour with the
   slot-file executor: the same [charge] calls with the same
   {!Obs.Tag} attribution in the same order, the same exceptions with
   the same messages, the same fuel accounting, the same
   [tamper_return] consultation, and the same generation-stamped
   register-file stack semantics.  Every closure body below is a
   transliteration of the corresponding {!Executor.run} match arm —
   down to application shapes, so that OCaml's argument evaluation
   order (and therefore trap order on undefined registers) is
   preserved.

   Superinstruction fusion: three hot adjacent pairs are additionally
   compiled into a single closure that inlines both instruction bodies
   back to back (each keeping its own fuel tick and [Exec] charge, so
   cycle streams and out-of-fuel trajectories are unchanged):

   - cmp+branch   — an [LCmp] whose successor is an [LJz] consuming
     its destination: the branch tests the freshly computed flag
     without a register-file round trip through the dispatcher;
   - mask+load / load+mask — an [LBin And/Or] feeding the address of
     the adjacent [LLoad] (the sandbox masking idiom), or an [LLoad]
     feeding an adjacent masking [LBin];
   - push+call    — every static [LCall] pre-resolves callee, arity,
     parameter slots and frame sizes at translation time, so argument
     push and control transfer are one closure with no runtime symbol
     or entry lookups (ill-formed call sites compile to closures that
     raise the identical [Exec_trap] only if actually executed).

   The closure compiler is *outside* the TCB: it runs only on images
   that already passed {!Image_verify} (enforced by
   {!Trans_cache.find_compiled}, the kernel's only route to a compiled
   artifact), and its behaviour is pinned against the slot executor by
   the cycle goldens and the three-way differential fuzz rather than
   trusted. *)

(* The register file is a flat byte buffer of unboxed 64-bit values
   rather than an [int64 array]: a boxed-int64 array store pays the
   caml_modify write barrier on every register write, which is pure
   overhead in the hottest path of the whole engine.  Reads rebox, but
   the result usually feeds straight into an arithmetic primitive. *)
type state = {
  mutable rf : Bytes.t;
  mutable def : int array;
  mutable stack : int array;
  mutable sp : int;
  mutable base : int;
  mutable cur : int;
  mutable gen_ctr : int;
  mutable gen : int;
  mutable fuel : int;
  mutable pc : int;
  mutable result : int64;
  mutable running : bool;
  scratch : int64 array;
  env : Executor.env;
  (* hot env callbacks hoisted out of the record hop: one load instead
     of two on every tick / memory access *)
  charge : Obs.Tag.t -> int -> unit;
  mem_load : int64 -> Ir.width -> int64;
  mem_store : int64 -> Ir.width -> int64 -> unit;
  spec_depth : int;  (* hoisted: checked on every resolved conditional *)
}

type stats = { slots : int; fused_pairs : int; static_calls : int }

(* Recognised shape of one {!Sandbox_pass.mask_sequence} in linked
   code: cmp / or / select / cmp / cmp / and / select computing a safe
   address into [g_s].  Field names follow the pass ([h]igh, [o]red,
   [e]scaped, [a]bove/[b]elow sva, [i]n-sva, [s]afe). *)
type guard = {
  g_a : Linker.operand;  (* the original address operand *)
  g_c1 : int64;
  g_h : int;
  g_c2 : int64;
  g_o : int;
  g_e : int;
  g_c3 : int64;
  g_av : int;
  g_c4 : int64;
  g_bv : int;
  g_iv : int;
  g_t : int64;
  g_s : int;
}

let guard_dsts g = [ g.g_h; g.g_o; g.g_e; g.g_av; g.g_bv; g.g_iv; g.g_s ]

type t = {
  image : Linker.image;
  code : (state -> unit) array;  (* ncode + 1 entries; the last one is
                                    the fall-off-the-end trap *)
  stats : stats;
}

let image t = t.image
let stats t = t.stats

(* call stack layout, as in {!Executor}:
   prev_base, prev_func, prev_gen, ret_pc, ret_dst *)
let stk_stride = 5

let[@inline] tick st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise (Executor.Exec_trap "out of fuel");
  st.charge Obs.Tag.Exec 1

(* Pure operations, resolved to monomorphic closures at translation
   time: {!Eval.eval_binop} / {!Eval.eval_cmp} re-match the operator on
   every execution, and [eval_cmp] compares through polymorphic
   equality.  Same arithmetic, same trap messages ({!Executor.run}
   rewraps [Eval.Trap] into [Exec_trap]; the division closures raise
   [Exec_trap] directly with the identical text). *)
let binfn (op : Ir.binop) : int64 -> int64 -> int64 =
  match op with
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Mul -> Int64.mul
  | Udiv ->
      fun a b ->
        if Int64.equal b 0L then raise (Executor.Exec_trap "udiv by zero")
        else Int64.unsigned_div a b
  | Urem ->
      fun a b ->
        if Int64.equal b 0L then raise (Executor.Exec_trap "urem by zero")
        else Int64.unsigned_rem a b
  | And -> Int64.logand
  | Or -> Int64.logor
  | Xor -> Int64.logxor
  | Shl -> fun a b -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Lshr ->
      fun a b -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Ashr -> fun a b -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let cmpfn (op : Ir.cmp) : int64 -> int64 -> int64 =
  match op with
  | Eq -> fun a b -> if Int64.equal a b then 1L else 0L
  | Ne -> fun a b -> if Int64.equal a b then 0L else 1L
  | Ult -> fun a b -> if Int64.unsigned_compare a b < 0 then 1L else 0L
  | Ule -> fun a b -> if Int64.unsigned_compare a b <= 0 then 1L else 0L
  | Ugt -> fun a b -> if Int64.unsigned_compare a b > 0 then 1L else 0L
  | Uge -> fun a b -> if Int64.unsigned_compare a b >= 0 then 1L else 0L
  | Slt -> fun a b -> if Int64.compare a b < 0 then 1L else 0L
  | Sle -> fun a b -> if Int64.compare a b <= 0 then 1L else 0L

let trunc (width : Ir.width) : int64 -> int64 =
  match width with
  | W8 -> fun v -> Int64.logand v 0xffL
  | W16 -> fun v -> Int64.logand v 0xffffL
  | W32 -> fun v -> Int64.logand v 0xffffffffL
  | W64 -> fun v -> v

(* Register-file accesses use unchecked primitives: slot indices come
   from the linker (always < the owning function's [f_nregs]) and
   [ensure_rf] maintains capacity >= base + nregs at every push, so the
   bounds hold by construction on any linker-produced image — and the
   kernel only ever compiles verifier-accepted images. *)
external rf_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external rf_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] write st slot v =
  let i = st.base + slot in
  rf_set st.rf (i lsl 3) v;
  Array.unsafe_set st.def i st.gen

let ensure_rf st need =
  if need > Array.length st.def then begin
    let n' = max (2 * Array.length st.def) need in
    let rf' = Bytes.make (n' lsl 3) '\000' and def' = Array.make n' 0 in
    Bytes.blit st.rf 0 rf' 0 (Bytes.length st.rf);
    Array.blit st.def 0 def' 0 (Array.length st.def);
    st.rf <- rf';
    st.def <- def'
  end

let push_frame st ~caller_nregs ~callee ~callee_nregs ~params ~np ~ret_pc
    ~ret_dst =
  let s = st.sp in
  if (s + 1) * stk_stride > Array.length st.stack then begin
    let stack' = Array.make (2 * Array.length st.stack) 0 in
    Array.blit st.stack 0 stack' 0 (Array.length st.stack);
    st.stack <- stack'
  end;
  let stk = st.stack in
  let o = s * stk_stride in
  stk.(o) <- st.base;
  stk.(o + 1) <- st.cur;
  stk.(o + 2) <- st.gen;
  stk.(o + 3) <- ret_pc;
  stk.(o + 4) <- ret_dst;
  st.sp <- s + 1;
  let base' = st.base + caller_nregs in
  ensure_rf st (base' + callee_nregs);
  st.base <- base';
  st.cur <- callee;
  st.gen_ctr <- st.gen_ctr + 1;
  st.gen <- st.gen_ctr;
  for j = 0 to np - 1 do
    let i = base' + Array.unsafe_get params j in
    rf_set st.rf (i lsl 3) (Array.unsafe_get st.scratch j);
    Array.unsafe_set st.def i st.gen
  done

let pop_frame st =
  let s = st.sp - 1 in
  st.sp <- s;
  let stk = st.stack in
  let o = s * stk_stride in
  st.base <- stk.(o);
  st.cur <- stk.(o + 1);
  st.gen <- stk.(o + 2);
  (stk.(o + 3), stk.(o + 4))

let eval_args_rt st (rs : (state -> int64) array) =
  let n = Array.length rs in
  for j = 0 to n - 1 do
    Array.unsafe_set st.scratch j ((Array.unsafe_get rs j) st)
  done;
  n

let compile (image : Linker.image) : t =
  let lcode = image.Linker.lcode in
  let funcs = image.Linker.funcs in
  let entry_of = image.Linker.entry_of in
  let ret_label_of = image.Linker.ret_label_of in
  let label_of = image.Linker.label_of in
  let native = image.Linker.native in
  let ncode = Array.length lcode in
  let code = Array.make (ncode + 1) (fun (_ : state) -> ()) in
  let fused_pairs = ref 0 in
  let static_calls = ref 0 in
  (* operand readers: immediates close over the value, slots over the
     definedness probe (error messages name the register through the
     runtime current function, exactly as the slot executor does).
     [rslot] is the direct-call form used by the shape-specialised
     closures below; the cold undefined-register path stays out of line
     so the probe itself inlines. *)
  let undef_slot st s =
    raise
      (Executor.Exec_trap
         (Printf.sprintf "read of undefined register %s"
            funcs.(st.cur).Linker.f_names.(s)))
  in
  let[@inline] rslot st s =
    let i = st.base + s in
    if Array.unsafe_get st.def i = st.gen then rf_get st.rf (i lsl 3)
    else undef_slot st s
  in
  let rd (o : Linker.operand) : state -> int64 =
    match o with
    | Imm x -> fun _ -> x
    | Slot s -> fun st -> rslot st s
  in
  let readers = Array.map rd in
  (* dispatch: every translated target index is < ncode by linker
     construction, and [next] tops out at the fall-off-the-end trap slot,
     so the bounds check on the closure array is dead *)
  let[@inline] goto j st = (Array.unsafe_get code j) st in
  (* --- sandbox-guard superinstruction --------------------------- *)
  (* The seven-instruction masking sequence every sandboxed memory
     access carries is the hottest code in any ghost-compiled image.
     Recognise it structurally (any constants; the dataflow wiring and
     operators must match, all destinations distinct so the local
     value-forwarding below cannot be aliased away from register-file
     semantics) and compile the whole sequence into one closure: seven
     fuel ticks and seven register writes exactly as the slot executor
     performs them — charge-call granularity is observable through
     {!Obs} sinks and must not change — but with intermediate values
     forwarded in OCaml locals, no definedness probes on registers
     written earlier in the same sequence, and no dispatch between the
     slots.  The only operand that can trap is the initial address
     read, in first position, exactly as unfused. *)
  let rec distinct = function
    | [] -> true
    | x :: rest -> (not (List.mem (x : int) rest)) && distinct rest
  in
  let guard_at i : guard option =
    if i + 6 >= ncode then None
    else
      match
        ( lcode.(i),
          lcode.(i + 1),
          lcode.(i + 2),
          lcode.(i + 3),
          lcode.(i + 4),
          lcode.(i + 5),
          lcode.(i + 6) )
      with
      | ( LCmp { dst = h; op = Uge; a; b = Imm c1 },
          LBin { dst = o; op = Or; a = a2; b = Imm c2 },
          LSelect { dst = e; cond = Slot hc; if_true = Slot ot; if_false = f },
          LCmp { dst = av; op = Uge; a = Slot e1; b = Imm c3 },
          LCmp { dst = bv; op = Ult; a = Slot e2; b = Imm c4 },
          LBin { dst = iv; op = And; a = Slot av1; b = Slot bv1 },
          LSelect { dst = s; cond = Slot iv1; if_true = Imm t; if_false = Slot e3 }
        )
        when a2 = a && f = a && hc = h && ot = o && e1 = e && e2 = e && e3 = e
             && av1 = av && bv1 = bv && iv1 = iv
             && distinct [ h; o; e; av; bv; iv; s ]
             && (match a with
                | Slot sa -> not (List.mem sa [ h; o; e; av; bv; iv; s ])
                | Imm _ -> true) ->
          Some
            {
              g_a = a;
              g_c1 = c1;
              g_h = h;
              g_c2 = c2;
              g_o = o;
              g_e = e;
              g_c3 = c3;
              g_av = av;
              g_c4 = c4;
              g_bv = bv;
              g_iv = iv;
              g_t = t;
              g_s = s;
            }
      | _ -> None
  in
  (* Speculation hooks, matching {!Executor.run} window for window: the
     compiled engine must pollute the same cache lines at the same
     resolution points, or cross-engine cycle parity breaks the moment
     a later architectural access hits (or misses) a line only one
     engine warmed. *)
  let read_opt st s =
    let i = st.base + s in
    if Array.unsafe_get st.def i = st.gen then Some (rf_get st.rf (i lsl 3))
    else None
  in
  let open_window st ~shadow ~pc =
    st.env.Executor.spec_window ();
    Spec_exec.transient_window ~image ~depth:st.spec_depth
      ~read:(read_opt st) ~spec_load:st.env.Executor.spec_load ~shadow ~pc
  in
  (* Seven ticks, seven writes, values forwarded in locals; returns the
     safe address for the fused access that follows.  [at] is the
     guard's first slot index — fusion must not lose the transient
     windows the two selects open when executed one by one. *)
  let run_guard ~at g : state -> int64 =
    let read_a =
      match g.g_a with
      | Linker.Imm v -> fun _ -> v
      | Slot sa -> fun st -> rslot st sa
    in
    fun st ->
      tick st;
      let a = read_a st in
      let h = if Int64.unsigned_compare a g.g_c1 >= 0 then 1L else 0L in
      write st g.g_h h;
      tick st;
      let o = Int64.logor a g.g_c2 in
      write st g.g_o o;
      tick st;
      let e = if Int64.equal h 0L then a else o in
      write st g.g_e e;
      if st.spec_depth > 0 then
        open_window st
          ~shadow:(Some (g.g_e, if Int64.equal h 0L then o else a))
          ~pc:(at + 3);
      tick st;
      let av = if Int64.unsigned_compare e g.g_c3 >= 0 then 1L else 0L in
      write st g.g_av av;
      tick st;
      let bv = if Int64.unsigned_compare e g.g_c4 < 0 then 1L else 0L in
      write st g.g_bv bv;
      tick st;
      let iv = Int64.logand av bv in
      write st g.g_iv iv;
      tick st;
      let s = if Int64.equal iv 0L then e else g.g_t in
      write st g.g_s s;
      if st.spec_depth > 0 then
        open_window st
          ~shadow:(Some (g.g_s, if Int64.equal iv 0L then g.g_t else e))
          ~pc:(at + 7);
      s
  in
  let checked_target label target =
    let masked = Layout.mask_kernel_target target in
    match Native.index_of_addr native masked with
    | None ->
        raise
          (Executor.Cfi_violation
             (Printf.sprintf "control transfer to %s outside translated code"
                (Vg_util.U64.to_hex masked)))
    | Some idx ->
        if label_of.(idx) = label then idx
        else
          raise
            (Executor.Cfi_violation
               (Printf.sprintf "target %s does not carry the expected CFI label"
                  (Vg_util.U64.to_hex masked)))
  in
  let do_call_dyn st ~ret_dst ~target ~ret_pc ~nargs =
    let callee = entry_of.(target) in
    if callee < 0 then
      raise
        (Executor.Exec_trap
           (Printf.sprintf "call to %s which is not a function entry"
              (Linker.describe_slot image target)));
    let f = funcs.(callee) in
    let np = Array.length f.Linker.f_params in
    if np <> nargs then
      raise
        (Executor.Exec_trap
           (Printf.sprintf "call %s: arity mismatch (%d vs %d)" f.Linker.f_name
              np nargs));
    push_frame st ~caller_nregs:funcs.(st.cur).Linker.f_nregs ~callee
      ~callee_nregs:f.Linker.f_nregs ~params:f.Linker.f_params ~np ~ret_pc
      ~ret_dst;
    st.pc <- target
  in
  let do_return st rdv =
    (match rdv with Some r -> st.result <- r st | None -> st.result <- 0L);
    if st.sp = 0 then st.running <- false
    else begin
      let ret_pc, ret_dst = pop_frame st in
      match st.env.Executor.tamper_return with
      | None ->
          if ret_pc >= ncode then
            raise
              (Executor.Exec_trap
                 (Printf.sprintf "return to %s outside image"
                    (Vg_util.U64.to_hex (Native.addr_of_index native ret_pc))));
          if ret_dst >= 0 then write st ret_dst st.result;
          st.pc <- ret_pc
      | Some f -> (
          let ret_addr = f (Native.addr_of_index native ret_pc) in
          match Native.index_of_addr native ret_addr with
          | Some idx ->
              if ret_dst >= 0 then write st ret_dst st.result;
              st.pc <- idx
          | None ->
              raise
                (Executor.Exec_trap
                   (Printf.sprintf "return to %s outside image"
                      (Vg_util.U64.to_hex ret_addr))))
    end
  in
  let do_return_checked st label rdv =
    (match rdv with Some r -> st.result <- r st | None -> st.result <- 0L);
    if st.sp = 0 then st.running <- false
    else begin
      let ret_pc, ret_dst = pop_frame st in
      st.charge Obs.Tag.Cfi Cfi_pass.check_extra_cycles;
      let target =
        match st.env.Executor.tamper_return with
        | None ->
            if ret_pc < ncode && ret_label_of.(ret_pc) = label then ret_pc
            else checked_target label (Native.addr_of_index native ret_pc)
        | Some f -> checked_target label (f (Native.addr_of_index native ret_pc))
      in
      if ret_dst >= 0 then write st ret_dst st.result;
      st.pc <- target
    end
  in
  let compile_at i : state -> unit =
    let next = i + 1 in
    let successor = if next < ncode then Some lcode.(next) else None in
    let guard_fused : (state -> unit) option =
      match guard_at i with
      | None -> None
      | Some g when i + 7 < ncode -> (
          let gb = run_guard ~at:i g in
          let after = i + 8 in
          match lcode.(i + 7) with
          | LLoad { dst; addr = Slot sa; width } when sa = g.g_s ->
              fused_pairs := !fused_pairs + 7;
              Some
                (match width with
                | Ir.W64 ->
                    fun st ->
                      let s = gb st in
                      tick st;
                      write st dst (st.mem_load s Ir.W64);
                      goto after st
                | w ->
                    let tr = trunc w in
                    fun st ->
                      let s = gb st in
                      tick st;
                      write st dst (tr (st.mem_load s w));
                      goto after st)
          | LStore { src; addr = Slot sa; width } when sa = g.g_s ->
              fused_pairs := !fused_pairs + 7;
              let rsrc = rd src in
              Some
                (match width with
                | Ir.W64 ->
                    fun st ->
                      let s = gb st in
                      tick st;
                      st.mem_store s Ir.W64 (rsrc st);
                      goto after st
                | w ->
                    let tr = trunc w in
                    fun st ->
                      let s = gb st in
                      tick st;
                      st.mem_store s w (tr (rsrc st));
                      goto after st)
          | LAtomic { dst; op; addr = Slot sa; operand_; width }
            when sa = g.g_s ->
              fused_pairs := !fused_pairs + 7;
              let rop = rd operand_ in
              let f = binfn op and tr = trunc width in
              Some
                (fun st ->
                  let sa = gb st in
                  tick st;
                  let old = tr (st.mem_load sa width) in
                  st.mem_store sa width (tr (f old (rop st)));
                  write st dst old;
                  goto after st)
          | LCmp _ -> (
              (* a memcpy carries two back-to-back guards (dst then
                 src); the destination's safe slot must not be
                 clobbered by the source's sequence *)
              match guard_at (i + 7) with
              | Some g2
                when i + 14 < ncode
                     && not (List.mem g.g_s (guard_dsts g2)) -> (
                  match lcode.(i + 14) with
                  | LMemcpy { dst = Slot d; src = Slot s2; len }
                    when d = g.g_s && s2 = g2.g_s ->
                      fused_pairs := !fused_pairs + 14;
                      let gb2 = run_guard ~at:(i + 7) g2 in
                      let after = i + 15 in
                      Some
                        (match len with
                        | Imm len_v ->
                            let copy_cycles =
                              Int64.to_int (Vg_util.U64.div len_v 8L)
                            in
                            fun st ->
                              let d = gb st in
                              let s = gb2 st in
                              tick st;
                              st.charge Obs.Tag.Copy copy_cycles;
                              st.env.Executor.memcpy ~dst:d ~src:s ~len:len_v;
                              goto after st
                        | _ ->
                            let rlen = rd len in
                            fun st ->
                              let d = gb st in
                              let s = gb2 st in
                              tick st;
                              let len_v = rlen st in
                              st.charge Obs.Tag.Copy
                                (Int64.to_int (Vg_util.U64.div len_v 8L));
                              st.env.Executor.memcpy ~dst:d ~src:s ~len:len_v;
                              goto after st)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
      | Some _ -> None
    in
    match guard_fused with
    | Some f -> f
    | None -> (
    match (lcode.(i), successor) with
    (* --- superinstruction: cmp+branch ----------------------------- *)
    | LCmp { dst; op; a; b }, Some (LJz { cond = Slot c; target })
      when c = dst -> (
        incr fused_pairs;
        let cmp = cmpfn op in
        let fall = i + 2 in
        let finish st x =
          write st dst x;
          tick st;
          let taken = Int64.equal x 0L in
          if st.spec_depth > 0 then
            open_window st ~shadow:None ~pc:(if taken then fall else target);
          if taken then goto target st else goto fall st
        in
        match (a, b) with
        | Slot sa, Slot sb ->
            fun st ->
              tick st;
              finish st (cmp (rslot st sa) (rslot st sb))
        | Slot sa, Imm vb ->
            fun st ->
              tick st;
              finish st (cmp (rslot st sa) vb)
        | Imm va, Slot sb ->
            fun st ->
              tick st;
              finish st (cmp va (rslot st sb))
        | Imm va, Imm vb ->
            let x = cmp va vb in
            fun st ->
              tick st;
              finish st x)
    (* --- superinstruction: mask+load ------------------------------ *)
    | ( LBin { dst = m; op = (Ir.And | Ir.Or) as op; a; b },
        Some (LLoad { dst = ldst; addr = Slot am; width }) )
      when am = m -> (
        incr fused_pairs;
        let f = binfn op and tr = trunc width in
        let fall = i + 2 in
        (* the masked address was written one instruction ago in this
           very closure: read it back without the definedness probe *)
        let finish st =
          tick st;
          write st ldst
            (tr (st.mem_load (rf_get st.rf ((st.base + m) lsl 3)) width));
          goto fall st
        in
        match (a, b) with
        | Slot sa, Slot sb ->
            fun st ->
              tick st;
              write st m (f (rslot st sa) (rslot st sb));
              finish st
        | Slot sa, Imm vb ->
            fun st ->
              tick st;
              write st m (f (rslot st sa) vb);
              finish st
        | Imm va, Slot sb ->
            fun st ->
              tick st;
              write st m (f va (rslot st sb));
              finish st
        | Imm va, Imm vb ->
            fun st ->
              tick st;
              write st m (f va vb);
              finish st)
    (* --- superinstruction: load+mask ------------------------------ *)
    | ( LLoad { dst = l; addr; width },
        Some (LBin { dst = bdst; op = (Ir.And | Ir.Or) as bop; a = ba; b = bb })
      )
      when ba = Linker.Slot l || bb = Linker.Slot l ->
        incr fused_pairs;
        let raddr = rd addr
        and rba = rd ba
        and rbb = rd bb
        and f = binfn bop
        and tr = trunc width in
        fun st ->
          tick st;
          write st l (tr (st.mem_load (raddr st) width));
          tick st;
          write st bdst (f (rba st) (rbb st));
          goto (i + 2) st
    (* --- single instructions -------------------------------------- *)
    | LMov { dst; src }, _ -> (
        match src with
        | Imm x ->
            fun st ->
              tick st;
              write st dst x;
              goto next st
        | Slot s ->
            fun st ->
              tick st;
              write st dst (rslot st s);
              goto next st)
    | LBin { dst; op; a; b }, _ -> (
        let f = binfn op in
        match (a, b) with
        | Slot sa, Slot sb ->
            fun st ->
              tick st;
              write st dst (f (rslot st sa) (rslot st sb));
              goto next st
        | Slot sa, Imm vb ->
            fun st ->
              tick st;
              write st dst (f (rslot st sa) vb);
              goto next st
        | Imm va, Slot sb ->
            fun st ->
              tick st;
              write st dst (f va (rslot st sb));
              goto next st
        | Imm va, Imm vb ->
            fun st ->
              tick st;
              write st dst (f va vb);
              goto next st)
    | LCmp { dst; op; a; b }, _ -> (
        let cmp = cmpfn op in
        match (a, b) with
        | Slot sa, Slot sb ->
            fun st ->
              tick st;
              write st dst (cmp (rslot st sa) (rslot st sb));
              goto next st
        | Slot sa, Imm vb ->
            fun st ->
              tick st;
              write st dst (cmp (rslot st sa) vb);
              goto next st
        | Imm va, Slot sb ->
            fun st ->
              tick st;
              write st dst (cmp va (rslot st sb));
              goto next st
        | Imm va, Imm vb ->
            fun st ->
              tick st;
              write st dst (cmp va vb);
              goto next st)
    | LSelect { dst; cond; if_true; if_false }, _ ->
        let rcond = rd cond and rt_ = rd if_true and rf_ = rd if_false in
        fun st ->
          tick st;
          let c = rcond st in
          write st dst (if Int64.equal c 0L then rf_ st else rt_ st);
          if st.spec_depth > 0 then begin
            let wrong = if Int64.equal c 0L then if_true else if_false in
            match
              (match wrong with
              | Linker.Imm x -> Some x
              | Linker.Slot s -> read_opt st s)
            with
            | Some wv -> open_window st ~shadow:(Some (dst, wv)) ~pc:next
            | None -> ()
          end;
          goto next st
    | LLoad { dst; addr; width }, _ -> (
        match (addr, width) with
        | Slot sa, W64 ->
            fun st ->
              tick st;
              write st dst (st.mem_load (rslot st sa) Ir.W64);
              goto next st
        | Imm va, W64 ->
            fun st ->
              tick st;
              write st dst (st.mem_load va Ir.W64);
              goto next st
        | Slot sa, w ->
            let tr = trunc w in
            fun st ->
              tick st;
              write st dst (tr (st.mem_load (rslot st sa) w));
              goto next st
        | Imm va, w ->
            let tr = trunc w in
            fun st ->
              tick st;
              write st dst (tr (st.mem_load va w));
              goto next st)
    | LStore { src; addr; width }, _ -> (
        match width with
        | W64 -> (
            match (addr, src) with
            | Slot sa, Slot ss ->
                fun st ->
                  tick st;
                  st.mem_store (rslot st sa) Ir.W64 (rslot st ss);
                  goto next st
            | Slot sa, Imm vs ->
                fun st ->
                  tick st;
                  st.mem_store (rslot st sa) Ir.W64 vs;
                  goto next st
            | Imm va, Slot ss ->
                fun st ->
                  tick st;
                  st.mem_store va Ir.W64 (rslot st ss);
                  goto next st
            | Imm va, Imm vs ->
                fun st ->
                  tick st;
                  st.mem_store va Ir.W64 vs;
                  goto next st)
        | w ->
            let rsrc = rd src and raddr = rd addr in
            let tr = trunc w in
            fun st ->
              tick st;
              st.mem_store (raddr st) w (tr (rsrc st));
              goto next st)
    | LMemcpy { dst; src; len }, _ -> (
        let rdst = rd dst and rsrc = rd src in
        match len with
        | Imm len_v ->
            (* constant length: the Copy surcharge is a translation-time
               constant *)
            let copy_cycles = Int64.to_int (Vg_util.U64.div len_v 8L) in
            fun st ->
              tick st;
              st.charge Obs.Tag.Copy copy_cycles;
              st.env.Executor.memcpy ~dst:(rdst st) ~src:(rsrc st) ~len:len_v;
              goto next st
        | _ ->
            let rlen = rd len in
            fun st ->
              tick st;
              let len_v = rlen st in
              st.charge Obs.Tag.Copy (Int64.to_int (Vg_util.U64.div len_v 8L));
              st.env.Executor.memcpy ~dst:(rdst st) ~src:(rsrc st) ~len:len_v;
              goto next st)
    | LAtomic { dst; op; addr; operand_; width }, _ ->
        let raddr = rd addr and rop = rd operand_ in
        let f = binfn op and tr = trunc width in
        fun st ->
          tick st;
          let a = raddr st in
          let old = tr (st.mem_load a width) in
          st.mem_store a width (tr (f old (rop st)));
          write st dst old;
          goto next st
    | LJmp target, _ ->
        fun st ->
          tick st;
          goto target st
    | LJz { cond; target }, _ -> (
        match cond with
        | Slot s ->
            fun st ->
              tick st;
              let taken = Int64.equal (rslot st s) 0L in
              if st.spec_depth > 0 then
                open_window st ~shadow:None
                  ~pc:(if taken then next else target);
              if taken then goto target st else goto next st
        | Imm x ->
            let taken = Int64.equal x 0L in
            let arch = if taken then target else next
            and wrong = if taken then next else target in
            fun st ->
              tick st;
              if st.spec_depth > 0 then open_window st ~shadow:None ~pc:wrong;
              goto arch st)
    (* --- superinstruction: push+call ------------------------------ *)
    | LCall { dst; target; args }, _ -> (
        let rs = readers args in
        let nargs = Array.length args in
        let callee = entry_of.(target) in
        if callee < 0 then
          let msg =
            Printf.sprintf "call to %s which is not a function entry"
              (Linker.describe_slot image target)
          in
          fun st ->
            tick st;
            ignore (eval_args_rt st rs);
            raise (Executor.Exec_trap msg)
        else
          let f = funcs.(callee) in
          let np = Array.length f.Linker.f_params in
          if np <> nargs then
            let msg =
              Printf.sprintf "call %s: arity mismatch (%d vs %d)"
                f.Linker.f_name np nargs
            in
            fun st ->
              tick st;
              ignore (eval_args_rt st rs);
              raise (Executor.Exec_trap msg)
          else begin
            incr static_calls;
            let params = f.Linker.f_params in
            let callee_nregs = f.Linker.f_nregs in
            fun st ->
              tick st;
              ignore (eval_args_rt st rs);
              push_frame st ~caller_nregs:funcs.(st.cur).Linker.f_nregs ~callee
                ~callee_nregs ~params ~np ~ret_pc:next ~ret_dst:dst;
              goto target st
          end)
    | LCallExtern { dst; name; args }, _ ->
        let rs = readers args in
        fun st ->
          tick st;
          let n = eval_args_rt st rs in
          (* external code may retain the array; never hand out scratch *)
          let res = st.env.Executor.extern name (Array.sub st.scratch 0 n) in
          if dst >= 0 then write st dst res;
          goto next st
    | LCallIndirect { dst; target; args }, _ ->
        let rtarget = rd target and rs = readers args in
        fun st -> (
          tick st;
          let addr = rtarget st in
          let nargs = eval_args_rt st rs in
          match Native.index_of_addr native addr with
          | Some idx ->
              do_call_dyn st ~ret_dst:dst ~target:idx ~ret_pc:next ~nargs;
              goto st.pc st
          | None ->
              let res =
                st.env.Executor.call_foreign addr (Array.sub st.scratch 0 nargs)
              in
              if dst >= 0 then write st dst res;
              goto next st)
    | LCallIndirectChecked { dst; target; args; label }, _ ->
        let rtarget = rd target and rs = readers args in
        fun st ->
          tick st;
          let addr = rtarget st in
          let nargs = eval_args_rt st rs in
          st.charge Obs.Tag.Cfi Cfi_pass.check_extra_cycles;
          let idx = checked_target label addr in
          do_call_dyn st ~ret_dst:dst ~target:idx ~ret_pc:next ~nargs;
          goto st.pc st
    | LRet value, _ ->
        let rdv = Option.map rd value in
        fun st ->
          tick st;
          do_return st rdv;
          if st.running then goto st.pc st
    | LRetChecked { value; label }, _ ->
        let rdv = Option.map rd value in
        fun st ->
          tick st;
          do_return_checked st label rdv;
          if st.running then goto st.pc st
    | LCfiLabel _, _ ->
        fun st ->
          tick st;
          goto next st
    | LIoRead { dst; port }, _ ->
        let rport = rd port in
        fun st ->
          tick st;
          write st dst (st.env.Executor.io_read (rport st));
          goto next st
    | LIoWrite { port; src }, _ ->
        let rport = rd port and rsrc = rd src in
        fun st ->
          tick st;
          st.env.Executor.io_write (rport st) (rsrc st);
          goto next st
    | LFence, _ ->
        fun st ->
          tick st;
          st.charge Obs.Tag.Spec Fence_pass.fence_cycles;
          goto next st
    | LHalt, _ ->
        fun st ->
          tick st;
          raise (Executor.Exec_trap "halt / unreachable executed"))
  in
  for i = 0 to ncode - 1 do
    code.(i) <- compile_at i
  done;
  (* falling off the end of the image is the interpreter's bounds trap *)
  code.(ncode) <-
    (fun st ->
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then raise (Executor.Exec_trap "out of fuel");
      raise
        (Executor.Exec_trap (Printf.sprintf "pc %d out of code bounds" ncode)));
  {
    image;
    code;
    stats =
      { slots = ncode; fused_pairs = !fused_pairs; static_calls = !static_calls };
  }

let run ?(fuel = 50_000_000) (env : Executor.env) t entry args =
  let image = t.image in
  let fid =
    match Linker.find_func image entry with
    | Some id -> id
    | None -> raise Not_found
  in
  let funcs = image.Linker.funcs in
  let f0 = funcs.(fid) in
  if Array.length f0.Linker.f_params <> Array.length args then
    raise
      (Executor.Exec_trap
         (Printf.sprintf "call %s: arity mismatch (%d vs %d)" f0.Linker.f_name
            (Array.length f0.Linker.f_params) (Array.length args)));
  let nr = max 64 f0.Linker.f_nregs in
  let st =
    {
      rf = Bytes.make (nr lsl 3) '\000';
      def = Array.make nr 0;
      stack = Array.make (8 * stk_stride) 0;
      sp = 0;
      base = 0;
      cur = fid;
      gen_ctr = 1;
      gen = 1;
      fuel;
      pc = f0.Linker.f_entry;
      result = 0L;
      running = true;
      scratch = Array.make image.Linker.max_args 0L;
      env;
      charge = env.Executor.charge;
      mem_load = env.Executor.load;
      mem_store = env.Executor.store;
      spec_depth = env.Executor.spec_depth;
    }
  in
  (* bind the entry frame straight from the caller's array (it may be
     wider than any in-image call site, so [scratch] cannot hold it) *)
  Array.iteri (fun j p -> write st p args.(j)) f0.Linker.f_params;
  let ncode = Array.length image.Linker.lcode in
  while st.running do
    let p = st.pc in
    if p >= 0 && p < ncode then t.code.(p) st
    else begin
      st.fuel <- st.fuel - 1;
      if st.fuel <= 0 then raise (Executor.Exec_trap "out of fuel");
      raise (Executor.Exec_trap (Printf.sprintf "pc %d out of code bounds" p))
    end
  done;
  st.result
