(** Signed native-code translation cache.

    The SVA VM translates virtual-ISA code ahead of time and "caches and
    signs the translations" (paper section 4.2): the operating system
    may store translated images on disk, but the VM only executes an
    image whose signature verifies under the VM's own MAC key — a
    hostile OS cannot inject or patch native code through the cache.

    Since format version 2 the cache stores the {e linked}
    (slot-allocated, executor-ready) form produced by {!Linker.link}:
    register allocation and symbol/label resolution happen once at
    translation time and are amortised across every execution of the
    cached image.  Images are serialised with [Marshal], versioned, and
    the signature is HMAC-SHA256 over the serialised bytes. *)

type t

val create : key:bytes -> t
(** [create ~key] builds a cache trusting signatures under [key]
    (held in SVA-internal memory in the full system). *)

type signed_image = { blob : bytes; tag : bytes }

val format_version : int
(** Serialisation format of the signed blobs (2: linked images). *)

val sign : t -> Linker.image -> signed_image
val verify_and_load : t -> signed_image -> Linker.image option
(** [None] when the blob was modified, signed under a different key, or
    carries a different {!format_version}. *)

val add : t -> name:string -> Linker.image -> unit
(** Sign and retain an image under a name (e.g. "kernel",
    "module.rootkit"). *)

val find : t -> name:string -> Linker.image option
(** Re-verify the stored signature and return the image; [None] if it
    is absent or fails verification. *)

val tamper : t -> name:string -> unit
(** Testing hook simulating a hostile OS flipping a byte of a cached
    translation on disk. *)
