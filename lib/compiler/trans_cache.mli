(** Signed native-code translation cache.

    The SVA VM translates virtual-ISA code ahead of time and "caches and
    signs the translations" (paper section 4.2): the operating system
    may store translated images on disk, but the VM only executes an
    image whose signature verifies under the VM's own MAC key — a
    hostile OS cannot inject or patch native code through the cache.

    Since format version 2 the cache stores the {e linked}
    (slot-allocated, executor-ready) form produced by {!Linker.link}:
    register allocation and symbol/label resolution happen once at
    translation time and are amortised across every execution of the
    cached image.  Format version 3 additionally records whether the
    image claims to be instrumented, and re-proves the instrumentation
    invariants with {!Image_verify} on {e every} cache hit: the
    signature says "the VM produced these bytes", the verifier says
    "these bytes uphold the sandbox and CFI invariants" — so a
    signed-but-malformed image (one the pipeline mis-instrumented at
    translation time, whether by bug or by compromise) is refused with
    {!Rejected_by_verifier} instead of executing.  Images are
    serialised with [Marshal], versioned, and the signature is
    HMAC-SHA256 over the serialised bytes.

    Trust boundary: [Marshal] is memory-safe only on trusted input, so
    the HMAC — checked {e before} any decoding — is the integrity
    boundary for the bytes themselves.  The verifier hardens the system
    against images that were honestly serialised but wrongly
    instrumented; it is {e not} a defence against arbitrary
    attacker-crafted bytes signed under a stolen MAC key, which could
    corrupt the VM inside [Marshal.from_bytes] before verification
    runs. *)

type t

val create : key:bytes -> t
(** [create ~key] builds a cache trusting signatures under [key]
    (held in SVA-internal memory in the full system). *)

type signed_image = { blob : bytes; tag : bytes }

type find_error =
  | Absent  (** no entry under that name *)
  | Bad_signature  (** blob or tag modified, or signed under another key *)
  | Bad_format  (** verified blob of a different {!format_version} *)
  | Rejected_by_verifier of Image_verify.violation list
      (** the signature verified but the image does not uphold the
          instrumentation invariants *)

val describe_find_error : find_error -> string

val format_version : int
(** Serialisation format of the signed blobs (6: linked images plus the
    instrumented flag, the Spectre mitigation the image was compiled
    under, and an optional syscall-flow graph, with compiled-readiness
    cached alongside). *)

val set_syscall_resolver : t -> n:int -> (string -> int option) -> unit
(** Bind the syscall table this cache re-proves policies against: [n]
    is the table size, the function maps extern names (["extern.read"],
    ["sva.foo"]) to syscall numbers.  The kernel calls this once at
    boot; until it is bound, any policy-carrying blob is refused
    (fail closed). *)

val set_mitigation : t -> Mitigation.t -> unit
(** Bind the Spectre mitigation this kernel runs under (default
    [Off]); the kernel calls this once at boot.  Every instrumented
    blob must carry exactly this mitigation — an honestly signed
    translation for another configuration is refused with a [Spec]
    violation — and verification proves the corresponding
    {!Image_verify} Spec invariant. *)

val sign :
  t ->
  instrumented:bool ->
  ?mitigation:Mitigation.t ->
  ?sfip:Sfip.graph ->
  Linker.image ->
  signed_image

val verify_and_load : t -> signed_image -> (Linker.image, find_error) result
(** Check the HMAC, the format version, for instrumented images the
    {!Image_verify} invariants, and for policy-carrying images the
    {!Image_verify.check_policy} re-extraction. *)

val add :
  t ->
  name:string ->
  instrumented:bool ->
  ?mitigation:Mitigation.t ->
  ?sfip:Sfip.graph ->
  Linker.image ->
  unit
(** Sign and retain an image under a name (e.g. "kernel",
    "module.rootkit").  [instrumented] records whether the image must
    re-prove the sandbox/CFI invariants on every load; [mitigation]
    (default [Off]) records the speculation configuration it was
    compiled under; [sfip] embeds a syscall-flow graph, re-proven
    against the code on every load. *)

val find : t -> name:string -> (Linker.image, find_error) result
(** Re-verify the stored signature (and, for instrumented images, the
    instrumentation invariants) and return the image.  The signature is
    re-checked on every call; the verifier pass is memoized per process
    by the blob's HMAC tag, so repeated loads of the same signed
    translation pay its host time once (simulated Verify cycles are
    charged by the kernel per load and are unaffected). *)

val find_with_policy :
  t -> name:string -> (Linker.image * Sfip.graph option, find_error) result
(** Like {!find}, also yielding the syscall-flow graph the signed blob
    carried (already re-proven against the code by the load path). *)

val policy : t -> name:string -> (Sfip.graph option, find_error) result
(** Just the (re-proven) carried graph of a cached translation. *)

val find_compiled : t -> name:string -> (Exec_compile.t, find_error) result
(** Like {!find}, but additionally translate the image into its
    closure-compiled form ({!Exec_compile.compile}), memoized by the
    blob's HMAC tag.  This is the only route to a compiled artifact:
    closure compilation only ever runs on an image the verifier has
    accepted, which is what keeps the closure compiler outside the
    TCB. *)

val verifier_runs : t -> int
(** How many times this cache has actually run {!Image_verify.check}
    (memo misses), for tests pinning the memoization. *)

val tamper : t -> name:string -> unit
(** Testing hook simulating a hostile OS flipping a byte of a cached
    translation on disk. *)
