(* Which Spectre mitigation a kernel/module image is compiled (and
   verified, and cached) under.  Dependency-free so every layer from
   the sandbox pass to the CLI can name the configuration. *)

type t =
  | Off  (** classic predicated masking; speculation-unsafe *)
  | Fence  (** lfence between each mask window and its access *)
  | Safe_mask  (** branchless masking: the mask is a data dependency *)

let all = [ Off; Fence; Safe_mask ]
let to_string = function Off -> "off" | Fence -> "fence" | Safe_mask -> "safe-mask"

let of_string = function
  | "off" | "none" -> Some Off
  | "fence" -> Some Fence
  | "safe-mask" | "safe_mask" | "safemask" -> Some Safe_mask
  | _ -> None

let to_tag = function Off -> 0 | Fence -> 1 | Safe_mask -> 2
let of_tag = function 0 -> Some Off | 1 -> Some Fence | 2 -> Some Safe_mask | _ -> None
