(** The simulated native instruction set that the Virtual Ghost
    compiler lowers virtual-ISA code into.

    A code image is a flat array of instructions.  Each instruction slot
    occupies {!slot_bytes} bytes of the kernel-code virtual range, so
    instruction indexes map to virtual addresses; function symbols
    resolve to the address of their entry slot.  Control flow inside an
    image uses absolute slot indexes (resolved at code generation).

    Control-flow-integrity artifacts are first-class instructions:
    {!constructor:ninstr.NCfiLabel} is an executable no-op carrying a
    label, and the [*_checked] forms of return and indirect call embody
    the check-and-mask sequences the CFI pass inserts.  An image
    compiled without Virtual Ghost simply never contains them. *)

type operand = Reg of string | Imm of int64

type ninstr =
  | NMov of { dst : string; src : operand }
  | NBin of { dst : string; op : Ir.binop; a : operand; b : operand }
  | NCmp of { dst : string; op : Ir.cmp; a : operand; b : operand }
  | NSelect of { dst : string; cond : operand; if_true : operand; if_false : operand }
  | NLoad of { dst : string; addr : operand; width : Ir.width }
  | NStore of { src : operand; addr : operand; width : Ir.width }
  | NMemcpy of { dst : operand; src : operand; len : operand }
  | NAtomic of { dst : string; op : Ir.binop; addr : operand; operand_ : operand; width : Ir.width }
  | NJmp of int
  | NJz of { cond : operand; target : int }
      (** Jump to [target] when [cond] is zero, else fall through. *)
  | NCall of { dst : string option; target : int; args : operand list }
  | NCallExtern of { dst : string option; name : string; args : operand list }
  | NCallIndirect of { dst : string option; target : operand; args : operand list }
  | NCallIndirectChecked of { dst : string option; target : operand; args : operand list; label : int32 }
      (** Masks the target into kernel space, requires the destination
          slot to be [NCfiLabel label]. *)
  | NRet of operand option
  | NRetChecked of { value : operand option; label : int32 }
      (** Like [NRet] but validates the return site's CFI label. *)
  | NCfiLabel of int32
  | NIoRead of { dst : string; port : operand }
  | NIoWrite of { port : operand; src : operand }
  | NFence
      (** Speculation barrier; one slot, drains transient windows. *)
  | NHalt

type symbol = {
  name : string;
  entry : int;  (** entry slot index *)
  params : string list;  (** parameter register names, for call binding *)
}

type image = {
  base : int64;  (** virtual address of slot 0 *)
  code : ninstr array;
  symbols : symbol list;
}

val slot_bytes : int
(** Bytes of address space per instruction slot (16). *)

val addr_of_index : image -> int -> int64
val index_of_addr : image -> int64 -> int option
(** [None] if the address is outside the image or misaligned. *)

val find_symbol : image -> string -> symbol option
val symbol_of_index : image -> int -> symbol option
(** The function whose entry slot is exactly this index. *)

val addr_of_symbol : image -> string -> int64 option
val size_bytes : image -> int

val count : image -> (ninstr -> bool) -> int
(** Number of instructions satisfying a predicate; used by tests and
    overhead reports. *)
