(* Transient execution down a mispredicted path.

   Both execution engines (the slot-file {!Executor} and the
   closure-compiled {!Exec_compile}) open a speculative window at every
   conditional they resolve — select or branch — when the machine runs
   with a non-zero speculation depth.  The window runs the wrong-path
   instruction stream against a shadow register overlay: values computed
   transiently never reach the architectural register file, stores never
   reach memory, and no cycles are charged (a real pipeline squashes the
   work).  The one thing that survives the squash is the cache: every
   transient load warms the line it touches, and that is exactly the
   side channel the Spectre gadget in [lib/attacks] measures.

   The window budget counts *macro-ops*, mirroring the superinstruction
   fusion of {!Exec_compile}: a whole sandbox-guard sequence plus the
   memory access it feeds — the unit the compiled engine executes as
   one closure — retires as one entry in the speculative window, and it
   retires atomically (a real machine does not squash half a fused
   op, so a window with one budget slot left still completes the whole
   guard+load, probe included).  A guard entered mid-way — e.g. a
   window opened at one of its own selects — has lost its fusion and
   its remaining slots count one by one. *)

(* The window dies silently: on budget exhaustion, an instruction with
   side effects speculation cannot have (calls, returns, I/O, fences,
   halt), an undefined register, a faulting transient load, or
   arithmetic that would trap. *)
exception Squash

let trunc (w : Ir.width) v =
  match w with
  | Ir.W8 -> Int64.logand v 0xffL
  | W16 -> Int64.logand v 0xffffL
  | W32 -> Int64.logand v 0xffffffffL
  | W64 -> v

(* Wrong-path arithmetic: same semantics as {!Eval}, but a division
   trap squashes the window instead of raising. *)
let ebin (op : Ir.binop) a b =
  match op with
  | Ir.Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Udiv -> if Int64.equal b 0L then raise Squash else Int64.unsigned_div a b
  | Urem -> if Int64.equal b 0L then raise Squash else Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Ashr -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let ecmp (op : Ir.cmp) a b =
  let t c = if c then 1L else 0L in
  match op with
  | Ir.Eq -> t (Int64.equal a b)
  | Ne -> t (not (Int64.equal a b))
  | Ult -> t (Int64.unsigned_compare a b < 0)
  | Ule -> t (Int64.unsigned_compare a b <= 0)
  | Ugt -> t (Int64.unsigned_compare a b > 0)
  | Uge -> t (Int64.unsigned_compare a b >= 0)
  | Slt -> t (Int64.compare a b < 0)
  | Sle -> t (Int64.compare a b <= 0)

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem (x : int) rest)) && distinct rest

let transient_window ~(image : Linker.image) ~depth
    ~(read : int -> int64 option)
    ~(spec_load : int64 -> Ir.width -> int64 option)
    ~(shadow : (int * int64) option) ~pc:start_pc =
  if depth > 0 then begin
    let lcode = image.Linker.lcode in
    let ncode = Array.length lcode in
    (* shadow overlay: transient writes land here and shadow the
       architectural register file for the rest of the window *)
    let sh : (int, int64) Hashtbl.t = Hashtbl.create 16 in
    (match shadow with Some (s, v) -> Hashtbl.replace sh s v | None -> ());
    let rslot s =
      match Hashtbl.find_opt sh s with
      | Some v -> v
      | None -> ( match read s with Some v -> v | None -> raise Squash)
    in
    let rop (o : Linker.operand) =
      match o with Linker.Imm v -> v | Slot s -> rslot s
    in
    let wr s v = Hashtbl.replace sh s v in
    let pc = ref start_pc in
    (* One fused guard+access macro-op, if the code at [p] is the exact
       shape {!Exec_compile} fuses: the seven-instruction mask sequence
       feeding a load/store/atomic through its safe slot.  Executes the
       whole unit and returns true; returns false (no state change) if
       the shape does not match. *)
    let fused_guard p =
      if p + 7 >= ncode then false
      else
        match
          ( lcode.(p),
            lcode.(p + 1),
            lcode.(p + 2),
            lcode.(p + 3),
            lcode.(p + 4),
            lcode.(p + 5),
            lcode.(p + 6) )
        with
        | ( LCmp { dst = h; op = Uge; a; b = Imm c1 },
            LBin { dst = o; op = Or; a = a2; b = Imm c2 },
            LSelect { dst = e; cond = Slot hc; if_true = Slot ot; if_false = f },
            LCmp { dst = av; op = Uge; a = Slot e1; b = Imm c3 },
            LCmp { dst = bv; op = Ult; a = Slot e2; b = Imm c4 },
            LBin { dst = iv; op = And; a = Slot av1; b = Slot bv1 },
            LSelect
              { dst = s; cond = Slot iv1; if_true = Imm t; if_false = Slot e3 }
          )
          when a2 = a && f = a && hc = h && ot = o && e1 = e && e2 = e
               && e3 = e && av1 = av && bv1 = bv && iv1 = iv
               && distinct [ h; o; e; av; bv; iv; s ]
               && (match a with
                  | Slot sa -> not (List.mem sa [ h; o; e; av; bv; iv; s ])
                  | Imm _ -> true) -> (
            let access =
              match lcode.(p + 7) with
              | Linker.LLoad { dst; addr = Slot sa; width } when sa = s ->
                  Some (`Load (dst, width))
              | LStore { addr = Slot sa; _ } when sa = s -> Some `Store
              | LAtomic { dst; addr = Slot sa; width; _ } when sa = s ->
                  Some (`Atomic (dst, width))
              | _ -> None
            in
            match access with
            | None -> false
            | Some acc ->
                (* the guard's dataflow, with the constants the code
                   actually carries; every intermediate is shadowed so a
                   cracked re-entry sees consistent values *)
                let a = rop a in
                let hv = ecmp Uge a c1 in
                wr h hv;
                let ov = Int64.logor a c2 in
                wr o ov;
                let ev = if Int64.equal hv 0L then a else ov in
                wr e ev;
                let avv = ecmp Uge ev c3 in
                wr av avv;
                let bvv = ecmp Ult ev c4 in
                wr bv bvv;
                let ivv = Int64.logand avv bvv in
                wr iv ivv;
                let sv = if Int64.equal ivv 0L then ev else t in
                wr s sv;
                (match acc with
                | `Load (dst, width) -> (
                    match spec_load sv width with
                    | Some v -> wr dst (trunc width v)
                    | None -> raise Squash)
                | `Store -> ()
                | `Atomic (dst, width) -> (
                    (* the read half warms the line and shadows the old
                       value; the store half never happens *)
                    match spec_load sv width with
                    | Some v -> wr dst (trunc width v)
                    | None -> raise Squash));
                pc := p + 8;
                true)
        | _ -> false
    in
    let step p =
      match lcode.(p) with
      | Linker.LMov { dst; src } ->
          wr dst (rop src);
          pc := p + 1
      | LBin { dst; op; a; b } ->
          wr dst (ebin op (rop a) (rop b));
          pc := p + 1
      | LCmp { dst; op; a; b } ->
          wr dst (ecmp op (rop a) (rop b));
          pc := p + 1
      | LSelect { dst; cond; if_true; if_false } ->
          (* no nested misprediction: one wrong guess per window *)
          wr dst (rop (if Int64.equal (rop cond) 0L then if_false else if_true));
          pc := p + 1
      | LLoad { dst; addr; width } -> (
          match spec_load (rop addr) width with
          | Some v ->
              wr dst (trunc width v);
              pc := p + 1
          | None -> raise Squash)
      | LStore _ ->
          (* a transient store sits in the store buffer and dies with
             the squash: no memory write, no cache line *)
          pc := p + 1
      | LAtomic { dst; addr; width; _ } -> (
          match spec_load (rop addr) width with
          | Some v ->
              wr dst (trunc width v);
              pc := p + 1
          | None -> raise Squash)
      | LJmp target -> pc := target
      | LJz { cond; target } ->
          pc := (if Int64.equal (rop cond) 0L then target else p + 1)
      | LCfiLabel _ -> pc := p + 1
      | LMemcpy _ | LCall _ | LCallExtern _ | LCallIndirect _
      | LCallIndirectChecked _ | LRet _ | LRetChecked _ | LIoRead _
      | LIoWrite _ | LFence | LHalt ->
          raise Squash
    in
    try
      let used = ref 0 in
      while !used < depth do
        let p = !pc in
        if p < 0 || p >= ncode then raise Squash;
        if not (fused_guard p) then step p;
        incr used
      done
    with Squash -> ()
  end
