type env = {
  load : int64 -> Ir.width -> int64;
  store : int64 -> Ir.width -> int64 -> unit;
  memcpy : dst:int64 -> src:int64 -> len:int64 -> unit;
  io_read : int64 -> int64;
  io_write : int64 -> int64 -> unit;
  extern : string -> int64 array -> int64;
  call_foreign : int64 -> int64 array -> int64;
  charge : Obs.Tag.t -> int -> unit;
  tamper_return : (int64 -> int64) option;
  spec_depth : int;
  spec_load : int64 -> Ir.width -> int64 option;
  spec_window : unit -> unit;
}

exception Cfi_violation of string
exception Exec_trap of string

let null_env =
  let scratch = Bytes.make 4096 '\000' in
  let offset addr =
    let i = Int64.to_int (Int64.logand addr 0xfffL) in
    i
  in
  {
    load =
      (fun addr width ->
        let i = offset addr in
        match width with
        | Ir.W8 -> Int64.of_int (Char.code (Bytes.get scratch i))
        | Ir.W16 -> Int64.of_int (Bytes.get_uint16_le scratch i)
        | Ir.W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le scratch i)) 0xffffffffL
        | Ir.W64 -> Bytes.get_int64_le scratch i);
    store =
      (fun addr width v ->
        let i = offset addr in
        match width with
        | Ir.W8 -> Bytes.set scratch i (Char.chr (Int64.to_int (Int64.logand v 0xffL)))
        | Ir.W16 -> Bytes.set_uint16_le scratch i (Int64.to_int (Int64.logand v 0xffffL))
        | Ir.W32 -> Bytes.set_int32_le scratch i (Int64.to_int32 v)
        | Ir.W64 -> Bytes.set_int64_le scratch i v);
    memcpy = (fun ~dst:_ ~src:_ ~len:_ -> raise (Exec_trap "null_env: memcpy"));
    io_read = (fun _ -> raise (Exec_trap "null_env: io_read"));
    io_write = (fun _ _ -> raise (Exec_trap "null_env: io_write"));
    extern = (fun name _ -> raise (Exec_trap ("null_env: extern " ^ name)));
    call_foreign = (fun _ _ -> raise (Exec_trap "null_env: foreign call"));
    charge = (fun _ _ -> ());
    tamper_return = None;
    spec_depth = 0;
    spec_load = (fun _ _ -> None);
    spec_window = (fun () -> ());
  }

(* The executor runs the linked, slot-allocated form (see {!Linker}).

   Frames live on one growable register-file stack [rf]: the running
   function's registers are [rf.(base) .. rf.(base + nregs - 1)].
   Definedness is tracked by generation stamps in the parallel [def]
   array — a register is defined iff its stamp equals the frame's
   generation — so pushing a frame needs no clearing.  The call stack
   is a flat int array, five fields per frame. *)

let stk_stride = 5

let run ?(fuel = 50_000_000) env (image : Linker.image) entry args =
  let fid =
    match Linker.find_func image entry with Some id -> id | None -> raise Not_found
  in
  let lcode = image.Linker.lcode in
  let funcs = image.Linker.funcs in
  let entry_of = image.Linker.entry_of in
  let ret_label_of = image.Linker.ret_label_of in
  let native = image.Linker.native in
  let ncode = Array.length lcode in
  let f0 = funcs.(fid) in
  if Array.length f0.Linker.f_params <> Array.length args then
    raise
      (Exec_trap
         (Printf.sprintf "call %s: arity mismatch (%d vs %d)" f0.Linker.f_name
            (Array.length f0.Linker.f_params) (Array.length args)));
  (* register-file stack + generation stamps *)
  let rf = ref (Array.make (max 64 f0.Linker.f_nregs) 0L) in
  let def = ref (Array.make (Array.length !rf) 0) in
  let ensure_rf need =
    if need > Array.length !rf then begin
      let n' = max (2 * Array.length !rf) need in
      let rf' = Array.make n' 0L and def' = Array.make n' 0 in
      Array.blit !rf 0 rf' 0 (Array.length !rf);
      Array.blit !def 0 def' 0 (Array.length !def);
      rf := rf';
      def := def'
    end
  in
  (* call stack: prev_base, prev_func, prev_gen, ret_pc, ret_dst *)
  let stack = ref (Array.make (8 * stk_stride) 0) in
  let sp = ref 0 in
  let base = ref 0 in
  let cur = ref fid in
  let gen_ctr = ref 1 in
  let gen = ref 1 in
  let scratch = Array.make image.Linker.max_args 0L in
  let read slot =
    let i = !base + slot in
    if (!def).(i) = !gen then (!rf).(i)
    else
      raise
        (Exec_trap
           (Printf.sprintf "read of undefined register %s"
              funcs.(!cur).Linker.f_names.(slot)))
  in
  let write slot v =
    let i = !base + slot in
    (!rf).(i) <- v;
    (!def).(i) <- !gen
  in
  let v (o : Linker.operand) = match o with Imm x -> x | Slot s -> read s in
  (* Speculation hooks (no-ops at depth 0, where nothing below runs).
     [read_opt] is the non-trapping register view a transient window
     reads the architectural state through. *)
  let read_opt slot =
    let i = !base + slot in
    if (!def).(i) = !gen then Some (!rf).(i) else None
  in
  let open_window ~shadow ~pc =
    env.spec_window ();
    Spec_exec.transient_window ~image ~depth:env.spec_depth ~read:read_opt
      ~spec_load:env.spec_load ~shadow ~pc
  in
  let fuel = ref fuel in
  let pc = ref f0.Linker.f_entry in
  let result = ref 0L in
  let running = ref true in
  (* bind the entry frame straight from the caller's array (it may be
     wider than any in-image call site, so [scratch] cannot hold it) *)
  ensure_rf f0.Linker.f_nregs;
  Array.iteri (fun j p -> write p args.(j)) f0.Linker.f_params;
  let eval_args (a : Linker.operand array) =
    let n = Array.length a in
    for j = 0 to n - 1 do
      scratch.(j) <- v a.(j)
    done;
    n
  in
  let fresh_args (a : Linker.operand array) =
    (* external code may retain the array; never hand out [scratch] *)
    let n = eval_args a in
    Array.sub scratch 0 n
  in
  let do_call ~ret_dst ~target ~ret_pc ~nargs =
    let callee = entry_of.(target) in
    if callee < 0 then
      raise
        (Exec_trap
           (Printf.sprintf "call to %s which is not a function entry"
              (Linker.describe_slot image target)));
    let f = funcs.(callee) in
    let np = Array.length f.Linker.f_params in
    if np <> nargs then
      raise
        (Exec_trap
           (Printf.sprintf "call %s: arity mismatch (%d vs %d)" f.Linker.f_name np nargs));
    let s = !sp in
    if (s + 1) * stk_stride > Array.length !stack then begin
      let stack' = Array.make (2 * Array.length !stack) 0 in
      Array.blit !stack 0 stack' 0 (Array.length !stack);
      stack := stack'
    end;
    let st = !stack in
    let o = s * stk_stride in
    st.(o) <- !base;
    st.(o + 1) <- !cur;
    st.(o + 2) <- !gen;
    st.(o + 3) <- ret_pc;
    st.(o + 4) <- ret_dst;
    sp := s + 1;
    let base' = !base + funcs.(!cur).Linker.f_nregs in
    ensure_rf (base' + f.Linker.f_nregs);
    base := base';
    cur := callee;
    incr gen_ctr;
    gen := !gen_ctr;
    let params = f.Linker.f_params in
    for j = 0 to np - 1 do
      let i = base' + params.(j) in
      (!rf).(i) <- scratch.(j);
      (!def).(i) <- !gen
    done;
    pc := target
  in
  let pop_frame () =
    let s = !sp - 1 in
    sp := s;
    let st = !stack in
    let o = s * stk_stride in
    base := st.(o);
    cur := st.(o + 1);
    gen := st.(o + 2);
    (st.(o + 3), st.(o + 4))
  in
  let addr_of_index i = Native.addr_of_index native i in
  (* A checked control transfer: mask the target into kernel space, then
     demand a CFI label at the masked target (paper section 4.3.1).
     [label_of] makes the probe an array read instead of a pattern
     match; the caller has already paid {!Cfi_pass.check_extra_cycles}. *)
  let checked_target label target =
    let masked = Layout.mask_kernel_target target in
    match Native.index_of_addr native masked with
    | None ->
        raise
          (Cfi_violation
             (Printf.sprintf "control transfer to %s outside translated code"
                (Vg_util.U64.to_hex masked)))
    | Some idx ->
        if image.Linker.label_of.(idx) = label then idx
        else
          raise
            (Cfi_violation
               (Printf.sprintf "target %s does not carry the expected CFI label"
                  (Vg_util.U64.to_hex masked)))
  in
  let do_return vopt =
    (match vopt with Some o -> result := v o | None -> result := 0L);
    if !sp = 0 then running := false
    else begin
      let ret_pc, ret_dst = pop_frame () in
      match env.tamper_return with
      | None ->
          if ret_pc >= ncode then
            raise
              (Exec_trap
                 (Printf.sprintf "return to %s outside image"
                    (Vg_util.U64.to_hex (addr_of_index ret_pc))));
          if ret_dst >= 0 then write ret_dst !result;
          pc := ret_pc
      | Some f -> (
          let ret_addr = f (addr_of_index ret_pc) in
          match Native.index_of_addr native ret_addr with
          | Some idx ->
              if ret_dst >= 0 then write ret_dst !result;
              pc := idx
          | None ->
              raise
                (Exec_trap
                   (Printf.sprintf "return to %s outside image"
                      (Vg_util.U64.to_hex ret_addr))))
    end
  in
  let do_return_checked label vopt =
    (match vopt with Some o -> result := v o | None -> result := 0L);
    if !sp = 0 then running := false
    else begin
      let ret_pc, ret_dst = pop_frame () in
      env.charge Obs.Tag.Cfi Cfi_pass.check_extra_cycles;
      let target =
        match env.tamper_return with
        | None ->
            (* fast path: the pre-resolved probe covers untampered
               returns to a labelled slot whose address the mask leaves
               unchanged *)
            if ret_pc < ncode && ret_label_of.(ret_pc) = label then ret_pc
            else checked_target label (addr_of_index ret_pc)
        | Some f -> checked_target label (f (addr_of_index ret_pc))
      in
      if ret_dst >= 0 then write ret_dst !result;
      pc := target
    end
  in
  while !running do
    decr fuel;
    if !fuel <= 0 then raise (Exec_trap "out of fuel");
    let p = !pc in
    if p < 0 || p >= ncode then
      raise (Exec_trap (Printf.sprintf "pc %d out of code bounds" p));
    env.charge Obs.Tag.Exec 1;
    match lcode.(p) with
    | LMov { dst; src } ->
        write dst (v src);
        pc := p + 1
    | LBin { dst; op; a; b } ->
        (try write dst (Eval.eval_binop op (v a) (v b))
         with Eval.Trap m -> raise (Exec_trap m));
        pc := p + 1
    | LCmp { dst; op; a; b } ->
        write dst (Eval.eval_cmp op (v a) (v b));
        pc := p + 1
    | LSelect { dst; cond; if_true; if_false } ->
        let c = v cond in
        write dst (if c <> 0L then v if_true else v if_false);
        (* the mispredicted select transiently forwards the other arm *)
        if env.spec_depth > 0 then begin
          let wrong = if c <> 0L then if_false else if_true in
          match
            (match wrong with
            | Linker.Imm x -> Some x
            | Linker.Slot s -> read_opt s)
          with
          | Some wv -> open_window ~shadow:(Some (dst, wv)) ~pc:(p + 1)
          | None -> ()
        end;
        pc := p + 1
    | LLoad { dst; addr; width } ->
        write dst (Eval.truncate width (env.load (v addr) width));
        pc := p + 1
    | LStore { src; addr; width } ->
        env.store (v addr) width (Eval.truncate width (v src));
        pc := p + 1
    | LMemcpy { dst; src; len } ->
        let len_v = v len in
        (* Copy cost scales with length, as it would on hardware. *)
        env.charge Obs.Tag.Copy (Int64.to_int (Vg_util.U64.div len_v 8L));
        env.memcpy ~dst:(v dst) ~src:(v src) ~len:len_v;
        pc := p + 1
    | LAtomic { dst; op; addr; operand_; width } ->
        let a = v addr in
        let old = Eval.truncate width (env.load a width) in
        (try env.store a width (Eval.truncate width (Eval.eval_binop op old (v operand_)))
         with Eval.Trap m -> raise (Exec_trap m));
        write dst old;
        pc := p + 1
    | LJmp target -> pc := target
    | LJz { cond; target } ->
        let c = v cond in
        (* the mispredicted branch transiently runs the other direction *)
        if env.spec_depth > 0 then
          open_window ~shadow:None ~pc:(if c = 0L then p + 1 else target);
        if c = 0L then pc := target else pc := p + 1
    | LCall { dst; target; args } ->
        let nargs = eval_args args in
        do_call ~ret_dst:dst ~target ~ret_pc:(p + 1) ~nargs
    | LCallExtern { dst; name; args } ->
        let res = env.extern name (fresh_args args) in
        if dst >= 0 then write dst res;
        pc := p + 1
    | LCallIndirect { dst; target; args } -> (
        let addr = v target in
        let nargs = eval_args args in
        match Native.index_of_addr native addr with
        | Some idx -> do_call ~ret_dst:dst ~target:idx ~ret_pc:(p + 1) ~nargs
        | None ->
            let res = env.call_foreign addr (Array.sub scratch 0 nargs) in
            if dst >= 0 then write dst res;
            pc := p + 1)
    | LCallIndirectChecked { dst; target; args; label } ->
        let addr = v target in
        let nargs = eval_args args in
        env.charge Obs.Tag.Cfi Cfi_pass.check_extra_cycles;
        let idx = checked_target label addr in
        (* The label slot is the function entry; execution starts there
           and falls through it. *)
        do_call ~ret_dst:dst ~target:idx ~ret_pc:(p + 1) ~nargs
    | LRet value -> do_return value
    | LRetChecked { value; label } -> do_return_checked label value
    | LCfiLabel _ -> pc := p + 1
    | LIoRead { dst; port } ->
        write dst (env.io_read (v port));
        pc := p + 1
    | LIoWrite { port; src } ->
        env.io_write (v port) (v src);
        pc := p + 1
    | LFence ->
        env.charge Obs.Tag.Spec Fence_pass.fence_cycles;
        pc := p + 1
    | LHalt -> raise (Exec_trap "halt / unreachable executed")
  done;
  !result
