exception Link_error of string

type operand = Imm of int64 | Slot of int

type instr =
  | LMov of { dst : int; src : operand }
  | LBin of { dst : int; op : Ir.binop; a : operand; b : operand }
  | LCmp of { dst : int; op : Ir.cmp; a : operand; b : operand }
  | LSelect of { dst : int; cond : operand; if_true : operand; if_false : operand }
  | LLoad of { dst : int; addr : operand; width : Ir.width }
  | LStore of { src : operand; addr : operand; width : Ir.width }
  | LMemcpy of { dst : operand; src : operand; len : operand }
  | LAtomic of { dst : int; op : Ir.binop; addr : operand; operand_ : operand; width : Ir.width }
  | LJmp of int
  | LJz of { cond : operand; target : int }
  | LCall of { dst : int; target : int; args : operand array }
  | LCallExtern of { dst : int; name : string; args : operand array }
  | LCallIndirect of { dst : int; target : operand; args : operand array }
  | LCallIndirectChecked of { dst : int; target : operand; args : operand array; label : int }
  | LRet of operand option
  | LRetChecked of { value : operand option; label : int }
  | LCfiLabel of int32
  | LIoRead of { dst : int; port : operand }
  | LIoWrite of { port : operand; src : operand }
  | LFence
  | LHalt

type func = {
  f_name : string;
  f_entry : int;
  f_params : int array;
  f_nregs : int;
  f_names : string array;
}

type image = {
  native : Native.image;
  lcode : instr array;
  funcs : func array;
  by_name : (string, int) Hashtbl.t;
  entry_of : int array;
  owner_of : int array;
  label_of : int array;
  ret_label_of : int array;
  max_args : int;
}

let no_label = min_int

(* Per-function register allocation state while linking. *)
type ra = {
  tbl : (string, int) Hashtbl.t;
  mutable names_rev : string list;
  mutable count : int;
}

let ra_slot ra name =
  match Hashtbl.find_opt ra.tbl name with
  | Some s -> s
  | None ->
      let s = ra.count in
      ra.count <- s + 1;
      Hashtbl.replace ra.tbl name s;
      ra.names_rev <- name :: ra.names_rev;
      s

let link (native : Native.image) : image =
  let code = native.Native.code in
  let n = Array.length code in
  let syms = Array.of_list native.Native.symbols in
  let nsyms = Array.length syms in
  let entry_of = Array.make n (-1) in
  Array.iteri
    (fun id (s : Native.symbol) ->
      if s.Native.entry < 0 || s.Native.entry >= n then
        raise
          (Link_error
             (Printf.sprintf "symbol %s: entry slot %d outside code" s.Native.name
                s.Native.entry));
      if entry_of.(s.Native.entry) >= 0 then
        raise
          (Link_error
             (Printf.sprintf "symbols %s and %s share entry slot %d"
                syms.(entry_of.(s.Native.entry)).Native.name s.Native.name s.Native.entry));
      entry_of.(s.Native.entry) <- id)
    syms;
  (* Function extents: codegen lays functions out contiguously, each
     starting at its entry slot, so the owner of a slot is the function
     whose entry was seen most recently. *)
  let owner_of = Array.make n (-1) in
  let cur = ref (-1) in
  for i = 0 to n - 1 do
    if entry_of.(i) >= 0 then cur := entry_of.(i);
    owner_of.(i) <- !cur
  done;
  let ras =
    Array.map
      (fun (s : Native.symbol) ->
        let ra = { tbl = Hashtbl.create 16; names_rev = []; count = 0 } in
        (* Parameters claim the first slots, in declaration order; a
           repeated parameter name maps both positions to one slot, as
           the hashtable frames did. *)
        let params = Array.of_list (List.map (ra_slot ra) s.Native.params) in
        (ra, params))
      syms
  in
  let reg i name =
    match owner_of.(i) with
    | -1 ->
        raise
          (Link_error (Printf.sprintf "slot %d: register %s used outside any function" i name))
    | f -> ra_slot (fst ras.(f)) name
  in
  let op i : Native.operand -> operand = function
    | Native.Imm v -> Imm v
    | Native.Reg r -> Slot (reg i r)
  in
  let dst_opt i = function None -> -1 | Some d -> reg i d in
  let branch_target i t =
    if t < 0 || t >= n then
      raise (Link_error (Printf.sprintf "slot %d: branch target %d outside code" i t));
    if owner_of.(t) <> owner_of.(i) then
      raise (Link_error (Printf.sprintf "slot %d: branch target %d crosses a function boundary" i t));
    t
  in
  let args_of i l = Array.of_list (List.map (op i) l) in
  let max_args = ref 1 in
  let note_args (a : operand array) =
    if Array.length a > !max_args then max_args := Array.length a
  in
  let label_of = Array.make n no_label in
  let lcode =
    Array.mapi
      (fun i (ins : Native.ninstr) ->
        match ins with
        | Native.NMov { dst; src } -> LMov { dst = reg i dst; src = op i src }
        | Native.NBin { dst; op = o; a; b } ->
            LBin { dst = reg i dst; op = o; a = op i a; b = op i b }
        | Native.NCmp { dst; op = o; a; b } ->
            LCmp { dst = reg i dst; op = o; a = op i a; b = op i b }
        | Native.NSelect { dst; cond; if_true; if_false } ->
            LSelect
              { dst = reg i dst; cond = op i cond; if_true = op i if_true;
                if_false = op i if_false }
        | Native.NLoad { dst; addr; width } ->
            LLoad { dst = reg i dst; addr = op i addr; width }
        | Native.NStore { src; addr; width } ->
            LStore { src = op i src; addr = op i addr; width }
        | Native.NMemcpy { dst; src; len } ->
            LMemcpy { dst = op i dst; src = op i src; len = op i len }
        | Native.NAtomic { dst; op = o; addr; operand_; width } ->
            LAtomic { dst = reg i dst; op = o; addr = op i addr; operand_ = op i operand_; width }
        | Native.NJmp t -> LJmp (branch_target i t)
        | Native.NJz { cond; target } ->
            LJz { cond = op i cond; target = branch_target i target }
        | Native.NCall { dst; target; args } ->
            if target < 0 || target >= n then
              raise (Link_error (Printf.sprintf "slot %d: call target %d outside code" i target));
            let args = args_of i args in
            note_args args;
            LCall { dst = dst_opt i dst; target; args }
        | Native.NCallExtern { dst; name; args } ->
            let args = args_of i args in
            note_args args;
            LCallExtern { dst = dst_opt i dst; name; args }
        | Native.NCallIndirect { dst; target; args } ->
            let args = args_of i args in
            note_args args;
            LCallIndirect { dst = dst_opt i dst; target = op i target; args }
        | Native.NCallIndirectChecked { dst; target; args; label } ->
            let args = args_of i args in
            note_args args;
            LCallIndirectChecked
              { dst = dst_opt i dst; target = op i target; args; label = Int32.to_int label }
        | Native.NRet v -> LRet (Option.map (op i) v)
        | Native.NRetChecked { value; label } ->
            LRetChecked { value = Option.map (op i) value; label = Int32.to_int label }
        | Native.NCfiLabel l ->
            label_of.(i) <- Int32.to_int l;
            LCfiLabel l
        | Native.NIoRead { dst; port } -> LIoRead { dst = reg i dst; port = op i port }
        | Native.NIoWrite { port; src } -> LIoWrite { port = op i port; src = op i src }
        | Native.NFence -> LFence
        | Native.NHalt -> LHalt)
      code
  in
  (* A checked return to slot [i] masks the return address into kernel
     space and demands the expected label there.  When the slot's own
     address survives the mask unchanged, the whole check reduces to one
     precomputed label compare. *)
  let ret_label_of =
    Array.init n (fun i ->
        if label_of.(i) = no_label then no_label
        else
          let addr = Native.addr_of_index native i in
          if Layout.mask_kernel_target addr = addr then label_of.(i) else no_label)
  in
  let funcs =
    Array.mapi
      (fun id (s : Native.symbol) ->
        let ra, params = ras.(id) in
        {
          f_name = s.Native.name;
          f_entry = s.Native.entry;
          f_params = params;
          f_nregs = ra.count;
          f_names = Array.of_list (List.rev ra.names_rev);
        })
      syms
  in
  let by_name = Hashtbl.create (max 8 nsyms) in
  Array.iteri (fun id (f : func) -> Hashtbl.replace by_name f.f_name id) funcs;
  { native; lcode; funcs; by_name; entry_of; owner_of; label_of; ret_label_of;
    max_args = !max_args }

let find_func image name = Hashtbl.find_opt image.by_name name

let describe_slot image i =
  match image.owner_of.(i) with
  | -1 -> Printf.sprintf "slot %d" i
  | f ->
      let fn = image.funcs.(f) in
      if i = fn.f_entry then Printf.sprintf "slot %d (%s)" i fn.f_name
      else Printf.sprintf "slot %d (%s+%d)" i fn.f_name (i - fn.f_entry)
