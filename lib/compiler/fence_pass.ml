(* The fence mitigation: insert an lfence immediately before every
   kernel memory operation, after the sandbox pass has emitted the mask
   window.  The fence drains any transient window opened by the
   window's predicted selects (or any earlier branch), so no load can
   execute transiently with an unmasked address.  Runs on
   sandbox-instrumented IR; the resulting shape
   [window(7); fence; access] is what {!Image_verify} proves under the
   [Fence] mitigation and what {!Exec_compile} fuses. *)

(* Pipeline-drain cost of one executed lfence, charged under the [Spec]
   tag by whichever engine executes it (cf. [Cfi_pass.check_extra_cycles]
   for the equivalent CFI constant). *)
let fence_cycles = 12

let instrument_instr (instr : Ir.instr) : Ir.instr list =
  match instr with
  | Load _ | Store _ | Atomic_rmw _ | Memcpy _ -> [ Ir.Fence; instr ]
  | Bin _ | Cmp _ | Select _ | Call _ | Call_indirect _ | Io_read _ | Io_write _
  | Fence ->
      [ instr ]

let instrument_block (b : Ir.block) : Ir.block =
  { b with instrs = List.concat_map instrument_instr b.instrs }

let instrument_func (f : Ir.func) : Ir.func =
  { f with blocks = List.map instrument_block f.blocks }

let instrument_program = Ir.map_funcs instrument_func
