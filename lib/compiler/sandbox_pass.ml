let masked_address addr =
  let addr =
    if Vg_util.U64.ge addr Layout.ghost_start then
      Int64.logor addr Layout.ghost_escape_bit
    else addr
  in
  if Layout.in_sva addr then 0L else addr

let added_instructions_per_operand = 7

(* Counter for fresh register names; instrumentation registers are
   prefixed "%sbx" so they can never collide with Builder-generated
   ("%t..") or hand-written registers. *)
let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  Printf.sprintf "%%sbx.%s%d" prefix !fresh_counter

(* Emit the masking sequence for [addr]; returns the instructions (in
   order) and the value holding the safe address. *)
let mask_sequence (addr : Ir.value) : Ir.instr list * Ir.value =
  let is_high = fresh "hi" in
  let ored = fresh "or" in
  let escaped = fresh "esc" in
  let above_sva = fresh "asva" in
  let below_sva = fresh "bsva" in
  let in_sva = fresh "insva" in
  let safe = fresh "safe" in
  ( [
      Ir.Cmp { dst = is_high; op = Uge; a = addr; b = Imm Layout.ghost_start };
      Ir.Bin { dst = ored; op = Or; a = addr; b = Imm Layout.ghost_escape_bit };
      Ir.Select { dst = escaped; cond = Reg is_high; if_true = Reg ored; if_false = addr };
      Ir.Cmp { dst = above_sva; op = Uge; a = Reg escaped; b = Imm Layout.sva_start };
      Ir.Cmp { dst = below_sva; op = Ult; a = Reg escaped; b = Imm Layout.sva_end };
      Ir.Bin { dst = in_sva; op = And; a = Reg above_sva; b = Reg below_sva };
      Ir.Select { dst = safe; cond = Reg in_sva; if_true = Imm 0L; if_false = Reg escaped };
    ],
    Ir.Reg safe )

(* The speculation-safe variant: identical architectural semantics to
   [mask_sequence] ([masked_address]), but every step is an arithmetic
   data dependency of the final address — there is no predicated select
   a mispredictor could resolve the wrong way.  A transient load
   downstream of this sequence still sees the {e masked} address, so
   speculation leaks nothing the architectural access would not. *)
let safe_mask_sequence (addr : Ir.value) : Ir.instr list * Ir.value =
  let is_high = fresh "hi" in
  let high_mask = fresh "hm" in
  let escape = fresh "eb" in
  let escaped = fresh "esc" in
  let above_sva = fresh "asva" in
  let below_sva = fresh "bsva" in
  let in_sva = fresh "insva" in
  let keep_mask = fresh "km" in
  let safe = fresh "safe" in
  ( [
      Ir.Cmp { dst = is_high; op = Uge; a = addr; b = Imm Layout.ghost_start };
      (* 0 or -1: the comparison result widened to a full-width mask *)
      Ir.Bin { dst = high_mask; op = Sub; a = Imm 0L; b = Reg is_high };
      Ir.Bin { dst = escape; op = And; a = Reg high_mask; b = Imm Layout.ghost_escape_bit };
      Ir.Bin { dst = escaped; op = Or; a = addr; b = Reg escape };
      Ir.Cmp { dst = above_sva; op = Uge; a = Reg escaped; b = Imm Layout.sva_start };
      Ir.Cmp { dst = below_sva; op = Ult; a = Reg escaped; b = Imm Layout.sva_end };
      Ir.Bin { dst = in_sva; op = And; a = Reg above_sva; b = Reg below_sva };
      (* in_sva=1 -> 0 (zero the address); in_sva=0 -> -1 (keep it) *)
      Ir.Bin { dst = keep_mask; op = Sub; a = Reg in_sva; b = Imm 1L };
      Ir.Bin { dst = safe; op = And; a = Reg escaped; b = Reg keep_mask };
    ],
    Ir.Reg safe )

let safe_mask_instructions = 9

(* Total instructions between a window's first instruction and its
   memory access, per mitigation (the fence pass adds its lfence
   between the classic window and the access). *)
let window_size = function
  | Mitigation.Off -> 7
  | Mitigation.Fence -> 8
  | Mitigation.Safe_mask -> safe_mask_instructions

let sequence_for = function
  | Mitigation.Off | Mitigation.Fence -> mask_sequence
  | Mitigation.Safe_mask -> safe_mask_sequence

let instrument_instr ?(mitigation = Mitigation.Off) (instr : Ir.instr) :
    Ir.instr list =
  let mask_sequence = sequence_for mitigation in
  match instr with
  | Load { dst; addr; width } ->
      let seq, safe = mask_sequence addr in
      seq @ [ Ir.Load { dst; addr = safe; width } ]
  | Store { src; addr; width } ->
      let seq, safe = mask_sequence addr in
      seq @ [ Ir.Store { src; addr = safe; width } ]
  | Atomic_rmw { dst; op; addr; operand; width } ->
      let seq, safe = mask_sequence addr in
      seq @ [ Ir.Atomic_rmw { dst; op; addr = safe; operand; width } ]
  | Memcpy { dst; src; len } ->
      let dseq, dsafe = mask_sequence dst in
      let sseq, ssafe = mask_sequence src in
      dseq @ sseq @ [ Ir.Memcpy { dst = dsafe; src = ssafe; len } ]
  | Bin _ | Cmp _ | Select _ | Call _ | Call_indirect _ | Io_read _ | Io_write _
  | Fence ->
      [ instr ]

let instrument_block ?mitigation (b : Ir.block) : Ir.block =
  { b with instrs = List.concat_map (instrument_instr ?mitigation) b.instrs }

let instrument_func ?mitigation (f : Ir.func) : Ir.func =
  { f with blocks = List.map (instrument_block ?mitigation) f.blocks }

let instrument_program ?mitigation p =
  Ir.map_funcs (instrument_func ?mitigation) p
