(** Link/lowering stage: rewrites a {!Native.image} into the
    executor-ready form.

    Codegen emits string-named registers and a symbol {e list}; the old
    executor resolved both with hashtables rebuilt per call and linear
    scans per transfer.  This stage runs once per image, at translation
    time (so the signed translation cache stores the already-linked
    form), and produces:

    - a per-function {e register allocation}: every string register maps
      to a dense integer slot, so frames become spans of one growable
      [int64] register-file stack instead of per-call hashtables;
    - operands lowered to [Slot of int | Imm of int64];
    - the symbol table materialised as arrays ([entry_of], [owner_of],
      [by_name]) so [find_symbol] / [symbol_of_index] / parameter
      binding are O(1);
    - CFI labels pre-resolved per slot ([label_of]), and, for direct
      return sites whose address survives the kernel mask unchanged,
      the whole checked-return probe reduced to one precomputed compare
      ([ret_label_of]).

    None of this changes the simulated cost model: the lowered code has
    the same slots, so [charge] sees byte-for-byte identical cycle
    counts — linking only makes the {e host} interpreter loop faster. *)

exception Link_error of string
(** The image is not linkable (overlapping symbols, a branch that
    crosses a function boundary, a register used outside any function).
    Never raised on codegen output. *)

type operand = Imm of int64 | Slot of int
(** A lowered operand: an immediate or a dense register slot, valid
    within the owning function's frame. *)

type instr =
  | LMov of { dst : int; src : operand }
  | LBin of { dst : int; op : Ir.binop; a : operand; b : operand }
  | LCmp of { dst : int; op : Ir.cmp; a : operand; b : operand }
  | LSelect of { dst : int; cond : operand; if_true : operand; if_false : operand }
  | LLoad of { dst : int; addr : operand; width : Ir.width }
  | LStore of { src : operand; addr : operand; width : Ir.width }
  | LMemcpy of { dst : operand; src : operand; len : operand }
  | LAtomic of { dst : int; op : Ir.binop; addr : operand; operand_ : operand; width : Ir.width }
  | LJmp of int
  | LJz of { cond : operand; target : int }
  | LCall of { dst : int; target : int; args : operand array }
      (** [dst = -1] when the result is discarded. *)
  | LCallExtern of { dst : int; name : string; args : operand array }
  | LCallIndirect of { dst : int; target : operand; args : operand array }
  | LCallIndirectChecked of { dst : int; target : operand; args : operand array; label : int }
  | LRet of operand option
  | LRetChecked of { value : operand option; label : int }
  | LCfiLabel of int32
  | LIoRead of { dst : int; port : operand }
  | LIoWrite of { port : operand; src : operand }
  | LFence
      (** Speculation barrier: charges {!Fence_pass.fence_cycles} under
          the [Spec] tag and ends any transient window. *)
  | LHalt

type func = {
  f_name : string;
  f_entry : int;  (** entry slot index, as in {!Native.symbol} *)
  f_params : int array;  (** register slot of each parameter, in order *)
  f_nregs : int;  (** frame size in register slots *)
  f_names : string array;  (** slot -> source register name (diagnostics) *)
}

type image = {
  native : Native.image;  (** the unlowered image (addresses, symbols) *)
  lcode : instr array;  (** same slot indexing as [native.code] *)
  funcs : func array;  (** same order as [native.symbols] *)
  by_name : (string, int) Hashtbl.t;  (** function name -> index in [funcs] *)
  entry_of : int array;  (** slot -> function whose entry it is, or -1 *)
  owner_of : int array;  (** slot -> function containing it, or -1 *)
  label_of : int array;  (** slot -> CFI label carried there, or {!no_label} *)
  ret_label_of : int array;
      (** slot -> label, when a checked return to this slot's own
          address provably passes the mask-and-probe; {!no_label}
          otherwise. *)
  max_args : int;  (** scratch-buffer size for argument passing, >= 1 *)
}

val no_label : int
(** Sentinel in [label_of] / [ret_label_of]: no label.  Distinct from
    every [Int32.to_int] image label. *)

val link : Native.image -> image
(** Link an image.  Pure host-side transformation; O(code size).
    @raise Link_error per above (never on codegen output). *)

val find_func : image -> string -> int option
(** O(1) replacement for {!Native.find_symbol}. *)

val describe_slot : image -> int -> string
(** ["slot 12 (sys_getpid+3)"] — slot plus owning function, for trap
    messages. *)
