(** Load/store sandboxing (paper sections 4.3.1 and 5).

    Rewrites every kernel memory operation — loads, stores, atomics and
    both pointers of [memcpy] — so that the effective address can never
    fall in the ghost partition or in SVA-internal memory:

    - any address [>= 0xffffff0000000000] is ORed with bit 39, which
      maps ghost addresses onto the kernel partition and leaves kernel
      addresses unchanged (3 extra instructions per memory operand);
    - any address inside SVA-internal memory is replaced by 0 (4 extra
      instructions per memory operand), reproducing the paper's
      simplification of keeping SVA memory inside the kernel data
      segment rather than in its own masked partition.

    The pass is a pure IR-to-IR transform; codegen lowers the added
    compare/or/select instructions like any others, so the run-time cost
    of sandboxing emerges from actually executing them. *)

val instrument_program : ?mitigation:Mitigation.t -> Ir.program -> Ir.program
(** Instrument every function of a kernel program.  [mitigation]
    (default [Off]) selects the masking variant: [Off] and [Fence] use
    the classic predicated sequence ([Fence]'s lfences are inserted by
    the separate {!Fence_pass}); [Safe_mask] uses the branchless
    data-dependency sequence. *)

val instrument_func : ?mitigation:Mitigation.t -> Ir.func -> Ir.func

val instrument_instr : ?mitigation:Mitigation.t -> Ir.instr -> Ir.instr list
(** The per-instruction transform: a memory operation becomes the mask
    sequence(s) plus the rewritten operation; anything else is returned
    unchanged.  Exposed so tests can build deliberately de-instrumented
    "evil pass" variants that {!Image_verify} must catch. *)

val safe_mask_instructions : int
(** Length of the branchless [Safe_mask] sequence (9). *)

val window_size : Mitigation.t -> int
(** Instructions between a mask window's first instruction and the
    memory access it guards, per mitigation: 7 / 8 (incl. the lfence) /
    9. *)

val masked_address : int64 -> int64
(** The run-time semantics of the inserted sequence, as one function:
    what address an instrumented kernel access actually touches.  Used
    by the kernel's memory-accessor layer (which models compiled kernel
    code without going through codegen) and by tests to cross-check the
    IR sequence. *)

val added_instructions_per_operand : int
(** How many instructions instrumentation adds per memory operand
    (used by instrumentation-overhead assertions in tests). *)
