(** The fence Spectre mitigation (compiler pass).

    Inserts an {!Ir.instr.Fence} immediately before every memory
    operation of sandbox-instrumented kernel IR, so the lowered shape
    is [mask window; lfence; access].  The lfence ends any transient
    window before the access can issue, making the classic predicated
    mask sequence speculation-safe at the cost of one pipeline drain
    ({!fence_cycles}) per memory operand.  Applied by
    {!Pipeline.compile_kernel_code} when the kernel is booted with
    [--mitigation fence]. *)

val fence_cycles : int
(** Cycles one executed lfence charges under the
    {!Vg_obs.Obs.Tag.Spec} tag (12). *)

val instrument_program : Ir.program -> Ir.program
val instrument_func : Ir.func -> Ir.func

val instrument_instr : Ir.instr -> Ir.instr list
(** [Fence; op] for memory operations, identity otherwise. *)
