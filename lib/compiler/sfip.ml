(* Syscall-flow-integrity graphs: a per-application transition relation
   over syscall numbers, extracted statically from linked images and
   shipped inside the signed trans-cache blob (format v5).

   The compiler layer cannot see [Syscall_abi] (it lives above us in
   [lib/kernel]), so every operation that needs to map an extern name to
   a syscall number takes an injected [resolve : string -> int option].
   The kernel binds the real resolver once at boot
   ([Trans_cache.set_syscall_resolver]). *)

type graph = {
  n : int;  (** number of syscall slots; transitions are [0..n-1] *)
  entry : Bytes.t;  (** bitset of syscalls allowed first, (n+7)/8 bytes *)
  matrix : Bytes.t;
      (** row-major bitmatrix: bit [from*n + to] set = transition allowed *)
}

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let byte = i lsr 3 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (i land 7))))

let bits n = (n + 7) / 8

let create ~n =
  if n <= 0 || n > 4096 then invalid_arg "Sfip.create: bad size";
  { n; entry = Bytes.make (bits n) '\000'; matrix = Bytes.make (bits (n * n)) '\000' }

let size g = g.n
let in_range g s = s >= 0 && s < g.n

let allow_entry g s =
  if not (in_range g s) then invalid_arg "Sfip.allow_entry";
  bit_set g.entry s

let allow g ~from ~to_ =
  if not (in_range g from && in_range g to_) then invalid_arg "Sfip.allow";
  bit_set g.matrix ((from * g.n) + to_)

let entry_allowed g s = in_range g s && bit_get g.entry s
let allowed g ~from ~to_ = in_range g from && in_range g to_ && bit_get g.matrix ((from * g.n) + to_)

let equal a b =
  a.n = b.n && Bytes.equal a.entry b.entry && Bytes.equal a.matrix b.matrix

let copy g = { g with entry = Bytes.copy g.entry; matrix = Bytes.copy g.matrix }

let entry_count g =
  let c = ref 0 in
  for s = 0 to g.n - 1 do
    if bit_get g.entry s then incr c
  done;
  !c

let transition_count g =
  let c = ref 0 in
  for i = 0 to (g.n * g.n) - 1 do
    if bit_get g.matrix i then incr c
  done;
  !c

let iter_entries g f =
  for s = 0 to g.n - 1 do
    if bit_get g.entry s then f s
  done

let iter_transitions g f =
  for from = 0 to g.n - 1 do
    for to_ = 0 to g.n - 1 do
      if bit_get g.matrix ((from * g.n) + to_) then f ~from ~to_
    done
  done

(* Wire format: 'S', version byte, n as 2-byte LE, entry bitset, matrix
   bitmatrix.  Strict length check on decode: a truncated or padded
   profile is refused, not partially applied. *)
let wire_version = 1

let to_bytes g =
  let eb = bits g.n and mb = bits (g.n * g.n) in
  let out = Bytes.create (4 + eb + mb) in
  Bytes.set out 0 'S';
  Bytes.set out 1 (Char.chr wire_version);
  Bytes.set out 2 (Char.chr (g.n land 0xff));
  Bytes.set out 3 (Char.chr ((g.n lsr 8) land 0xff));
  Bytes.blit g.entry 0 out 4 eb;
  Bytes.blit g.matrix 0 out (4 + eb) mb;
  out

let of_bytes b =
  if Bytes.length b < 4 then None
  else if Bytes.get b 0 <> 'S' || Char.code (Bytes.get b 1) <> wire_version then None
  else
    let n = Char.code (Bytes.get b 2) lor (Char.code (Bytes.get b 3) lsl 8) in
    if n <= 0 || n > 4096 then None
    else
      let eb = bits n and mb = bits (n * n) in
      if Bytes.length b <> 4 + eb + mb then None
      else
        Some
          {
            n;
            entry = Bytes.sub b 4 eb;
            matrix = Bytes.sub b (4 + eb) mb;
          }

let pp ?(name = string_of_int) fmt g =
  Format.fprintf fmt "sfip graph: %d syscalls, %d entry, %d transitions@."
    g.n (entry_count g) (transition_count g);
  Format.fprintf fmt "  entry:";
  iter_entries g (fun s -> Format.fprintf fmt " %s" (name s));
  Format.fprintf fmt "@.";
  iter_transitions g (fun ~from ~to_ ->
      Format.fprintf fmt "  %s -> %s@." (name from) (name to_))

(* ------------------------------------------------------------------ *)
(* Static extraction from a linked image.                              *)
(*                                                                     *)
(* Per-function forward dataflow at slot granularity.  The fact at a   *)
(* slot is (last, none): the set of syscalls that may have been the    *)
(* most recent one on some path reaching the slot, and whether some    *)
(* path reaches it with no syscall issued yet.  Each function yields a *)
(* summary (first, last, through) used at its call sites; indirect     *)
(* calls conservatively join every function's summary.  Transitions    *)
(* are accumulated directly into the output graph; the whole thing     *)
(* iterates to an interprocedural fixpoint (all sets only grow).       *)

type summary = {
  s_first : Bytes.t;  (** syscalls that can occur first in this function *)
  s_last : Bytes.t;  (** syscalls that can be the last one at return *)
  mutable s_through : bool;  (** can return without issuing any syscall *)
}

let bset_union ~into src =
  let changed = ref false in
  for i = 0 to Bytes.length src - 1 do
    let o = Char.code (Bytes.get into i) and s = Char.code (Bytes.get src i) in
    let u = o lor s in
    if u <> o then begin
      changed := true;
      Bytes.set into i (Char.chr u)
    end
  done;
  !changed

let bset_iter n b f =
  for s = 0 to n - 1 do
    if bit_get b s then f s
  done

let extract ~resolve ~n ?entries (image : Linker.image) =
  let g = create ~n in
  let nfuncs = Array.length image.Linker.funcs in
  let summaries =
    Array.init nfuncs (fun _ ->
        {
          s_first = Bytes.make (bits n) '\000';
          s_last = Bytes.make (bits n) '\000';
          s_through = false;
        })
  in
  let changed = ref true in
  (* Effect of one callee-shaped event (first, last, through) on the
     in-fact (last, none) at a site inside function [fi].  Returns the
     out-fact; accumulates digrams into [g] and firsts into the caller
     summary. *)
  let apply_event fi ~first ~last ~through (cur_last, cur_none) =
    bset_iter n cur_last (fun from ->
        bset_iter n first (fun to_ ->
            if not (allowed g ~from ~to_) then begin
              allow g ~from ~to_;
              changed := true
            end));
    if cur_none then
      if bset_union ~into:summaries.(fi).s_first first then changed := true;
    let out_last = Bytes.make (bits n) '\000' in
    ignore (bset_union ~into:out_last last);
    if through then ignore (bset_union ~into:out_last cur_last);
    (out_last, cur_none && through)
  in
  let joined_summary () =
    let first = Bytes.make (bits n) '\000'
    and last = Bytes.make (bits n) '\000'
    and through = ref false in
    Array.iter
      (fun s ->
        ignore (bset_union ~into:first s.s_first);
        ignore (bset_union ~into:last s.s_last);
        if s.s_through then through := true)
      summaries;
    (first, last, !through)
  in
  let lcode = image.Linker.lcode in
  let nslots = Array.length lcode in
  (* Slot extent of each function: slots owned by it. *)
  let analyse_function fi =
    let f = image.Linker.funcs.(fi) in
    let entry = f.Linker.f_entry in
    if entry < 0 || entry >= nslots then ()
    else begin
      let ind_first, ind_last, ind_through = joined_summary () in
      let facts = Hashtbl.create 64 in
      let get_fact slot =
        match Hashtbl.find_opt facts slot with
        | Some f -> f
        | None ->
            let f = (Bytes.make (bits n) '\000', false, false) in
            Hashtbl.replace facts slot f;
            f
      in
      (* fact = (last, none, reachable) *)
      let work = Queue.create () in
      let join slot ~last ~none =
        let olast, onone, oreach = get_fact slot in
        let c1 = bset_union ~into:olast last in
        let c2 = (none && not onone) || not oreach in
        if c1 || c2 then begin
          Hashtbl.replace facts slot (olast, onone || none, true);
          Queue.add slot work
        end
      in
      join entry ~last:(Bytes.make (bits n) '\000') ~none:true;
      let summary = summaries.(fi) in
      let at_return (last, none) =
        if bset_union ~into:summary.s_last last then changed := true;
        if none && not summary.s_through then begin
          summary.s_through <- true;
          changed := true
        end
      in
      let guard = ref 0 in
      while not (Queue.is_empty work) && !guard < 200_000 do
        incr guard;
        let slot = Queue.pop work in
        if slot >= 0 && slot < nslots && image.Linker.owner_of.(slot) = fi then begin
          let last, none, _ = get_fact slot in
          let fact = (Bytes.copy last, none) in
          let continue out =
            let olast, onone = out in
            match lcode.(slot) with
            | Linker.LJmp t -> join t ~last:olast ~none:onone
            | Linker.LJz { target; _ } ->
                join target ~last:olast ~none:onone;
                join (slot + 1) ~last:olast ~none:onone
            | Linker.LRet _ | Linker.LRetChecked _ -> at_return out
            | Linker.LHalt -> ()
            | _ -> join (slot + 1) ~last:olast ~none:onone
          in
          match lcode.(slot) with
          | Linker.LCallExtern { name; _ } -> (
              match resolve name with
              | Some s when s >= 0 && s < n ->
                  let one = Bytes.make (bits n) '\000' in
                  bit_set one s;
                  continue (apply_event fi ~first:one ~last:one ~through:false fact)
              | _ -> continue fact)
          | Linker.LCall { target; _ } ->
              let callee =
                if target >= 0 && target < nslots then image.Linker.entry_of.(target)
                else -1
              in
              if callee >= 0 && callee < nfuncs then
                let cs = summaries.(callee) in
                continue
                  (apply_event fi ~first:cs.s_first ~last:cs.s_last
                     ~through:cs.s_through fact)
              else continue fact
          | Linker.LCallIndirect _ | Linker.LCallIndirectChecked _ ->
              continue
                (apply_event fi ~first:ind_first ~last:ind_last
                   ~through:ind_through fact)
          | _ -> continue fact
        end
      done
    end
  in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    for fi = 0 to nfuncs - 1 do
      analyse_function fi
    done
  done;
  (* Entry set: syscalls that can come first from any entry function.  A
     hijacked app cannot therefore even *start* with an out-of-profile
     syscall. *)
  let is_entry =
    match entries with
    | None -> fun _ -> true
    | Some names -> fun f -> List.mem f.Linker.f_name names
  in
  Array.iteri
    (fun fi f ->
      if is_entry f then
        bset_iter n summaries.(fi).s_first (fun s -> allow_entry g s))
    image.Linker.funcs;
  g
