type mode = Native_build | Virtual_ghost

type compiled = {
  image : Native.image;
  linked : Linker.image;
  instrumented_ir : Ir.program;
  mode : mode;
}

exception Rejected of string

let verify_or_reject program =
  match Verify.check program with
  | Ok () -> ()
  | Error errors ->
      let msg =
        String.concat "; " (List.map (Format.asprintf "%a" Verify.pp_error) errors)
      in
      raise (Rejected ("IR verification failed: " ^ msg))

let compile_kernel_code ?(mode = Virtual_ghost) ?(optimize = false)
    ?(mitigation = Mitigation.Off) ?base ?globals program =
  verify_or_reject program;
  let program = if optimize then Opt_pass.optimize_program program else program in
  match mode with
  | Native_build ->
      let image = Codegen.compile ?base ?globals ~cfi:false program in
      (match Cfi_pass.validate_uninstrumented image with
      | Ok () -> ()
      | Error _ -> raise (Rejected "native build contains CFI artifacts"));
      { image; linked = Linker.link image; instrumented_ir = program; mode }
  | Virtual_ghost ->
      (* the mitigation selects the masking variant; the fence pass then
         adds its lfences between each mask window and its access *)
      let instrumented = Sandbox_pass.instrument_program ~mitigation program in
      let instrumented =
        match mitigation with
        | Mitigation.Fence -> Fence_pass.instrument_program instrumented
        | Mitigation.Off | Mitigation.Safe_mask -> instrumented
      in
      let image = Codegen.compile ?base ?globals ~cfi:true instrumented in
      (match Cfi_pass.validate image with
      | Ok () -> ()
      | Error violations ->
          let msg =
            String.concat "; "
              (List.map (fun (v : Cfi_pass.violation) -> v.message) violations)
          in
          raise (Rejected ("CFI audit failed: " ^ msg)));
      { image; linked = Linker.link image; instrumented_ir = instrumented; mode }

let compile_application_code ?(mmap_callees = [ "extern.mmap" ]) ?base program =
  verify_or_reject program;
  let instrumented = Mmap_mask_pass.instrument_program ~mmap_callees program in
  let image = Codegen.compile ?base ~cfi:false instrumented in
  { image; linked = Linker.link image; instrumented_ir = instrumented; mode = Native_build }
