type t = {
  key : bytes;
  entries : (string, signed_image) Hashtbl.t;
  (* process-local memos, both keyed by the HMAC tag of the signed
     blob.  The tag authenticates the exact bytes, so anything proven
     about one decode of those bytes holds for every decode: repeated
     loads of the same signed translation must not re-pay the
     verifier's (or the closure compiler's) host time.  Simulated
     Verify cycle charges are unaffected — they are charged by the
     kernel per load, not here. *)
  verified : (string, unit) Hashtbl.t;
  mutable verifier_runs : int;
  compiled : (string, Exec_compile.t) Hashtbl.t;
  (* bound once at kernel boot: the syscall-table size and the extern
     name -> sysno mapping the policy re-extraction check needs.  The
     compiler layer cannot see [Syscall_abi]; the kernel injects it. *)
  mutable resolver : (int * (string -> int option)) option;
  (* the Spectre mitigation this kernel runs under: instrumented blobs
     carrying any other mitigation are refused, and verification proves
     the corresponding Spec invariant. *)
  mutable expected_mitigation : Mitigation.t;
}

and signed_image = { blob : bytes; tag : bytes }

type find_error =
  | Absent
  | Bad_signature
  | Bad_format
  | Rejected_by_verifier of Image_verify.violation list

let describe_find_error = function
  | Absent -> "no such cached translation"
  | Bad_signature -> "signature verification failed"
  | Bad_format -> "unrecognised translation format"
  | Rejected_by_verifier vs ->
      Printf.sprintf "image failed load-time verification: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Image_verify.pp_violation) vs))

(* v1 stored the raw Native.image; v2 stores the linked form, so an
   image loaded back from the cache is immediately executable without
   relinking; v3 adds the instrumented flag so an instrumented image
   cannot dodge re-verification by being relabelled as a plain one;
   v4 caches compiled-readiness alongside the signed blob; v5 adds an
   optional syscall-flow graph ({!Sfip.graph}) to the blob, re-proven
   against the code by {!Image_verify.check_policy} on every load;
   v6 adds the Spectre mitigation the image was compiled under, so a
   translation can never be replayed into a differently-mitigated
   kernel.  The version, the flags, the mitigation and the graph are
   all under the MAC. *)
let format_version = 6

let create ~key =
  {
    key;
    entries = Hashtbl.create 8;
    verified = Hashtbl.create 8;
    verifier_runs = 0;
    compiled = Hashtbl.create 8;
    resolver = None;
    expected_mitigation = Mitigation.Off;
  }

let verifier_runs t = t.verifier_runs
let set_syscall_resolver t ~n resolve = t.resolver <- Some (n, resolve)
let set_mitigation t m = t.expected_mitigation <- m

let sign t ~instrumented ?(mitigation = Mitigation.Off) ?sfip image =
  let blob =
    Marshal.to_bytes
      ( format_version,
        instrumented,
        Mitigation.to_tag mitigation,
        (sfip : Sfip.graph option),
        (image : Linker.image) )
      []
  in
  { blob; tag = Vg_crypto.Hmac.mac ~key:t.key blob }

let verify_and_load_with_policy t { blob; tag } =
  if not (Vg_crypto.Hmac.verify ~key:t.key ~tag blob) then Error Bad_signature
  else begin
    (* Marshal is memory-safe only on trusted input: the HMAC above is
       the integrity boundary for the bytes, and only blobs signed
       under the VM's key reach this decode. *)
    match
      (Marshal.from_bytes blob 0
        : int * bool * int * Sfip.graph option * Linker.image)
    with
    | exception _ -> Error Bad_format
    | v, _, _, _, _ when v <> format_version -> Error Bad_format
    | _, _, mtag, _, _ when Mitigation.of_tag mtag = None -> Error Bad_format
    | _, instrumented, mtag, _, _
      when instrumented && Mitigation.of_tag mtag <> Some t.expected_mitigation
      ->
        (* an honestly signed translation for the wrong speculation
           configuration: replaying it would run mitigation X code in a
           kernel promising mitigation Y *)
        Error
          (Rejected_by_verifier
             [
               {
                 Image_verify.func = "<image>";
                 slot = 0;
                 invariant = Image_verify.Spec;
                 message =
                   Printf.sprintf
                     "image compiled under mitigation %s but this kernel \
                      runs %s"
                     (match Mitigation.of_tag mtag with
                     | Some m -> Mitigation.to_string m
                     | None -> "?")
                     (Mitigation.to_string t.expected_mitigation);
               };
             ])
    | _, instrumented, _, sfip, image -> (
        (* The signature authenticates the bytes; the verifier proves
           the instrumentation (and, when a graph is carried, the
           policy) invariants still hold in them — once per signed blob
           per process, memoized by the tag (the HMAC check above
           already ran, so a tampered blob can never reach a memo
           planted by an intact one). *)
        let id = Bytes.to_string tag in
        if Hashtbl.mem t.verified id then Ok (image, sfip)
        else
          let instrumentation () =
            if not instrumented then Ok ()
            else begin
              t.verifier_runs <- t.verifier_runs + 1;
              Image_verify.check ~mitigation:t.expected_mitigation image
            end
          in
          let policy () =
            match sfip with
            | None -> Ok ()
            | Some expected -> (
                match t.resolver with
                | None ->
                    (* fail closed: a policy we cannot re-prove is a
                       policy we refuse to load. *)
                    Error
                      [
                        {
                          Image_verify.func = "<image>";
                          slot = 0;
                          invariant = Image_verify.Policy;
                          message =
                            "policy-carrying image but no syscall resolver \
                             bound to this cache";
                        };
                      ]
                | Some (n, resolve) ->
                    Image_verify.check_policy ~resolve ~n ~expected image)
          in
          match (instrumentation (), policy ()) with
          | Error vs, Error vs' -> Error (Rejected_by_verifier (vs @ vs'))
          | Error vs, Ok () | Ok (), Error vs -> Error (Rejected_by_verifier vs)
          | Ok (), Ok () ->
              if instrumented || sfip <> None then Hashtbl.replace t.verified id ();
              Ok (image, sfip))
  end

let verify_and_load t signed =
  Result.map fst (verify_and_load_with_policy t signed)

let add t ~name ~instrumented ?mitigation ?sfip image =
  Hashtbl.replace t.entries name (sign t ~instrumented ?mitigation ?sfip image)

let find_with_policy t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> Error Absent
  | Some signed -> verify_and_load_with_policy t signed

let find t ~name = Result.map fst (find_with_policy t ~name)
let policy t ~name = Result.map snd (find_with_policy t ~name)

let find_compiled t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> Error Absent
  | Some signed -> (
      (* verification first: this is the only route to a compiled
         artifact, so closure compilation is only ever legal on images
         the verifier accepted (the closure compiler stays outside the
         TCB). *)
      match verify_and_load t signed with
      | Error e -> Error e
      | Ok image -> (
          let id = Bytes.to_string signed.tag in
          match Hashtbl.find_opt t.compiled id with
          | Some artifact -> Ok artifact
          | None ->
              let artifact = Exec_compile.compile image in
              Hashtbl.replace t.compiled id artifact;
              Ok artifact))

let tamper t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some { blob; tag } ->
      let blob = Bytes.copy blob in
      let i = Bytes.length blob / 2 in
      Bytes.set blob i (Char.chr (Char.code (Bytes.get blob i) lxor 0x01));
      Hashtbl.replace t.entries name { blob; tag }
