type t = { key : bytes; entries : (string, signed_image) Hashtbl.t }
and signed_image = { blob : bytes; tag : bytes }

(* v1 stored the raw Native.image; v2 stores the linked form, so an
   image loaded back from the cache is immediately executable without
   relinking.  The version is under the MAC, and a verified blob of the
   wrong version loads as None rather than as garbage. *)
let format_version = 2

let create ~key = { key; entries = Hashtbl.create 8 }

let sign t image =
  let blob = Marshal.to_bytes (format_version, (image : Linker.image)) [] in
  { blob; tag = Vg_crypto.Hmac.mac ~key:t.key blob }

let verify_and_load t { blob; tag } =
  if Vg_crypto.Hmac.verify ~key:t.key ~tag blob then begin
    match (Marshal.from_bytes blob 0 : int * Linker.image) with
    | v, image when v = format_version -> Some image
    | _ -> None
    | exception _ -> None
  end
  else None

let add t ~name image = Hashtbl.replace t.entries name (sign t image)

let find t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> None
  | Some signed -> verify_and_load t signed

let tamper t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some { blob; tag } ->
      let blob = Bytes.copy blob in
      let i = Bytes.length blob / 2 in
      Bytes.set blob i (Char.chr (Char.code (Bytes.get blob i) lxor 0x01));
      Hashtbl.replace t.entries name { blob; tag }
