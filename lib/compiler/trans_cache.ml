type t = { key : bytes; entries : (string, signed_image) Hashtbl.t }
and signed_image = { blob : bytes; tag : bytes }

type find_error =
  | Absent
  | Bad_signature
  | Bad_format
  | Rejected_by_verifier of Image_verify.violation list

let describe_find_error = function
  | Absent -> "no such cached translation"
  | Bad_signature -> "signature verification failed"
  | Bad_format -> "unrecognised translation format"
  | Rejected_by_verifier vs ->
      Printf.sprintf "image failed load-time verification: %s"
        (String.concat "; "
           (List.map (Format.asprintf "%a" Image_verify.pp_violation) vs))

(* v1 stored the raw Native.image; v2 stores the linked form, so an
   image loaded back from the cache is immediately executable without
   relinking; v3 adds the instrumented flag so an instrumented image
   cannot dodge re-verification by being relabelled as a plain one.
   The version and the flag are both under the MAC. *)
let format_version = 3

let create ~key = { key; entries = Hashtbl.create 8 }

let sign t ~instrumented image =
  let blob = Marshal.to_bytes (format_version, instrumented, (image : Linker.image)) [] in
  { blob; tag = Vg_crypto.Hmac.mac ~key:t.key blob }

let verify_and_load t { blob; tag } =
  if not (Vg_crypto.Hmac.verify ~key:t.key ~tag blob) then Error Bad_signature
  else begin
    (* Marshal is memory-safe only on trusted input: the HMAC above is
       the integrity boundary for the bytes, and only blobs signed
       under the VM's key reach this decode. *)
    match (Marshal.from_bytes blob 0 : int * bool * Linker.image) with
    | exception _ -> Error Bad_format
    | v, _, _ when v <> format_version -> Error Bad_format
    | _, false, image -> Ok image
    | _, true, image -> (
        (* The signature authenticates the bytes; the verifier proves
           the instrumentation invariants still hold in them. *)
        match Image_verify.check image with
        | Ok () -> Ok image
        | Error vs -> Error (Rejected_by_verifier vs))
  end

let add t ~name ~instrumented image =
  Hashtbl.replace t.entries name (sign t ~instrumented image)

let find t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> Error Absent
  | Some signed -> verify_and_load t signed

let tamper t ~name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some { blob; tag } ->
      let blob = Bytes.copy blob in
      let i = Bytes.length blob / 2 in
      Bytes.set blob i (Char.chr (Char.code (Bytes.get blob i) lxor 0x01));
      Hashtbl.replace t.entries name { blob; tag }
