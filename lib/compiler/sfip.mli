(** Syscall-flow-integrity (SFIP) transition graphs.

    A graph over [n] syscall numbers: a bitset of syscalls a program may
    issue {e first}, plus an [n]×[n] bitmatrix of allowed consecutive
    pairs.  Graphs are extracted statically from linked images at
    translation time, serialized into the signed trans-cache blob
    (format v5) and into signed app images, and enforced by the kernel
    dispatcher on every numbered syscall — including across a whole ring
    batch before any entry executes.

    The compiler layer does not know the syscall table ([Syscall_abi]
    lives in [lib/kernel], above us), so extraction takes an injected
    [resolve : string -> int option] mapping extern names (e.g.
    ["extern.read"]) to syscall numbers. *)

type graph = private {
  n : int;
  entry : Bytes.t;
  matrix : Bytes.t;
}

val create : n:int -> graph
(** Empty graph over [n] syscalls.  Raises [Invalid_argument] unless
    [0 < n <= 4096]. *)

val size : graph -> int

val allow_entry : graph -> int -> unit
(** Permit a syscall as the first one issued. *)

val allow : graph -> from:int -> to_:int -> unit
(** Permit the consecutive pair [from -> to_]. *)

val entry_allowed : graph -> int -> bool
(** False for out-of-range numbers. *)

val allowed : graph -> from:int -> to_:int -> bool
(** False for out-of-range numbers. *)

val equal : graph -> graph -> bool
val copy : graph -> graph
val entry_count : graph -> int
val transition_count : graph -> int
val iter_entries : graph -> (int -> unit) -> unit
val iter_transitions : graph -> (from:int -> to_:int -> unit) -> unit

val to_bytes : graph -> Bytes.t
(** Versioned wire form, suitable for embedding in a signed image. *)

val of_bytes : Bytes.t -> graph option
(** Strict decode: wrong magic, version, or length yields [None]. *)

val pp : ?name:(int -> string) -> Format.formatter -> graph -> unit
(** Dump entries and transitions, rendering numbers via [name]. *)

val extract :
  resolve:(string -> int option) ->
  n:int ->
  ?entries:string list ->
  Linker.image ->
  graph
(** Walk the linked code of every function: each [LCallExtern] whose
    name [resolve]s is a syscall site; direct calls apply the callee's
    (first, last, can-skip) summary; indirect calls conservatively join
    every function's summary.  Runs to an interprocedural fixpoint.
    [entries] restricts the graph's entry set to the named functions'
    first-syscalls (default: every function is a potential entry). *)
