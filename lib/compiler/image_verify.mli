(** Load-time static verifier for linked native images.

    Virtual Ghost's guarantees rest on every kernel memory operation
    being mask-sandboxed and every return / indirect call being
    CFI-checked — yet the sandbox, CFI, optimizer and linker passes are
    ordinarily {e trusted}: a bug that drops one mask silently voids the
    ghost-memory guarantee.  This pass re-proves the instrumentation
    invariants directly on the {!Linker.link} output (the slot-allocated
    form the executor actually runs), shrinking the trusted computing
    base from the whole compiler pipeline to this one checker plus the
    executor.  It is wired into every path that admits native code:
    module load, translation-cache hits, and kernel boot.

    Five invariant classes are checked per function:

    + {b Mask} — the address operand of every load, store, atomic and
      both pointers of memcpy is {e dominated} by the ghost/SVA mask
      sequence computing into the same register slot, with no clobber in
      between.  Proven by a forward dataflow of "holds a masked
      address" facts: the exact seven-instruction lowered mask window
      grants the fact to its result slot, any other write kills it,
      and facts merge by intersection across basic-block joins.
      Immediate addresses are accepted only when masking is the
      identity on them.  Facts flow only along edges reachable from the
      function entry; a block no path reaches is verified under the
      empty fact set, so an unmasked operation stashed in dead code is
      still a violation.
    + {b Cfi_exit} — no unchecked return or indirect call exists, and
      every checked one probes the image's shared CFI label (the
      executor masks the target into kernel space before the probe).
    + {b Cfi_label} — labels are well-formed and appear exactly where
      control may legitimately land: at every function entry and at
      every call return site, and nowhere else (a stray label is an
      unintended control-transfer target).  The linker's pre-resolved
      label metadata ([label_of], [ret_label_of]) — which the executor
      trusts — must agree with the code.
    + {b Privileged} — no instruction encodes a raw privileged
      operation: no programmed I/O outside the [sva.*] intrinsics, and
      external calls only to the vetted [extern.*] / [sva.*] surface.
      ([LHalt] needs no rule here: codegen emits it for [unreachable]
      and the executor unconditionally traps on it.)
    + {b Control} — direct branches are confined: every [LJmp]/[LJz]
      target lies inside the image and inside the branching function,
      and no instruction can fall through a function's last slot into
      the next function.  The executor takes direct branches and
      fall-throughs without re-checking and without switching register
      frames, so a forged cross-function transfer would run one
      function's code against another function's registers.

    The verifier is deliberately conservative: it never executes the
    image, and it rejects anything it cannot prove.  The companion
    property tests show the real pipeline's output (all optimisation
    levels) always proves clean — no false positives. *)

type invariant = Mask | Cfi_exit | Cfi_label | Privileged | Control | Policy | Spec

val invariant_to_string : invariant -> string
(** Stable kebab-case names: ["mask"], ["cfi-exit"], ["cfi-label"],
    ["privileged"], ["control"], ["policy"], ["spec"]. *)

type violation = {
  func : string;  (** owning function, or ["<image>"] *)
  slot : int;  (** lcode index of the offending instruction *)
  invariant : invariant;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit
(** ["sys_read: slot 12 (sys_read+9): [mask] ..."]. *)

type func_report = {
  fr_name : string;
  fr_mem_ops : int;  (** memory operands proven masked *)
  fr_cfi_exits : int;  (** checked returns + checked indirect calls *)
  fr_violations : violation list;
}

type report = { image_ok : bool; per_func : func_report list }

val check : ?mitigation:Mitigation.t -> Linker.image -> (unit, violation list) result
(** Prove all five invariant classes — plus, when [mitigation] is not
    [Off], the {b Spec} class: under [Safe_mask] every mask window must
    be the branchless nine-instruction form (a predicated window is a
    violation even though it proves the architectural mask); under
    [Fence] every load, store, atomic and memcpy must be immediately
    preceded by an lfence.  Either mask-window form grants the Mask
    fact under any mitigation.  Violations are ordered by slot; [Ok ()]
    means every function of the image is proven. *)

val report : ?mitigation:Mitigation.t -> Linker.image -> report
(** Per-function breakdown of the same analysis, for [vgsim verify]. *)

val pp_report : Format.formatter -> report -> unit

val cost_cycles : Linker.image -> int
(** Simulated cycle cost of verifying this image (charged once at boot
    for the kernel's own image): two cycles per code slot — one to
    fetch/decode, one for the dataflow bookkeeping. *)

val check_policy :
  resolve:(string -> int option) ->
  n:int ->
  expected:Sfip.graph ->
  Linker.image ->
  (unit, violation list) result
(** The sixth invariant class ({!Policy}): re-extract the syscall-flow
    graph from the image with {!Sfip.extract} and require it to equal
    the graph the signed blob carried.  Proves a profiled image cannot
    ship a graph more permissive (or just different) than its code. *)
