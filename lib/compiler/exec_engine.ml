type t = Interp | Slots | Compiled

let all = [ Interp; Slots; Compiled ]

let to_string = function
  | Interp -> "interp"
  | Slots -> "slots"
  | Compiled -> "compiled"

let of_string = function
  | "interp" -> Some Interp
  | "slots" -> Some Slots
  | "compiled" -> Some Compiled
  | _ -> None
