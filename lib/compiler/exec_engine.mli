(** Which execution engine runs verified kernel/module images.

    All three engines charge the same simulated cycles on the code they
    can run — the choice only affects host time (and, for [Interp],
    which artifact is executed):

    - [Interp] re-runs the instrumented IR on the reference interpreter
      ({!Vg_ir.Interp}).  A debugging aid: it models the cost of the
      code the compiler {e would} emit but has no notion of CFI labels,
      checked returns or native addresses, so CFI cycle charges,
      [tamper_return] and {!Executor.Cfi_violation} do not exist on
      this engine.
    - [Slots] interprets the linked, slot-allocated image
      ({!Executor}).  The reference for the full cost model.
    - [Compiled] runs the load-time closure translation
      ({!Exec_compile}) of the same linked image: byte-identical
      simulated cycles and trajectories to [Slots], about an order of
      magnitude faster in host time. *)

type t = Interp | Slots | Compiled

val all : t list
val to_string : t -> string
val of_string : string -> t option
