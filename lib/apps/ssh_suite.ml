let installer_rng = lazy (Vg_crypto.Drbg.create ~seed:(Bytes.of_string "vg-installer"))

let install_images k ~app_key =
  let vg_key = Sva.vg_private_key_for_installer k.Kernel.sva in
  let rng = Lazy.force installer_rng in
  let image name =
    Appimage.install ~vg_key ~rng ~name
      ~payload:(Bytes.of_string ("text segment of " ^ name))
      ~entry:0x400000L ~app_key ()
  in
  (image "ssh", image "ssh-keygen", image "ssh-agent")

(* User-level cryptographic work costs cycles on the simulated CPU,
   identically in both builds. *)
let charge_crypto ctx n = Machine.charge ctx.Runtime.kernel.Kernel.machine n

(* Stage a byte string in the application heap. *)
let stage ctx data =
  let va = Runtime.galloc ctx (max 8 (Bytes.length data)) in
  Runtime.poke ctx va data;
  va

let write_file ctx path data =
  match Runtime.sys_open ctx path Syscalls.creat_trunc with
  | Error _ as e -> (match e with Error err -> Error err | Ok _ -> assert false)
  | Ok fd ->
      let va = stage ctx data in
      let r = Runtime.sys_write ctx ~fd ~src:va ~len:(Bytes.length data) in
      ignore (Runtime.sys_close ctx fd);
      (match r with
      | Ok n when n = Bytes.length data -> Ok ()
      | Ok _ -> Error Errno.ENOSPC
      | Error err -> Error err)

let read_file ctx path ~max =
  match Runtime.sys_open ctx path Syscalls.rdonly with
  | Error err -> Error err
  | Ok fd ->
      let va = Runtime.galloc ctx max in
      let r = Runtime.sys_read ctx ~fd ~dst:va ~len:max in
      ignore (Runtime.sys_close ctx fd);
      (match r with Ok n -> Ok (Runtime.peek ctx va n) | Error err -> Error err)

(* ------------------------------------------------------------------ *)
(* ssh-keygen                                                          *)

let sealed_magic = "VGE1"
let plain_magic = "PLN1"

let keygen ctx ~path =
  (* Key material from the VM's trusted entropy (sva.random), immune to
     Iago attacks through /dev/random. *)
  let private_key = Runtime.vg_random ctx 64 in
  let public_key = Vg_crypto.Sha256.digest private_key in
  charge_crypto ctx (64 * Cost.sha_per_byte);
  let file_content =
    match Runtime.get_app_key ctx with
    | Some app_key ->
        let nonce = Runtime.vg_random ctx 8 in
        charge_crypto ctx (64 * Cost.aes_per_byte);
        Bytes.concat Bytes.empty
          [
            Bytes.of_string sealed_magic;
            nonce;
            Vg_crypto.Ctr.seal ~key:app_key ~nonce private_key;
          ]
    | None ->
        (* Baseline system: no key chain, the private key is stored in
           the clear — which is what the OS can steal. *)
        Bytes.cat (Bytes.of_string plain_magic) private_key
  in
  match write_file ctx path file_content with
  | Error err -> Error err
  | Ok () ->
      write_file ctx (path ^ ".pub")
        (Bytes.of_string (Vg_crypto.Bytes_util.to_hex public_key))

let load_private_key ctx ~path =
  match read_file ctx path ~max:4096 with
  | Error err -> Error ("read: " ^ Errno.to_string err)
  | Ok raw ->
      if Bytes.length raw < 4 then Error "key file too short"
      else begin
        let magic = Bytes.to_string (Bytes.sub raw 0 4) in
        if magic = plain_magic then begin
          let key = Bytes.sub raw 4 (Bytes.length raw - 4) in
          Ok (stage ctx key, Bytes.length key)
        end
        else if magic = sealed_magic then begin
          match Runtime.get_app_key ctx with
          | None -> Error "sealed key but no application key available"
          | Some app_key -> (
              let nonce = Bytes.sub raw 4 8 in
              let sealed = Bytes.sub raw 12 (Bytes.length raw - 12) in
              charge_crypto ctx (Bytes.length sealed * Cost.aes_per_byte);
              match Vg_crypto.Ctr.open_ ~key:app_key ~nonce sealed with
              | None -> Error "authentication key corrupt (OS tampering detected)"
              | Some key -> Ok (stage ctx key, Bytes.length key))
        end
        else Error "unrecognised key file format"
      end

(* ------------------------------------------------------------------ *)
(* ssh client bulk transfer (Figure 4)                                 *)

let stream_nonce = Bytes.make 8 '\x17'

let fetch_begin ctx ~port = Syscalls.connect ctx.Runtime.kernel ctx.Runtime.proc ~port

let fetch_complete ctx ~fd ~len ~session_key =
  let va = Runtime.galloc ctx len in
  let received = ref 0 in
  let stalled = ref 0 in
  while !received < len && !stalled < 1000 do
    match
      Runtime.sys_read ctx ~fd ~dst:(Int64.add va (Int64.of_int !received))
        ~len:(len - !received)
    with
    | Ok 0 -> stalled := 1000
    | Ok n ->
        received := !received + n;
        stalled := 0
    | Error Errno.EAGAIN -> incr stalled
    | Error _ -> stalled := 1000
  done;
  if !received < len then
    Error (Printf.sprintf "short transfer: %d of %d bytes" !received len)
  else begin
    (* Decrypt the stream in place. *)
    let cipher = Runtime.peek ctx va len in
    charge_crypto ctx (len * Cost.aes_per_byte);
    let plain =
      Vg_crypto.Ctr.transform
        ~key:(Vg_crypto.Aes128.expand session_key)
        ~nonce:stream_nonce cipher
    in
    Runtime.poke ctx va plain;
    Ok (va, len)
  end

let remote_file_server machine ~session_key ~len ~chunk =
  match Netstack.Remote.accept (Machine.remote_nic machine) with
  | None -> false
  | Some ep ->
      let plain = Bytes.init len (fun i -> Char.chr (i mod 256)) in
      let cipher =
        Vg_crypto.Ctr.transform
          ~key:(Vg_crypto.Aes128.expand session_key)
          ~nonce:stream_nonce plain
      in
      let sent = ref 0 in
      while !sent < len do
        let n = min chunk (len - !sent) in
        Netstack.Remote.send ep (Bytes.sub cipher !sent n);
        sent := !sent + n
      done;
      Netstack.Remote.close ep;
      true

(* ------------------------------------------------------------------ *)
(* sshd file download (Figure 3)                                       *)

let sshd_serve_file ctx ~listen_fd ~path ~session_key =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let rec try_accept tries =
    match Syscalls.accept k proc ~fd:listen_fd with
    | Ok fd -> Ok fd
    | Error Errno.EAGAIN when tries > 0 -> try_accept (tries - 1)
    | Error err -> Error err
  in
  match try_accept 100 with
  | Error err -> Error ("accept: " ^ Errno.to_string err)
  | Ok conn_fd -> (
      (* Session setup: version banner, key exchange, channel open —
         a burst of small control messages (syscall-heavy, which is
         what makes small transfers expensive under Virtual Ghost). *)
      let ctl = Runtime.galloc ctx 64 in
      Runtime.poke ctx ctl (Bytes.make 48 '\x2a');
      for _ = 1 to 45 do
        ignore (Runtime.sys_write ctx ~fd:conn_fd ~src:ctl ~len:48)
      done;
      match Runtime.sys_open ctx path Syscalls.rdonly with
      | Error err -> Error ("open: " ^ Errno.to_string err)
      | Ok file_fd ->
          let chunk_len = 32768 in
          let buf = Runtime.galloc ctx chunk_len in
          ignore (Vg_crypto.Aes128.expand session_key);
          let total = ref 0 in
          let eof = ref false in
          let failed = ref None in
          while (not !eof) && !failed = None do
            match Runtime.sys_read ctx ~fd:file_fd ~dst:buf ~len:chunk_len with
            | Ok 0 -> eof := true
            | Ok n ->
                let plain = Runtime.peek ctx buf n in
                charge_crypto ctx (n * Cost.aes_per_byte);
                (* Stream cipher position follows the running total so
                   the whole file is one CTR stream.  For simplicity
                   chunks are block-aligned except the last. *)
                let cipher =
                  Vg_crypto.Chacha20.transform
                    ~key:(Vg_crypto.Sha256.digest session_key)
                    ~nonce:(Bytes.make 12 '\x03')
                    ~counter:(Int32.of_int (!total / 64))
                    plain
                in
                Runtime.poke ctx buf cipher;
                (match Runtime.sys_write ctx ~fd:conn_fd ~src:buf ~len:n with
                | Ok _ -> total := !total + n
                | Error err -> failed := Some (Errno.to_string err))
            | Error err -> failed := Some (Errno.to_string err)
          done;
          ignore (Runtime.sys_close ctx file_fd);
          ignore (Runtime.sys_close ctx conn_fd);
          (match !failed with
          | Some msg -> Error msg
          | None -> Ok !total))

(* ------------------------------------------------------------------ *)
(* ssh-agent                                                           *)

module Agent = struct
  type state = {
    ctx : Runtime.ctx;
    keys : (string, int64 * int) Hashtbl.t; (* name -> heap address, length *)
  }

  let create ctx = { ctx; keys = Hashtbl.create 8 }

  let key_address state name =
    Option.map fst (Hashtbl.find_opt state.keys name)

  (* Framing: type(1) len(4, little-endian) payload. *)
  let ty_add = 1
  let ty_list = 2
  let ty_sign = 3
  let ty_remove = 4
  let ty_ok = 10
  let ty_fail = 11

  let send_frame ctx ~fd ~ty payload =
    let frame = Bytes.create (5 + Bytes.length payload) in
    Bytes.set frame 0 (Char.chr ty);
    Bytes.set_int32_le frame 1 (Int32.of_int (Bytes.length payload));
    Bytes.blit payload 0 frame 5 (Bytes.length payload);
    let va = stage ctx frame in
    match Runtime.sys_write ctx ~fd ~src:va ~len:(Bytes.length frame) with
    | Ok n when n = Bytes.length frame -> Ok ()
    | Ok _ -> Error Errno.EPIPE
    | Error e -> Error e

  (* Cooperative pipes never block mid-frame: a frame is written in one
     syscall and is thus readable in full. *)
  let read_exact ctx ~fd ~len =
    let va = Runtime.galloc ctx (max 8 len) in
    match Runtime.sys_read ctx ~fd ~dst:va ~len with
    | Ok n when n = len -> Ok (Runtime.peek ctx va len)
    | Ok _ -> Error Errno.EPIPE
    | Error e -> Error e

  let read_frame ctx ~fd =
    match read_exact ctx ~fd ~len:5 with
    | Error e -> Error e
    | Ok header ->
        let ty = Char.code (Bytes.get header 0) in
        let len = Int32.to_int (Bytes.get_int32_le header 1) in
        if len = 0 then Ok (ty, Bytes.empty)
        else begin
          match read_exact ctx ~fd ~len with
          | Ok payload -> Ok (ty, payload)
          | Error e -> Error e
        end

  (* name\x00rest *)
  let split_name payload =
    let s = Bytes.to_string payload in
    match String.index_opt s '\000' with
    | None -> (s, Bytes.empty)
    | Some i ->
        (String.sub s 0 i, Bytes.sub payload (i + 1) (Bytes.length payload - i - 1))

  let serve_one state ~request_fd ~reply_fd =
    let ctx = state.ctx in
    match read_frame ctx ~fd:request_fd with
    | Error e -> Error e
    | Ok (ty, payload) ->
        let reply ~ty payload = send_frame ctx ~fd:reply_fd ~ty payload in
        if ty = ty_add then begin
          let name, key = split_name payload in
          (* The key material goes straight into the (ghost) heap. *)
          let va = Runtime.galloc ctx (Bytes.length key) in
          Runtime.poke ctx va key;
          Hashtbl.replace state.keys name (va, Bytes.length key);
          reply ~ty:ty_ok Bytes.empty
        end
        else if ty = ty_list then begin
          let names = Hashtbl.fold (fun n _ acc -> n :: acc) state.keys [] in
          reply ~ty:ty_ok (Bytes.of_string (String.concat "," (List.sort compare names)))
        end
        else if ty = ty_sign then begin
          let name, challenge = split_name payload in
          match Hashtbl.find_opt state.keys name with
          | None -> reply ~ty:ty_fail (Bytes.of_string "unknown key")
          | Some (va, len) ->
              let key = Runtime.peek ctx va len in
              charge_crypto ctx ((len + Bytes.length challenge) * Cost.sha_per_byte);
              reply ~ty:ty_ok (Vg_crypto.Hmac.mac ~key challenge)
        end
        else if ty = ty_remove then begin
          let name, _ = split_name payload in
          if Hashtbl.mem state.keys name then begin
            (* Scrub the key material before dropping the reference. *)
            (match Hashtbl.find_opt state.keys name with
            | Some (va, len) -> Runtime.poke ctx va (Bytes.make len '\000')
            | None -> ());
            Hashtbl.remove state.keys name;
            reply ~ty:ty_ok Bytes.empty
          end
          else reply ~ty:ty_fail (Bytes.of_string "unknown key")
        end
        else reply ~ty:ty_fail (Bytes.of_string "bad request")

  let with_name name rest = Bytes.cat (Bytes.of_string (name ^ "\000")) rest

  let request_add ctx ~fd ~name ~key = send_frame ctx ~fd ~ty:ty_add (with_name name key)
  let request_list ctx ~fd = send_frame ctx ~fd ~ty:ty_list Bytes.empty

  let request_sign ctx ~fd ~name ~challenge =
    send_frame ctx ~fd ~ty:ty_sign (with_name name challenge)

  let request_remove ctx ~fd ~name = send_frame ctx ~fd ~ty:ty_remove (with_name name Bytes.empty)

  let read_reply ctx ~fd =
    match read_frame ctx ~fd with
    | Error e -> Error ("reply: " ^ Errno.to_string e)
    | Ok (ty, payload) ->
        if ty = ty_ok then Ok payload
        else Error (Bytes.to_string payload)
end

let agent_store_secret ctx secret =
  let va = Runtime.galloc ctx (String.length secret) in
  Runtime.poke ctx va (Bytes.of_string secret);
  va

let agent_serve_once ctx ~request_fd ~reply_fd ~secret ~secret_len =
  let buf = Runtime.galloc ctx 256 in
  match Runtime.sys_read ctx ~fd:request_fd ~dst:buf ~len:256 with
  | Error err -> Error err
  | Ok n ->
      let request = Runtime.peek ctx buf n in
      let key = Runtime.peek ctx secret secret_len in
      charge_crypto ctx ((n + secret_len) * Cost.sha_per_byte);
      let answer = Vg_crypto.Hmac.mac ~key request in
      let out = stage ctx answer in
      (match Runtime.sys_write ctx ~fd:reply_fd ~src:out ~len:(Bytes.length answer) with
      | Ok _ -> Ok ()
      | Error err -> Error err)
