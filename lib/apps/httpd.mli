(** A thttpd-style static web server (Figure 2's workload).

    Single-process accept loop: parse ["GET <path>"], read the file
    through the file system, answer with a minimal HTTP/1.0 response.
    The server is deliberately {e not} a ghosting application — the
    paper measures the kernel-instrumentation cost on an unmodified
    server. *)

val start : Runtime.ctx -> port:int -> int Errno.result
(** Bind and listen; returns the listening descriptor. *)

val serve_requests : Runtime.ctx -> listen_fd:int -> max:int -> int
(** Handle up to [max] pending connections (one request each, as
    ApacheBench with HTTP/1.0 does); returns how many were served.
    Returns when no further connection is pending. *)

(** Multi-worker pool: N preemptible worker processes share one
    listening socket (inherited fd) and are spread over the machine's
    cores by {!Sched} — the SMP scaling workload. *)
module Pool : sig
  type stats = {
    workers : int;
    served : int;  (** connections handled *)
    ok : int;  (** clients that got a [200] response *)
    elapsed_cycles : int;
        (** wall-clock of the serving window: max per-core cycle delta *)
    preemptions : int;
    steals : int;
  }

  val run :
    ?ghosting:bool ->
    ?sfip:Syscall_policy.t ->
    Kernel.t ->
    workers:int ->
    requests:int ->
    port:int ->
    path:string ->
    stats
  (** Listen, spawn [workers] fibers pinned round-robin across cores,
      pre-connect [requests] clients (handshakes fall outside the
      measured window), then drive the scheduler until every request
      is served.  [?sfip] attaches a syscall-flow policy to every
      worker (own cursor, shared graph — see {!Runtime.launch}). *)
end

(** Event-driven server: one single-threaded event loop per core over
    the batched syscall ring ({!Uring}) plus the [poll] readiness
    syscall — the paper's trap-protocol cost amortised across whole
    batches instead of paid per syscall.  Path-argument syscalls
    (open, stat) stay direct traps. *)
module Event_loop : sig
  type stats = {
    cores : int;
    batch : int;  (** SQEs flushed per [ring_enter] *)
    served : int;  (** connections handled *)
    ok : int;  (** clients that got a [200] response *)
    elapsed_cycles : int;
        (** wall-clock of the serving window: max per-core cycle delta *)
    ring_enters : int;  (** ring_enter traps across all cores *)
    sqes : int;  (** submission entries across all cores *)
    polls : int;  (** poll syscalls across all cores *)
    preemptions : int;
    steals : int;
  }

  val serve :
    ?ghosting:bool ->
    ?batch:int ->
    ?sfip:Syscall_policy.t ->
    ?background:(Sched.t -> unit) ->
    Kernel.t ->
    port:int ->
    stats
  (** The measured half of {!run}, for callers — the fleet front-end —
      that manage listeners and clients themselves: [port] must already
      be listening and every client's SYN + request must already sit in
      the NIC queue.  Spawns one event-loop fiber per core, lets
      [background] add extra fibers to the same scheduler (mixed-load
      workloads), resets the clocks and drives until the backlog and
      every accepted connection drain.  [ok] in the result equals
      [served]; callers holding the endpoints overwrite it with the
      verified response count. *)

  val run :
    ?ghosting:bool ->
    ?batch:int ->
    ?sfip:Syscall_policy.t ->
    Kernel.t ->
    requests:int ->
    port:int ->
    path:string ->
    stats
  (** Listen, run one event-loop fiber per core (each with its own
      submission ring of at least [batch] slots), pre-connect
      [requests] clients, then drive the scheduler until the backlog
      and every accepted connection are drained.  [batch] defaults
      to 8.  [?sfip] attaches a syscall-flow policy to every loop
      (own cursor, shared graph): ring batches are vetted whole before
      any entry runs. *)
end

(** Client half, run on the remote machine by the benchmark harness. *)
module Client : sig
  val get :
    Machine.t -> port:int -> path:string -> (unit -> unit) -> bytes option
  (** [get machine ~port ~path pump] issues one request.  [pump] is
      called to let the (cooperative) server run; returns the response
      body, [None] on failure. *)
end
