let start ctx ~port = Syscalls.listen ctx.Runtime.kernel ctx.Runtime.proc ~port

let response_header body_len =
  Printf.sprintf "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n" body_len

let not_found = "HTTP/1.0 404 Not Found\r\n\r\n"

let handle_connection ctx conn_fd =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let buf = Runtime.galloc ctx 1024 in
  let rec read_request tries =
    if tries = 0 then None
    else begin
      match Runtime.sys_recv ctx ~fd:conn_fd ~buf ~len:1024 with
      | Ok 0 -> None
      | Ok n -> Some (Bytes.to_string (Runtime.peek ctx buf n))
      | Error Errno.EAGAIN -> read_request (tries - 1)
      | Error _ -> None
    end
  in
  (match read_request 50 with
  | None -> ()
  | Some request -> (
      let path =
        match String.split_on_char ' ' (String.trim request) with
        | "GET" :: path :: _ -> Some path
        | _ -> None
      in
      match path with
      | None -> ignore (Runtime.write_string ctx ~fd:conn_fd not_found)
      | Some path -> (
          match Runtime.sys_open ctx path Syscalls.rdonly with
          | Error _ -> ignore (Runtime.write_string ctx ~fd:conn_fd not_found)
          | Ok file_fd ->
              let size =
                match Syscalls.stat k proc path with
                | Ok st -> st.Diskfs.size
                | Error _ -> 0
              in
              ignore (Runtime.write_string ctx ~fd:conn_fd (response_header size));
              let chunk_len = 32768 in
              let data_buf = Runtime.galloc ctx chunk_len in
              let eof = ref false in
              while not !eof do
                match Runtime.sys_read ctx ~fd:file_fd ~dst:data_buf ~len:chunk_len with
                | Ok 0 | Error _ -> eof := true
                | Ok n -> (
                    match Runtime.sys_write ctx ~fd:conn_fd ~src:data_buf ~len:n with
                    | Ok _ -> ()
                    | Error _ -> eof := true)
              done;
              ignore (Runtime.sys_close ctx file_fd))));
  ignore (Runtime.sys_close ctx conn_fd)

let serve_requests ctx ~listen_fd ~max =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let served = ref 0 in
  let continue = ref true in
  while !continue && !served < max do
    match Syscalls.accept k proc ~fd:listen_fd with
    | Ok conn_fd ->
        handle_connection ctx conn_fd;
        incr served
    | Error _ -> continue := false
  done;
  !served

(* ------------------------------------------------------------------ *)
(* Multi-worker pool: N preemptible worker processes share one
   listening socket (fd inheritance) and are scheduled across the
   machine's cores by [Sched].  Clients pre-connect before the
   measured window, so the elapsed cycles cover exactly the serving
   work. *)

module Pool = struct
  type stats = {
    workers : int;
    served : int;
    ok : int;
    elapsed_cycles : int;
    preemptions : int;
    steals : int;
  }

  let worker_body sched ~port ~requests ~served ctx =
    let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
    (* Share the already-listening socket, as an inherited fd. *)
    let listen_fd = Proc.add_fd proc (Proc.Sock_listen port) in
    let continue = ref true in
    while !continue do
      match Syscalls.accept k proc ~fd:listen_fd with
      | Ok conn_fd ->
          handle_connection ctx conn_fd;
          incr served;
          Sched.yield sched
      | Error _ ->
          (* Backlog empty: quit once every request has been served,
             otherwise let another worker (or the one mid-request) run. *)
          if !served >= requests then continue := false else Sched.yield sched
    done

  let run ?(ghosting = false) ?sfip kernel ~workers ~requests ~port ~path =
    if workers < 1 then invalid_arg "Httpd.Pool.run: workers < 1";
    let m = kernel.Kernel.machine in
    (match Netstack.listen kernel.Kernel.net ~port with
    | Ok () -> ()
    | Error e -> failwith ("Httpd.Pool.run: listen: " ^ Errno.to_string e));
    let sched = Sched.create kernel in
    let served = ref 0 in
    let cpus = Machine.cpus m in
    for i = 0 to workers - 1 do
      ignore
        (Runtime.spawn_fiber kernel sched ~cpu:(i mod cpus) ?sfip ~ghosting
           ~name:(Printf.sprintf "httpd-%d" i)
           (worker_body sched ~port ~requests ~served))
    done;
    (* Pre-connect every client; handshakes and request transmission
       land before the measured window. *)
    let eps =
      List.init requests (fun _ ->
          Machine.charge m Cost.tcp_handshake;
          let ep = Netstack.Remote.connect (Machine.remote_nic m) ~port in
          Netstack.Remote.send ep
            (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
          ep)
    in
    (* Boot, filesystem setup and client pre-connects all ran on the
       boot core, leaving its clock far ahead of the others; the
       clock-ordered interleaver would then serialise the whole run on
       the idle cores.  Start the measured window from synchronised
       clocks, as a real benchmark starts all cores "now". *)
    Machine.reset_clock m;
    let before = Array.init cpus (Machine.core_cycles m) in
    Sched.run sched;
    let elapsed = ref 0 in
    for c = 0 to cpus - 1 do
      elapsed := max !elapsed (Machine.core_cycles m c - before.(c))
    done;
    let ok =
      List.fold_left
        (fun acc ep ->
          let raw = Netstack.Remote.recv_all_available ep in
          Netstack.Remote.close ep;
          let s = Bytes.to_string raw in
          if String.length s >= 12 && String.sub s 9 3 = "200" then acc + 1
          else acc)
        0 eps
    in
    {
      workers;
      served = !served;
      ok;
      elapsed_cycles = !elapsed;
      preemptions = Sched.preemptions sched;
      steals = Sched.steals sched;
    }
end

(* ------------------------------------------------------------------ *)
(* Event-driven server: one single-threaded loop per core, batching
   its syscalls through the submission ring ([Uring]) and using [poll]
   as the readiness gate.  Each connection is a small state machine
   advanced one ring completion at a time; SQEs from every connection
   (and the shared listener) are flushed together in batches of
   [batch], so the SVA trap protocol is paid once per batch instead of
   once per syscall.  Path-argument syscalls (open, stat) cannot ride
   the four-register ring and stay direct traps. *)

module Event_loop = struct
  type stats = {
    cores : int;
    batch : int;
    served : int;
    ok : int;
    elapsed_cycles : int;
    ring_enters : int;
    sqes : int;
    polls : int;
    preemptions : int;
    steals : int;
  }

  type phase =
    | Recv_request
    | Send_header of int * int  (* file fd, header length *)
    | Read_file of int
    | Send_chunk of int * int  (* file fd, bytes just read *)
    | Send_close of int  (* error page length; close conn after *)
    | Close_file of int
    | Close_conn

  type conn = {
    id : int;
    fd : int;
    req_buf : int64;
    data_buf : int64;
    mutable phase : phase;
    mutable waiting : bool;  (* needs a poll verdict before submitting *)
    mutable outstanding : bool;  (* SQE queued, completion not yet seen *)
  }

  let chunk_len = 32768
  let accept_cookie = -1L

  let loop_body ~port ~batch ~served ~totals ctx =
    let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
    let listen_fd = Proc.add_fd proc (Proc.Sock_listen port) in
    let ring = Uring.create ctx ~depth:(max batch 8) in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
    let next_id = ref 0 in
    let queued = ref 0 in
    let accepts_in_flight = ref 0 in
    (* Set when accept reports an empty backlog: the workload
       pre-connects every client, so an empty backlog stays empty. *)
    let drained = ref false in
    let polls = ref 0 in
    let max_conns = max batch 4 in
    let stage_error_page conn =
      Runtime.poke ctx conn.data_buf (Bytes.of_string not_found);
      conn.phase <- Send_close (String.length not_found)
    in
    let advance conn res =
      conn.outstanding <- false;
      match (conn.phase, res) with
      | Recv_request, Error Errno.EAGAIN -> conn.waiting <- true
      | Recv_request, Ok n when n > 0 -> (
          let request = Bytes.to_string (Runtime.peek ctx conn.req_buf n) in
          let path =
            match String.split_on_char ' ' (String.trim request) with
            | "GET" :: path :: _ -> Some path
            | _ -> None
          in
          match path with
          | None -> stage_error_page conn
          | Some path -> (
              match Syscalls.open_ k proc path Syscalls.rdonly with
              | Error _ -> stage_error_page conn
              | Ok file_fd ->
                  let size =
                    match Syscalls.stat k proc path with
                    | Ok st -> st.Diskfs.size
                    | Error _ -> 0
                  in
                  let header = response_header size in
                  Runtime.poke ctx conn.data_buf (Bytes.of_string header);
                  conn.phase <- Send_header (file_fd, String.length header)))
      | Recv_request, (Ok _ | Error _) -> conn.phase <- Close_conn
      | Send_header (f, _), Ok _ -> conn.phase <- Read_file f
      | Send_header (f, _), Error _ -> conn.phase <- Close_file f
      | Read_file f, Ok n when n > 0 -> conn.phase <- Send_chunk (f, n)
      | Read_file f, (Ok _ | Error _) -> conn.phase <- Close_file f
      | Send_chunk (f, _), Ok _ -> conn.phase <- Read_file f
      | Send_chunk (f, _), Error _ -> conn.phase <- Close_file f
      | Send_close _, _ -> conn.phase <- Close_conn
      | Close_file _, _ -> conn.phase <- Close_conn
      | Close_conn, _ ->
          Hashtbl.remove conns conn.id;
          incr served
    in
    let complete (c : Syscall_ring.cqe) =
      let res = Syscall_abi.decode_int c.Syscall_ring.result in
      if c.Syscall_ring.user_data = accept_cookie then begin
        decr accepts_in_flight;
        match res with
        | Ok fd ->
            let id = !next_id in
            incr next_id;
            Hashtbl.replace conns id
              {
                id;
                fd;
                req_buf = Runtime.galloc ctx 1024;
                data_buf = Runtime.galloc ctx chunk_len;
                phase = Recv_request;
                waiting = true;
                outstanding = false;
              }
        | Error _ -> drained := true
      end
      else
        match Hashtbl.find_opt conns (Int64.to_int c.Syscall_ring.user_data) with
        | Some conn -> advance conn res
        | None -> ()
    in
    let flush () =
      if !queued > 0 then begin
        (match Uring.enter ring ~to_submit:!queued with Ok _ | Error _ -> ());
        queued := 0;
        List.iter complete (Uring.reap ring)
      end
    in
    let push ~sysno ~args ~user_data =
      if !queued >= batch then flush ();
      if Uring.submit ring ~sysno ~args ~user_data then incr queued
    in
    let submit_phase conn =
      let fd64 = Int64.of_int conn.fd in
      let user_data = Int64.of_int conn.id in
      conn.outstanding <- true;
      match conn.phase with
      | Recv_request ->
          push ~sysno:Syscall_abi.sys_recv
            ~args:[| fd64; conn.req_buf; 1024L |]
            ~user_data
      | Send_header (_, len) | Send_close len ->
          push ~sysno:Syscall_abi.sys_send
            ~args:[| fd64; conn.data_buf; Int64.of_int len |]
            ~user_data
      | Read_file f ->
          push ~sysno:Syscall_abi.sys_read
            ~args:[| Int64.of_int f; conn.data_buf; Int64.of_int chunk_len |]
            ~user_data
      | Send_chunk (_, n) ->
          push ~sysno:Syscall_abi.sys_send
            ~args:[| fd64; conn.data_buf; Int64.of_int n |]
            ~user_data
      | Close_file f ->
          push ~sysno:Syscall_abi.sys_close ~args:[| Int64.of_int f |] ~user_data
      | Close_conn ->
          push ~sysno:Syscall_abi.sys_close ~args:[| fd64 |] ~user_data
    in
    while not (!drained && Hashtbl.length conns = 0) do
      (* Fill: keep the connection table topped up from the backlog... *)
      if not !drained then begin
        let want = max_conns - Hashtbl.length conns - !accepts_in_flight in
        for _ = 1 to want do
          incr accepts_in_flight;
          push ~sysno:Syscall_abi.sys_accept
            ~args:[| Int64.of_int listen_fd |]
            ~user_data:accept_cookie
        done
      end;
      (* ... and queue each runnable connection's next step. *)
      let runnable =
        Hashtbl.fold (fun _ c acc -> if not c.waiting then c :: acc else acc) conns []
        |> List.sort (fun a b -> compare a.id b.id)
      in
      List.iter (fun c -> if not c.outstanding then submit_phase c) runnable;
      if !queued > 0 then flush ()
      else begin
        (* Nothing submittable: every connection awaits readiness. *)
        let fds =
          Hashtbl.fold (fun _ c acc -> if c.waiting then c.fd :: acc else acc) conns []
        in
        if fds <> [] then begin
          incr polls;
          match Syscalls.poll k proc fds with
          | Ok ready ->
              Hashtbl.iter
                (fun _ c -> if List.mem c.fd ready then c.waiting <- false)
                conns
          | Error _ -> Hashtbl.iter (fun _ c -> c.waiting <- false) conns
        end
      end
    done;
    let enters, sqes, polled = totals in
    enters := !enters + Uring.enters ring;
    sqes := !sqes + Uring.submitted ring;
    polled := !polled + !polls

  (* The measured half of [run]: the listener is already open and the
     clients already connected (their SYN + request frames sit in the
     NIC queue).  Spawns one event loop per core — plus any
     [background] fibers the caller wants sharing the scheduler (the
     fleet's mixed-load workloads ride here) — and serves from
     synchronised clocks.  [ok] in the result equals [served]; callers
     holding the client endpoints overwrite it with the verified
     count. *)
  let serve ?(ghosting = false) ?(batch = 8) ?sfip ?background kernel ~port =
    if batch < 1 || batch > 4096 then invalid_arg "Httpd.Event_loop.serve: bad batch";
    let m = kernel.Kernel.machine in
    let sched = Sched.create kernel in
    let served = ref 0 in
    let enters = ref 0 and sqes = ref 0 and polls = ref 0 in
    let cpus = Machine.cpus m in
    for i = 0 to cpus - 1 do
      ignore
        (Runtime.spawn_fiber kernel sched ~cpu:i ?sfip ~ghosting
           ~name:(Printf.sprintf "httpd-ev-%d" i)
           (loop_body ~port ~batch ~served ~totals:(enters, sqes, polls)))
    done;
    (match background with None -> () | Some f -> f sched);
    Machine.reset_clock m;
    let before = Array.init cpus (Machine.core_cycles m) in
    Sched.run sched;
    let elapsed = ref 0 in
    for c = 0 to cpus - 1 do
      elapsed := max !elapsed (Machine.core_cycles m c - before.(c))
    done;
    {
      cores = cpus;
      batch;
      served = !served;
      ok = !served;
      elapsed_cycles = !elapsed;
      ring_enters = !enters;
      sqes = !sqes;
      polls = !polls;
      preemptions = Sched.preemptions sched;
      steals = Sched.steals sched;
    }

  let run ?(ghosting = false) ?(batch = 8) ?sfip kernel ~requests ~port ~path =
    let m = kernel.Kernel.machine in
    (match Netstack.listen kernel.Kernel.net ~port with
    | Ok () -> ()
    | Error e -> failwith ("Httpd.Event_loop.run: listen: " ^ Errno.to_string e));
    (* Same measurement discipline as [Pool.run]: pre-connect every
       client, then serve from synchronised clocks. *)
    let eps =
      List.init requests (fun _ ->
          Machine.charge m Cost.tcp_handshake;
          let ep = Netstack.Remote.connect (Machine.remote_nic m) ~port in
          Netstack.Remote.send ep
            (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
          ep)
    in
    let stats = serve ~ghosting ~batch ?sfip kernel ~port in
    let ok =
      List.fold_left
        (fun acc ep ->
          let raw = Netstack.Remote.recv_all_available ep in
          Netstack.Remote.close ep;
          let s = Bytes.to_string raw in
          if String.length s >= 12 && String.sub s 9 3 = "200" then acc + 1
          else acc)
        0 eps
    in
    { stats with ok }
end

module Client = struct
  let get machine ~port ~path pump =
    (* HTTP/1.0, one connection per request: pay the TCP handshake. *)
    Machine.charge machine Cost.tcp_handshake;
    let ep = Netstack.Remote.connect (Machine.remote_nic machine) ~port in
    Netstack.Remote.send ep (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
    pump ();
    let raw = Netstack.Remote.recv_all_available ep in
    Netstack.Remote.close ep;
    (* Split the header from the body. *)
    let s = Bytes.to_string raw in
    let rec find_body i =
      if i + 4 > String.length s then None
      else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
      else find_body (i + 1)
    in
    match find_body 0 with
    | Some start when String.length s >= 12 && String.sub s 9 3 = "200" ->
        Some (Bytes.sub raw start (Bytes.length raw - start))
    | _ -> None
end
