let start ctx ~port = Syscalls.listen ctx.Runtime.kernel ctx.Runtime.proc ~port

let response_header body_len =
  Printf.sprintf "HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n" body_len

let not_found = "HTTP/1.0 404 Not Found\r\n\r\n"

let handle_connection ctx conn_fd =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let buf = Runtime.galloc ctx 1024 in
  let rec read_request tries =
    if tries = 0 then None
    else begin
      match Syscalls.recv k proc ~fd:conn_fd ~buf ~len:1024 with
      | Ok 0 -> None
      | Ok n -> Some (Bytes.to_string (Runtime.peek ctx buf n))
      | Error Errno.EAGAIN -> read_request (tries - 1)
      | Error _ -> None
    end
  in
  (match read_request 50 with
  | None -> ()
  | Some request -> (
      let path =
        match String.split_on_char ' ' (String.trim request) with
        | "GET" :: path :: _ -> Some path
        | _ -> None
      in
      match path with
      | None -> ignore (Runtime.write_string ctx ~fd:conn_fd not_found)
      | Some path -> (
          match Runtime.sys_open ctx path Syscalls.rdonly with
          | Error _ -> ignore (Runtime.write_string ctx ~fd:conn_fd not_found)
          | Ok file_fd ->
              let size =
                match Syscalls.stat k proc path with
                | Ok st -> st.Diskfs.size
                | Error _ -> 0
              in
              ignore (Runtime.write_string ctx ~fd:conn_fd (response_header size));
              let chunk_len = 32768 in
              let data_buf = Runtime.galloc ctx chunk_len in
              let eof = ref false in
              while not !eof do
                match Runtime.sys_read ctx ~fd:file_fd ~dst:data_buf ~len:chunk_len with
                | Ok 0 | Error _ -> eof := true
                | Ok n -> (
                    match Runtime.sys_write ctx ~fd:conn_fd ~src:data_buf ~len:n with
                    | Ok _ -> ()
                    | Error _ -> eof := true)
              done;
              ignore (Runtime.sys_close ctx file_fd))));
  ignore (Runtime.sys_close ctx conn_fd)

let serve_requests ctx ~listen_fd ~max =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  let served = ref 0 in
  let continue = ref true in
  while !continue && !served < max do
    match Syscalls.accept k proc ~fd:listen_fd with
    | Ok conn_fd ->
        handle_connection ctx conn_fd;
        incr served
    | Error _ -> continue := false
  done;
  !served

(* ------------------------------------------------------------------ *)
(* Multi-worker pool: N preemptible worker processes share one
   listening socket (fd inheritance) and are scheduled across the
   machine's cores by [Sched].  Clients pre-connect before the
   measured window, so the elapsed cycles cover exactly the serving
   work. *)

module Pool = struct
  type stats = {
    workers : int;
    served : int;
    ok : int;
    elapsed_cycles : int;
    preemptions : int;
    steals : int;
  }

  let worker_body sched ~port ~requests ~served ctx =
    let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
    (* Share the already-listening socket, as an inherited fd. *)
    let listen_fd = Proc.add_fd proc (Proc.Sock_listen port) in
    let continue = ref true in
    while !continue do
      match Syscalls.accept k proc ~fd:listen_fd with
      | Ok conn_fd ->
          handle_connection ctx conn_fd;
          incr served;
          Sched.yield sched
      | Error _ ->
          (* Backlog empty: quit once every request has been served,
             otherwise let another worker (or the one mid-request) run. *)
          if !served >= requests then continue := false else Sched.yield sched
    done

  let run ?(ghosting = false) kernel ~workers ~requests ~port ~path =
    if workers < 1 then invalid_arg "Httpd.Pool.run: workers < 1";
    let m = kernel.Kernel.machine in
    (match Netstack.listen kernel.Kernel.net ~port with
    | Ok () -> ()
    | Error e -> failwith ("Httpd.Pool.run: listen: " ^ Errno.to_string e));
    let sched = Sched.create kernel in
    let served = ref 0 in
    let cpus = Machine.cpus m in
    for i = 0 to workers - 1 do
      ignore
        (Runtime.spawn_fiber kernel sched ~cpu:(i mod cpus) ~ghosting
           ~name:(Printf.sprintf "httpd-%d" i)
           (worker_body sched ~port ~requests ~served))
    done;
    (* Pre-connect every client; handshakes and request transmission
       land before the measured window. *)
    let eps =
      List.init requests (fun _ ->
          Machine.charge m Cost.tcp_handshake;
          let ep = Netstack.Remote.connect (Machine.remote_nic m) ~port in
          Netstack.Remote.send ep
            (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
          ep)
    in
    (* Boot, filesystem setup and client pre-connects all ran on the
       boot core, leaving its clock far ahead of the others; the
       clock-ordered interleaver would then serialise the whole run on
       the idle cores.  Start the measured window from synchronised
       clocks, as a real benchmark starts all cores "now". *)
    Machine.reset_clock m;
    let before = Array.init cpus (Machine.core_cycles m) in
    Sched.run sched;
    let elapsed = ref 0 in
    for c = 0 to cpus - 1 do
      elapsed := max !elapsed (Machine.core_cycles m c - before.(c))
    done;
    let ok =
      List.fold_left
        (fun acc ep ->
          let raw = Netstack.Remote.recv_all_available ep in
          Netstack.Remote.close ep;
          let s = Bytes.to_string raw in
          if String.length s >= 12 && String.sub s 9 3 = "200" then acc + 1
          else acc)
        0 eps
    in
    {
      workers;
      served = !served;
      ok;
      elapsed_cycles = !elapsed;
      preemptions = Sched.preemptions sched;
      steals = Sched.steals sched;
    }
end

module Client = struct
  let get machine ~port ~path pump =
    (* HTTP/1.0, one connection per request: pay the TCP handshake. *)
    Machine.charge machine Cost.tcp_handshake;
    let ep = Netstack.Remote.connect (Machine.remote_nic machine) ~port in
    Netstack.Remote.send ep (Bytes.of_string (Printf.sprintf "GET %s HTTP/1.0\r\n" path));
    pump ();
    let raw = Netstack.Remote.recv_all_available ep in
    Netstack.Remote.close ep;
    (* Split the header from the body. *)
    let s = Bytes.to_string raw in
    let rec find_body i =
      if i + 4 > String.length s then None
      else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
      else find_body (i + 1)
    in
    match find_body 0 with
    | Some start when String.length s >= 12 && String.sub s 9 3 = "200" ->
        Some (Bytes.sub raw start (Bytes.length raw - start))
    | _ -> None
end
