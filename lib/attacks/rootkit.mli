(** The malicious kernel module of the paper's security evaluation
    (section 7), modelled on Joseph Kong's FreeBSD rootkits.

    The module replaces the [read] system-call handler and fires as the
    victim process reads from a file descriptor.  Two attacks are
    implemented:

    - {e direct read}: load the victim's heap data through ordinary
      kernel loads and print it to the system log;
    - {e signal-handler code injection}: open an exfiltration file in
      the victim's descriptor table, [mmap] a buffer into the victim,
      copy exploit code into it, install it as a signal handler and
      send the signal; the exploit (running as the victim) copies the
      secret out of the victim's own memory and [write]s it to the
      file.

    Both are expressed as virtual-ISA programs and loaded through the
    standard module loader — so under Virtual Ghost they are compiled
    with sandboxing and CFI like any other kernel code, and both fail
    for the mechanical reasons the paper describes.  On the baseline
    build both succeed. *)

type attack = Direct_read | Signal_inject

val module_program :
  attack:attack -> victim_pid:int -> target_va:int64 -> target_len:int -> scratch_va:int64 ->
  Ir.program
(** Build the module's IR.  [target_va]/[target_len] locate the secret
    in the victim's address space; [scratch_va] is a kernel-data page
    the module uses as its buffer. *)

val prepare_kernel : Kernel.t -> int64
(** Attack-independent setup: register the kernel helper API and map a
    kernel scratch page for the module; returns the scratch address. *)

val register_exploit_payload : Kernel.t -> victim:Runtime.ctx -> secret_va:int64 -> secret_len:int -> unit
(** Wire the [extern.inject_code] helper so that "copying exploit code
    into the mmap'ed buffer" registers a closure at that address in the
    victim's text map.  The payload reads the exfiltration descriptor
    the module staged at the buffer's start, copies the secret from the
    victim's (ghost) heap into traditional memory, and writes it out. *)

type outcome = {
  attack : attack;
  mode : Sva.mode;
  secret_leaked_to_console : bool;  (** direct-read success *)
  secret_in_exfil_file : bool;  (** injection success *)
  vm_refusal_logged : bool;  (** Virtual Ghost blocked the dispatch *)
  victim_survived : bool;
}

val pp_outcome : Format.formatter -> outcome -> unit

val infect : Kernel.t -> attack:attack -> outcome
(** Replay the attack against an already-booted kernel — a fleet
    backend: start the ghosting agent victim, load the malicious
    module, trigger the replaced handler, unload, and report the
    aftermath.  Under Virtual Ghost the attack fails closed, leaving
    [Security] events on the kernel's machine's observability
    instance (fleet reporting picks them up from there). *)

val run_experiment :
  ?cpus:int ->
  ?engine:Vg_compiler.Exec_engine.t ->
  mode:Sva.mode ->
  attack:attack ->
  unit ->
  outcome
(** The full section-7 experiment: boot a machine in [mode] (with
    [cpus] cores — default 1; the attack itself runs on the boot
    core), start the ghosting ssh-agent holding a known secret, load
    the malicious module, trigger the victim's [read], and inspect the
    aftermath.  [engine] selects the kernel's execution engine for the
    module's code (default the slot executor); outcomes and Security
    events are engine-independent — pinned by the attack parity
    tests. *)

val secret_string : string
(** The planted secret the attacks hunt for. *)
