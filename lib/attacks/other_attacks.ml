let secret = "ghost-page-secret-value!"

let boot_config ?engine ?(cpus = 1) ~seed mode =
  let config =
    Vg_fleet.Node_config.(
      default |> with_cpus cpus |> with_phys_frames 8192
      |> with_disk_sectors 8192 |> with_seed seed |> with_mode mode)
  in
  match engine with
  | None -> config
  | Some e -> Vg_fleet.Node_config.with_engine e config

let boot ?engine mode =
  Vg_fleet.Node.kernel (Vg_fleet.Node.boot (boot_config ?engine ~seed:"oatk" mode))

(* Plant the secret in a fresh process's ghost page; return everything
   the attacks need. *)
let plant k =
  let init = Kernel.init_process k in
  let proc =
    match Kernel.create_process k ~parent:init with
    | Ok p -> p
    | Error _ -> failwith "plant: create_process"
  in
  let va = Int64.add Layout.ghost_start 0x200000L in
  (match Syscalls.allocgm k proc ~va ~pages:1 with
  | Ok () -> ()
  | Error _ -> failwith "plant: allocgm");
  Kernel.switch_to k proc;
  Machine.set_privilege k.Kernel.machine Machine.User;
  Machine.write_bytes_virt k.Kernel.machine va (Bytes.of_string secret);
  Machine.set_privilege k.Kernel.machine Machine.Kernel;
  let frame =
    match Pagetable.lookup proc.Proc.pt ~vpage:(Int64.shift_right_logical va 12) with
    | Some pte -> pte.Pagetable.frame
    | None -> failwith "plant: page vanished"
  in
  (proc, va, frame)

let mmu_remap_attack ~mode =
  let k = boot mode in
  let proc, _va, frame = plant k in
  (* Map the ghost frame at a kernel-accessible user address and read
     it with an ordinary (instrumented) kernel access. *)
  let attack_va = 0x0000_0000_00a0_0000L in
  match
    Sva.map_page k.Kernel.sva proc.Proc.pt ~va:attack_va ~frame
      ~perm:{ writable = false; user = false; executable = false }
  with
  | Error _ -> false (* the VM refused the mapping *)
  | Ok () ->
      Machine.flush_tlb k.Kernel.machine;
      let data = Kmem.read_bytes k.Kernel.kmem attack_va ~len:(String.length secret) in
      Bytes.to_string data = secret

let dma_attack ~mode =
  let k = boot mode in
  let _proc, _va, frame = plant k in
  (* First, try to strip IOMMU protection through its control port (a
     native kernel can; the VM refuses the port write). *)
  (match Sva.io_write k.Kernel.sva ~port:Sva.iommu_config_port 0L with
  | Ok () | Error _ -> ());
  (* Then DMA the frame to "the device". *)
  let phys = Int64.shift_left (Int64.of_int frame) 12 in
  match
    Iommu.dma_read (Machine.iommu k.Kernel.machine) (Machine.mem k.Kernel.machine)
      ~addr:phys ~len:(String.length secret)
  with
  | exception Iommu.Dma_blocked _ -> false
  | data -> Bytes.to_string data = secret

let icontext_tamper_attack ~mode =
  let k = boot mode in
  let init = Kernel.init_process k in
  let proc =
    match Kernel.create_process k ~parent:init with
    | Ok p -> p
    | Error _ -> failwith "create_process"
  in
  let evil_pc = 0x0000_0000_0066_6000L in
  (* Interrupt the victim, then scribble over the saved pc wherever the
     kernel can reach it. *)
  Sva.enter_trap k.Kernel.sva ~tid:proc.Proc.tid;
  (match Sva.native_ic_address k.Kernel.sva ~tid:proc.Proc.tid with
  | Some ic_va ->
      (* Baseline: the context sits on the kernel stack in plain view. *)
      Kmem.store k.Kernel.kmem ic_va ~len:8 evil_pc
  | None ->
      (* Virtual Ghost: guess the SVA-internal mirror location and write
         through an instrumented kernel store. *)
      let guess = Int64.add Layout.sva_start 0x4000L in
      Kmem.store k.Kernel.kmem guess ~len:8 evil_pc);
  Sva.return_from_trap k.Kernel.sva ~tid:proc.Proc.tid;
  (Sva.thread_icontext k.Kernel.sva ~tid:proc.Proc.tid).Icontext.pc = evil_pc

(* A hostile mmap handler that returns a pointer into the
   application's own ghost heap (where the runtime's first heap
   object — the secret — lives). *)
let evil_mmap_program () =
  let b = Builder.create () in
  Builder.func b "sys_mmap" ~params:[ "len" ];
  Builder.ret b (Some (Ir.Imm (Int64.add Layout.ghost_start 0x1000_0000L)));
  Builder.program b

let iago_mmap_attack ?engine ~mode ~ghosting:masked () =
  let k = boot ?engine mode in
  Syscalls.register_builtin_externs k;
  (match Module_loader.load k ~name:"iago" (evil_mmap_program ()) with
  | Ok () -> ()
  | Error e -> failwith (Module_loader.describe_load_error e));
  let corrupted = ref false in
  Runtime.launch k ~ghosting:true (fun ctx ->
      (* The application keeps a secret at the bottom of its ghost
         heap... *)
      let secret_va = Runtime.galloc ctx 32 in
      Runtime.poke ctx secret_va (Bytes.of_string secret);
      (* ...asks for scratch memory, and writes into what it got.
         [masked] selects whether the binary carries the Iago-defence
         pass: the wrapper masks the pointer; the raw syscall does not.
         A masked pointer may point at unmapped memory — the write then
         faults harmlessly instead of corrupting the secret. *)
      let scratch =
        if masked then Runtime.sys_mmap ctx ~len:4096
        else Syscalls.mmap ctx.Runtime.kernel ctx.Runtime.proc ~len:4096
      in
      (try
         match scratch with
         | Ok va -> Runtime.poke ctx va (Bytes.make 32 'X')
         | Error _ -> ()
       with Runtime.App_crash _ -> ());
      corrupted := Bytes.to_string (Runtime.peek ctx secret_va 24) <> secret);
  Module_loader.unload k ~name:"iago";
  !corrupted

(* A hostile (or merely compromised) ring consumer submits a [write]
   whose buffer register aims at the application's ghost secret — the
   batched equivalent of handing the kernel a ghost pointer in a
   direct syscall.  Under Virtual Ghost the kernel's instrumented
   copyin masks the access: the exfil file fills with zeros, not the
   secret, and the sandbox announces itself on the event stream. *)
let ring_ghost_buffer_attack ~mode =
  let k = boot mode in
  let leaked = ref false in
  Runtime.launch k ~ghosting:true (fun ctx ->
      let secret_va = Runtime.galloc ctx 32 in
      Runtime.poke ctx secret_va (Bytes.of_string secret);
      match Runtime.sys_open ctx "/exfil" Syscalls.creat_trunc with
      | Error _ -> ()
      | Ok fd ->
          let ring = Uring.create ctx ~depth:4 in
          ignore
            (Uring.submit ring ~sysno:Syscall_abi.sys_write
               ~args:
                 [|
                   Int64.of_int fd; secret_va; Int64.of_int (String.length secret);
                 |]
               ~user_data:1L);
          (match Uring.enter ring ~to_submit:1 with Ok _ | Error _ -> ());
          ignore (Uring.reap ring);
          ignore (Runtime.sys_close ctx fd);
          leaked :=
            (match Diskfs.lookup k.Kernel.fs "/exfil" with
            | Error _ -> false
            | Ok ino -> (
                match
                  Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:(String.length secret)
                with
                | Ok b -> Bytes.to_string b = secret
                | Error _ -> false)));
  !leaked

let read_raw_file k path =
  match Diskfs.lookup k.Kernel.fs path with
  | Error _ -> None
  | Ok ino -> (
      match Diskfs.stat k.Kernel.fs ~ino with
      | Error _ -> None
      | Ok st -> (
          match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size with
          | Ok b -> Some b
          | Error _ -> None))

let write_raw_file k path data =
  match Diskfs.lookup k.Kernel.fs path with
  | Error _ -> ()
  | Ok ino ->
      ignore (Diskfs.truncate k.Kernel.fs ~ino ~len:0);
      ignore (Diskfs.write k.Kernel.fs ~ino ~off:0 data)

let file_replay_attack ~mode =
  let k = Vg_fleet.Node.kernel (Vg_fleet.Node.boot (boot_config ~seed:"replay" mode)) in
  match mode with
  | Sva.Native_build ->
      (* Baseline: plain files, nothing versioned.  The OS keeps v1,
         lets the app write v2, then silently restores v1 — the app has
         no way to notice. *)
      let accepted_stale = ref false in
      Runtime.launch k ~ghosting:false (fun ctx ->
          let write_config s =
            match Runtime.sys_open ctx "/config" Syscalls.creat_trunc with
            | Error _ -> ()
            | Ok fd ->
                ignore (Runtime.write_string ctx ~fd s);
                ignore (Runtime.sys_close ctx fd)
          in
          write_config "allow-login=no";
          let v1 = read_raw_file k "/config" in
          write_config "allow-login=yes-strictly-mfa";
          (match v1 with Some b -> write_raw_file k "/config" b | None -> ());
          match Runtime.sys_open ctx "/config" Syscalls.rdonly with
          | Error _ -> ()
          | Ok fd -> (
              let buf = Runtime.ualloc ctx 128 in
              match Syscalls.read ctx.Runtime.kernel ctx.Runtime.proc ~fd ~buf ~len:128 with
              | Ok n ->
                  accepted_stale :=
                    Bytes.to_string (Runtime.peek ctx buf n) = "allow-login=no"
              | Error _ -> ()));
      !accepted_stale
  | Sva.Virtual_ghost ->
      (* Virtual Ghost: the replay-protected sealed store. *)
      let accepted_stale = ref false in
      let _, _, image = Ssh_suite.install_images k ~app_key:(Bytes.make 16 'r') in
      Runtime.launch k ~image ~ghosting:true (fun ctx ->
          (match Sealed_store.save ctx ~path:"/config" (Bytes.of_string "v1") with
          | Ok () -> ()
          | Error _ -> failwith "save v1");
          let v1 = read_raw_file k "/config" in
          (match Sealed_store.save ctx ~path:"/config" (Bytes.of_string "v2") with
          | Ok () -> ()
          | Error _ -> failwith "save v2");
          (match v1 with Some b -> write_raw_file k "/config" b | None -> ());
          match Sealed_store.load ctx ~path:"/config" with
          | Ok data -> accepted_stale := Bytes.to_string data = "v1"
          | Error _ -> accepted_stale := false);
      !accepted_stale

let swap_tamper_attack ~mode =
  let k = boot mode in
  let proc, va, frame = plant k in
  match mode with
  | Sva.Native_build ->
      (* No sealed swapping exists on the baseline: the kernel "swaps"
         by reading the frame directly — trivially successful. *)
      let phys = Int64.shift_left (Int64.of_int frame) 12 in
      let page = Phys_mem.read_bytes (Machine.mem k.Kernel.machine) ~addr:phys ~len:24 in
      Bytes.to_string page = secret
  | Sva.Virtual_ghost -> (
      match Sva.swap_out_ghost k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va with
      | Error _ -> false
      | Ok (frame, blob) ->
          (* The blob is ciphertext; flip a byte and try to swap it
             back in. *)
          Bytes.set blob 64 (Char.chr (Char.code (Bytes.get blob 64) lxor 1));
          (match
             Sva.swap_in_ghost k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va
               ~frame ~blob
           with
          | Ok () -> true (* tampering went undetected: attack success *)
          | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Hostile-eviction vectors: the kernel owns ghost-swap policy and
   blob storage ([Ghost_swap]), which is exactly the attack surface —
   it can replay, substitute and thrash at will.  Only the VM's
   sealing (integrity + freshness) stands between that and the
   application's ghost data.  These arms drive the real kernel swap
   paths, not the SVA primitives directly. *)

let swap_blob_path (proc : Proc.t) va =
  Printf.sprintf "/swap/p%d-%Lx" proc.Proc.pid (Int64.shift_right_logical va 12)

let read_ghost k (proc : Proc.t) va len =
  Kernel.switch_to k proc;
  Machine.set_privilege k.Kernel.machine Machine.User;
  let b = Machine.read_bytes_virt k.Kernel.machine va ~len in
  Machine.set_privilege k.Kernel.machine Machine.Kernel;
  b

let write_ghost k (proc : Proc.t) va data =
  Kernel.switch_to k proc;
  Machine.set_privilege k.Kernel.machine Machine.User;
  Machine.write_bytes_virt k.Kernel.machine va data;
  Machine.set_privilege k.Kernel.machine Machine.Kernel

let swap_replay_attack ~mode =
  let k = boot mode in
  let proc, va, _frame = plant k in
  let path = swap_blob_path proc va in
  let fail msg = failwith ("swap_replay_attack: " ^ msg) in
  (* Epoch 1: the page (holding the secret) goes out; the OS keeps a
     copy of the stored blob before faulting the page back in. *)
  (match Ghost_swap.swap_out_page k proc ~va with Ok () -> () | Error m -> fail m);
  let v1 =
    match read_raw_file k path with Some b -> b | None -> fail "no stored blob"
  in
  (match Ghost_swap.swap_in_page k proc va with
  | Ok () -> ()
  | Error _ -> fail "legitimate swap-in refused");
  (* The application rotates its secret; the new page goes out. *)
  write_ghost k proc va (Bytes.of_string "rotated-ghost-secret-v2!");
  (match Ghost_swap.swap_out_page k proc ~va with Ok () -> () | Error m -> fail m);
  (* Replay: the OS substitutes the stale — but authentically sealed —
     epoch-1 blob and lets the fault bring it in. *)
  write_raw_file k path v1;
  match Ghost_swap.swap_in_page k proc va with
  | Error _ -> false (* the VM spotted the stale version *)
  | Ok () -> Bytes.to_string (read_ghost k proc va (String.length secret)) = secret

let swap_substitution_attack ~mode =
  let k = boot mode in
  let victim, va, _frame = plant k in
  let fail msg = failwith ("swap_substitution_attack: " ^ msg) in
  (* A colluding process with its own ghost page at the same address —
     ghost partitions are per-process, so the shape is identical. *)
  let mule =
    match Kernel.create_process k ~parent:(Kernel.init_process k) with
    | Ok p -> p
    | Error _ -> fail "create_process"
  in
  (match Syscalls.allocgm k mule ~va ~pages:1 with
  | Ok () -> ()
  | Error _ -> fail "allocgm");
  write_ghost k mule va (Bytes.make (String.length secret) '.');
  (* Both pages go out; the OS then serves the victim's blob in place
     of the mule's and faults the mule's page back in. *)
  (match Ghost_swap.swap_out_page k victim ~va with Ok () -> () | Error m -> fail m);
  (match Ghost_swap.swap_out_page k mule ~va with Ok () -> () | Error m -> fail m);
  (match read_raw_file k (swap_blob_path victim va) with
  | Some blob -> write_raw_file k (swap_blob_path mule va) blob
  | None -> fail "no stored blob");
  match Ghost_swap.swap_in_page k mule va with
  | Error _ -> false (* the VM spotted the foreign header *)
  | Ok () -> Bytes.to_string (read_ghost k mule va (String.length secret)) = secret

let swap_thrash_attack ~mode =
  let k = boot mode in
  let proc, va, _frame = plant k in
  let fail msg = failwith ("swap_thrash_attack: " ^ msg) in
  (* Thrash-bomb: victimise the same hot page over and over (the
     threat model permits this denial of service — the OS owns
     policy), collecting every blob that crosses the boundary and
     using the collection as an oracle. *)
  let rounds = 8 in
  let blobs = ref [] in
  for _ = 1 to rounds do
    (match Ghost_swap.swap_out_page k proc ~va with Ok () -> () | Error m -> fail m);
    (match read_raw_file k (swap_blob_path proc va) with
    | Some b -> blobs := Bytes.to_string b :: !blobs
    | None -> fail "no stored blob");
    match Ghost_swap.swap_in_page k proc va with
    | Ok () -> ()
    | Error _ -> fail "legitimate swap-in refused"
  done;
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let leaked_plaintext = List.exists (fun b -> contains_sub b secret) !blobs in
  (* A deterministic seal would leak too: identical blobs tell the OS
     the page did not change between evictions (an equality oracle).
     Virtual Ghost versions every seal, so all blobs must differ. *)
  let module SS = Set.Make (String) in
  let equality_oracle = SS.cardinal (SS.of_list !blobs) < rounds in
  leaked_plaintext || equality_oracle

(* ------------------------------------------------------------------ *)
(* Syscall-flow integrity (SFIP) vectors: a hijacked process tries to
   drive the kernel through a syscall sequence its profile never
   contains.  On the baseline there is no signed profile (signatures
   do not exist), so the sequence executes; under Virtual Ghost the
   dispatcher refuses the first out-of-policy transition, kills the
   process and answers [ESFIP]. *)

(* The victim's honest workload: write a config file once, then read
   it back in a loop — open/read/close and nothing network-shaped. *)
let sfip_victim_workload ctx =
  (match Runtime.sys_open ctx "/sfip-config" Syscalls.creat_trunc with
  | Error _ -> ()
  | Ok fd ->
      ignore (Runtime.write_string ctx ~fd secret);
      ignore (Runtime.sys_close ctx fd));
  for _ = 1 to 3 do
    match Runtime.sys_open ctx "/sfip-config" Syscalls.rdonly with
    | Error _ -> ()
    | Ok fd ->
        let buf = Runtime.ualloc ctx 64 in
        ignore (Syscalls.read ctx.Runtime.kernel ctx.Runtime.proc ~fd ~buf ~len:64);
        ignore (Runtime.sys_close ctx fd)
  done

(* Profile extraction for a closure app: run the honest workload once
   under a [Record] policy (the administrator's profiling run). *)
let sfip_record k workload =
  let recorder = Syscall_policy.record () in
  Runtime.launch k ~sfip:recorder ~ghosting:false workload;
  recorder

(* The hijacked continuation: ship the config out over the network —
   [connect] then [send], neither reachable from the victim's graph. *)
let sfip_exfil ctx =
  let k = ctx.Runtime.kernel and proc = ctx.Runtime.proc in
  match Syscalls.connect k proc ~port:4444 with
  | Error _ -> false
  | Ok fd -> (
      let buf = Runtime.ualloc ctx 64 in
      Runtime.poke ctx buf (Bytes.of_string secret);
      match Syscalls.send k proc ~fd ~buf ~len:(String.length secret) with
      | Ok n -> n > 0
      | Error _ -> false)

let sfip_sequence_attack ~mode =
  let k = boot mode in
  let sfip =
    match mode with
    | Sva.Native_build -> None (* no profile deployed: nothing to sign it with *)
    | Sva.Virtual_ghost ->
        Some (Syscall_policy.enforce
                (Syscall_policy.graph (sfip_record k sfip_victim_workload)))
  in
  let exfiltrated = ref false in
  Runtime.launch k ?sfip ~ghosting:false (fun ctx ->
      sfip_victim_workload ctx;
      exfiltrated := sfip_exfil ctx);
  !exfiltrated

(* Ring variant: the out-of-policy call hides in the middle of an
   otherwise-benign batch.  The whole batch is vetted before any entry
   runs, so under enforcement even the benign prefix never executes. *)
let sfip_ring_sequence_attack ~mode =
  let k = boot mode in
  let benign_batches ring =
    for _ = 1 to 2 do
      for _ = 1 to 2 do
        ignore
          (Uring.submit ring ~sysno:Syscall_abi.sys_getpid ~args:[||]
             ~user_data:0L)
      done;
      (match Uring.enter ring ~to_submit:2 with Ok _ | Error _ -> ());
      ignore (Uring.reap ring)
    done
  in
  let sfip =
    match mode with
    | Sva.Native_build -> None
    | Sva.Virtual_ghost ->
        Some (Syscall_policy.enforce
                (Syscall_policy.graph
                   (sfip_record k (fun ctx ->
                        benign_batches (Uring.create ctx ~depth:8)))))
  in
  let exfil_cookie = 7L in
  let connected = ref false in
  Runtime.launch k ?sfip ~ghosting:false (fun ctx ->
      let ring = Uring.create ctx ~depth:8 in
      benign_batches ring;
      (* Hijacked: same shape of batch, but the middle entry now opens
         a connection to the attacker. *)
      ignore (Uring.submit ring ~sysno:Syscall_abi.sys_getpid ~args:[||] ~user_data:0L);
      ignore
        (Uring.submit ring ~sysno:Syscall_abi.sys_connect ~args:[| 4444L |]
           ~user_data:exfil_cookie);
      ignore (Uring.submit ring ~sysno:Syscall_abi.sys_getpid ~args:[||] ~user_data:0L);
      (match Uring.enter ring ~to_submit:3 with Ok _ | Error _ -> ());
      List.iter
        (fun (c : Syscall_ring.cqe) ->
          if
            c.Syscall_ring.user_data = exfil_cookie
            && Result.is_ok (Syscall_abi.decode_int c.Syscall_ring.result)
          then connected := true)
        (Uring.reap ring));
  !connected

(* The OS cannot forge a profile either: profiles ride inside the
   signed image region, so swapping in a permissive one (here recorded
   from the attack itself) breaks the signature and [execve] refuses
   the image.  The baseline performs no signature check — the
   permissive profile loads and the exfiltration runs in-"policy". *)
let sfip_profile_swap_attack ~mode =
  let k = boot mode in
  let strict = sfip_record k sfip_victim_workload in
  let vg_key = Sva.vg_private_key_for_installer k.Kernel.sva in
  let rng = Vg_crypto.Drbg.create ~seed:(Bytes.of_string "sfip-swap") in
  let image =
    Appimage.install ~vg_key ~rng ~name:"sfip-victim"
      ~payload:(Bytes.of_string "text segment of sfip-victim")
      ~entry:0x400000L
      ~profile:(Syscall_policy.to_profile strict)
      ~app_key:(Bytes.make 16 'k') ()
  in
  let permissive =
    sfip_record k (fun ctx ->
        sfip_victim_workload ctx;
        ignore (sfip_exfil ctx))
  in
  let tampered =
    { image with Appimage.profile = Syscall_policy.to_profile permissive }
  in
  let exfiltrated = ref false in
  (try
     Runtime.launch k ~image:tampered ~ghosting:false (fun ctx ->
         sfip_victim_workload ctx;
         exfiltrated := sfip_exfil ctx)
   with Runtime.App_crash _ -> () (* vg: execve refused the broken signature *));
  !exfiltrated

let smp_remap_race_attack ~mode =
  let node = Vg_fleet.Node.boot (boot_config ~cpus:2 ~seed:"smp-race" mode) in
  let machine = Vg_fleet.Node.machine node in
  let k = Vg_fleet.Node.kernel node in
  (* Core 0: the victim is live, mid-access to its ghost page. *)
  let proc, _va, frame = plant k in
  (* Core 1: a malicious kernel module races a remap of the frame
     backing the victim's ghost page into the shared kernel address
     space, then reads it with an ordinary instrumented access.  On
     real hardware the stale user translation could linger in core 0's
     TLB; Virtual Ghost both refuses the mapping outright and, on any
     successful remap, broadcasts a cross-core shootdown — the native
     build does neither. *)
  Machine.switch_core machine 1;
  let attack_va = Int64.add Layout.kernel_data_start 0x9000L in
  let stolen =
    match
      Sva.map_kernel_page k.Kernel.sva ~va:attack_va ~frame
        ~perm:{ writable = false; user = false; executable = false }
    with
    | Error _ -> false (* the VM refused the cross-core remap *)
    | Ok () ->
        Machine.flush_tlb machine;
        let data = Kmem.read_bytes k.Kernel.kmem attack_va ~len:(String.length secret) in
        Bytes.to_string data = secret
  in
  Machine.switch_core machine 0;
  ignore proc;
  stolen
