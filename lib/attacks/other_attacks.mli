(** The remaining attack vectors of the paper's section 2.2, each as a
    self-contained experiment returning whether the attack succeeded
    (stole or corrupted ghost data).  Run against both build modes,
    they demonstrate the paper's claim table: every vector succeeds on
    the baseline and fails under Virtual Ghost. *)

val mmu_remap_attack : mode:Sva.mode -> bool
(** The kernel asks the MMU layer to map the victim's ghost frame at a
    kernel-readable address and reads it (section 2.2.1, MMU vector). *)

val dma_attack : mode:Sva.mode -> bool
(** The kernel programs a device to DMA the ghost frame out to the
    disk, then reads the disk (section 2.2.1, DMA vector).  Includes
    the attempt to reconfigure the IOMMU through its I/O port first. *)

val icontext_tamper_attack : mode:Sva.mode -> bool
(** The kernel rewrites the program counter in the victim's saved
    Interrupt Context so the victim resumes in attacker-chosen code
    (section 2.2.4). *)

val evil_mmap_program : unit -> Ir.program
(** The hostile [sys_mmap] module used by {!iago_mmap_attack}: returns
    a pointer into the caller's own ghost heap.  Exposed so the
    [vgsim verify] catalogue can verify the attack modules too. *)

val iago_mmap_attack :
  ?engine:Vg_compiler.Exec_engine.t ->
  mode:Sva.mode ->
  ghosting:bool ->
  unit ->
  bool
(** A hostile [mmap] returns a pointer into the application's own ghost
    heap; a non-ghosting (unmasked) application writing through it
    corrupts its own secret (section 2.2.5).  [ghosting] selects
    whether the application was compiled with the masking pass. *)

val ring_ghost_buffer_attack : mode:Sva.mode -> bool
(** A syscall-ring submission carries a [write] whose buffer register
    points at the application's ghost secret (the batched variant of
    the direct-read vector).  Success means the secret reached the
    exfiltration file; under Virtual Ghost the instrumented copyin
    masks the access and the file holds zeros. *)

val file_replay_attack : mode:Sva.mode -> bool
(** The OS keeps an old version of an application's encrypted
    configuration file and substitutes it later (paper section 10's
    replay concern).  Success means the application accepted the stale
    data.  The Virtual Ghost run uses the replay-protected
    {!Vg_userland.Sealed_store}; the baseline has nothing to detect
    the swap with. *)

val swap_tamper_attack : mode:Sva.mode -> bool
(** The OS modifies a swapped-out ghost page before handing it back
    (section 2.2.2); success means the modification went undetected.
    Under the baseline there is no sealed swapping at all, so the OS
    trivially reads and modifies the page — reported as success. *)

val swap_replay_attack : mode:Sva.mode -> bool
(** The OS keeps a stale — but authentically sealed — copy of a
    swapped-out ghost page and serves it after the application has
    rotated the page's contents (paper section 3.3 / section 10's
    replay concern, applied to swap).  Drives the real kernel swap
    paths ({!Vg_kernel.Ghost_swap}).  Success means the application
    silently got its old secret back; Virtual Ghost versions every
    seal and refuses the stale blob with one [Security{swap}] event. *)

val swap_substitution_attack : mode:Sva.mode -> bool
(** The OS swaps out ghost pages of two processes and serves the
    victim's blob when the colluding process faults its own page back
    in.  Success means the colluder read the victim's secret; Virtual
    Ghost binds pid and address into the sealed header and refuses the
    foreign blob with one [Security{swap}] event. *)

val swap_thrash_attack : mode:Sva.mode -> bool
(** Hostile eviction policy: thrash-bomb one hot ghost page (evict,
    fault, evict, ...) and use the stream of stored blobs as an
    oracle.  Success means a blob carried the plaintext secret or two
    evictions of the unchanged page produced identical blobs (an
    equality oracle).  The thrashing itself is a denial of service the
    threat model permits — but under Virtual Ghost the data never
    leaks, never corrupts, and every seal is fresh. *)

val sfip_sequence_attack : mode:Sva.mode -> bool
(** A hijacked process whose honest workload is open/read/close tries
    to [connect]/[send] its config file to an attacker — a transition
    its syscall-flow profile never contains.  Under Virtual Ghost the
    profile (recorded from the honest run) is enforced at dispatch:
    the process is killed at the first out-of-policy call with one
    [Security{sfip}] event and [ESFIP].  The baseline has no signed
    profiles, so the sequence executes and the secret leaves. *)

val sfip_ring_sequence_attack : mode:Sva.mode -> bool
(** The same vector through the batched syscall ring: the [connect]
    hides between two in-policy entries of one batch.  The kernel vets
    the whole batch — intra-batch transitions included — before
    running any entry, so under enforcement the batch yields zero
    completions; success means the connect's completion came back. *)

val sfip_profile_swap_attack : mode:Sva.mode -> bool
(** The OS swaps the strict profile inside a signed app image for a
    permissive one (recorded from the attack sequence itself).
    Profiles live in the image's signed region, so under Virtual Ghost
    [execve] refuses the tampered image outright; the baseline checks
    no signatures, loads the permissive profile and the exfiltration
    runs "in policy". *)

val smp_remap_race_attack : mode:Sva.mode -> bool
(** Two-CPU variant of the MMU vector: while the victim is live on
    core 0 with its ghost page mapped, a malicious module on core 1
    races a remap of the backing frame into the kernel address space
    and reads it.  Virtual Ghost refuses the mapping (emitting a
    [Security] event) and would broadcast a TLB shootdown on any
    successful remap; the baseline kernel happily installs the alias
    and steals the secret. *)
