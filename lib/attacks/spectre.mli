(** Spectre-v1 transient leak of ghost memory past the static sandbox.

    The sandboxing pass is architecturally sound: every kernel access
    to a ghost address is escaped before it issues.  But the escape is
    computed with conditional selects, and on a machine with a
    speculative window ([Machine.create ~spec_depth]) the mispredicted
    select transiently forwards the {e raw} ghost address to the load
    behind it.  The squashed load leaves its cache line warm; a
    flush+reload prober (timing a one-load [sys_lseek] override against
    {!Machine.cycles}) reads the secret byte back out of which of 256
    probe lines got hot.

    The leak needs a transient budget of at least 8 macro-ops (see the
    implementation for the exact stream); at [spec_depth = 0] the
    machine has no cache side channel and the attack recovers nothing.
    Booting the kernel with [~spec_mitigation:Fence] (an lfence between
    every mask and its access) or [~spec_mitigation:Safe_mask] (the
    branchless masking sequence — no select to mispredict) closes the
    channel at any depth. *)

val secret_string : string
(** What the victim ssh-agent parks in ghost memory (printable ASCII,
    no NUL — the prober cannot distinguish byte 0 from the absorbed
    architectural access). *)

val probe_lines : int
val line_size : int

val module_program : probe_base:int64 -> Ir.program
(** The hostile module: a [sys_read] leak gadget and a [sys_lseek]
    reload prober over a 256-line probe array at [probe_base]
    (64-byte aligned user memory). *)

type outcome = {
  spec_depth : int;
  mitigation : Vg_compiler.Mitigation.t;
  secret : string;
  leaked : string;  (** recovered bytes; ['?'] where no unique hot line *)
  bytes_recovered : int;
  success : bool;  (** the full secret was recovered *)
  windows : int;  (** transient windows opened (machine-wide) *)
  transient_loads : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run_experiment :
  ?cpus:int ->
  ?engine:Vg_compiler.Exec_engine.t ->
  ?spec_depth:int ->
  ?mitigation:Vg_compiler.Mitigation.t ->
  unit ->
  outcome
(** Boot a Virtual Ghost kernel on a machine with the given transient
    budget (default 12) and mitigation (default [Off]), load the
    hostile module through the instrumenting compiler and signed
    translation cache, and run the byte-at-a-time oracle over the whole
    secret.  Deterministic: same configuration, same outcome. *)
