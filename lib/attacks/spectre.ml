(* Spectre-v1 against the static sandbox: the mask sequence decides
   with a conditional select whether an address stays inside the ghost
   partition, and on a speculative machine the select predicts — for a
   window of [Machine.spec_depth] macro-ops the kernel transiently runs
   with the *unmasked* ghost address.  The transient load's value is
   architecturally squashed, but the cache line it pulls in is not:
   encoding the loaded byte in which of 256 probe lines is warm turns
   the window into a byte-at-a-time oracle over ghost memory, past an
   instrumentation pass that is perfectly sound architecturally.

   The attack needs depth >= 8 macro-ops: after the mispredicted first
   select of the gadget's mask window the transient stream is the three
   SVA-range checks (3), the second select yielding the raw ghost
   address (1), the secret load (1), the shift and add forming the
   probe address (2), and the probe access — whose own mask window the
   speculative frontend has already fused into one macro-op with its
   load (1).  At any smaller budget the probe line is never touched and
   the attack recovers nothing; at depth 0 the machine has no cache
   side channel at all. *)

let secret_string = "gh0st-SPECTRE-key!47"

let probe_lines = 256
let line_size = 64 (* Machine cache-line granularity: line = va lsr 6 *)

(* ------------------------------------------------------------------ *)
(* Module IR: gadget and prober, loaded as one hostile module          *)

(* sys_read override — the leak gadget.  [buf] arrives attacker-chosen
   as a ghost virtual address.  Architecturally the sandbox escapes it
   and the load absorbs to 0 (so the architectural probe access always
   touches line 0, which the prober ignores); transiently the secret
   byte selects one of the 256 probe lines. *)
let gadget_program b ~probe_base =
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  let byte = Builder.load b ~width:Ir.W8 (Ir.Reg "buf") in
  let line = Builder.bin b Shl byte (Imm 6L) in
  let slot = Builder.bin b Add line (Imm probe_base) in
  let _ = Builder.load b slot in
  Builder.ret b (Some (Ir.Imm 0L))

(* sys_lseek override — the reload half of flush+reload.  One
   architectural load of the attacker-passed address; the caller times
   the syscall and reads the hit/miss difference off the cycle counter.
   Its own mask window speculates too, but on a non-ghost probe address
   the mispredicted select yields the *escaped* (unmapped) variant, so
   the prober's transient stream squashes without polluting the very
   cache state it measures. *)
let prober_program b =
  Builder.func b "sys_lseek" ~params:[ "fd"; "pos" ];
  let _ = Builder.load b (Ir.Reg "pos") in
  Builder.ret b (Some (Ir.Imm 0L))

let module_program ~probe_base =
  let b = Builder.create () in
  gadget_program b ~probe_base;
  prober_program b;
  Builder.program b

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)

type outcome = {
  spec_depth : int;
  mitigation : Vg_compiler.Mitigation.t;
  secret : string;
  leaked : string;  (** recovered bytes; ['?'] where no unique hot line *)
  bytes_recovered : int;
  success : bool;  (** the full secret was recovered *)
  windows : int;  (** transient windows opened (machine-wide) *)
  transient_loads : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "spectre-v1 at depth %d, mitigation %s: recovered %d/%d bytes (%S) \
     windows=%d transient-loads=%d"
    o.spec_depth
    (Vg_compiler.Mitigation.to_string o.mitigation)
    o.bytes_recovered (String.length o.secret) o.leaked o.windows
    o.transient_loads

let align64 va = Int64.logand (Int64.add va 63L) (Int64.lognot 63L)

let run_experiment ?(cpus = 1) ?engine ?(spec_depth = 12)
    ?(mitigation = Vg_compiler.Mitigation.Off) () =
  let config =
    Vg_fleet.Node_config.(
      default |> with_cpus cpus |> with_phys_frames 16384
      |> with_disk_sectors 16384 |> with_spec_depth spec_depth
      |> with_seed "spectre" |> with_mode Sva.Virtual_ghost
      |> with_spec_mitigation mitigation)
  in
  let config =
    match engine with
    | None -> config
    | Some e -> Vg_fleet.Node_config.with_engine e config
  in
  let node = Vg_fleet.Node.boot config in
  let machine = Vg_fleet.Node.machine node in
  let k = Vg_fleet.Node.kernel node in
  let _, _, agent = Ssh_suite.install_images k ~app_key:(Bytes.make 16 'k') in
  let recovered = Buffer.create 32 in
  Runtime.launch k ~image:agent ~ghosting:true (fun victim ->
      (* The victim: ssh-agent parks its key in ghost memory, exactly
         the data the architectural sandbox provably protects. *)
      let secret_va = Ssh_suite.agent_store_secret victim secret_string in
      let proc = victim.Runtime.proc in
      (* The attacker's probe array: 256 cache lines of plain user
         memory, mapped up front so reload timings differ only by
         cache state. *)
      let raw = Runtime.ualloc victim ((probe_lines + 1) * line_size) in
      let probe_base = align64 raw in
      (match
         Kernel.ensure_user_range k proc probe_base
           ~len:(probe_lines * line_size)
       with
      | Ok () -> ()
      | Error e -> failwith ("spectre: probe array: " ^ Errno.to_string e));
      (* The hostile module goes through the instrumenting compiler and
         the signed translation cache like any other — the whole point
         is that the attack survives honest instrumentation. *)
      (match Module_loader.load k ~name:"spectre" (module_program ~probe_base)
       with
      | Ok () -> ()
      | Error e ->
          failwith ("spectre: module load: " ^ Module_loader.describe_load_error e));
      let time_probe l =
        let addr = Int64.add probe_base (Int64.of_int (l * line_size)) in
        let t0 = Machine.cycles machine in
        ignore (Syscalls.lseek k proc ~fd:0 ~pos:(Int64.to_int addr));
        Machine.cycles machine - t0
      in
      let leak_byte j =
        Machine.spec_flush machine;
        (* Fire the gadget: sys_read with the ghost address as "buf". *)
        ignore
          (Syscalls.read k proc ~fd:0
             ~buf:(Int64.add secret_va (Int64.of_int j))
             ~len:1);
        let deltas = Array.init probe_lines time_probe in
        (* Line 0 is disqualified twice over: the absorbed-to-zero
           architectural probe access warms it on every run, and being
           measured first it also soaks up the post-flush cold misses
           on the kernel's own dispatch lines.  Secret bytes are
           printable ASCII, never 0. *)
        let m = ref max_int in
        for l = 1 to probe_lines - 1 do
          if deltas.(l) < !m then m := deltas.(l)
        done;
        let hot = ref [] in
        for l = probe_lines - 1 downto 1 do
          if deltas.(l) < !m + (Cost.cache_miss / 2) then hot := l :: !hot
        done;
        match !hot with [ l ] -> Some (Char.chr l) | _ -> None
      in
      String.iteri
        (fun j _ ->
          Buffer.add_char recovered
            (match leak_byte j with Some c -> c | None -> '?'))
        secret_string;
      Module_loader.unload k ~name:"spectre");
  let leaked = Buffer.contents recovered in
  let hits = ref 0 in
  String.iteri
    (fun i c -> if i < String.length leaked && leaked.[i] = c then incr hits)
    secret_string;
  let stats = Machine.spec_stats machine in
  {
    spec_depth;
    mitigation;
    secret = secret_string;
    leaked;
    bytes_recovered = !hits;
    success = leaked = secret_string;
    windows = stats.Machine.windows;
    transient_loads = stats.Machine.transient_loads;
  }
