type attack = Direct_read | Signal_inject

let secret_string = "s3cr3t-agent-key-0xdead!" (* 24 bytes, 8-aligned *)

let signum = 31

(* ------------------------------------------------------------------ *)
(* Module IR                                                           *)

let direct_read_program ~target_va ~target_len ~scratch_va =
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  let counter_cell = Ir.Imm (Int64.add scratch_va 512L) in
  Builder.store b ~src:(Imm 0L) ~addr:counter_cell ();
  Builder.br b "loop";
  Builder.block b "loop";
  let i = Builder.load b counter_cell in
  let finished = Builder.cmp b Uge i (Imm (Int64.of_int target_len)) in
  Builder.cbr b finished "after" "body";
  Builder.block b "body";
  (* The attack load: a plain kernel load of a victim heap address.
     Under Virtual Ghost the sandboxing pass will have rewritten its
     address computation. *)
  let src = Builder.bin b Add (Imm target_va) i in
  let stolen = Builder.load b src in
  let dst = Builder.bin b Add (Imm scratch_va) i in
  Builder.store b ~src:stolen ~addr:dst ();
  let next = Builder.bin b Add i (Imm 8L) in
  Builder.store b ~src:next ~addr:counter_cell ();
  Builder.br b "loop";
  Builder.block b "after";
  (* Print the harvest to the system log, then behave like read(2). *)
  Builder.call_void b "extern.klog" [ Imm scratch_va; Imm (Int64.of_int target_len) ];
  let r = Builder.call b "extern.genuine_read" [ Reg "fd"; Reg "buf"; Reg "len" ] in
  Builder.ret b (Some r);
  Builder.program b

let signal_inject_program ~victim_pid =
  let pid = Ir.Imm (Int64.of_int victim_pid) in
  let b = Builder.create () in
  Builder.func b "sys_read" ~params:[ "fd"; "buf"; "len" ];
  (* 1. Open the exfiltration file in the victim's descriptor table. *)
  let exfil_fd = Builder.call b "extern.open_exfil" [ pid ] in
  (* 2. Map a buffer into the victim's address space. *)
  let addr = Builder.call b "extern.kmmap" [ pid; Imm 4096L ] in
  (* 3. Stage the descriptor number where the exploit will find it. *)
  Builder.store b ~src:exfil_fd ~addr ();
  (* 4. "Copy the exploit code into the buffer". *)
  Builder.call_void b "extern.inject_code" [ addr ];
  (* 5. Point a signal handler at the injected code and fire it. *)
  Builder.call_void b "extern.signal_install"
    [ pid; Imm (Int64.of_int signum); addr ];
  Builder.call_void b "extern.kill" [ pid; Imm (Int64.of_int signum) ];
  let r = Builder.call b "extern.genuine_read" [ Reg "fd"; Reg "buf"; Reg "len" ] in
  Builder.ret b (Some r);
  Builder.program b

let module_program ~attack ~victim_pid ~target_va ~target_len ~scratch_va =
  match attack with
  | Direct_read -> direct_read_program ~target_va ~target_len ~scratch_va
  | Signal_inject ->
      ignore target_va;
      ignore target_len;
      ignore scratch_va;
      signal_inject_program ~victim_pid

(* ------------------------------------------------------------------ *)
(* Kernel-side setup                                                   *)

let scratch_va = Int64.add Layout.kernel_data_start 0x8000L

let prepare_kernel (k : Kernel.t) =
  Syscalls.register_builtin_externs k;
  (* Give the module a kernel data page to stage stolen bytes in. *)
  (match Frame_alloc.alloc k.Kernel.frames with
  | Some frame -> (
      match
        Sva.map_kernel_page k.Kernel.sva ~va:scratch_va ~frame
          ~perm:{ writable = true; user = false; executable = false }
      with
      | Ok () -> ()
      | Error _ -> failwith "rootkit setup: scratch mapping refused")
  | None -> failwith "rootkit setup: out of frames");
  scratch_va

let register_exploit_payload (k : Kernel.t) ~victim ~secret_va ~secret_len =
  Hashtbl.replace k.Kernel.module_externs "extern.inject_code"
    (fun k _caller args ->
      let addr = args.(0) in
      (* Installing code at [addr] in the victim's text map models the
         module's memcpy of exploit instructions into the buffer. *)
      Hashtbl.replace victim.Runtime.proc.Proc.code_map addr (fun _arg ->
          (* Exploit payload, executing *as the victim process*: its own
             ghost memory is readable to it. *)
          let fd =
            Int64.to_int (Bytes.get_int64_le (Runtime.peek victim addr 8) 0)
          in
          let secret = Runtime.peek victim secret_va secret_len in
          let staging = Int64.add addr 8L in
          Runtime.poke victim staging secret;
          ignore
            (Syscalls.write k victim.Runtime.proc ~fd ~buf:staging ~len:secret_len));
      0L)

(* ------------------------------------------------------------------ *)
(* The full experiment                                                 *)

type outcome = {
  attack : attack;
  mode : Sva.mode;
  secret_leaked_to_console : bool;
  secret_in_exfil_file : bool;
  vm_refusal_logged : bool;
  victim_survived : bool;
}

let pp_attack fmt = function
  | Direct_read -> Format.pp_print_string fmt "direct-read"
  | Signal_inject -> Format.pp_print_string fmt "signal-handler injection"

let pp_mode fmt = function
  | Sva.Native_build -> Format.pp_print_string fmt "native"
  | Sva.Virtual_ghost -> Format.pp_print_string fmt "virtual-ghost"

let pp_outcome fmt o =
  Format.fprintf fmt
    "%a on %a: console-leak=%b exfil-file=%b vm-refusal=%b victim-survived=%b"
    pp_attack o.attack pp_mode o.mode o.secret_leaked_to_console o.secret_in_exfil_file
    o.vm_refusal_logged o.victim_survived

let exfil_file_contents k =
  match Diskfs.lookup k.Kernel.fs "/exfil" with
  | Error _ -> None
  | Ok ino -> (
      match Diskfs.stat k.Kernel.fs ~ino with
      | Error _ -> None
      | Ok st when st.Diskfs.size = 0 -> None
      | Ok st -> (
          match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size with
          | Ok b -> Some (Bytes.to_string b)
          | Error _ -> None))

let contains_sub haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0

(* Replay the attack against an already-booted kernel (a fleet node):
   the same victim/module/trigger sequence as [run_experiment], minus
   the boot.  Returns the observable aftermath on that kernel. *)
let infect k ~attack =
  let mode = Kernel.mode k in
  let machine = k.Kernel.machine in
  let scratch = prepare_kernel k in
  let ghosting = mode = Sva.Virtual_ghost in
  let image =
    if ghosting then begin
      let _, _, agent = Ssh_suite.install_images k ~app_key:(Bytes.make 16 'k') in
      Some agent
    end
    else None
  in
  let console = Machine.console machine in
  let survived = ref true in
  Runtime.launch k ?image ~ghosting (fun victim ->
      let secret_va = Ssh_suite.agent_store_secret victim secret_string in
      register_exploit_payload k ~victim ~secret_va
        ~secret_len:(String.length secret_string);
      (match
         Module_loader.load k ~name:"rootkit"
           (module_program ~attack ~victim_pid:victim.Runtime.proc.Proc.pid
              ~target_va:secret_va ~target_len:(String.length secret_string)
              ~scratch_va:scratch)
       with
      | Ok () -> ()
      | Error e ->
          failwith ("module load: " ^ Module_loader.describe_load_error e));
      let kk = victim.Runtime.kernel and proc = victim.Runtime.proc in
      (match Syscalls.pipe kk proc with
      | Ok (r, w) ->
          let buf = Runtime.ualloc victim 64 in
          Runtime.poke victim buf (Bytes.of_string "request!");
          ignore (Syscalls.write kk proc ~fd:w ~buf ~len:8);
          ignore (Syscalls.read kk proc ~fd:r ~buf ~len:8)
      | Error _ -> failwith "pipe");
      (try Runtime.check_signals victim with Runtime.App_crash _ -> survived := false);
      Module_loader.unload k ~name:"rootkit");
  {
    attack;
    mode;
    secret_leaked_to_console = Console.contains console secret_string;
    secret_in_exfil_file =
      (match exfil_file_contents k with
      | Some contents -> contains_sub contents secret_string
      | None -> false);
    vm_refusal_logged = Console.contains console "not a registered handler";
    victim_survived = !survived;
  }

let run_experiment ?(cpus = 1) ?engine ~mode ~attack () =
  let config =
    Vg_fleet.Node_config.(
      default |> with_cpus cpus |> with_phys_frames 16384
      |> with_disk_sectors 16384 |> with_seed "sec-exp" |> with_mode mode)
  in
  let config =
    match engine with
    | None -> config
    | Some e -> Vg_fleet.Node_config.with_engine e config
  in
  infect (Vg_fleet.Node.kernel (Vg_fleet.Node.boot config)) ~attack
