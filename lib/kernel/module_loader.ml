let override_prefix = "sys_"

(* A symbol [sys_<name>] overrides the syscall <name> — resolved to
   its number in the {!Syscall_abi} table, the same numbering ring
   submissions use.  A name outside the table is reported and skipped
   rather than registered under a string nothing will ever look up. *)
let overrides_of_image (k : Kernel.t) (image : Vg_compiler.Linker.image) =
  List.filter_map
    (fun (s : Vg_compiler.Native.symbol) ->
      let n = s.Vg_compiler.Native.name in
      if String.length n > String.length override_prefix
         && String.sub n 0 (String.length override_prefix) = override_prefix
      then begin
        let call = String.sub n 4 (String.length n - 4) in
        match Syscall_abi.Sysno.of_name call with
        | Some sysno -> Some (sysno, n)
        | None ->
            Console.write
              (Machine.console k.Kernel.machine)
              (Printf.sprintf "kernel: module symbol %s names no syscall; ignored" n);
            None
      end
      else None)
    image.Vg_compiler.Linker.native.Vg_compiler.Native.symbols

type load_error =
  | Compile_rejected of string
  | Cache_refused of Vg_compiler.Trans_cache.find_error

let describe_load_error = function
  | Compile_rejected msg -> "compile rejected: " ^ msg
  | Cache_refused e -> Vg_compiler.Trans_cache.describe_find_error e

let errno_of_load_error (_ : load_error) = Errno.ENOEXEC

let reject (k : Kernel.t) ~name err =
  Machine.emit k.Kernel.machine
    (Obs.Event.Security
       {
         subsystem = "image-verify";
         detail =
           Printf.sprintf "module %s refused: %s" name (describe_load_error err);
       });
  Error err

let load (k : Kernel.t) ~name program =
  let mode =
    match Kernel.mode k with
    | Sva.Native_build -> Vg_compiler.Pipeline.Native_build
    | Sva.Virtual_ghost -> Vg_compiler.Pipeline.Virtual_ghost
  in
  let mitigation = k.Kernel.spec_mitigation in
  match Vg_compiler.Pipeline.compile_kernel_code ~mode ~mitigation program with
  | exception Vg_compiler.Pipeline.Rejected msg ->
      reject k ~name (Compile_rejected msg)
  | compiled -> (
      (* The VM caches and signs the translation; load back through the
         verifying path, as the OS would at module insertion.  Under
         Virtual Ghost the image is instrumented, so the cache re-proves
         the sandbox/CFI invariants before handing it back. *)
      let cache = Sva.translation_cache k.Kernel.sva in
      let instrumented = Kernel.mode k = Sva.Virtual_ghost in
      Vg_compiler.Trans_cache.add cache ~name ~instrumented ~mitigation
        compiled.Vg_compiler.Pipeline.linked;
      (* Under the compiled engine, ask the cache for the
         closure-compiled artifact: [find_compiled] is the only way to
         obtain one, and it runs the image verifier first, so an
         unverifiable image is refused on exactly the same path (and
         with the same error) as under the interpreting engines. *)
      let looked_up =
        match k.Kernel.engine with
        | Vg_compiler.Exec_engine.Compiled -> (
            match Vg_compiler.Trans_cache.find_compiled cache ~name with
            | Error e -> Error e
            | Ok artifact ->
                Ok (Vg_compiler.Exec_compile.image artifact, Some artifact))
        | Vg_compiler.Exec_engine.Interp | Vg_compiler.Exec_engine.Slots -> (
            match Vg_compiler.Trans_cache.find cache ~name with
            | Error e -> Error e
            | Ok image -> Ok (image, None))
      in
      match looked_up with
      | Error e -> reject k ~name (Cache_refused e)
      | Ok (image, artifact) ->
          let program = compiled.Vg_compiler.Pipeline.instrumented_ir in
          let overrides = overrides_of_image k image in
          List.iter
            (fun (sysno, func) ->
              Hashtbl.replace k.Kernel.overrides sysno
                { Kernel.image; func; program; compiled = artifact })
            overrides;
          Hashtbl.replace k.Kernel.modules name (List.map fst overrides);
          Machine.emit k.Kernel.machine
            (Obs.Event.Module_load { name; overrides = List.length overrides });
          Console.write
            (Machine.console k.Kernel.machine)
            (Printf.sprintf "kernel: loaded module %s (%d syscall overrides)" name
               (List.length overrides));
          Ok ())

let unload (k : Kernel.t) ~name =
  match Hashtbl.find_opt k.Kernel.modules name with
  | None -> ()
  | Some sysnos ->
      List.iter (Hashtbl.remove k.Kernel.overrides) sysnos;
      Hashtbl.remove k.Kernel.modules name

let loaded_modules (k : Kernel.t) =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) k.Kernel.modules [])

let loaded_overrides (k : Kernel.t) =
  Hashtbl.fold
    (fun sysno _ acc -> Syscall_abi.Sysno.to_name sysno :: acc)
    k.Kernel.overrides []
