(** The assembled kernel: a miniature FreeBSD-like monolithic kernel
    ported to the SVA-OS API.

    The kernel never touches hardware directly: page-table updates go
    through {!Sva.map_page} and friends, trap entry/exit through
    {!Sva.enter_trap}/{!Sva.return_from_trap}, and its memory accesses
    through {!Kmem} (which models compilation with or without the
    Virtual Ghost passes — the build mode is fixed at {!boot}).

    User code runs as OCaml closures (managed by the userland runtime)
    that invoke system calls through {!Syscalls}; calls that would
    block return [EAGAIN].  Direct process driving is cooperative; the
    {!Sched} fiber scheduler adds timer-tick preemption at syscall
    boundaries via the {!t.preempt} hook. *)

type t = {
  machine : Machine.t;
  sva : Sva.t;
  kmem : Kmem.t;
  frames : Frame_alloc.t;
  bc : Buffer_cache.t;
  fs : Diskfs.t;
  net : Netstack.t;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  current : int array;
      (** per-CPU: pid whose address space is installed on that core *)
  overrides : (Syscall_abi.Sysno.t, syscall_override) Hashtbl.t;
      (** loadable-module replacements, keyed by validated syscall
          number *)
  module_externs : (string, t -> Proc.t -> int64 array -> int64) Hashtbl.t;
      (** kernel helper API exposed to module native code *)
  frame_refs : (int, int) Hashtbl.t;
      (** copy-on-write frame sharing counts (absent = 1) *)
  modules : (string, Syscall_abi.Sysno.t list) Hashtbl.t;
      (** loaded module name -> syscalls it overrides *)
  proc_lock : Spinlock.t;  (** guards the process table / pid counter *)
  frame_lock : Spinlock.t;  (** guards the physical frame allocator *)
  swap : Swap_state.t;
      (** ghost-swap pressure engine state (driven by {!Ghost_swap}) *)
  mutable preempt : unit -> unit;
      (** called at the syscall-trap epilogue; the {!Sched} scheduler
          installs a hook that yields the running fiber when the
          core's timer has fired.  Default: nothing (cooperative). *)
  mutable block : unit -> bool;
      (** called by blocking syscalls when the wanted condition is not
          yet true: yield the caller and return [true] to retry after a
          wakeup, or return [false] to give up — the syscall then
          reports [EAGAIN].  Default: [fun () -> false], so directly
          driven processes keep the historical non-blocking contract;
          {!Sched.run} installs a fiber-yielding hook. *)
  child_wq : Waitq.t;  (** woken on every process exit (wait sleeps here) *)
  mutable syscall_count : int;
  engine : Vg_compiler.Exec_engine.t;
      (** which execution engine runs module override code — a host-time
          choice; simulated cycles are engine-independent wherever the
          engine can model them (see {!Vg_compiler.Exec_engine}) *)
  spec_mitigation : Vg_compiler.Mitigation.t;
      (** the Spectre hardening selected at boot: the kernel image and
          every loaded module are compiled under it, and the
          translation cache refuses instrumented blobs carrying any
          other mitigation *)
}

and syscall_override = {
  image : Vg_compiler.Linker.image;
  func : string;
  program : Ir.program;
      (** the instrumented IR the image was lowered from, for the
          [Interp] debug engine *)
  compiled : Vg_compiler.Exec_compile.t option;
      (** the closure-compiled artifact, present iff the kernel booted
          with the [Compiled] engine; only ever obtained through
          {!Vg_compiler.Trans_cache.find_compiled}, i.e. after the image
          verifier accepted the image *)
}

val boot :
  ?frame_limit:int ->
  ?engine:Vg_compiler.Exec_engine.t ->
  ?spec_mitigation:Vg_compiler.Mitigation.t ->
  mode:Sva.mode ->
  Machine.t ->
  t
(** Initialise SVA, the frame allocator, buffer cache, a fresh file
    system (or remount an existing one), the network stack, and the
    init process (pid 1).  [frame_limit] caps the kernel's frame
    allocator — a memory-constrained machine that forces ghost
    swapping.  [engine] (default [Slots]) selects the execution engine
    for module override code; all engines charge identical simulated
    cycles on the code they can run, so goldens are engine-independent
    (the [Interp] debug engine cannot model CFI — see
    {!Vg_compiler.Exec_engine}).  [spec_mitigation] (default [Off])
    selects the Spectre hardening of the sandbox: the kernel image and
    every module are compiled under it and the translation cache is
    bound to it ({!Vg_compiler.Trans_cache.set_mitigation}).

    Compatibility note: the optional-argument form is the low-level
    path, kept for booting onto an existing machine (reboot tests,
    attack harnesses that pre-stage machine state).  New code should
    describe the node with [Vg_fleet.Node_config] and boot through
    [Vg_fleet.Node.boot], which is cycle-identical and subsumes the
    [Machine.create] + [boot] argument sprawl in one record. *)

val mode : t -> Sva.mode
val init_process : t -> Proc.t

val find_proc : t -> int -> Proc.t option
val current_pid : t -> int
val current_proc : t -> Proc.t

val switch_to : t -> Proc.t -> unit
(** Context switch on the current core, through the SVA-mediated path:
    [sva.swap.integer] (the only way threads change — saved register
    state never leaves SVA memory) followed by the checked page-table
    install.  A refusal (thread live on another core) is fatal here;
    hostile schedulers get the [Error] from {!Sva.swap_integer}. *)

val reap_zombie : t -> parent:int -> int option
(** Remove one zombie child of pid [parent] from the process table
    (the table-side half of [wait]); returns its pid.  Used by the
    fiber runtime, which reaps on the dying fiber's core instead of
    context-switching to the parent. *)

val create_process : t -> parent:Proc.t -> Proc.t Errno.result
(** Allocate a pid, address space and SVA thread (used by [fork] and
    by the userland runtime for initial processes). *)

val map_user_page : t -> Proc.t -> int64 -> unit Errno.result
(** Demand-map one traditional user page (allocates and zeroes a
    frame). *)

val ensure_user_range : t -> Proc.t -> int64 -> len:int -> unit Errno.result
(** Map every page overlapping [va, va+len). *)

val handle_page_fault : t -> Proc.t -> int64 -> unit Errno.result
(** The kernel's page-fault handler: trap accounting plus demand
    mapping and copy-on-write resolution.  [EFAULT] for addresses
    outside the user range. *)

val share_frame : t -> int -> unit
(** Add a copy-on-write reference to a frame (fork). *)

val release_frame : t -> int -> unit
(** Drop a reference; the frame is zeroed and freed when the last
    reference goes (zero-on-free pool, where the zeroing cost is
    charged). *)

val resolve_cow_range : t -> Proc.t -> int64 -> len:int -> unit
(** Ensure a user range is privately writable before a kernel copyout
    (the write fault the hardware would deliver mid-copy). *)

val user_ro : Pagetable.perm
(** Read-only user mapping used for shared copy-on-write pages. *)

val free_user_pages : t -> Proc.t -> unit
(** Tear down all traditional user pages of a process. *)

