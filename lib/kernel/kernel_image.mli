(** The kernel's own translated image.

    Virtual Ghost's threat model does not trust the compiler's output
    any more than it trusts a module's: the kernel itself is virtual-ISA
    code translated by the SVA VM, and the translation it boots from
    must prove the same sandboxing and CFI invariants.  This module
    holds a small but representative virtual-ISA program standing in
    for the kernel image — memory traffic (loads, stores, memcpy, an
    atomic), direct calls, an indirect call through a function-pointer
    table, branches and loops — which {!Kernel.boot} compiles, signs
    into the translation cache under the name ["kernel"], and loads
    back through the verifying path before the machine is allowed to
    run. *)

val name : string
(** Cache name of the kernel's own translation (["kernel"]). *)

val program : unit -> Ir.program
(** A fresh copy of the representative kernel-image program. *)
