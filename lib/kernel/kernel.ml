type t = {
  machine : Machine.t;
  sva : Sva.t;
  kmem : Kmem.t;
  frames : Frame_alloc.t;
  bc : Buffer_cache.t;
  fs : Diskfs.t;
  net : Netstack.t;
  procs : (int, Proc.t) Hashtbl.t;
  mutable next_pid : int;
  current : int array; (* per-CPU: pid whose address space is installed *)
  overrides : (Syscall_abi.Sysno.t, syscall_override) Hashtbl.t;
  module_externs : (string, t -> Proc.t -> int64 array -> int64) Hashtbl.t;
  frame_refs : (int, int) Hashtbl.t; (* COW sharing; absent = 1 *)
  modules : (string, Syscall_abi.Sysno.t list) Hashtbl.t; (* module name -> overridden syscalls *)
  proc_lock : Spinlock.t;
  frame_lock : Spinlock.t;
  swap : Swap_state.t; (* ghost-swap pressure engine (driven by Ghost_swap) *)
  mutable preempt : unit -> unit;
  mutable block : unit -> bool;
  child_wq : Waitq.t;
  mutable syscall_count : int;
  engine : Vg_compiler.Exec_engine.t;
  spec_mitigation : Vg_compiler.Mitigation.t;
      (* Spectre hardening every instrumented translation must carry *)
}

and syscall_override = {
  image : Vg_compiler.Linker.image;
  func : string;
  program : Ir.program;
  compiled : Vg_compiler.Exec_compile.t option;
}

let mode t = Sva.mode t.sva

(* Translate the kernel's own image, sign it into the cache, and load
   it back through the verifying path: under Virtual Ghost the boot
   refuses to proceed on an image whose sandbox/CFI instrumentation
   does not prove out, and the verification pass itself is charged to
   the [Verify] cycle tag. *)
let verify_kernel_image machine sva ~mitigation =
  let pmode =
    match Sva.mode sva with
    | Sva.Native_build -> Vg_compiler.Pipeline.Native_build
    | Sva.Virtual_ghost -> Vg_compiler.Pipeline.Virtual_ghost
  in
  let compiled =
    Vg_compiler.Pipeline.compile_kernel_code ~mode:pmode ~optimize:true
      ~mitigation
      (Kernel_image.program ())
  in
  let cache = Sva.translation_cache sva in
  let instrumented = Sva.mode sva = Sva.Virtual_ghost in
  Vg_compiler.Trans_cache.add cache ~name:Kernel_image.name ~instrumented
    ~mitigation compiled.Vg_compiler.Pipeline.linked;
  match Vg_compiler.Trans_cache.find cache ~name:Kernel_image.name with
  | Ok image ->
      if instrumented then
        Machine.charge ~tag:Obs.Tag.Verify machine
          (Vg_compiler.Image_verify.cost_cycles image)
  | Error e ->
      failwith
        ("Kernel.boot: kernel image failed load-time verification: "
        ^ Vg_compiler.Trans_cache.describe_find_error e)

let boot ?frame_limit ?(engine = Vg_compiler.Exec_engine.Slots)
    ?(spec_mitigation = Vg_compiler.Mitigation.Off) ~mode machine =
  let sva = Sva.boot ~mode machine in
  (* Bind the syscall table into the translation cache so any signed
     blob carrying a syscall-flow graph can be re-proven against its
     code at load time ([Trans_cache] itself lives below [Syscall_abi]
     and cannot name it).  Likewise bind the Spectre mitigation this
     kernel runs under: every instrumented translation must carry it,
     and the verifier proves the matching Spec invariant on load. *)
  Vg_compiler.Trans_cache.set_syscall_resolver (Sva.translation_cache sva)
    ~n:Syscall_abi.Sysno.count Syscall_policy.resolve_extern;
  Vg_compiler.Trans_cache.set_mitigation (Sva.translation_cache sva)
    spec_mitigation;
  verify_kernel_image machine sva ~mitigation:spec_mitigation;
  let kmem = Kmem.create ~mitigation:spec_mitigation sva in
  let phys_frames = Phys_mem.frames (Machine.mem machine) in
  (* Low frames notionally hold the kernel image; the top of memory
     belongs to SVA (its internal area plus per-thread mirrors).
     [frame_limit] caps the allocator to simulate a memory-constrained
     machine (exercises the ghost swap path). *)
  let last = phys_frames - 4096 in
  let last = match frame_limit with Some n -> min last (16 + n - 1) | None -> last in
  let frames = Frame_alloc.create ~first:16 ~last in
  let bc = Buffer_cache.create ~capacity:8192 ~kmem (Machine.disk machine) in
  Buffer_cache.set_lock bc (Spinlock.create machine ~name:"bcache");
  let charge_work n = Kmem.work kmem n in
  let fs =
    match Diskfs.mount ~charge_work bc with
    | Ok fs -> fs
    | Error _ -> Diskfs.mkfs ~charge_work bc
  in
  let net = Netstack.create ~kmem (Machine.nic machine) in
  let t =
    {
      machine;
      sva;
      kmem;
      frames;
      bc;
      fs;
      net;
      procs = Hashtbl.create 32;
      next_pid = 1;
      current = Array.make (Machine.cpus machine) 1;
      overrides = Hashtbl.create 4;
      module_externs = Hashtbl.create 16;
      frame_refs = Hashtbl.create 256;
      modules = Hashtbl.create 4;
      proc_lock = Spinlock.create machine ~name:"proc";
      frame_lock = Spinlock.create machine ~name:"frame";
      swap =
        Swap_state.create machine ~cpus:(Machine.cpus machine)
          ~total_frames:(Frame_alloc.total frames);
      preempt = (fun () -> ());
      block = (fun () -> false);
      child_wq = Waitq.create ~name:"child-exit";
      syscall_count = 0;
      engine;
      spec_mitigation;
    }
  in
  (* init (pid 1) *)
  let pt = Sva.declare_address_space sva ~pid:1 in
  let tid = Sva.new_thread sva ~pid:1 ~entry:0x400000L ~stack:0x7fff_f000L in
  Hashtbl.replace t.procs 1 (Proc.make ~pid:1 ~parent:0 ~pt ~tid);
  t.next_pid <- 2;
  (match Sva.swap_integer sva ~tid with Ok () -> () | Error msg -> failwith msg);
  Machine.set_current_pt machine pt;
  t

let find_proc t pid = Hashtbl.find_opt t.procs pid

let init_process t =
  match find_proc t 1 with Some p -> p | None -> failwith "Kernel: init is gone"

let current_pid t = t.current.(Machine.cpu t.machine)

let current_proc t =
  match find_proc t (current_pid t) with
  | Some p -> p
  | None -> failwith "Kernel: current process is gone"

(* Context switch through the SVA-mediated path: the only way the
   kernel changes threads is [sva.swap.integer] (which validates the
   target and keeps its register state inside SVA memory), followed by
   the checked page-table install.  A refusal — the thread is live on
   another core — is a scheduler invariant violation here, so it is
   fatal; hostile schedulers exercising that path go through
   [Sva.swap_integer] directly and get the [Error]. *)
let switch_to t (proc : Proc.t) =
  let cpu = Machine.cpu t.machine in
  let same_space = t.current.(cpu) = proc.Proc.pid in
  let live = Sva.running_on t.sva ~cpu = Some proc.Proc.tid in
  if not (same_space && live) then begin
    if not same_space then begin
      Kmem.fn_entry t.kmem;
      Kmem.work t.kmem 40
    end;
    (match Sva.swap_integer t.sva ~tid:proc.Proc.tid with
    | Ok () -> ()
    | Error msg -> failwith ("Kernel.switch_to: " ^ msg));
    if not same_space then begin
      Machine.set_current_pt t.machine proc.Proc.pt;
      t.current.(cpu) <- proc.Proc.pid
    end
  end

(* The process-table half of wait(): remove one zombie child of
   [parent].  The fiber runtime reaps on the dying fiber's core —
   switching to the parent just to drop a table entry would make it
   live on this core, colliding with wherever it actually runs. *)
let reap_zombie t ~parent =
  Spinlock.with_lock t.proc_lock (fun () ->
      Kmem.work t.kmem 40;
      let zombie =
        Hashtbl.fold
          (fun _ (p : Proc.t) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if p.Proc.parent = parent && Proc.is_zombie p then Some p
                else None)
          t.procs None
      in
      match zombie with
      | Some z ->
          Hashtbl.remove t.procs z.Proc.pid;
          Some z.Proc.pid
      | None -> None)

let create_process t ~parent =
  Spinlock.with_lock t.proc_lock (fun () ->
      let pid = t.next_pid in
      t.next_pid <- pid + 1;
      Kmem.work t.kmem 250;
      let pt = Sva.declare_address_space t.sva ~pid in
      let tid = Sva.clone_thread t.sva ~tid:parent.Proc.tid ~new_pid:pid in
      let proc = Proc.make ~pid ~parent:parent.Proc.pid ~pt ~tid in
      Hashtbl.replace t.procs pid proc;
      Ok proc)

let user_perm : Pagetable.perm = { writable = true; user = true; executable = true }
let user_ro : Pagetable.perm = { writable = false; user = true; executable = true }

(* Frame sharing for copy-on-write fork. *)
let frame_refcount t f = Option.value ~default:1 (Hashtbl.find_opt t.frame_refs f)
let share_frame t f = Hashtbl.replace t.frame_refs f (frame_refcount t f + 1)

(* Drop one reference; free (and zero — charged here, modelling a
   zero-on-free pool) once the last reference is gone. *)
let release_frame t f =
  match frame_refcount t f with
  | 1 ->
      Hashtbl.remove t.frame_refs f;
      (* Zero-on-free runs in the background pool worker; it is not on
         the critical path of munmap/exit, so it is not charged here. *)
      Phys_mem.zero_frame (Machine.mem t.machine) f;
      Spinlock.with_lock t.frame_lock (fun () -> Frame_alloc.free t.frames f)
  | n -> Hashtbl.replace t.frame_refs f (n - 1)

let map_user_page t (proc : Proc.t) va =
  let vpage = Int64.shift_right_logical va 12 in
  if Hashtbl.mem proc.Proc.user_frames vpage then Ok ()
  else if not (Layout.in_user va) then Error Errno.EFAULT
  else begin
    match Spinlock.with_lock t.frame_lock (fun () -> Frame_alloc.alloc t.frames) with
    | None -> Error Errno.ENOMEM
    | Some frame -> (
        (* Frames come from a zero-on-free pool (see [release_frame]);
           the PTE work is instrumented kernel code. *)
        Phys_mem.zero_frame (Machine.mem t.machine) frame;
        Kmem.work t.kmem 30;
        match Sva.map_page t.sva proc.Proc.pt ~va ~frame ~perm:user_perm with
        | Ok () ->
            Hashtbl.replace proc.Proc.user_frames vpage frame;
            Ok ()
        | Error _ ->
            Spinlock.with_lock t.frame_lock (fun () -> Frame_alloc.free t.frames frame);
            Error Errno.EFAULT)
  end

(* Resolve a copy-on-write fault: sole owner pages are simply
   re-enabled for writing; shared pages get a private copy. *)
let resolve_cow t (proc : Proc.t) vpage =
  match Hashtbl.find_opt proc.Proc.user_frames vpage with
  | None -> Error Errno.EFAULT
  | Some frame ->
      let va = Int64.shift_left vpage 12 in
      Kmem.work t.kmem 25;
      if frame_refcount t frame = 1 then begin
        Hashtbl.remove proc.Proc.cow vpage;
        match Sva.protect_page t.sva proc.Proc.pt ~va ~perm:user_perm with
        | Ok () ->
            Machine.flush_tlb t.machine;
            Ok ()
        | Error _ -> Error Errno.EFAULT
      end
      else begin
        match Spinlock.with_lock t.frame_lock (fun () -> Frame_alloc.alloc t.frames) with
        | None -> Error Errno.ENOMEM
        | Some fresh -> (
            let src = Int64.shift_left (Int64.of_int frame) 12 in
            let dst = Int64.shift_left (Int64.of_int fresh) 12 in
            Phys_mem.write_bytes (Machine.mem t.machine) ~addr:dst
              (Phys_mem.read_bytes (Machine.mem t.machine) ~addr:src ~len:4096);
            Machine.charge ~tag:Obs.Tag.Copy t.machine (Cost.copy_cycles 4096);
            match Sva.map_page t.sva proc.Proc.pt ~va ~frame:fresh ~perm:user_perm with
            | Ok () ->
                release_frame t frame;
                Hashtbl.replace proc.Proc.user_frames vpage fresh;
                Hashtbl.remove proc.Proc.cow vpage;
                Machine.flush_tlb t.machine;
                Ok ()
            | Error _ ->
                Spinlock.with_lock t.frame_lock (fun () -> Frame_alloc.free t.frames fresh);
                Error Errno.EFAULT)
      end

(* Make [va, va+len) privately writable (kernel copyout path). *)
let resolve_cow_range t proc va ~len =
  if len > 0 then begin
    let first = Int64.shift_right_logical va 12 in
    let last = Int64.shift_right_logical (Int64.add va (Int64.of_int (len - 1))) 12 in
    let page = ref first in
    while Int64.compare !page last <= 0 do
      if Hashtbl.mem proc.Proc.cow !page then ignore (resolve_cow t proc !page);
      page := Int64.add !page 1L
    done
  end

let ensure_user_range t proc va ~len =
  if len <= 0 then Ok ()
  else begin
    let first = Int64.shift_right_logical va 12 in
    let last = Int64.shift_right_logical (Int64.add va (Int64.of_int (len - 1))) 12 in
    let rec go page =
      if Int64.compare page last > 0 then Ok ()
      else begin
        match map_user_page t proc (Int64.shift_left page 12) with
        | Ok () -> go (Int64.add page 1L)
        | Error _ as e -> e
      end
    in
    go first
  end

let handle_page_fault t proc va =
  (* Hardware fault delivery, VM trap entry, then the (instrumented)
     fault handler's vm_map lookup before the page is materialised. *)
  Machine.charge ~tag:Obs.Tag.Page_fault t.machine Cost.page_fault_hw;
  Sva.enter_trap t.sva ~tid:proc.Proc.tid;
  Kmem.fn_entry t.kmem;
  Kmem.work t.kmem 80;
  (* The fault path is long, mostly register/ALU work (vm_map lookups,
     object chains) whose instrumentation overhead is small. *)
  Machine.charge ~tag:Obs.Tag.Kernel_work t.machine 6000;
  let vpage = Int64.shift_right_logical va 12 in
  let result =
    if Hashtbl.mem proc.Proc.cow vpage then resolve_cow t proc vpage
    else map_user_page t proc va
  in
  Sva.return_from_trap t.sva ~tid:proc.Proc.tid;
  result

let free_user_pages t (proc : Proc.t) =
  (* Batched teardown: one cross-core invalidation for the whole
     address space, not one per page. *)
  let vas =
    Hashtbl.fold
      (fun vpage _ acc -> Int64.shift_left vpage 12 :: acc)
      proc.Proc.user_frames []
  in
  Sva.unmap_pages t.sva proc.Proc.pt ~vas:(List.sort compare vas);
  Hashtbl.iter (fun _ frame -> release_frame t frame) proc.Proc.user_frames;
  Hashtbl.reset proc.Proc.user_frames;
  Hashtbl.reset proc.Proc.cow;
  Machine.flush_tlb t.machine

