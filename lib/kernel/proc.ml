type fd_kind =
  | File of { ino : int; mutable offset : int }
  | Pipe_read of Pipe_dev.t
  | Pipe_write of Pipe_dev.t
  | Sock_listen of int
  | Sock_conn of int
  | Console_out

type state = Running | Zombie of int

type t = {
  pid : int;
  mutable parent : int;
  pt : Pagetable.t;
  tid : int;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  user_frames : (int64, int) Hashtbl.t;
  cow : (int64, unit) Hashtbl.t;
  mutable ghost_regions : (int64 * int) list;
  mutable mmap_cursor : int64;
  mutable state : state;
  signal_handlers : (int, int64) Hashtbl.t;
  code_map : (int64, int64 -> unit) Hashtbl.t;
  mutable image : Appimage.t option;
  blocking : (int, unit) Hashtbl.t;
  mutable policy : Syscall_policy.t option;
}

let make ~pid ~parent ~pt ~tid =
  {
    pid;
    parent;
    pt;
    tid;
    fds = Hashtbl.create 16;
    next_fd = 3;
    user_frames = Hashtbl.create 64;
    cow = Hashtbl.create 16;
    ghost_regions = [];
    mmap_cursor = 0x0000_2000_0000_0000L;
    state = Running;
    signal_handlers = Hashtbl.create 8;
    code_map = Hashtbl.create 8;
    image = None;
    blocking = Hashtbl.create 4;
    policy = None;
  }

let add_fd t kind =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd kind;
  fd

let find_fd t fd = Hashtbl.find_opt t.fds fd

let remove_fd t fd =
  Hashtbl.remove t.fds fd;
  Hashtbl.remove t.blocking fd

let set_blocking t fd on =
  if on then Hashtbl.replace t.blocking fd () else Hashtbl.remove t.blocking fd

let is_blocking t fd = Hashtbl.mem t.blocking fd
let is_zombie t = match t.state with Zombie _ -> true | Running -> false
