let block_bytes = 4096
let sectors_per_block = block_bytes / Disk.sector_bytes

type entry = { data : bytes; mutable dirty : bool; mutable stamp : int }

type t = {
  disk : Disk.t;
  kmem : Kmem.t;
  capacity : int;
  cache : (int, entry) Hashtbl.t;
  mutable lock : Spinlock.t option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 1024) ~kmem disk =
  {
    disk;
    kmem;
    capacity;
    cache = Hashtbl.create capacity;
    lock = None;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let set_lock t lock = t.lock <- Some lock
let lock t = t.lock

(* Every public operation runs under the cache's spinlock once the
   kernel installs one (free on one CPU; a cache-line transfer when
   cores alternate). *)
let guarded t f =
  match t.lock with
  | None -> f ()
  | Some l ->
      (* Filesystem operations nest (a [modify] callback freeing blocks
         touches the bitmap block); same-core nesting is not contention. *)
      if Spinlock.held_by_current l then f () else Spinlock.with_lock l f

let blocks t = Disk.sectors t.disk / sectors_per_block
let hits t = t.hits
let misses t = t.misses

let flush_entry t b entry =
  if entry.dirty then begin
    Disk.write_range t.disk ~sector:(b * sectors_per_block) entry.data;
    entry.dirty <- false
  end

let evict_if_full t =
  if Hashtbl.length t.cache >= t.capacity then begin
    (* Evict the least-recently-used block. *)
    let victim = ref None in
    Hashtbl.iter
      (fun b e ->
        match !victim with
        | Some (_, stamp) when stamp <= e.stamp -> ()
        | _ -> victim := Some (b, e.stamp))
      t.cache;
    match !victim with
    | None -> ()
    | Some (b, _) ->
        let e = Hashtbl.find t.cache b in
        flush_entry t b e;
        Hashtbl.remove t.cache b
  end

let touch t entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick

let lookup t b =
  if b < 0 || b >= blocks t then invalid_arg "Buffer_cache: block out of range";
  (* Hash lookup + LRU bookkeeping are kernel memory operations. *)
  Kmem.work t.kmem 25;
  match Hashtbl.find_opt t.cache b with
  | Some entry ->
      t.hits <- t.hits + 1;
      touch t entry;
      entry
  | None ->
      t.misses <- t.misses + 1;
      evict_if_full t;
      let data = Disk.read_range t.disk ~sector:(b * sectors_per_block) ~count:sectors_per_block in
      let entry = { data; dirty = false; stamp = 0 } in
      touch t entry;
      Hashtbl.replace t.cache b entry;
      entry

let read t b =
  guarded t (fun () ->
      let entry = lookup t b in
      Machine.charge ~tag:Obs.Tag.Copy (Kmem.machine t.kmem) (Cost.copy_cycles block_bytes);
      Bytes.copy entry.data)

(* A full-block write never needs the old contents: a cache miss here
   allocates a fresh buffer instead of reading the disk. *)
let write t b src =
  guarded t @@ fun () ->
  if Bytes.length src > block_bytes then invalid_arg "Buffer_cache.write: oversized block";
  if b < 0 || b >= blocks t then invalid_arg "Buffer_cache: block out of range";
  Kmem.work t.kmem 25;
  let entry =
    match Hashtbl.find_opt t.cache b with
    | Some entry ->
        t.hits <- t.hits + 1;
        touch t entry;
        entry
    | None ->
        t.hits <- t.hits + 1;
        evict_if_full t;
        let entry = { data = Bytes.make block_bytes '\000'; dirty = true; stamp = 0 } in
        touch t entry;
        Hashtbl.replace t.cache b entry;
        entry
  in
  Machine.charge ~tag:Obs.Tag.Copy (Kmem.machine t.kmem) (Cost.copy_cycles block_bytes);
  Bytes.fill entry.data 0 block_bytes '\000';
  Bytes.blit src 0 entry.data 0 (Bytes.length src);
  entry.dirty <- true

let modify t b f =
  guarded t (fun () ->
      let entry = lookup t b in
      f entry.data;
      entry.dirty <- true)

let view t b f =
  guarded t (fun () ->
      let entry = lookup t b in
      f entry.data)

let sync t = guarded t (fun () -> Hashtbl.iter (fun b e -> flush_entry t b e) t.cache)
