(** The kernel's memory-access discipline.

    Every memory access the (OCaml-modelled) kernel performs goes
    through this module, which plays the role of the code the Virtual
    Ghost compiler would have emitted:

    - in a [Native_build] kernel, {!load}/{!store} translate the given
      virtual address directly — including ghost and SVA addresses,
      which is exactly the attack surface;
    - in a [Virtual_ghost] kernel, the address is first transformed by
      {e the same function the sandboxing pass implements in IR}
      ({!Vg_compiler.Sandbox_pass.masked_address}), and the extra
      instructions are charged to the cycle clock.

    Accesses that fault (e.g. a masked ghost address landing on an
    unmapped kernel page) read zero / drop the store rather than
    killing the kernel — the paper's observed behaviour is "the kernel
    simply reads unknown data out of its own address space".

    Beyond real addressed accesses, subsystems charge abstract
    instrumented work through {!work} (N memory operations of kernel
    bookkeeping whose bytes are not individually modelled) and
    {!fn_entry} (per-function CFI cost), so that instrumentation
    overhead scales with the amount of kernel code a path executes. *)

type t

(** [create ?mitigation sva] — [mitigation] (default [Off]) is the
    Spectre hardening the kernel was compiled under: it adds the
    corresponding per-memory-operand surcharge
    ({!Vg_compiler.Fence_pass.fence_cycles} under [Fence], the two
    extra mask instructions under [Safe_mask]) to every Virtual Ghost
    access and {!work} unit, charged to the [Spec] cycle tag. *)
val create : ?mitigation:Vg_compiler.Mitigation.t -> Sva.t -> t

val sva : t -> Sva.t
val machine : t -> Machine.t
val mode : t -> Sva.mode

val load : t -> int64 -> len:int -> int64
(** Instrumented kernel load ([len] in 1/2/4/8). *)

val store : t -> int64 -> len:int -> int64 -> unit
(** Instrumented kernel store. *)

val read_bytes : t -> int64 -> len:int -> bytes
(** Instrumented bulk read (a [memcpy] out of somewhere): masking is
    applied per page. *)

val write_bytes : t -> int64 -> bytes -> unit

val work : t -> int
  -> unit
(** [work t n] models [n] kernel memory operations on kernel-private
    data structures: charges [n * mem_access], plus [n * sandbox_mask]
    under Virtual Ghost. *)

val fn_entry : t -> unit
(** Models entering one instrumented kernel function: charges the CFI
    label/check cost under Virtual Ghost, nothing otherwise. *)

val faulted_accesses : t -> int
(** How many kernel accesses faulted and were zero-filled (diagnostic:
    nonzero means something — usually an attack — touched unmapped
    masked addresses). *)
