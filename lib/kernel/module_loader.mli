(** Loadable kernel modules.

    Modules arrive as virtual-ISA (IR) programs — the threat model
    allows arbitrary hostile module code, but it "must also be compiled
    by the instrumenting compiler".  Loading therefore: (1) compiles
    the IR through the same pipeline as the kernel (sandboxing + CFI
    under Virtual Ghost, nothing under the native baseline); (2) signs
    and stores the translation in the VM's cache and loads it back
    through the verifying path — the HMAC proves the VM produced the
    bytes, and {!Vg_compiler.Image_verify} re-proves the sandbox and
    CFI invariants in them, so a module image patched on disk {e or}
    mis-translated is rejected with a structured reason; (3) registers
    every function named [sys_<call>] as an override for that system
    call. *)

type load_error =
  | Compile_rejected of string
      (** the virtual-ISA program failed IR verification or CFI
          validation inside the pipeline *)
  | Cache_refused of Vg_compiler.Trans_cache.find_error
      (** the signed translation failed signature or image
          verification when loaded back *)

val describe_load_error : load_error -> string

val errno_of_load_error : load_error -> Errno.t
(** Both rejection classes surface to the OS as [ENOEXEC]: the image
    is not something the VM will execute. *)

val load : Kernel.t -> name:string -> Ir.program -> (unit, load_error) result
(** Compile, cache, verify and register a module.  A rejection emits a
    [Security] observability event naming the failing invariant. *)

val unload : Kernel.t -> name:string -> unit
(** Remove this module's syscall overrides. *)

val loaded_modules : Kernel.t -> string list
(** Names of loaded modules, sorted (per-kernel state: two booted
    kernels never see each other's modules). *)

val loaded_overrides : Kernel.t -> string list
(** Currently overridden system calls. *)
