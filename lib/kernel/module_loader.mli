(** Loadable kernel modules.

    Modules arrive as virtual-ISA (IR) programs — the threat model
    allows arbitrary hostile module code, but it "must also be compiled
    by the instrumenting compiler".  Loading therefore: (1) compiles
    the IR through the same pipeline as the kernel (sandboxing + CFI
    under Virtual Ghost, nothing under the native baseline); (2) signs
    and stores the translation in the VM's cache and re-verifies it
    before registration (so a module image patched on disk is
    rejected); (3) registers every function named [sys_<call>] as an
    override for that system call. *)

val load :
  Kernel.t -> name:string -> Ir.program -> (unit, string) result
(** Compile, cache, verify and register a module. *)

val unload : Kernel.t -> name:string -> unit
(** Remove this module's syscall overrides. *)

val loaded_modules : Kernel.t -> string list
(** Names of loaded modules, sorted (per-kernel state: two booted
    kernels never see each other's modules). *)

val loaded_overrides : Kernel.t -> string list
(** Currently overridden system calls. *)
