(** The unified numbered-syscall dispatch.

    Exactly one place performs decode → policy check → handler →
    encode: {!run}.  The typed {!Syscalls} wrappers, the batched
    submission ring and loadable-module overrides all funnel through
    it, so an overridden call behaves identically whether it arrives
    by trap or by ring, and every result crosses the boundary through
    the single {!Syscall_abi} codec.

    Handlers are {!Syscall_abi.Entry} records registered by
    {!Syscalls} at module initialisation; syscalls whose arguments
    cannot be carried in registers in this simulation (paths, struct
    results, process handles) register a [None] handler and report
    [ENOSYS] when addressed by number.

    Syscall-flow integrity (SFIP) lives at this choke point: when the
    process carries a {!Syscall_policy}, {!guard} (direct calls) or
    {!precheck} (whole ring batches) vets the transition before the
    handler runs; an out-of-policy sequence kills the process with one
    [Security{sfip}] event and [ESFIP].  Unprofiled processes
    ([policy = None]) pay nothing — not even a cycle charge. *)

type origin = Trap | Ring

type handler = Kernel.t -> Proc.t -> int64 array -> int64 Errno.result
(** Builtin body: register arguments in, codec-shaped result out.
    Encoding to the result register happens in {!run}, not here. *)

type entry = handler option Syscall_abi.Entry.t

val register : entry -> unit
(** Install (or replace) the builtin entry for its number. *)

val entry : Syscall_abi.Sysno.t -> entry option
val entries : unit -> entry list
(** All registered entries, in numbering order. *)

val on_kill : (Kernel.t -> Proc.t -> unit) ref
(** Teardown hook run after an SFIP kill (set by {!Syscalls}: close
    descriptors, release ghost memory, zombie the process — but keep
    the SVA thread alive so the in-flight trap epilogue completes). *)

val guard :
  Kernel.t -> Proc.t -> origin:origin -> Syscall_abi.Sysno.t -> unit Errno.result
(** Per-call SFIP gate, also used directly by the typed-only wrappers
    (paths and struct results never reach {!run}).  [Ok ()] commits the
    transition; [Error ESFIP] means the process was just killed (one
    [Security{sfip}] event) or was already policy-killed earlier. *)

val precheck :
  Kernel.t -> Proc.t -> Syscall_abi.Sysno.t array -> unit Errno.result
(** Whole-batch SFIP gate for [ring_enter]: scan the submitted
    sequence — intra-batch transitions included — from the current
    cursor before any entry executes.  Commits nothing; pays the
    per-entry check charge for the whole batch up front, so in-policy
    entries then run through {!run} with [prechecked:true] for free.
    [Error ESFIP] — first out-of-policy entry named in the event —
    means the batch must execute nothing. *)

val run :
  Kernel.t ->
  Proc.t ->
  origin:origin ->
  ?prechecked:bool ->
  sysno:int ->
  int64 array ->
  int64
(** Execute syscall [sysno] with register arguments: validate the raw
    number ([ENOSYS] if out of table), refuse ring-submitted
    [ring_enter] (no nested ring entry), run the policy gate (skipped
    in favour of a cursor commit when [prechecked]), honour any module
    override, otherwise the registered builtin, and return the
    ABI-encoded result register.  Callers are expected to be inside a
    trap or a typed wrapper; this performs no trap protocol of its
    own. *)

val run_override :
  Kernel.t -> Proc.t -> Kernel.syscall_override -> int64 array -> int64
(** Execute a loadable-module override body on the kernel's execution
    engine (exposed for {!run}'s internal use and tests; raises
    {!Vg_compiler.Executor.Cfi_violation} like any module code). *)
