(** Kernel waitqueues: the readiness layer's wakeup primitive.

    A waitqueue is a named, monotonically increasing sequence number.
    Producers ({!Pipe_dev} writes, {!Netstack} frame demux, process
    exit) call {!wake}; a blocked syscall {!subscribe}s to the queues
    guarding its descriptors, yields, and re-scans readiness only when
    {!signalled} reports that a subscribed queue advanced.  Wakeups
    never touch the simulated clock — the cycle cost of sleeping and
    re-scanning is charged by the syscalls that use the queue. *)

type t

val create : name:string -> t
val name : t -> string

val wake : t -> unit
(** Record a wakeup-worthy event (data arrived, space freed, child
    exited, endpoint closed). *)

val seq : t -> int
(** Current sequence number (monotonic; bumped by every {!wake}). *)

val wakeups : t -> int
(** Total {!wake} calls, for tests and stats. *)

(** {1 Subscriptions} *)

type sub
(** A snapshot of several queues' sequence numbers. *)

val subscribe : t list -> sub
val signalled : sub -> bool
(** Did any subscribed queue {!wake} since the snapshot was taken? *)
