(* Preemptive multi-core scheduler over effects-based fibers.

   Each runnable activity is a fiber: an OCaml function driving one
   process through the userland runtime.  Fibers live on per-CPU run
   queues; the scheduler loop repeatedly picks the core with the
   lowest simulated clock (deterministic tie-break on core id), pops
   that core's queue — stealing from the longest queue when its own is
   empty — and resumes the fiber after switching to its process
   through the SVA-mediated path ([Kernel.switch_to]).

   Preemption is timer-driven: [run] arms every core's interval timer,
   and the hook it installs as [Kernel.preempt] fires at the
   syscall-trap epilogue — the point where a real kernel's timer
   interrupt would find the thread preemptible — acknowledging the
   tick and performing [Yield], which unwinds the fiber back into the
   scheduler loop and re-enqueues it.

   Everything here is deterministic: core choice depends only on
   simulated cycle counts and ids, queues are FIFO, and the timer is
   driven by the simulated clock. *)

type _ Effect.t += Yield : unit Effect.t

type fiber = {
  fid : int;
  name : string;
  proc : Proc.t;
  body : unit -> unit;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable home : int; (* queue the fiber goes back to when preempted *)
  mutable done_ : bool;
}

type t = {
  kernel : Kernel.t;
  queues : fiber Queue.t array;
  mutable next_fid : int;
  mutable active : bool;
  mutable preemptions : int;
  mutable steals : int;
  mutable dispatches : int;
}

let default_timer_period = 400_000

let create kernel =
  let cpus = Machine.cpus kernel.Kernel.machine in
  {
    kernel;
    queues = Array.init cpus (fun _ -> Queue.create ());
    next_fid = 0;
    active = false;
    preemptions = 0;
    steals = 0;
    dispatches = 0;
  }

let preemptions t = t.preemptions
let steals t = t.steals
let dispatches t = t.dispatches
let pending t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let spawn t ?cpu ~name (proc : Proc.t) body =
  let cpus = Array.length t.queues in
  let home =
    match cpu with
    | Some c ->
        if c < 0 || c >= cpus then invalid_arg "Sched.spawn: bad cpu";
        c
    | None -> t.next_fid mod cpus
  in
  let fiber =
    { fid = t.next_fid; name; proc; body; cont = None; home; done_ = false }
  in
  t.next_fid <- t.next_fid + 1;
  Queue.push fiber t.queues.(home)

let yield t = if t.active then Effect.perform Yield

(* Pick the core that runs next: lowest simulated clock among cores
   that can make progress (own queue non-empty, or a steal available —
   some other queue holds at least two fibers, so stealing cannot
   ping-pong a lone fiber between idle cores). *)
let choose_core t =
  let m = t.kernel.Kernel.machine in
  let cpus = Array.length t.queues in
  let steal_available c =
    let ok = ref false in
    Array.iteri (fun i q -> if i <> c && Queue.length q >= 2 then ok := true) t.queues;
    !ok
  in
  let best = ref None in
  for c = 0 to cpus - 1 do
    if not (Queue.is_empty t.queues.(c)) || steal_available c then begin
      let cy = Machine.core_cycles m c in
      match !best with
      | Some (_, bcy) when bcy <= cy -> ()
      | _ -> best := Some (c, cy)
    end
  done;
  (* Fall back to the core holding work (single runnable fiber on a
     busy core while idle cores cannot steal it). *)
  match !best with
  | Some (c, _) -> c
  | None ->
      let holder = ref 0 in
      Array.iteri (fun i q -> if not (Queue.is_empty q) then holder := i) t.queues;
      !holder

let steal_into t cpu =
  let victim = ref (-1) and best_len = ref 1 in
  Array.iteri
    (fun i q ->
      if i <> cpu && Queue.length q > !best_len then begin
        victim := i;
        best_len := Queue.length q
      end)
    t.queues;
  if !victim >= 0 then begin
    let fiber = Queue.pop t.queues.(!victim) in
    fiber.home <- cpu;
    t.steals <- t.steals + 1;
    Queue.push fiber t.queues.(cpu)
  end

let dispatch t fiber =
  let k = t.kernel in
  let m = k.Kernel.machine in
  let cpu = Machine.cpu m in
  t.dispatches <- t.dispatches + 1;
  let prev_tid = Option.value ~default:(-1) (Sva.running_on k.Kernel.sva ~cpu) in
  let next_tid = fiber.proc.Proc.tid in
  if prev_tid <> next_tid then begin
    Machine.charge ~tag:Obs.Tag.Sched m 60;
    Machine.emit m (Obs.Event.Sched_switch { cpu; prev_tid; next_tid })
  end;
  Kernel.switch_to k fiber.proc;
  (* When control comes back (fiber preempted or finished), the core
     parks in its idle context: the thread's state is saved into SVA
     and it becomes resumable from any core (work stealing). *)
  match fiber.cont with
  | Some cont ->
      fiber.cont <- None;
      Effect.Deep.continue cont ();
      Sva.swap_idle k.Kernel.sva
  | None ->
      Effect.Deep.match_with fiber.body ()
        {
          retc = (fun () -> fiber.done_ <- true);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (cont : (a, _) Effect.Deep.continuation) ->
                      fiber.cont <- Some cont;
                      Queue.push fiber t.queues.(fiber.home))
              | _ -> None);
        };
      Sva.swap_idle k.Kernel.sva

let run ?(timer_period = default_timer_period) t =
  let k = t.kernel in
  let m = k.Kernel.machine in
  if t.active then invalid_arg "Sched.run: already running";
  t.active <- true;
  let saved_preempt = k.Kernel.preempt in
  k.Kernel.preempt <-
    (fun () ->
      if t.active && Machine.timer_pending m then begin
        Machine.ack_timer m;
        t.preemptions <- t.preemptions + 1;
        Effect.perform Yield
      end);
  (* Blocking syscalls park here: yield the fiber back to the run
     queue and tell the caller to retry once it is resumed.  Without a
     scheduler the default hook leaves EAGAIN semantics in place. *)
  let saved_block = k.Kernel.block in
  k.Kernel.block <-
    (fun () ->
      if t.active then begin
        Effect.perform Yield;
        true
      end
      else false);
  Machine.arm_timer m ~period:timer_period;
  Fun.protect
    ~finally:(fun () ->
      Machine.disarm_timer m;
      k.Kernel.preempt <- saved_preempt;
      k.Kernel.block <- saved_block;
      t.active <- false)
    (fun () ->
      while pending t > 0 do
        let cpu = choose_core t in
        Machine.switch_core m cpu;
        if Queue.is_empty t.queues.(cpu) then steal_into t cpu;
        if not (Queue.is_empty t.queues.(cpu)) then begin
          let fiber = Queue.pop t.queues.(cpu) in
          dispatch t fiber
        end
      done)
