(* Per-process syscall-flow-integrity state.

   A policy object pairs an {!Vg_compiler.Sfip} transition graph with a
   cursor: the last syscall this process issued (or "none yet").  The
   dispatcher consults it on every numbered entry; the ring path scans
   a whole batch against it before executing anything.  [Record] mode
   never refuses — it grows the graph instead, which is how profiles
   are extracted for OCaml-closure apps (IR apps get theirs statically
   from [Sfip.extract]). *)

module Sfip = Vg_compiler.Sfip

type mode = Record | Enforce

type t = {
  graph : Sfip.graph;
  mode : mode;
  mutable last : int;  (* sysno of the previous syscall; -1 = entry state *)
  mutable killed : bool;
}

let n = Syscall_abi.Sysno.count
let create mode graph = { graph; mode; last = -1; killed = false }
let record () = create Record (Sfip.create ~n)
let enforce graph = create Enforce graph
let graph t = t.graph
let mode t = t.mode
let killed t = t.killed
let kill t = t.killed <- true
let last t = if t.last < 0 then None else Syscall_abi.Sysno.of_int t.last

(* Would [sysno] be in-policy as the next syscall?  Pure: no cursor
   motion, no graph growth. *)
let permits t sysno =
  let s = Syscall_abi.Sysno.to_int sysno in
  match t.mode with
  | Record -> true
  | Enforce ->
      if t.last < 0 then Sfip.entry_allowed t.graph s
      else Sfip.allowed t.graph ~from:t.last ~to_:s

(* Commit [sysno] as issued: record-mode grows the graph, both modes
   advance the cursor. *)
let note t sysno =
  let s = Syscall_abi.Sysno.to_int sysno in
  (match t.mode with
  | Record ->
      if t.last < 0 then Sfip.allow_entry t.graph s
      else Sfip.allow t.graph ~from:t.last ~to_:s
  | Enforce -> ());
  t.last <- s

(* Whole-batch verdict, from the current cursor, committing nothing:
   returns the index of the first out-of-policy entry.  Used by
   [ring_enter] to check a batch before executing any of it; the
   batch-split/single-submit agreement property in the tests is a
   property of this function plus [note]. *)
let scan t sysnos =
  match t.mode with
  | Record -> Ok ()
  | Enforce ->
      let last = ref t.last in
      let verdict = ref (Ok ()) in
      (try
         Array.iteri
           (fun i s ->
             let s = Syscall_abi.Sysno.to_int s in
             let ok =
               if !last < 0 then Sfip.entry_allowed t.graph s
               else Sfip.allowed t.graph ~from:!last ~to_:s
             in
             if not ok then begin
               verdict := Error i;
               raise Exit
             end;
             last := s)
           sysnos
       with Exit -> ());
      !verdict

(* Simulated cost of one transition check: a couple of loads and a bit
   test against the in-SVA bitmatrix.  Charged (under [Obs.Tag.Sfip])
   only when a policy is attached, so sfip-off cycle counts are
   untouched. *)
let check_cycles = 6

let of_profile bytes =
  if Bytes.length bytes = 0 then None
  else Option.map enforce (Sfip.of_bytes bytes)

let to_profile t = Sfip.to_bytes t.graph

let resolve_extern name =
  let strip p =
    let lp = String.length p in
    if String.length name > lp && String.sub name 0 lp = p then
      Some (String.sub name lp (String.length name - lp))
    else None
  in
  let base =
    match strip "extern." with Some b -> Some b | None -> strip "sva."
  in
  Option.bind base (fun b ->
      Option.map Syscall_abi.Sysno.to_int (Syscall_abi.Sysno.of_name b))

let extract ?entries image =
  Sfip.extract ~resolve:resolve_extern ~n ?entries image

let pp fmt t =
  Sfip.pp
    ~name:(fun s ->
      match Syscall_abi.Sysno.of_int s with
      | Some s -> Syscall_abi.Sysno.to_name s
      | None -> string_of_int s)
    fmt t.graph
