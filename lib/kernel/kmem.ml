type t = {
  sva : Sva.t;
  machine : Machine.t;
  mode : Sva.mode;
  mitigation : Vg_compiler.Mitigation.t;
  mutable faults : int;
}

let create ?(mitigation = Vg_compiler.Mitigation.Off) sva =
  {
    sva;
    machine = Sva.machine sva;
    mode = Sva.mode sva;
    mitigation;
    faults = 0;
  }

let sva t = t.sva
let machine t = t.machine
let mode t = t.mode
let faulted_accesses t = t.faults

(* The Spectre hardening the kernel was compiled under costs extra
   cycles per memory operand, exactly as the instrumented-IR path pays
   them: an lfence before every access under [Fence], or the two
   instructions by which the branchless mask exceeds the predicated
   window under [Safe_mask]. *)
let spec_surcharge t n =
  match t.mitigation with
  | Vg_compiler.Mitigation.Off -> ()
  | Vg_compiler.Mitigation.Fence ->
      Machine.charge ~tag:Obs.Tag.Spec t.machine
        (n * Vg_compiler.Fence_pass.fence_cycles)
  | Vg_compiler.Mitigation.Safe_mask ->
      Machine.charge ~tag:Obs.Tag.Spec t.machine
        (n * (Vg_compiler.Sandbox_pass.safe_mask_instructions - Cost.sandbox_mask))

let effective t addr =
  match t.mode with
  | Sva.Native_build -> addr
  | Sva.Virtual_ghost ->
      Machine.charge ~tag:Obs.Tag.Mask t.machine Cost.sandbox_mask;
      spec_surcharge t 1;
      Vg_compiler.Sandbox_pass.masked_address addr

(* A masked access that still faulted: under Virtual Ghost that means
   instrumented kernel code aimed at memory the sandbox denies it
   (e.g. a ghost address forced out of range) — a defence engaging, so
   it must not pass silently. *)
let fault t what addr =
  t.faults <- t.faults + 1;
  if t.mode = Sva.Virtual_ghost && Machine.tracing t.machine then
    Machine.emit t.machine
      (Obs.Event.Security
         {
           subsystem = "sandbox";
           detail = Printf.sprintf "masked kernel %s at %s faulted" what (U64.to_hex addr);
         })

(* Kernel accesses always run at kernel privilege; restore afterwards so
   interleaved user-level code is unaffected. *)
let as_kernel t f =
  let saved = Machine.privilege t.machine in
  Machine.set_privilege t.machine Machine.Kernel;
  Fun.protect ~finally:(fun () -> Machine.set_privilege t.machine saved) f

let load t addr ~len =
  let ea = effective t addr in
  as_kernel t (fun () ->
      try Machine.read_virt t.machine ea ~len
      with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
        fault t "load" addr;
        0L)

let store t addr ~len v =
  let ea = effective t addr in
  as_kernel t (fun () ->
      try Machine.write_virt t.machine ea ~len v
      with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ -> fault t "store" addr)

let read_bytes t addr ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  as_kernel t (fun () ->
      while !pos < len do
        let va = Int64.add addr (Int64.of_int !pos) in
        let page_off = Int64.to_int (Int64.logand va 0xfffL) in
        let chunk = min (len - !pos) (4096 - page_off) in
        let ea = effective t va in
        (try
           Bytes.blit (Machine.read_bytes_virt t.machine ea ~len:chunk) 0 out !pos chunk
         with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
           fault t "read" va;
           Bytes.fill out !pos chunk '\000');
        pos := !pos + chunk
      done);
  out

let write_bytes t addr src =
  let len = Bytes.length src in
  let pos = ref 0 in
  as_kernel t (fun () ->
      while !pos < len do
        let va = Int64.add addr (Int64.of_int !pos) in
        let page_off = Int64.to_int (Int64.logand va 0xfffL) in
        let chunk = min (len - !pos) (4096 - page_off) in
        let ea = effective t va in
        (try Machine.write_bytes_virt t.machine ea (Bytes.sub src !pos chunk)
         with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
           fault t "write" va);
        pos := !pos + chunk
      done)

(* [n * (mem_access + sandbox_mask)] split by distributivity so the
   mask surcharge is attributed separately; the total is unchanged. *)
let work t n =
  Machine.charge ~tag:Obs.Tag.Kernel_work t.machine (n * Cost.mem_access);
  match t.mode with
  | Sva.Native_build -> ()
  | Sva.Virtual_ghost ->
      Machine.charge ~tag:Obs.Tag.Mask t.machine (n * Cost.sandbox_mask);
      spec_surcharge t n

let fn_entry t =
  match t.mode with
  | Sva.Native_build -> ()
  | Sva.Virtual_ghost -> Machine.charge ~tag:Obs.Tag.Cfi t.machine Cost.cfi_call
