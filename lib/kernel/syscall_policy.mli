(** Per-process syscall-flow-integrity (SFIP) state.

    Pairs an {!Vg_compiler.Sfip} transition graph with the process's
    cursor (its last-issued sysno).  {!Dispatch} consults {!permits} /
    {!note} on every numbered syscall; the ring path uses {!scan} to
    vet a whole batch — intra-batch transitions included — before
    executing any entry.  [Record]-mode policies never refuse: they
    grow the graph, which is how profiles are extracted by running a
    workload (OCaml-closure apps); IR apps and modules get theirs
    statically via {!extract}. *)

type mode = Record | Enforce

type t

val create : mode -> Vg_compiler.Sfip.graph -> t
(** Fresh cursor (entry state) over [graph].  Graphs may be shared:
    worker processes recording into one accumulator each hold their own
    cursor. *)

val record : unit -> t
(** [create Record] over an empty graph sized to the ABI. *)

val enforce : Vg_compiler.Sfip.graph -> t

val graph : t -> Vg_compiler.Sfip.graph
val mode : t -> mode
val last : t -> Syscall_abi.Sysno.t option
(** [None] in the entry state. *)

val killed : t -> bool
val kill : t -> unit

val permits : t -> Syscall_abi.Sysno.t -> bool
(** Would this sysno be in-policy next?  Pure — no cursor motion. *)

val note : t -> Syscall_abi.Sysno.t -> unit
(** Commit a sysno as issued: [Record] grows the graph, both modes
    advance the cursor. *)

val scan : t -> Syscall_abi.Sysno.t array -> (unit, int) result
(** Whole-batch verdict from the current cursor, committing nothing;
    [Error k] is the index of the first out-of-policy entry.  Agrees
    with submitting the entries one at a time (qcheck-pinned). *)

val check_cycles : int
(** Simulated cycles per transition check, charged under
    [Obs.Tag.Sfip] only when a policy is attached. *)

val of_profile : bytes -> t option
(** Decode a signed app image's profile section into an [Enforce]
    policy.  Empty bytes (an unprofiled image) is [None]. *)

val to_profile : t -> bytes
(** Serialize the graph for embedding in an app image
    ({!Vg_sva.Appimage.install}'s [?profile]). *)

val resolve_extern : string -> int option
(** ["extern.read"] / ["sva.read"] -> [Some 0]: the resolver the kernel
    binds into the trans-cache ({!Vg_compiler.Trans_cache.set_syscall_resolver})
    and uses for static extraction. *)

val extract : ?entries:string list -> Vg_compiler.Linker.image -> Vg_compiler.Sfip.graph
(** Static extraction from a linked image over this kernel's ABI. *)

val pp : Format.formatter -> t -> unit
(** Dump the graph with syscall names ([vgsim policy]). *)
