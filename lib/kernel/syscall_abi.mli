(** The numbered system-call ABI.

    One generated table maps syscall numbers to names, register
    arities and result codecs.  Typed {!Syscalls} wrappers,
    loadable-module overrides ({!Module_loader}) and the batched
    submission ring ({!Syscall_ring}) all address kernel entry points
    through this numbering, and every result crossing the boundary
    goes through the single encode/decode convention defined here —
    there is no other path for a handler's value to reach user
    registers.

    {!Sysno.t} is a private int: the only ways to obtain one are the
    [sys_*] values, {!Sysno.of_int} (bounds-checked — this is where
    the ring's raw wire numbers are laundered) and {!Sysno.of_name}.
    Holding a [Sysno.t] therefore proves validity, which is why
    {!describe}, {!Sysno.to_name}, {!arity} and {!codec} are total. *)

(** {1 Validated syscall numbers} *)

module Sysno : sig
  type t = private int

  val count : int
  (** Size of the table; numbers are [0 .. count-1]. *)

  val of_int : int -> t option
  (** The only entry point for untrusted raw numbers (ring SQEs). *)

  val to_int : t -> int
  val of_name : string -> t option

  val to_name : t -> string
  (** Total: every [t] has a name.  Inverse of {!of_name}. *)

  val all : t list
  (** Every syscall, in numbering order. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
end

(** {1 Descriptors} *)

type result_codec =
  | Int_result
      (** non-negative payload or [-Errno.to_int e]; lossless because
          [Errno.to_int] is injective *)
  | Addr_result
      (** full 64-bit addresses; only the Linux [MAP_FAILED] window
          [-4096, -1] decodes as an errno, so ghost-region pointers
          high in the canonical hole pass through verbatim *)

type desc = { name : string; arity : int; codec : result_codec }

val describe : Sysno.t -> desc
val arity : Sysno.t -> int
val codec : Sysno.t -> result_codec

(** {1 Syscall numbers} *)

val sys_read : Sysno.t
val sys_write : Sysno.t
val sys_open : Sysno.t
val sys_close : Sysno.t
val sys_lseek : Sysno.t
val sys_unlink : Sysno.t
val sys_mkdir : Sysno.t
val sys_stat : Sysno.t
val sys_rename : Sysno.t
val sys_fstat : Sysno.t
val sys_dup2 : Sysno.t
val sys_readdir : Sysno.t
val sys_fsync : Sysno.t
val sys_getpid : Sysno.t
val sys_fork : Sysno.t
val sys_execve : Sysno.t
val sys_exit : Sysno.t
val sys_wait : Sysno.t
val sys_mmap : Sysno.t
val sys_munmap : Sysno.t
val sys_allocgm : Sysno.t
val sys_freegm : Sysno.t
val sys_signal : Sysno.t
val sys_kill : Sysno.t
val sys_sigreturn : Sysno.t
val sys_pipe : Sysno.t
val sys_listen : Sysno.t
val sys_accept : Sysno.t
val sys_connect : Sysno.t
val sys_send : Sysno.t
val sys_recv : Sysno.t
val sys_select : Sysno.t
val sys_poll : Sysno.t
val sys_set_blocking : Sysno.t
val sys_ring_enter : Sysno.t

(** {1 Entries}

    The first-class shape of one kernel entry point: its number, wire
    metadata, and a handler.  {!Dispatch} keeps a registry of
    [handler Entry.t] and is the one place where decode → policy-check
    → handler → encode happens; the ['h] parameter keeps this module
    free of kernel types. *)

module Entry : sig
  type 'h t = private {
    sysno : Sysno.t;
    name : string;
    arity : int;
    codec : result_codec;
    handler : 'h;
  }

  val make : Sysno.t -> 'h -> 'h t
  (** Name, arity and codec are filled in from the table — an entry
      cannot disagree with the ABI descriptor for its number. *)
end

(** {1 Result codecs}

    Encode/decode are OCaml-level: the simulated cost of moving a
    result register is already part of the trap protocol, so these
    charge no cycles. *)

val encode_int : int Errno.result -> int64
val decode_int : int64 -> int Errno.result
val encode_addr : int64 Errno.result -> int64
val decode_addr : int64 -> int64 Errno.result

val encode : result_codec -> int64 Errno.result -> int64
val decode : result_codec -> int64 -> int64 Errno.result
