(** The numbered system-call ABI.

    One table maps syscall numbers to names, register arities and
    result codecs.  Typed {!Syscalls} wrappers, loadable-module
    overrides ({!Module_loader}) and the batched submission ring
    ({!Syscall_ring}) all address kernel entry points through this
    numbering, and every result crossing the boundary goes through the
    single encode/decode convention defined here — there is no other
    path for a handler's value to reach user registers. *)

(** {1 Syscall numbers} *)

val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_lseek : int
val sys_unlink : int
val sys_mkdir : int
val sys_stat : int
val sys_rename : int
val sys_fstat : int
val sys_dup2 : int
val sys_readdir : int
val sys_fsync : int
val sys_getpid : int
val sys_fork : int
val sys_execve : int
val sys_exit : int
val sys_wait : int
val sys_mmap : int
val sys_munmap : int
val sys_allocgm : int
val sys_freegm : int
val sys_signal : int
val sys_kill : int
val sys_sigreturn : int
val sys_pipe : int
val sys_listen : int
val sys_accept : int
val sys_connect : int
val sys_send : int
val sys_recv : int
val sys_select : int
val sys_poll : int
val sys_set_blocking : int
val sys_ring_enter : int

(** {1 Descriptors} *)

type result_codec =
  | Int_result
      (** non-negative payload or [-Errno.to_int e]; lossless because
          [Errno.to_int] is injective *)
  | Addr_result
      (** full 64-bit addresses; only the Linux [MAP_FAILED] window
          [-4096, -1] decodes as an errno, so ghost-region pointers
          high in the canonical hole pass through verbatim *)

type desc = { name : string; arity : int; codec : result_codec }

val max_sysno : int
val is_valid : int -> bool
val describe : int -> desc option
val name_of_number : int -> string option
val number_of_name : string -> int option

(** {1 Result codecs}

    Encode/decode are OCaml-level: the simulated cost of moving a
    result register is already part of the trap protocol, so these
    charge no cycles. *)

val encode_int : int Errno.result -> int64
val decode_int : int64 -> int Errno.result
val encode_addr : int64 Errno.result -> int64
val decode_addr : int64 -> int64 Errno.result

val encode : result_codec -> int64 Errno.result -> int64
val decode : result_codec -> int64 -> int64 Errno.result
