(** The system-call layer.

    Every call performs the full trap protocol: context switch to the
    calling process if needed, {!Sva.enter_trap} (Interrupt Context
    save — into SVA memory under Virtual Ghost — plus register
    zeroing), instrumented dispatch work, the handler, result
    write-back into the saved context, and {!Sva.return_from_trap}.
    Buffer arguments are user virtual addresses: the kernel moves data
    with its instrumented accessors, so a pointer into ghost memory
    passed to a Virtual Ghost kernel simply does not reach the
    application's data (which is why the ghosting libc wrappers copy
    through traditional memory).

    Dispatch is unified over the numbered ABI ({!Syscall_abi}): every
    register-argument call runs through {!Dispatch.run} — shared by
    the typed wrappers here, the batched submission ring
    ({!ring_enter}) and loadable-module overrides ({!Module_loader},
    keyed by {!Syscall_abi.Sysno.t}) — so an overridden call behaves
    identically whether it arrives by trap or by ring, and every
    result crosses the boundary through the single {!Syscall_abi}
    codec.  This module registers the builtin {!Syscall_abi.Entry}
    records into {!Dispatch} at initialisation.

    Syscall-flow integrity: processes carrying a {!Syscall_policy} get
    every call — numbered or typed-only, trap or ring — checked
    against their transition graph; out-of-policy sequences kill the
    process with one [Security{sfip}] event and [ESFIP].  [exit]
    remains always-allowed, and unprofiled processes are charged
    nothing. *)

type open_flags = { create : bool; truncate : bool; append : bool }

val rdonly : open_flags
val creat_trunc : open_flags

(** {1 Files} *)

val open_ : Kernel.t -> Proc.t -> string -> open_flags -> int Errno.result
val close : Kernel.t -> Proc.t -> int -> unit Errno.result
val read : Kernel.t -> Proc.t -> fd:int -> buf:int64 -> len:int -> int Errno.result
val write : Kernel.t -> Proc.t -> fd:int -> buf:int64 -> len:int -> int Errno.result
val lseek : Kernel.t -> Proc.t -> fd:int -> pos:int -> int Errno.result
val unlink : Kernel.t -> Proc.t -> string -> unit Errno.result
val mkdir : Kernel.t -> Proc.t -> string -> unit Errno.result
val stat : Kernel.t -> Proc.t -> string -> Diskfs.stat Errno.result
val rename : Kernel.t -> Proc.t -> src:string -> dst:string -> unit Errno.result
val fstat : Kernel.t -> Proc.t -> fd:int -> Diskfs.stat Errno.result
val dup2 : Kernel.t -> Proc.t -> src:int -> dst:int -> unit Errno.result
(** Make descriptor [dst] refer to the same open object as [src]
    (closing whatever [dst] held). *)

val readdir : Kernel.t -> Proc.t -> string -> (string * int) list Errno.result
(** Directory listing of a path (getdents-style). *)

val fsync : Kernel.t -> Proc.t -> unit Errno.result

(** {1 Processes} *)

val getpid : Kernel.t -> Proc.t -> int
(** Also the "null syscall" of the LMBench table. *)

val fork : Kernel.t -> Proc.t -> Proc.t Errno.result
(** Returns the child process object (the runtime decides when its
    closure runs). *)

val execve : Kernel.t -> Proc.t -> Appimage.t -> unit Errno.result
(** Copies the image text into user memory and reinitialises the
    Interrupt Context through the VM (signature check, key recovery). *)

val exit_ : Kernel.t -> Proc.t -> int -> unit

val wait : ?block:bool -> Kernel.t -> Proc.t -> (int * int) Errno.result
(** Reap a zombie child: [Ok (pid, status)]; [ECHILD] with none.
    Default [block:false] keeps the historical contract — [EAGAIN]
    while children run (LMBench drives the reap loop itself).  With
    [block:true] the caller sleeps on the kernel's child waitqueue
    until a child exits (requires the {!Sched} block hook; without a
    scheduler it still returns [EAGAIN]). *)

(** {1 Memory} *)

val mmap : Kernel.t -> Proc.t -> len:int -> int64 Errno.result
(** Anonymous mapping; returns its base address. *)

val munmap : Kernel.t -> Proc.t -> addr:int64 -> len:int -> unit Errno.result

val allocgm : Kernel.t -> Proc.t -> va:int64 -> pages:int -> unit Errno.result
(** Ghost-memory allocation: the kernel supplies frames and the VM
    checks, zeroes and maps them. *)

val freegm : Kernel.t -> Proc.t -> va:int64 -> pages:int -> unit Errno.result

(** {1 Signals} *)

val signal : Kernel.t -> Proc.t -> signum:int -> handler:int64 -> unit Errno.result
val kill : Kernel.t -> Proc.t -> pid:int -> signum:int -> unit Errno.result
(** Delivers via [sva.ipush.function]; under Virtual Ghost an
    unregistered handler target is refused by the VM (the delivery is
    dropped and logged). *)

val sigreturn : Kernel.t -> Proc.t -> unit Errno.result

(** {1 Pipes, sockets, select} *)

val pipe : Kernel.t -> Proc.t -> (int * int) Errno.result
val listen : Kernel.t -> Proc.t -> port:int -> int Errno.result
val accept : Kernel.t -> Proc.t -> fd:int -> int Errno.result
(** [EAGAIN] when no connection is pending. *)

val connect_to : Kernel.t -> Proc.t -> Netstack.addr -> int Errno.result
(** Outbound connection to a unified address — [Local port] is the far
    harness NIC endpoint, [Peer {node; port}] a fleet sibling over the
    fabric; returns a connected socket descriptor.  [ECONNREFUSED] for
    a [Peer] address when no fabric is attached. *)

val connect : Kernel.t -> Proc.t -> port:int -> int Errno.result
(** [connect k proc ~port] = [connect_to k proc (Local port)]. *)

val send : Kernel.t -> Proc.t -> fd:int -> buf:int64 -> len:int -> int Errno.result
val recv : Kernel.t -> Proc.t -> fd:int -> buf:int64 -> len:int -> int Errno.result
val select : Kernel.t -> Proc.t -> int list -> int list Errno.result
(** Subset of the given descriptors that are ready, in one
    non-consuming level-triggered scan (never blocks). *)

val poll : Kernel.t -> Proc.t -> int list -> int list Errno.result
(** Level-triggered readiness over a descriptor set, backed by kernel
    waitqueues.  An empty set returns [Ok []] at once.  When nothing
    is ready and the {!Sched} block hook is installed, the caller
    sleeps on every descriptor's waitqueue and re-scans on wakeup;
    without a scheduler it degrades to one scan.  Readiness is
    non-consuming: a listener with a pending connection stays ready
    until accepted. *)

val set_blocking : Kernel.t -> Proc.t -> fd:int -> bool -> unit Errno.result
(** Opt a descriptor into (or out of) blocking reads/accepts: when
    blocking, [read]/[recv]/[accept] sleep on the descriptor's
    waitqueue instead of returning [EAGAIN].  Descriptors are born
    non-blocking. *)

(** {1 The submission ring} *)

val ring_enter :
  Kernel.t -> Proc.t -> ring:int64 -> depth:int -> to_submit:int -> int Errno.result
(** One trap, many dispatches: consume up to [to_submit] submission
    entries from the ring at traditional-memory address [ring] (layout
    {!Syscall_ring}, [depth] slots), run each through the numbered
    dispatch, and write ABI-encoded completions.  Returns the number
    of entries consumed.  [EFAULT] if [ring] is not a traditional user
    address; entry {e buffers} pointing into ghost memory are defused
    by the instrumented accessors exactly as in a direct call. *)

(** {1 Module machinery} *)

val genuine_read : Kernel.t -> Proc.t -> fd:int -> buf:int64 -> len:int -> int Errno.result
(** The built-in read handler, bypassing any module override — exposed
    so modules can chain to it (registered as [extern.genuine_read]). *)

val register_builtin_externs : Kernel.t -> unit
(** Install the kernel helper API modules link against:
    [extern.genuine_read], [extern.klog], [extern.kmmap],
    [extern.copyout], [extern.signal_install], [extern.kill],
    [extern.open_for_attacker], [extern.io_write]. *)
