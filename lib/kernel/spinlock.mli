(** Kernel spinlocks over the simulated cores.

    Cores interleave at syscall granularity, so what a spinlock costs
    here is what it costs on real SMP hardware in the uncontended-
    but-shared case: the coherence miss when the lock's cache line
    migrates between cores.  Cross-core acquisition charges
    {!Cost.lock_transfer} and emits a [Lock_contend] event; same-core
    reacquisition — and {e everything} on a 1-CPU machine — is free,
    exactly as uniprocessor kernel builds compile spinlocks away.

    Ownership is enforced: acquiring a held lock or releasing one you
    do not hold raises {!Error} (a kernel bug, loudly). *)

type t

exception Error of string

val create : Machine.t -> name:string -> t

val acquire : t -> unit
(** @raise Error if the lock is already held. *)

val release : t -> unit
(** @raise Error if the current core does not hold the lock. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [acquire]; run; [release] (also on exception). *)

val name : t -> string

val holder : t -> int option
(** The core inside the critical section, if any. *)

val held_by_current : t -> bool
(** Does the current core hold the lock?  (Used by subsystems whose
    internal operations nest — same-core nesting is not contention.) *)

val acquisitions : t -> int

val transfers : t -> int
(** How many acquisitions paid the cross-core cache-line transfer. *)
