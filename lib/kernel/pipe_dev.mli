(** Kernel pipe object: a bounded byte queue with reader/writer
    reference counts.  The scheduler is cooperative, so operations
    never block: reads from an empty pipe report [EAGAIN] while writers
    remain, end-of-file once they are gone. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 64 KiB. *)

val add_reader : t -> unit
val add_writer : t -> unit
val drop_reader : t -> unit
val drop_writer : t -> unit

val read : t -> int -> bytes Errno.result
(** [read t n] pops up to [n] bytes.  Empty pipe: [Error EAGAIN] if a
    writer exists, [Ok empty] (EOF) otherwise. *)

val write : t -> bytes -> int Errno.result
(** Appends as much as capacity allows, returning the count; [EPIPE]
    with no reader, [EAGAIN] when completely full. *)

val bytes_available : t -> int
val room_available : t -> int

val readable : t -> bool
(** Bytes are buffered, or EOF (no writers) — a read returns at once. *)

val writable : t -> bool
(** Space remains, or EPIPE (no readers) — a write returns at once. *)

(** {1 Readiness} *)

val read_wq : t -> Waitq.t
(** Woken when bytes arrive or the last writer leaves (EOF edge). *)

val write_wq : t -> Waitq.t
(** Woken when space frees up or the last reader leaves (EPIPE edge). *)
