(* The one place a numbered syscall happens.

   Typed wrappers ([Syscalls.via]), the submission ring and loadable
   modules all call {!run}: raw sysno validation ([Sysno.of_int]),
   syscall-flow policy check, override-or-builtin handler, and result
   encoding live here and nowhere else.  PR 5's [dispatch_numbered]
   if/else chain and [with_override] are gone; handlers are
   [Syscall_abi.Entry] records registered by [Syscalls] at module
   initialisation. *)

type origin = Trap | Ring

let origin_to_string = function Trap -> "trap" | Ring -> "ring"

(* A handler takes register arguments and produces a result for the
   entry's codec.  [None] marks syscalls whose arguments cannot be
   carried in registers in this simulation (paths, struct results,
   process handles): they keep their Entry record — name, arity and
   codec stay table-driven — but report [ENOSYS] when addressed by
   number. *)
type handler = Kernel.t -> Proc.t -> int64 array -> int64 Errno.result

type entry = handler option Syscall_abi.Entry.t

let table : entry option array = Array.make Syscall_abi.Sysno.count None

let register (e : entry) =
  table.(Syscall_abi.Sysno.to_int e.Syscall_abi.Entry.sysno) <- Some e

let entry sysno = table.(Syscall_abi.Sysno.to_int sysno)

let entries () =
  List.filter_map (fun s -> table.(Syscall_abi.Sysno.to_int s)) Syscall_abi.Sysno.all

(* Tearing down a policy-killed process needs the syscall bodies
   (close, freegm...), which live above us in [Syscalls]; it installs
   the real teardown at init. *)
let on_kill : (Kernel.t -> Proc.t -> unit) ref = ref (fun _ _ -> ())

(* ------------------------------------------------------------------ *)
(* Syscall-flow integrity                                              *)

let violation_detail (proc : Proc.t) pol ~origin ~name ~batch_index =
  let prev =
    match Syscall_policy.last pol with
    | Some p -> Syscall_abi.Sysno.to_name p
    | None -> "<entry>"
  in
  Printf.sprintf "pid %d: %s -> %s outside profile (%s%s)" proc.Proc.pid prev
    name (origin_to_string origin)
    (match batch_index with
    | None -> ""
    | Some i -> Printf.sprintf ", batch entry %d" i)

(* Kill the process: one [Security{sfip}] event, the policy latched to
   refused, and the exit-style teardown.  The caller still runs the
   trap epilogue — the SVA thread stays alive so the ESFIP result can
   be written back and later (doomed) syscalls refuse cleanly instead
   of crashing the simulator. *)
let violate k (proc : Proc.t) pol ~origin ~name ~batch_index =
  Syscall_policy.kill pol;
  Machine.emit k.Kernel.machine
    (Obs.Event.Security
       {
         subsystem = "sfip";
         detail = violation_detail proc pol ~origin ~name ~batch_index;
       });
  Console.write
    (Machine.console k.Kernel.machine)
    ("vg: sfip kill: " ^ violation_detail proc pol ~origin ~name ~batch_index);
  !on_kill k proc;
  Error Errno.ESFIP

(* Per-entry policy gate.  Unprofiled processes pay nothing — not even
   a cycle charge — so sfip-off runs are byte-identical. *)
let guard k (proc : Proc.t) ~origin sysno =
  match proc.Proc.policy with
  | None -> Ok ()
  | Some pol ->
      if Syscall_policy.killed pol then Error Errno.ESFIP
      else begin
        Machine.charge ~tag:Obs.Tag.Sfip k.Kernel.machine
          Syscall_policy.check_cycles;
        if Syscall_policy.permits pol sysno then begin
          Syscall_policy.note pol sysno;
          Ok ()
        end
        else
          violate k proc pol ~origin
            ~name:(Syscall_abi.Sysno.to_name sysno)
            ~batch_index:None
      end

(* Whole-batch gate for [ring_enter]: scan the submitted sequence —
   intra-batch transitions included — against the policy before any
   entry executes.  [Error ESFIP] means the batch ran nothing; the
   per-entry charge is paid here, so in-policy entries later commit
   with [prechecked:true] for free (that is the amortisation the bench
   measures). *)
let precheck k (proc : Proc.t) (sysnos : Syscall_abi.Sysno.t array) =
  match proc.Proc.policy with
  | None -> Ok ()
  | Some pol ->
      if Syscall_policy.killed pol then Error Errno.ESFIP
      else begin
        Machine.charge ~tag:Obs.Tag.Sfip k.Kernel.machine
          (Syscall_policy.check_cycles * Array.length sysnos);
        match Syscall_policy.scan pol sysnos with
        | Ok () -> Ok ()
        | Error i ->
            violate k proc pol ~origin:Ring
              ~name:(Syscall_abi.Sysno.to_name sysnos.(i))
              ~batch_index:(Some i)
      end

(* Commit one prechecked ring entry: advance the cursor (and grow
   record-mode graphs) without re-charging or re-judging. *)
let commit_prechecked (proc : Proc.t) sysno =
  match proc.Proc.policy with
  | None -> ()
  | Some pol -> Syscall_policy.note pol sysno

(* ------------------------------------------------------------------ *)
(* Module override execution                                           *)

let run_override (k : Kernel.t) proc (ov : Kernel.syscall_override) args : int64 =
  let machine = k.Kernel.machine in
  (* Under Virtual Ghost, module code is sandbox-instrumented: an access
     the sandbox forced out of range faults here and is absorbed.  That
     absorbed fault is the defence engaging, so report it. *)
  let sandbox_fault what addr =
    if Sva.mode k.Kernel.sva = Sva.Virtual_ghost && Machine.tracing machine then
      Machine.emit machine
        (Obs.Event.Security
           {
             subsystem = "sandbox";
             detail =
               Printf.sprintf "module %s at %s denied" what (U64.to_hex addr);
           })
  in
  let env =
    {
      Vg_compiler.Executor.null_env with
      load =
        (fun addr width ->
          try Machine.read_virt machine addr ~len:(Ir.bytes_of_width width)
          with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
            sandbox_fault "load" addr;
            0L);
      store =
        (fun addr width v ->
          try Machine.write_virt machine addr ~len:(Ir.bytes_of_width width) v
          with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
            sandbox_fault "store" addr);
      memcpy =
        (fun ~dst ~src ~len ->
          try Machine.memcpy_virt machine ~dst ~src ~len:(Int64.to_int len)
          with Machine.Page_fault _ | Phys_mem.Bad_physical_address _ ->
            sandbox_fault "memcpy" src);
      io_read = (fun port -> Sva.io_read k.Kernel.sva ~port);
      io_write =
        (fun port v ->
          match Sva.io_write k.Kernel.sva ~port v with Ok () -> () | Error _ -> ());
      extern =
        (fun name args ->
          match Hashtbl.find_opt k.Kernel.module_externs name with
          | Some f -> f k proc args
          | None ->
              Console.write (Machine.console machine)
                ("module: call to unknown kernel symbol " ^ name);
              0L);
      charge = (fun tag n -> Machine.charge ~tag machine n);
      spec_depth = Machine.spec_depth machine;
      spec_load =
        (fun va width ->
          Machine.spec_load machine va ~len:(Ir.bytes_of_width width));
      spec_window = (fun () -> Machine.spec_window_opened machine);
    }
  in
  (* Engine dispatch.  A compiled artifact exists iff the kernel booted
     with the Compiled engine (and only via the verifying
     [Trans_cache.find_compiled] path); the Interp debug engine re-runs
     the instrumented IR on the reference interpreter over the same
     callbacks (it cannot model CFI — see {!Vg_compiler.Exec_engine});
     everything else is the slot-file executor. *)
  match ov.Kernel.compiled with
  | Some artifact ->
      Vg_compiler.Exec_compile.run env artifact ov.Kernel.func args
  | None -> (
      match k.Kernel.engine with
      | Vg_compiler.Exec_engine.Interp ->
          let native = ov.Kernel.image.Vg_compiler.Linker.native in
          let ienv =
            {
              Interp.load = env.Vg_compiler.Executor.load;
              store = env.Vg_compiler.Executor.store;
              memcpy = env.Vg_compiler.Executor.memcpy;
              io_read = env.Vg_compiler.Executor.io_read;
              io_write = env.Vg_compiler.Executor.io_write;
              extern = env.Vg_compiler.Executor.extern;
              resolve_sym =
                (fun sym ->
                  match Vg_compiler.Native.addr_of_symbol native sym with
                  | Some a -> a
                  | None -> 0L);
              func_of_addr =
                (fun addr ->
                  List.find_map
                    (fun (s : Vg_compiler.Native.symbol) ->
                      if
                        Vg_compiler.Native.addr_of_index native
                          s.Vg_compiler.Native.entry
                        = addr
                      then Some s.Vg_compiler.Native.name
                      else None)
                    native.Vg_compiler.Native.symbols);
              charge = (fun n -> Machine.charge ~tag:Obs.Tag.Exec machine n);
              fence =
                (fun () ->
                  Machine.charge ~tag:Obs.Tag.Spec machine
                    Vg_compiler.Fence_pass.fence_cycles);
            }
          in
          Interp.run ienv ov.Kernel.program ov.Kernel.func args
      | Vg_compiler.Exec_engine.Slots | Vg_compiler.Exec_engine.Compiled ->
          Vg_compiler.Executor.run env ov.Kernel.image ov.Kernel.func args)

(* ------------------------------------------------------------------ *)
(* The unified dispatch                                                *)

(* Execute syscall [sysno] with register arguments: validate the
   number, run the policy gate, honour any module override, otherwise
   the registered builtin handler, and return the ABI-encoded result
   register.  Callers are expected to be inside a trap ([ring_enter])
   or a typed wrapper; this performs no trap protocol of its own.
   [prechecked] marks ring entries already vetted by {!precheck}. *)
let run k proc ~origin ?(prechecked = false) ~sysno (args : int64 array) : int64 =
  match Syscall_abi.Sysno.of_int sysno with
  | None -> Syscall_abi.encode_int (Error Errno.ENOSYS)
  | Some sysno when
      origin = Ring && Syscall_abi.Sysno.equal sysno Syscall_abi.sys_ring_enter
    ->
      (* No nested ring entry: a submitted ring_enter is not a syscall
         the batch path runs (and [precheck] skips it the same way). *)
      Syscall_abi.encode_int (Error Errno.ENOSYS)
  | Some sysno -> (
      let codec = Syscall_abi.codec sysno in
      let gate =
        if prechecked then begin
          commit_prechecked proc sysno;
          Ok ()
        end
        else guard k proc ~origin sysno
      in
      match gate with
      | Error e -> Syscall_abi.encode codec (Error e)
      | Ok () -> (
          match Hashtbl.find_opt k.Kernel.overrides sysno with
          | Some ov -> (
              (* Ring entries always carry four registers; the module
                 function takes the call's real arity. *)
              let arity = Syscall_abi.arity sysno in
              let args =
                if Array.length args > arity then Array.sub args 0 arity
                else args
              in
              try run_override k proc ov args
              with Vg_compiler.Executor.Cfi_violation msg ->
                Machine.emit k.Kernel.machine
                  (Obs.Event.Cfi_violation { detail = msg });
                Console.write
                  (Machine.console k.Kernel.machine)
                  ("vg: kernel thread terminated: " ^ msg);
                Syscall_abi.encode_int (Error Errno.EFAULT))
          | None -> (
              match entry sysno with
              | Some { Syscall_abi.Entry.handler = Some h; _ } ->
                  Syscall_abi.encode codec (h k proc args)
              | Some { Syscall_abi.Entry.handler = None; _ } | None ->
                  Syscall_abi.encode_int (Error Errno.ENOSYS))))
