(** A minimal connection-oriented network stack over the simulated NIC.

    Frames carry a one-byte type (SYN / DATA / FIN), a connection id and
    a port.  The kernel side demultiplexes received frames into
    per-connection inboxes and listener accept queues; {!module:Remote}
    is the matching client-side library the benchmark harness uses to
    play the iMac on the other end of the paper's dedicated gigabit
    link.  Wire time is charged by the NIC on transmit.

    A second, optional link class is the {e fleet fabric}: a dedicated
    NIC pair per node wired into a software switch
    ({!Vg_fleet.Fleet}).  Fabric frames prepend a 4-byte peer-node
    header to the ordinary frame; the classic wire format — and every
    cycle golden that depends on it — is untouched.  Both destinations
    are named by one {!addr} type so applications never special-case
    cross-node peers. *)

type t

(** {1 Addresses}

    The unified destination type: [Local port] is a listener on this
    machine's harness wire (the historical [connect ~port] path);
    [Peer {node; port}] is a listener on another fleet node reached
    over the fabric. *)

type addr = Local of int | Peer of { node : int; port : int }

val addr_to_wire : addr -> int64
(** Encode an address into one syscall argument: low 16 bits port,
    higher bits [node + 1] (zero for [Local]).  [Local port] encodes to
    exactly [port], so the syscall ABI of the pre-fleet form — and every
    SFIP profile over it — is unchanged. *)

val addr_of_wire : int64 -> addr
(** Inverse of {!addr_to_wire}. *)

val addr_to_string : addr -> string

val create : kmem:Kmem.t -> Nic.t -> t

val attach_fabric : t -> node:int -> Nic.t -> pump:(unit -> unit) -> unit
(** Plug this stack into a fleet fabric: [node] is our fleet-wide node
    id, the NIC is our side of a dedicated {!Nic.pair} into the switch,
    and [pump] runs the switch's forwarding loop (called from {!poll}
    before draining the fabric port). *)

val node_id : t -> int option
(** Our fleet node id, when a fabric is attached. *)

val listen : t -> port:int -> unit Errno.result
(** Open a listener; [EEXIST] if the port is taken. *)

val poll : t -> unit
(** Drain the NIC receive queue into inboxes/accept queues (the
    driver's interrupt handler; charged per frame).  With a fabric
    attached, also pumps the switch and drains the fabric port. *)

val accept : t -> port:int -> int option
(** Pop a pending connection id, polling first. *)

(** {1 Readiness (the poll syscall's view)} *)

val pending_accept : t -> port:int -> bool
(** A connection is waiting in the backlog (drains the NIC first;
    consumes nothing). *)

val conn_readable : t -> conn:int -> bool
(** Bytes are buffered or the peer has closed (EOF is readable). *)

val listen_wq : t -> port:int -> Waitq.t option
(** Woken on every SYN demuxed into this port's backlog. *)

val conn_wq : t -> conn:int -> Waitq.t option
(** Woken when data or FIN arrives on the connection. *)

val send : t -> conn:int -> bytes -> int Errno.result
(** Transmit data on a connection (routed over the link — wire or
    fabric — the connection was made on). *)

val recv : t -> conn:int -> int -> bytes Errno.result
(** Receive up to [n] bytes; [EAGAIN] when none pending and the peer
    has not closed; [Ok empty] after FIN. *)

val close : t -> conn:int -> unit
(** Send FIN and drop local state (pending inbox data is discarded). *)

val connect_to : t -> addr -> int Errno.result
(** Outbound connection to a unified address: allocate a connection id
    and send SYN over the right link.  [Peer _] with no fabric attached
    is [ECONNREFUSED].  [Local port] never fails and is
    cycle-identical to the historical {!connect}. *)

val connect : t -> port:int -> int
(** [connect t ~port] = [connect_to t (Local port)], kept as a compat
    shim for the pre-fleet API; the remote harness answers via
    {!Remote.accept}. *)

(** Client-side endpoint helpers (run "on the other machine"): they
    speak the same frame format directly on the remote NIC endpoint. *)
module Remote : sig
  type endpoint

  val connect : Nic.t -> port:int -> endpoint

  val accept : Nic.t -> endpoint option
  (** Server side of an outbound kernel connection: harvest a SYN
      frame, if one arrived. *)

  val send : endpoint -> bytes -> unit
  val recv : endpoint -> bytes option
  (** Pop the next data frame payload, if any ([None] = nothing yet). *)

  val recv_all_available : endpoint -> bytes
  val close : endpoint -> unit
  val conn_id : endpoint -> int
end
