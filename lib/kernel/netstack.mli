(** A minimal connection-oriented network stack over the simulated NIC.

    Frames carry a one-byte type (SYN / DATA / FIN), a connection id and
    a port.  The kernel side demultiplexes received frames into
    per-connection inboxes and listener accept queues; {!module:Remote}
    is the matching client-side library the benchmark harness uses to
    play the iMac on the other end of the paper's dedicated gigabit
    link.  Wire time is charged by the NIC on transmit. *)

type t

val create : kmem:Kmem.t -> Nic.t -> t

val listen : t -> port:int -> unit Errno.result
(** Open a listener; [EEXIST] if the port is taken. *)

val poll : t -> unit
(** Drain the NIC receive queue into inboxes/accept queues (the
    driver's interrupt handler; charged per frame). *)

val accept : t -> port:int -> int option
(** Pop a pending connection id, polling first. *)

(** {1 Readiness (the poll syscall's view)} *)

val pending_accept : t -> port:int -> bool
(** A connection is waiting in the backlog (drains the NIC first;
    consumes nothing). *)

val conn_readable : t -> conn:int -> bool
(** Bytes are buffered or the peer has closed (EOF is readable). *)

val listen_wq : t -> port:int -> Waitq.t option
(** Woken on every SYN demuxed into this port's backlog. *)

val conn_wq : t -> conn:int -> Waitq.t option
(** Woken when data or FIN arrives on the connection. *)

val send : t -> conn:int -> bytes -> int Errno.result
(** Transmit data on a connection. *)

val recv : t -> conn:int -> int -> bytes Errno.result
(** Receive up to [n] bytes; [EAGAIN] when none pending and the peer
    has not closed; [Ok empty] after FIN. *)

val close : t -> conn:int -> unit
(** Send FIN and drop local state (pending inbox data is discarded). *)

val connect : t -> port:int -> int
(** Outbound connection: allocate a connection id and send SYN; the
    remote harness answers via {!Remote.accept}. *)

(** Client-side endpoint helpers (run "on the other machine"): they
    speak the same frame format directly on the remote NIC endpoint. *)
module Remote : sig
  type endpoint

  val connect : Nic.t -> port:int -> endpoint

  val accept : Nic.t -> endpoint option
  (** Server side of an outbound kernel connection: harvest a SYN
      frame, if one arrived. *)

  val send : endpoint -> bytes -> unit
  val recv : endpoint -> bytes option
  (** Pop the next data frame payload, if any ([None] = nothing yet). *)

  val recv_all_available : endpoint -> bytes
  val close : endpoint -> unit
  val conn_id : endpoint -> int
end
