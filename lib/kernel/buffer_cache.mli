(** Write-back block buffer cache between the file system and the disk.

    Blocks are 4 KiB (8 disk sectors).  Reads miss to the disk once and
    then hit in memory; writes dirty the cached copy and reach the disk
    on eviction or {!sync}.  This mirrors the paper's Postmark
    configuration ("buffered file I/O"), which is what makes the file
    system benchmarks CPU-bound and therefore sensitive to kernel
    instrumentation overhead. *)

type t

val block_bytes : int
(** 4096. *)

val create : ?capacity:int -> kmem:Kmem.t -> Disk.t -> t
(** [capacity] is the number of cached blocks (default 1024 = 4 MiB). *)

val blocks : t -> int
(** Number of cacheable blocks on the underlying disk. *)

val read : t -> int -> bytes
(** [read t b] returns a copy of block [b]. *)

val write : t -> int -> bytes -> unit
(** Replace block [b] (short buffers are zero-padded). *)

val modify : t -> int -> (bytes -> unit) -> unit
(** In-place update of a cached block (marks it dirty). *)

val view : t -> int -> (bytes -> 'a) -> 'a
(** Read-only access to a cached block without the full-block copy of
    {!read} (callers charge for whatever bytes they actually move). *)

val sync : t -> unit
(** Flush all dirty blocks. *)

val hits : t -> int
val misses : t -> int

val set_lock : t -> Spinlock.t -> unit
(** Install the spinlock guarding every cache operation (the kernel
    does this at boot).  Free on a 1-CPU machine; cross-core
    alternation pays the cache-line transfer. *)

val lock : t -> Spinlock.t option
