type open_flags = { create : bool; truncate : bool; append : bool }

let rdonly = { create = false; truncate = false; append = false }
let creat_trunc = { create = true; truncate = true; append = false }

(* ------------------------------------------------------------------ *)
(* Trap protocol                                                       *)

(* Result registers are encoded through the one ABI convention
   ([Syscall_abi]); these are the common [trap ~encode] shapes. *)
let ret_int = Syscall_abi.encode_int
let ret_unit r = Syscall_abi.encode_int (Result.map (fun () -> 0) r)
let ret_any = fun _ -> 0L

(* Wrap a handler in the full system-call protocol.  [encode] derives
   the value placed in the saved context's return register; [name] is
   the syscall's name as reported to observability sinks. *)
let trap ?(after_result = fun () -> ()) (k : Kernel.t) (proc : Proc.t) ~name ~encode f =
  Kernel.switch_to k proc;
  k.Kernel.syscall_count <- k.Kernel.syscall_count + 1;
  Sva.enter_trap k.Kernel.sva ~tid:proc.Proc.tid;
  if Machine.tracing k.Kernel.machine then
    Machine.emit k.Kernel.machine (Obs.Event.Syscall { name; pid = proc.Proc.pid });
  (* Dispatch: table lookup, argument validation, credential checks. *)
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 40;
  Machine.charge ~tag:Obs.Tag.Kernel_work k.Kernel.machine 40;
  let result = f () in
  Sva.set_syscall_result k.Kernel.sva ~tid:proc.Proc.tid (encode result);
  (* Work done on the return-to-user path (e.g. signal delivery)
     happens after the result register is written. *)
  after_result ();
  Sva.return_from_trap k.Kernel.sva ~tid:proc.Proc.tid;
  (* Timer interrupts are taken at the trap epilogue — the point where
     a real kernel finds the thread preemptible.  The scheduler's hook
     unwinds the running fiber here; the default hook does nothing. *)
  k.Kernel.preempt ();
  result

(* Copy between kernel and user/ghost buffers with the instrumented
   accessors.  User-range destinations are demand-mapped first (the
   fault would otherwise silently zero-fill); everything else is left
   to the masking semantics. *)
let prepare_user_buffer k proc va len =
  if Layout.in_user va then ignore (Kernel.ensure_user_range k proc va ~len)

let copyout k proc ~dst data =
  prepare_user_buffer k proc dst (Bytes.length data);
  if Layout.in_user dst then Kernel.resolve_cow_range k proc dst ~len:(Bytes.length data);
  Kmem.write_bytes k.Kernel.kmem dst data

let copyin k proc ~src ~len =
  prepare_user_buffer k proc src len;
  Kmem.read_bytes k.Kernel.kmem src ~len

(* Retry an [EAGAIN] attempt after sleeping through the scheduler's
   block hook.  The subscription snapshot is taken before yielding, so
   a wakeup racing the sleep is seen; a resume with no wakeup on the
   subscribed queue is a spurious pass through the run queue and costs
   only the requeue glance — the attempt's own charges model the real
   re-scan.  With the default hook ([fun () -> false], no scheduler)
   the [EAGAIN] surfaces unchanged. *)
let block_on_eagain (k : Kernel.t) ~wq attempt =
  let rec go () =
    match attempt () with
    | Error Errno.EAGAIN as e ->
        let sub = Waitq.subscribe (Option.to_list wq) in
        if k.Kernel.block () then begin
          if not (Waitq.signalled sub) then Kmem.work k.Kernel.kmem 4;
          go ()
        end
        else e
    | r -> r
  in
  go ()

(* ------------------------------------------------------------------ *)
(* File bodies                                                         *)

let path_charge k path = Kmem.work k.Kernel.kmem (40 + (2 * String.length path))

let close_body k proc fd =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 12;
  match Proc.find_fd proc fd with
  | None -> Error Errno.EBADF
  | Some kind ->
      (match kind with
      | Proc.Pipe_read p -> Pipe_dev.drop_reader p
      | Proc.Pipe_write p -> Pipe_dev.drop_writer p
      | Proc.Sock_conn conn -> Netstack.close k.Kernel.net ~conn
      | Proc.File _ | Proc.Sock_listen _ | Proc.Console_out -> ());
      Proc.remove_fd proc fd;
      Ok ()

let fd_read_kernel k _proc kind len : bytes Errno.result =
  match kind with
  | Proc.File f -> (
      match Diskfs.read k.Kernel.fs ~ino:f.ino ~off:f.offset ~len with
      | Ok data ->
          f.offset <- f.offset + Bytes.length data;
          Ok data
      | Error _ as e -> e)
  | Proc.Pipe_read p -> Pipe_dev.read p len
  | Proc.Sock_conn conn -> Netstack.recv k.Kernel.net ~conn len
  | Proc.Pipe_write _ | Proc.Sock_listen _ | Proc.Console_out -> Error Errno.EBADF

let genuine_read_unwrapped k proc ~fd ~buf ~len =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 20;
  match Proc.find_fd proc fd with
  | None -> Error Errno.EBADF
  | Some kind -> (
      match fd_read_kernel k proc kind len with
      | Error _ as e -> e
      | Ok data ->
          copyout k proc ~dst:buf data;
          Ok (Bytes.length data))

let genuine_read k proc ~fd ~buf ~len = genuine_read_unwrapped k proc ~fd ~buf ~len

let fd_write_kernel k _proc kind data : int Errno.result =
  match kind with
  | Proc.File f -> (
      match Diskfs.write k.Kernel.fs ~ino:f.ino ~off:f.offset data with
      | Ok n ->
          f.offset <- f.offset + n;
          Ok n
      | Error _ as e -> e)
  | Proc.Pipe_write p -> Pipe_dev.write p data
  | Proc.Sock_conn conn -> Netstack.send k.Kernel.net ~conn data
  | Proc.Console_out ->
      Console.write (Machine.console k.Kernel.machine) (Bytes.to_string data);
      Ok (Bytes.length data)
  | Proc.Pipe_read _ | Proc.Sock_listen _ -> Error Errno.EBADF

let genuine_write k proc ~fd ~buf ~len =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 20;
  match Proc.find_fd proc fd with
  | None -> Error Errno.EBADF
  | Some kind ->
      let data = copyin k proc ~src:buf ~len in
      fd_write_kernel k proc kind data

(* The wakeup source a descriptor's blocked reader sleeps on. *)
let read_wq_of k proc fd =
  match Proc.find_fd proc fd with
  | Some (Proc.Pipe_read p) -> Some (Pipe_dev.read_wq p)
  | Some (Proc.Sock_conn conn) -> Netstack.conn_wq k.Kernel.net ~conn
  | Some (Proc.Sock_listen port) -> Netstack.listen_wq k.Kernel.net ~port
  | _ -> None

let read_body k proc ~fd ~buf ~len =
  if Proc.is_blocking proc fd then
    block_on_eagain k ~wq:(read_wq_of k proc fd) (fun () ->
        genuine_read_unwrapped k proc ~fd ~buf ~len)
  else genuine_read_unwrapped k proc ~fd ~buf ~len

let write_body k proc ~fd ~buf ~len = genuine_write k proc ~fd ~buf ~len

let lseek_body k proc ~fd ~pos =
  Kmem.work k.Kernel.kmem 10;
  match Proc.find_fd proc fd with
  | Some (Proc.File f) when pos >= 0 ->
      f.offset <- pos;
      Ok pos
  | Some (Proc.File _) -> Error Errno.EINVAL
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let dup2_body k proc ~src ~dst =
  Kmem.work k.Kernel.kmem 15;
  match Proc.find_fd proc src with
  | None -> Error Errno.EBADF
  | Some kind ->
      (match Proc.find_fd proc dst with
      | Some (Proc.Pipe_read p) -> Pipe_dev.drop_reader p
      | Some (Proc.Pipe_write p) -> Pipe_dev.drop_writer p
      | Some _ | None -> ());
      (* Share the open object (pipe reference counts included). *)
      (match kind with
      | Proc.Pipe_read p -> Pipe_dev.add_reader p
      | Proc.Pipe_write p -> Pipe_dev.add_writer p
      | Proc.File _ | Proc.Sock_listen _ | Proc.Sock_conn _ | Proc.Console_out -> ());
      Hashtbl.replace proc.Proc.fds dst kind;
      if dst >= proc.Proc.next_fd then proc.Proc.next_fd <- dst + 1;
      Ok ()

let fsync_body k =
  Diskfs.sync k.Kernel.fs;
  Ok ()

(* ------------------------------------------------------------------ *)
(* Process bodies                                                      *)

let getpid_body (proc : Proc.t) = Ok proc.Proc.pid

let wait_search k (proc : Proc.t) =
  Kmem.work k.Kernel.kmem 40;
  let children =
    Hashtbl.fold
      (fun _ (p : Proc.t) acc -> if p.Proc.parent = proc.Proc.pid then p :: acc else acc)
      k.Kernel.procs []
  in
  match children with
  | [] -> Error Errno.ECHILD
  | _ -> (
      match List.find_opt Proc.is_zombie children with
      | Some zombie ->
          Hashtbl.remove k.Kernel.procs zombie.Proc.pid;
          let status = match zombie.Proc.state with Proc.Zombie s -> s | _ -> 0 in
          Ok (zombie.Proc.pid, status)
      | None -> Error Errno.EAGAIN)

let wait_body ~block k proc =
  if block then block_on_eagain k ~wq:(Some k.Kernel.child_wq) (fun () -> wait_search k proc)
  else wait_search k proc

(* ------------------------------------------------------------------ *)
(* Memory bodies                                                       *)

let round_up_pages len = (len + 4095) / 4096 * 4096

let genuine_mmap k proc ~len =
  if len <= 0 then Error Errno.EINVAL
  else begin
    Kmem.fn_entry k.Kernel.kmem;
    Kmem.work k.Kernel.kmem 60;
    let va = proc.Proc.mmap_cursor in
    proc.Proc.mmap_cursor <- Int64.add va (Int64.of_int (round_up_pages len + 4096));
    match Kernel.ensure_user_range k proc va ~len with
    | Ok () -> Ok va
    | Error e -> Error e
  end

let munmap_body k proc ~addr ~len =
  Kmem.work k.Kernel.kmem 40;
  let first = Int64.shift_right_logical addr 12 in
  let pages = (len + 4095) / 4096 in
  for i = 0 to pages - 1 do
    let vpage = Int64.add first (Int64.of_int i) in
    match Hashtbl.find_opt proc.Proc.user_frames vpage with
    | None -> ()
    | Some frame ->
        (match Sva.unmap_page k.Kernel.sva proc.Proc.pt ~va:(Int64.shift_left vpage 12) with
        | Ok () | Error _ -> ());
        Kernel.release_frame k frame;
        Hashtbl.remove proc.Proc.user_frames vpage;
        Hashtbl.remove proc.Proc.cow vpage
  done;
  Machine.flush_tlb k.Kernel.machine;
  Ok ()

let allocgm_body k (proc : Proc.t) ~va ~pages =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 40;
  (* Memory pressure: evict ghost pages (through the VM) until the
     request fits. *)
  if Ghost_swap.available k < pages then Ghost_swap.ensure_frames k ~wanted:pages;
  match Ghost_swap.take_frames k pages with
  | None -> Error Errno.ENOMEM
  | Some frames -> (
      match Sva.allocgm k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va ~frames with
      | Ok () ->
          proc.Proc.ghost_regions <- (va, pages) :: proc.Proc.ghost_regions;
          Ghost_swap.note_resident k proc ~va ~pages;
          Ok ()
      | Error msg ->
          List.iter (Frame_alloc.free k.Kernel.frames) frames;
          Console.write (Machine.console k.Kernel.machine) ("allocgm: " ^ msg);
          Error Errno.EINVAL)

let freegm_body k (proc : Proc.t) ~va ~pages =
  Kmem.work k.Kernel.kmem 30;
  match Sva.freegm k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va ~count:pages with
  | Ok frames ->
      List.iter (Frame_alloc.free k.Kernel.frames) frames;
      (* Pages of the range that were swapped out can never be restored
         now; drop their stored blobs. *)
      Ghost_swap.release_range k proc ~va ~pages;
      proc.Proc.ghost_regions <-
        List.filter (fun (base, _) -> base <> va) proc.Proc.ghost_regions;
      Ok ()
  | Error msg ->
      Console.write (Machine.console k.Kernel.machine) ("freegm: " ^ msg);
      Error Errno.EINVAL

(* ------------------------------------------------------------------ *)
(* Signal bodies                                                       *)

let signal_body k (proc : Proc.t) ~signum ~handler =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 25;
  Hashtbl.replace proc.Proc.signal_handlers signum handler;
  Ok ()

let deliver_signal k (target : Proc.t) signum =
  match Hashtbl.find_opt target.Proc.signal_handlers signum with
  | None -> () (* default action: ignore *)
  | Some handler -> (
      Kmem.work k.Kernel.kmem 40;
      (* Building and copying the signal frame is dominated by
         straight-line work common to both builds. *)
      Machine.charge ~tag:Obs.Tag.Kernel_work k.Kernel.machine 1500;
      match
        Sva.ipush_function k.Kernel.sva ~tid:target.Proc.tid ~target:handler
          ~arg:(Int64.of_int signum)
      with
      | Ok () -> ()
      | Error msg -> Console.write (Machine.console k.Kernel.machine) ("vg: " ^ msg))

let kill_find_target k ~pid =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem 30;
  match Kernel.find_proc k pid with
  | None -> Error Errno.ESRCH
  | Some target when Proc.is_zombie target -> Error Errno.ESRCH
  | Some target -> Ok target

let sigreturn_body k (proc : Proc.t) =
  Kmem.work k.Kernel.kmem 20;
  Machine.charge ~tag:Obs.Tag.Kernel_work k.Kernel.machine 800;
  match Sva.icontext_load k.Kernel.sva ~tid:proc.Proc.tid with
  | Ok () -> Ok ()
  | Error _ -> Error Errno.EINVAL

(* ------------------------------------------------------------------ *)
(* Socket bodies                                                       *)

let listen_body k proc ~port =
  Kmem.work k.Kernel.kmem 40;
  match Netstack.listen k.Kernel.net ~port with
  | Ok () -> Ok (Proc.add_fd proc (Proc.Sock_listen port))
  | Error e -> Error e

let accept_once k proc ~fd =
  Kmem.work k.Kernel.kmem 40;
  match Proc.find_fd proc fd with
  | Some (Proc.Sock_listen port) -> (
      match Netstack.accept k.Kernel.net ~port with
      | Some conn -> Ok (Proc.add_fd proc (Proc.Sock_conn conn))
      | None -> Error Errno.EAGAIN)
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let accept_body k proc ~fd =
  if Proc.is_blocking proc fd then
    block_on_eagain k ~wq:(read_wq_of k proc fd) (fun () -> accept_once k proc ~fd)
  else accept_once k proc ~fd

let connect_body k proc addr =
  Kmem.work k.Kernel.kmem 60;
  match Netstack.connect_to k.Kernel.net addr with
  | Ok conn -> Ok (Proc.add_fd proc (Proc.Sock_conn conn))
  | Error e -> Error e

let send_body k proc ~fd ~buf ~len =
  Kmem.fn_entry k.Kernel.kmem;
  match Proc.find_fd proc fd with
  | Some (Proc.Sock_conn conn) ->
      let data = copyin k proc ~src:buf ~len in
      Netstack.send k.Kernel.net ~conn data
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let recv_once k proc ~fd ~buf ~len =
  Kmem.fn_entry k.Kernel.kmem;
  match Proc.find_fd proc fd with
  | Some (Proc.Sock_conn conn) -> (
      match Netstack.recv k.Kernel.net ~conn len with
      | Ok data ->
          copyout k proc ~dst:buf data;
          Ok (Bytes.length data)
      | Error _ as e -> e)
  | Some _ -> Error Errno.EINVAL
  | None -> Error Errno.EBADF

let recv_body k proc ~fd ~buf ~len =
  if Proc.is_blocking proc fd then
    block_on_eagain k ~wq:(read_wq_of k proc fd) (fun () -> recv_once k proc ~fd ~buf ~len)
  else recv_once k proc ~fd ~buf ~len

let set_blocking_body k proc ~fd on =
  Kmem.work k.Kernel.kmem 8;
  match Proc.find_fd proc fd with
  | None -> Error Errno.EBADF
  | Some _ ->
      Proc.set_blocking proc fd on;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Readiness                                                           *)

(* Level-triggered, non-consuming readiness (the poll/select view).
   Listener sockets report the backlog without popping it — poll must
   never consume the connection it reports. *)
let fd_ready k kind =
  match kind with
  | Proc.File _ | Proc.Console_out -> true
  | Proc.Pipe_read p -> Pipe_dev.readable p
  | Proc.Pipe_write p -> Pipe_dev.writable p
  | Proc.Sock_listen port -> Netstack.pending_accept k.Kernel.net ~port
  | Proc.Sock_conn conn -> Netstack.conn_readable k.Kernel.net ~conn

let wq_of_fd k proc fd =
  match Proc.find_fd proc fd with
  | Some (Proc.Pipe_read p) -> Some (Pipe_dev.read_wq p)
  | Some (Proc.Pipe_write p) -> Some (Pipe_dev.write_wq p)
  | Some (Proc.Sock_listen port) -> Netstack.listen_wq k.Kernel.net ~port
  | Some (Proc.Sock_conn conn) -> Netstack.conn_wq k.Kernel.net ~conn
  | Some (Proc.File _ | Proc.Console_out) | None -> None

let poll_scan k proc fds =
  Kmem.fn_entry k.Kernel.kmem;
  Kmem.work k.Kernel.kmem (10 + (8 * List.length fds));
  List.filter
    (fun fd ->
      match Proc.find_fd proc fd with
      | None -> true (* closed while polled: ready, the op reports EBADF *)
      | Some kind -> fd_ready k kind)
    fds

(* poll: level-triggered readiness over a descriptor set.  An empty set
   returns immediately; otherwise, when nothing is ready and a
   scheduler is driving us, sleep on every descriptor's waitqueue and
   re-scan on wakeup.  Without a scheduler it degrades to one scan
   (the historical non-blocking contract). *)
let poll_body k proc fds =
  let rec loop () =
    let ready = poll_scan k proc fds in
    if ready <> [] || fds = [] then Ok ready
    else begin
      let sub = Waitq.subscribe (List.filter_map (wq_of_fd k proc) fds) in
      if k.Kernel.block () then begin
        if not (Waitq.signalled sub) then Kmem.work k.Kernel.kmem 4;
        loop ()
      end
      else Ok []
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The submission ring                                                 *)

(* One trap, many dispatches.  The ring lives in traditional user
   memory ([Syscall_ring] fixes the layout); the kernel pays the trap
   protocol once for [ring_enter], then runs up to [to_submit] queued
   entries through {!Dispatch.run}, writing each ABI-encoded result to
   the completion ring.  Entry buffers pointing into ghost memory meet
   exactly the same fate as in a direct call: the instrumented
   accessors mask the address, the masked access faults, and the data
   never moves.

   A process with a syscall-flow policy gets the whole batch vetted
   before any entry executes ({!Dispatch.precheck}): the submitted
   sequence — intra-batch transitions included — must be in-policy, or
   the process is killed, zero entries are consumed and no completion
   is written.  The per-entry policy charge is paid once in the
   precheck, so the executing entries commit for free. *)
let ring_enter_body k proc ~ring ~depth ~to_submit =
  if depth <= 0 || depth > 4096 || to_submit < 0 then Error Errno.EINVAL
  else if not (Layout.in_user ring) then Error Errno.EFAULT
  else begin
    let module R = Syscall_ring in
    let hdr = copyin k proc ~src:ring ~len:R.header_bytes in
    let sq_head = Int64.to_int (Bytes.get_int64_le hdr R.sq_head_off) in
    let sq_tail = Int64.to_int (Bytes.get_int64_le hdr R.sq_tail_off) in
    let cq_tail = Int64.to_int (Bytes.get_int64_le hdr R.cq_tail_off) in
    if sq_tail - sq_head < 0 || sq_tail - sq_head > depth then Error Errno.EINVAL
    else begin
      let n = min to_submit (sq_tail - sq_head) in
      let field at v =
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int v);
        copyout k proc ~dst:(Int64.add ring (Int64.of_int at)) b
      in
      let read_sqe i =
        let sq_slot = R.slot_of ~depth (sq_head + i) in
        let raw =
          copyin k proc
            ~src:(Int64.add ring (Int64.of_int (R.sqe_off ~depth ~slot:sq_slot)))
            ~len:R.sqe_bytes
        in
        R.read_sqe raw ~off:0
      in
      (* Per-entry dispatch: the short in-kernel path that replaces a
         full trap.  Charged to its own tag so the benchmark can show
         where the batched path spends its cycles. *)
      let charge_entry (sqe : R.sqe) =
        k.Kernel.syscall_count <- k.Kernel.syscall_count + 1;
        Kmem.fn_entry k.Kernel.kmem;
        Machine.charge ~tag:Obs.Tag.Ring k.Kernel.machine 30;
        if Machine.tracing k.Kernel.machine then
          let name =
            match Syscall_abi.Sysno.of_int sqe.R.sysno with
            | Some s -> "ring:" ^ Syscall_abi.Sysno.to_name s
            | None -> "ring:?"
          in
          Machine.emit k.Kernel.machine
            (Obs.Event.Syscall { name; pid = proc.Proc.pid })
      in
      let complete i (sqe : R.sqe) result =
        let cbuf = Bytes.create R.cqe_bytes in
        R.write_cqe cbuf ~off:0 { R.user_data = sqe.R.user_data; result };
        let cq_slot = R.slot_of ~depth (cq_tail + i) in
        copyout k proc
          ~dst:(Int64.add ring (Int64.of_int (R.cqe_off ~depth ~slot:cq_slot)))
          cbuf
      in
      let publish () =
        (* Publish the kernel-owned counters (the user owns sq_tail and
           cq_head; only our two fields are written back). *)
        field R.sq_head_off (sq_head + n);
        field R.cq_tail_off (cq_tail + n);
        Ok n
      in
      match proc.Proc.policy with
      | None ->
          (* Unprofiled: the historical per-entry loop, charge for
             charge — sfip-off cycles stay byte-identical. *)
          for i = 0 to n - 1 do
            let sqe = read_sqe i in
            charge_entry sqe;
            complete i sqe
              (Dispatch.run k proc ~origin:Dispatch.Ring ~sysno:sqe.R.sysno
                 sqe.R.args)
          done;
          publish ()
      | Some _ -> (
          let sqes = Array.init n read_sqe in
          (* The batch's policy-relevant projection: entries the
             dispatch will actually judge.  Invalid numbers and nested
             ring_enter fall straight to [ENOSYS] without moving the
             cursor, so the scan skips them the same way. *)
          let relevant =
            Array.of_list
              (List.filter_map
                 (fun (sqe : R.sqe) ->
                   match Syscall_abi.Sysno.of_int sqe.R.sysno with
                   | Some s
                     when not (Syscall_abi.Sysno.equal s Syscall_abi.sys_ring_enter)
                     ->
                       Some s
                   | Some _ | None -> None)
                 (Array.to_list sqes))
          in
          match Dispatch.precheck k proc relevant with
          | Error e -> Error e
          | Ok () ->
              Array.iteri
                (fun i sqe ->
                  charge_entry sqe;
                  complete i sqe
                    (Dispatch.run k proc ~origin:Dispatch.Ring ~prechecked:true
                       ~sysno:sqe.R.sysno sqe.R.args))
                sqes;
              publish ())
    end
  end

(* ------------------------------------------------------------------ *)
(* Typed wrappers: one trap around the unified dispatch                *)

let via k proc ~sysno args =
  let name = Syscall_abi.Sysno.to_name sysno in
  trap k proc ~name ~encode:ret_int (fun () ->
      Syscall_abi.decode_int
        (Dispatch.run k proc ~origin:Dispatch.Trap
           ~sysno:(Syscall_abi.Sysno.to_int sysno) args))

let via_unit k proc ~sysno args =
  let name = Syscall_abi.Sysno.to_name sysno in
  trap k proc ~name ~encode:ret_unit (fun () ->
      Result.map
        (fun (_ : int) -> ())
        (Syscall_abi.decode_int
           (Dispatch.run k proc ~origin:Dispatch.Trap
              ~sysno:(Syscall_abi.Sysno.to_int sysno) args)))

let i64 = Int64.of_int

let read k proc ~fd ~buf ~len =
  via k proc ~sysno:Syscall_abi.sys_read [| i64 fd; buf; i64 len |]

let write k proc ~fd ~buf ~len =
  via k proc ~sysno:Syscall_abi.sys_write [| i64 fd; buf; i64 len |]

let close k proc fd = via_unit k proc ~sysno:Syscall_abi.sys_close [| i64 fd |]

let lseek k proc ~fd ~pos =
  via k proc ~sysno:Syscall_abi.sys_lseek [| i64 fd; i64 pos |]

let dup2 k proc ~src ~dst =
  via_unit k proc ~sysno:Syscall_abi.sys_dup2 [| i64 src; i64 dst |]

let fsync k proc = via_unit k proc ~sysno:Syscall_abi.sys_fsync [||]

let getpid k proc =
  trap k proc ~name:"getpid"
    ~encode:(fun n -> Int64.of_int n)
    (fun () ->
      match
        Syscall_abi.decode_int
          (Dispatch.run k proc ~origin:Dispatch.Trap
             ~sysno:(Syscall_abi.Sysno.to_int Syscall_abi.sys_getpid) [||])
      with
      | Ok pid -> pid
      | Error e -> -Errno.to_int e)

let munmap k proc ~addr ~len =
  via_unit k proc ~sysno:Syscall_abi.sys_munmap [| addr; i64 len |]

let allocgm k proc ~va ~pages =
  via_unit k proc ~sysno:Syscall_abi.sys_allocgm [| va; i64 pages |]

let freegm k proc ~va ~pages =
  via_unit k proc ~sysno:Syscall_abi.sys_freegm [| va; i64 pages |]

let signal k proc ~signum ~handler =
  via_unit k proc ~sysno:Syscall_abi.sys_signal [| i64 signum; handler |]

let sigreturn k proc = via_unit k proc ~sysno:Syscall_abi.sys_sigreturn [||]

let listen k proc ~port =
  via k proc ~sysno:Syscall_abi.sys_listen [| i64 port |]

let accept k proc ~fd = via k proc ~sysno:Syscall_abi.sys_accept [| i64 fd |]

let connect_to k proc addr =
  via k proc ~sysno:Syscall_abi.sys_connect [| Netstack.addr_to_wire addr |]

let connect k proc ~port = connect_to k proc (Netstack.Local port)

let send k proc ~fd ~buf ~len =
  via k proc ~sysno:Syscall_abi.sys_send [| i64 fd; buf; i64 len |]

let recv k proc ~fd ~buf ~len =
  via k proc ~sysno:Syscall_abi.sys_recv [| i64 fd; buf; i64 len |]

let set_blocking k proc ~fd on =
  via_unit k proc ~sysno:Syscall_abi.sys_set_blocking
    [| i64 fd; (if on then 1L else 0L) |]

let mmap k proc ~len =
  trap k proc ~name:"mmap"
    ~encode:(fun r -> Syscall_abi.encode_addr r)
    (fun () ->
      Syscall_abi.decode_addr
        (Dispatch.run k proc ~origin:Dispatch.Trap
           ~sysno:(Syscall_abi.Sysno.to_int Syscall_abi.sys_mmap) [| i64 len |]))

let ring_enter k proc ~ring ~depth ~to_submit =
  via k proc ~sysno:Syscall_abi.sys_ring_enter
    [| ring; i64 depth; i64 to_submit |]

(* ------------------------------------------------------------------ *)
(* Path- and struct-carrying syscalls (typed only: their arguments do
   not fit syscall registers in this simulation)                       *)

(* These never reach [Dispatch.run], so the syscall-flow gate is
   applied here, inside the trap, at the same point the numbered path
   would check it.  Unprofiled processes pay nothing. *)
let guarded k proc sysno body =
  match Dispatch.guard k proc ~origin:Dispatch.Trap sysno with
  | Error e -> Error e
  | Ok () -> body ()

let open_ k proc path flags =
  trap k proc ~name:"open" ~encode:ret_int (fun () ->
      guarded k proc Syscall_abi.sys_open @@ fun () ->
      Kmem.fn_entry k.Kernel.kmem;
      path_charge k path;
      let resolved = Diskfs.lookup k.Kernel.fs path in
      let ino_result =
        match (resolved, flags.create) with
        | Ok ino, _ -> Ok ino
        | Error Errno.ENOENT, true -> Diskfs.create k.Kernel.fs path
        | (Error _ as e), _ -> e
      in
      match ino_result with
      | Error e -> Error e
      | Ok ino -> (
          match Diskfs.stat k.Kernel.fs ~ino with
          | Error e -> Error e
          | Ok st ->
              if st.Diskfs.itype = Diskfs.Dir then Error Errno.EISDIR
              else begin
                if flags.truncate then
                  ignore (Diskfs.truncate k.Kernel.fs ~ino ~len:0);
                let offset = if flags.append then st.Diskfs.size else 0 in
                Ok (Proc.add_fd proc (Proc.File { ino; offset }))
              end))

let unlink k proc path =
  trap k proc ~name:"unlink" ~encode:ret_unit (fun () ->
      guarded k proc Syscall_abi.sys_unlink @@ fun () ->
      Kmem.fn_entry k.Kernel.kmem;
      path_charge k path;
      Diskfs.unlink k.Kernel.fs path)

let mkdir k proc path =
  trap k proc ~name:"mkdir" ~encode:ret_unit (fun () ->
      guarded k proc Syscall_abi.sys_mkdir @@ fun () ->
      path_charge k path;
      match Diskfs.mkdir k.Kernel.fs path with Ok _ -> Ok () | Error e -> Error e)

let stat k proc path =
  trap k proc ~name:"stat" ~encode:ret_any (fun () ->
      guarded k proc Syscall_abi.sys_stat @@ fun () ->
      path_charge k path;
      match Diskfs.lookup k.Kernel.fs path with
      | Error e -> Error e
      | Ok ino -> Diskfs.stat k.Kernel.fs ~ino)

let rename k proc ~src ~dst =
  trap k proc ~name:"rename" ~encode:ret_unit (fun () ->
      guarded k proc Syscall_abi.sys_rename @@ fun () ->
      Kmem.fn_entry k.Kernel.kmem;
      path_charge k src;
      path_charge k dst;
      Diskfs.rename k.Kernel.fs ~src ~dst)

let fstat k proc ~fd =
  trap k proc ~name:"fstat" ~encode:ret_any (fun () ->
      guarded k proc Syscall_abi.sys_fstat @@ fun () ->
      Kmem.work k.Kernel.kmem 15;
      match Proc.find_fd proc fd with
      | Some (Proc.File f) -> Diskfs.stat k.Kernel.fs ~ino:f.ino
      | Some _ -> Error Errno.EINVAL
      | None -> Error Errno.EBADF)

let readdir k proc path =
  trap k proc ~name:"readdir" ~encode:ret_any (fun () ->
      guarded k proc Syscall_abi.sys_readdir @@ fun () ->
      path_charge k path;
      match Diskfs.lookup k.Kernel.fs path with
      | Error e -> Error e
      | Ok ino -> Diskfs.readdir k.Kernel.fs ~ino)

(* ------------------------------------------------------------------ *)
(* Processes                                                           *)

exception Fork_out_of_memory

let fork k proc =
  trap k proc ~name:"fork" ~encode:(function Ok (c : Proc.t) -> Int64.of_int c.Proc.pid | Error e -> Int64.of_int (-Errno.to_int e))
    (fun () ->
      guarded k proc Syscall_abi.sys_fork @@ fun () ->
      match Kernel.create_process k ~parent:proc with
      | Error e -> Error e
      | Ok child -> (
          try
            (* Share the traditional user address space copy-on-write:
               both sides' PTEs drop to read-only; the first write to a
               shared page copies it (handle_page_fault). *)
            Hashtbl.iter
              (fun vpage frame ->
                let va = Int64.shift_left vpage 12 in
                Kmem.work k.Kernel.kmem 40;
                Kernel.share_frame k frame;
                (match Sva.protect_page k.Kernel.sva proc.Proc.pt ~va ~perm:Kernel.user_ro with
                | Ok () | Error _ -> ());
                (match
                   Sva.map_page k.Kernel.sva child.Proc.pt ~va ~frame ~perm:Kernel.user_ro
                 with
                | Ok () ->
                    Hashtbl.replace child.Proc.user_frames vpage frame;
                    Hashtbl.replace proc.Proc.cow vpage ();
                    Hashtbl.replace child.Proc.cow vpage ()
                | Error _ -> raise Fork_out_of_memory))
              proc.Proc.user_frames;
            Machine.flush_tlb k.Kernel.machine;
            (* Descriptors are shared objects; reference counts track
               pipe endpoints. *)
            Hashtbl.iter
              (fun fd kind ->
                (match kind with
                | Proc.Pipe_read p -> Pipe_dev.add_reader p
                | Proc.Pipe_write p -> Pipe_dev.add_writer p
                | Proc.File _ | Proc.Sock_listen _ | Proc.Sock_conn _ | Proc.Console_out
                  -> ());
                Hashtbl.replace child.Proc.fds fd kind)
              proc.Proc.fds;
            child.Proc.next_fd <- proc.Proc.next_fd;
            Hashtbl.iter
              (fun s h -> Hashtbl.replace child.Proc.signal_handlers s h)
              proc.Proc.signal_handlers;
            Hashtbl.iter
              (fun a c -> Hashtbl.replace child.Proc.code_map a c)
              proc.Proc.code_map;
            child.Proc.image <- proc.Proc.image;
            child.Proc.mmap_cursor <- proc.Proc.mmap_cursor;
            (* The child shares the parent's flow graph but holds its
               own cursor, starting in the entry state — exactly what a
               recorded profile observed for forked workers. *)
            child.Proc.policy <-
              Option.map
                (fun pol ->
                  Syscall_policy.create (Syscall_policy.mode pol)
                    (Syscall_policy.graph pol))
                proc.Proc.policy;
            Kmem.work k.Kernel.kmem 400;
            Machine.charge ~tag:Obs.Tag.Kernel_work k.Kernel.machine 300;
            Ok child
          with Fork_out_of_memory -> Error Errno.ENOMEM))

let text_base = 0x0000_0000_0040_0000L

let execve k proc image =
  trap k proc ~name:"execve" ~encode:ret_unit (fun () ->
      guarded k proc Syscall_abi.sys_execve @@ fun () ->
      Kmem.fn_entry k.Kernel.kmem;
      Kmem.work k.Kernel.kmem 600;
      Machine.charge ~tag:Obs.Tag.Kernel_work k.Kernel.machine 600;
      (* Load the text segment into user memory. *)
      let payload = image.Appimage.payload in
      (match Kernel.ensure_user_range k proc text_base ~len:(Bytes.length payload) with
      | Ok () -> Kmem.write_bytes k.Kernel.kmem text_base payload
      | Error _ -> ());
      match
        Sva.reinit_icontext k.Kernel.sva ~tid:proc.Proc.tid ~pt:proc.Proc.pt ~image
          ~stack:0x7fff_f000L
      with
      | Error msg ->
          Console.write (Machine.console k.Kernel.machine) ("execve refused: " ^ msg);
          Error Errno.EACCES
      | Ok (_key, freed_ghost_frames) ->
          List.iter (Frame_alloc.free k.Kernel.frames) freed_ghost_frames;
          proc.Proc.ghost_regions <- [];
          Hashtbl.reset proc.Proc.signal_handlers;
          Hashtbl.reset proc.Proc.code_map;
          proc.Proc.image <- Some image;
          (* The fresh program gets the policy its signed image
             carries: the profile bytes were covered by the signature
             the VM just verified, so the OS could not have swapped in
             a permissive graph.  Unprofiled images clear any policy
             (a new program, a new contract). *)
          proc.Proc.policy <- Syscall_policy.of_profile image.Appimage.profile;
          Ok ())

let exit_ k proc status =
  (* exit never returns to the caller, so it does not run the normal
     result/return epilogue (its thread is gone by then). *)
  Kernel.switch_to k proc;
  k.Kernel.syscall_count <- k.Kernel.syscall_count + 1;
  Sva.enter_trap k.Kernel.sva ~tid:proc.Proc.tid;
  if Machine.tracing k.Kernel.machine then
    Machine.emit k.Kernel.machine
      (Obs.Event.Syscall { name = "exit"; pid = proc.Proc.pid });
  (fun () ->
      Kmem.fn_entry k.Kernel.kmem;
      Kmem.work k.Kernel.kmem 300;
      (* Close descriptors. *)
      Hashtbl.iter
        (fun _ kind ->
          match kind with
          | Proc.Pipe_read p -> Pipe_dev.drop_reader p
          | Proc.Pipe_write p -> Pipe_dev.drop_writer p
          | Proc.Sock_conn conn -> Netstack.close k.Kernel.net ~conn
          | Proc.File _ | Proc.Sock_listen _ | Proc.Console_out -> ())
        proc.Proc.fds;
      Hashtbl.reset proc.Proc.fds;
      (* Release ghost memory through the VM (swapped-out pages of the
         regions are invalidated rather than returned), then drop any
         blobs the process left in the swap store. *)
      List.iter
        (fun (va, pages) ->
          match Sva.freegm k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va ~count:pages with
          | Ok frames -> List.iter (Frame_alloc.free k.Kernel.frames) frames
          | Error _ -> ())
        proc.Proc.ghost_regions;
      Ghost_swap.release_blobs k proc;
      proc.Proc.ghost_regions <- [];
      Kernel.free_user_pages k proc;
      Sva.release_address_space k.Kernel.sva proc.Proc.pt;
      Sva.free_thread k.Kernel.sva ~tid:proc.Proc.tid;
      proc.Proc.state <- Proc.Zombie status;
      (* Parents sleeping in wait observe the exit. *)
      Waitq.wake k.Kernel.child_wq)
    ()

let wait ?(block = false) k proc =
  trap k proc ~name:"wait" ~encode:(function Ok (pid, _) -> Int64.of_int pid | Error e -> Int64.of_int (-Errno.to_int e))
    (fun () -> guarded k proc Syscall_abi.sys_wait @@ fun () -> wait_body ~block k proc)

(* ------------------------------------------------------------------ *)
(* Signals (typed kill defers delivery to the return path)             *)

let kill k proc ~pid ~signum =
  (* Delivery is deferred to the return path so that, for a
     self-signal, the syscall result lands in the interrupted context
     rather than in the handler's fresh one. *)
  let pending = ref None in
  trap k proc ~name:"kill" ~encode:ret_unit
    ~after_result:(fun () ->
      match !pending with
      | Some target -> deliver_signal k target signum
      | None -> ())
    (fun () ->
      guarded k proc Syscall_abi.sys_kill @@ fun () ->
      match kill_find_target k ~pid with
      | Error _ as e -> e
      | Ok target ->
          pending := Some target;
          Ok ())

(* ------------------------------------------------------------------ *)
(* Pipes, select, poll                                                 *)

let pipe k proc =
  trap k proc ~name:"pipe" ~encode:(function Ok (r, _) -> Int64.of_int r | Error e -> Int64.of_int (-Errno.to_int e))
    (fun () ->
      guarded k proc Syscall_abi.sys_pipe @@ fun () ->
      Kmem.work k.Kernel.kmem 50;
      let p = Pipe_dev.create () in
      Pipe_dev.add_reader p;
      Pipe_dev.add_writer p;
      let r = Proc.add_fd proc (Proc.Pipe_read p) in
      let w = Proc.add_fd proc (Proc.Pipe_write p) in
      Ok (r, w))

let select k proc fds =
  trap k proc ~name:"select" ~encode:(fun r ->
      match r with Ok ready -> Int64.of_int (List.length ready) | Error e -> Int64.of_int (-Errno.to_int e))
    (fun () -> guarded k proc Syscall_abi.sys_select @@ fun () -> Ok (poll_scan k proc fds))

let poll k proc fds =
  trap k proc ~name:"poll" ~encode:(fun r ->
      match r with Ok ready -> Int64.of_int (List.length ready) | Error e -> Int64.of_int (-Errno.to_int e))
    (fun () -> guarded k proc Syscall_abi.sys_poll @@ fun () -> poll_body k proc fds)

(* ------------------------------------------------------------------ *)
(* Built-in kernel API for modules                                     *)

let register_builtin_externs (k : Kernel.t) =
  let reg name f = Hashtbl.replace k.Kernel.module_externs name f in
  reg "extern.genuine_read" (fun k proc args ->
      ret_int
        (genuine_read_unwrapped k proc ~fd:(Int64.to_int args.(0)) ~buf:args.(1)
           ~len:(Int64.to_int args.(2))));
  (* klog(ptr, len): print kernel-readable memory to the system log.
     This is an instrumented kernel helper: it reads through Kmem. *)
  reg "extern.klog" (fun k _proc args ->
      let len = min 256 (Int64.to_int args.(1)) in
      let data = Kmem.read_bytes k.Kernel.kmem args.(0) ~len in
      let printable =
        String.map (fun c -> if c >= ' ' && c <= '~' then c else '.') (Bytes.to_string data)
      in
      Console.write (Machine.console k.Kernel.machine) ("module: " ^ printable);
      0L);
  (* kmmap(pid, len): map anonymous memory in some process. *)
  reg "extern.kmmap" (fun k _proc args ->
      match Kernel.find_proc k (Int64.to_int args.(0)) with
      | None -> 0L
      | Some target ->
          let len = Int64.to_int args.(1) in
          let va = target.Proc.mmap_cursor in
          target.Proc.mmap_cursor <- Int64.add va (Int64.of_int (round_up_pages len + 4096));
          (match Kernel.ensure_user_range k target va ~len with
          | Ok () -> va
          | Error _ -> 0L));
  (* signal_install(pid, signum, handler): poke a handler straight into
     a victim's table, bypassing the registration wrappers. *)
  reg "extern.signal_install" (fun k _proc args ->
      match Kernel.find_proc k (Int64.to_int args.(0)) with
      | None -> -1L
      | Some target ->
          Hashtbl.replace target.Proc.signal_handlers (Int64.to_int args.(1)) args.(2);
          0L);
  (* kill(pid, signum): in-kernel signal delivery. *)
  reg "extern.kill" (fun k _proc args ->
      match Kernel.find_proc k (Int64.to_int args.(0)) with
      | None -> -1L
      | Some target ->
          deliver_signal k target (Int64.to_int args.(1));
          0L);
  (* open_exfil(pid): open /exfil for writing in a victim's fd table. *)
  reg "extern.genuine_mmap" (fun k proc args ->
      match genuine_mmap k proc ~len:(Int64.to_int args.(0)) with
      | Ok va -> va
      | Error _ -> 0L);
  reg "extern.open_exfil" (fun k _proc args ->
      match Kernel.find_proc k (Int64.to_int args.(0)) with
      | None -> -1L
      | Some target -> (
          let ino_result =
            match Diskfs.lookup k.Kernel.fs "/exfil" with
            | Ok ino -> Ok ino
            | Error Errno.ENOENT -> Diskfs.create k.Kernel.fs "/exfil"
            | Error _ as e -> e
          in
          match ino_result with
          | Error _ -> -1L
          | Ok ino -> Int64.of_int (Proc.add_fd target (Proc.File { ino; offset = 0 }))))

(* ------------------------------------------------------------------ *)
(* SFIP kill teardown                                                  *)

(* An out-of-policy process dies like [exit_ 137], with one deliberate
   difference: the SVA thread and address-space registration stay
   alive.  The kill happens mid-trap — the caller's epilogue still has
   to write the [ESFIP] result into the saved context and return from
   the trap — and any later syscall the doomed closure attempts must
   refuse cleanly ([killed] short-circuits in the gate) instead of
   faulting on a freed thread. *)
let policy_kill k (proc : Proc.t) =
  if not (Proc.is_zombie proc) then begin
    Kmem.work k.Kernel.kmem 300;
    Hashtbl.iter
      (fun _ kind ->
        match kind with
        | Proc.Pipe_read p -> Pipe_dev.drop_reader p
        | Proc.Pipe_write p -> Pipe_dev.drop_writer p
        | Proc.Sock_conn conn -> Netstack.close k.Kernel.net ~conn
        | Proc.File _ | Proc.Sock_listen _ | Proc.Console_out -> ())
      proc.Proc.fds;
    Hashtbl.reset proc.Proc.fds;
    List.iter
      (fun (va, pages) ->
        match
          Sva.freegm k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt ~va
            ~count:pages
        with
        | Ok frames -> List.iter (Frame_alloc.free k.Kernel.frames) frames
        | Error _ -> ())
      proc.Proc.ghost_regions;
    Ghost_swap.release_blobs k proc;
    proc.Proc.ghost_regions <- [];
    Kernel.free_user_pages k proc;
    proc.Proc.state <- Proc.Zombie 137;
    Waitq.wake k.Kernel.child_wq
  end

(* ------------------------------------------------------------------ *)
(* Entry registration                                                  *)

(* Every numbered entry point, as a first-class [Syscall_abi.Entry].
   Handlers mirror the bodies above; [None] handlers are the
   typed-only syscalls (paths, struct results, process handles) that
   cannot be addressed by number in this simulation — registering them
   anyway keeps the table total, so [Dispatch.entries] and the ABI
   bijection tests cover all of them. *)
let () =
  Dispatch.on_kill := policy_kill;
  let module A = Syscall_abi in
  let reg sysno h = Dispatch.register (A.Entry.make sysno h) in
  let arg (args : int64 array) n = if n < Array.length args then args.(n) else 0L in
  let iarg args n = Int64.to_int (arg args n) in
  let int_of r = Result.map Int64.of_int r in
  let unit_of r = Result.map (fun () -> 0L) r in
  reg A.sys_read
    (Some
       (fun k proc a ->
         int_of (read_body k proc ~fd:(iarg a 0) ~buf:(arg a 1) ~len:(iarg a 2))));
  reg A.sys_write
    (Some
       (fun k proc a ->
         int_of (write_body k proc ~fd:(iarg a 0) ~buf:(arg a 1) ~len:(iarg a 2))));
  reg A.sys_open None;
  reg A.sys_close (Some (fun k proc a -> unit_of (close_body k proc (iarg a 0))));
  reg A.sys_lseek
    (Some (fun k proc a -> int_of (lseek_body k proc ~fd:(iarg a 0) ~pos:(iarg a 1))));
  reg A.sys_unlink None;
  reg A.sys_mkdir None;
  reg A.sys_stat None;
  reg A.sys_rename None;
  reg A.sys_fstat None;
  reg A.sys_dup2
    (Some
       (fun k proc a -> unit_of (dup2_body k proc ~src:(iarg a 0) ~dst:(iarg a 1))));
  reg A.sys_readdir None;
  reg A.sys_fsync (Some (fun k _proc _a -> unit_of (fsync_body k)));
  reg A.sys_getpid (Some (fun _k proc _a -> int_of (getpid_body proc)));
  reg A.sys_fork None;
  reg A.sys_execve None;
  reg A.sys_exit None;
  reg A.sys_wait
    (Some
       (fun k proc a ->
         int_of (Result.map fst (wait_body ~block:(iarg a 0 <> 0) k proc))));
  reg A.sys_mmap (Some (fun k proc a -> genuine_mmap k proc ~len:(iarg a 0)));
  reg A.sys_munmap
    (Some
       (fun k proc a ->
         unit_of (munmap_body k proc ~addr:(arg a 0) ~len:(iarg a 1))));
  reg A.sys_allocgm
    (Some
       (fun k proc a ->
         unit_of (allocgm_body k proc ~va:(arg a 0) ~pages:(iarg a 1))));
  reg A.sys_freegm
    (Some
       (fun k proc a ->
         unit_of (freegm_body k proc ~va:(arg a 0) ~pages:(iarg a 1))));
  reg A.sys_signal
    (Some
       (fun k proc a ->
         unit_of (signal_body k proc ~signum:(iarg a 0) ~handler:(arg a 1))));
  reg A.sys_kill
    (Some
       (fun k _proc a ->
         unit_of
           (Result.map
              (fun target ->
                (* In-ring delivery happens right after the handler:
                   the completion lands in the ring, not in the
                   interrupt context, so there is nothing to defer
                   around. *)
                deliver_signal k target (iarg a 1))
              (kill_find_target k ~pid:(iarg a 0)))));
  reg A.sys_sigreturn (Some (fun k proc _a -> unit_of (sigreturn_body k proc)));
  reg A.sys_pipe None;
  reg A.sys_listen (Some (fun k proc a -> int_of (listen_body k proc ~port:(iarg a 0))));
  reg A.sys_accept (Some (fun k proc a -> int_of (accept_body k proc ~fd:(iarg a 0))));
  reg A.sys_connect
    (Some (fun k proc a -> int_of (connect_body k proc (Netstack.addr_of_wire a.(0)))));
  reg A.sys_send
    (Some
       (fun k proc a ->
         int_of (send_body k proc ~fd:(iarg a 0) ~buf:(arg a 1) ~len:(iarg a 2))));
  reg A.sys_recv
    (Some
       (fun k proc a ->
         int_of (recv_body k proc ~fd:(iarg a 0) ~buf:(arg a 1) ~len:(iarg a 2))));
  reg A.sys_select None;
  reg A.sys_poll None;
  reg A.sys_set_blocking
    (Some
       (fun k proc a ->
         unit_of (set_blocking_body k proc ~fd:(iarg a 0) (iarg a 1 <> 0))));
  reg A.sys_ring_enter
    (Some
       (fun k proc a ->
         int_of
           (ring_enter_body k proc ~ring:(arg a 0) ~depth:(iarg a 1)
              ~to_submit:(iarg a 2))))
