(* The numbered system-call ABI.


   One generated table drives everything: syscall numbers are the
   indices of [specs], and names, register arities and result codecs
   are read back out of it.  [Sysno.t] is private int — the only ways
   to make one are the [sys_*] values below, [Sysno.of_int] (bounds
   checked: the ring's raw wire numbers come in here) and
   [Sysno.of_name] — so a validated number is a type, not a
   convention.

   Results crossing the user/kernel boundary go through the single
   encode/decode convention defined at the bottom:

   - [Int_result]: non-negative payload, or [-Errno.to_int e] on
     error (the classic Unix convention).  [Errno.to_int] is injective
     (see [Errno.all]), so the round-trip is lossless.
   - [Addr_result]: addresses are full 64-bit values, so only the
     Linux [MAP_FAILED] window [-4096, -1] decodes as an errno;
     anything else — including ghost-region pointers high in the
     canonical hole — passes through verbatim. *)

type result_codec = Int_result | Addr_result

type desc = { name : string; arity : int; codec : result_codec }

let specs =
  let i name arity = { name; arity; codec = Int_result } in
  [|
    i "read" 3;
    i "write" 3;
    i "open" 2;
    i "close" 1;
    i "lseek" 2;
    i "unlink" 1;
    i "mkdir" 1;
    i "stat" 1;
    i "rename" 2;
    i "fstat" 1;
    i "dup2" 2;
    i "readdir" 1;
    i "fsync" 0;
    i "getpid" 0;
    i "fork" 0;
    i "execve" 1;
    i "exit" 1;
    i "wait" 1;
    { name = "mmap"; arity = 1; codec = Addr_result };
    i "munmap" 2;
    i "allocgm" 2;
    i "freegm" 2;
    i "signal" 2;
    i "kill" 2;
    i "sigreturn" 0;
    i "pipe" 0;
    i "listen" 1;
    i "accept" 1;
    i "connect" 1;
    i "send" 3;
    i "recv" 3;
    i "select" 1;
    i "poll" 1;
    i "set_blocking" 2;
    i "ring_enter" 3;
  |]

module Sysno = struct
  type t = int

  let count = Array.length specs
  let of_int n = if n >= 0 && n < count then Some n else None
  let to_int n = n
  let equal = Int.equal
  let compare = Int.compare
  let hash (n : t) = Hashtbl.hash n
  let all = List.init count Fun.id
  let to_name n = specs.(n).name

  let of_name =
    let by_name = Hashtbl.create 64 in
    Array.iteri (fun i d -> Hashtbl.replace by_name d.name i) specs;
    fun name -> Hashtbl.find_opt by_name name
end

let describe (n : Sysno.t) = specs.(Sysno.to_int n)
let arity n = (describe n).arity
let codec n = (describe n).codec

let sysno n : Sysno.t =
  match Sysno.of_int n with
  | Some s -> s
  | None -> invalid_arg "Syscall_abi.sysno"

let sys_read = sysno 0
let sys_write = sysno 1
let sys_open = sysno 2
let sys_close = sysno 3
let sys_lseek = sysno 4
let sys_unlink = sysno 5
let sys_mkdir = sysno 6
let sys_stat = sysno 7
let sys_rename = sysno 8
let sys_fstat = sysno 9
let sys_dup2 = sysno 10
let sys_readdir = sysno 11
let sys_fsync = sysno 12
let sys_getpid = sysno 13
let sys_fork = sysno 14
let sys_execve = sysno 15
let sys_exit = sysno 16
let sys_wait = sysno 17
let sys_mmap = sysno 18
let sys_munmap = sysno 19
let sys_allocgm = sysno 20
let sys_freegm = sysno 21
let sys_signal = sysno 22
let sys_kill = sysno 23
let sys_sigreturn = sysno 24
let sys_pipe = sysno 25
let sys_listen = sysno 26
let sys_accept = sysno 27
let sys_connect = sysno 28
let sys_send = sysno 29
let sys_recv = sysno 30
let sys_select = sysno 31
let sys_poll = sysno 32
let sys_set_blocking = sysno 33
let sys_ring_enter = sysno 34

module Entry = struct
  type 'h t = {
    sysno : Sysno.t;
    name : string;
    arity : int;
    codec : result_codec;
    handler : 'h;
  }

  let make sysno handler =
    let d = describe sysno in
    { sysno; name = d.name; arity = d.arity; codec = d.codec; handler }
end

(* Result encoding.  Encode/decode happen at the OCaml level — the
   simulated machine's cost of moving a register is already inside the
   trap protocol — so these charge nothing. *)

let encode_int = function
  | Ok n -> Int64.of_int n
  | Error e -> Int64.of_int (-Errno.to_int e)

let decode_int v =
  if Int64.compare v 0L >= 0 then Ok (Int64.to_int v)
  else begin
    match Errno.of_int (Int64.to_int (Int64.neg v)) with
    | Some e -> Error e
    | None -> Error Errno.EINVAL (* unknown negative: malformed handler *)
  end

let encode_addr = function
  | Ok va -> va
  | Error e -> Int64.of_int (-Errno.to_int e)

let decode_addr v =
  if Int64.compare v (-4096L) >= 0 && Int64.compare v 0L < 0 then begin
    match Errno.of_int (Int64.to_int (Int64.neg v)) with
    | Some e -> Error e
    | None -> Error Errno.EINVAL
  end
  else Ok v

let encode codec r =
  match codec with
  | Int_result -> encode_int (Result.map Int64.to_int r)
  | Addr_result -> encode_addr r

let decode codec v =
  match codec with
  | Int_result -> Result.map Int64.of_int (decode_int v)
  | Addr_result -> decode_addr v
