(* The numbered system-call ABI.

   Every kernel entry point has a number, a fixed register arity and a
   result codec.  The typed [Syscalls.*] wrappers, loadable-module
   overrides and the batched submission ring all address handlers
   through this one table, so there is exactly one encode/decode
   convention for results crossing the user/kernel boundary:

   - [Int_result]: non-negative payload, or [-Errno.to_int e] on
     error (the classic Unix convention).  [Errno.to_int] is injective
     (see [Errno.all]), so the round-trip is lossless.
   - [Addr_result]: addresses are full 64-bit values, so only the
     Linux [MAP_FAILED] window [-4096, -1] decodes as an errno;
     anything else — including ghost-region pointers high in the
     canonical hole — passes through verbatim. *)

let sys_read = 0
let sys_write = 1
let sys_open = 2
let sys_close = 3
let sys_lseek = 4
let sys_unlink = 5
let sys_mkdir = 6
let sys_stat = 7
let sys_rename = 8
let sys_fstat = 9
let sys_dup2 = 10
let sys_readdir = 11
let sys_fsync = 12
let sys_getpid = 13
let sys_fork = 14
let sys_execve = 15
let sys_exit = 16
let sys_wait = 17
let sys_mmap = 18
let sys_munmap = 19
let sys_allocgm = 20
let sys_freegm = 21
let sys_signal = 22
let sys_kill = 23
let sys_sigreturn = 24
let sys_pipe = 25
let sys_listen = 26
let sys_accept = 27
let sys_connect = 28
let sys_send = 29
let sys_recv = 30
let sys_select = 31
let sys_poll = 32
let sys_set_blocking = 33
let sys_ring_enter = 34

type result_codec = Int_result | Addr_result

type desc = { name : string; arity : int; codec : result_codec }

let table =
  [|
    { name = "read"; arity = 3; codec = Int_result };
    { name = "write"; arity = 3; codec = Int_result };
    { name = "open"; arity = 2; codec = Int_result };
    { name = "close"; arity = 1; codec = Int_result };
    { name = "lseek"; arity = 2; codec = Int_result };
    { name = "unlink"; arity = 1; codec = Int_result };
    { name = "mkdir"; arity = 1; codec = Int_result };
    { name = "stat"; arity = 1; codec = Int_result };
    { name = "rename"; arity = 2; codec = Int_result };
    { name = "fstat"; arity = 1; codec = Int_result };
    { name = "dup2"; arity = 2; codec = Int_result };
    { name = "readdir"; arity = 1; codec = Int_result };
    { name = "fsync"; arity = 0; codec = Int_result };
    { name = "getpid"; arity = 0; codec = Int_result };
    { name = "fork"; arity = 0; codec = Int_result };
    { name = "execve"; arity = 1; codec = Int_result };
    { name = "exit"; arity = 1; codec = Int_result };
    { name = "wait"; arity = 1; codec = Int_result };
    { name = "mmap"; arity = 1; codec = Addr_result };
    { name = "munmap"; arity = 2; codec = Int_result };
    { name = "allocgm"; arity = 2; codec = Int_result };
    { name = "freegm"; arity = 2; codec = Int_result };
    { name = "signal"; arity = 2; codec = Int_result };
    { name = "kill"; arity = 2; codec = Int_result };
    { name = "sigreturn"; arity = 0; codec = Int_result };
    { name = "pipe"; arity = 0; codec = Int_result };
    { name = "listen"; arity = 1; codec = Int_result };
    { name = "accept"; arity = 1; codec = Int_result };
    { name = "connect"; arity = 1; codec = Int_result };
    { name = "send"; arity = 3; codec = Int_result };
    { name = "recv"; arity = 3; codec = Int_result };
    { name = "select"; arity = 1; codec = Int_result };
    { name = "poll"; arity = 1; codec = Int_result };
    { name = "set_blocking"; arity = 2; codec = Int_result };
    { name = "ring_enter"; arity = 3; codec = Int_result };
  |]

let max_sysno = Array.length table - 1
let is_valid sysno = sysno >= 0 && sysno <= max_sysno
let describe sysno = if is_valid sysno then Some table.(sysno) else None
let name_of_number sysno = Option.map (fun d -> d.name) (describe sysno)

let number_of_name =
  let by_name = Hashtbl.create 64 in
  Array.iteri (fun i d -> Hashtbl.replace by_name d.name i) table;
  fun name -> Hashtbl.find_opt by_name name

(* Result encoding.  Encode/decode happen at the OCaml level — the
   simulated machine's cost of moving a register is already inside the
   trap protocol — so these charge nothing. *)

let encode_int = function
  | Ok n -> Int64.of_int n
  | Error e -> Int64.of_int (-Errno.to_int e)

let decode_int v =
  if Int64.compare v 0L >= 0 then Ok (Int64.to_int v)
  else begin
    match Errno.of_int (Int64.to_int (Int64.neg v)) with
    | Some e -> Error e
    | None -> Error Errno.EINVAL (* unknown negative: malformed handler *)
  end

let encode_addr = function
  | Ok va -> va
  | Error e -> Int64.of_int (-Errno.to_int e)

let decode_addr v =
  if Int64.compare v (-4096L) >= 0 && Int64.compare v 0L < 0 then begin
    match Errno.of_int (Int64.to_int (Int64.neg v)) with
    | Some e -> Error e
    | None -> Error Errno.EINVAL
  end
  else Ok v

let encode codec r =
  match codec with
  | Int_result -> encode_int (Result.map Int64.to_int r)
  | Addr_result -> encode_addr r

let decode codec v =
  match codec with
  | Int_result -> Result.map Int64.of_int (decode_int v)
  | Addr_result -> decode_addr v
