(* Kernel waitqueues.

   The simulator's fibers cannot park inside the kernel the way real
   threads do, so a waitqueue is a *wakeup edge detector*: every event
   that could make a sleeper runnable (bytes written to a pipe, a frame
   demuxed into a socket inbox, a child turning zombie) bumps the
   queue's sequence number.  A blocked syscall records the sequence
   numbers of the queues it subscribed to, yields back to the
   scheduler, and re-scans its descriptors only once some subscribed
   sequence has advanced — the scan work is paid on wakeup, not on
   every spin of the run queue, which is exactly what a waitqueue buys
   a real kernel. *)

type t = { name : string; mutable seq : int; mutable wakeups : int }

let create ~name = { name; seq = 0; wakeups = 0 }
let name t = t.name
let seq t = t.seq

let wake t =
  t.seq <- t.seq + 1;
  t.wakeups <- t.wakeups + 1

let wakeups t = t.wakeups

(* Subscription: a snapshot of several queues, and the test for "did
   anything I subscribed to happen since". *)
type sub = (t * int) list

let subscribe qs : sub = List.map (fun q -> (q, q.seq)) qs
let signalled (s : sub) = List.exists (fun (q, at) -> q.seq <> at) s
