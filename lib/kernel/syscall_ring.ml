(* Shared layout of the batched syscall ring.

   The ring lives in *traditional* user memory — the kernel must read
   submissions and write completions, which is exactly what ghost
   memory forbids — as one contiguous region:

     header   32 bytes   sq_head sq_tail cq_head cq_tail (8 each)
     sq       depth * 48 submission entries
     cq       depth * 16 completion entries

   A submission entry (SQE) names a kernel entry point by number in
   the {!Syscall_abi} table plus four argument registers and an opaque
   user cookie; a completion entry (CQE) carries the cookie back with
   the ABI-encoded result.  Head/tail are free-running counters; the
   slot for counter [c] is [c mod depth].

   This module is pure layout and (de)serialisation: the kernel side
   reads/writes the region through its instrumented accessors
   ({!Kmem}), the user side through the runtime's poke/peek, and both
   agree on the bytes via these functions. *)

type sqe = { sysno : int; args : int64 array; user_data : int64 }
type cqe = { user_data : int64; result : int64 }

let header_bytes = 32
let sqe_bytes = 48
let cqe_bytes = 16

let region_bytes ~depth = header_bytes + (depth * (sqe_bytes + cqe_bytes))

(* Header field offsets from ring base. *)
let sq_head_off = 0
let sq_tail_off = 8
let cq_head_off = 16
let cq_tail_off = 24

let sqe_off ~depth:_ ~slot = header_bytes + (slot * sqe_bytes)
let cqe_off ~depth ~slot = header_bytes + (depth * sqe_bytes) + (slot * cqe_bytes)

let slot_of ~depth counter = counter mod depth

let write_sqe buf ~off (e : sqe) =
  Bytes.set_int64_le buf off (Int64.of_int e.sysno);
  for i = 0 to 3 do
    let a = if i < Array.length e.args then e.args.(i) else 0L in
    Bytes.set_int64_le buf (off + 8 + (i * 8)) a
  done;
  Bytes.set_int64_le buf (off + 40) e.user_data

let read_sqe buf ~off =
  {
    sysno = Int64.to_int (Bytes.get_int64_le buf off);
    args = Array.init 4 (fun i -> Bytes.get_int64_le buf (off + 8 + (i * 8)));
    user_data = Bytes.get_int64_le buf (off + 40);
  }

let write_cqe buf ~off (e : cqe) =
  Bytes.set_int64_le buf off e.user_data;
  Bytes.set_int64_le buf (off + 8) e.result

let read_cqe buf ~off =
  { user_data = Bytes.get_int64_le buf off; result = Bytes.get_int64_le buf (off + 8) }
