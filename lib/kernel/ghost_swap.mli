(** The ghost-swap memory-pressure engine (paper section 3.3).

    "Unlike programmed I/O, swapping of ghost memory is the
    responsibility of Virtual Ghost": the OS picks victims, stores the
    bytes and schedules the work, but only the VM may read the
    plaintext — it hands the kernel an encrypted, MAC'd,
    replay-protected blob ({!Sva.swap_out_ghost}) and verifies
    integrity {e and} freshness on the way back in
    ({!Sva.swap_in_ghost}).  This module is the kernel half, grown into
    a full subsystem:

    - per-core frame pools over {!Frame_alloc} with low/high watermark
      hysteresis ({!balance}), so ghost working sets larger than
      physical memory run under sustained load;
    - a second-chance clock over resident ghost pages ({!swap_out_one})
      with a single-pass fallback scan — victim selection no longer
      recounts every process's pages per candidate;
    - demand fault handling ({!fault_in}) that is correct under SMP:
      concurrent faults on one swapped-out page perform exactly one
      restore (the in-flight table), and eviction skips pages mid
      swap-in;
    - a [swapd] daemon fiber ({!spawn_swapd}) reclaiming in the
      background under the {!Sched} scheduler.

    The baseline build swaps too — but with no sealing, which is what
    the swap attacks in {!Vg_attacks.Other_attacks} exploit.  Engine
    state is populated only by swap activity: runs that never swap are
    cycle-identical to a kernel without the engine. *)

(** {1 Frame supply} *)

val available : Kernel.t -> int
(** Frames obtainable right now: the global free list plus the
    per-core pools. *)

val take_frames : Kernel.t -> int -> int list option
(** All-or-nothing grab of [n] frames, pools first.  With empty pools
    this is exactly the pre-engine allocation (one global allocator
    grab under [frame_lock]). *)

val put_frame : Kernel.t -> int -> unit
(** Return one frame: to the current core's pool while it has room,
    else to the global allocator. *)

val ensure_frames : Kernel.t -> wanted:int -> unit
(** Memory-pressure hook: evict ghost pages until [wanted] frames are
    available (or nothing is left to evict). *)

val ensure_free : Kernel.t -> wanted:int -> unit
(** Refill the {e global} free list for non-ghost allocations (demand
    paging, copy-on-write), which cannot see the per-core pools: spill
    pooled frames back to the allocator, then evict ghost pages until
    it can satisfy [wanted] or nothing is left to evict. *)

val reclaim : Kernel.t -> target:int -> int
(** Evict until {!available} reaches [target]; returns the number of
    pages swapped out. *)

val balance : Kernel.t -> int
(** Watermark hysteresis: if availability is below the low watermark,
    {!reclaim} up to the high one; otherwise do nothing. *)

val set_watermarks : Kernel.t -> low:int -> high:int -> unit
(** Override the boot-time watermarks (tests, tuning).
    @raise Invalid_argument unless [0 < low < high]. *)

(** {1 Eviction} *)

val note_resident : Kernel.t -> Proc.t -> va:int64 -> pages:int -> unit
(** Register freshly mapped ghost pages with the eviction clock and
    mark them referenced.  Charge-free; {!Syscalls} calls this from
    [allocgm]. *)

val swap_out_one : Kernel.t -> (unit, string) result
(** Evict one ghost page: second-chance clock first, fallback scan
    (process with most resident ghost pages) when the clock is dry.
    [Error] when nothing is resident. *)

val swap_out_page : Kernel.t -> Proc.t -> va:int64 -> (unit, string) result
(** Evict one {e specific} page — the hostile-policy hook: the OS may
    victimise whatever it likes (thrashing one process is a
    denial-of-service the threat model permits), it just can never
    read or forge the contents. *)

(** {1 Swap-in} *)

val swap_in_page : Kernel.t -> Proc.t -> int64 -> unit Errno.result
(** Core swap-in, no trap accounting (daemon / prefetch path).
    Serialised per page: a concurrent caller waits on the in-flight
    entry and then finds the page resident — exactly one restore.
    [EFAULT] when no blob exists; [EACCES] when the VM refuses the
    blob (corruption, substitution or replay — the application is not
    handed corrupt secrets); [ENOMEM] when no frame can be found. *)

val fault_in : Kernel.t -> Proc.t -> int64 -> unit Errno.result
(** Fault-time path: hardware-fault and trap accounting around
    {!swap_in_page}.  The userland runtime calls this for ghost
    addresses. *)

(** {1 Teardown} *)

val release_range : Kernel.t -> Proc.t -> va:int64 -> pages:int -> unit
(** Unlink stored blobs for a freed ghost range ([freegm]).  The VM
    has already invalidated their freshness entries; this only
    reclaims disk.  Free when swapping never ran. *)

val release_blobs : Kernel.t -> Proc.t -> unit
(** {!release_range} over every ghost region of a dying process
    (exit / kill). *)

(** {1 The swapd daemon} *)

val spawn_swapd : Kernel.t -> Sched.t -> unit
(** Spawn the background reclaimer as a scheduler fiber: each wakeup
    runs {!balance} and yields, until {!stop_swapd}. *)

val stop_swapd : Kernel.t -> unit
(** Ask the daemon to exit at its next wakeup. *)

(** {1 Introspection} *)

val resident_ghost_pages : Proc.t -> int
(** Ghost pages of the process currently mapped (single pass). *)

val is_swapped_out : Kernel.t -> Proc.t -> int64 -> bool
(** Whether a ghost address currently lives in the swap store. *)

type stats = {
  swap_outs : int;
  swap_ins : int;
  refusals : int;  (** swap-ins the VM rejected *)
  reclaims : int;  (** reclaim episodes (not pages) *)
  daemon_wakeups : int;
  pooled : int;  (** frames currently in per-core pools *)
  low : int;
  high : int;
}

val stats : Kernel.t -> stats
