(** Preemptive multi-core scheduler over effects-based fibers.

    Fibers (OCaml functions driving a process through the userland
    runtime) sit on per-CPU run queues.  {!run} repeatedly picks the
    core with the lowest simulated clock (ties broken by core id),
    runs the head of its queue — stealing from the longest other queue
    when its own is empty — and resumes the fiber after an
    SVA-mediated switch to its process ({!Kernel.switch_to}).

    Preemption is timer-driven: {!run} arms every core's interval
    timer and installs a [Kernel.preempt] hook that fires at the
    syscall-trap epilogue; when the core's timer has expired the hook
    acknowledges the tick and unwinds the fiber back into the
    scheduler (re-enqueued at the back of its home queue).

    Scheduling is fully deterministic — core choice depends only on
    simulated cycle counts and ids. *)

type t

val create : Kernel.t -> t
(** One run queue per machine core. *)

val spawn : t -> ?cpu:int -> name:string -> Proc.t -> (unit -> unit) -> unit
(** Enqueue a fiber.  [cpu] pins the initial home queue (default:
    round-robin over cores in spawn order).  The body runs with the
    process's address space installed and may call {!yield}; syscalls
    made inside it are preemption points. *)

val run : ?timer_period:int -> t -> unit
(** Drive all fibers to completion.  [timer_period] is the per-core
    timer interval in cycles (default 400k).  Exceptions escaping a
    fiber propagate (after disarming timers and removing the preempt
    hook). *)

val yield : t -> unit
(** Voluntarily reschedule the calling fiber (no-op outside {!run}). *)

val default_timer_period : int

(** {1 Statistics} *)

val preemptions : t -> int
(** Timer-tick preemptions delivered. *)

val steals : t -> int
(** Fibers migrated to an idle core by work stealing. *)

val dispatches : t -> int

val pending : t -> int
(** Fibers currently queued. *)
