(* The ghost-swap memory-pressure engine: the kernel half of paper
   section 3.3's ghost swapping, grown from the old one-shot [Swapd]
   into a real subsystem.

   Division of labour (the MProtect split): the *untrusted* kernel —
   this module — owns victim policy, frame pooling, blob storage and
   scheduling; the *trusted* VM ([Sva.swap_out_ghost] /
   [Sva.swap_in_ghost]) is the only code that sees ghost plaintext, and
   it seals every page with integrity *and* freshness before the kernel
   may touch the bytes.  Nothing this module does can leak or corrupt a
   ghost page — at worst it can refuse service, and every refusal the
   VM issues carries one [Security{swap}] event.

   Engine state lives in [Kernel.t.swap] (a {!Swap_state.t}); it is
   populated exclusively by swap activity, so a run in which swapping
   never triggers executes the exact same charged operations as a
   kernel without the engine (the cycle goldens depend on this). *)

let swap_dir = "/swap"

let page_va vpage = Int64.shift_left vpage 12
let vpage_of va = Int64.shift_right_logical va 12

let blob_path pid vpage = Printf.sprintf "%s/p%d-%Lx" swap_dir pid vpage

let ensure_swap_dir k =
  match Diskfs.lookup k.Kernel.fs swap_dir with
  | Ok _ -> ()
  | Error _ -> ignore (Diskfs.mkdir k.Kernel.fs swap_dir)

(* Resident ghost pages of one process, in a single pass over its
   regions (no intermediate page lists). *)
let resident_ghost_pages (proc : Proc.t) =
  List.fold_left
    (fun acc (base, pages) ->
      let base_vp = vpage_of base in
      let count = ref 0 in
      for i = 0 to pages - 1 do
        let vp = Int64.add base_vp (Int64.of_int i) in
        if Pagetable.lookup proc.Proc.pt ~vpage:vp <> None then incr count
      done;
      acc + !count)
    0 proc.Proc.ghost_regions

let is_swapped_out k (proc : Proc.t) va =
  match Diskfs.lookup k.Kernel.fs (blob_path proc.Proc.pid (vpage_of va)) with
  | Ok _ -> true
  | Error _ -> false

(* {2 Frame availability} *)

(* Frames the engine can hand out immediately: the global free list
   plus whatever sits in the per-core pools (pool frames stay "in use"
   from the allocator's point of view). *)
let available k =
  Frame_alloc.free_count k.Kernel.frames + k.Kernel.swap.Swap_state.pooled

let set_watermarks k ~low ~high =
  if low < 1 || high <= low then invalid_arg "Ghost_swap.set_watermarks";
  let s = k.Kernel.swap in
  s.Swap_state.low <- low;
  s.Swap_state.high <- high

(* Stash a frame freed by swap-out in the current core's pool (up to
   [pool_target] per core), else return it to the global allocator. *)
let put_frame k frame =
  let s = k.Kernel.swap in
  let pooled_here =
    Spinlock.with_lock s.Swap_state.lock (fun () ->
        let cpu = Machine.cpu k.Kernel.machine in
        if List.length s.Swap_state.pools.(cpu) < s.Swap_state.pool_target
        then begin
          s.Swap_state.pools.(cpu) <- frame :: s.Swap_state.pools.(cpu);
          s.Swap_state.pooled <- s.Swap_state.pooled + 1;
          true
        end
        else false)
  in
  if not pooled_here then
    Spinlock.with_lock k.Kernel.frame_lock (fun () ->
        Frame_alloc.free k.Kernel.frames frame)

(* All-or-nothing grab of [n] frames: current core's pool first, then
   the other pools, then the global allocator.  When the pools are
   empty this is exactly the old [Kernel.grant_ghost_frames] — same
   locks, same charges — which keeps non-swapping runs cycle-identical. *)
let take_frames k n =
  let s = k.Kernel.swap in
  let from_pool =
    if s.Swap_state.pooled = 0 then []
    else
      Spinlock.with_lock s.Swap_state.lock (fun () ->
          let cpus = Array.length s.Swap_state.pools in
          let here = Machine.cpu k.Kernel.machine in
          let got = ref [] and want = ref n in
          for d = 0 to cpus - 1 do
            let cpu = (here + d) mod cpus in
            let rec grab pool =
              if !want = 0 then pool
              else
                match pool with
                | [] -> []
                | f :: rest ->
                    got := f :: !got;
                    decr want;
                    grab rest
            in
            s.Swap_state.pools.(cpu) <- grab s.Swap_state.pools.(cpu)
          done;
          s.Swap_state.pooled <- s.Swap_state.pooled - List.length !got;
          !got)
  in
  let missing = n - List.length from_pool in
  if missing = 0 then Some from_pool
  else
    match
      Spinlock.with_lock k.Kernel.frame_lock (fun () ->
          Frame_alloc.alloc_many k.Kernel.frames missing)
    with
    | Some fresh -> Some (from_pool @ fresh)
    | None ->
        List.iter (put_frame k) from_pool;
        None

(* {2 The eviction clock} *)

(* Register freshly mapped ghost pages with the clock (allocation and
   swap-in call this).  Charge-free and lock-free: fibers only
   interleave at yield points, so the queue/hashtable updates are
   atomic in simulated time, and non-swapping runs must not pay for
   bookkeeping. *)
let note_resident k (proc : Proc.t) ~va ~pages =
  let s = k.Kernel.swap in
  let base = vpage_of va in
  for i = 0 to pages - 1 do
    let page = (proc.Proc.pid, Int64.add base (Int64.of_int i)) in
    if not (Hashtbl.mem s.Swap_state.on_clock page) then begin
      Hashtbl.replace s.Swap_state.on_clock page ();
      Queue.push page s.Swap_state.clock
    end;
    Hashtbl.replace s.Swap_state.referenced page ()
  done

(* Second-chance sweep: pop the hand; stale entries (page gone, process
   dead — nothing unregisters eagerly) are dropped, referenced pages
   get their bit cleared and go around again, in-flight swap-ins are
   skipped.  [guard] bounds the sweep at two full revolutions. *)
let rec clock_pick s k guard =
  if guard = 0 then None
  else
    match Queue.take_opt s.Swap_state.clock with
    | None -> None
    | Some ((pid, vpage) as page) -> (
        match Kernel.find_proc k pid with
        | Some proc
          when (not (Proc.is_zombie proc))
               && Pagetable.lookup proc.Proc.pt ~vpage <> None ->
            if Hashtbl.mem s.Swap_state.inflight page then begin
              Queue.push page s.Swap_state.clock;
              clock_pick s k (guard - 1)
            end
            else if Hashtbl.mem s.Swap_state.referenced page then begin
              Hashtbl.remove s.Swap_state.referenced page;
              Queue.push page s.Swap_state.clock;
              clock_pick s k (guard - 1)
            end
            else begin
              Hashtbl.remove s.Swap_state.on_clock page;
              Some (proc, vpage)
            end
        | _ ->
            Hashtbl.remove s.Swap_state.on_clock page;
            Hashtbl.remove s.Swap_state.referenced page;
            clock_pick s k (guard - 1))

(* Fallback for pages that never went through the syscall layer (and
   so were never registered): one pass over each process's regions,
   counting residents and remembering the first, victimising the
   process with the most resident ghost pages — the old policy, minus
   its per-candidate recount. *)
let scan_victim k =
  let s = k.Kernel.swap in
  let best = ref None in
  Hashtbl.iter
    (fun _ (proc : Proc.t) ->
      if not (Proc.is_zombie proc) then begin
        let count = ref 0 and first = ref None in
        List.iter
          (fun (base, pages) ->
            let base_vp = vpage_of base in
            for i = 0 to pages - 1 do
              let vp = Int64.add base_vp (Int64.of_int i) in
              if
                Pagetable.lookup proc.Proc.pt ~vpage:vp <> None
                && not (Hashtbl.mem s.Swap_state.inflight (proc.Proc.pid, vp))
              then begin
                incr count;
                if !first = None then first := Some vp
              end
            done)
          proc.Proc.ghost_regions;
        match !first with
        | None -> ()
        | Some vp -> (
            match !best with
            | Some (_, _, n) when n >= !count -> ()
            | _ -> best := Some (proc, vp, !count))
      end)
    k.Kernel.procs;
  match !best with None -> None | Some (proc, vp, _) -> Some (proc, vp)

(* {2 Swap-out} *)

let write_blob k path blob =
  ensure_swap_dir k;
  let ino_result =
    match Diskfs.lookup k.Kernel.fs path with
    | Ok ino ->
        ignore (Diskfs.truncate k.Kernel.fs ~ino ~len:0);
        Ok ino
    | Error Errno.ENOENT -> Diskfs.create k.Kernel.fs path
    | Error _ as e -> e
  in
  match ino_result with
  | Error e -> Error (Errno.to_string e)
  | Ok ino -> (
      match Diskfs.write k.Kernel.fs ~ino ~off:0 blob with
      | Ok _ -> Ok ()
      | Error e -> Error (Errno.to_string e))

let swap_out_page k (proc : Proc.t) ~va =
  let s = k.Kernel.swap in
  let vpage = vpage_of va in
  if Hashtbl.mem s.Swap_state.inflight (proc.Proc.pid, vpage) then
    Error "ghost-swap: page has a swap-in in flight"
  else begin
    Kmem.fn_entry k.Kernel.kmem;
    Kmem.work k.Kernel.kmem 80;
    match
      Sva.swap_out_ghost k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt
        ~va:(page_va vpage)
    with
    | Error _ as e -> e
    | Ok (frame, blob) -> (
        match write_blob k (blob_path proc.Proc.pid vpage) blob with
        | Error _ as e -> e
        | Ok () ->
            put_frame k frame;
            s.Swap_state.swap_outs <- s.Swap_state.swap_outs + 1;
            Ok ())
  end

let swap_out_one k =
  let s = k.Kernel.swap in
  let victim =
    Spinlock.with_lock s.Swap_state.lock (fun () ->
        clock_pick s k ((2 * Queue.length s.Swap_state.clock) + 1))
  in
  let victim = match victim with Some _ as v -> v | None -> scan_victim k in
  match victim with
  | None -> Error "ghost-swap: no resident ghost pages to evict"
  | Some (proc, vpage) -> swap_out_page k proc ~va:(page_va vpage)

(* {2 Reclaim and watermarks} *)

let reclaim k ~target =
  let s = k.Kernel.swap in
  let evicted = ref 0 in
  let stuck = ref false in
  while (not !stuck) && available k < target do
    match swap_out_one k with
    | Ok () -> incr evicted
    | Error _ -> stuck := true
  done;
  if !evicted > 0 then s.Swap_state.reclaims <- s.Swap_state.reclaims + 1;
  !evicted

(* Hysteresis: only engage below [low], then refill all the way to
   [high] — the gap keeps the engine from ping-ponging when
   availability hovers at a single boundary. *)
let balance k =
  let s = k.Kernel.swap in
  if available k < s.Swap_state.low then reclaim k ~target:s.Swap_state.high
  else 0

let ensure_frames k ~wanted =
  let guard = ref 4096 in
  while available k < wanted && !guard > 0 do
    decr guard;
    match swap_out_one k with Ok () -> () | Error _ -> guard := 0
  done

(* Non-ghost allocations (demand paging, copy-on-write) draw straight
   from the global allocator and cannot see the per-core pools.  Spill
   every pooled frame back to the allocator; only called on the
   starvation path, so non-swapping runs never pay for it. *)
let spill_pools k =
  let s = k.Kernel.swap in
  if s.Swap_state.pooled > 0 then begin
    let frames =
      Spinlock.with_lock s.Swap_state.lock (fun () ->
          let all = List.concat (Array.to_list s.Swap_state.pools) in
          Array.iteri
            (fun i _ -> s.Swap_state.pools.(i) <- [])
            s.Swap_state.pools;
          s.Swap_state.pooled <- 0;
          all)
    in
    if frames <> [] then
      Spinlock.with_lock k.Kernel.frame_lock (fun () ->
          List.iter (Frame_alloc.free k.Kernel.frames) frames)
  end

let ensure_free k ~wanted =
  let guard = ref 4096 in
  while Frame_alloc.free_count k.Kernel.frames < wanted && !guard > 0 do
    decr guard;
    if k.Kernel.swap.Swap_state.pooled > 0 then spill_pools k
    else match swap_out_one k with Ok () -> () | Error _ -> guard := 0
  done

(* {2 Swap-in} *)

(* Core swap-in: no trap accounting, so the scheduler's daemon or a
   prefetching kernel path can call it directly.  The in-flight table
   closes the SMP race: the first core to fault publishes the (pid,
   vpage) pair, later cores yield until it clears and then find the
   page resident — exactly one restore happens. *)
let swap_in_page k (proc : Proc.t) va =
  let s = k.Kernel.swap in
  let vpage = vpage_of va in
  let page = (proc.Proc.pid, vpage) in
  let rec await_inflight () =
    if Hashtbl.mem s.Swap_state.inflight page then
      if k.Kernel.block () then await_inflight ()
  in
  await_inflight ();
  if Pagetable.lookup proc.Proc.pt ~vpage <> None then Ok ()
    (* lost the race: the other core already restored the page *)
  else begin
    Hashtbl.replace s.Swap_state.inflight page ();
    let finish result =
      Hashtbl.remove s.Swap_state.inflight page;
      result
    in
    let path = blob_path proc.Proc.pid vpage in
    match Diskfs.lookup k.Kernel.fs path with
    | Error _ -> finish (Error Errno.EFAULT)
    | Ok ino -> (
        let blob =
          match Diskfs.stat k.Kernel.fs ~ino with
          | Ok st -> (
              match
                Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size
              with
              | Ok b -> Some b
              | Error _ -> None)
          | Error _ -> None
        in
        (* The faulting thread sleeps on the swap device here; under
           the fiber scheduler other cores run — this is the window in
           which a concurrent fault on the same page can arrive. *)
        ignore (k.Kernel.block ());
        match blob with
        | None -> finish (Error Errno.EFAULT)
        | Some blob -> (
            if available k = 0 then ensure_frames k ~wanted:1;
            match take_frames k 1 with
            | None -> finish (Error Errno.ENOMEM)
            | Some frames -> (
                let frame = List.hd frames in
                match
                  Sva.swap_in_ghost k.Kernel.sva ~pid:proc.Proc.pid
                    ~pt:proc.Proc.pt ~va:(page_va vpage) ~frame ~blob
                with
                | Ok () ->
                    ignore (Diskfs.unlink k.Kernel.fs path);
                    s.Swap_state.swap_ins <- s.Swap_state.swap_ins + 1;
                    note_resident k proc ~va:(page_va vpage) ~pages:1;
                    finish (Ok ())
                | Error msg ->
                    put_frame k frame;
                    s.Swap_state.refusals <- s.Swap_state.refusals + 1;
                    Console.write
                      (Machine.console k.Kernel.machine)
                      ("ghost-swap: " ^ msg);
                    finish (Error Errno.EACCES))))
  end

(* Fault-time path: hardware fault, VM trap, handler work, then the
   core swap-in. *)
let fault_in k (proc : Proc.t) va =
  match Diskfs.lookup k.Kernel.fs (blob_path proc.Proc.pid (vpage_of va)) with
  | Error _ -> Error Errno.EFAULT
  | Ok _ ->
      Machine.charge ~tag:Obs.Tag.Page_fault k.Kernel.machine
        Cost.page_fault_hw;
      Sva.enter_trap k.Kernel.sva ~tid:proc.Proc.tid;
      Kmem.fn_entry k.Kernel.kmem;
      Kmem.work k.Kernel.kmem 100;
      let result = swap_in_page k proc va in
      Sva.return_from_trap k.Kernel.sva ~tid:proc.Proc.tid;
      result

(* {2 Process teardown} *)

(* Unlink any blobs a dying process left in the swap store (the VM has
   already invalidated their freshness entries, so they could never be
   restored — this only reclaims disk).  Gated on swap activity so
   runs that never swap charge nothing extra at exit. *)
let release_range k (proc : Proc.t) ~va ~pages =
  if k.Kernel.swap.Swap_state.swap_outs > 0 then begin
    let base_vp = vpage_of va in
    for i = 0 to pages - 1 do
      let vp = Int64.add base_vp (Int64.of_int i) in
      let path = blob_path proc.Proc.pid vp in
      match Diskfs.lookup k.Kernel.fs path with
      | Ok _ -> ignore (Diskfs.unlink k.Kernel.fs path)
      | Error _ -> ()
    done
  end

let release_blobs k (proc : Proc.t) =
  List.iter
    (fun (base, pages) -> release_range k proc ~va:base ~pages)
    proc.Proc.ghost_regions

(* {2 The swapd daemon} *)

let daemon_cost = 50

let spawn_swapd k sched =
  let s = k.Kernel.swap in
  s.Swap_state.daemon_stop <- false;
  (* The daemon gets its own kernel process (a thread to dispatch on
     any core); sharing init's thread would collide with whichever CPU
     init is current on. *)
  match Kernel.create_process k ~parent:(Kernel.init_process k) with
  | Error e -> failwith ("ghost-swap: spawn_swapd: " ^ Errno.to_string e)
  | Ok proc ->
      Sched.spawn sched ~name:"swapd" proc (fun () ->
          while not s.Swap_state.daemon_stop do
            s.Swap_state.daemon_wakeups <- s.Swap_state.daemon_wakeups + 1;
            Machine.charge ~tag:Obs.Tag.Swap k.Kernel.machine daemon_cost;
            ignore (balance k);
            Sched.yield sched
          done)

let stop_swapd k = k.Kernel.swap.Swap_state.daemon_stop <- true

(* {2 Statistics} *)

type stats = {
  swap_outs : int;
  swap_ins : int;
  refusals : int;
  reclaims : int;
  daemon_wakeups : int;
  pooled : int;
  low : int;
  high : int;
}

let stats k =
  let s = k.Kernel.swap in
  {
    swap_outs = s.Swap_state.swap_outs;
    swap_ins = s.Swap_state.swap_ins;
    refusals = s.Swap_state.refusals;
    reclaims = s.Swap_state.reclaims;
    daemon_wakeups = s.Swap_state.daemon_wakeups;
    pooled = s.Swap_state.pooled;
    low = s.Swap_state.low;
    high = s.Swap_state.high;
  }
