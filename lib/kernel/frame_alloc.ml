type t = {
  first : int;
  last : int;
  mutable free_list : int list;
  in_use : (int, unit) Hashtbl.t;
  mutable next_fresh : int; (* frames never yet handed out *)
}

let create ~first ~last =
  if first > last then invalid_arg "Frame_alloc.create: empty range";
  { first; last; free_list = []; in_use = Hashtbl.create 1024; next_fresh = first }

let alloc t =
  match t.free_list with
  | f :: rest ->
      t.free_list <- rest;
      Hashtbl.replace t.in_use f ();
      Some f
  | [] ->
      if t.next_fresh > t.last then None
      else begin
        let f = t.next_fresh in
        t.next_fresh <- f + 1;
        Hashtbl.replace t.in_use f ();
        Some f
      end

let alloc_many t n =
  let rec take acc k = if k = 0 then Some acc else
    match alloc t with
    | Some f -> take (f :: acc) (k - 1)
    | None ->
        List.iter (fun f -> t.free_list <- f :: t.free_list; Hashtbl.remove t.in_use f) acc;
        None
  in
  take [] n

let free t f =
  if f < t.first || f > t.last then invalid_arg "Frame_alloc.free: foreign frame";
  if not (Hashtbl.mem t.in_use f) then invalid_arg "Frame_alloc.free: double free";
  Hashtbl.remove t.in_use f;
  t.free_list <- f :: t.free_list

let free_many t fs =
  (* Validate the whole batch before touching state, so a bad frame in
     the middle cannot leave a half-freed batch behind. *)
  List.iter
    (fun f ->
      if f < t.first || f > t.last then
        invalid_arg "Frame_alloc.free_many: foreign frame";
      if not (Hashtbl.mem t.in_use f) then
        invalid_arg "Frame_alloc.free_many: double free")
    fs;
  let seen = Hashtbl.create (List.length fs) in
  List.iter
    (fun f ->
      if Hashtbl.mem seen f then invalid_arg "Frame_alloc.free_many: duplicate frame";
      Hashtbl.replace seen f ())
    fs;
  List.iter (free t) fs

let total t = t.last - t.first + 1
let free_count t = total t - Hashtbl.length t.in_use
