(** Shared layout of the batched syscall ring (see {!Syscalls.ring_enter}).

    The ring is one contiguous region of {e traditional} user memory:
    a 32-byte header of free-running head/tail counters, [depth]
    48-byte submission entries, then [depth] 16-byte completion
    entries.  Submissions name kernel entry points by {!Syscall_abi}
    number; completions carry the submission's cookie back with the
    ABI-encoded result.  This module is pure layout and byte
    (de)serialisation, shared by the kernel dispatcher and the
    userland {!Uring} library. *)

type sqe = { sysno : int; args : int64 array; user_data : int64 }
(** Submission: syscall number, up to four argument registers, opaque
    user cookie echoed in the completion. *)

type cqe = { user_data : int64; result : int64 }
(** Completion: the submission's cookie and the ABI-encoded result. *)

val header_bytes : int
val sqe_bytes : int
val cqe_bytes : int

val region_bytes : depth:int -> int
(** Total footprint of a ring of [depth] entries. *)

(** {1 Offsets from ring base} *)

val sq_head_off : int
val sq_tail_off : int
val cq_head_off : int
val cq_tail_off : int

val sqe_off : depth:int -> slot:int -> int
val cqe_off : depth:int -> slot:int -> int

val slot_of : depth:int -> int -> int
(** Ring slot of a free-running counter value. *)

(** {1 Byte (de)serialisation} *)

val write_sqe : bytes -> off:int -> sqe -> unit
val read_sqe : bytes -> off:int -> sqe
val write_cqe : bytes -> off:int -> cqe -> unit
val read_cqe : bytes -> off:int -> cqe
