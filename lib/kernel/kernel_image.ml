let name = "kernel"

(* A stand-in for the kernel's own translated image: enough shapes that
   verifying it exercises every invariant class — straight-line and
   looping memory traffic, memcpy (two masked operands), an atomic,
   direct calls, and an indirect call through a dispatch table. *)
let program () =
  let open Ir in
  let b = Builder.create () in

  (* checksum: XOR-fold [len] words starting at [base]. *)
  Builder.func b "checksum" ~params:[ "base"; "len" ];
  let acc0 = Builder.bin b Xor (Reg "base") (Reg "base") in
  Builder.store b ~src:acc0 ~addr:(Imm 0x10_0000L) ();
  Builder.store b ~src:(Reg "base") ~addr:(Imm 0x10_0008L) ();
  Builder.store b ~src:(Reg "len") ~addr:(Imm 0x10_0010L) ();
  Builder.br b "loop";
  Builder.block b "loop";
  let remaining = Builder.load b (Imm 0x10_0010L) in
  let done_ = Builder.cmp b Eq remaining (Imm 0L) in
  Builder.cbr b done_ "out" "body";
  Builder.block b "body";
  let p = Builder.load b (Imm 0x10_0008L) in
  let w = Builder.load b p in
  let acc = Builder.load b (Imm 0x10_0000L) in
  let acc = Builder.bin b Xor acc w in
  Builder.store b ~src:acc ~addr:(Imm 0x10_0000L) ();
  let p' = Builder.bin b Add p (Imm 8L) in
  Builder.store b ~src:p' ~addr:(Imm 0x10_0008L) ();
  let r' = Builder.bin b Sub remaining (Imm 1L) in
  Builder.store b ~src:r' ~addr:(Imm 0x10_0010L) ();
  Builder.br b "loop";
  Builder.block b "out";
  let result = Builder.load b (Imm 0x10_0000L) in
  Builder.ret b (Some result);

  (* copy_region: kernel memcpy plus an atomic generation bump. *)
  Builder.func b "copy_region" ~params:[ "dst"; "src"; "len" ];
  Builder.memcpy b ~dst:(Reg "dst") ~src:(Reg "src") ~len:(Reg "len");
  let _gen = Builder.atomic_rmw b Add ~addr:(Imm 0x10_0018L) (Imm 1L) in
  Builder.ret b None;

  (* dispatch: indirect call through a two-entry handler table. *)
  Builder.func b "handler_a" ~params:[ "x" ];
  let v = Builder.bin b Add (Reg "x") (Imm 1L) in
  Builder.ret b (Some v);
  Builder.func b "handler_b" ~params:[ "x" ];
  let v = Builder.bin b Mul (Reg "x") (Imm 3L) in
  Builder.ret b (Some v);
  Builder.func b "dispatch" ~params:[ "which"; "arg" ];
  let odd = Builder.bin b And (Reg "which") (Imm 1L) in
  let target = Builder.select b odd (Sym "handler_b") (Sym "handler_a") in
  let r = Builder.call_indirect b target [ Reg "arg" ] in
  Builder.ret b (Some r);

  (* main: the boot path ties it together with direct calls. *)
  Builder.func b "main" ~params:[];
  Builder.call_void b "copy_region"
    [ Imm 0x20_0000L; Imm 0x10_0000L; Imm 64L ];
  let sum = Builder.call b "checksum" [ Imm 0x20_0000L; Imm 8L ] in
  let r = Builder.call b "dispatch" [ sum; sum ] in
  Builder.ret b (Some r);

  Builder.program b
