type t = {
  chunks : bytes Queue.t;
  mutable front : bytes option; (* partially-consumed head chunk *)
  mutable size : int;
  capacity : int;
  mutable readers : int;
  mutable writers : int;
  read_wq : Waitq.t; (* woken when the pipe becomes readable / EOF *)
  write_wq : Waitq.t; (* woken when space frees up / readers vanish *)
}

let create ?(capacity = 65536) () =
  {
    chunks = Queue.create ();
    front = None;
    size = 0;
    capacity;
    readers = 0;
    writers = 0;
    read_wq = Waitq.create ~name:"pipe-read";
    write_wq = Waitq.create ~name:"pipe-write";
  }

let add_reader t = t.readers <- t.readers + 1
let add_writer t = t.writers <- t.writers + 1

let drop_reader t =
  t.readers <- max 0 (t.readers - 1);
  (* Writers blocked on a full pipe must wake to observe EPIPE. *)
  if t.readers = 0 then Waitq.wake t.write_wq

let drop_writer t =
  t.writers <- max 0 (t.writers - 1);
  (* Readers blocked on an empty pipe must wake to observe EOF. *)
  if t.writers = 0 then Waitq.wake t.read_wq

let bytes_available t = t.size
let room_available t = t.capacity - t.size

(* Level-triggered readiness: EOF and EPIPE count as ready, since the
   matching operation returns immediately. *)
let readable t = t.size > 0 || t.writers = 0
let writable t = t.size < t.capacity || t.readers = 0
let read_wq t = t.read_wq
let write_wq t = t.write_wq

let next_chunk t =
  match t.front with
  | Some b -> Some b
  | None -> if Queue.is_empty t.chunks then None else Some (Queue.pop t.chunks)

let read t n : bytes Errno.result =
  if n < 0 then Error Errno.EINVAL
  else if t.size = 0 then
    if t.writers > 0 then Error Errno.EAGAIN else Ok Bytes.empty
  else begin
    let out = Buffer.create (min n t.size) in
    let continue = ref true in
    while Buffer.length out < n && !continue do
      match next_chunk t with
      | None -> continue := false
      | Some chunk ->
          let want = n - Buffer.length out in
          if Bytes.length chunk <= want then begin
            Buffer.add_bytes out chunk;
            t.front <- None
          end
          else begin
            Buffer.add_bytes out (Bytes.sub chunk 0 want);
            t.front <- Some (Bytes.sub chunk want (Bytes.length chunk - want))
          end
    done;
    t.size <- t.size - Buffer.length out;
    if Buffer.length out > 0 then Waitq.wake t.write_wq;
    Ok (Buffer.to_bytes out)
  end

let write t src : int Errno.result =
  if t.readers = 0 then Error Errno.EPIPE
  else begin
    let room = t.capacity - t.size in
    if room = 0 then Error Errno.EAGAIN
    else begin
      let n = min room (Bytes.length src) in
      Queue.push (Bytes.sub src 0 n) t.chunks;
      t.size <- t.size + n;
      if n > 0 then Waitq.wake t.read_wq;
      Ok n
    end
  end
