(* Kernel spinlocks over the simulated cores.

   The simulator interleaves cores at syscall granularity, so a lock is
   never observed mid-critical-section by another core; what spinlocks
   cost on real SMP hardware is the coherence traffic — the lock's
   cache line migrating between cores.  That is what we charge: a core
   acquiring a lock last held by a different core pays
   [Cost.lock_transfer] and raises a [Lock_contend] event.  On a 1-CPU
   machine spinlocks charge nothing at all, exactly as uniprocessor
   kernel builds compile them away.

   Ownership is strictly enforced: releasing a lock you do not hold is
   a kernel bug, not a modelling artefact, and raises [Error]. *)

type t = {
  machine : Machine.t;
  name : string;
  mutable owner : int option; (* cpu currently inside the critical section *)
  mutable last_cpu : int; (* cache-line home; -1 until first acquire *)
  mutable acquisitions : int;
  mutable transfers : int;
}

exception Error of string

let create machine ~name =
  { machine; name; owner = None; last_cpu = -1; acquisitions = 0; transfers = 0 }

let name t = t.name
let holder t = t.owner
let held_by_current t = t.owner = Some (Machine.cpu t.machine)
let acquisitions t = t.acquisitions
let transfers t = t.transfers

let acquire t =
  let cpu = Machine.cpu t.machine in
  (match t.owner with
  | Some o ->
      raise
        (Error
           (Printf.sprintf "spinlock %s: cpu%d acquire while held by cpu%d" t.name
              cpu o))
  | None -> ());
  if Machine.cpus t.machine > 1 && t.last_cpu >= 0 && t.last_cpu <> cpu then begin
    Machine.charge ~tag:Obs.Tag.Lock t.machine Cost.lock_transfer;
    t.transfers <- t.transfers + 1;
    Machine.emit t.machine
      (Obs.Event.Lock_contend { name = t.name; cpu; last_cpu = t.last_cpu })
  end;
  t.owner <- Some cpu;
  t.last_cpu <- cpu;
  t.acquisitions <- t.acquisitions + 1

let release t =
  let cpu = Machine.cpu t.machine in
  match t.owner with
  | Some o when o = cpu -> t.owner <- None
  | Some o ->
      raise
        (Error
           (Printf.sprintf "spinlock %s: cpu%d released a lock held by cpu%d" t.name
              cpu o))
  | None ->
      raise (Error (Printf.sprintf "spinlock %s: cpu%d released an unheld lock" t.name cpu))

let with_lock t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f
