(** The kernel's physical-frame allocator.

    Owns a contiguous range of frame numbers (the machine's ordinary
    RAM, between the low frames the kernel image occupies and the high
    frames SVA reserved at boot).  The kernel draws frames from here
    for user pages, page-cache blocks, and — on request — hands frames
    to the Virtual Ghost VM for ghost memory. *)

type t

val create : first:int -> last:int -> t
(** Frames [first..last] inclusive are free initially. *)

val alloc : t -> int option
(** Take a frame; [None] when memory is exhausted. *)

val alloc_many : t -> int -> int list option
(** All-or-nothing allocation of [n] frames. *)

val free : t -> int -> unit
(** Return a frame. @raise Invalid_argument if the frame is outside the
    allocator's range or already free (double free). *)

val free_many : t -> int list -> unit
(** Return a batch of frames — the dual of {!alloc_many}.  The whole
    batch is validated first, so on @raise Invalid_argument (foreign,
    already-free or duplicated frame) no frame of the batch has been
    freed. *)

val free_count : t -> int
val total : t -> int
