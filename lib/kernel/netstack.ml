(* Frame format: type(1) conn(4) port(4) payload.

   Fabric frames (node-to-node links) prepend a 4-byte little-endian
   peer-node header to the same frame: on transmit it names the
   destination node; the switch rewrites it to the source node before
   forwarding, so the receiver knows whom to answer. *)

let ty_syn = 0
let ty_data = 1
let ty_fin = 2

let frame ~ty ~conn ~port payload =
  let b = Bytes.create (9 + Bytes.length payload) in
  Bytes.set b 0 (Char.chr ty);
  Bytes.set_int32_le b 1 (Int32.of_int conn);
  Bytes.set_int32_le b 5 (Int32.of_int port);
  Bytes.blit payload 0 b 9 (Bytes.length payload);
  b

let parse b =
  if Bytes.length b < 9 then None
  else
    Some
      ( Char.code (Bytes.get b 0),
        Int32.to_int (Bytes.get_int32_le b 1),
        Int32.to_int (Bytes.get_int32_le b 5),
        Bytes.sub b 9 (Bytes.length b - 9) )

type addr = Local of int | Peer of { node : int; port : int }

(* One syscall argument encodes both address forms: the low 16 bits are
   the port, the bits above carry (node + 1) for [Peer] and zero for
   [Local].  [Local port] therefore encodes to exactly [port], keeping
   the wire ABI (and every SFIP profile and cycle golden) of the
   pre-fleet [connect ~port] form. *)
let addr_to_wire = function
  | Local port -> Int64.of_int (port land 0xffff)
  | Peer { node; port } -> Int64.of_int (((node + 1) lsl 16) lor (port land 0xffff))

let addr_of_wire w =
  let w = Int64.to_int w land 0x7fffffff in
  let hi = w lsr 16 and port = w land 0xffff in
  if hi = 0 then Local port else Peer { node = hi - 1; port }

let addr_to_string = function
  | Local port -> Printf.sprintf "local:%d" port
  | Peer { node; port } -> Printf.sprintf "node%d:%d" node port

(* Which link a connection lives on: the classic harness wire (the
   paper's dedicated GbE to the load generator) or the fleet fabric,
   in which case we remember the peer node for outbound frames. *)
type link = Wire | Fabric_link of int

type conn_state = {
  inbox : Pipe_dev.t;
  mutable peer_closed : bool;
  port : int;
  link : link;
}

type listener = { backlog : int Queue.t; wq : Waitq.t }

type fabric = { node : int; fnic : Nic.t; pump : unit -> unit }

type t = {
  nic : Nic.t;
  kmem : Kmem.t;
  listeners : (int, listener) Hashtbl.t;
  conns : (int, conn_state) Hashtbl.t;
  mutable fabric : fabric option;
}

let create ~kmem nic =
  { nic; kmem; listeners = Hashtbl.create 8; conns = Hashtbl.create 32; fabric = None }

let attach_fabric t ~node fnic ~pump = t.fabric <- Some { node; fnic; pump }
let node_id t = Option.map (fun f -> f.node) t.fabric

let fabric_frame ~peer inner =
  let b = Bytes.create (4 + Bytes.length inner) in
  Bytes.set_int32_le b 0 (Int32.of_int peer);
  Bytes.blit inner 0 b 4 (Bytes.length inner);
  b

let transmit_on t link fr =
  match link with
  | Wire -> Nic.transmit t.nic fr
  | Fabric_link peer -> (
      match t.fabric with
      | None -> () (* fabric detached: frame drops on the floor *)
      | Some f -> Nic.transmit f.fnic (fabric_frame ~peer fr))

let listen t ~port =
  if Hashtbl.mem t.listeners port then Error Errno.EEXIST
  else begin
    Hashtbl.replace t.listeners port
      { backlog = Queue.create (); wq = Waitq.create ~name:(Printf.sprintf "listen:%d" port) };
    Ok ()
  end

(* Demux one parsed frame into inboxes/accept queues.  [link] records
   where an inbound SYN came from so replies go back the same way. *)
let deliver t ~link (ty, conn, port, payload) =
  if ty = ty_syn then begin
    match Hashtbl.find_opt t.listeners port with
    | None -> () (* connection refused: silently dropped *)
    | Some l ->
        let state =
          { inbox = Pipe_dev.create ~capacity:(1 lsl 22) (); peer_closed = false; port; link }
        in
        Pipe_dev.add_reader state.inbox;
        Pipe_dev.add_writer state.inbox;
        Hashtbl.replace t.conns conn state;
        Queue.push conn l.backlog;
        Waitq.wake l.wq
  end
  else begin
    match Hashtbl.find_opt t.conns conn with
    | None -> ()
    | Some state ->
        if ty = ty_fin then begin
          state.peer_closed <- true;
          (* Sleepers must observe the EOF edge. *)
          Waitq.wake (Pipe_dev.read_wq state.inbox)
        end
        else ignore (Pipe_dev.write state.inbox payload)
  end

let poll t =
  let continue = ref true in
  while !continue do
    match Nic.receive t.nic with
    | None -> continue := false
    | Some raw -> (
        (* Interrupt handler + demux are instrumented kernel code. *)
        Kmem.fn_entry t.kmem;
        Kmem.work t.kmem 20;
        match parse raw with
        | None -> ()
        | Some fr -> deliver t ~link:Wire fr)
  done;
  match t.fabric with
  | None -> ()
  | Some f ->
      (* Let the switch forward anything queued on other nodes, then
         drain our fabric port.  The 4-byte header now names the frame's
         source node (the switch rewrote it in flight). *)
      f.pump ();
      let continue = ref true in
      while !continue do
        match Nic.receive f.fnic with
        | None -> continue := false
        | Some raw ->
            Kmem.fn_entry t.kmem;
            Kmem.work t.kmem 20;
            if Bytes.length raw > 4 then begin
              let src = Int32.to_int (Bytes.get_int32_le raw 0) in
              match parse (Bytes.sub raw 4 (Bytes.length raw - 4)) with
              | None -> ()
              | Some fr -> deliver t ~link:(Fabric_link src) fr
            end
      done

let accept t ~port =
  poll t;
  Kmem.work t.kmem 15;
  match Hashtbl.find_opt t.listeners port with
  | None -> None
  | Some l -> if Queue.is_empty l.backlog then None else Some (Queue.pop l.backlog)

(* Non-consuming readiness queries (the poll syscall's view).  They
   drain the NIC first — the driver's interrupt handler runs whenever
   the kernel looks at the network — but never pop a backlog entry or
   inbox byte. *)

let pending_accept t ~port =
  poll t;
  Kmem.work t.kmem 5;
  match Hashtbl.find_opt t.listeners port with
  | None -> false
  | Some l -> not (Queue.is_empty l.backlog)

let conn_readable t ~conn =
  poll t;
  Kmem.work t.kmem 5;
  match Hashtbl.find_opt t.conns conn with
  | None -> true (* a dead descriptor is "ready": reads report the error *)
  | Some state -> Pipe_dev.bytes_available state.inbox > 0 || state.peer_closed

let listen_wq t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> None
  | Some l -> Some l.wq

let conn_wq t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> None
  | Some state -> Some (Pipe_dev.read_wq state.inbox)

let send t ~conn data =
  Kmem.work t.kmem 25;
  match Hashtbl.find_opt t.conns conn with
  | None -> Error Errno.EBADF
  | Some state ->
      transmit_on t state.link (frame ~ty:ty_data ~conn ~port:state.port data);
      Ok (Bytes.length data)

let recv t ~conn n =
  poll t;
  Kmem.work t.kmem 25;
  match Hashtbl.find_opt t.conns conn with
  | None -> Error Errno.EBADF
  | Some state -> (
      match Pipe_dev.read state.inbox n with
      | Ok b when Bytes.length b = 0 && not state.peer_closed -> Error Errno.EAGAIN
      | Error Errno.EAGAIN when state.peer_closed -> Ok Bytes.empty
      | r -> r)

let next_outbound = ref 5000

let connect_link t ~link ~port =
  incr next_outbound;
  let conn = !next_outbound in
  let state =
    { inbox = Pipe_dev.create ~capacity:(1 lsl 22) (); peer_closed = false; port; link }
  in
  Pipe_dev.add_reader state.inbox;
  Pipe_dev.add_writer state.inbox;
  Hashtbl.replace t.conns conn state;
  Kmem.work t.kmem 30;
  transmit_on t link (frame ~ty:ty_syn ~conn ~port Bytes.empty);
  conn

let connect t ~port = connect_link t ~link:Wire ~port

let connect_to t addr =
  match addr with
  | Local port -> Ok (connect t ~port)
  | Peer { node; port } -> (
      match t.fabric with
      | None -> Error Errno.ECONNREFUSED (* no fabric: the peer is unreachable *)
      | Some _ -> Ok (connect_link t ~link:(Fabric_link node) ~port))

let close t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> ()
  | Some state ->
      transmit_on t state.link (frame ~ty:ty_fin ~conn ~port:state.port Bytes.empty);
      (* Local sleepers on this connection observe the close. *)
      Waitq.wake (Pipe_dev.read_wq state.inbox);
      Hashtbl.remove t.conns conn

module Remote = struct
  type endpoint = {
    nic : Nic.t;
    conn : int;
    port : int;
    stash : bytes Queue.t; (* frames for us, popped out of order *)
  }

  let next_conn = ref 1000

  (* Live endpoints by connection id (ids are globally unique), so a
     frame popped off the shared NIC queue by one endpoint can be
     delivered to the sibling it belongs to instead of being lost —
     concurrent connections interleave their frames arbitrarily. *)
  let by_conn : (int, endpoint) Hashtbl.t = Hashtbl.create 32

  let stash_for ~conn payload =
    match Hashtbl.find_opt by_conn conn with
    | Some other -> Queue.push payload other.stash
    | None -> () (* connection closed: drop *)

  let connect nic ~port =
    incr next_conn;
    let conn = !next_conn in
    Nic.transmit nic (frame ~ty:ty_syn ~conn ~port Bytes.empty);
    let ep = { nic; conn; port; stash = Queue.create () } in
    Hashtbl.replace by_conn conn ep;
    ep

  let rec accept nic =
    match Nic.receive nic with
    | None -> None
    | Some raw -> (
        match parse raw with
        | Some (ty, conn, port, _) when ty = ty_syn ->
            let ep = { nic; conn; port; stash = Queue.create () } in
            Hashtbl.replace by_conn conn ep;
            Some ep
        | Some (ty, conn, _, payload) when ty = ty_data ->
            stash_for ~conn payload;
            accept nic
        | _ -> accept nic (* stale FIN from a closed connection *))

  let send ep payload = Nic.transmit ep.nic (frame ~ty:ty_data ~conn:ep.conn ~port:ep.port payload)

  let rec recv ep =
    if not (Queue.is_empty ep.stash) then Some (Queue.pop ep.stash)
    else begin
      match Nic.receive ep.nic with
      | None -> None
      | Some raw -> (
          match parse raw with
          | Some (ty, conn, _, payload) when conn = ep.conn && ty = ty_data -> Some payload
          | Some (ty, conn, _, payload) when ty = ty_data ->
              (* a sibling's frame: deliver to its stash, keep looking *)
              stash_for ~conn payload;
              recv ep
          | _ -> recv ep)
    end

  let recv_all_available ep =
    let out = Buffer.create 4096 in
    let continue = ref true in
    while !continue do
      match recv ep with
      | Some b -> Buffer.add_bytes out b
      | None -> continue := false
    done;
    Buffer.to_bytes out

  let close ep =
    Hashtbl.remove by_conn ep.conn;
    Nic.transmit ep.nic (frame ~ty:ty_fin ~conn:ep.conn ~port:ep.port Bytes.empty)
  let conn_id ep = ep.conn
end
