type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | ENOEXEC
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ECONNREFUSED
  | ESFIP

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | ENOEXEC -> "ENOEXEC"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EFAULT -> "EFAULT"
  | EEXIST -> "EEXIST"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | EPIPE -> "EPIPE"
  | ENOSYS -> "ENOSYS"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ECONNREFUSED -> "ECONNREFUSED"
  | ESFIP -> "ESFIP"

let to_int = function
  | EPERM -> 1
  | ENOENT -> 2
  | ESRCH -> 3
  | EINTR -> 4
  | ENOEXEC -> 8
  | EBADF -> 9
  | ECHILD -> 10
  | EAGAIN -> 11
  | ENOMEM -> 12
  | EACCES -> 13
  | EFAULT -> 14
  | EEXIST -> 17
  | ENOTDIR -> 20
  | EISDIR -> 21
  | EINVAL -> 22
  | ENFILE -> 23
  | EMFILE -> 24
  | ENOSPC -> 28
  | EPIPE -> 32
  | ENOSYS -> 78
  | ENOTEMPTY -> 66
  | ECONNREFUSED -> 61
  (* EPERM-class but distinct: a syscall-flow-integrity kill must not be
     confused with argument defusal (EPERM) or a bad pointer (EFAULT).
     97 is unclaimed by every other constructor here. *)
  | ESFIP -> 97

let all =
  [
    EPERM; ENOENT; ESRCH; EINTR; EBADF; ECHILD; ENOEXEC; EAGAIN; ENOMEM;
    EACCES; EFAULT; EEXIST; ENOTDIR; EISDIR; EINVAL; ENFILE; EMFILE; ENOSPC;
    EPIPE; ENOSYS; ENOTEMPTY; ECONNREFUSED; ESFIP;
  ]

(* [to_int] is injective over [all], so numbered ABI results round-trip:
   an errno encoded as a negative return value decodes back to itself. *)
let of_int n = List.find_opt (fun e -> to_int e = n) all
let of_string s = List.find_opt (fun e -> to_string e = s) all
let pp fmt e = Format.pp_print_string fmt (to_string e)

type 'a result = ('a, t) Stdlib.result
