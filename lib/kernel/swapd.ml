let swap_dir = "/swap"

let blob_path (proc : Proc.t) vpage =
  Printf.sprintf "%s/p%d-%Lx" swap_dir proc.Proc.pid vpage

let ensure_swap_dir k =
  match Diskfs.lookup k.Kernel.fs swap_dir with
  | Ok _ -> ()
  | Error _ -> ignore (Diskfs.mkdir k.Kernel.fs swap_dir)

let page_va vpage = Int64.shift_left vpage 12

let vpage_of va = Int64.shift_right_logical va 12

(* Resident ghost pages of one process: (vpage, present). *)
let ghost_vpages (proc : Proc.t) =
  List.concat_map
    (fun (base, pages) ->
      List.init pages (fun i -> Int64.add (vpage_of base) (Int64.of_int i)))
    proc.Proc.ghost_regions

let resident_ghost_pages k (proc : Proc.t) =
  ignore k;
  List.length
    (List.filter
       (fun vpage -> Pagetable.lookup proc.Proc.pt ~vpage <> None)
       (ghost_vpages proc))

let is_swapped_out k (proc : Proc.t) va =
  match Diskfs.lookup k.Kernel.fs (blob_path proc (vpage_of va)) with
  | Ok _ -> true
  | Error _ -> false

(* Pick a victim: the first resident ghost page of the process with the
   most resident ghost pages (a crude global-LRU stand-in). *)
let pick_victim k =
  let best = ref None in
  Hashtbl.iter
    (fun _ (proc : Proc.t) ->
      if not (Proc.is_zombie proc) then begin
        let resident =
          List.filter (fun vp -> Pagetable.lookup proc.Proc.pt ~vpage:vp <> None)
            (ghost_vpages proc)
        in
        match (resident, !best) with
        | [], _ -> ()
        | vp :: _, None -> best := Some (proc, vp, List.length resident)
        | vp :: _, Some (_, _, n) when List.length resident > n ->
            best := Some (proc, vp, List.length resident)
        | _ -> ()
      end)
    k.Kernel.procs;
  !best

let swap_out_one k =
  match pick_victim k with
  | None -> Error "swapd: no resident ghost pages to evict"
  | Some (proc, vpage, _) -> (
      Kmem.fn_entry k.Kernel.kmem;
      Kmem.work k.Kernel.kmem 80;
      match
        Sva.swap_out_ghost k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt
          ~va:(page_va vpage)
      with
      | Error msg -> Error msg
      | Ok (frame, blob) -> (
          ensure_swap_dir k;
          let path = blob_path proc vpage in
          let write_blob () =
            let ino_result =
              match Diskfs.lookup k.Kernel.fs path with
              | Ok ino ->
                  ignore (Diskfs.truncate k.Kernel.fs ~ino ~len:0);
                  Ok ino
              | Error Errno.ENOENT -> Diskfs.create k.Kernel.fs path
              | Error _ as e -> e
            in
            match ino_result with
            | Error e -> Error (Errno.to_string e)
            | Ok ino -> (
                match Diskfs.write k.Kernel.fs ~ino ~off:0 blob with
                | Ok _ -> Ok ()
                | Error e -> Error (Errno.to_string e))
          in
          match write_blob () with
          | Error _ as e -> e
          | Ok () ->
              Frame_alloc.free k.Kernel.frames frame;
              Ok ()))

let ensure_frames k ~wanted =
  let guard = ref 4096 in
  while Frame_alloc.free_count k.Kernel.frames < wanted && !guard > 0 do
    decr guard;
    match swap_out_one k with Ok () -> () | Error _ -> guard := 0
  done

let swap_in k (proc : Proc.t) va =
  let vpage = vpage_of va in
  let path = blob_path proc vpage in
  match Diskfs.lookup k.Kernel.fs path with
  | Error _ -> Error Errno.EFAULT
  | Ok ino -> (
      (* Fault accounting: hardware fault, VM trap, handler work. *)
      Machine.charge ~tag:Obs.Tag.Page_fault k.Kernel.machine Cost.page_fault_hw;
      Sva.enter_trap k.Kernel.sva ~tid:proc.Proc.tid;
      Kmem.fn_entry k.Kernel.kmem;
      Kmem.work k.Kernel.kmem 100;
      let finish result =
        Sva.return_from_trap k.Kernel.sva ~tid:proc.Proc.tid;
        result
      in
      let blob =
        match Diskfs.stat k.Kernel.fs ~ino with
        | Ok st -> (
            match Diskfs.read k.Kernel.fs ~ino ~off:0 ~len:st.Diskfs.size with
            | Ok b -> Some b
            | Error _ -> None)
        | Error _ -> None
      in
      match blob with
      | None -> finish (Error Errno.EFAULT)
      | Some blob -> (
          (* Make room if memory is still tight. *)
          if Frame_alloc.free_count k.Kernel.frames = 0 then ensure_frames k ~wanted:1;
          match Frame_alloc.alloc k.Kernel.frames with
          | None -> finish (Error Errno.ENOMEM)
          | Some frame -> (
              match
                Sva.swap_in_ghost k.Kernel.sva ~pid:proc.Proc.pid ~pt:proc.Proc.pt
                  ~va:(page_va vpage) ~frame ~blob
              with
              | Ok () ->
                  ignore (Diskfs.unlink k.Kernel.fs path);
                  finish (Ok ())
              | Error msg ->
                  Frame_alloc.free k.Kernel.frames frame;
                  Console.write (Machine.console k.Kernel.machine) ("swapd: " ^ msg);
                  finish (Error Errno.EACCES))))
