(* Mutable state of the ghost-swap pressure engine.

   This record lives inside [Kernel.t] but holds nothing that needs the
   kernel type itself — only frame numbers, (pid, vpage) page
   identities and counters — so it sits below [Kernel] in the module
   graph while the engine proper ([Ghost_swap]) sits above it.

   Everything in here is populated exclusively by swap activity: when
   swapping never triggers, the pools stay empty and the clock queue
   holds only untouched registration entries, so non-swapping runs are
   cycle-identical to a kernel without the engine. *)

type page = int * int64 (* (pid, vpage) *)

type t = {
  lock : Spinlock.t;
  (* Watermark hysteresis: reclaim engages only when availability drops
     below [low] and then runs until it reaches [high], so the engine
     cannot ping-pong at a single boundary. *)
  mutable low : int;
  mutable high : int;
  (* Per-core frame caches over the global allocator, filled by
     swap-out and drained by ghost allocation / swap-in. *)
  pools : int list array;
  mutable pooled : int;
  pool_target : int;
  (* Second-chance clock over resident ghost pages: registration order
     with a referenced bit; entries are validated lazily against the
     page tables, so freegm/exit need no hook here. *)
  clock : page Queue.t;
  on_clock : (page, unit) Hashtbl.t;
  referenced : (page, unit) Hashtbl.t;
  (* Pages with a swap-in in flight: a second faulting core waits
     instead of double-restoring, and the eviction scan skips them. *)
  inflight : (page, unit) Hashtbl.t;
  mutable swap_outs : int;
  mutable swap_ins : int;
  mutable refusals : int;
  mutable reclaims : int;
  mutable daemon_wakeups : int;
  mutable daemon_stop : bool;
}

let create machine ~cpus ~total_frames =
  let low = max 4 (total_frames / 32) in
  {
    lock = Spinlock.create machine ~name:"ghost-swap";
    low;
    high = max (2 * low) (total_frames / 16);
    pools = Array.make cpus [];
    pooled = 0;
    pool_target = 8;
    clock = Queue.create ();
    on_clock = Hashtbl.create 256;
    referenced = Hashtbl.create 256;
    inflight = Hashtbl.create 8;
    swap_outs = 0;
    swap_ins = 0;
    refusals = 0;
    reclaims = 0;
    daemon_wakeups = 0;
    daemon_stop = false;
  }
