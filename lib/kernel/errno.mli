(** Unix-style error codes used throughout the kernel's system-call
    layer. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | ENOEXEC
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ECONNREFUSED
  | ESFIP
      (** syscall-flow-integrity kill: the process issued a syscall (or a
          ring batch) outside its signed transition profile.  EPERM-class,
          but deliberately distinct from both [EPERM] (argument defusal)
          and [EFAULT] (bad pointer). *)

val all : t list
(** Every errno, in declaration order (drives the numbered-ABI
    round-trip property tests). *)

val to_string : t -> string
val to_int : t -> int
(** Conventional positive errno numbers (injective over {!all}). *)

val of_int : int -> t option
(** Inverse of {!to_int}: [of_int (to_int e) = Some e] for every [e].
    The decode half of the numbered ABI's result convention. *)

val of_string : string -> t option
(** Inverse of {!to_string} (and of what {!pp} prints). *)

val pp : Format.formatter -> t -> unit
(** Prints the symbolic name ([EPERM], ...); usable as [%a] so callers
    report failures uniformly instead of hand-rolling match arms. *)

type 'a result = ('a, t) Stdlib.result
(** The return type of every system call. *)
