(** Unix-style error codes used throughout the kernel's system-call
    layer. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | ENOEXEC
  | EAGAIN
  | ENOMEM
  | EACCES
  | EFAULT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOSPC
  | EPIPE
  | ENOSYS
  | ENOTEMPTY
  | ECONNREFUSED

val to_string : t -> string
val to_int : t -> int
(** Conventional positive errno numbers. *)

val pp : Format.formatter -> t -> unit
(** Prints the symbolic name ([EPERM], ...); usable as [%a] so callers
    report failures uniformly instead of hand-rolling match arms. *)

type 'a result = ('a, t) Stdlib.result
(** The return type of every system call. *)
