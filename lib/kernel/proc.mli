(** Kernel process objects.

    A process owns an address space (its page table), one thread (the
    SVA thread id, whose Interrupt Context the VM guards), a descriptor
    table, its traditional user pages, and the ghost regions it has
    allocated.  [code_map] is the simulator's stand-in for the text
    segment: the userland runtime registers an executable closure per
    code address, and "executing at pc X" means running the closure
    registered at X — which is how injected-code attacks are expressed
    (see the attack suite). *)

type fd_kind =
  | File of { ino : int; mutable offset : int }
  | Pipe_read of Pipe_dev.t
  | Pipe_write of Pipe_dev.t
  | Sock_listen of int  (** bound port *)
  | Sock_conn of int  (** connection id *)
  | Console_out

type state = Running | Zombie of int  (** exit status *)

type t = {
  pid : int;
  mutable parent : int;
  pt : Pagetable.t;
  tid : int;
  fds : (int, fd_kind) Hashtbl.t;
  mutable next_fd : int;
  user_frames : (int64, int) Hashtbl.t;  (** user vpage -> frame *)
  cow : (int64, unit) Hashtbl.t;  (** vpages shared copy-on-write *)
  mutable ghost_regions : (int64 * int) list;  (** base va, page count *)
  mutable mmap_cursor : int64;
  mutable state : state;
  signal_handlers : (int, int64) Hashtbl.t;  (** signum -> handler pc *)
  code_map : (int64, int64 -> unit) Hashtbl.t;
  mutable image : Appimage.t option;
  blocking : (int, unit) Hashtbl.t;  (** fds opted into blocking I/O *)
  mutable policy : Syscall_policy.t option;
      (** syscall-flow-integrity state; [None] = unprofiled (no checks,
          no cycle charges).  Installed by [execve] from the signed
          image's profile, or by the userland runtime's [?sfip]. *)
}

val make : pid:int -> parent:int -> pt:Pagetable.t -> tid:int -> t

val add_fd : t -> fd_kind -> int
(** Install a descriptor at the lowest free number. *)

val find_fd : t -> int -> fd_kind option
val remove_fd : t -> int -> unit

val set_blocking : t -> int -> bool -> unit
(** Opt a descriptor into (or out of) blocking I/O.  Descriptors are
    born non-blocking — the historical contract of this kernel's
    cooperative scheduler — so event-loop code works unchanged and
    blocking is a per-fd opt-in. *)

val is_blocking : t -> int -> bool

val is_zombie : t -> bool
