(** The simulator's cycle cost model.

    Absolute values approximate the paper's testbed (Core i7-3770 at
    3.4 GHz, GbE network, SATA SSD) only loosely; their purpose is to
    make the {e relative} costs realistic: per-instruction work versus
    trap overhead versus device latencies versus wire time.  The
    reproduction targets the shape of the paper's results, and these
    constants are the knobs the shape rests on.  All values are CPU
    cycles unless stated otherwise. *)

val cpu_hz : float
(** 3.4 GHz, matching the paper's machine. *)

val mem_access : int
(** Base cost of one kernel/user memory access that hits the TLB. *)

val tlb_miss : int
(** Additional cost of a hardware page-table walk. *)

val sandbox_mask : int
(** Extra cycles per kernel memory operand in a Virtual Ghost build:
    the compare/or/select ghost mask plus the SVA-internal-memory
    check (7 extra instructions, paper section 5). *)

val cfi_call : int
(** Extra cycles per kernel function entry/exit pair under CFI
    (label fetch + compare + target masking). *)

val trap_entry : int
(** Hardware trap/interrupt entry + native kernel save/restore. *)

val vg_trap_extra : int
(** Extra trap cost in a Virtual Ghost build: saving the Interrupt
    Context into SVA-internal memory via the IST and zeroing
    general-purpose registers before the kernel sees them. *)

val syscall_return : int
(** Return-to-user cost (shared by both builds). *)

val context_switch : int
(** Scheduler context-switch cost excluding TLB refill. *)

val page_fault_hw : int
(** Hardware fault delivery cost before any handler runs. *)

val zero_page : int
(** Zeroing one 4 KiB frame. *)

val copy_per_byte_num : int
val copy_per_byte_den : int
(** Bulk copy costs [num/den] cycles per byte (both builds). *)

val disk_latency : int
(** Per-operation SSD latency. *)

val disk_per_byte : int
(** SSD transfer cost per byte. *)

val nic_per_byte : int
(** Gigabit wire time per byte (~27 cycles at 3.4 GHz). *)

val nic_per_packet : int
(** Per-packet driver + interrupt overhead. *)

val tcp_handshake : int
(** Connection-establishment round trips charged by request
    generators (ApacheBench-style clients open a fresh connection per
    request). *)

val aes_per_byte : int
(** Software AES cost, charged for ghost-page swap encryption and for
    the Overshadow/InkTag-style encrypt-on-access ablation. *)

val sha_per_byte : int
(** Software hashing cost for page checksums. *)

val timer_irq : int
(** Local-APIC timer interrupt delivery + acknowledge on one core
    (trap cost excluded — the tick is serviced at a trap boundary). *)

val ipi_send : int
(** Sending one inter-processor interrupt (ICR write + bus). *)

val ipi_deliver : int
(** Receiving an IPI on a remote core: interrupt delivery plus the
    TLB-invalidation work of a shootdown. *)

val lock_transfer : int
(** Cache-line transfer when a spinlock last held on another core is
    acquired (coherence miss).  Same-core reacquisition is free — a
    uniprocessor kernel compiles spinlocks away entirely. *)

val sva_swap_smp : int
(** Extra cost of [sva.swap.integer] on a multi-CPU machine: the VM's
    cross-CPU run-state check that refuses to resume a thread already
    live on another core. *)

val cache_miss : int
(** Extra cost of a data access that misses the simulated cache-line
    state.  Only charged on machines created with a non-zero
    speculation depth — the cache side channel does not exist (and
    costs nothing) otherwise. *)

val copy_cycles : int -> int
(** [copy_cycles n] is the cost of copying [n] bytes. *)

val to_seconds : int -> float
(** Convert cycles to seconds at {!cpu_hz}. *)

val to_microseconds : int -> float
