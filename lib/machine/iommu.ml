type t = {
  mutable protected_ : int -> bool;
  (* Notified with the offending frame just before a DMA is blocked, so
     the machine can surface the denial as a security event. *)
  mutable observer : int -> unit;
}

exception Dma_blocked of int

let create () = { protected_ = (fun _ -> false); observer = (fun _ -> ()) }
let set_protected t p = t.protected_ <- p
let set_observer t f = t.observer <- f
let frame_allowed t f = not (t.protected_ f)

let check_range t ~addr ~len =
  let first = Int64.to_int (Int64.shift_right_logical addr 12) in
  let last = Int64.to_int (Int64.shift_right_logical (Int64.add addr (Int64.of_int (max 0 (len - 1)))) 12) in
  for f = first to last do
    if t.protected_ f then begin
      t.observer f;
      raise (Dma_blocked f)
    end
  done

let dma_write t mem ~addr src =
  check_range t ~addr ~len:(Bytes.length src);
  Phys_mem.write_bytes mem ~addr src

let dma_read t mem ~addr ~len =
  check_range t ~addr ~len;
  Phys_mem.read_bytes mem ~addr ~len
