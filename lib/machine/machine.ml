type privilege = User | Kernel
type access = Read | Write | Exec

exception Page_fault of { va : int64; access : access; present : bool }

(* One CPU core: its own privilege level, cycle clock, TLB, installed
   address space and local-APIC timer.  The simulator runs cores one at
   a time (see [switch_core]); parallelism is modelled by each core
   accumulating cycles independently, with wall-clock time being the
   maximum over the cores' clocks. *)
type core = {
  id : int;
  mutable privilege : privilege;
  mutable cycles : int;
  (* TLB: vpage -> pte, invalidated wholesale on context switch. *)
  tlb : (int64, Pagetable.pte) Hashtbl.t;
  mutable current_pt : Pagetable.t;
  mutable timer_period : int; (* 0 = disarmed *)
  mutable timer_deadline : int;
  mutable ipis_received : int;
}

type t = {
  mem : Phys_mem.t;
  kernel_pt : Pagetable.t;
  cores : core array;
  mutable cur : int;
  console : Console.t;
  disk : Disk.t;
  nic : Nic.t;
  remote_nic : Nic.t;
  iommu : Iommu.t;
  tpm : Tpm.t;
  obs : Obs.t;
  (* Speculation model.  [spec_depth] is the transient-window budget in
     macro-ops; 0 means the machine has no speculation at all and the
     cache side channel below is never consulted, keeping depth-0 cycle
     counts byte-identical to machines built before this field existed. *)
  spec_depth : int;
  (* VA-indexed cache-line presence set (line = va >> 6).  Only the
     word-sized access paths consult it; bulk copies are modelled as
     non-temporal. *)
  cache_lines : (int64, unit) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable spec_windows : int;
  mutable spec_transient : int;
}

let cpus t = Array.length t.cores
let cpu t = t.cur
let core t = t.cores.(t.cur)

let switch_core t i =
  if i < 0 || i >= cpus t then invalid_arg "Machine.switch_core";
  t.cur <- i

(* Observability never touches the clock: the core's clock advances by
   [n] whether or not a sink is attached, so simulated cycle counts are
   byte-identical with observation on or off. *)
let charge ?(tag = Obs.Tag.Other) t n =
  let c = core t in
  c.cycles <- c.cycles + n;
  if Obs.is_armed t.obs then Obs.charge t.obs ~cycles:c.cycles tag n

let cycles t = (core t).cycles
let core_cycles t i = t.cores.(i).cycles

let max_cycles t = Array.fold_left (fun acc c -> max acc c.cycles) 0 t.cores

let elapsed_seconds t = Cost.to_seconds (max_cycles t)

let reset_clock t =
  Array.iter
    (fun c ->
      c.cycles <- 0;
      if c.timer_period > 0 then c.timer_deadline <- c.timer_period)
    t.cores

let obs t = t.obs
let tracing t = Obs.is_armed t.obs
let emit t ev = if Obs.is_armed t.obs then Obs.event t.obs ~cycles:(core t).cycles ev

let make_core id =
  {
    id;
    privilege = Kernel;
    cycles = 0;
    tlb = Hashtbl.create 512;
    current_pt = Pagetable.create ();
    timer_period = 0;
    timer_deadline = 0;
    ipis_received = 0;
  }

let create ?(cpus = 1) ?(phys_frames = 32768) ?(disk_sectors = 65536)
    ?(obs = Obs.default) ?(spec_depth = 0) ~seed () =
  if cpus < 1 then invalid_arg "Machine.create: cpus must be >= 1";
  let mem = Phys_mem.create ~frames:phys_frames in
  let rec t =
    lazy
      (let charge_as tag n = charge ~tag (Lazy.force t) n in
       let nic, remote_nic = Nic.pair ~charge:(charge_as Obs.Tag.Net) () in
       {
         mem;
         kernel_pt = Pagetable.create ();
         cores = Array.init cpus make_core;
         cur = 0;
         console = Console.create ();
         disk = Disk.create ~charge:(charge_as Obs.Tag.Disk) ~sectors:disk_sectors ();
         nic;
         remote_nic;
         iommu = Iommu.create ();
         tpm = Tpm.create ~seed;
         obs;
         spec_depth;
         cache_lines = Hashtbl.create 1024;
         cache_hits = 0;
         cache_misses = 0;
         spec_windows = 0;
         spec_transient = 0;
       })
  in
  let m = Lazy.force t in
  Iommu.set_observer m.iommu (fun frame ->
      emit m
        (Obs.Event.Security
           { subsystem = "iommu"; detail = Printf.sprintf "DMA blocked on protected frame %d" frame }));
  m

let privilege t = (core t).privilege
let set_privilege t p = (core t).privilege <- p
let kernel_pt t = t.kernel_pt
let current_pt t = (core t).current_pt
let flush_tlb t = Hashtbl.reset (core t).tlb

let set_current_pt t pt =
  let c = core t in
  c.current_pt <- pt;
  charge ~tag:Obs.Tag.Context_switch t Cost.context_switch;
  flush_tlb t

(* TLB shootdown: invalidate every remote core's TLB via IPI.  On a
   single-CPU machine this is nothing at all — the local core's TLB is
   managed by explicit [flush_tlb] calls exactly as before, so
   uniprocessor cycle counts are untouched.  With several CPUs the
   sender pays one ICR write per remote core and each remote core pays
   interrupt delivery + invalidation, charged to its own clock. *)
let tlb_shootdown t =
  let n = cpus t in
  if n > 1 then begin
    let sender = core t in
    Array.iter
      (fun c ->
        if c.id <> sender.id then begin
          charge ~tag:Obs.Tag.Ipi t Cost.ipi_send;
          Hashtbl.reset c.tlb;
          c.cycles <- c.cycles + Cost.ipi_deliver;
          if Obs.is_armed t.obs then
            Obs.charge t.obs ~cycles:c.cycles Obs.Tag.Ipi Cost.ipi_deliver;
          c.ipis_received <- c.ipis_received + 1;
          emit t (Obs.Event.Ipi { from_cpu = sender.id; to_cpu = c.id })
        end)
      t.cores
  end

let ipis_received t i = t.cores.(i).ipis_received

(* -- per-core timer --------------------------------------------------- *)

let arm_timer t ~period =
  if period <= 0 then invalid_arg "Machine.arm_timer: period must be > 0";
  Array.iter
    (fun c ->
      c.timer_period <- period;
      c.timer_deadline <- c.cycles + period)
    t.cores

let disarm_timer t =
  Array.iter
    (fun c ->
      c.timer_period <- 0;
      c.timer_deadline <- 0)
    t.cores

let timer_pending t =
  let c = core t in
  c.timer_period > 0 && c.cycles >= c.timer_deadline

let ack_timer t =
  let c = core t in
  if c.timer_period > 0 then begin
    charge ~tag:Obs.Tag.Timer t Cost.timer_irq;
    emit t (Obs.Event.Timer_tick { cpu = c.id });
    while c.timer_deadline <= c.cycles do
      c.timer_deadline <- c.timer_deadline + c.timer_period
    done
  end

(* -- virtual memory --------------------------------------------------- *)

(* The kernel half of the address space (including SVA-internal memory)
   is translated through the shared kernel page table; user and ghost
   partitions through the per-process table. *)
let table_for t va =
  if Vg_util.Layout.in_kernel va then t.kernel_pt else (core t).current_pt

let lookup_pte t va =
  let c = core t in
  let vpage = Int64.shift_right_logical va 12 in
  match Hashtbl.find_opt c.tlb vpage with
  | Some pte -> pte
  | None -> (
      charge ~tag:Obs.Tag.Tlb t Cost.tlb_miss;
      match Pagetable.lookup (table_for t va) ~vpage with
      | None -> raise (Page_fault { va; access = Read; present = false })
      | Some pte ->
          Hashtbl.replace c.tlb vpage pte;
          pte)

let check_access t access va (pte : Pagetable.pte) =
  let denied =
    match (access, (core t).privilege) with
    | Read, Kernel -> false
    | Read, User -> not pte.perm.user
    | Write, Kernel -> not pte.perm.writable
    | Write, User -> not (pte.perm.user && pte.perm.writable)
    | Exec, Kernel -> not pte.perm.executable
    | Exec, User -> not (pte.perm.user && pte.perm.executable)
  in
  if denied then raise (Page_fault { va; access; present = true })

let translate t access va =
  let pte =
    try lookup_pte t va
    with Page_fault _ -> raise (Page_fault { va; access; present = false })
  in
  check_access t access va pte;
  Int64.logor
    (Int64.shift_left (Int64.of_int pte.frame) 12)
    (Int64.logand va 0xfffL)

(* -- speculation / cache side channel --------------------------------- *)

let spec_depth t = t.spec_depth

let cache_line va = Int64.shift_right_logical va 6

(* Architectural consult of the cache-line state.  Entirely gated on
   the machine having a speculative window at all: a depth-0 machine
   never reaches the table and never pays [Cost.cache_miss], so its
   cycle counts are identical to the pre-speculation cost model. *)
let consult_cache t va =
  if t.spec_depth > 0 then begin
    let line = cache_line va in
    if Hashtbl.mem t.cache_lines line then t.cache_hits <- t.cache_hits + 1
    else begin
      t.cache_misses <- t.cache_misses + 1;
      Hashtbl.replace t.cache_lines line ();
      charge ~tag:Obs.Tag.Spec t Cost.cache_miss
    end
  end

(* Transient load issued inside a speculative window: raw page-table
   walk (no TLB insert, no fault, no cycle charge — the work is
   squashed) but the cache-line touch is real.  That asymmetry IS the
   side channel. *)
let spec_load t va ~len =
  if t.spec_depth = 0 then None
  else
    let vpage = Int64.shift_right_logical va 12 in
    match Pagetable.lookup (table_for t va) ~vpage with
    | None -> None
    | Some pte -> (
        let addr =
          Int64.logor
            (Int64.shift_left (Int64.of_int pte.frame) 12)
            (Int64.logand va 0xfffL)
        in
        match Phys_mem.read t.mem ~addr ~len with
        | v ->
            Hashtbl.replace t.cache_lines (cache_line va) ();
            t.spec_transient <- t.spec_transient + 1;
            Some v
        | exception Phys_mem.Bad_physical_address _ -> None)

let spec_window_opened t = t.spec_windows <- t.spec_windows + 1
let cache_hot t va = t.spec_depth > 0 && Hashtbl.mem t.cache_lines (cache_line va)
let spec_flush t = Hashtbl.reset t.cache_lines

type spec_stats = {
  windows : int;
  transient_loads : int;
  cache_hits : int;
  cache_misses : int;
}

let spec_stats t =
  {
    windows = t.spec_windows;
    transient_loads = t.spec_transient;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
  }

let read_virt t va ~len =
  charge ~tag:Obs.Tag.Mem t Cost.mem_access;
  let v = Phys_mem.read t.mem ~addr:(translate t Read va) ~len in
  consult_cache t va;
  v

let write_virt t va ~len v =
  charge ~tag:Obs.Tag.Mem t Cost.mem_access;
  Phys_mem.write t.mem ~addr:(translate t Write va) ~len v;
  consult_cache t va

let iter_pages va len f =
  (* Split [va, va+len) at page boundaries. *)
  let pos = ref 0 in
  while !pos < len do
    let page_off = Int64.to_int (Int64.logand (Int64.add va (Int64.of_int !pos)) 0xfffL) in
    let chunk = min (len - !pos) (4096 - page_off) in
    f ~off:!pos ~va:(Int64.add va (Int64.of_int !pos)) ~len:chunk;
    pos := !pos + chunk
  done

let read_bytes_virt t va ~len =
  charge ~tag:Obs.Tag.Copy t (Cost.copy_cycles len);
  let out = Bytes.create len in
  iter_pages va len (fun ~off ~va ~len ->
      let chunk = Phys_mem.read_bytes t.mem ~addr:(translate t Read va) ~len in
      Bytes.blit chunk 0 out off len);
  out

let write_bytes_virt t va src =
  let len = Bytes.length src in
  charge ~tag:Obs.Tag.Copy t (Cost.copy_cycles len);
  iter_pages va len (fun ~off ~va ~len ->
      Phys_mem.write_bytes t.mem ~addr:(translate t Write va) (Bytes.sub src off len))

let memcpy_virt t ~dst ~src ~len =
  let data = read_bytes_virt t src ~len in
  write_bytes_virt t dst data

let mem t = t.mem
let console t = t.console
let disk t = t.disk
let nic t = t.nic
let remote_nic t = t.remote_nic
let iommu t = t.iommu
let tpm t = t.tpm
let hw_random t n = Tpm.random t.tpm n
