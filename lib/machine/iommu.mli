(** Simulated IOMMU.

    DMA-capable devices reach physical memory only through the IOMMU.
    The SVA VM owns its configuration (the paper maps the IOMMU's
    registers exclusively into SVA-internal memory, section 4.3.3) and
    installs a frame-protection predicate that excludes ghost frames and
    SVA-internal frames; any DMA touching a protected frame is blocked.
    The kernel has no handle to {!set_protected} in a correctly wired
    system — only SVA does. *)

type t

val create : unit -> t

val set_protected : t -> (int -> bool) -> unit
(** [set_protected t p] installs the predicate: frame [f] is
    DMA-forbidden when [p f]. *)

val frame_allowed : t -> int -> bool

val set_observer : t -> (int -> unit) -> unit
(** [set_observer t f] registers a callback invoked with the offending
    frame just before {!Dma_blocked} is raised, so blocked transfers can
    be reported (e.g. as observability events). *)

exception Dma_blocked of int
(** Raised (with the offending frame) when a transfer hits a protected
    frame. *)

val dma_write : t -> Phys_mem.t -> addr:int64 -> bytes -> unit
(** Device-to-memory transfer through the IOMMU.
    @raise Dma_blocked if any touched frame is protected. *)

val dma_read : t -> Phys_mem.t -> addr:int64 -> len:int -> bytes
(** Memory-to-device transfer through the IOMMU. *)
