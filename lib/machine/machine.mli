(** The assembled simulated machine.

    One CPU core with a privilege level and a current address space, a
    TLB, lazily-allocated physical memory, a cycle clock, and the
    device complement of the paper's testbed: console, SSD, a gigabit
    NIC (whose far end is exposed so workload generators can play the
    remote client), an IOMMU, and a TPM.

    Virtual-memory accessors perform the full translation and
    permission check and raise {!Page_fault} exactly as hardware would;
    the SVA layer and the kernel build their memory disciplines on top
    of these raw accessors. *)

type privilege = User | Kernel

type access = Read | Write | Exec

exception
  Page_fault of {
    va : int64;
    access : access;
    present : bool;  (** true when mapped but permission-denied *)
  }

type t

val create :
  ?phys_frames:int ->
  ?disk_sectors:int ->
  ?obs:Vg_obs.Obs.t ->
  seed:string ->
  unit ->
  t
(** [create ~seed ()] builds a machine.  Defaults: 32768 frames
    (128 MiB), 65536 sectors (32 MiB disk).  The seed determinises the
    TPM and entropy source so experiments are reproducible.  [obs]
    defaults to {!Vg_obs.Obs.default}, so sinks attached to the
    process-wide instance observe every machine. *)

(** {1 Clock and accounting} *)

val charge : ?tag:Vg_obs.Obs.Tag.t -> t -> int -> unit
(** Advance the cycle clock, attributing the cycles to [tag]
    (default {!Vg_obs.Obs.Tag.Other}).  The clock advances identically
    whether or not observability sinks are attached. *)

val cycles : t -> int
val elapsed_seconds : t -> float
val reset_clock : t -> unit

(** {1 Observability} *)

val obs : t -> Vg_obs.Obs.t

val tracing : t -> bool
(** True iff at least one sink is attached — cheap enough to guard
    event construction on hot paths. *)

val emit : t -> Vg_obs.Obs.Event.t -> unit
(** Emit an event stamped with the current cycle clock.  No-op (one
    boolean load) when no sink is attached; never charges cycles. *)

(** {1 CPU state} *)

val privilege : t -> privilege
val set_privilege : t -> privilege -> unit

val kernel_pt : t -> Pagetable.t
(** The shared kernel address-space page table (high half). *)

val current_pt : t -> Pagetable.t
(** The current process's page table (user + ghost partitions). *)

val set_current_pt : t -> Pagetable.t -> unit
(** Context switch: installs a new user page table and flushes the
    TLB. *)

(** {1 Virtual memory} *)

val translate : t -> access -> int64 -> int64
(** [translate t access va] is the physical address, charging TLB
    costs. @raise Page_fault on missing mapping or permission. *)

val read_virt : t -> int64 -> len:int -> int64
val write_virt : t -> int64 -> len:int -> int64 -> unit
(** Single-word accessors ([len] in 1/2/4/8); they charge
    {!Cost.mem_access} plus translation costs and obey the current
    privilege level. *)

val read_bytes_virt : t -> int64 -> len:int -> bytes
val write_bytes_virt : t -> int64 -> bytes -> unit
(** Bulk accessors; charge per-byte copy cost and translate page by
    page. *)

val memcpy_virt : t -> dst:int64 -> src:int64 -> len:int -> unit

val flush_tlb : t -> unit

(** {1 Components} *)

val mem : t -> Phys_mem.t
val console : t -> Console.t
val disk : t -> Disk.t
val nic : t -> Nic.t
(** The machine-side NIC endpoint. *)

val remote_nic : t -> Nic.t
(** The far end of the wire — the "client machine" in the network
    benchmarks. *)

val iommu : t -> Iommu.t
val tpm : t -> Tpm.t

val hw_random : t -> int -> bytes
(** Hardware entropy (RDRAND-style); feeds the SVA DRBG. *)
