(** The assembled simulated machine.

    An array of CPU cores — each with its own privilege level, current
    address space, TLB, cycle clock and local timer — over shared
    lazily-allocated physical memory and the device complement of the
    paper's testbed: console, SSD, a gigabit NIC (whose far end is
    exposed so workload generators can play the remote client), an
    IOMMU, and a TPM.

    The simulator executes one core at a time: {!switch_core} selects
    which core the accessors operate on and whose clock subsequent
    {!charge}s advance.  Parallel execution is modelled by the
    scheduler interleaving cores deterministically on the simulated
    clock (always resuming the most-behind core), so wall-clock time is
    the {e maximum} over the per-core clocks ({!max_cycles}).  A
    machine created with the default [cpus:1] behaves exactly as the
    single-CPU machine always has — same charges, same clock.

    Virtual-memory accessors perform the full translation and
    permission check and raise {!Page_fault} exactly as hardware would;
    the SVA layer and the kernel build their memory disciplines on top
    of these raw accessors. *)

type privilege = User | Kernel

type access = Read | Write | Exec

exception
  Page_fault of {
    va : int64;
    access : access;
    present : bool;  (** true when mapped but permission-denied *)
  }

type t

val create :
  ?cpus:int ->
  ?phys_frames:int ->
  ?disk_sectors:int ->
  ?obs:Vg_obs.Obs.t ->
  ?spec_depth:int ->
  seed:string ->
  unit ->
  t
(** [create ~seed ()] builds a machine.  Defaults: 1 CPU, 32768 frames
    (128 MiB), 65536 sectors (32 MiB disk).  The seed determinises the
    TPM and entropy source so experiments are reproducible.  [obs]
    defaults to {!Vg_obs.Obs.default}, so sinks attached to the
    process-wide instance observe every machine.  [spec_depth]
    (default 0) is the speculative-window budget in macro-ops; at 0 the
    machine has no speculation, no cache side channel, and cycle counts
    identical to the pre-speculation cost model. *)

(** {1 Cores} *)

val cpus : t -> int

val cpu : t -> int
(** Index of the core currently executing. *)

val switch_core : t -> int -> unit
(** Select which core subsequent accessors and charges apply to.  This
    is the simulator's interleaver stepping, not a hardware action — it
    charges nothing. *)

(** {1 Clock and accounting} *)

val charge : ?tag:Vg_obs.Obs.Tag.t -> t -> int -> unit
(** Advance the current core's cycle clock, attributing the cycles to
    [tag] (default {!Vg_obs.Obs.Tag.Other}).  The clock advances
    identically whether or not observability sinks are attached. *)

val cycles : t -> int
(** The current core's clock. *)

val core_cycles : t -> int -> int
(** [core_cycles t i] is core [i]'s clock. *)

val max_cycles : t -> int
(** Wall-clock time of the machine: the maximum over per-core clocks
    (equals {!cycles} on a 1-CPU machine). *)

val elapsed_seconds : t -> float
val reset_clock : t -> unit

(** {1 Observability} *)

val obs : t -> Vg_obs.Obs.t

val tracing : t -> bool
(** True iff at least one sink is attached — cheap enough to guard
    event construction on hot paths. *)

val emit : t -> Vg_obs.Obs.Event.t -> unit
(** Emit an event stamped with the current core's cycle clock.  No-op
    (one boolean load) when no sink is attached; never charges
    cycles. *)

(** {1 CPU state} *)

val privilege : t -> privilege
val set_privilege : t -> privilege -> unit

val kernel_pt : t -> Pagetable.t
(** The shared kernel address-space page table (high half). *)

val current_pt : t -> Pagetable.t
(** The current core's installed process page table (user + ghost
    partitions). *)

val set_current_pt : t -> Pagetable.t -> unit
(** Context switch: installs a new user page table on the current core
    and flushes its TLB. *)

(** {1 Inter-processor interrupts} *)

val tlb_shootdown : t -> unit
(** Invalidate every {e remote} core's TLB: the current core pays
    {!Cost.ipi_send} per target and each target pays
    {!Cost.ipi_deliver} on its own clock, with an [Ipi] event per
    target.  On a 1-CPU machine this is a complete no-op (zero cycles),
    so uniprocessor runs are unaffected. *)

val ipis_received : t -> int -> int
(** How many IPIs core [i] has taken (shootdown audit). *)

(** {1 Per-core timer} *)

val arm_timer : t -> period:int -> unit
(** Arm every core's local timer to fire each [period] cycles (next
    deadline relative to each core's current clock). *)

val disarm_timer : t -> unit

val timer_pending : t -> bool
(** Has the current core's timer deadline passed?  (Interrupts are
    taken at trap boundaries — the scheduler polls this on the
    return-to-user path.) *)

val ack_timer : t -> unit
(** Service a pending tick on the current core: charges
    {!Cost.timer_irq}, emits [Timer_tick], advances the deadline past
    the current clock.  No-op if the timer is disarmed. *)

(** {1 Virtual memory} *)

val translate : t -> access -> int64 -> int64
(** [translate t access va] is the physical address, charging TLB
    costs. @raise Page_fault on missing mapping or permission. *)

val read_virt : t -> int64 -> len:int -> int64
val write_virt : t -> int64 -> len:int -> int64 -> unit
(** Single-word accessors ([len] in 1/2/4/8); they charge
    {!Cost.mem_access} plus translation costs and obey the current
    privilege level. *)

val read_bytes_virt : t -> int64 -> len:int -> bytes
val write_bytes_virt : t -> int64 -> bytes -> unit
(** Bulk accessors; charge per-byte copy cost and translate page by
    page. *)

val memcpy_virt : t -> dst:int64 -> src:int64 -> len:int -> unit

val flush_tlb : t -> unit
(** Flush the current core's TLB only; see {!tlb_shootdown} for the
    cross-core protocol. *)

(** {1 Speculation and the cache side channel}

    A machine created with [spec_depth > 0] models a speculative
    pipeline: execution engines may transiently run up to [spec_depth]
    macro-ops past a mispredicted branch or select, and the word-sized
    accessors maintain a VA-indexed cache-line presence set whose
    timing difference ({!Cost.cache_miss}, tagged [Spec]) is
    architecturally observable.  At depth 0 every function below is
    inert and the cache is never consulted. *)

val spec_depth : t -> int
(** The transient-window budget this machine was created with. *)

val spec_load : t -> int64 -> len:int -> int64 option
(** Transient load: raw page-table walk (no TLB fill, no fault, no
    cycle charge — the work will be squashed) that nonetheless pulls
    the target's cache line in.  [None] if the address is unmapped, or
    always at depth 0. *)

val spec_window_opened : t -> unit
(** Execution engines call this once per transient window they open
    (statistics only; charges nothing). *)

val cache_hot : t -> int64 -> bool
(** Is the line holding [va] present in the cache-line set?  (Test
    introspection; the architectural probe is the {!Cost.cache_miss}
    cycle difference.) *)

val spec_flush : t -> unit
(** Flush the cache-line set (clflush over the probe array).  Leaves
    the TLB alone. *)

type spec_stats = {
  windows : int;  (** transient windows opened *)
  transient_loads : int;  (** loads that executed transiently *)
  cache_hits : int;
  cache_misses : int;
}

val spec_stats : t -> spec_stats

(** {1 Components} *)

val mem : t -> Phys_mem.t
val console : t -> Console.t
val disk : t -> Disk.t
val nic : t -> Nic.t
(** The machine-side NIC endpoint. *)

val remote_nic : t -> Nic.t
(** The far end of the wire — the "client machine" in the network
    benchmarks. *)

val iommu : t -> Iommu.t
val tpm : t -> Tpm.t

val hw_random : t -> int -> bytes
(** Hardware entropy (RDRAND-style); feeds the SVA DRBG. *)
