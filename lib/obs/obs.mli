(** Structured observability for the simulator.

    Every simulated-cycle charge carries a {!Tag.t} saying which
    mechanism the cycles pay for, and the layers emit {!Event.t} values
    at interesting state transitions (traps, syscalls, MMU verdicts,
    ghost memory operations, security denials).  Pluggable {!sink}s
    consume both streams: {!Obs_stats} aggregates cycles per tag,
    {!Obs_trace} exports a Chrome-trace JSON timeline, and
    {!Obs_recorder} keeps an ordered event log for tests.

    The zero-overhead-off guarantee: with no sink attached, a probe is
    one boolean load ({!is_armed}); and nothing in this module — sinks
    attached or not — ever advances the simulated cycle clock, so
    simulated cycle counts are byte-identical either way. *)

module Tag : sig
  type t =
    | Exec
    | Mem
    | Tlb
    | Copy
    | Zero
    | Trap
    | Trap_save
    | Trap_return
    | Context_switch
    | Page_fault
    | Mmu_check
    | Mask
    | Cfi
    | Crypto
    | Disk
    | Net
    | Io
    | Kernel_work
    | Other
    | Sched
    | Ipi
    | Timer
    | Lock
    | Verify
    | Ring
    | Sfip
    | Swap
    | Spec

  val all : t list
  val count : int

  val index : t -> int
  (** A dense index in [0, count); lets sinks use plain arrays. *)

  val to_string : t -> string
end

module Event : sig
  type mmu_op = Map | Unmap | Protect
  type verdict = Allowed | Denied of string

  type t =
    | Trap_enter of { tid : int; pid : int }
    | Trap_exit of { tid : int; pid : int }
    | Syscall of { name : string; pid : int }
    | Mmu of { op : mmu_op; va : int64; verdict : verdict }
    | Ghost_alloc of { pid : int; pages : int }
    | Ghost_free of { pid : int; pages : int }
    | Swap_out of { pid : int; va : int64 }
    | Swap_in of { pid : int; va : int64; ok : bool }
    | Cfi_violation of { detail : string }
    | Security of { subsystem : string; detail : string }
    | Device_io of { port : int64; write : bool }
    | Module_load of { name : string; overrides : int }
    | Sched_switch of { cpu : int; prev_tid : int; next_tid : int }
    | Ipi of { from_cpu : int; to_cpu : int }
    | Timer_tick of { cpu : int }
    | Lock_contend of { name : string; cpu : int; last_cpu : int }

  val mmu_op_to_string : mmu_op -> string

  val kind : t -> string
  (** Stable kebab-case discriminator ("syscall", "security", ...). *)

  val is_security : t -> bool
  (** True for events that record a defence engaging: MMU denials,
      rejected swap-ins, CFI violations, and explicit [Security]
      events. *)

  val describe : t -> string
end

type sink = {
  name : string;
  on_charge : cycles:int -> Tag.t -> int -> unit;
      (** [on_charge ~cycles tag n]: [n] cycles were just charged under
          [tag]; [cycles] is the machine clock {e after} the charge. *)
  on_event : cycles:int -> Event.t -> unit;
}

type t

val create : unit -> t

val default : t
(** The process-wide instance every {!Machine.create} uses unless given
    its own.  Sinks attached here observe all machines, including the
    ones experiments boot internally. *)

val is_armed : t -> bool
(** True iff at least one sink is attached.  Hot paths check this
    before building an event. *)

val attach : t -> sink -> unit
val detach : t -> sink -> unit

val with_sink : t -> sink -> (unit -> 'a) -> 'a
(** Attach for the duration of the callback (detached on exception). *)

val charge : t -> cycles:int -> Tag.t -> int -> unit
val event : t -> cycles:int -> Event.t -> unit
