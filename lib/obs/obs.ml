(* Structured observability: every simulated-cycle charge carries a tag
   and every interesting state transition emits an event.  Sinks are
   attached at run time; with no sink attached the instrumented code
   paths reduce to one boolean load, and nothing here ever touches the
   simulated cycle clock — observability is semantically free by
   construction. *)

module Tag = struct
  type t =
    | Exec  (** executor instruction slots (module / override code) *)
    | Mem  (** single-word virtual memory accesses *)
    | Tlb  (** TLB miss page-table walks *)
    | Copy  (** bulk copies (copyin/copyout, COW, memcpy) *)
    | Zero  (** page zeroing (ghost alloc/free, swap, execve teardown) *)
    | Trap  (** baseline trap entry *)
    | Trap_save  (** VG extra: interrupt-context save + register zeroing *)
    | Trap_return  (** return-to-user path *)
    | Context_switch
    | Page_fault  (** hardware fault delivery *)
    | Mmu_check  (** SVA MMU-update checks *)
    | Mask  (** sandbox address masking on kernel memory operands *)
    | Cfi  (** CFI label checks *)
    | Crypto  (** AES/SHA/counter work on VM-internal paths *)
    | Disk
    | Net
    | Io  (** programmed I/O through the SVA port intrinsics *)
    | Kernel_work  (** generic instrumented kernel work (Kmem.work) *)
    | Other
    | Sched  (** scheduler decisions and run-queue maintenance *)
    | Ipi  (** inter-processor interrupts (TLB shootdown) *)
    | Timer  (** per-core timer interrupts *)
    | Lock  (** spinlock cache-line transfers *)
    | Verify  (** load-time verification of native images *)
    | Ring  (** batched syscall-ring dispatch (per-entry work) *)
    | Sfip  (** syscall-flow-integrity transition checks *)
    | Swap  (** ghost-swap pressure engine (eviction scans, blob I/O) *)
    | Spec  (** speculation-era costs (cache misses, mitigation fences) *)

  let all =
    [
      Exec; Mem; Tlb; Copy; Zero; Trap; Trap_save; Trap_return; Context_switch;
      Page_fault; Mmu_check; Mask; Cfi; Crypto; Disk; Net; Io; Kernel_work;
      Other; Sched; Ipi; Timer; Lock; Verify; Ring; Sfip; Swap; Spec;
    ]

  let count = List.length all

  let index = function
    | Exec -> 0
    | Mem -> 1
    | Tlb -> 2
    | Copy -> 3
    | Zero -> 4
    | Trap -> 5
    | Trap_save -> 6
    | Trap_return -> 7
    | Context_switch -> 8
    | Page_fault -> 9
    | Mmu_check -> 10
    | Mask -> 11
    | Cfi -> 12
    | Crypto -> 13
    | Disk -> 14
    | Net -> 15
    | Io -> 16
    | Kernel_work -> 17
    | Other -> 18
    | Sched -> 19
    | Ipi -> 20
    | Timer -> 21
    | Lock -> 22
    | Verify -> 23
    | Ring -> 24
    | Sfip -> 25
    | Swap -> 26
    | Spec -> 27

  let to_string = function
    | Exec -> "exec"
    | Mem -> "mem"
    | Tlb -> "tlb"
    | Copy -> "copy"
    | Zero -> "zero"
    | Trap -> "trap"
    | Trap_save -> "trap-save"
    | Trap_return -> "trap-return"
    | Context_switch -> "ctx-switch"
    | Page_fault -> "page-fault"
    | Mmu_check -> "mmu-check"
    | Mask -> "mask"
    | Cfi -> "cfi"
    | Crypto -> "crypto"
    | Disk -> "disk"
    | Net -> "net"
    | Io -> "io"
    | Kernel_work -> "kernel"
    | Other -> "other"
    | Sched -> "sched"
    | Ipi -> "ipi"
    | Timer -> "timer"
    | Lock -> "lock"
    | Verify -> "verify"
    | Ring -> "ring"
    | Sfip -> "sfip"
    | Swap -> "swap"
    | Spec -> "spec"
end

module Event = struct
  type mmu_op = Map | Unmap | Protect
  type verdict = Allowed | Denied of string

  type t =
    | Trap_enter of { tid : int; pid : int }
    | Trap_exit of { tid : int; pid : int }
    | Syscall of { name : string; pid : int }
    | Mmu of { op : mmu_op; va : int64; verdict : verdict }
    | Ghost_alloc of { pid : int; pages : int }
    | Ghost_free of { pid : int; pages : int }
    | Swap_out of { pid : int; va : int64 }
    | Swap_in of { pid : int; va : int64; ok : bool }
    | Cfi_violation of { detail : string }
    | Security of { subsystem : string; detail : string }
    | Device_io of { port : int64; write : bool }
    | Module_load of { name : string; overrides : int }
    | Sched_switch of { cpu : int; prev_tid : int; next_tid : int }
    | Ipi of { from_cpu : int; to_cpu : int }
    | Timer_tick of { cpu : int }
    | Lock_contend of { name : string; cpu : int; last_cpu : int }

  let mmu_op_to_string = function
    | Map -> "map"
    | Unmap -> "unmap"
    | Protect -> "protect"

  let kind = function
    | Trap_enter _ -> "trap-enter"
    | Trap_exit _ -> "trap-exit"
    | Syscall _ -> "syscall"
    | Mmu _ -> "mmu"
    | Ghost_alloc _ -> "ghost-alloc"
    | Ghost_free _ -> "ghost-free"
    | Swap_out _ -> "swap-out"
    | Swap_in _ -> "swap-in"
    | Cfi_violation _ -> "cfi-violation"
    | Security _ -> "security"
    | Device_io _ -> "device-io"
    | Module_load _ -> "module-load"
    | Sched_switch _ -> "sched-switch"
    | Ipi _ -> "ipi"
    | Timer_tick _ -> "timer-tick"
    | Lock_contend _ -> "lock-contend"

  (* The events that record a defence engaging (a denial, a detected
     tamper, a deflected access) — what the attack suite greps for. *)
  let is_security = function
    | Mmu { verdict = Denied _; _ } -> true
    | Swap_in { ok = false; _ } -> true
    | Cfi_violation _ | Security _ -> true
    | Trap_enter _ | Trap_exit _ | Syscall _ | Mmu _ | Ghost_alloc _
    | Ghost_free _ | Swap_out _ | Swap_in _ | Device_io _ | Module_load _
    | Sched_switch _ | Ipi _ | Timer_tick _ | Lock_contend _ ->
        false

  let describe = function
    | Trap_enter { tid; pid } -> Printf.sprintf "trap enter tid=%d pid=%d" tid pid
    | Trap_exit { tid; pid } -> Printf.sprintf "trap exit tid=%d pid=%d" tid pid
    | Syscall { name; pid } -> Printf.sprintf "syscall %s pid=%d" name pid
    | Mmu { op; va; verdict } ->
        Printf.sprintf "mmu %s %s: %s" (mmu_op_to_string op)
          (Vg_util.U64.to_hex va)
          (match verdict with Allowed -> "allowed" | Denied why -> "DENIED " ^ why)
    | Ghost_alloc { pid; pages } ->
        Printf.sprintf "ghost alloc pid=%d pages=%d" pid pages
    | Ghost_free { pid; pages } ->
        Printf.sprintf "ghost free pid=%d pages=%d" pid pages
    | Swap_out { pid; va } ->
        Printf.sprintf "swap out pid=%d va=%s" pid (Vg_util.U64.to_hex va)
    | Swap_in { pid; va; ok } ->
        Printf.sprintf "swap in pid=%d va=%s %s" pid (Vg_util.U64.to_hex va)
          (if ok then "ok" else "REJECTED")
    | Cfi_violation { detail } -> "CFI violation: " ^ detail
    | Security { subsystem; detail } ->
        Printf.sprintf "security[%s]: %s" subsystem detail
    | Device_io { port; write } ->
        Printf.sprintf "io %s port %s" (if write then "write" else "read")
          (Vg_util.U64.to_hex port)
    | Module_load { name; overrides } ->
        Printf.sprintf "module %s loaded (%d overrides)" name overrides
    | Sched_switch { cpu; prev_tid; next_tid } ->
        Printf.sprintf "cpu%d: switch tid %d -> %d" cpu prev_tid next_tid
    | Ipi { from_cpu; to_cpu } -> Printf.sprintf "ipi cpu%d -> cpu%d" from_cpu to_cpu
    | Timer_tick { cpu } -> Printf.sprintf "timer tick cpu%d" cpu
    | Lock_contend { name; cpu; last_cpu } ->
        Printf.sprintf "lock %s: cpu%d takes line from cpu%d" name cpu last_cpu
end

type sink = {
  name : string;
  on_charge : cycles:int -> Tag.t -> int -> unit;
  on_event : cycles:int -> Event.t -> unit;
}

type t = { mutable sinks : sink list; mutable armed : bool }

let create () = { sinks = []; armed = false }

(* The process-wide instance.  Machines default to it, so sinks attached
   here observe every machine booted while they are attached — the
   attack suite and the CLI both rely on this, because experiments boot
   their machines internally. *)
let default = create ()

let is_armed t = t.armed

let attach t sink =
  t.sinks <- t.sinks @ [ sink ];
  t.armed <- true

let detach t sink =
  t.sinks <- List.filter (fun s -> s != sink) t.sinks;
  t.armed <- t.sinks <> []

let with_sink t sink f =
  attach t sink;
  Fun.protect ~finally:(fun () -> detach t sink) f

let charge t ~cycles tag n =
  List.iter (fun s -> s.on_charge ~cycles tag n) t.sinks

let event t ~cycles ev = List.iter (fun s -> s.on_event ~cycles ev) t.sinks
