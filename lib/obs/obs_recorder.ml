(* Ordered in-memory event log, for tests that assert on the event
   stream (e.g. "this attack produced a security event under VG and
   none under the native build"). *)

type entry = { cycles : int; event : Obs.Event.t }

type t = { mutable rev_entries : entry list }

let create () = { rev_entries = [] }
let clear t = t.rev_entries <- []

let sink t =
  {
    Obs.name = "recorder";
    on_charge = (fun ~cycles:_ _ _ -> ());
    on_event = (fun ~cycles event -> t.rev_entries <- { cycles; event } :: t.rev_entries);
  }

let events t = List.rev t.rev_entries

let security_events t =
  List.filter (fun e -> Obs.Event.is_security e.event) (events t)

let count_matching t pred = List.length (List.filter (fun e -> pred e.event) (events t))
