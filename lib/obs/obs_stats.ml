(* Counter/attribution sink: cycles and charge counts per tag, event
   counts per kind.  The per-tag cycle totals are what decomposes a
   Table 2 row into trap/zeroing vs sandbox-mask vs CFI components. *)

type t = {
  cycles_by_tag : int array;
  charges_by_tag : int array;
  events_by_kind : (string, int) Hashtbl.t;
  mutable security_events : int;
}

let create () =
  {
    cycles_by_tag = Array.make Obs.Tag.count 0;
    charges_by_tag = Array.make Obs.Tag.count 0;
    events_by_kind = Hashtbl.create 16;
    security_events = 0;
  }

let reset t =
  Array.fill t.cycles_by_tag 0 Obs.Tag.count 0;
  Array.fill t.charges_by_tag 0 Obs.Tag.count 0;
  Hashtbl.reset t.events_by_kind;
  t.security_events <- 0

let sink t =
  {
    Obs.name = "stats";
    on_charge =
      (fun ~cycles:_ tag n ->
        let i = Obs.Tag.index tag in
        t.cycles_by_tag.(i) <- t.cycles_by_tag.(i) + n;
        t.charges_by_tag.(i) <- t.charges_by_tag.(i) + 1);
    on_event =
      (fun ~cycles:_ ev ->
        let kind = Obs.Event.kind ev in
        Hashtbl.replace t.events_by_kind kind
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.events_by_kind kind));
        if Obs.Event.is_security ev then t.security_events <- t.security_events + 1);
  }

let cycles t tag = t.cycles_by_tag.(Obs.Tag.index tag)
let charges t tag = t.charges_by_tag.(Obs.Tag.index tag)
let total_cycles t = Array.fold_left ( + ) 0 t.cycles_by_tag
let security_events t = t.security_events

let event_count t kind =
  Option.value ~default:0 (Hashtbl.find_opt t.events_by_kind kind)

let to_json t : Obs_json.t =
  let tags =
    List.filter_map
      (fun tag ->
        let c = cycles t tag in
        if c = 0 && charges t tag = 0 then None
        else
          Some
            ( Obs.Tag.to_string tag,
              Obs_json.Obj
                [ ("cycles", Obs_json.Int c); ("charges", Obs_json.Int (charges t tag)) ]
            ))
      Obs.Tag.all
  in
  let events =
    Hashtbl.fold (fun kind n acc -> (kind, Obs_json.Int n) :: acc) t.events_by_kind []
    |> List.sort compare
  in
  Obs_json.Obj
    [
      ("total_cycles", Obs_json.Int (total_cycles t));
      ("security_events", Obs_json.Int t.security_events);
      ("cycles_by_tag", Obs_json.Obj tags);
      ("events", Obs_json.Obj events);
    ]

let print ?(out = stdout) t =
  let total = total_cycles t in
  Printf.fprintf out "cycle attribution (%d cycles observed):\n" total;
  List.iter
    (fun tag ->
      let c = cycles t tag in
      if c > 0 then
        Printf.fprintf out "  %-12s %12d cycles %6.1f%%  (%d charges)\n"
          (Obs.Tag.to_string tag) c
          (100.0 *. float_of_int c /. float_of_int (max 1 total))
          (charges t tag))
    Obs.Tag.all;
  let events =
    Hashtbl.fold (fun kind n acc -> (kind, n) :: acc) t.events_by_kind []
    |> List.sort compare
  in
  if events <> [] then begin
    Printf.fprintf out "events:\n";
    List.iter (fun (kind, n) -> Printf.fprintf out "  %-14s %8d\n" kind n) events;
    Printf.fprintf out "  security events: %d\n" t.security_events
  end
