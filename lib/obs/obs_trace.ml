(* Chrome-trace (chrome://tracing / Perfetto "traceEvents") exporter
   driven by the simulated clock.  Trap enter/exit become duration
   begin/end pairs; everything else becomes an instant event.  The
   timestamp unit is microseconds of simulated time. *)

type t = {
  mutable entries : Obs_json.t list; (* reversed *)
  cycles_per_us : float;
  mutable dropped_charges : int;
}

let create ?(cycles_per_us = 3400.0) () =
  { entries = []; cycles_per_us; dropped_charges = 0 }

let ts t cycles = float_of_int cycles /. t.cycles_per_us

let add t ~cycles ~ph ~name ~pid ~tid args =
  let base =
    [
      ("name", Obs_json.String name);
      ("ph", Obs_json.String ph);
      ("ts", Obs_json.Float (ts t cycles));
      ("pid", Obs_json.Int pid);
      ("tid", Obs_json.Int tid);
    ]
  in
  let fields =
    if args = [] then base
    else base @ [ ("args", Obs_json.Obj args) ]
  in
  t.entries <- Obs_json.Obj fields :: t.entries

let on_event t ~cycles (ev : Obs.Event.t) =
  let s v = Obs_json.String v in
  match ev with
  | Trap_enter { tid; pid } -> add t ~cycles ~ph:"B" ~name:"trap" ~pid ~tid []
  | Trap_exit { tid; pid } -> add t ~cycles ~ph:"E" ~name:"trap" ~pid ~tid []
  | Syscall { name; pid } ->
      add t ~cycles ~ph:"i" ~name:("sys_" ^ name) ~pid ~tid:pid []
  | Mmu { op; va; verdict } ->
      add t ~cycles ~ph:"i" ~name:("mmu-" ^ Obs.Event.mmu_op_to_string op) ~pid:0
        ~tid:0
        [
          ("va", s (Vg_util.U64.to_hex va));
          ( "verdict",
            s (match verdict with Allowed -> "allowed" | Denied why -> "denied: " ^ why)
          );
        ]
  | Ghost_alloc { pid; pages } ->
      add t ~cycles ~ph:"i" ~name:"ghost-alloc" ~pid ~tid:pid
        [ ("pages", Obs_json.Int pages) ]
  | Ghost_free { pid; pages } ->
      add t ~cycles ~ph:"i" ~name:"ghost-free" ~pid ~tid:pid
        [ ("pages", Obs_json.Int pages) ]
  | Swap_out { pid; va } ->
      add t ~cycles ~ph:"i" ~name:"swap-out" ~pid ~tid:pid
        [ ("va", s (Vg_util.U64.to_hex va)) ]
  | Swap_in { pid; va; ok } ->
      add t ~cycles ~ph:"i" ~name:"swap-in" ~pid ~tid:pid
        [ ("va", s (Vg_util.U64.to_hex va)); ("ok", Obs_json.Bool ok) ]
  | Cfi_violation { detail } ->
      add t ~cycles ~ph:"i" ~name:"cfi-violation" ~pid:0 ~tid:0
        [ ("detail", s detail) ]
  | Security { subsystem; detail } ->
      add t ~cycles ~ph:"i" ~name:("security:" ^ subsystem) ~pid:0 ~tid:0
        [ ("detail", s detail) ]
  | Device_io { port; write } ->
      add t ~cycles ~ph:"i"
        ~name:(if write then "io-write" else "io-read")
        ~pid:0 ~tid:0
        [ ("port", s (Vg_util.U64.to_hex port)) ]
  | Module_load { name; overrides } ->
      add t ~cycles ~ph:"i" ~name:("module:" ^ name) ~pid:0 ~tid:0
        [ ("overrides", Obs_json.Int overrides) ]
  | Sched_switch { cpu; prev_tid; next_tid } ->
      add t ~cycles ~ph:"i" ~name:"sched-switch" ~pid:0 ~tid:next_tid
        [ ("cpu", Obs_json.Int cpu); ("prev_tid", Obs_json.Int prev_tid) ]
  | Ipi { from_cpu; to_cpu } ->
      add t ~cycles ~ph:"i" ~name:"ipi" ~pid:0 ~tid:0
        [ ("from_cpu", Obs_json.Int from_cpu); ("to_cpu", Obs_json.Int to_cpu) ]
  | Timer_tick { cpu } ->
      add t ~cycles ~ph:"i" ~name:"timer-tick" ~pid:0 ~tid:0
        [ ("cpu", Obs_json.Int cpu) ]
  | Lock_contend { name; cpu; last_cpu } ->
      add t ~cycles ~ph:"i" ~name:("lock:" ^ name) ~pid:0 ~tid:0
        [ ("cpu", Obs_json.Int cpu); ("last_cpu", Obs_json.Int last_cpu) ]

let sink t =
  {
    Obs.name = "chrome-trace";
    (* Individual charges are far too fine-grained for a timeline; the
       stats sink is the tool for attribution.  Count what we drop so
       the export can say so. *)
    on_charge = (fun ~cycles:_ _ _ -> t.dropped_charges <- t.dropped_charges + 1);
    on_event = (fun ~cycles ev -> on_event t ~cycles ev);
  }

let to_json t : Obs_json.t =
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List (List.rev t.entries));
      ("displayTimeUnit", Obs_json.String "ms");
      ( "otherData",
        Obs_json.Obj
          [
            ("clock", Obs_json.String "simulated");
            ("cycles_per_us", Obs_json.Float t.cycles_per_us);
            ("charges_not_shown", Obs_json.Int t.dropped_charges);
          ] );
    ]

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs_json.to_string (to_json t));
      output_char oc '\n')
