(* Shared evaluation of the IR's pure operations.  Both the reference
   interpreter and the native executor (which runs the lowered,
   slot-allocated form) use these, so the two can never drift on
   arithmetic semantics. *)

exception Trap of string

let truncate (width : Ir.width) v =
  match width with
  | W8 -> Int64.logand v 0xffL
  | W16 -> Int64.logand v 0xffffL
  | W32 -> Int64.logand v 0xffffffffL
  | W64 -> v

let eval_binop (op : Ir.binop) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Udiv -> if b = 0L then raise (Trap "udiv by zero") else Int64.unsigned_div a b
  | Urem -> if b = 0L then raise (Trap "urem by zero") else Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
  | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
  | Ashr -> Int64.shift_right a (Int64.to_int (Int64.logand b 63L))

let eval_cmp (op : Ir.cmp) a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Ult -> Int64.unsigned_compare a b < 0
    | Ule -> Int64.unsigned_compare a b <= 0
    | Ugt -> Int64.unsigned_compare a b > 0
    | Uge -> Int64.unsigned_compare a b >= 0
    | Slt -> Int64.compare a b < 0
    | Sle -> Int64.compare a b <= 0
  in
  if r then 1L else 0L
