type pending_block = {
  label : Ir.label;
  mutable rev_instrs : Ir.instr list;
  mutable term : Ir.terminator option;
}

type pending_func = {
  name : string;
  params : Ir.reg list;
  mutable rev_blocks : pending_block list; (* completed blocks, reversed *)
  mutable current : pending_block;
}

type t = {
  mutable rev_funcs : pending_func list; (* completed funcs, reversed *)
  mutable current_func : pending_func option;
  mutable counter : int;
}

let create () = { rev_funcs = []; current_func = None; counter = 0 }

let finish_block (f : pending_func) =
  match f.current.term with
  | None -> failwith (Printf.sprintf "Builder: block %s not terminated" f.current.label)
  | Some _ -> f.rev_blocks <- f.current :: f.rev_blocks

let seal_func b =
  match b.current_func with
  | None -> ()
  | Some f ->
      finish_block f;
      b.rev_funcs <- f :: b.rev_funcs;
      b.current_func <- None

let func b name ~params =
  seal_func b;
  let entry = { label = "entry"; rev_instrs = []; term = None } in
  b.current_func <- Some { name; params; rev_blocks = []; current = entry }

let current b =
  match b.current_func with
  | None -> failwith "Builder: no open function"
  | Some f -> f

let block b label =
  let f = current b in
  finish_block f;
  f.current <- { label; rev_instrs = []; term = None }

let fresh b prefix =
  b.counter <- b.counter + 1;
  Printf.sprintf "%%%s%d" prefix b.counter

let fresh_label b prefix =
  b.counter <- b.counter + 1;
  Printf.sprintf "%s%d" prefix b.counter

let emit b instr =
  let f = current b in
  (match f.current.term with
  | Some _ -> failwith "Builder: emitting into a terminated block"
  | None -> ());
  f.current.rev_instrs <- instr :: f.current.rev_instrs

let bin b op a v =
  let dst = fresh b "t" in
  emit b (Ir.Bin { dst; op; a; b = v });
  Ir.Reg dst

let cmp b op a v =
  let dst = fresh b "c" in
  emit b (Ir.Cmp { dst; op; a; b = v });
  Ir.Reg dst

let select b cond if_true if_false =
  let dst = fresh b "s" in
  emit b (Ir.Select { dst; cond; if_true; if_false });
  Ir.Reg dst

let load b ?(width = Ir.W64) addr =
  let dst = fresh b "l" in
  emit b (Ir.Load { dst; addr; width });
  Ir.Reg dst

let store b ?(width = Ir.W64) ~src ~addr () = emit b (Ir.Store { src; addr; width })
let memcpy b ~dst ~src ~len = emit b (Ir.Memcpy { dst; src; len })

let atomic_rmw b ?(width = Ir.W64) op ~addr operand =
  let dst = fresh b "a" in
  emit b (Ir.Atomic_rmw { dst; op; addr; operand; width });
  Ir.Reg dst

let call b callee args =
  let dst = fresh b "r" in
  emit b (Ir.Call { dst = Some dst; callee; args });
  Ir.Reg dst

let call_void b callee args = emit b (Ir.Call { dst = None; callee; args })

let call_indirect b target args =
  let dst = fresh b "r" in
  emit b (Ir.Call_indirect { dst = Some dst; target; args });
  Ir.Reg dst

let call_indirect_void b target args =
  emit b (Ir.Call_indirect { dst = None; target; args })

let io_read b port =
  let dst = fresh b "io" in
  emit b (Ir.Io_read { dst; port });
  Ir.Reg dst

let io_write b ~port src = emit b (Ir.Io_write { port; src })
let fence b = emit b Ir.Fence

let terminate b term =
  let f = current b in
  match f.current.term with
  | Some _ -> failwith "Builder: block already terminated"
  | None -> f.current.term <- Some term

let ret b v = terminate b (Ir.Ret v)
let br b label = terminate b (Ir.Br label)
let cbr b cond if_true if_false = terminate b (Ir.Cbr { cond; if_true; if_false })
let unreachable b = terminate b (Ir.Unreachable)

let program b =
  seal_func b;
  let finish_pending (f : pending_func) : Ir.func =
    let blocks =
      List.rev_map
        (fun (blk : pending_block) : Ir.block ->
          match blk.term with
          | None -> failwith "Builder: unterminated block"
          | Some term ->
              { Ir.label = blk.label; instrs = List.rev blk.rev_instrs; term })
        f.rev_blocks
    in
    { Ir.name = f.name; params = f.params; blocks }
  in
  { Ir.funcs = List.rev_map finish_pending b.rev_funcs }
