let string_of_binop : Ir.binop -> string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Udiv -> "udiv"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"

let string_of_cmp : Ir.cmp -> string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"
  | Slt -> "slt"
  | Sle -> "sle"

let string_of_width : Ir.width -> string = function
  | W8 -> "i8"
  | W16 -> "i16"
  | W32 -> "i32"
  | W64 -> "i64"

let pp_value fmt : Ir.value -> unit = function
  | Reg r -> Format.pp_print_string fmt r
  | Imm i -> Format.fprintf fmt "%Ld" i
  | Sym s -> Format.fprintf fmt "@%s" s

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    pp_value fmt args

let pp_dst fmt = function
  | None -> ()
  | Some dst -> Format.fprintf fmt "%s = " dst

let pp_instr fmt : Ir.instr -> unit = function
  | Bin { dst; op; a; b } ->
      Format.fprintf fmt "%s = %s %a, %a" dst (string_of_binop op) pp_value a pp_value b
  | Cmp { dst; op; a; b } ->
      Format.fprintf fmt "%s = icmp %s %a, %a" dst (string_of_cmp op) pp_value a pp_value b
  | Select { dst; cond; if_true; if_false } ->
      Format.fprintf fmt "%s = select %a, %a, %a" dst pp_value cond pp_value if_true
        pp_value if_false
  | Load { dst; addr; width } ->
      Format.fprintf fmt "%s = load %s, %a" dst (string_of_width width) pp_value addr
  | Store { src; addr; width } ->
      Format.fprintf fmt "store %s %a, %a" (string_of_width width) pp_value src pp_value addr
  | Memcpy { dst; src; len } ->
      Format.fprintf fmt "memcpy %a, %a, %a" pp_value dst pp_value src pp_value len
  | Atomic_rmw { dst; op; addr; operand; width } ->
      Format.fprintf fmt "%s = atomicrmw %s %s %a, %a" dst (string_of_binop op)
        (string_of_width width) pp_value addr pp_value operand
  | Call { dst; callee; args } ->
      Format.fprintf fmt "%acall @%s(%a)" pp_dst dst callee pp_args args
  | Call_indirect { dst; target; args } ->
      Format.fprintf fmt "%acall %a(%a)" pp_dst dst pp_value target pp_args args
  | Io_read { dst; port } -> Format.fprintf fmt "%s = io.read %a" dst pp_value port
  | Io_write { port; src } -> Format.fprintf fmt "io.write %a, %a" pp_value port pp_value src
  | Fence -> Format.pp_print_string fmt "fence"

let pp_terminator fmt : Ir.terminator -> unit = function
  | Ret None -> Format.pp_print_string fmt "ret void"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" pp_value v
  | Br l -> Format.fprintf fmt "br %s" l
  | Cbr { cond; if_true; if_false } ->
      Format.fprintf fmt "br %a, %s, %s" pp_value cond if_true if_false
  | Unreachable -> Format.pp_print_string fmt "unreachable"

let pp_block fmt (b : Ir.block) =
  Format.fprintf fmt "@[<v 2>%s:" b.Ir.label;
  List.iter (fun i -> Format.fprintf fmt "@,%a" pp_instr i) b.Ir.instrs;
  Format.fprintf fmt "@,%a@]" pp_terminator b.Ir.term

let pp_func fmt (f : Ir.func) =
  Format.fprintf fmt "@[<v>define @%s(%s) {@," f.Ir.name (String.concat ", " f.Ir.params);
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_block fmt f.Ir.blocks;
  Format.fprintf fmt "@,}@]"

let pp_program fmt (p : Ir.program) =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.fprintf fmt "@,@,")
    pp_func fmt p.Ir.funcs

let program_to_string p = Format.asprintf "@[<v>%a@]" pp_program p
