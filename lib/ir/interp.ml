type env = {
  load : int64 -> Ir.width -> int64;
  store : int64 -> Ir.width -> int64 -> unit;
  memcpy : dst:int64 -> src:int64 -> len:int64 -> unit;
  io_read : int64 -> int64;
  io_write : int64 -> int64 -> unit;
  extern : string -> int64 array -> int64;
  resolve_sym : string -> int64;
  func_of_addr : int64 -> string option;
  charge : int -> unit;
  fence : unit -> unit;
}

exception Trap = Eval.Trap

let truncate = Eval.truncate
let eval_binop = Eval.eval_binop
let eval_cmp = Eval.eval_cmp

type frame = (Ir.reg, int64) Hashtbl.t

(* The interpreter charges cycles exactly as the uninstrumented lowered
   code would: one cycle per instruction slot the codegen would emit
   (Cbr lowers to a jump-if-zero plus a fall-through jump, so a taken
   true-edge costs one extra), plus the length-scaled memcpy surcharge.
   The differential fuzz suite holds the executor to this model. *)
let run ?(fuel = 10_000_000) env program entry args =
  let fuel = ref fuel in
  let burn () =
    decr fuel;
    if !fuel <= 0 then raise (Trap "out of fuel")
  in
  let rec call_function name (args : int64 array) : int64 =
    match Ir.find_func program name with
    | None -> env.extern name args
    | Some f ->
        if List.length f.Ir.params <> Array.length args then
          raise
            (Trap
               (Printf.sprintf "call %s: arity mismatch (%d vs %d)" name
                  (List.length f.Ir.params) (Array.length args)));
        let frame : frame = Hashtbl.create 32 in
        List.iteri (fun i p -> Hashtbl.replace frame p args.(i)) f.Ir.params;
        let entry_block =
          match f.Ir.blocks with
          | [] -> raise (Trap (Printf.sprintf "function %s has no blocks" name))
          | b :: _ -> b
        in
        exec_block f frame entry_block
  and value frame : Ir.value -> int64 = function
    | Imm i -> i
    | Sym s -> env.resolve_sym s
    | Reg r -> (
        match Hashtbl.find_opt frame r with
        | Some v -> v
        | None -> raise (Trap (Printf.sprintf "read of undefined register %s" r)))
  and exec_block f frame (block : Ir.block) : int64 =
    List.iter (exec_instr frame) block.Ir.instrs;
    burn ();
    env.charge 1;
    match block.Ir.term with
    | Ret None -> 0L
    | Ret (Some v) -> value frame v
    | Unreachable -> raise (Trap "unreachable executed")
    | Br label -> goto f frame label
    | Cbr { cond; if_true; if_false } ->
        if value frame cond <> 0L then begin
          (* the lowered form falls through the jump-if-zero into an
             unconditional jump: one extra slot executed *)
          env.charge 1;
          goto f frame if_true
        end
        else goto f frame if_false
  and goto f frame label =
    match Ir.find_block f label with
    | Some b -> exec_block f frame b
    | None -> raise (Trap (Printf.sprintf "branch to unknown block %s" label))
  and exec_instr frame (instr : Ir.instr) =
    burn ();
    env.charge 1;
    match instr with
    | Bin { dst; op; a; b } ->
        Hashtbl.replace frame dst (eval_binop op (value frame a) (value frame b))
    | Cmp { dst; op; a; b } ->
        Hashtbl.replace frame dst (eval_cmp op (value frame a) (value frame b))
    | Select { dst; cond; if_true; if_false } ->
        let v = if value frame cond <> 0L then if_true else if_false in
        Hashtbl.replace frame dst (value frame v)
    | Load { dst; addr; width } ->
        Hashtbl.replace frame dst (truncate width (env.load (value frame addr) width))
    | Store { src; addr; width } ->
        env.store (value frame addr) width (truncate width (value frame src))
    | Memcpy { dst; src; len } ->
        let len_v = value frame len in
        env.charge (Int64.to_int (Vg_util.U64.div len_v 8L));
        env.memcpy ~dst:(value frame dst) ~src:(value frame src) ~len:len_v
    | Atomic_rmw { dst; op; addr; operand; width } ->
        let a = value frame addr in
        let old = truncate width (env.load a width) in
        env.store a width (truncate width (eval_binop op old (value frame operand)));
        Hashtbl.replace frame dst old
    | Call { dst; callee; args } ->
        let result = call_function callee (Array.of_list (List.map (value frame) args)) in
        Option.iter (fun d -> Hashtbl.replace frame d result) dst
    | Call_indirect { dst; target; args } -> (
        let addr = value frame target in
        match env.func_of_addr addr with
        | None ->
            raise (Trap (Printf.sprintf "indirect call to non-function %s" (Vg_util.U64.to_hex addr)))
        | Some callee ->
            let result =
              call_function callee (Array.of_list (List.map (value frame) args))
            in
            Option.iter (fun d -> Hashtbl.replace frame d result) dst)
    | Io_read { dst; port } -> Hashtbl.replace frame dst (env.io_read (value frame port))
    | Io_write { port; src } -> env.io_write (value frame port) (value frame src)
    | Fence -> env.fence ()
  in
  match Ir.find_func program entry with
  | None -> raise Not_found
  | Some _ -> call_function entry args
