(** Pure operational semantics of the IR, shared between the reference
    interpreter ({!Interp}) and the native executor so the two cannot
    drift. *)

exception Trap of string
(** Raised on division by zero.  {!Interp.Trap} is an alias of this
    exception, so either name catches it. *)

val truncate : Ir.width -> int64 -> int64
(** Keep the low bits of a value per the access width. *)

val eval_binop : Ir.binop -> int64 -> int64 -> int64
(** 64-bit wrapping semantics of the IR binary operations.
    @raise Trap on division by zero. *)

val eval_cmp : Ir.cmp -> int64 -> int64 -> int64
(** 0 or 1. *)
