(** The SVA virtual instruction set.

    Operating-system code shipped to a Virtual Ghost machine exists
    first in this LLVM-like intermediate form; the Virtual Ghost
    compiler ({!module:Vg_compiler}) instruments it (load/store
    sandboxing, control-flow integrity) and lowers it to the simulated
    native instruction set.  The IR deliberately models only what the
    instrumentation passes care about: memory operations (loads, stores,
    atomics, [memcpy]), direct and indirect control flow, and the
    programmed-I/O operations that SVA-OS mediates.

    Programs are lists of functions; functions are lists of labelled
    basic blocks ending in exactly one terminator; the first block is
    the entry block.  Registers are function-local string-named virtual
    registers (the representation is not SSA; re-assignment is
    allowed). *)

type reg = string
(** Virtual register name. *)

type label = string
(** Basic-block label, unique within a function. *)

(** Access widths for memory operations. *)
type width = W8 | W16 | W32 | W64

val bytes_of_width : width -> int

(** Two-operand integer operations (64-bit, wrapping). *)
type binop =
  | Add
  | Sub
  | Mul
  | Udiv  (** unsigned; division by zero traps *)
  | Urem  (** unsigned; division by zero traps *)
  | And
  | Or
  | Xor
  | Shl   (** shift count taken mod 64 *)
  | Lshr  (** logical shift right *)
  | Ashr  (** arithmetic shift right *)

(** Comparison predicates producing 0 or 1. *)
type cmp = Eq | Ne | Ult | Ule | Ugt | Uge | Slt | Sle

(** Operand values. *)
type value =
  | Reg of reg
  | Imm of int64
  | Sym of string
      (** Address of a global symbol or function, resolved at link time
          by the code generator. *)

type instr =
  | Bin of { dst : reg; op : binop; a : value; b : value }
  | Cmp of { dst : reg; op : cmp; a : value; b : value }
  | Select of { dst : reg; cond : value; if_true : value; if_false : value }
  | Load of { dst : reg; addr : value; width : width }
  | Store of { src : value; addr : value; width : width }
  | Memcpy of { dst : value; src : value; len : value }
      (** Byte-granularity copy; the sandboxing pass instruments both
          pointers, mirroring the paper's treatment of [memcpy]. *)
  | Atomic_rmw of { dst : reg; op : binop; addr : value; operand : value; width : width }
      (** Atomic read-modify-write; returns the old value. *)
  | Call of { dst : reg option; callee : string; args : value list }
  | Call_indirect of { dst : reg option; target : value; args : value list }
  | Io_read of { dst : reg; port : value }
      (** SVA-OS programmed-I/O read; subject to run-time port checks. *)
  | Io_write of { port : value; src : value }
  | Fence
      (** Speculation barrier (lfence): younger instructions may not
          execute transiently past it.  Emitted by the fence-mitigation
          compiler pass; no architectural effect beyond its cycle
          cost. *)

type terminator =
  | Ret of value option
  | Br of label
  | Cbr of { cond : value; if_true : label; if_false : label }
  | Unreachable

type block = { label : label; instrs : instr list; term : terminator }

type func = {
  name : string;
  params : reg list;  (** bound to arguments on entry *)
  blocks : block list;  (** head is the entry block *)
}

type program = { funcs : func list }

val find_func : program -> string -> func option
val find_block : func -> label -> block option

val map_funcs : (func -> func) -> program -> program
(** Rebuild a program by transforming each function. *)

val instr_count : program -> int
(** Total instruction count (terminators excluded); used by tests and
    by instrumentation-overhead reporting. *)
