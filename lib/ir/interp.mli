(** Reference interpreter for {!Ir} programs.

    Executes virtual-instruction-set code directly, without lowering to
    native code.  The compiler test-suite runs the same programs through
    {!Interp} and through codegen + the native executor and demands
    identical results (differential testing); the kernel never runs on
    the interpreter. *)

(** Callbacks tying the interpreted code to its world (simulated memory,
    I/O ports, external helper functions). *)
type env = {
  load : int64 -> Ir.width -> int64;  (** zero-extended load *)
  store : int64 -> Ir.width -> int64 -> unit;  (** truncating store *)
  memcpy : dst:int64 -> src:int64 -> len:int64 -> unit;
  io_read : int64 -> int64;
  io_write : int64 -> int64 -> unit;
  extern : string -> int64 array -> int64;
      (** Called for [Call] to a function not defined in the program
          (externals, [sva.*] intrinsics). *)
  resolve_sym : string -> int64;
      (** Address of a global or function symbol. *)
  func_of_addr : int64 -> string option;
      (** Reverse mapping used by indirect calls. *)
  charge : int -> unit;
      (** Cycle accounting.  The interpreter charges exactly what the
          {e uninstrumented} lowered code would: one cycle per native
          slot that codegen would emit (a taken [Cbr] true-edge costs
          one extra, for the fall-through jump), plus the
          length-scaled memcpy surcharge.  The differential fuzz suite
          holds the native executor to this model. *)
  fence : unit -> unit;
      (** Called on [Fence] in addition to the one-slot charge, so the
          host can add the pipeline-drain cost under its own tag and
          end any transient window. *)
}

exception Trap of string
(** Raised on division by zero, indirect calls to non-function
    addresses, [Unreachable], and fuel exhaustion.  Alias of
    {!Eval.Trap}. *)

val eval_binop : Ir.binop -> int64 -> int64 -> int64
(** Alias of {!Eval.eval_binop}; shared with the native executor.
    @raise Trap on division by zero. *)

val eval_cmp : Ir.cmp -> int64 -> int64 -> int64
(** Alias of {!Eval.eval_cmp}: 0 or 1. *)

val truncate : Ir.width -> int64 -> int64
(** Alias of {!Eval.truncate}. *)

val run : ?fuel:int -> env -> Ir.program -> string -> int64 array -> int64
(** [run env program name args] calls function [name] with [args] bound
    to its parameters and returns its result (0 for [ret void]).
    [fuel] bounds the number of executed instructions (default 10^7).
    @raise Trap per above; @raise Not_found if the function is absent. *)
