type reg = string
type label = string
type width = W8 | W16 | W32 | W64

let bytes_of_width = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type binop = Add | Sub | Mul | Udiv | Urem | And | Or | Xor | Shl | Lshr | Ashr
type cmp = Eq | Ne | Ult | Ule | Ugt | Uge | Slt | Sle
type value = Reg of reg | Imm of int64 | Sym of string

type instr =
  | Bin of { dst : reg; op : binop; a : value; b : value }
  | Cmp of { dst : reg; op : cmp; a : value; b : value }
  | Select of { dst : reg; cond : value; if_true : value; if_false : value }
  | Load of { dst : reg; addr : value; width : width }
  | Store of { src : value; addr : value; width : width }
  | Memcpy of { dst : value; src : value; len : value }
  | Atomic_rmw of { dst : reg; op : binop; addr : value; operand : value; width : width }
  | Call of { dst : reg option; callee : string; args : value list }
  | Call_indirect of { dst : reg option; target : value; args : value list }
  | Io_read of { dst : reg; port : value }
  | Io_write of { port : value; src : value }
  | Fence

type terminator =
  | Ret of value option
  | Br of label
  | Cbr of { cond : value; if_true : label; if_false : label }
  | Unreachable

type block = { label : label; instrs : instr list; term : terminator }
type func = { name : string; params : reg list; blocks : block list }
type program = { funcs : func list }

let find_func program name = List.find_opt (fun f -> f.name = name) program.funcs
let find_block func label = List.find_opt (fun b -> b.label = label) func.blocks
let map_funcs f program = { funcs = List.map f program.funcs }

let instr_count program =
  List.fold_left
    (fun acc f ->
      List.fold_left (fun acc b -> acc + List.length b.instrs) acc f.blocks)
    0 program.funcs
