(** Imperative construction of {!Ir} programs.

    The builder keeps a current function and current block; instruction
    helpers append to the current block and return the destination
    register as a {!Ir.value} so calls compose:

    {[
      let b = Builder.create () in
      Builder.func b "double" ~params:[ "x" ];
      let two = Ir.Imm 2L in
      let r = Builder.bin b Ir.Mul (Ir.Reg "x") two in
      Builder.ret b (Some r);
      let program = Builder.program b
    ]} *)

type t

val create : unit -> t

val func : t -> string -> params:Ir.reg list -> unit
(** Start a new function; opens an implicit entry block ["entry"]. *)

val block : t -> Ir.label -> unit
(** Finish the current block (it must already be terminated) and open a
    new one. *)

val fresh : t -> string -> Ir.reg
(** Fresh register with a human-readable prefix. *)

val fresh_label : t -> string -> Ir.label

val bin : t -> Ir.binop -> Ir.value -> Ir.value -> Ir.value
val cmp : t -> Ir.cmp -> Ir.value -> Ir.value -> Ir.value
val select : t -> Ir.value -> Ir.value -> Ir.value -> Ir.value
val load : t -> ?width:Ir.width -> Ir.value -> Ir.value
val store : t -> ?width:Ir.width -> src:Ir.value -> addr:Ir.value -> unit -> unit
val memcpy : t -> dst:Ir.value -> src:Ir.value -> len:Ir.value -> unit
val atomic_rmw : t -> ?width:Ir.width -> Ir.binop -> addr:Ir.value -> Ir.value -> Ir.value
val call : t -> string -> Ir.value list -> Ir.value
(** Call with a result register. *)

val call_void : t -> string -> Ir.value list -> unit
val call_indirect : t -> Ir.value -> Ir.value list -> Ir.value
val call_indirect_void : t -> Ir.value -> Ir.value list -> unit
val io_read : t -> Ir.value -> Ir.value
val io_write : t -> port:Ir.value -> Ir.value -> unit
val fence : t -> unit

val ret : t -> Ir.value option -> unit
val br : t -> Ir.label -> unit
val cbr : t -> Ir.value -> Ir.label -> Ir.label -> unit
val unreachable : t -> unit

val program : t -> Ir.program
(** Finish construction. The current block must be terminated.
    @raise Failure if any block lacks a terminator. *)
