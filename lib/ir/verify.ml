type error = { func : string; block : Ir.label option; message : string }

let pp_error fmt e =
  match e.block with
  | None -> Format.fprintf fmt "%s: %s" e.func e.message
  | Some b -> Format.fprintf fmt "%s/%s: %s" e.func b e.message

let is_external name =
  String.length name > 7 && String.sub name 0 7 = "extern."
  || String.length name > 4 && String.sub name 0 4 = "sva."

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.add seen n ();
        false
      end)
    names

let values_of_instr : Ir.instr -> Ir.value list = function
  | Bin { a; b; _ } | Cmp { a; b; _ } -> [ a; b ]
  | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]
  | Load { addr; _ } -> [ addr ]
  | Store { src; addr; _ } -> [ src; addr ]
  | Memcpy { dst; src; len } -> [ dst; src; len ]
  | Atomic_rmw { addr; operand; _ } -> [ addr; operand ]
  | Call { args; _ } -> args
  | Call_indirect { target; args; _ } -> target :: args
  | Io_read { port; _ } -> [ port ]
  | Io_write { port; src } -> [ port; src ]
  | Fence -> []

let def_of_instr : Ir.instr -> Ir.reg option = function
  | Bin { dst; _ } | Cmp { dst; _ } | Select { dst; _ } | Load { dst; _ }
  | Atomic_rmw { dst; _ } | Io_read { dst; _ } ->
      Some dst
  | Call { dst; _ } | Call_indirect { dst; _ } -> dst
  | Store _ | Memcpy _ | Io_write _ | Fence -> None

let check_func program (f : Ir.func) =
  let errors = ref [] in
  let err ?block message = errors := { func = f.Ir.name; block; message } :: !errors in
  if f.Ir.blocks = [] then err "function has no blocks";
  List.iter
    (fun label -> err (Printf.sprintf "duplicate block label %s" label))
    (duplicates (List.map (fun (b : Ir.block) -> b.Ir.label) f.Ir.blocks));
  let block_exists l = List.exists (fun (b : Ir.block) -> b.Ir.label = l) f.Ir.blocks in
  (* Registers defined anywhere in the function (conservative: we do not
     compute dominance, but we do require *some* definition to exist). *)
  let defined = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace defined p ()) f.Ir.params;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i -> match def_of_instr i with Some r -> Hashtbl.replace defined r () | None -> ())
        b.Ir.instrs)
    f.Ir.blocks;
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          List.iter
            (fun (v : Ir.value) ->
              match v with
              | Reg r when not (Hashtbl.mem defined r) ->
                  err ~block:b.Ir.label (Printf.sprintf "use of undefined register %s" r)
              | Reg _ | Imm _ | Sym _ -> ())
            (values_of_instr i);
          match i with
          | Call { callee; _ }
            when (not (is_external callee))
                 && Ir.find_func program callee = None ->
              err ~block:b.Ir.label (Printf.sprintf "call to unknown function %s" callee)
          | _ -> ())
        b.Ir.instrs;
      match b.Ir.term with
      | Ret _ | Unreachable -> ()
      | Br target ->
          if not (block_exists target) then
            err ~block:b.Ir.label (Printf.sprintf "branch to unknown block %s" target)
      | Cbr { if_true; if_false; _ } ->
          List.iter
            (fun target ->
              if not (block_exists target) then
                err ~block:b.Ir.label (Printf.sprintf "branch to unknown block %s" target))
            [ if_true; if_false ])
    f.Ir.blocks;
  !errors

let check program =
  let errors = ref [] in
  List.iter
    (fun name ->
      errors :=
        { func = name; block = None; message = "duplicate function name" } :: !errors)
    (duplicates (List.map (fun (f : Ir.func) -> f.Ir.name) program.Ir.funcs));
  List.iter (fun f -> errors := check_func program f @ !errors) program.Ir.funcs;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
