type t = {
  name : string;
  payload : bytes;
  entry : int64;
  profile : bytes;
  key_section : bytes;
  signature : bytes;
}

let signed_region t =
  let buf = Buffer.create (Bytes.length t.payload + 64) in
  Buffer.add_string buf t.name;
  Buffer.add_char buf '\000';
  Buffer.add_int64_le buf t.entry;
  Buffer.add_bytes buf t.payload;
  (* The profile is length-prefixed so an empty profile cannot be
     confused with key-section bytes (and vice versa). *)
  Buffer.add_int64_le buf (Int64.of_int (Bytes.length t.profile));
  Buffer.add_bytes buf t.profile;
  Buffer.add_bytes buf t.key_section;
  Buffer.to_bytes buf

let install ~vg_key ~rng ~name ~payload ~entry ?(profile = Bytes.empty) ~app_key
    () =
  let key_section = Vg_crypto.Rsa.encrypt vg_key.Vg_crypto.Rsa.pub rng app_key in
  let unsigned =
    { name; payload; entry; profile; key_section; signature = Bytes.empty }
  in
  { unsigned with signature = Vg_crypto.Rsa.sign vg_key (signed_region unsigned) }

let validate ~vg_pub t =
  Vg_crypto.Rsa.verify vg_pub
    ~msg:(signed_region { t with signature = Bytes.empty })
    ~signature:t.signature

let decrypt_app_key ~vg_key t = Vg_crypto.Rsa.decrypt vg_key t.key_section

let flip_byte b i =
  let b = Bytes.copy b in
  if Bytes.length b > i then Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  b

let tamper_payload t = { t with payload = flip_byte t.payload (Bytes.length t.payload / 2) }
let tamper_key_section t = { t with key_section = flip_byte t.key_section 4 }
let tamper_profile t = { t with profile = flip_byte t.profile (Bytes.length t.profile / 2) }
